//===-- gc/CollectorPlan.h - Shared collector infrastructure ---*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared base for the two collector plans (GenMS, GenCopy): configuration,
/// the GC cycle-cost model, the block pool over the heap range, remembered
/// set, Appel-style nursery budgeting, and root iteration. Mirrors MMTk's
/// Plan layering, which the paper's collectors are built on.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_GC_COLLECTORPLAN_H
#define HPMVM_GC_COLLECTORPLAN_H

#include "gc/RememberedSet.h"
#include "heap/BlockPool.h"
#include "obs/Metrics.h"
#include "heap/BlockedBumpAllocator.h"
#include "heap/GcApi.h"
#include "heap/LargeObjectSpace.h"
#include "heap/ObjectModel.h"
#include "heap/SizeClasses.h"
#include "support/Types.h"
#include "support/VirtualClock.h"

#include <cassert>
#include <functional>

namespace hpmvm {

class TraceBuffer;

/// Cycle costs of GC work items.
struct GcCostModel {
  Cycles CollectionSetup = 30000; ///< Stop-the-world + root-scan base.
  Cycles PerRootSlot = 3;
  Cycles PerScannedSlot = 2;
  Cycles PerCopiedByte = 1;
  Cycles PerMarkedObject = 10;
  Cycles PerSweptCell = 2;
  Cycles PerReleasedBlock = 200;
};

/// Collector construction parameters.
struct CollectorConfig {
  uint32_t HeapBytes = 64 * 1024 * 1024;
  GcCostModel Cost;
  /// Appel nursery: lower bound on the nursery block budget.
  uint32_t MinNurseryBlocks = 4;
  /// 0 = unbounded (pure Appel); otherwise a fixed-nursery variant.
  uint32_t MaxNurseryBlocks = 0;
  /// Size ceiling for a co-allocated pair (parent + gap + child). The
  /// free-list ceiling (4 KB) is the hard limit; lowering it is the
  /// ablation knob for "should pairs larger than a cache line bother?".
  uint32_t MaxCoallocPairBytes = kMaxFreeListBytes;
};

/// Common state/machinery for both plans.
class CollectorPlanBase : public GarbageCollector {
public:
  CollectorPlanBase(ObjectModel &Objects, VirtualClock &Clock,
                    const CollectorConfig &Config);

  void setRootProvider(RootProvider *P) override { Roots = P; }
  void setPlacementAdvisor(PlacementAdvisor *A) override { Advisor = A; }
  void setGcAllowed(bool Allowed) override { GcAllowed = Allowed; }
  const GcStats &stats() const override { return Stats; }
  void setGcNotify(std::function<void(bool)> Fn) override {
    Notify = std::move(Fn);
  }

  SpaceId spaceOf(Address A) const override { return Pool.ownerOf(A); }

  /// Registers gc.* metrics (collections, pause-cycle histogram, promotion
  /// gauges) and emits one trace span per collection pause.
  void attachObs(ObsContext &Obs) override;

  BlockPool &pool() { return Pool; }
  const CollectorConfig &config() const { return Config; }
  uint32_t nurseryBlockBudget() const { return Nursery.blockBudget(); }

protected:
  /// Charges \p C cycles of GC work to the virtual clock and the GC total.
  void chargeGc(Cycles C) {
    Clock.advance(C);
    Stats.GcCycles += C;
  }

  /// Observability bracket around one stop-the-world pause: plans call
  /// gcPauseBegin() on entry to collectMinor/collectFull and
  /// gcPauseEnd(Full) just before the post-GC notify.
  void gcPauseBegin();
  void gcPauseEnd(bool Full);

  /// Iterates mutator roots, charging per-slot cost.
  void scanRoots(const std::function<void(Address &)> &Fn);

  /// Recomputes the Appel-style nursery budget from the pool's free space,
  /// reserving \p ReservedBlocks for the mature space's needs (GenCopy's
  /// copy reserve; 0 for GenMS).
  void retuneNurseryBudget(uint32_t ReservedBlocks);

  ObjectModel &Objects;
  VirtualClock &Clock;
  CollectorConfig Config;
  BlockPool Pool;
  BlockedBumpAllocator Nursery;
  LargeObjectSpace Los;
  RememberedSet RemSet;
  RootProvider *Roots = nullptr;
  PlacementAdvisor *Advisor = nullptr;
  std::function<void(bool)> Notify;
  GcStats Stats;
  bool GcAllowed = true;
  bool InCollection = false;

private:
  TraceBuffer *ObsTrace = nullptr;
  Cycles PauseStart = 0;
  Counter *MCollections = &Counter::sink();
  Counter *MMinor = &Counter::sink();
  Counter *MFull = &Counter::sink();
  Counter *MPauseCycles = &Counter::sink();
  Histogram *MPause = &Histogram::sink();
  Gauge *MObjectsPromoted = &Gauge::sink();
  Gauge *MBytesPromoted = &Gauge::sink();
  Gauge *MPairs = &Gauge::sink();
  Gauge *MGapBytes = &Gauge::sink();
};

} // namespace hpmvm

#endif // HPMVM_GC_COLLECTORPLAN_H
