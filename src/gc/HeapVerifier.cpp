//===-- gc/HeapVerifier.cpp -----------------------------------------------===//

#include "gc/HeapVerifier.h"

#include "support/Format.h"

#include <unordered_set>
#include <vector>

using namespace hpmvm;
using namespace hpmvm::objheader;

namespace {

/// Accumulated walk state shared by both plans.
struct WalkState {
  ObjectModel &Objects;
  std::string Error;
  std::unordered_set<Address> Bases;
  std::vector<std::pair<Address, SpaceId>> Live;
  HeapCensus Census;

  explicit WalkState(ObjectModel &Objects) : Objects(Objects) {}

  void fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
  }

  /// Validates the header at \p Obj; \returns its size (0 on failure).
  uint32_t validateHeader(Address Obj, const char *Where) {
    ClassId Cls = Objects.classOf(Obj);
    if (Cls >= Objects.classes().size()) {
      fail(formatString("%s: object 0x%08x has unknown class id %u", Where,
                        Obj, Cls));
      return 0;
    }
    const HeapClassDesc &D = Objects.classes().desc(Cls);
    uint32_t Size = Objects.sizeOf(Obj);
    uint32_t Expected =
        D.isArray()
            ? Objects.arrayObjectBytes(Cls, Objects.arrayLength(Obj))
            : D.InstanceBytes;
    if (Size != Expected) {
      fail(formatString(
          "%s: object 0x%08x (%s) size %u does not match expected %u",
          Where, Obj, D.Name.c_str(), Size, Expected));
      return 0;
    }
    if (Objects.testFlag(Obj, kForwardedBit)) {
      fail(formatString(
          "%s: object 0x%08x (%s) carries a forwarding bit outside a "
          "collection",
          Where, Obj, D.Name.c_str()));
      return 0;
    }
    return Size;
  }

  void record(Address Obj, uint32_t Size, SpaceId Space) {
    Bases.insert(Obj);
    Live.emplace_back(Obj, Space);
    auto &Stat = Census.PerClass[Objects.classOf(Obj)];
    ++Stat.Count;
    Stat.Bytes += Size;
    switch (Space) {
    case SpaceId::Nursery:
      ++Census.NurseryObjects;
      Census.NurseryBytes += Size;
      break;
    case SpaceId::Los:
      ++Census.LosObjects;
      Census.LosBytes += Size;
      break;
    default:
      ++Census.MatureObjects;
      Census.MatureBytes += Size;
      break;
    }
  }

  void walkNursery(const BlockedBumpAllocator &Nursery) {
    Nursery.forEachObject([&](Address Obj) -> uint32_t {
      uint32_t Size = validateHeader(Obj, "nursery");
      if (Size == 0)
        return kBlockBytes; // Skip out of the corrupt block.
      record(Obj, Size, SpaceId::Nursery);
      return Size;
    });
  }

  void walkLos(const LargeObjectSpace &Los) {
    Los.forEachObject([&](Address Obj) {
      uint32_t Size = validateHeader(Obj, "los");
      if (Size)
        record(Obj, Size, SpaceId::Los);
    });
  }

  /// Reference-slot pass: every ref must land on a live base; every
  /// old-to-young slot must be remembered.
  void checkRefs(const RememberedSet &RemSet, const BlockPool &Pool) {
    for (auto [Obj, Space] : Live) {
      Objects.forEachRefSlot(Obj, [&](Address Slot) {
        Address V = Objects.memory().readWord(Slot);
        if (V == kNullRef)
          return;
        if (!Bases.count(V)) {
          fail(formatString(
              "object 0x%08x slot 0x%08x points at 0x%08x, which is not "
              "a live object base",
              Obj, Slot, V));
          return;
        }
        if (Space != SpaceId::Nursery &&
            Pool.ownerOf(V) == SpaceId::Nursery && !RemSet.contains(Slot))
          fail(formatString(
              "old-to-young slot 0x%08x (in 0x%08x) -> 0x%08x missing "
              "from the remembered set (lost write barrier?)",
              Slot, Obj, V));
      });
    }
  }
};

} // namespace

std::string HeapVerifier::verify(GenMSPlan &Plan, ObjectModel &Objects) {
  WalkState W(Objects);
  W.walkNursery(Plan.nursery());
  W.walkLos(Plan.largeObjectSpace());

  const FreeListAllocator &Mature = Plan.matureSpace();
  Mature.forEachCell([&](Address Cell) {
    uint32_t CellBytes = Mature.cellSizeAt(Cell);
    uint32_t Size = W.validateHeader(Cell, "mature cell");
    if (Size == 0)
      return;
    if (Size > CellBytes) {
      W.fail(formatString("mature cell 0x%08x: object size %u exceeds "
                          "cell size %u",
                          Cell, Size, CellBytes));
      return;
    }
    W.record(Cell, Size, SpaceId::Mature);
    if (!Objects.testFlag(Cell, kCoallocBit))
      return;
    // Shared cell: validate the co-tenant child.
    ++W.Census.CoallocatedCells;
    uint32_t ChildOff = Objects.memory().readWord(Cell + kAuxOffset);
    if (ChildOff < Size || ChildOff >= CellBytes) {
      W.fail(formatString("co-allocated cell 0x%08x: child offset %u "
                          "outside the cell (object %u, cell %u)",
                          Cell, ChildOff, Size, CellBytes));
      return;
    }
    Address Child = Cell + ChildOff;
    uint32_t ChildSize = W.validateHeader(Child, "co-allocated child");
    if (ChildSize == 0)
      return;
    if (ChildOff + ChildSize > CellBytes) {
      W.fail(formatString("co-allocated cell 0x%08x: child 0x%08x "
                          "overruns the cell",
                          Cell, Child));
      return;
    }
    W.record(Child, ChildSize, SpaceId::Mature);
  });

  if (W.Error.empty())
    W.checkRefs(Plan.rememberedSet(), Plan.pool());
  return W.Error;
}

std::string HeapVerifier::verify(GenCopyPlan &Plan, ObjectModel &Objects) {
  WalkState W(Objects);
  W.walkNursery(Plan.nursery());
  W.walkLos(Plan.largeObjectSpace());
  Plan.matureSpace().forEachObject([&](Address Obj) -> uint32_t {
    uint32_t Size = W.validateHeader(Obj, "mature");
    if (Size == 0)
      return kBlockBytes;
    W.record(Obj, Size, Plan.pool().ownerOf(Obj));
    return Size;
  });
  if (W.Error.empty())
    W.checkRefs(Plan.rememberedSet(), Plan.pool());
  return W.Error;
}

HeapCensus HeapVerifier::census(GenMSPlan &Plan, ObjectModel &Objects) {
  WalkState W(Objects);
  W.walkNursery(Plan.nursery());
  W.walkLos(Plan.largeObjectSpace());
  const FreeListAllocator &Mature = Plan.matureSpace();
  Mature.forEachCell([&](Address Cell) {
    uint32_t Size = W.validateHeader(Cell, "mature cell");
    if (Size == 0)
      return;
    W.record(Cell, Size, SpaceId::Mature);
    if (Objects.testFlag(Cell, kCoallocBit)) {
      ++W.Census.CoallocatedCells;
      Address Child =
          Cell + Objects.memory().readWord(Cell + kAuxOffset);
      uint32_t ChildSize = W.validateHeader(Child, "child");
      if (ChildSize)
        W.record(Child, ChildSize, SpaceId::Mature);
    }
  });
  return W.Census;
}

HeapCensus HeapVerifier::census(GenCopyPlan &Plan, ObjectModel &Objects) {
  WalkState W(Objects);
  W.walkNursery(Plan.nursery());
  W.walkLos(Plan.largeObjectSpace());
  Plan.matureSpace().forEachObject([&](Address Obj) -> uint32_t {
    uint32_t Size = W.validateHeader(Obj, "mature");
    if (Size == 0)
      return kBlockBytes;
    W.record(Obj, Size, SpaceId::FromSpace);
    return Size;
  });
  return W.Census;
}
