//===-- gc/GenMSPlan.cpp --------------------------------------------------===//

#include "gc/GenMSPlan.h"

#include "obs/Log.h"

#include <cassert>
#include <cstdlib>

using namespace hpmvm;
using namespace hpmvm::objheader;

GenMSPlan::GenMSPlan(ObjectModel &Objects, VirtualClock &Clock,
                     const CollectorConfig &Config)
    : CollectorPlanBase(Objects, Clock, Config), Mature(Pool) {}

Address GenMSPlan::allocate(ClassId Cls, uint32_t TotalBytes,
                            uint32_t ArrayLen) {
  assert(!InCollection && "allocation during collection");

  if (TotalBytes > kMaxFreeListBytes) {
    // Large objects are born in the LOS ("larger objects are handled in a
    // separate portion of the heap").
    Address A = Los.alloc(TotalBytes);
    if (A == kNullRef) {
      collectFull();
      A = Los.alloc(TotalBytes);
    }
    if (A == kNullRef)
      return kNullRef;
    Objects.initObject(A, Cls, TotalBytes, ArrayLen);
    return A;
  }

  Address A = Nursery.alloc(TotalBytes);
  if (A == kNullRef) {
    collectMinor();
    // Mark-sweep reclaims mature garbage only at full collections; run one
    // proactively while there is still promotion headroom, instead of
    // riding the free-block count down to where even the full collection
    // could not promote a live nursery.
    if (Pool.freeBlocks() < Nursery.blockBudget() + 8)
      collectFull();
    A = Nursery.alloc(TotalBytes);
    if (A == kNullRef) {
      collectFull();
      A = Nursery.alloc(TotalBytes);
    }
  }
  if (A == kNullRef)
    return kNullRef;
  Objects.initObject(A, Cls, TotalBytes, ArrayLen);
  return A;
}

void GenMSPlan::writeBarrier(Address Holder, Address SlotAddr,
                             Address NewValue) {
  (void)Holder;
  if (NewValue == kNullRef)
    return;
  if (Pool.ownerOf(NewValue) == SpaceId::Nursery &&
      Pool.ownerOf(SlotAddr) != SpaceId::Nursery)
    RemSet.insert(SlotAddr);
}

void GenMSPlan::collectMinor() {
  assert(GcAllowed && "collection triggered while GC is disabled");
  // The Appel budget guarantees a promotion reserve at least the nursery's
  // size (plus fragmentation slack); escalate to a full collection only
  // when the reserve was eaten by direct LOS allocation since the last
  // retune.
  if (Pool.freeBlocks() < Nursery.blocksOwned() + 4) {
    collectFull();
    return;
  }

  InCollection = true;
  gcPauseBegin();
  ++Stats.MinorCollections;
  chargeGc(Config.Cost.CollectionSetup);
  FullTraceActive = false;
  ScanList.clear();

  scanRoots([&](Address &Slot) { Slot = processRef(Slot, false); });

  // Remembered-set slots are the other nursery roots.
  HeapMemory &Mem = Objects.memory();
  RemSet.forEach([&](Address SlotAddr) {
    Address V = Mem.readWord(SlotAddr);
    if (V != kNullRef)
      Mem.writeWord(SlotAddr, processRef(V, false));
  });
  chargeGc(RemSet.size() * Config.Cost.PerScannedSlot);

  traceLoop(false);

  uint32_t Released = Nursery.blocksOwned();
  Nursery.releaseAll();
  chargeGc(Released * Config.Cost.PerReleasedBlock);
  RemSet.clear();
  retuneNurseryBudget(0);
  InCollection = false;
  gcPauseEnd(false);
  if (Notify)
    Notify(false);
}

void GenMSPlan::collectFull() {
  assert(GcAllowed && "collection triggered while GC is disabled");
  assert(!InCollection && "recursive collection");
  InCollection = true;
  gcPauseBegin();
  ++Stats.MajorCollections;
  if (Nursery.usedBytes() != 0)
    ++Stats.NurseryCollDuringFull;
  chargeGc(2 * Config.Cost.CollectionSetup);
  FullTraceActive = true;
  ScanList.clear();

  clearMatureMarks();
  scanRoots([&](Address &Slot) { Slot = processRef(Slot, true); });
  traceLoop(true);

  // Sweep: dead cells return to the free lists, dead large objects to the
  // pool. Visiting cost covers live and dead cells alike.
  uint32_t Visited = Mature.stats().CellsInUse;
  Mature.sweep([&](Address Cell) { return isLiveCell(Cell); });
  chargeGc(Visited * Config.Cost.PerSweptCell);
  Los.sweep([&](Address Obj) { return Objects.testFlag(Obj, kMarkBit); });

  uint32_t Released = Nursery.blocksOwned();
  Nursery.releaseAll();
  chargeGc(Released * Config.Cost.PerReleasedBlock);
  RemSet.clear();
  retuneNurseryBudget(0);
  FullTraceActive = false;
  InCollection = false;
  gcPauseEnd(true);
  if (Notify)
    Notify(true);
}

void GenMSPlan::promotionFailure(uint32_t Bytes) {
  logError("gc",
           "GenMS: heap exhausted promoting %u bytes out of the nursery "
           "(heap too small for the live set)",
           Bytes);
  abort();
}

Address GenMSPlan::promote(Address Obj) {
  HeapMemory &Mem = Objects.memory();
  uint32_t Size = Objects.sizeOf(Obj);
  ClassId Cls = Objects.classOf(Obj);

  // HPM-guided co-allocation: place the most-missed child right after the
  // parent in a single free-list cell.
  if (Advisor && !Objects.descOf(Obj).isArray()) {
    CoallocationHint Hint = Advisor->coallocationHint(Cls);
    if (Hint.valid()) {
      Address Child = Mem.readWord(Obj + Hint.SlotOffset);
      if (Child != kNullRef && Child != Obj &&
          Pool.ownerOf(Child) == SpaceId::Nursery &&
          !Objects.isForwarded(Child)) {
        uint32_t ChildSize = Objects.sizeOf(Child);
        uint32_t Gap = alignUp(Advisor->gapBytes(), kObjectAlign);
        uint32_t Total = Size + Gap + ChildSize;
        // "we have to check if both objects together do not exceed the
        // size limit for the free-list allocator".
        if (Total <= Config.MaxCoallocPairBytes) {
          if (Address Cell = Mature.alloc(Total)) {
            Address NewChild = Cell + Size + Gap;
            Mem.copy(Cell, Obj, Size);
            Mem.copy(NewChild, Child, ChildSize);
            Objects.forwardTo(Obj, Cell);
            Objects.forwardTo(Child, NewChild);
            // The new copies are live by construction in this collection.
            Objects.orFlag(Cell, kMarkBit | kCoallocBit);
            Objects.orFlag(NewChild, kMarkBit | kCoallocBit);
            // Scalar parents do not use the aux word; record the child's
            // offset there so the sweep can find the cell's co-tenant.
            Mem.writeWord(Cell + kAuxOffset, Size + Gap);
            // Keep the hot field coherent immediately.
            Mem.writeWord(Cell + Hint.SlotOffset, NewChild);
            chargeGc(Total * Config.Cost.PerCopiedByte +
                     2 * Config.Cost.PerMarkedObject);
            Stats.ObjectsPromoted += 2;
            Stats.BytesPromoted += Total;
            Stats.BytesCopied += Size + ChildSize;
            ++Stats.ObjectsCoallocated;
            Stats.CoallocGapBytes += Gap;
            Advisor->noteCoallocation(Cls, Hint.Field);
            ScanList.push_back(Cell);
            ScanList.push_back(NewChild);
            return Cell;
          }
        }
      }
    }
  }

  Address Cell = Mature.alloc(Size);
  if (Cell == kNullRef)
    promotionFailure(Size);
  Mem.copy(Cell, Obj, Size);
  Objects.forwardTo(Obj, Cell);
  Objects.orFlag(Cell, kMarkBit);
  chargeGc(Size * Config.Cost.PerCopiedByte + Config.Cost.PerMarkedObject);
  ++Stats.ObjectsPromoted;
  Stats.BytesPromoted += Size;
  Stats.BytesCopied += Size;
  ScanList.push_back(Cell);
  return Cell;
}

Address GenMSPlan::processRef(Address Ref, bool FullTrace) {
  switch (Pool.ownerOf(Ref)) {
  case SpaceId::Nursery:
    if (Objects.isForwarded(Ref))
      return Objects.forwardingAddress(Ref);
    return promote(Ref);
  case SpaceId::Mature:
  case SpaceId::Los:
    if (FullTrace && !Objects.testFlag(Ref, kMarkBit)) {
      Objects.orFlag(Ref, kMarkBit);
      chargeGc(Config.Cost.PerMarkedObject);
      ScanList.push_back(Ref);
    }
    return Ref;
  default:
    assert(false && "reference outside the collected heap");
    return Ref;
  }
}

void GenMSPlan::scanObject(Address Obj, bool FullTrace) {
  HeapMemory &Mem = Objects.memory();
  uint64_t Slots = 0;
  Objects.forEachRefSlot(Obj, [&](Address SlotAddr) {
    ++Slots;
    Address V = Mem.readWord(SlotAddr);
    if (V == kNullRef)
      return;
    Address NV = processRef(V, FullTrace);
    if (NV != V)
      Mem.writeWord(SlotAddr, NV);
  });
  chargeGc(Slots * Config.Cost.PerScannedSlot + 1);
}

void GenMSPlan::traceLoop(bool FullTrace) {
  while (!ScanList.empty()) {
    Address Obj = ScanList.back();
    ScanList.pop_back();
    scanObject(Obj, FullTrace);
  }
}

void GenMSPlan::clearMatureMarks() {
  HeapMemory &Mem = Objects.memory();
  uint64_t Cells = 0;
  Mature.forEachCell([&](Address Cell) {
    ++Cells;
    Objects.clearFlag(Cell, kMarkBit);
    if (Objects.testFlag(Cell, kCoallocBit)) {
      Address Child = Cell + Mem.readWord(Cell + kAuxOffset);
      Objects.clearFlag(Child, kMarkBit);
    }
  });
  Los.forEachObject([&](Address Obj) {
    ++Cells;
    Objects.clearFlag(Obj, kMarkBit);
  });
  chargeGc(Cells * Config.Cost.PerSweptCell);
}

bool GenMSPlan::isLiveCell(Address Cell) const {
  if (Objects.testFlag(Cell, kMarkBit))
    return true;
  if (Objects.testFlag(Cell, kCoallocBit)) {
    // A co-allocated cell is shared: the child keeps it alive even when
    // the parent has died (space drag the design accepts).
    Address Child = Cell + Objects.memory().readWord(Cell + kAuxOffset);
    return Objects.testFlag(Child, kMarkBit);
  }
  return false;
}
