//===-- gc/GenCopyPlan.cpp ------------------------------------------------===//

#include "gc/GenCopyPlan.h"

#include "obs/Log.h"

#include <cassert>
#include <cstdlib>

using namespace hpmvm;
using namespace hpmvm::objheader;

GenCopyPlan::GenCopyPlan(ObjectModel &Objects, VirtualClock &Clock,
                         const CollectorConfig &Config)
    : CollectorPlanBase(Objects, Clock, Config),
      SpaceA(Pool, SpaceId::FromSpace), SpaceB(Pool, SpaceId::ToSpace),
      Current(&SpaceA), Next(&SpaceB) {
  retuneBudgets();
}

void GenCopyPlan::retuneBudgets() {
  // Appel nursery with a copy reserve. Invariant: even if the entire
  // nursery survives a minor collection, the mature space (matureUsed +
  // nursery) must still be copyable into free space at the next full
  // collection, i.e. 2*(matureUsed + nursery) + los <= total. Solving for
  // the nursery and giving it half of what that leaves (Appel):
  uint32_t Total = Pool.totalBlocks();
  uint32_t LosBlocks = Los.footprintBytes() / kBlockBytes;
  uint32_t MatureUsed = Current->blocksOwned();
  uint32_t Claimed = LosBlocks + 2 * MatureUsed;
  uint32_t Avail = Total > Claimed ? Total - Claimed : 0;
  uint32_t NurseryBudget = Avail / 4; // Half of the copy-safe half.
  if (NurseryBudget < Config.MinNurseryBlocks)
    NurseryBudget = Config.MinNurseryBlocks;
  if (Config.MaxNurseryBlocks && NurseryBudget > Config.MaxNurseryBlocks)
    NurseryBudget = Config.MaxNurseryBlocks;
  Nursery.setBlockBudget(NurseryBudget);
  // The mature space must be able to absorb a fully-live nursery without
  // tripping its own budget; the copy target is bounded only by the pool
  // (the reserve discipline above guarantees it fits).
  Current->setBlockBudget(MatureUsed + NurseryBudget + 2);
  Next->setBlockBudget(Total);
}

Address GenCopyPlan::allocate(ClassId Cls, uint32_t TotalBytes,
                              uint32_t ArrayLen) {
  assert(!InCollection && "allocation during collection");

  if (TotalBytes > kMaxFreeListBytes) {
    Address A = Los.alloc(TotalBytes);
    if (A == kNullRef) {
      collectFull();
      A = Los.alloc(TotalBytes);
    }
    if (A == kNullRef)
      return kNullRef;
    Objects.initObject(A, Cls, TotalBytes, ArrayLen);
    return A;
  }

  Address A = Nursery.alloc(TotalBytes);
  if (A == kNullRef) {
    collectMinor();
    A = Nursery.alloc(TotalBytes);
    if (A == kNullRef) {
      collectFull();
      A = Nursery.alloc(TotalBytes);
    }
  }
  if (A == kNullRef)
    return kNullRef;
  Objects.initObject(A, Cls, TotalBytes, ArrayLen);
  return A;
}

void GenCopyPlan::writeBarrier(Address Holder, Address SlotAddr,
                               Address NewValue) {
  (void)Holder;
  if (NewValue == kNullRef)
    return;
  if (Pool.ownerOf(NewValue) == SpaceId::Nursery &&
      Pool.ownerOf(SlotAddr) != SpaceId::Nursery)
    RemSet.insert(SlotAddr);
}

void GenCopyPlan::collectMinor() {
  assert(GcAllowed && "collection triggered while GC is disabled");
  // Escalate when promoting the nursery could overrun the mature budget or
  // the pool (the copy reserve must stay intact). Dead mature objects are
  // only reclaimed by a full collection, so also escalate when the mature
  // space (live + accumulated garbage) plus its copy reserve approaches
  // the whole heap.
  uint32_t LosBlocks = Los.footprintBytes() / kBlockBytes;
  uint32_t WorstMature = Current->blocksOwned() + Nursery.blocksOwned();
  if (Current->blocksOwned() + Nursery.blocksOwned() + 2 >
          Current->blockBudget() ||
      Pool.freeBlocks() < Nursery.blocksOwned() + 2 ||
      2 * WorstMature + LosBlocks + 4 > Pool.totalBlocks()) {
    collectFull();
    return;
  }

  InCollection = true;
  gcPauseBegin();
  ++Stats.MinorCollections;
  chargeGc(Config.Cost.CollectionSetup);
  ScanQueue.clear();

  scanRoots([&](Address &Slot) { Slot = processRef(Slot, false); });

  HeapMemory &Mem = Objects.memory();
  RemSet.forEach([&](Address SlotAddr) {
    Address V = Mem.readWord(SlotAddr);
    if (V != kNullRef)
      Mem.writeWord(SlotAddr, processRef(V, false));
  });
  chargeGc(RemSet.size() * Config.Cost.PerScannedSlot);

  drainQueue(false);

  uint32_t Released = Nursery.blocksOwned();
  Nursery.releaseAll();
  chargeGc(Released * Config.Cost.PerReleasedBlock);
  RemSet.clear();
  retuneBudgets();
  InCollection = false;
  gcPauseEnd(false);
  if (Notify)
    Notify(false);
}

void GenCopyPlan::collectFull() {
  assert(GcAllowed && "collection triggered while GC is disabled");
  assert(!InCollection && "recursive collection");
  InCollection = true;
  gcPauseBegin();
  ++Stats.MajorCollections;
  if (Nursery.usedBytes() != 0)
    ++Stats.NurseryCollDuringFull;
  chargeGc(2 * Config.Cost.CollectionSetup);
  ScanQueue.clear();

  // Clear LOS marks; the semispaces need none (forwarding is the mark).
  uint64_t LosObjects = 0;
  Los.forEachObject([&](Address Obj) {
    ++LosObjects;
    Objects.clearFlag(Obj, kMarkBit);
  });
  chargeGc(LosObjects * Config.Cost.PerSweptCell);

  scanRoots([&](Address &Slot) { Slot = processRef(Slot, true); });
  drainQueue(true);

  Los.sweep([&](Address Obj) { return Objects.testFlag(Obj, kMarkBit); });

  uint32_t Released = Nursery.blocksOwned() + Current->blocksOwned();
  Nursery.releaseAll();
  Current->releaseAll();
  chargeGc(Released * Config.Cost.PerReleasedBlock);
  std::swap(Current, Next);
  RemSet.clear();
  retuneBudgets();
  InCollection = false;
  gcPauseEnd(true);
  if (Notify)
    Notify(true);
}

void GenCopyPlan::copyFailure(uint32_t Bytes) {
  logError("gc",
           "GenCopy: heap exhausted copying %u bytes (heap too small for "
           "the live set plus copy reserve)",
           Bytes);
  abort();
}

Address GenCopyPlan::copyInto(Address Obj, BlockedBumpAllocator &Dest) {
  uint32_t Size = Objects.sizeOf(Obj);
  Address NewObj = Dest.alloc(Size);
  if (NewObj == kNullRef)
    copyFailure(Size);
  Objects.memory().copy(NewObj, Obj, Size);
  Objects.forwardTo(Obj, NewObj);
  chargeGc(Size * Config.Cost.PerCopiedByte);
  Stats.BytesCopied += Size;
  ScanQueue.push_back(NewObj);
  return NewObj;
}

Address GenCopyPlan::processRef(Address Ref, bool FullTrace) {
  SpaceId S = Pool.ownerOf(Ref);
  if (S == SpaceId::Nursery) {
    if (Objects.isForwarded(Ref))
      return Objects.forwardingAddress(Ref);
    Address NewObj = copyInto(Ref, FullTrace ? *Next : *Current);
    ++Stats.ObjectsPromoted;
    Stats.BytesPromoted += Objects.sizeOf(NewObj);
    return NewObj;
  }
  if (S == SpaceId::Los) {
    if (FullTrace && !Objects.testFlag(Ref, kMarkBit)) {
      Objects.orFlag(Ref, kMarkBit);
      chargeGc(Config.Cost.PerMarkedObject);
      ScanQueue.push_back(Ref);
    }
    return Ref;
  }
  // Mature semispaces.
  if (!FullTrace)
    return Ref; // Minor collections do not touch the mature space.
  if (S == (Current == &SpaceA ? SpaceId::FromSpace : SpaceId::ToSpace)) {
    if (Objects.isForwarded(Ref))
      return Objects.forwardingAddress(Ref);
    return copyInto(Ref, *Next);
  }
  // Already in the copy target.
  return Ref;
}

void GenCopyPlan::scanObject(Address Obj, bool FullTrace) {
  HeapMemory &Mem = Objects.memory();
  uint64_t Slots = 0;
  Objects.forEachRefSlot(Obj, [&](Address SlotAddr) {
    ++Slots;
    Address V = Mem.readWord(SlotAddr);
    if (V == kNullRef)
      return;
    Address NV = processRef(V, FullTrace);
    if (NV != V)
      Mem.writeWord(SlotAddr, NV);
  });
  chargeGc(Slots * Config.Cost.PerScannedSlot + 1);
}

void GenCopyPlan::drainQueue(bool FullTrace) {
  // Breadth-first (Cheney) order: siblings end up adjacent, parents and
  // children a generation apart -- the copy-order property co-allocation
  // in GenMS improves on.
  while (!ScanQueue.empty()) {
    Address Obj = ScanQueue.front();
    ScanQueue.pop_front();
    scanObject(Obj, FullTrace);
  }
}
