//===-- gc/HeapVerifier.h - Heap invariant checking & census ---*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-heap structural verification, in the spirit of a debug-build
/// MMTk sanity checker:
///
///   - every live object (nursery allocation area, in-use free-list cells
///     including co-allocated co-tenants, LOS objects, GenCopy's mature
///     bump space) carries a well-formed header: known class, size that
///     matches the class/array length, no stray forwarding bit outside a
///     collection;
///   - every non-null reference slot reachable in those objects points at
///     the base of a live object;
///   - every mature->nursery reference slot is present in the remembered
///     set (a missing write barrier is the classic generational-GC bug
///     and is exactly what this check catches);
///   - co-allocated cells are internally consistent (child offset inside
///     the cell, child header valid).
///
/// Also provides a per-class heap census (object counts/bytes per space),
/// the data a heap profiler would show.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_GC_HEAPVERIFIER_H
#define HPMVM_GC_HEAPVERIFIER_H

#include "gc/GenCopyPlan.h"
#include "gc/GenMSPlan.h"
#include "support/Types.h"

#include <map>
#include <string>

namespace hpmvm {

/// Per-class, per-space population snapshot.
struct HeapCensus {
  struct ClassStat {
    uint64_t Count = 0;
    uint64_t Bytes = 0;
  };
  std::map<ClassId, ClassStat> PerClass;
  uint64_t NurseryObjects = 0;
  uint64_t NurseryBytes = 0;
  uint64_t MatureObjects = 0;
  uint64_t MatureBytes = 0;
  uint64_t LosObjects = 0;
  uint64_t LosBytes = 0;
  uint64_t CoallocatedCells = 0;

  uint64_t totalObjects() const {
    return NurseryObjects + MatureObjects + LosObjects;
  }
};

/// Invariant checks over live collector heaps.
class HeapVerifier {
public:
  /// \returns the empty string if \p Plan's heap is well-formed, else the
  /// first diagnostic found.
  static std::string verify(GenMSPlan &Plan, ObjectModel &Objects);
  static std::string verify(GenCopyPlan &Plan, ObjectModel &Objects);

  /// Population census over all spaces.
  static HeapCensus census(GenMSPlan &Plan, ObjectModel &Objects);
  static HeapCensus census(GenCopyPlan &Plan, ObjectModel &Objects);
};

} // namespace hpmvm

#endif // HPMVM_GC_HEAPVERIFIER_H
