//===-- gc/RememberedSet.cpp ----------------------------------------------===//
//
// RememberedSet is header-only; anchor TU.
//
//===----------------------------------------------------------------------===//

#include "gc/RememberedSet.h"
