//===-- gc/RememberedSet.h - Mature->nursery slot log ----------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generational write barrier's remembered set: addresses of reference
/// slots in the mature generation (or LOS) that point into the nursery.
/// Minor collections treat these slots as additional roots.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_GC_REMEMBEREDSET_H
#define HPMVM_GC_REMEMBEREDSET_H

#include "support/Types.h"

#include <functional>
#include <unordered_set>
#include <vector>

namespace hpmvm {

/// Deduplicated set of remembered slot addresses.
class RememberedSet {
public:
  /// Records \p SlotAddr (idempotent).
  void insert(Address SlotAddr) {
    if (Members.insert(SlotAddr).second)
      Slots.push_back(SlotAddr);
  }

  /// Invokes \p Fn for every remembered slot, in insertion order.
  void forEach(const std::function<void(Address)> &Fn) const {
    for (Address S : Slots)
      Fn(S);
  }

  void clear() {
    Members.clear();
    Slots.clear();
  }

  size_t size() const { return Slots.size(); }
  bool contains(Address SlotAddr) const { return Members.count(SlotAddr); }

private:
  std::unordered_set<Address> Members;
  std::vector<Address> Slots;
};

} // namespace hpmvm

#endif // HPMVM_GC_REMEMBEREDSET_H
