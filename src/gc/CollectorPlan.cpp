//===-- gc/CollectorPlan.cpp ----------------------------------------------===//

#include "gc/CollectorPlan.h"

#include "obs/Obs.h"

using namespace hpmvm;

void CollectorPlanBase::attachObs(ObsContext &Obs) {
  ObsTrace = &Obs.trace();
  MCollections = &Obs.metrics().counter("gc.collections");
  MMinor = &Obs.metrics().counter("gc.minor_collections");
  MFull = &Obs.metrics().counter("gc.full_collections");
  MPauseCycles = &Obs.metrics().counter("gc.pause_cycles");
  MPause = &Obs.metrics().histogram("gc.pause_cycles_hist");
  MObjectsPromoted = &Obs.metrics().gauge("gc.objects_promoted");
  MBytesPromoted = &Obs.metrics().gauge("gc.bytes_promoted");
  MPairs = &Obs.metrics().gauge("gc.pairs_coallocated");
  MGapBytes = &Obs.metrics().gauge("gc.coalloc_gap_bytes");
}

void CollectorPlanBase::gcPauseBegin() { PauseStart = Clock.now(); }

void CollectorPlanBase::gcPauseEnd(bool Full) {
  Cycles Pause = Clock.now() - PauseStart;
  MCollections->inc();
  (Full ? MFull : MMinor)->inc();
  MPauseCycles->inc(Pause);
  MPause->record(Pause);
  // Totals are O(1) gauge stores per pause, far off the mutator hot path.
  MObjectsPromoted->set(Stats.ObjectsPromoted);
  MBytesPromoted->set(Stats.BytesPromoted);
  MPairs->set(Stats.ObjectsCoallocated);
  MGapBytes->set(Stats.CoallocGapBytes);
  if (ObsTrace)
    ObsTrace->complete(PauseStart, Pause, Full ? "gc.full" : "gc.minor",
                       "gc", "bytes_promoted", Stats.BytesPromoted);
}

CollectorPlanBase::CollectorPlanBase(ObjectModel &Objects, VirtualClock &Clock,
                                     const CollectorConfig &Config)
    : Objects(Objects), Clock(Clock), Config(Config),
      Pool(Objects.memory().base(),
           alignUp(Config.HeapBytes, kBlockBytes)),
      Nursery(Pool, SpaceId::Nursery), Los(Pool) {
  assert(Objects.memory().size() >= alignUp(Config.HeapBytes, kBlockBytes) &&
         "heap backing store smaller than the collector's heap");
  retuneNurseryBudget(0);
}

void CollectorPlanBase::scanRoots(const std::function<void(Address &)> &Fn) {
  assert(Roots && "collector has no root provider");
  uint64_t Count = 0;
  Roots->forEachRoot([&](Address &Slot) {
    ++Count;
    Fn(Slot);
  });
  chargeGc(Count * Config.Cost.PerRootSlot);
}

void CollectorPlanBase::retuneNurseryBudget(uint32_t ReservedBlocks) {
  // Appel-style variable nursery: the young generation may use half of
  // whatever the mature space has not claimed (minus any copy reserve).
  // Shave a few blocks off the half so a worst-case (fully live) nursery
  // still promotes successfully despite size-class/block fragmentation --
  // the other half is the promotion reserve.
  const uint32_t FragSlackBlocks = 8;
  uint32_t Free = Pool.freeBlocks() + Nursery.blocksOwned();
  uint32_t Avail = Free > ReservedBlocks ? Free - ReservedBlocks : 0;
  uint32_t Budget = Avail / 2;
  Budget = Budget > FragSlackBlocks ? Budget - FragSlackBlocks : 0;
  if (Budget < Config.MinNurseryBlocks)
    Budget = Config.MinNurseryBlocks;
  if (Config.MaxNurseryBlocks && Budget > Config.MaxNurseryBlocks)
    Budget = Config.MaxNurseryBlocks;
  Nursery.setBlockBudget(Budget);
}
