//===-- gc/GenCopyPlan.h - Generational copying collector ------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison collector of Figure 6: a generational copying plan with
/// an Appel-style nursery and a semispace-copying mature generation
/// (Cheney/breadth-first copy order). "The GenCopy collector generally
/// improves spatial locality in the mature space over a non-moving
/// collector -- on the other hand it has a larger GC cost at small heap
/// sizes" because half the mature space is copy reserve. Large objects
/// still live in a mark-sweep LOS (as in MMTk's GenCopy).
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_GC_GENCOPYPLAN_H
#define HPMVM_GC_GENCOPYPLAN_H

#include "gc/CollectorPlan.h"

#include <deque>

namespace hpmvm {

/// Generational semispace-copying plan.
class GenCopyPlan : public CollectorPlanBase {
public:
  GenCopyPlan(ObjectModel &Objects, VirtualClock &Clock,
              const CollectorConfig &Config);

  Address allocate(ClassId Cls, uint32_t TotalBytes,
                   uint32_t ArrayLen) override;
  void writeBarrier(Address Holder, Address SlotAddr,
                    Address NewValue) override;
  void collectFull() override;
  const char *name() const override { return "GenCopy"; }

  void collectMinor();

  const BlockedBumpAllocator &matureSpace() const { return *Current; }
  const LargeObjectSpace &largeObjectSpace() const { return Los; }
  const BlockedBumpAllocator &nursery() const { return Nursery; }
  const RememberedSet &rememberedSet() const { return RemSet; }

private:
  /// Copies \p Obj into \p Dest (Cheney-style: enqueue for scanning).
  Address copyInto(Address Obj, BlockedBumpAllocator &Dest);
  Address processRef(Address Ref, bool FullTrace);
  void scanObject(Address Obj, bool FullTrace);
  void drainQueue(bool FullTrace);
  void retuneBudgets();
  [[noreturn]] void copyFailure(uint32_t Bytes);

  BlockedBumpAllocator SpaceA;
  BlockedBumpAllocator SpaceB;
  BlockedBumpAllocator *Current;  ///< The mature space holding live data.
  BlockedBumpAllocator *Next;     ///< Copy target during full collections.
  std::deque<Address> ScanQueue;  ///< Breadth-first (Cheney) copy order.
};

} // namespace hpmvm

#endif // HPMVM_GC_GENCOPYPLAN_H
