//===-- gc/GenMSPlan.h - Generational mark-sweep + co-allocation *- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's collector: "Our system uses a generational mark-and-sweep
/// garbage collector. It does bump-pointer allocation for young objects and
/// copies matured objects into a mark-and-sweep collected heap. Tenured
/// objects are managed using a free-list allocator that allocates objects
/// into 40 different size classes up to 4 KBytes..." with an Appel-style
/// variable-size nursery (the FastAdaptiveGenMS baseline configuration).
///
/// Co-allocation (paper section 5.4): when the nursery trace promotes an
/// object whose class has a hot reference field (per the PlacementAdvisor),
/// and parent+child together fit under the 4 KB free-list ceiling, the GC
/// requests ONE free-list cell sized for both and places the child directly
/// after the parent. A cell holding a co-allocated pair stays live while
/// either member is marked; the pair may waste space because only 40 cell
/// sizes exist -- the internal-fragmentation effect the paper measures at
/// small heaps.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_GC_GENMSPLAN_H
#define HPMVM_GC_GENMSPLAN_H

#include "gc/CollectorPlan.h"
#include "heap/FreeListAllocator.h"

#include <vector>

namespace hpmvm {

/// Generational mark-and-sweep plan with HPM-guided co-allocation.
class GenMSPlan : public CollectorPlanBase {
public:
  GenMSPlan(ObjectModel &Objects, VirtualClock &Clock,
            const CollectorConfig &Config);

  Address allocate(ClassId Cls, uint32_t TotalBytes,
                   uint32_t ArrayLen) override;
  void writeBarrier(Address Holder, Address SlotAddr,
                    Address NewValue) override;
  void collectFull() override;
  const char *name() const override { return "GenMS"; }

  /// Nursery collection (public for tests).
  void collectMinor();

  const FreeListAllocator &matureSpace() const { return Mature; }
  const LargeObjectSpace &largeObjectSpace() const { return Los; }
  const RememberedSet &rememberedSet() const { return RemSet; }
  const BlockedBumpAllocator &nursery() const { return Nursery; }

private:
  /// Copies \p Obj out of the nursery (with co-allocation when advised).
  Address promote(Address Obj);
  /// Traces one reference; \returns the object's post-GC address.
  Address processRef(Address Ref, bool FullTrace);
  /// Scans the ref slots of a gray object.
  void scanObject(Address Obj, bool FullTrace);
  void traceLoop(bool FullTrace);
  void clearMatureMarks();
  /// Liveness of a free-list cell: parent marked, or co-allocated child
  /// marked (the cell is shared).
  bool isLiveCell(Address Cell) const;
  [[noreturn]] void promotionFailure(uint32_t Bytes);

  FreeListAllocator Mature;
  std::vector<Address> ScanList;
  bool FullTraceActive = false;
};

} // namespace hpmvm

#endif // HPMVM_GC_GENMSPLAN_H
