//===-- core/SampleResolver.cpp -------------------------------------------===//

#include "core/SampleResolver.h"

#include "heap/AddressSpace.h"
#include "obs/Obs.h"
#include "vm/VirtualMachine.h"

#include <algorithm>

using namespace hpmvm;

void SampleResolver::attachObs(ObsContext &Obs) {
  MResolved = &Obs.metrics().counter("resolver.resolved");
  MResolvedOpt = &Obs.metrics().counter("resolver.resolved_optimized");
  MDroppedOutsideVm = &Obs.metrics().counter("resolver.dropped_outside_vm");
  MDroppedUnknownCode =
      &Obs.metrics().counter("resolver.dropped_unknown_code");
}

void SampleResolver::refreshIndex() {
  size_t NumRanges = Vm.methodTable().size();
  size_t NumFns = Vm.numCompiledFunctions();
  if (NumRanges == SeenRanges && NumFns == SeenFns)
    return;

  // Index new compiled functions by code base. The immortal space bumps
  // addresses upward, so appends normally keep the array sorted; the sort
  // is a no-op then and a safety net otherwise.
  for (; SeenFns != NumFns; ++SeenFns) {
    const MachineFunction &F =
        Vm.compiledCode(static_cast<uint32_t>(SeenFns));
    FnByBase.emplace_back(F.CodeBase, static_cast<uint32_t>(SeenFns));
  }
  std::sort(FnByBase.begin(), FnByBase.end());

  // Mirror the (already sorted) method table into the flat index, folding
  // in each optimized range's compiled function. Rebuilding from scratch
  // is fine: this runs only when a method is (re)compiled, never on the
  // per-sample path.
  const std::vector<MethodRange> &Table = Vm.methodTable().ranges();
  Ranges.clear();
  Ranges.reserve(Table.size());
  for (const MethodRange &R : Table) {
    CodeRange C;
    C.Start = R.Start;
    C.End = R.End;
    C.CodeLimit = R.End;
    C.Method = R.Method;
    C.Flavor = R.Flavor;
    if (R.Flavor == CodeFlavor::Optimized) {
      auto It = std::lower_bound(
          FnByBase.begin(), FnByBase.end(),
          std::make_pair(R.Start, uint32_t(0)),
          [](const auto &A, const auto &B) { return A.first < B.first; });
      if (It != FnByBase.end() && It->first == R.Start) {
        C.OptIndex = It->second;
        C.Fn = &Vm.compiledCode(It->second);
        C.CodeLimit = C.Fn->codeLimit();
      } else {
        // No function starts at this range (cannot happen for ranges the
        // VM installs); drop every PC in it as unknown code.
        C.CodeLimit = C.Start;
      }
    }
    Ranges.push_back(C);
  }
  SeenRanges = NumRanges;
  LastHit = SIZE_MAX; // Indices shifted; the memo is stale.
}

void SampleResolver::resolveOne(Address Pc, ResolvedSample &R) {
  R = ResolvedSample{};
  // "Addresses outside the VM address space (e.g., from kernel space or
  // native libraries) are dropped immediately."
  if (!isInCompiledCode(Pc)) {
    ++Stats.DroppedOutsideVm;
    return;
  }

  // Last-range memo first: consecutive samples usually hit the same
  // method, making this single range check the common case.
  const CodeRange *C = nullptr;
  if (LastHit < Ranges.size() && Pc >= Ranges[LastHit].Start &&
      Pc < Ranges[LastHit].End) {
    C = &Ranges[LastHit];
  } else {
    // First range with Start > Pc; the candidate is its predecessor.
    auto It = std::upper_bound(
        Ranges.begin(), Ranges.end(), Pc,
        [](Address A, const CodeRange &R) { return A < R.Start; });
    if (It != Ranges.begin() && Pc < std::prev(It)->End) {
      C = &*std::prev(It);
      LastHit = static_cast<size_t>(C - Ranges.data());
    }
  }
  if (!C) {
    ++Stats.DroppedUnknownCode;
    return;
  }

  R.Method = C->Method;
  R.Flavor = C->Flavor;

  if (C->Flavor == CodeFlavor::Baseline) {
    R.Bci = (Pc - C->Start) / kBaselineBytesPerBytecode;
    R.Valid = true;
    ++Stats.Resolved;
    return;
  }

  // Optimized code: the flat entry carries the compiled function covering
  // this range (the method may have been recompiled; stale ranges resolve
  // against their own function). PCs past the function's real code end are
  // unknown code.
  if (!C->Fn || Pc >= C->CodeLimit) {
    ++Stats.DroppedUnknownCode;
    return;
  }
  const MachineFunction &F = *C->Fn;
  R.OptIndex = C->OptIndex;
  R.InstIdx = F.instIndexFor(Pc);
  R.Bci = F.Insts[R.InstIdx].Bci;
  R.Valid = true;
  ++Stats.Resolved;
  ++Stats.ResolvedOptimized;
}

ResolvedSample SampleResolver::resolve(Address Pc) {
  refreshIndex();
  ResolverStats Before = Stats;
  ResolvedSample R;
  resolveOne(Pc, R);
  MResolved->inc(Stats.Resolved - Before.Resolved);
  MResolvedOpt->inc(Stats.ResolvedOptimized - Before.ResolvedOptimized);
  MDroppedOutsideVm->inc(Stats.DroppedOutsideVm - Before.DroppedOutsideVm);
  MDroppedUnknownCode->inc(Stats.DroppedUnknownCode -
                           Before.DroppedUnknownCode);
  return R;
}

void SampleResolver::resolveBatch(const PebsSample *Samples, size_t N,
                                  ResolvedBatch &Out) {
  // No compilation happens mid-batch (consumers recompile from period
  // boundaries, after resolution), so one refresh covers the whole batch.
  refreshIndex();
  ResolverStats Before = Stats;
  Out.Samples.resize(N);
  for (size_t I = 0; I != N; ++I)
    resolveOne(Samples[I].Eip, Out.Samples[I]);
  // One metrics flush per batch instead of up-to-four counter bumps per
  // sample.
  MResolved->inc(Stats.Resolved - Before.Resolved);
  MResolvedOpt->inc(Stats.ResolvedOptimized - Before.ResolvedOptimized);
  MDroppedOutsideVm->inc(Stats.DroppedOutsideVm - Before.DroppedOutsideVm);
  MDroppedUnknownCode->inc(Stats.DroppedUnknownCode -
                           Before.DroppedUnknownCode);
}
