//===-- core/SampleResolver.cpp -------------------------------------------===//

#include "core/SampleResolver.h"

#include "heap/AddressSpace.h"
#include "obs/Obs.h"
#include "vm/VirtualMachine.h"

using namespace hpmvm;

void SampleResolver::attachObs(ObsContext &Obs) {
  MResolved = &Obs.metrics().counter("resolver.resolved");
  MResolvedOpt = &Obs.metrics().counter("resolver.resolved_optimized");
  MUnresolvedPc = &Obs.metrics().counter("resolver.unresolved_pc");
  MNoBytecodeMap = &Obs.metrics().counter("resolver.no_bytecode_map");
}

void SampleResolver::refreshOptIndex() {
  size_t N = Vm.numCompiledFunctions();
  for (; IndexedFns < N; ++IndexedFns) {
    const MachineFunction &F =
        Vm.compiledCode(static_cast<uint32_t>(IndexedFns));
    OptByBase.emplace(F.CodeBase, static_cast<uint32_t>(IndexedFns));
  }
}

ResolvedSample SampleResolver::resolve(Address Pc) {
  ResolvedSample R;
  // "Addresses outside the VM address space (e.g., from kernel space or
  // native libraries) are dropped immediately."
  if (!isInCompiledCode(Pc)) {
    ++Stats.DroppedOutsideVm;
    MUnresolvedPc->inc();
    return R;
  }

  const MethodRange *Range = Vm.methodTable().lookup(Pc);
  if (!Range) {
    ++Stats.DroppedUnknownCode;
    MNoBytecodeMap->inc();
    return R;
  }

  R.Method = Range->Method;
  R.Flavor = Range->Flavor;
  const Method &M = Vm.method(Range->Method);

  if (Range->Flavor == CodeFlavor::Baseline) {
    R.Bci = (Pc - Range->Start) / kBaselineBytesPerBytecode;
    R.Valid = true;
    ++Stats.Resolved;
    MResolved->inc();
    return R;
  }

  // Optimized code: find the compiled function covering this PC (the
  // method may have been recompiled; stale ranges resolve against their
  // own function).
  refreshOptIndex();
  auto It = OptByBase.upper_bound(Pc);
  if (It == OptByBase.begin()) {
    ++Stats.DroppedUnknownCode;
    MNoBytecodeMap->inc();
    return R;
  }
  --It;
  const MachineFunction &F = Vm.compiledCode(It->second);
  if (Pc >= F.codeLimit()) {
    ++Stats.DroppedUnknownCode;
    MNoBytecodeMap->inc();
    return R;
  }
  (void)M;
  R.OptIndex = It->second;
  R.InstIdx = F.instIndexFor(Pc);
  R.Bci = F.Insts[R.InstIdx].Bci;
  R.Valid = true;
  ++Stats.Resolved;
  ++Stats.ResolvedOptimized;
  MResolved->inc();
  MResolvedOpt->inc();
  return R;
}
