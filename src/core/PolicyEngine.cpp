//===-- core/PolicyEngine.cpp ---------------------------------------------===//

#include "core/PolicyEngine.h"

#include "obs/Obs.h"

#include <cassert>

using namespace hpmvm;

PolicyEngine::PolicyEngine(BottleneckClassifier &Classifier,
                           const PolicyEngineConfig &Config)
    : Config(Config), Classifier(Classifier) {}

void PolicyEngine::attachObs(ObsContext &Obs) {
  MApplies = &Obs.metrics().counter("policy.applies");
  MNoops = &Obs.metrics().counter("policy.noops");
  MAccepts = &Obs.metrics().counter("policy.accepts");
  MReverts = &Obs.metrics().counter("policy.reverts");
  MBlacklists = &Obs.metrics().counter("policy.blacklists");
  Journal = &Obs.journal();
}

PolicyEngine::MethodState &PolicyEngine::stateFor(MethodId M) {
  if (M >= States.size())
    States.resize(M + 1);
  return States[M];
}

void PolicyEngine::onPeriod(const PeriodContext &Ctx) {
  if (!Classifier.windowClosed())
    return;

  // 1. Feed every tracked method's fresh window rate into its gate; the
  //    pre-change windows build the baseline, the post-change windows fill
  //    the decision window. MethodId-ascending order keeps the journal
  //    deterministic.
  for (MethodId M = 0; M < States.size(); ++M) {
    MethodState &St = States[M];
    if (!St.Tracked)
      continue;
    bool WasBusy = St.Gate.busy();
    RegressionGate::Verdict V = St.Gate.observe(Classifier.windowRate(M));
    if (V != RegressionGate::Verdict::None) {
      assert(St.Pending && "verdict without a pending action");
      handleVerdict(M, St, V, Ctx.Now);
    }
    if (WasBusy && !St.Gate.busy())
      --BusyGates;
  }

  // 2. Consider a new action for each classified hot method with no
  //    assessment in flight.
  for (const MethodBottleneck &B : Classifier.hotMethods()) {
    MethodState &St = stateFor(B.Method);
    if (!St.Tracked) {
      // First sighting: start the gate on this window's rate so the
      // baseline exists before any action is considered.
      St.Tracked = true;
      St.Gate = RegressionGate(Config.Gate);
      St.Gate.observe(Classifier.windowRate(B.Method));
      continue;
    }
    if (St.Done || St.Gate.busy() || B.Label == BottleneckLabel::Unknown)
      continue;
    if (St.Gate.observed() < Config.MinBaselineWindows)
      continue;
    if (BusyGates >= Config.MaxConcurrentAssessments)
      continue;
    considerMethod(B, St, Ctx.Now);
  }
}

void PolicyEngine::considerMethod(const MethodBottleneck &B, MethodState &St,
                                  Cycles Now) {
  // Score every action still on the table, in registration order.
  struct Candidate {
    OptimizationAction *A;
    double Score;
  };
  std::vector<Candidate> Cands;
  for (OptimizationAction *A : Actions) {
    if (St.AttemptedMask & bit(A->kind()))
      continue;
    double S = A->score(B);
    if (S > 0.0)
      Cands.push_back({A, S});
  }
  if (Cands.empty())
    return;

  // Strictly-greater comparison: on a tie the earlier-registered action
  // wins, making the pick deterministic and documented.
  size_t Best = 0;
  for (size_t I = 1; I < Cands.size(); ++I)
    if (Cands[I].Score > Cands[Best].Score)
      Best = I;

  if (Journal)
    for (size_t I = 0; I < Cands.size(); ++I)
      Journal->append({.Ts = Now,
                       .Kind = DecisionKind::Score,
                       .Consumer = "policy",
                       .Action = Cands[I].A->actionName(),
                       .Outcome = I == Best ? "chosen" : "ranked",
                       .Method = B.Method,
                       .Rate = Cands[I].Score,
                       .Value = Classifier.windowsCompleted()});

  // Apply the winner; a noop apply (nothing to rewrite, method already
  // reported, ...) is recorded, never retried, and falls through to the
  // next-best candidate in the same window.
  for (size_t Round = 0; Round < Cands.size(); ++Round) {
    OptimizationAction *A = Cands[Best].A;
    bool Applied = A->apply(B.Method);
    St.AttemptedMask |= bit(A->kind());
    if (Applied) {
      ++NApplies;
      MApplies->inc();
    } else {
      MNoops->inc();
    }
    if (Journal)
      Journal->append({.Ts = Now,
                       .Kind = DecisionKind::Apply,
                       .Consumer = "policy",
                       .Action = A->actionName(),
                       .Outcome = Applied ? "applied" : "noop",
                       .Method = B.Method,
                       .Rate = Cands[Best].Score,
                       .Baseline = St.Gate.baseline(),
                       .Value = Classifier.windowsCompleted()});
    if (Applied) {
      St.Gate.noteChange();
      St.Pending = A;
      ++BusyGates;
      return;
    }
    // Pick the next-best not-yet-attempted candidate.
    size_t Next = Cands.size();
    for (size_t I = 0; I < Cands.size(); ++I) {
      if (St.AttemptedMask & bit(Cands[I].A->kind()))
        continue;
      if (Next == Cands.size() || Cands[I].Score > Cands[Next].Score)
        Next = I;
    }
    if (Next == Cands.size())
      return;
    Best = Next;
  }
}

void PolicyEngine::handleVerdict(MethodId M, MethodState &St,
                                 RegressionGate::Verdict V, Cycles Now) {
  OptimizationAction *A = St.Pending;
  St.Pending = nullptr;
  if (V == RegressionGate::Verdict::Accepted) {
    ++NAccepts;
    MAccepts->inc();
    St.Done = true;
    if (Journal)
      Journal->append({.Ts = Now,
                       .Kind = DecisionKind::Accept,
                       .Consumer = "policy",
                       .Action = A->actionName(),
                       .Outcome = "no_regression",
                       .Method = M,
                       .Rate = St.Gate.assessed(),
                       .Baseline = St.Gate.decisionBaseline(),
                       .Value = Classifier.windowsCompleted()});
    return;
  }
  ++NReverts;
  MReverts->inc();
  if (Journal)
    Journal->append({.Ts = Now,
                     .Kind = DecisionKind::Revert,
                     .Consumer = "policy",
                     .Action = A->actionName(),
                     .Outcome = "regression",
                     .Method = M,
                     .Rate = St.Gate.assessed(),
                     .Baseline = St.Gate.decisionBaseline(),
                     .Value = Classifier.windowsCompleted()});
  A->revert(M);
  St.BlacklistMask |= bit(A->kind());
  ++NBlacklists;
  MBlacklists->inc();
  if (Journal)
    Journal->append({.Ts = Now,
                     .Kind = DecisionKind::Blacklist,
                     .Consumer = "policy",
                     .Action = A->actionName(),
                     .Outcome = "blacklisted",
                     .Method = M,
                     .Value = Classifier.windowsCompleted()});
}
