//===-- core/SamplePipeline.h - Multi-consumer dispatch --------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fan-out stage between the monitor's sample resolution and the
/// optimization consumers. The pipeline holds N registered SampleConsumers
/// in registration order; each dispatched sample is offered to every
/// consumer whose wantsKind() accepts the sample's event kind, and each
/// period boundary reaches every consumer. Dispatch is branch-light and
/// never advances the virtual clock, so adding passive consumers does not
/// change measured results.
///
/// The hot path is dispatchBatch(): one homogeneous-kind batch per
/// collector poll, one wantsKind() check and one virtual call per
/// consumer per batch (instead of per sample), with the pipeline counters
/// bumped once per batch. dispatch() remains as the scalar path for
/// single-sample callers and the batched-vs-scalar equivalence shim.
///
/// MissTableConsumer ports the paper's FieldMissTable path onto the
/// interface unchanged: it is the monitor's default (and, by default,
/// only) consumer, and reproduces the pre-pipeline behaviour bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_CORE_SAMPLEPIPELINE_H
#define HPMVM_CORE_SAMPLEPIPELINE_H

#include "core/FieldMissTable.h"
#include "core/SampleConsumer.h"
#include "obs/Metrics.h"

#include <cstddef>
#include <vector>

namespace hpmvm {

class ObsContext;

/// Registration-ordered dispatcher over SampleConsumers.
class SamplePipeline {
public:
  /// Registers \p C (not owned). Consumers added after attachObs are wired
  /// into the same ObsContext immediately.
  void addConsumer(SampleConsumer &C);

  /// Offers \p S to every consumer subscribed to S.Kind.
  void dispatch(const AttributedSample &S);

  /// Offers a whole batch to every subscribed consumer: one virtual call
  /// per consumer per batch. Every sample in \p Batch must carry the same
  /// event kind (the monitor's batches do by construction -- a batch
  /// never spans a multiplexer rotation).
  void dispatchBatch(std::span<const AttributedSample> Batch);

  /// Closes a measurement period for every consumer, in registration
  /// order.
  void endPeriod(const PeriodContext &Ctx);

  /// Registers pipeline.dispatched / pipeline.delivered plus per-consumer
  /// pipeline.<name>.samples / pipeline.<name>.periods counters, and
  /// forwards to each consumer's own attachObs.
  void attachObs(ObsContext &Obs);

  size_t numConsumers() const { return Consumers.size(); }
  SampleConsumer &consumer(size_t I) { return *Consumers[I].C; }

private:
  struct Entry {
    SampleConsumer *C;
    Counter *MSamples = &Counter::sink();
    Counter *MPeriods = &Counter::sink();
  };
  void wire(Entry &E);

  std::vector<Entry> Consumers;
  ObsContext *Obs = nullptr;
  Counter *MDispatched = &Counter::sink(); ///< Samples entering the pipeline.
  Counter *MDelivered = &Counter::sink();  ///< Sample-consumer deliveries.
};

/// The paper's consumer: per-field miss accounting feeding the
/// co-allocation advisor. Operates on an externally owned table (the
/// monitor's), so HpmMonitor::missTable() and the advisor keep working
/// unchanged.
class MissTableConsumer : public SampleConsumer {
public:
  explicit MissTableConsumer(FieldMissTable &Table) : Table(Table) {}

  const char *name() const override { return "coalloc"; }
  void onSample(const AttributedSample &S) override {
    if (S.Field != kInvalidId)
      Table.addMiss(S.Field);
  }
  void consumeBatch(std::span<const AttributedSample> Batch) override {
    for (const AttributedSample &S : Batch)
      if (S.Field != kInvalidId)
        Table.addMiss(S.Field);
  }
  void onPeriod(const PeriodContext &Ctx) override {
    Table.endPeriod(Ctx.Now);
  }

private:
  FieldMissTable &Table;
};

} // namespace hpmvm

#endif // HPMVM_CORE_SAMPLEPIPELINE_H
