//===-- core/PhaseDetector.cpp --------------------------------------------===//

#include "core/PhaseDetector.h"

#include "obs/Obs.h"
#include "support/VirtualClock.h"

#include <cassert>

using namespace hpmvm;

void PhaseDetector::attachObs(ObsContext &Obs) {
  MChanges = &Obs.metrics().counter("phase.changes");
  Trace = &Obs.trace();
  Journal = &Obs.journal();
}

void PhaseDetector::onPeriod(const PeriodContext &Ctx) {
  // Observe the duty-cycle-corrected sample rate of the whole stream: in
  // multiplexed mode each kind's count is scaled up by its inverse duty
  // cycle so a rotation does not read as a phase change.
  double Rate = 0.0;
  for (size_t K = 0; K != kNumHpmEventKinds; ++K) {
    if (PeriodSamples[K])
      Rate += static_cast<double>(PeriodSamples[K]) *
              Ctx.scale(static_cast<HpmEventKind>(K));
    PeriodSamples[K] = 0;
  }
  observe(Rate);
}

PhaseDetector::PhaseDetector(const PhaseDetectorConfig &Config)
    : Config(Config), Short(Config.Window) {
  assert(Config.Window > 0 && Config.ChangeFactor > 1.0 &&
         "degenerate phase-detector configuration");
}

bool PhaseDetector::observe(double Rate) {
  ++Observed;
  ++SincePhaseStart;
  double Avg = Short.add(Rate);

  if (Phase == 0) {
    // First observation opens phase 1.
    Phase = 1;
    Level = Rate;
    LevelActive = Rate >= Config.ActivityFloor;
    SincePhaseStart = 1;
    MChanges->inc();
    if (Trace && Clock)
      Trace->instant(Clock->now(), "phase.change", "phase", "phase", Phase);
    if (Journal)
      Journal->append({.Ts = Clock ? Clock->now() : 0,
                       .Kind = DecisionKind::PhaseChange,
                       .Consumer = "phase",
                       .Action = "phase_start",
                       .Rate = Rate,
                       .Value = Phase});
    return true;
  }

  // Compare against the level *before* updating it, so a step change is
  // judged against the old phase's regime, not a level already chasing
  // the new one.
  bool Changed = false;
  if (Observed >= Config.MinPeriods && SincePhaseStart >= Config.Window) {
    bool AvgActive = Avg >= Config.ActivityFloor;
    if (AvgActive != LevelActive) {
      Changed = true; // Entered or left a lull.
    } else if (AvgActive && LevelActive) {
      double Base = Level > Config.ActivityFloor ? Level
                                                 : Config.ActivityFloor;
      Changed = Avg > Base * Config.ChangeFactor ||
                Avg < Base / Config.ChangeFactor;
    }
  }

  if (Changed) {
    ++Phase;
    Level = Avg;
    LevelActive = Avg >= Config.ActivityFloor;
    SincePhaseStart = 0;
    MChanges->inc();
    if (Trace && Clock)
      Trace->instant(Clock->now(), "phase.change", "phase", "phase", Phase);
    if (Journal)
      Journal->append({.Ts = Clock ? Clock->now() : 0,
                       .Kind = DecisionKind::PhaseChange,
                       .Consumer = "phase",
                       .Action = "phase_change",
                       .Rate = Avg,
                       .Baseline = Level,
                       .Value = Phase});
    return true;
  }

  // Track the level slowly within the phase (small-alpha EMA) so gradual
  // drift does not masquerade as a phase change -- but genuine steps still
  // outrun it.
  Level = 0.95 * Level + 0.05 * Rate;
  return false;
}
