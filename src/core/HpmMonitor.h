//===-- core/HpmMonitor.h - The online monitoring system -------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The complete runtime monitoring system of paper section 4, assembled:
///
///   PEBS unit -> perfmon "kernel module" -> native library (pre-allocated
///   int[] marshalling, GC disabled during the copy) -> collector thread
///   (adaptive 10-1000 ms polling) -> sample resolution (method table +
///   machine-code maps) -> instructions-of-interest filter -> sample
///   pipeline fanning out to N consumers (default: the per-field miss
///   table feeding the co-allocation advisor consulted by the GC).
///
/// When MonitorConfig::Events lists more than one kind, the monitor
/// drives an EventMultiplexer (rotating the sampled kind per time slice)
/// and consumers receive duty-cycle-corrected per-kind counts.
///
/// Every stage charges its cycle cost to the VM's virtual clock, so the
/// sampling-overhead experiments (Figure 2) measure the same pipeline the
/// optimization uses.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_CORE_HPMMONITOR_H
#define HPMVM_CORE_HPMMONITOR_H

#include "core/CoallocationAdvisor.h"
#include "core/FieldMissTable.h"
#include "core/SamplePipeline.h"
#include "core/SampleResolver.h"
#include "hpm/EventMultiplexer.h"
#include "hpm/NativeSampleLibrary.h"
#include "hpm/PebsUnit.h"
#include "hpm/PerfmonModule.h"
#include "hpm/SampleCollector.h"
#include "hpm/SamplingIntervalController.h"
#include "obs/Metrics.h"
#include "support/Types.h"

#include <memory>
#include <vector>

namespace hpmvm {

class ObsContext;
class SelfProfiler;
class VirtualMachine;

/// Monitoring configuration.
struct MonitorConfig {
  HpmEventKind Event = HpmEventKind::L1DMiss;
  /// Fixed sampling interval (paper sweeps 25K/50K/100K)...
  uint64_t SamplingInterval = 100000;
  /// Multi-event mode: when more than one slot is listed, the monitor
  /// drives an EventMultiplexer over these kinds instead of sampling
  /// Event/SamplingInterval, and consumers see duty-cycle-corrected
  /// counts via PeriodContext::scale. One slot overrides
  /// Event/SamplingInterval; empty (the default) is plain single-event
  /// sampling. Incompatible with AutoInterval (both reprogram the
  /// hardware interval).
  std::vector<MultiplexerConfig::Slot> Events;
  /// Rotation slice for multi-event mode (virtual milliseconds, scaled
  /// like the polling window).
  double MuxSliceMs = 0.5;
  /// ...or fully autonomous mode: adapt the interval to a samples/sec
  /// target (paper default 200/s on ~minutes-long runs; benches scale it
  /// for the scaled-down workloads -- see DESIGN.md section 6).
  bool AutoInterval = false;
  double TargetSamplesPerSec = 200.0;
  bool RandomizeIntervalBits = true;
  /// Monitor application methods only (VM-internal excluded), as in the
  /// paper.
  bool MonitorVmInternal = false;
  /// Debug/equivalence shim: resolve and dispatch one sample at a time
  /// (the pre-batching hot path) instead of resolveBatch/dispatchBatch.
  /// Both paths produce identical consumer state and identical virtual
  /// time; the equivalence test asserts exactly that.
  bool ScalarSamplePath = false;
  AdvisorConfig Advisor;
  /// Collector-thread policy. The paper polls every 10-1000 ms on runs of
  /// minutes; our scaled workloads run for tens of virtual milliseconds,
  /// so the default here scales the polling window by ~500x (DESIGN.md
  /// section 6) -- otherwise samples would only be delivered at the final
  /// drain and no online decision could ever fire. Construct a
  /// SampleCollectorConfig explicitly to get the paper's literal values.
  SampleCollectorConfig Collector = {.MinPollMs = 0.02,
                                     .MaxPollMs = 2.0,
                                     .LowFill = 0.05,
                                     .HighFill = 0.50,
                                     // Scaled with the window: the *share*
                                     // of runtime spent polling matches the
                                     // paper's.
                                     .PollCost = 2500};
  uint64_t Seed = 0x5eed;
  /// Fleet runs: the VM shard this monitor belongs to. Stamped into every
  /// attributed sample and every sample batch; 0 (and invisible) outside
  /// fleet mode.
  TenantId Tenant = 0;
};

/// Monitoring-side statistics.
struct MonitorStats {
  uint64_t SamplesProcessed = 0;
  uint64_t SamplesAttributed = 0; ///< Landed on an instruction of interest.
  uint64_t SamplesVmInternal = 0;
  uint64_t SamplesBaselineCode = 0;
  Cycles ProcessingCycles = 0;
  /// Where the sampled accesses' *data* addresses live (the PEBS record
  /// carries the register state; the simulated EAX holds the faulting
  /// address). Mature-space dominance here is what makes promotion-time
  /// placement the right lever.
  uint64_t DataInNursery = 0;
  uint64_t DataInMature = 0; ///< Free-list cells or copy semispaces.
  uint64_t DataInLos = 0;
};

/// The assembled monitoring system. Construct after the VM has a collector
/// attached; call attach() before running and finish() after.
class HpmMonitor {
public:
  HpmMonitor(VirtualMachine &Vm, const MonitorConfig &Config = {});

  /// Starts sampling and installs all hooks (memory-event listener,
  /// safepoint poll, GC lock, placement advisor).
  void attach();

  /// Final drain + stop. Idempotent.
  void finish();

  /// Called after every measurement period (one processed batch) -- the
  /// hook from which online controllers (Figure 8) observe rates and
  /// apply/revert policies.
  void setPeriodObserver(std::function<void()> Fn) {
    PeriodObserver = std::move(Fn);
  }

  /// Total monitoring overhead charged to the clock: PEBS microcode +
  /// native library + collector polling + VM-side sample processing.
  Cycles overheadCycles() const;

  /// Wires the whole pipeline (PEBS unit, kernel module, native library,
  /// collector thread, resolver, miss table, advisor, auto-interval
  /// controller) plus the monitor's own batch counters into \p Obs.
  void attachObs(ObsContext &Obs);

  /// Registers an additional consumer on the dispatch pipeline (the
  /// default MissTableConsumer is always registered first).
  void addConsumer(SampleConsumer &C) { Pipeline.addConsumer(C); }

  // Component access.
  PebsUnit &pebs() { return Pebs; }
  PerfmonModule &perfmon() { return Perfmon; }
  SampleCollector &collector() { return *Collector; }
  FieldMissTable &missTable() { return Table; }
  CoallocationAdvisor &advisor() { return *Advisor; }
  SampleResolver &resolver() { return *Resolver; }
  SamplePipeline &pipeline() { return Pipeline; }
  /// Null in single-event mode.
  EventMultiplexer *multiplexer() { return Mux.get(); }
  const MonitorStats &stats() const { return Stats; }
  const MonitorConfig &config() const { return Config; }

private:
  void processBatch(const PebsSample *Samples, size_t N);

  /// Filters and attributes one resolved sample into \p A. \returns false
  /// when the sample is dropped (unresolved or VM-internal); updates the
  /// filter/attribution stats either way.
  bool attribute(const ResolvedSample &R, Address DataAddr,
                 HpmEventKind Kind, AttributedSample &A);

  /// Instructions-of-interest cache, indexed densely by OptIndex.
  const std::vector<FieldId> &interestFor(uint32_t OptIndex);

  VirtualMachine &Vm;
  MonitorConfig Config;
  PebsUnit Pebs;
  PerfmonModule Perfmon;
  NativeSampleLibrary Native;
  std::unique_ptr<SampleCollector> Collector;
  std::unique_ptr<SamplingIntervalController> AutoCtl;
  std::unique_ptr<SampleResolver> Resolver;
  FieldMissTable Table;
  std::unique_ptr<CoallocationAdvisor> Advisor;
  std::unique_ptr<EventMultiplexer> Mux;
  MissTableConsumer TableConsumer{Table};
  SamplePipeline Pipeline;
  /// OptIndex-indexed (opt indexes are dense); Cached flags validity so an
  /// opt function with no interesting instructions is not recomputed.
  std::vector<std::vector<FieldId>> InterestCache;
  std::vector<uint8_t> InterestCached;
  /// Reusable batch buffers: resolveBatch output and the attributed batch
  /// handed to dispatchBatch (allocated once, reused every poll).
  ResolvedBatch Resolved;
  std::vector<AttributedSample> AttrBatch;
  /// Last reading of the shared-PMU tenancy; successive readings diff into
  /// the per-period tenant share folded into PeriodContext::scale.
  PmuShare LastPmuShare;
  std::function<void()> PeriodObserver;
  MonitorStats Stats;
  bool Attached = false;
  bool Finished = false;
  TraceBuffer *Trace = nullptr;
  SelfProfiler *Prof = nullptr; ///< Set only when --self-profile is on.
  Counter *MBatches = &Counter::sink();
  Counter *MProcessed = &Counter::sink();
  Counter *MAttributed = &Counter::sink();
  Counter *MVmInternal = &Counter::sink();
  Counter *MBaselineCode = &Counter::sink();
};

} // namespace hpmvm

#endif // HPMVM_CORE_HPMMONITOR_H
