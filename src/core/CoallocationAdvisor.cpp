//===-- core/CoallocationAdvisor.cpp --------------------------------------===//

#include "core/CoallocationAdvisor.h"

#include "obs/Obs.h"
#include "vm/ClassRegistry.h"

#include <algorithm>

using namespace hpmvm;

CoallocationAdvisor::CoallocationAdvisor(const ClassRegistry &Classes,
                                         const FieldMissTable &Table,
                                         const AdvisorConfig &Config)
    : Classes(Classes), Table(Table), Config(Config) {}

void CoallocationAdvisor::attachObs(ObsContext &Obs) {
  MHints = &Obs.metrics().counter("advisor.hints");
  MNoHints = &Obs.metrics().counter("advisor.no_hints");
  MCoallocations = &Obs.metrics().counter("advisor.coallocations");
  MCacheInvalidations = &Obs.metrics().counter("advisor.cache_invalidations");
}

std::vector<std::pair<FieldId, uint64_t>>
CoallocationAdvisor::sortedFields(ClassId Cls) const {
  std::vector<std::pair<FieldId, uint64_t>> Result;
  for (FieldId F : Classes.fieldsOf(Cls))
    if (Classes.field(F).IsRef)
      Result.emplace_back(F, Table.misses(F));
  std::stable_sort(Result.begin(), Result.end(),
                   [](const auto &A, const auto &B) {
                     return A.second > B.second;
                   });
  return Result;
}

CoallocationHint CoallocationAdvisor::coallocationHint(ClassId Cls) {
  if (!Config.Enabled)
    return {};
  if (Table.version() != CacheVersion) {
    Cache.clear();
    CacheVersion = Table.version();
    MCacheInvalidations->inc();
  }
  auto It = Cache.find(Cls);
  if (It != Cache.end()) {
    (It->second.valid() ? MHints : MNoHints)->inc();
    return It->second;
  }

  CoallocationHint Hint;
  uint64_t Best = 0;
  for (FieldId F : Classes.fieldsOf(Cls)) {
    const FieldInfo &FI = Classes.field(F);
    if (!FI.IsRef)
      continue;
    uint64_t Misses = Table.misses(F);
    if (Misses >= Config.MinMissSamples && Misses > Best) {
      Best = Misses;
      Hint.Field = F;
      Hint.SlotOffset = FI.Offset;
    }
  }
  Cache.emplace(Cls, Hint);
  (Hint.valid() ? MHints : MNoHints)->inc();
  return Hint;
}

void CoallocationAdvisor::noteCoallocation(ClassId Cls, FieldId Field) {
  (void)Cls;
  ++TotalCoallocations;
  ++PerField[Field];
  MCoallocations->inc();
}

uint64_t CoallocationAdvisor::coallocationCount(FieldId F) const {
  auto It = PerField.find(F);
  return It == PerField.end() ? 0 : It->second;
}
