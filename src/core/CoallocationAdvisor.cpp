//===-- core/CoallocationAdvisor.cpp --------------------------------------===//

#include "core/CoallocationAdvisor.h"

#include "obs/Obs.h"
#include "support/VirtualClock.h"
#include "vm/ClassRegistry.h"

#include <algorithm>

using namespace hpmvm;

CoallocationAdvisor::CoallocationAdvisor(const ClassRegistry &Classes,
                                         const FieldMissTable &Table,
                                         const AdvisorConfig &Config)
    : Classes(Classes), Table(Table), Config(Config) {}

void CoallocationAdvisor::attachObs(ObsContext &Obs) {
  MHints = &Obs.metrics().counter("advisor.hints");
  MNoHints = &Obs.metrics().counter("advisor.no_hints");
  MCoallocations = &Obs.metrics().counter("advisor.coallocations");
  MCacheInvalidations = &Obs.metrics().counter("advisor.cache_invalidations");
  Journal = &Obs.journal();
}

void CoallocationAdvisor::setForcedGapBytes(uint32_t B) {
  if (Journal && B != Config.ForcedGapBytes)
    Journal->append({.Ts = Clock ? Clock->now() : 0,
                     .Kind = DecisionKind::Coalloc,
                     .Consumer = "coalloc",
                     .Action = "forced_gap",
                     .Outcome = B ? "gap_applied" : "gap_cleared",
                     .Value = B});
  Config.ForcedGapBytes = B;
}

std::vector<std::pair<FieldId, uint64_t>>
CoallocationAdvisor::sortedFields(ClassId Cls) const {
  std::vector<std::pair<FieldId, uint64_t>> Result;
  for (FieldId F : Classes.fieldsOf(Cls))
    if (Classes.field(F).IsRef)
      Result.emplace_back(F, Table.misses(F));
  std::stable_sort(Result.begin(), Result.end(),
                   [](const auto &A, const auto &B) {
                     return A.second > B.second;
                   });
  return Result;
}

CoallocationHint CoallocationAdvisor::coallocationHint(ClassId Cls) {
  if (!Config.Enabled)
    return {};
  if (Table.version() != CacheVersion) {
    Cache.clear();
    CacheVersion = Table.version();
    MCacheInvalidations->inc();
  }
  auto It = Cache.find(Cls);
  if (It != Cache.end()) {
    (It->second.valid() ? MHints : MNoHints)->inc();
    return It->second;
  }

  CoallocationHint Hint;
  uint64_t Best = 0;
  for (FieldId F : Classes.fieldsOf(Cls)) {
    const FieldInfo &FI = Classes.field(F);
    if (!FI.IsRef)
      continue;
    uint64_t Misses = Table.misses(F);
    if (Misses >= Config.MinMissSamples && Misses > Best) {
      Best = Misses;
      Hint.Field = F;
      Hint.SlotOffset = FI.Offset;
    }
  }
  Cache.emplace(Cls, Hint);
  (Hint.valid() ? MHints : MNoHints)->inc();

  // Journal the decision only when the class's hint actually moved: the
  // hint is recomputed after every table-version bump, but the hottest
  // field rarely changes.
  if (Journal) {
    auto Last = LastJournaledHint.find(Cls);
    bool Changed = Last == LastJournaledHint.end()
                       ? Hint.valid() // "no hint yet" -> only log real hints
                       : Last->second != Hint.Field;
    if (Changed) {
      LastJournaledHint[Cls] = Hint.Field;
      Journal->append({.Ts = Clock ? Clock->now() : 0,
                       .Kind = DecisionKind::Coalloc,
                       .Consumer = "coalloc",
                       .Action = "hint",
                       .Outcome = Hint.valid() ? "co_allocate" : "no_hint",
                       .Field = Hint.Field,
                       .Rate = static_cast<double>(Best),
                       .Value = Cls});
    }
  }
  return Hint;
}

void CoallocationAdvisor::noteCoallocation(ClassId Cls, FieldId Field) {
  (void)Cls;
  ++TotalCoallocations;
  ++PerField[Field];
  MCoallocations->inc();
}

uint64_t CoallocationAdvisor::coallocationCount(FieldId F) const {
  auto It = PerField.find(F);
  return It == PerField.end() ? 0 : It->second;
}
