//===-- core/BottleneckClassifier.cpp -------------------------------------===//

#include "core/BottleneckClassifier.h"

#include "obs/Obs.h"

#include <cassert>

using namespace hpmvm;

BottleneckClassifier::BottleneckClassifier(const ClassifierConfig &Config)
    : Config(Config) {
  assert(Config.WindowPeriods > 0 && "window must be non-empty");
  assert(Config.Hysteresis > 0 && "hysteresis of 0 would never flip");
}

void BottleneckClassifier::attachObs(ObsContext &Obs) {
  MWindows = &Obs.metrics().counter("classify.windows");
  MLabelChanges = &Obs.metrics().counter("classify.label_changes");
  Journal = &Obs.journal();
}

void BottleneckClassifier::onSample(const AttributedSample &S) {
  if (S.Method == kInvalidId)
    return;
  ensureMethod(S.Method);
  ++Tracks[S.Method].Counts[static_cast<size_t>(S.Kind)];
}

void BottleneckClassifier::consumeBatch(
    std::span<const AttributedSample> Batch) {
  // Batches are homogeneous in kind; hoist the kind index out of the loop.
  if (Batch.empty())
    return;
  size_t KindIdx = static_cast<size_t>(Batch.front().Kind);
  for (const AttributedSample &S : Batch) {
    if (S.Method == kInvalidId)
      continue;
    ensureMethod(S.Method);
    ++Tracks[S.Method].Counts[KindIdx];
  }
}

BottleneckLabel BottleneckClassifier::rawLabel(double L1, double L2,
                                               double Tlb,
                                               double Total) const {
  if (Total > 0.0 && Tlb / Total >= Config.TlbFraction)
    return BottleneckLabel::TlbBound;
  if (L1 > 0.0 && L2 / L1 >= Config.BandwidthFraction)
    return BottleneckLabel::BandwidthBound;
  if (L1 >= Config.LatencyRate)
    return BottleneckLabel::LatencyBound;
  return BottleneckLabel::ComputeBound;
}

void BottleneckClassifier::onPeriod(const PeriodContext &Ctx) {
  JustClosed = false;
  if (++PeriodsInWindow < Config.WindowPeriods)
    return;
  PeriodsInWindow = 0;
  JustClosed = true;
  ++Windows;
  MWindows->inc();
  Hot.clear();
  WindowTotal = 0.0;

  // Per-kind correction as of this window boundary: the cumulative inverse
  // duty cycle (under multiplexing each kind only counts during its
  // rotation slots) times the kind's events-per-sample weight, turning
  // sample counts into comparable estimated event counts.
  std::array<double, kNumHpmEventKinds> Scale;
  for (size_t K = 0; K < kNumHpmEventKinds; ++K)
    Scale[K] = Ctx.scale(static_cast<HpmEventKind>(K)) * Config.KindWeight[K];

  for (MethodId M = 0; M < Tracks.size(); ++M) {
    MethodTrack &T = Tracks[M];
    // Duty-corrected raw samples (the statistical floor and the frequency
    // signal) ...
    double Samples = 0.0;
    for (size_t K = 0; K < kNumHpmEventKinds; ++K)
      Samples += static_cast<double>(T.Counts[K]) *
                 Ctx.scale(static_cast<HpmEventKind>(K));
    // ... and estimated events per kind (the taxonomy signal).
    double L1 = static_cast<double>(
                    T.Counts[static_cast<size_t>(HpmEventKind::L1DMiss)]) *
                Scale[static_cast<size_t>(HpmEventKind::L1DMiss)];
    double L2 = static_cast<double>(
                    T.Counts[static_cast<size_t>(HpmEventKind::L2Miss)]) *
                Scale[static_cast<size_t>(HpmEventKind::L2Miss)];
    double Tlb = static_cast<double>(
                     T.Counts[static_cast<size_t>(HpmEventKind::DtlbMiss)]) *
                 Scale[static_cast<size_t>(HpmEventKind::DtlbMiss)];
    double Total = L1 + L2 + Tlb;
    T.Counts = {};
    T.LastWindowRate = Total;
    WindowTotal += Total;
    if (Samples < Config.MinWindowSamples)
      continue; // Not hot this window; keep the label, skip hysteresis.

    BottleneckLabel Raw = rawLabel(L1, L2, Tlb, Total);
    if (T.Stable == BottleneckLabel::Unknown) {
      // First classification is immediate: there is no established label
      // to protect.
      T.Stable = Raw;
      T.Candidate = Raw;
      T.Streak = 0;
      noteLabelChange(M, Raw, Total, Ctx.Now);
    } else if (Raw == T.Stable) {
      T.Candidate = T.Stable;
      T.Streak = 0;
    } else if (Raw == T.Candidate) {
      if (++T.Streak >= Config.Hysteresis) {
        T.Stable = Raw;
        T.Streak = 0;
        noteLabelChange(M, Raw, Total, Ctx.Now);
      }
    } else {
      T.Candidate = Raw;
      T.Streak = 1;
      if (T.Streak >= Config.Hysteresis) {
        T.Stable = Raw;
        T.Streak = 0;
        noteLabelChange(M, Raw, Total, Ctx.Now);
      }
    }

    Hot.push_back({.Method = M,
                   .Label = T.Stable,
                   .L1Rate = L1,
                   .L2Rate = L2,
                   .TlbRate = Tlb,
                   .SampleRate = Samples});
  }
}

void BottleneckClassifier::noteLabelChange(MethodId M, BottleneckLabel L,
                                           double Rate, Cycles Now) {
  MLabelChanges->inc();
  if (Journal)
    Journal->append({.Ts = Now,
                     .Kind = DecisionKind::Classify,
                     .Consumer = "classify",
                     .Action = bottleneckLabelName(L),
                     .Method = M,
                     .Rate = Rate,
                     .Value = Windows});
}
