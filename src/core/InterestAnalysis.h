//===-- core/InterestAnalysis.h - (S, f) instruction pairs -----*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's "finding source instructions" pass (section 5.2): "For each
/// heap access instruction S it checks if the target address is loaded from
/// a field variable f (also located on the heap). If yes, it saves a tuple
/// (S, f). ... The opt-compiler computes this mapping by walking the
/// use-def edges upwards from heap access instructions (field/array access,
/// virtual calls and object-header access)."
///
/// A cache miss sampled at instruction S is then charged to reference field
/// f: co-allocating f's holder with f's referent makes the referent land on
/// (or next to) the holder's cache line.
///
/// The walk tracks reaching definitions within basic blocks (boundaries:
/// branch targets and the instruction after a branch), which covers the
/// dominant pattern the paper illustrates in Figure 1 (p.y.i ->
/// getfield y; getfield i).
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_CORE_INTERESTANALYSIS_H
#define HPMVM_CORE_INTERESTANALYSIS_H

#include "support/Types.h"
#include "vm/MachineCode.h"

#include <vector>

namespace hpmvm {

class ClassRegistry;

/// Computes, for every machine instruction of \p F, the reference field
/// through which its base address was loaded (kInvalidId when the
/// instruction is not a heap access or its base is not a field load).
std::vector<FieldId> computeInstructionsOfInterest(const MachineFunction &F,
                                                   const ClassRegistry &C);

} // namespace hpmvm

#endif // HPMVM_CORE_INTERESTANALYSIS_H
