//===-- core/PolicyEngine.h - Guarded optimization policy engine -*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "classify -> optimize only when empirically verified" half of the
/// roadmap's policy loop, generalizing the paper's one-shot coalloc-specific
/// assess-and-revert (section 5.3) to a menu of actions. At every
/// classification window boundary the engine:
///
///   1. feeds each tracked method's window sample rate into that method's
///      RegressionGate and handles verdicts: Accept keeps the action and
///      retires the method; Revert rolls the action back and blacklists the
///      (method, action) pair forever;
///   2. for each stably-classified hot method with no assessment in
///      flight, scores every non-blacklisted, not-yet-attempted action
///      against the method's bottleneck, applies the best-scoring one
///      (ties break by registration order: coalloc, prefetch, recompile),
///      and arms the gate.
///
/// Every step lands in the DecisionJournal -- Classify (by the classifier),
/// Score, Apply, Accept/Revert, Blacklist -- so `hpmvm_report` can render
/// the full causal chain record by record. All decisions are pure functions
/// of the deterministic sample stream, so policy-mode journals are
/// byte-identical across --jobs values.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_CORE_POLICYENGINE_H
#define HPMVM_CORE_POLICYENGINE_H

#include "core/BottleneckClassifier.h"
#include "core/OptimizationAction.h"
#include "core/RegressionGate.h"
#include "core/SampleConsumer.h"
#include "obs/Metrics.h"
#include "support/Types.h"

#include <vector>

namespace hpmvm {

class DecisionJournal;
class ObsContext;

/// Engine policy knobs. Carries the classifier's config too, so
/// RunConfig::Policy is one self-contained block.
struct PolicyEngineConfig {
  ClassifierConfig Classifier;
  /// Per-method regression gate, in units of classification windows (not
  /// raw periods: under multiplexing a single period sees one event kind,
  /// so per-period rates oscillate with the rotation). Zero-rate windows
  /// are skipped -- an idle method carries no verdict information.
  /// Windows are short-run friendly: 2 baseline + 1 warmup + 2 decision
  /// windows resolve a verdict within the benches' ~20 measurement
  /// periods at the default 3-period window. The regression factor is
  /// tighter than the legacy controller's 1.3 because it compares
  /// window *means* (already smoothed over WindowPeriods periods), not
  /// single-period rates: a genuine pessimization only has to clear 5%.
  GateConfig Gate = {.BaselineWindow = 2,
                     .DecisionWindow = 2,
                     .RegressionFactor = 1.05,
                     .WarmupPeriods = 1,
                     .IgnoreZeroRatePeriods = true};
  /// Windows a method must have been observed before its first action
  /// (a one-window baseline would make verdicts noise).
  size_t MinBaselineWindows = 2;
  /// Cap on simultaneously assessing methods; further candidates wait for
  /// a verdict. Keeps concurrent changes from confounding each other's
  /// gates.
  size_t MaxConcurrentAssessments = 4;
};

/// Drives OptimizationActions from BottleneckClassifier labels, guarded by
/// per-method regression gates with a per-(method, action) blacklist.
class PolicyEngine : public SampleConsumer {
public:
  /// \p Classifier must be registered on the pipeline *before* the engine,
  /// so the engine's onPeriod sees the freshly closed window.
  PolicyEngine(BottleneckClassifier &Classifier,
               const PolicyEngineConfig &Config = {});

  /// Registers an action provider (not owned). Registration order is the
  /// deterministic score tie-break, best first.
  void addAction(OptimizationAction &A) { Actions.push_back(&A); }

  // SampleConsumer: period-driven only; the classifier already aggregates
  // the samples.
  const char *name() const override { return "policy"; }
  bool wantsKind(HpmEventKind) const override { return false; }
  void onSample(const AttributedSample &) override {}
  void onPeriod(const PeriodContext &Ctx) override;

  /// Registers policy.applies / noops / accepts / reverts / blacklists and
  /// journals Score/Apply/Accept/Revert/Blacklist decisions.
  void attachObs(ObsContext &Obs) override;

  /// True when \p M 's \p K was reverted and must never be retried.
  bool blacklisted(MethodId M, ActionKind K) const {
    return M < States.size() &&
           (States[M].BlacklistMask & (1u << static_cast<unsigned>(K)));
  }
  /// True when an accepted action retired \p M from further optimization.
  bool accepted(MethodId M) const {
    return M < States.size() && States[M].Done;
  }

  uint64_t applies() const { return NApplies; }
  uint64_t accepts() const { return NAccepts; }
  uint64_t reverts() const { return NReverts; }
  uint64_t blacklists() const { return NBlacklists; }

  const PolicyEngineConfig &config() const { return Config; }

private:
  struct MethodState {
    RegressionGate Gate;
    OptimizationAction *Pending = nullptr; ///< Action under assessment.
    bool Tracked = false;
    bool Done = false;        ///< An action was accepted; method retired.
    uint8_t AttemptedMask = 0; ///< Applied or noop'd; never re-attempted.
    uint8_t BlacklistMask = 0; ///< Reverted; never retried.
  };

  static uint8_t bit(ActionKind K) {
    return static_cast<uint8_t>(1u << static_cast<unsigned>(K));
  }
  MethodState &stateFor(MethodId M);
  void handleVerdict(MethodId M, MethodState &St, RegressionGate::Verdict V,
                     Cycles Now);
  void considerMethod(const MethodBottleneck &B, MethodState &St,
                      Cycles Now);

  PolicyEngineConfig Config;
  BottleneckClassifier &Classifier;
  std::vector<OptimizationAction *> Actions;
  std::vector<MethodState> States;
  size_t BusyGates = 0;
  uint64_t NApplies = 0;
  uint64_t NAccepts = 0;
  uint64_t NReverts = 0;
  uint64_t NBlacklists = 0;
  Counter *MApplies = &Counter::sink();
  Counter *MNoops = &Counter::sink();
  Counter *MAccepts = &Counter::sink();
  Counter *MReverts = &Counter::sink();
  Counter *MBlacklists = &Counter::sink();
  DecisionJournal *Journal = nullptr;
};

} // namespace hpmvm

#endif // HPMVM_CORE_POLICYENGINE_H
