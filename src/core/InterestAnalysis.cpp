//===-- core/InterestAnalysis.cpp -----------------------------------------===//
//
// "The opt-compiler computes this mapping by walking the use-def edges
// upwards from heap access instructions": implemented as a dataflow over a
// per-register *origin* lattice tracking which reference field (if any)
// produced the value currently in each register.
//
// Lattice per register:
//   None      -- nothing assigned yet / null constant (merge identity);
//   Field(f)  -- the value was loaded by `getfield f` (f a ref field),
//                possibly moved through register copies since;
//   NotField  -- produced some other way (parameter, array element,
//                allocation, call result).
//
// The merge is *optimistic* for Field vs NotField (the field wins): in the
// canonical pointer-chase loop `cur = head; while (..) cur = cur.next;`
// the loop header merges a non-field initial value with a Field(next)
// back-edge value, and the misses inside the loop overwhelmingly belong to
// the `next` dereferences -- exactly the association the GC needs. Two
// *different* fields merge to NotField (ambiguous attribution is worse
// than none). Because the field-wins rule is not monotone, the solver runs
// a fixed number of rounds; the result is a deterministic heuristic, which
// is all a profile consumer needs.
//
//===----------------------------------------------------------------------===//

#include "core/InterestAnalysis.h"

#include "vm/ClassRegistry.h"

#include <cassert>

using namespace hpmvm;

namespace {

/// Origin encoding: field ids < kNotField, plus the two sentinels.
constexpr uint32_t kOriginNone = 0xffffffffu;
constexpr uint32_t kOriginNotField = 0xfffffffeu;

bool isBranch(MOp Op) {
  switch (Op) {
  case MOp::Br:
  case MOp::BrCmp:
  case MOp::BrZero:
  case MOp::BrNull:
  case MOp::BrNonNull:
    return true;
  default:
    return false;
  }
}

uint32_t mergeOrigin(uint32_t A, uint32_t B, const ClassRegistry &Classes) {
  if (A == B)
    return A;
  if (A == kOriginNone)
    return B;
  if (B == kOriginNone)
    return A;
  if (A == kOriginNotField)
    return B; // Field wins (optimistic).
  if (B == kOriginNotField)
    return A;
  // Two different fields. If they belong to the same class (the
  // tree-walk pattern `cur = flag ? cur.left : cur.right`), any of them
  // identifies the same parent class for co-allocation purposes; keep the
  // lower id deterministically. Fields of different classes are genuinely
  // ambiguous.
  if (Classes.field(A).Owner == Classes.field(B).Owner)
    return A < B ? A : B;
  return kOriginNotField;
}

} // namespace

std::vector<FieldId>
hpmvm::computeInstructionsOfInterest(const MachineFunction &F,
                                     const ClassRegistry &Classes) {
  const uint32_t N = static_cast<uint32_t>(F.Insts.size());
  std::vector<FieldId> Interest(N, kInvalidId);
  if (N == 0)
    return Interest;

  // --- Block structure ------------------------------------------------------
  std::vector<bool> Leader(N, false);
  Leader[0] = true;
  for (uint32_t I = 0; I != N; ++I) {
    const MachineInst &MI = F.Insts[I];
    if (isBranch(MI.Op)) {
      Leader[static_cast<uint32_t>(MI.Imm)] = true;
      if (I + 1 < N)
        Leader[I + 1] = true;
    } else if (MI.Op == MOp::Ret && I + 1 < N) {
      Leader[I + 1] = true;
    }
  }
  std::vector<uint32_t> BlockStart;
  std::vector<uint32_t> BlockOf(N);
  for (uint32_t I = 0; I != N; ++I) {
    if (Leader[I])
      BlockStart.push_back(I);
    BlockOf[I] = static_cast<uint32_t>(BlockStart.size() - 1);
  }
  const uint32_t NumBlocks = static_cast<uint32_t>(BlockStart.size());
  auto BlockEnd = [&](uint32_t B) {
    return B + 1 < NumBlocks ? BlockStart[B + 1] : N;
  };

  // --- Origin dataflow ------------------------------------------------------
  const uint32_t R = F.NumRegs;
  std::vector<std::vector<uint32_t>> In(
      NumBlocks, std::vector<uint32_t>(R, kOriginNone));
  // Parameters carry caller values: NotField.
  for (uint32_t Reg = 0; Reg != R; ++Reg)
    if (Reg < F.RegIsRefAtEntry.size() && F.RegIsRefAtEntry[Reg])
      In[0][Reg] = kOriginNotField;

  auto Transfer = [&](const MachineInst &MI, std::vector<uint32_t> &S) {
    if (MI.Dst == kNoReg)
      return;
    switch (MI.Op) {
    case MOp::LoadField:
      S[MI.Dst] = Classes.field(MI.Imm).IsRef
                      ? static_cast<uint32_t>(MI.Imm)
                      : kOriginNotField;
      break;
    case MOp::Mov:
      S[MI.Dst] = S[MI.SrcA];
      break;
    case MOp::MovImm:
      // A null-reference constant is the merge identity: `x = null; loop
      // { x = a.next; }` still attributes to next.
      S[MI.Dst] = MI.DstIsRef && MI.Imm == 0 ? kOriginNone
                                             : kOriginNotField;
      break;
    default:
      S[MI.Dst] = kOriginNotField;
      break;
    }
  };

  // Fixed-round solver (see the file comment on non-monotonicity).
  const int kRounds = 6;
  for (int Round = 0; Round != kRounds; ++Round) {
    bool Changed = false;
    for (uint32_t B = 0; B != NumBlocks; ++B) {
      std::vector<uint32_t> State = In[B];
      for (uint32_t I = BlockStart[B]; I != BlockEnd(B); ++I)
        Transfer(F.Insts[I], State);
      auto FlowTo = [&](uint32_t Target) {
        std::vector<uint32_t> &TIn = In[BlockOf[Target]];
        for (uint32_t Reg = 0; Reg != R; ++Reg) {
          uint32_t Merged = mergeOrigin(TIn[Reg], State[Reg], Classes);
          if (Merged != TIn[Reg]) {
            TIn[Reg] = Merged;
            Changed = true;
          }
        }
      };
      uint32_t LastIdx = BlockEnd(B) - 1;
      const MachineInst &LastI = F.Insts[LastIdx];
      if (isBranch(LastI.Op)) {
        FlowTo(static_cast<uint32_t>(LastI.Imm));
        if (LastI.Op != MOp::Br && LastIdx + 1 < N)
          FlowTo(LastIdx + 1);
      } else if (LastI.Op != MOp::Ret && LastIdx + 1 < N) {
        FlowTo(LastIdx + 1);
      }
    }
    if (!Changed)
      break;
  }

  // --- Final pass: record (S, f) pairs --------------------------------------
  for (uint32_t B = 0; B != NumBlocks; ++B) {
    std::vector<uint32_t> State = In[B];
    for (uint32_t I = BlockStart[B]; I != BlockEnd(B); ++I) {
      const MachineInst &MI = F.Insts[I];
      switch (MI.Op) {
      case MOp::LoadField:
      case MOp::StoreField:
      case MOp::LoadElem:
      case MOp::StoreElem:
      case MOp::ArrayLen:
        if (MI.SrcA != kNoReg && State[MI.SrcA] < kOriginNotField)
          Interest[I] = static_cast<FieldId>(State[MI.SrcA]);
        break;
      default:
        break;
      }
      Transfer(MI, State);
    }
  }
  return Interest;
}
