//===-- core/BottleneckClassifier.h - Per-method bottleneck labels -------===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns the multiplexed sample stream into per-method bottleneck labels:
/// the "measure -> classify" half of the roadmap's policy loop. The
/// classifier accumulates per-method L1D / L2 / DTLB sample counts over a
/// window of measurement periods; at each window boundary it duty-cycle
/// corrects the counts (PeriodContext::scale) and labels every method above
/// the hotness floor:
///
///   TLB-bound       DTLB share of scaled samples >= TlbFraction
///   bandwidth-bound else, scaled L2 / scaled L1 >= BandwidthFraction
///   latency-bound   else, scaled L1 rate >= LatencyRate
///   compute-bound   else (hot in samples, modest miss rates)
///
/// Labels are hysteresis-filtered: an established label only flips after
/// the replacement wins Hysteresis consecutive windows, so a method on a
/// threshold boundary does not oscillate (and does not make the engine
/// thrash apply/revert). The first classification is immediate.
///
/// The classifier is a passive pipeline consumer; the PolicyEngine reads
/// its window state from onPeriod (registration order puts the classifier
/// before the engine, so the engine always sees the fresh window).
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_CORE_BOTTLENECKCLASSIFIER_H
#define HPMVM_CORE_BOTTLENECKCLASSIFIER_H

#include "core/OptimizationAction.h"
#include "core/SampleConsumer.h"
#include "obs/Metrics.h"
#include "support/Types.h"

#include <array>
#include <vector>

namespace hpmvm {

class DecisionJournal;
class ObsContext;

/// Classification policy knobs.
struct ClassifierConfig {
  /// Measurement periods per classification window. Must cover at least a
  /// full multiplexer rotation, or some kinds are structurally absent from
  /// every window.
  size_t WindowPeriods = 3;
  /// Scaled-sample floor for a method to be classified at all in a window;
  /// below it the method keeps its previous label but is not listed hot.
  double MinWindowSamples = 4.0;
  /// Events per sample for each kind, indexed by HpmEventKind: the slot's
  /// sampling interval under multiplexing. Rarer kinds are sampled at
  /// shorter intervals so their sample counts stay usable; comparing raw
  /// counts across kinds would then over-weight them (a DTLB slot at
  /// interval 500 yields 10x the samples per event of an L1 slot at
  /// 5000). The harness fills this from the monitor's mux rotation.
  std::array<double, kNumHpmEventKinds> KindWeight = {1.0, 1.0, 1.0};
  /// DTLB share of estimated events at or above which a method is
  /// TLB-bound. High on purpose: page walks must dominate before page
  /// locality is *the* problem (and the paper found TLB-driven placement
  /// unrewarding, so the label mostly steers scores down).
  double TlbFraction = 0.4;
  /// L2 / L1 estimated-event ratio at or above which a method is
  /// bandwidth-bound (its L1 misses mostly keep going to memory).
  double BandwidthFraction = 0.5;
  /// Estimated L1D misses per window at or above which a method is
  /// latency-bound.
  double LatencyRate = 1000.0;
  /// Consecutive windows a replacement label must win before an
  /// established label flips. 1 disables hysteresis.
  size_t Hysteresis = 2;
};

/// Pipeline consumer that labels hot methods by bottleneck.
class BottleneckClassifier : public SampleConsumer {
public:
  explicit BottleneckClassifier(const ClassifierConfig &Config = {});

  // SampleConsumer.
  const char *name() const override { return "classify"; }
  void onSample(const AttributedSample &S) override;
  void consumeBatch(std::span<const AttributedSample> Batch) override;
  void onPeriod(const PeriodContext &Ctx) override;

  /// Registers classify.windows / classify.label_changes and journals a
  /// Classify record per label change.
  void attachObs(ObsContext &Obs) override;

  /// True during the onPeriod pass that closed a window (i.e. for any
  /// consumer registered after the classifier, until the next period).
  bool windowClosed() const { return JustClosed; }
  /// Windows completed so far.
  uint64_t windowsCompleted() const { return Windows; }

  /// The methods classified hot in the last closed window, MethodId
  /// ascending, each carrying its stable label and window rates.
  const std::vector<MethodBottleneck> &hotMethods() const { return Hot; }

  /// Stable (hysteresis-filtered) label of \p M; Unknown if never hot.
  BottleneckLabel label(MethodId M) const {
    return M < Tracks.size() ? Tracks[M].Stable : BottleneckLabel::Unknown;
  }

  /// Estimated total events of \p M in the last closed window. 0 for
  /// unseen methods.
  double windowRate(MethodId M) const {
    return M < Tracks.size() ? Tracks[M].LastWindowRate : 0.0;
  }

  /// Estimated events across *all* methods in the last closed window.
  double totalWindowRate() const { return WindowTotal; }

  const ClassifierConfig &config() const { return Config; }

private:
  struct MethodTrack {
    /// Raw per-kind counts for the window in progress.
    std::array<uint64_t, kNumHpmEventKinds> Counts = {};
    BottleneckLabel Stable = BottleneckLabel::Unknown;
    BottleneckLabel Candidate = BottleneckLabel::Unknown;
    uint32_t Streak = 0;
    double LastWindowRate = 0.0;
  };

  void ensureMethod(MethodId Id) {
    if (Id >= Tracks.size())
      Tracks.resize(Id + 1);
  }
  BottleneckLabel rawLabel(double L1, double L2, double Tlb,
                           double Total) const;
  void noteLabelChange(MethodId M, BottleneckLabel L, double Rate,
                       Cycles Now);

  ClassifierConfig Config;
  std::vector<MethodTrack> Tracks;
  std::vector<MethodBottleneck> Hot;
  size_t PeriodsInWindow = 0;
  double WindowTotal = 0.0;
  uint64_t Windows = 0;
  bool JustClosed = false;
  Counter *MWindows = &Counter::sink();
  Counter *MLabelChanges = &Counter::sink();
  DecisionJournal *Journal = nullptr;
};

} // namespace hpmvm

#endif // HPMVM_CORE_BOTTLENECKCLASSIFIER_H
