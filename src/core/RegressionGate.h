//===-- core/RegressionGate.h - Reusable assess-and-revert gate -*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pure state machine behind the paper's assess-and-revert loop,
/// extracted from OptimizationController so the PolicyEngine can run one
/// gate per guarded (method, action) pair. The gate maintains a sliding
/// baseline of the observed rate; after noteChange() it skips a warm-up,
/// collects a decision window, and delivers a Reverted or Accepted verdict
/// by comparing the post-change mean against baseline * RegressionFactor.
///
/// The gate is observation-only: it fires no actions and writes no journal
/// records. OptimizationController wraps one gate and adds the obs plumbing
/// (metrics, trace instants, journal records, the revert callback);
/// PolicyEngine does the same for a whole fleet of gates.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_CORE_REGRESSIONGATE_H
#define HPMVM_CORE_REGRESSIONGATE_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hpmvm {

/// Gate policy. (OptimizationController aliases this as ControllerConfig;
/// the fields predate the extraction.)
struct GateConfig {
  size_t BaselineWindow = 4;  ///< Periods averaged for the baseline.
  size_t DecisionWindow = 4;  ///< Periods observed after a change.
  /// Revert when post-change mean rate > baseline * this factor.
  double RegressionFactor = 1.3;
  /// Ignore this many periods right after the change (placement effects
  /// only appear once the GC has promoted objects under the new policy).
  size_t WarmupPeriods = 1;
  /// Skip periods with a zero rate entirely (program phases with no
  /// activity on the monitored class carry no information; deciding on
  /// them would compare lulls against load).
  bool IgnoreZeroRatePeriods = false;
};

/// Tracks one guarded change from baseline through verdict.
class RegressionGate {
public:
  enum class State : uint8_t {
    Monitoring, ///< Maintaining the baseline.
    Warmup,     ///< Change applied; skipping warm-up periods.
    Assessing,  ///< Collecting the decision window.
    Reverted,   ///< Regression detected.
    Accepted,   ///< Change kept (no regression).
  };

  /// What observe() concluded this period (None until a decision window
  /// fills).
  enum class Verdict : uint8_t { None, Reverted, Accepted };

  explicit RegressionGate(const GateConfig &Config = {}) : Config(Config) {
    assert(Config.BaselineWindow > 0 && Config.DecisionWindow > 0 &&
           "windows must be non-empty");
  }

  /// Feeds one measurement period's event rate (events per period or per
  /// second -- any consistent unit). \returns the verdict reached this
  /// period, if any.
  Verdict observe(double Rate);

  /// Declares that a policy change was just applied; assessment starts.
  /// The baseline stays: it describes the pre-change behaviour.
  void noteChange() {
    Current = State::Warmup;
    Skipped = 0;
  }

  State state() const { return Current; }
  double baseline() const { return Baseline; }
  double assessed() const { return Assessed; }
  /// The baseline as it stood when the last verdict was reached (the
  /// running baseline keeps moving afterwards).
  double decisionBaseline() const { return BaselineAtDecision; }
  size_t observed() const { return Observed; }
  /// True while a change is under warm-up or assessment (a second change
  /// fed into such a gate would muddy the verdict).
  bool busy() const {
    return Current == State::Warmup || Current == State::Assessing;
  }

private:
  GateConfig Config;
  State Current = State::Monitoring;
  std::vector<double> Window;
  double Baseline = 0.0;
  double Assessed = 0.0;
  double BaselineAtDecision = 0.0;
  size_t Observed = 0;
  size_t Skipped = 0;
};

} // namespace hpmvm

#endif // HPMVM_CORE_REGRESSIONGATE_H
