//===-- core/PrefetchInjector.h - HPM-driven prefetch injection -*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The *other* consumer of HPM feedback the paper discusses (related work,
/// Adl-Tabatabai et al., PLDI 2004): instead of moving objects, recompile
/// hot methods with software prefetches injected after loads of
/// frequently-missed reference fields ("They insert prefetch instructions
/// after dynamically monitoring cache misses"). Implemented here as an
/// extension so the ablation bench can compare feedback-driven
/// *prefetching* against feedback-driven *co-allocation* on the same
/// substrate -- including the paper's caution that "software prefetching
/// must be used consciously because fetching the wrong data into the cache
/// may have a negative performance impact".
///
/// Two modes: the static injectHotPrefetches() one-shot pass (driven from
/// a period observer, as the ablation bench does), and a pipeline
/// consumer that accumulates its own miss profile and triggers the pass
/// autonomously -- optionally under an OptimizationController that
/// reverts the rewrite (reinstalling the saved original bodies) if the
/// miss rate regresses, the paper's assess-and-revert loop applied to
/// exactly the risky optimization it warns about.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_CORE_PREFETCHINJECTOR_H
#define HPMVM_CORE_PREFETCHINJECTOR_H

#include "core/FieldMissTable.h"
#include "core/OptimizationAction.h"
#include "core/SampleConsumer.h"
#include "obs/Metrics.h"
#include "support/Types.h"
#include "vm/MachineCode.h"

#include <utility>
#include <vector>

namespace hpmvm {

class DecisionJournal;
class ObsContext;
class OptimizationController;
class VirtualMachine;

/// Outcome of one injection pass.
struct PrefetchInjectionStats {
  uint32_t MethodsRewritten = 0;
  uint32_t PrefetchesInserted = 0;
};

/// Consumer-mode policy.
struct PrefetchInjectorConfig {
  /// Total sampled misses in the consumer's own profile before the first
  /// injection pass fires.
  uint64_t TriggerSamples = 16;
  /// Per-field miss floor for a field to count as hot in a pass.
  uint64_t MinMisses = 4;
};

/// Rewrites compiled code to prefetch hot fields' referents. Also an
/// OptimizationAction: under the PolicyEngine a single method is rewritten
/// per apply (against the monitor's shared miss table, see
/// setMissSource) and individually revertible.
class PrefetchInjector : public SampleConsumer, public OptimizationAction {
public:
  PrefetchInjector(VirtualMachine &Vm,
                   const PrefetchInjectorConfig &Config = {});

  /// For every opt-compiled application method, inserts a Prefetch after
  /// each LoadField of a reference field with at least \p MinMisses
  /// sampled misses, and reinstalls the method (the old code is retired in
  /// place, exactly like an AOS recompilation). Idempotent per method: a
  /// method already carrying prefetches for the current hot set is
  /// skipped. When \p SavedOriginals is given, the pre-rewrite body of
  /// every rewritten method is appended to it (for revert).
  static PrefetchInjectionStats injectHotPrefetches(
      VirtualMachine &Vm, const FieldMissTable &Table, uint64_t MinMisses,
      std::vector<std::pair<MethodId, MachineFunction>> *SavedOriginals =
          nullptr);

  // SampleConsumer: accumulate a private miss profile; inject once the
  // trigger threshold is reached.
  const char *name() const override { return "prefetch"; }
  void onSample(const AttributedSample &S) override {
    if (S.Field != kInvalidId) {
      Table.addMiss(S.Field);
      ++PeriodSamples;
    }
  }
  void consumeBatch(std::span<const AttributedSample> Batch) override {
    for (const AttributedSample &S : Batch)
      if (S.Field != kInvalidId) {
        Table.addMiss(S.Field);
        ++PeriodSamples;
      }
  }
  void onPeriod(const PeriodContext &Ctx) override;

  /// Registers prefetch.methods_rewritten / prefetch.insertions /
  /// prefetch.reverts and journals PrefetchInject/Revert decisions.
  void attachObs(ObsContext &Obs) override;

  /// Optional assess-and-revert: the controller (not owned) observes the
  /// consumer's per-period attributed-miss rate; the injection pass is
  /// declared as its policy change, and its revert action reinstalls the
  /// saved original method bodies.
  void setController(OptimizationController *C);

  bool injected() const { return Injected; }
  bool reverted() const { return Reverted; }
  const PrefetchInjectionStats &stats() const { return Total; }
  /// The consumer's private miss profile.
  const FieldMissTable &missProfile() const { return Table; }

  /// Miss table the per-method action path reads hot fields from (the
  /// monitor's shared table, in policy-engine mode). Defaults to the
  /// consumer's private profile.
  void setMissSource(const FieldMissTable *T) { MissSource = T; }

  // OptimizationAction: per-method injection, guarded by the engine.
  ActionKind kind() const override { return ActionKind::PrefetchInject; }
  const char *actionName() const override { return "prefetch"; }
  double score(const MethodBottleneck &B) const override {
    switch (B.Label) {
    case BottleneckLabel::LatencyBound:
      // Deliberately ties coalloc's latency score; the engine's
      // registration-order tie-break prefers removing misses over hiding
      // them, so prefetching is the fallback once coalloc is blacklisted.
      return 2.0 * B.L1Rate;
    case BottleneckLabel::BandwidthBound:
      // "Software prefetching must be used consciously": under bandwidth
      // pressure extra fetches compete for the same memory pipe.
      return 0.5 * B.L2Rate;
    case BottleneckLabel::Unknown:
    case BottleneckLabel::TlbBound:
    case BottleneckLabel::ComputeBound:
      return 0.0;
    }
    return 0.0;
  }
  bool apply(MethodId M) override;
  void revert(MethodId M) override;

private:
  void revert();

  VirtualMachine &Vm;
  PrefetchInjectorConfig Config;
  FieldMissTable Table; ///< Private profile; not shared with the monitor.
  const FieldMissTable *MissSource = nullptr; ///< Action-path hot fields.
  OptimizationController *Controller = nullptr;
  std::vector<std::pair<MethodId, MachineFunction>> SavedOriginals;
  PrefetchInjectionStats Total;
  uint64_t PeriodSamples = 0;
  bool Injected = false;
  bool Reverted = false;
  Counter *MRewritten = &Counter::sink();
  Counter *MInserted = &Counter::sink();
  Counter *MReverts = &Counter::sink();
  DecisionJournal *Journal = nullptr;
};

} // namespace hpmvm

#endif // HPMVM_CORE_PREFETCHINJECTOR_H
