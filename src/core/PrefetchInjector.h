//===-- core/PrefetchInjector.h - HPM-driven prefetch injection -*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The *other* consumer of HPM feedback the paper discusses (related work,
/// Adl-Tabatabai et al., PLDI 2004): instead of moving objects, recompile
/// hot methods with software prefetches injected after loads of
/// frequently-missed reference fields ("They insert prefetch instructions
/// after dynamically monitoring cache misses"). Implemented here as an
/// extension so the ablation bench can compare feedback-driven
/// *prefetching* against feedback-driven *co-allocation* on the same
/// substrate -- including the paper's caution that "software prefetching
/// must be used consciously because fetching the wrong data into the cache
/// may have a negative performance impact".
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_CORE_PREFETCHINJECTOR_H
#define HPMVM_CORE_PREFETCHINJECTOR_H

#include "core/FieldMissTable.h"
#include "support/Types.h"

namespace hpmvm {

class VirtualMachine;

/// Outcome of one injection pass.
struct PrefetchInjectionStats {
  uint32_t MethodsRewritten = 0;
  uint32_t PrefetchesInserted = 0;
};

/// Rewrites compiled code to prefetch hot fields' referents.
class PrefetchInjector {
public:
  /// For every opt-compiled application method, inserts a Prefetch after
  /// each LoadField of a reference field with at least \p MinMisses
  /// sampled misses, and reinstalls the method (the old code is retired in
  /// place, exactly like an AOS recompilation). Idempotent per method: a
  /// method already carrying prefetches for the current hot set is
  /// skipped.
  static PrefetchInjectionStats injectHotPrefetches(
      VirtualMachine &Vm, const FieldMissTable &Table, uint64_t MinMisses);
};

} // namespace hpmvm

#endif // HPMVM_CORE_PREFETCHINJECTOR_H
