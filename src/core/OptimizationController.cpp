//===-- core/OptimizationController.cpp -----------------------------------===//

#include "core/OptimizationController.h"

#include "obs/Obs.h"
#include "support/VirtualClock.h"

#include <cassert>
#include <numeric>

using namespace hpmvm;

void OptimizationController::attachObs(ObsContext &Obs,
                                       const VirtualClock *C) {
  MPolicyChanges = &Obs.metrics().counter("controller.policy_changes");
  MReverts = &Obs.metrics().counter("controller.reverts");
  MAccepts = &Obs.metrics().counter("controller.accepts");
  Trace = &Obs.trace();
  Journal = &Obs.journal();
  Clock = C;
}

OptimizationController::OptimizationController(const ControllerConfig &Config)
    : Config(Config) {
  assert(Config.BaselineWindow > 0 && Config.DecisionWindow > 0 &&
         "windows must be non-empty");
}

void OptimizationController::observePeriod(double Rate) {
  if (Config.IgnoreZeroRatePeriods && Rate == 0.0)
    return;
  ++Observed;
  switch (Current) {
  case State::Monitoring:
  case State::Accepted:
  case State::Reverted: {
    Window.push_back(Rate);
    if (Window.size() > Config.BaselineWindow)
      Window.erase(Window.begin());
    Baseline = std::accumulate(Window.begin(), Window.end(), 0.0) /
               static_cast<double>(Window.size());
    return;
  }
  case State::Warmup:
    if (++Skipped >= Config.WarmupPeriods) {
      Current = State::Assessing;
      Window.clear();
    }
    return;
  case State::Assessing: {
    Window.push_back(Rate);
    if (Window.size() < Config.DecisionWindow)
      return;
    Assessed = std::accumulate(Window.begin(), Window.end(), 0.0) /
               static_cast<double>(Window.size());
    BaselineAtDecision = Baseline;
    if (Baseline > 0.0 && Assessed > Baseline * Config.RegressionFactor) {
      Current = State::Reverted;
      MReverts->inc();
      if (Trace && Clock)
        Trace->instant(Clock->now(), "controller.revert", "controller",
                       "assessed_rate_x1000",
                       static_cast<uint64_t>(Assessed * 1000.0));
      if (Journal)
        Journal->append({.Ts = Clock ? Clock->now() : 0,
                         .Kind = DecisionKind::Revert,
                         .Consumer = Subject,
                         .Action = "assessment",
                         .Outcome = "regression",
                         .Rate = Assessed,
                         .Baseline = BaselineAtDecision,
                         .Value = Observed});
      if (Revert)
        Revert();
    } else {
      Current = State::Accepted;
      MAccepts->inc();
      if (Trace && Clock)
        Trace->instant(Clock->now(), "controller.accept", "controller",
                       "assessed_rate_x1000",
                       static_cast<uint64_t>(Assessed * 1000.0));
      if (Journal)
        Journal->append({.Ts = Clock ? Clock->now() : 0,
                         .Kind = DecisionKind::Accept,
                         .Consumer = Subject,
                         .Action = "assessment",
                         .Outcome = "no_regression",
                         .Rate = Assessed,
                         .Baseline = BaselineAtDecision,
                         .Value = Observed});
    }
    Window.clear();
    return;
  }
  }
}

void OptimizationController::notePolicyChange() {
  Current = State::Warmup;
  Skipped = 0;
  MPolicyChanges->inc();
  if (Trace && Clock)
    Trace->instant(Clock->now(), "controller.policy_change", "controller");
  if (Journal)
    Journal->append({.Ts = Clock ? Clock->now() : 0,
                     .Kind = DecisionKind::Assess,
                     .Consumer = Subject,
                     .Action = "policy_change",
                     .Rate = Baseline,
                     .Value = Observed});
  // Baseline stays: it describes the pre-change behaviour.
}
