//===-- core/OptimizationController.cpp -----------------------------------===//

#include "core/OptimizationController.h"

#include "obs/Obs.h"
#include "support/VirtualClock.h"

using namespace hpmvm;

void OptimizationController::attachObs(ObsContext &Obs,
                                       const VirtualClock *C) {
  MPolicyChanges = &Obs.metrics().counter("controller.policy_changes");
  MReverts = &Obs.metrics().counter("controller.reverts");
  MAccepts = &Obs.metrics().counter("controller.accepts");
  Trace = &Obs.trace();
  Journal = &Obs.journal();
  Clock = C;
}

OptimizationController::OptimizationController(const ControllerConfig &Config)
    : Gate(Config) {}

void OptimizationController::observePeriod(double Rate) {
  switch (Gate.observe(Rate)) {
  case RegressionGate::Verdict::None:
    return;
  case RegressionGate::Verdict::Reverted:
    MReverts->inc();
    if (Trace && Clock)
      Trace->instant(Clock->now(), "controller.revert", "controller",
                     "assessed_rate_x1000",
                     static_cast<uint64_t>(Gate.assessed() * 1000.0));
    if (Journal)
      Journal->append({.Ts = Clock ? Clock->now() : 0,
                       .Kind = DecisionKind::Revert,
                       .Consumer = Subject,
                       .Action = "assessment",
                       .Outcome = "regression",
                       .Rate = Gate.assessed(),
                       .Baseline = Gate.decisionBaseline(),
                       .Value = Gate.observed()});
    if (Revert)
      Revert();
    return;
  case RegressionGate::Verdict::Accepted:
    MAccepts->inc();
    if (Trace && Clock)
      Trace->instant(Clock->now(), "controller.accept", "controller",
                     "assessed_rate_x1000",
                     static_cast<uint64_t>(Gate.assessed() * 1000.0));
    if (Journal)
      Journal->append({.Ts = Clock ? Clock->now() : 0,
                       .Kind = DecisionKind::Accept,
                       .Consumer = Subject,
                       .Action = "assessment",
                       .Outcome = "no_regression",
                       .Rate = Gate.assessed(),
                       .Baseline = Gate.decisionBaseline(),
                       .Value = Gate.observed()});
    return;
  }
}

void OptimizationController::notePolicyChange() {
  Gate.noteChange();
  MPolicyChanges->inc();
  if (Trace && Clock)
    Trace->instant(Clock->now(), "controller.policy_change", "controller");
  if (Journal)
    Journal->append({.Ts = Clock ? Clock->now() : 0,
                     .Kind = DecisionKind::Assess,
                     .Consumer = Subject,
                     .Action = "policy_change",
                     .Rate = Gate.baseline(),
                     .Value = Gate.observed()});
}
