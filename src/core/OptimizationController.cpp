//===-- core/OptimizationController.cpp -----------------------------------===//

#include "core/OptimizationController.h"

#include <cassert>
#include <numeric>

using namespace hpmvm;

OptimizationController::OptimizationController(const ControllerConfig &Config)
    : Config(Config) {
  assert(Config.BaselineWindow > 0 && Config.DecisionWindow > 0 &&
         "windows must be non-empty");
}

void OptimizationController::observePeriod(double Rate) {
  if (Config.IgnoreZeroRatePeriods && Rate == 0.0)
    return;
  ++Observed;
  switch (Current) {
  case State::Monitoring:
  case State::Accepted:
  case State::Reverted: {
    Window.push_back(Rate);
    if (Window.size() > Config.BaselineWindow)
      Window.erase(Window.begin());
    Baseline = std::accumulate(Window.begin(), Window.end(), 0.0) /
               static_cast<double>(Window.size());
    return;
  }
  case State::Warmup:
    if (++Skipped >= Config.WarmupPeriods) {
      Current = State::Assessing;
      Window.clear();
    }
    return;
  case State::Assessing: {
    Window.push_back(Rate);
    if (Window.size() < Config.DecisionWindow)
      return;
    Assessed = std::accumulate(Window.begin(), Window.end(), 0.0) /
               static_cast<double>(Window.size());
    BaselineAtDecision = Baseline;
    if (Baseline > 0.0 && Assessed > Baseline * Config.RegressionFactor) {
      Current = State::Reverted;
      if (Revert)
        Revert();
    } else {
      Current = State::Accepted;
    }
    Window.clear();
    return;
  }
  }
}

void OptimizationController::notePolicyChange() {
  Current = State::Warmup;
  Skipped = 0;
  // Baseline stays: it describes the pre-change behaviour.
}
