//===-- core/HpmMonitor.cpp -----------------------------------------------===//

#include "core/HpmMonitor.h"

#include "core/InterestAnalysis.h"
#include "obs/Obs.h"
#include "vm/VirtualMachine.h"

#include <cassert>

using namespace hpmvm;

HpmMonitor::HpmMonitor(VirtualMachine &Vm, const MonitorConfig &Config)
    : Vm(Vm), Config(Config), Pebs(Config.Seed), Perfmon(Pebs),
      Native(Perfmon) {
  Collector = std::make_unique<SampleCollector>(Native, Vm.clock(),
                                                Config.Collector);
  Resolver = std::make_unique<SampleResolver>(Vm);
  Advisor = std::make_unique<CoallocationAdvisor>(Vm.classes(), Table,
                                                  Config.Advisor);
  if (Config.AutoInterval) {
    AutoIntervalConfig AC;
    AC.TargetSamplesPerSec = Config.TargetSamplesPerSec;
    AutoCtl = std::make_unique<SamplingIntervalController>(Pebs, Vm.clock(),
                                                           AC);
  }
}

void HpmMonitor::attachObs(ObsContext &Obs) {
  Perfmon.attachObs(Obs); // Covers the PEBS unit as well.
  Native.attachObs(Obs);
  Collector->attachObs(Obs);
  Resolver->attachObs(Obs);
  Table.attachObs(Obs);
  Advisor->attachObs(Obs);
  if (AutoCtl)
    AutoCtl->attachObs(Obs);
  Trace = &Obs.trace();
  MBatches = &Obs.metrics().counter("monitor.batches");
  MProcessed = &Obs.metrics().counter("monitor.samples_processed");
  MAttributed = &Obs.metrics().counter("monitor.samples_attributed");
  MVmInternal = &Obs.metrics().counter("monitor.samples_vm_internal");
  MBaselineCode = &Obs.metrics().counter("monitor.samples_baseline_code");
}

void HpmMonitor::attach() {
  assert(!Attached && "monitor attached twice");
  Attached = true;

  Pebs.setClock(&Vm.clock());
  Native.setClock(&Vm.clock());
  // The GC must not run while samples are copied out of the kernel.
  Native.setGcLock(
      [this](bool Locked) { Vm.collector().setGcAllowed(!Locked); });

  Collector->setConsumer([this](const PebsSample *Samples, size_t N) {
    processBatch(Samples, N);
  });

  // Feed every memory event to the PEBS unit and poll at safepoints. The
  // auto-interval controller adjusts after every poll -- including empty
  // ones, which are precisely the signal that the interval is too coarse.
  Vm.memory().setListener(&Pebs);
  Vm.setSafepointHook([this] {
    uint64_t Before = Collector->polls();
    Collector->maybePoll();
    if (AutoCtl && Collector->polls() != Before)
      AutoCtl->onPoll();
  });

  // The GC consults the advisor during promotion.
  Vm.collector().setPlacementAdvisor(Advisor.get());

  Perfmon.startSampling(Config.Event, Config.SamplingInterval,
                        Config.RandomizeIntervalBits);
}

void HpmMonitor::finish() {
  if (!Attached || Finished)
    return;
  Finished = true;
  // Drain everything still buffered, then stop the hardware.
  Collector->pollNow();
  Perfmon.stopSampling();
  Vm.memory().setListener(nullptr);
  Vm.setSafepointHook({});
}

const std::vector<FieldId> &HpmMonitor::interestFor(uint32_t OptIndex) {
  auto It = InterestCache.find(OptIndex);
  if (It != InterestCache.end())
    return It->second;
  const MachineFunction &F = Vm.compiledCode(OptIndex);
  auto [NewIt, Inserted] = InterestCache.emplace(
      OptIndex, computeInstructionsOfInterest(F, Vm.classes()));
  assert(Inserted);
  return NewIt->second;
}

void HpmMonitor::processBatch(const PebsSample *Samples, size_t N) {
  // VM-side processing cost: method-table lookup, MC-map walk, counter
  // bookkeeping. Charged per sample to the virtual clock (this is the
  // dominant share of Figure 2's overhead).
  Cycles Cost = static_cast<Cycles>(N) * kSampleProcessCycles;
  Vm.clock().advance(Cost);
  Stats.ProcessingCycles += Cost;

  for (size_t I = 0; I != N; ++I) {
    ++Stats.SamplesProcessed;
    switch (Vm.collector().spaceOf(Samples[I].Regs[0])) {
    case SpaceId::Nursery:
      ++Stats.DataInNursery;
      break;
    case SpaceId::Los:
      ++Stats.DataInLos;
      break;
    case SpaceId::Free:
      break;
    default:
      ++Stats.DataInMature;
      break;
    }
    ResolvedSample R = Resolver->resolve(Samples[I].Eip);
    if (!R.Valid)
      continue;
    const Method &M = Vm.method(R.Method);
    if (M.IsVmInternal && !Config.MonitorVmInternal) {
      ++Stats.SamplesVmInternal;
      MVmInternal->inc();
      continue;
    }
    if (R.Flavor != CodeFlavor::Optimized) {
      // Baseline code carries no instructions-of-interest (the paper only
      // computes them for opt-compiled methods).
      ++Stats.SamplesBaselineCode;
      MBaselineCode->inc();
      continue;
    }
    const std::vector<FieldId> &Interest = interestFor(R.OptIndex);
    FieldId F = Interest[R.InstIdx];
    if (F == kInvalidId)
      continue;
    Table.addMiss(F);
    ++Stats.SamplesAttributed;
    MAttributed->inc();
  }

  MBatches->inc();
  MProcessed->inc(N);
  if (Trace)
    Trace->instant(Vm.clock().now(), "monitor.batch", "monitor", "samples",
                   N);

  // One batch = one measurement period (the paper's stepwise-constant
  // timeline granularity).
  Table.endPeriod(Vm.clock().now());
  if (PeriodObserver)
    PeriodObserver();
}

Cycles HpmMonitor::overheadCycles() const {
  // The collector measures its polls as clock deltas, which already cover
  // the native-library copy and the VM-side batch processing that run
  // inside the poll; only the PEBS microcode (stolen during execution) is
  // additional.
  return Pebs.microcodeCycles() + Collector->overheadCycles();
}
