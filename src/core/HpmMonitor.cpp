//===-- core/HpmMonitor.cpp -----------------------------------------------===//

#include "core/HpmMonitor.h"

#include "core/InterestAnalysis.h"
#include "obs/Obs.h"
#include "vm/VirtualMachine.h"

#include <cassert>

using namespace hpmvm;

HpmMonitor::HpmMonitor(VirtualMachine &Vm, const MonitorConfig &Config)
    : Vm(Vm), Config(Config), Pebs(Config.Seed), Perfmon(Pebs),
      Native(Perfmon) {
  // A single Events slot is just single-event sampling under another name.
  if (this->Config.Events.size() == 1) {
    this->Config.Event = this->Config.Events[0].Kind;
    this->Config.SamplingInterval = this->Config.Events[0].Interval;
    this->Config.Events.clear();
  }
  Native.setTenant(this->Config.Tenant);
  Collector = std::make_unique<SampleCollector>(Native, Vm.clock(),
                                                Config.Collector);
  Resolver = std::make_unique<SampleResolver>(Vm);
  Advisor = std::make_unique<CoallocationAdvisor>(Vm.classes(), Table,
                                                  Config.Advisor);
  Advisor->setClock(&Vm.clock()); // Stamps the advisor's journal records.
  Pipeline.addConsumer(TableConsumer);
  if (this->Config.Events.size() > 1) {
    assert(!Config.AutoInterval &&
           "auto-interval and multiplexing both reprogram the interval");
    MultiplexerConfig MC;
    MC.Rotation = this->Config.Events;
    MC.SliceMs = this->Config.MuxSliceMs;
    Mux = std::make_unique<EventMultiplexer>(Perfmon, Vm.clock(), MC);
  }
  if (Config.AutoInterval) {
    AutoIntervalConfig AC;
    AC.TargetSamplesPerSec = Config.TargetSamplesPerSec;
    AutoCtl = std::make_unique<SamplingIntervalController>(Pebs, Vm.clock(),
                                                           AC);
  }
}

void HpmMonitor::attachObs(ObsContext &Obs) {
  Perfmon.attachObs(Obs); // Covers the PEBS unit as well.
  Native.attachObs(Obs);
  Collector->attachObs(Obs);
  Resolver->attachObs(Obs);
  Table.attachObs(Obs);
  Advisor->attachObs(Obs);
  if (AutoCtl)
    AutoCtl->attachObs(Obs);
  if (Mux)
    Mux->attachObs(Obs);
  Pipeline.attachObs(Obs);
  Trace = &Obs.trace();
  if (Obs.selfProfiler().enabled())
    Prof = &Obs.selfProfiler();
  MBatches = &Obs.metrics().counter("monitor.batches");
  MProcessed = &Obs.metrics().counter("monitor.samples_processed");
  MAttributed = &Obs.metrics().counter("monitor.samples_attributed");
  MVmInternal = &Obs.metrics().counter("monitor.samples_vm_internal");
  MBaselineCode = &Obs.metrics().counter("monitor.samples_baseline_code");
}

void HpmMonitor::attach() {
  assert(!Attached && "monitor attached twice");
  Attached = true;

  Pebs.setClock(&Vm.clock());
  Native.setClock(&Vm.clock());
  // The GC must not run while samples are copied out of the kernel.
  Native.setGcLock(
      [this](bool Locked) { Vm.collector().setGcAllowed(!Locked); });

  Collector->setConsumer([this](const PebsSample *Samples, size_t N) {
    processBatch(Samples, N);
  });

  // Feed every memory event to the PEBS unit and poll at safepoints. The
  // auto-interval controller adjusts after every poll -- including empty
  // ones, which are precisely the signal that the interval is too coarse.
  // The multiplexer rotates only after a poll has drained the buffer, so
  // every sample is attributed to the kind that produced it.
  Vm.memory().setListener(&Pebs);
  Vm.setSafepointHook([this] {
    uint64_t PollsBefore = Collector->polls();
    uint64_t DeliveredBefore = Collector->samplesDelivered();
    Collector->maybePoll();
    if (Collector->polls() == PollsBefore)
      return;
    if (AutoCtl)
      AutoCtl->onPoll();
    if (Mux)
      Mux->onPoll(Collector->samplesDelivered() - DeliveredBefore);
  });

  // The GC consults the advisor during promotion.
  Vm.collector().setPlacementAdvisor(Advisor.get());

  if (Mux)
    Mux->start();
  else
    Perfmon.startSampling(Config.Event, Config.SamplingInterval,
                          Config.RandomizeIntervalBits);
}

void HpmMonitor::finish() {
  if (!Attached || Finished)
    return;
  Finished = true;
  // Drain everything still buffered, then stop the hardware.
  Collector->pollNow();
  if (Mux)
    Mux->stop();
  else
    Perfmon.stopSampling();
  Vm.memory().setListener(nullptr);
  Vm.setSafepointHook({});
}

const std::vector<FieldId> &HpmMonitor::interestFor(uint32_t OptIndex) {
  if (OptIndex >= InterestCache.size()) {
    InterestCache.resize(OptIndex + 1);
    InterestCached.resize(OptIndex + 1, 0);
  }
  if (!InterestCached[OptIndex]) {
    InterestCache[OptIndex] = computeInstructionsOfInterest(
        Vm.compiledCode(OptIndex), Vm.classes());
    InterestCached[OptIndex] = 1;
  }
  return InterestCache[OptIndex];
}

bool HpmMonitor::attribute(const ResolvedSample &R, Address DataAddr,
                           HpmEventKind Kind, AttributedSample &A) {
  if (!R.Valid)
    return false;
  const Method &M = Vm.method(R.Method);
  if (M.IsVmInternal && !Config.MonitorVmInternal) {
    ++Stats.SamplesVmInternal;
    MVmInternal->inc();
    return false;
  }
  A = AttributedSample{};
  A.Kind = Kind;
  A.Tenant = Config.Tenant;
  A.Method = R.Method;
  A.Flavor = R.Flavor;
  A.InstIdx = R.InstIdx;
  A.OptIndex = R.OptIndex;
  A.DataAddr = DataAddr;
  if (R.Flavor != CodeFlavor::Optimized) {
    // Baseline code carries no instructions-of-interest (the paper only
    // computes them for opt-compiled methods); the sample is still
    // dispatched, unattributed, for method-level consumers.
    ++Stats.SamplesBaselineCode;
    MBaselineCode->inc();
    return true;
  }
  const std::vector<FieldId> &Interest = interestFor(R.OptIndex);
  A.Field = Interest[R.InstIdx];
  if (A.Field != kInvalidId) {
    ++Stats.SamplesAttributed;
    MAttributed->inc();
  }
  return true;
}

void HpmMonitor::processBatch(const PebsSample *Samples, size_t N) {
  // VM-side processing cost: method-table lookup, MC-map walk, counter
  // bookkeeping. Charged per sample to the virtual clock (this is the
  // dominant share of Figure 2's overhead), identically on both paths.
  Cycles Cost = static_cast<Cycles>(N) * kSampleProcessCycles;
  Vm.clock().advance(Cost);
  Stats.ProcessingCycles += Cost;

  // Under multiplexing, every sample in this batch was taken while the
  // current rotation slot's kind was programmed (the multiplexer only
  // rotates after the poll that delivered this batch), so the whole batch
  // is homogeneous in event kind.
  HpmEventKind Kind = Mux ? Mux->currentKind() : Config.Event;

  Stats.SamplesProcessed += N;
  for (size_t I = 0; I != N; ++I) {
    switch (Vm.collector().spaceOf(Samples[I].Regs[0])) {
    case SpaceId::Nursery:
      ++Stats.DataInNursery;
      break;
    case SpaceId::Los:
      ++Stats.DataInLos;
      break;
    case SpaceId::Free:
      break;
    default:
      ++Stats.DataInMature;
      break;
    }
  }

  if (Config.ScalarSamplePath) {
    // The pre-batching reference path: resolve, attribute and fan out one
    // sample at a time. Kept as the equivalence baseline for the batch
    // path below.
    AttributedSample A;
    for (size_t I = 0; I != N; ++I) {
      ResolvedSample R = Resolver->resolve(Samples[I].Eip);
      if (attribute(R, Samples[I].Regs[0], Kind, A))
        Pipeline.dispatch(A);
    }
  } else {
    // Hot path: resolve the whole batch against the flat index (one
    // metrics flush), build the attributed batch in a reusable buffer,
    // then fan it out with one virtual call per consumer. When the
    // collector marked this batch for self-profiling, each stage's host
    // time goes to its pipeline.stage.* histogram (opt-in; host timings
    // are nondeterministic and must stay out of default metrics).
    SelfProfiler *P = Prof && Prof->timingBatch() ? Prof : nullptr;
    uint64_t T0 = P ? SelfProfiler::nowNs() : 0;
    Resolver->resolveBatch(Samples, N, Resolved);
    uint64_t T1 = P ? SelfProfiler::nowNs() : 0;
    if (P)
      P->recordStage(PipelineStage::Resolve, T1 - T0);
    AttrBatch.clear();
    AttributedSample A;
    for (size_t I = 0; I != N; ++I)
      if (attribute(Resolved.Samples[I], Samples[I].Regs[0], Kind, A))
        AttrBatch.push_back(A);
    uint64_t T2 = P ? SelfProfiler::nowNs() : 0;
    if (P)
      P->recordStage(PipelineStage::Attribute, T2 - T1);
    Pipeline.dispatchBatch(AttrBatch);
    if (P)
      P->recordStage(PipelineStage::Dispatch, SelfProfiler::nowNs() - T2);
  }

  MBatches->inc();
  MProcessed->inc(N);
  if (Trace)
    Trace->instant(Vm.clock().now(), "monitor.batch", "monitor", "samples",
                   N);

  // One batch = one measurement period (the paper's stepwise-constant
  // timeline granularity). The default MissTableConsumer closes the miss
  // table's period; the observer hook fires after all consumers.
  PeriodContext Ctx;
  Ctx.Now = Vm.clock().now();
  Ctx.Mux = Mux.get();
  // Under a shared PMU, fold this period's granted share into the rate
  // correction. Outside fleet mode pmuShare() never advances and the
  // share stays at its neutral 1.0.
  PmuShare Share = Perfmon.pmuShare();
  if (Share.Executed > LastPmuShare.Executed) {
    double S = static_cast<double>(Share.Granted - LastPmuShare.Granted) /
               static_cast<double>(Share.Executed - LastPmuShare.Executed);
    if (S > 0.0)
      Ctx.TenantShare = S;
  }
  LastPmuShare = Share;
  Pipeline.endPeriod(Ctx);
  if (PeriodObserver)
    PeriodObserver();
}

Cycles HpmMonitor::overheadCycles() const {
  // The collector measures its polls as clock deltas, which already cover
  // the native-library copy and the VM-side batch processing that run
  // inside the poll; only the PEBS microcode (stolen during execution) is
  // additional.
  return Pebs.microcodeCycles() + Collector->overheadCycles();
}
