//===-- core/PrefetchInjector.cpp -----------------------------------------===//

#include "core/PrefetchInjector.h"

#include "core/OptimizationController.h"
#include "obs/Obs.h"
#include "vm/VirtualMachine.h"

#include <set>
#include <vector>

using namespace hpmvm;

namespace {

bool isBranch(MOp Op) {
  switch (Op) {
  case MOp::Br:
  case MOp::BrCmp:
  case MOp::BrZero:
  case MOp::BrNull:
  case MOp::BrNonNull:
    return true;
  default:
    return false;
  }
}

/// \returns a copy of \p F with a Prefetch inserted after every LoadField
/// of a field in \p HotFields, with branch targets remapped. Returns an
/// empty Insts vector when nothing was inserted.
MachineFunction rewriteWithPrefetches(const MachineFunction &F,
                                      const std::set<FieldId> &HotFields,
                                      uint32_t &Inserted) {
  // New index of each old instruction.
  std::vector<uint32_t> NewIndex(F.Insts.size() + 1);
  uint32_t Shift = 0;
  for (size_t I = 0; I != F.Insts.size(); ++I) {
    NewIndex[I] = static_cast<uint32_t>(I) + Shift;
    const MachineInst &MI = F.Insts[I];
    if (MI.Op == MOp::LoadField && MI.DstIsRef &&
        HotFields.count(static_cast<FieldId>(MI.Imm)))
      ++Shift;
  }
  NewIndex[F.Insts.size()] = static_cast<uint32_t>(F.Insts.size()) + Shift;
  Inserted = Shift;
  if (Shift == 0)
    return MachineFunction();

  MachineFunction Out;
  Out.Method = F.Method;
  Out.NumRegs = F.NumRegs;
  Out.CallSites = F.CallSites;
  Out.RegIsRefAtEntry = F.RegIsRefAtEntry;
  Out.Insts.reserve(F.Insts.size() + Shift);
  for (const MachineInst &MI : F.Insts) {
    MachineInst Copy = MI;
    if (isBranch(Copy.Op))
      Copy.Imm = static_cast<int32_t>(NewIndex[Copy.Imm]);
    Out.Insts.push_back(Copy);
    if (MI.Op == MOp::LoadField && MI.DstIsRef &&
        HotFields.count(static_cast<FieldId>(MI.Imm))) {
      MachineInst Pf;
      Pf.Op = MOp::Prefetch;
      Pf.SrcA = MI.Dst;
      Pf.Bci = MI.Bci; // Maps back to the same source bytecode.
      Out.Insts.push_back(Pf);
    }
  }
  return Out;
}

/// Reference fields of \p Vm with at least \p MinMisses sampled misses.
std::set<FieldId> hotRefFields(const VirtualMachine &Vm,
                               const FieldMissTable &Table,
                               uint64_t MinMisses) {
  std::set<FieldId> HotFields;
  const ClassRegistry &Classes = Vm.classes();
  for (size_t F = 0; F != Classes.numFields(); ++F)
    if (Classes.field(static_cast<FieldId>(F)).IsRef &&
        Table.misses(static_cast<FieldId>(F)) >= MinMisses)
      HotFields.insert(static_cast<FieldId>(F));
  return HotFields;
}

/// Idempotence check: true when \p F has a hot load not already followed
/// by a Prefetch (a previous pass handled the rest).
bool needsPrefetchWork(const MachineFunction &F,
                       const std::set<FieldId> &HotFields) {
  for (size_t I = 0; I != F.Insts.size(); ++I) {
    const MachineInst &MI = F.Insts[I];
    if (MI.Op == MOp::LoadField && MI.DstIsRef &&
        HotFields.count(static_cast<FieldId>(MI.Imm)) &&
        (I + 1 == F.Insts.size() || F.Insts[I + 1].Op != MOp::Prefetch))
      return true;
  }
  return false;
}

} // namespace

PrefetchInjectionStats PrefetchInjector::injectHotPrefetches(
    VirtualMachine &Vm, const FieldMissTable &Table, uint64_t MinMisses,
    std::vector<std::pair<MethodId, MachineFunction>> *SavedOriginals) {
  PrefetchInjectionStats Stats;

  std::set<FieldId> HotFields = hotRefFields(Vm, Table, MinMisses);
  if (HotFields.empty())
    return Stats;

  // Walk methods (not CompiledFns: retired bodies must not be rewritten).
  for (const Method &ConstM : Vm.methods()) {
    if (!ConstM.isOptCompiled() || ConstM.IsVmInternal)
      continue;
    Method &M = Vm.method(ConstM.Id);
    const MachineFunction &F = Vm.compiledCode(M.OptIndex);
    if (!needsPrefetchWork(F, HotFields))
      continue;

    uint32_t Inserted = 0;
    MachineFunction NewF = rewriteWithPrefetches(F, HotFields, Inserted);
    if (Inserted == 0)
      continue;
    if (SavedOriginals)
      SavedOriginals->emplace_back(M.Id, F);
    Vm.installCompiledCode(M, std::move(NewF));
    ++Stats.MethodsRewritten;
    Stats.PrefetchesInserted += Inserted;
  }
  return Stats;
}

PrefetchInjector::PrefetchInjector(VirtualMachine &Vm,
                                   const PrefetchInjectorConfig &Config)
    : Vm(Vm), Config(Config) {}

void PrefetchInjector::attachObs(ObsContext &Obs) {
  MRewritten = &Obs.metrics().counter("prefetch.methods_rewritten");
  MInserted = &Obs.metrics().counter("prefetch.insertions");
  MReverts = &Obs.metrics().counter("prefetch.reverts");
  Journal = &Obs.journal();
}

void PrefetchInjector::setController(OptimizationController *C) {
  Controller = C;
  if (Controller)
    Controller->setRevertAction([this] { revert(); });
}

void PrefetchInjector::onPeriod(const PeriodContext &Ctx) {
  Table.endPeriod(Ctx.Now);
  if (Controller)
    Controller->observePeriod(static_cast<double>(PeriodSamples));
  PeriodSamples = 0;
  if (Injected || Table.totalMisses() < Config.TriggerSamples)
    return;
  Injected = true;
  size_t FirstSaved = SavedOriginals.size();
  PrefetchInjectionStats S =
      injectHotPrefetches(Vm, Table, Config.MinMisses, &SavedOriginals);
  Total.MethodsRewritten += S.MethodsRewritten;
  Total.PrefetchesInserted += S.PrefetchesInserted;
  MRewritten->inc(S.MethodsRewritten);
  MInserted->inc(S.PrefetchesInserted);
  if (Journal)
    for (size_t I = FirstSaved; I != SavedOriginals.size(); ++I)
      Journal->append({.Ts = Ctx.Now,
                       .Kind = DecisionKind::PrefetchInject,
                       .Consumer = "prefetch",
                       .Action = "rewrite_method",
                       .Outcome = "applied",
                       .Method = SavedOriginals[I].first,
                       .Rate = static_cast<double>(Table.totalMisses()),
                       .Value = S.PrefetchesInserted});
  if (Controller && S.MethodsRewritten)
    Controller->notePolicyChange();
}

bool PrefetchInjector::apply(MethodId MId) {
  const FieldMissTable &Src = MissSource ? *MissSource : Table;
  std::set<FieldId> HotFields = hotRefFields(Vm, Src, Config.MinMisses);
  if (HotFields.empty())
    return false;
  Method &M = Vm.method(MId);
  if (!M.isOptCompiled() || M.IsVmInternal)
    return false;
  const MachineFunction &F = Vm.compiledCode(M.OptIndex);
  if (!needsPrefetchWork(F, HotFields))
    return false;
  uint32_t Inserted = 0;
  MachineFunction NewF = rewriteWithPrefetches(F, HotFields, Inserted);
  if (Inserted == 0)
    return false;
  SavedOriginals.emplace_back(MId, F);
  Vm.installCompiledCode(M, std::move(NewF));
  ++Total.MethodsRewritten;
  Total.PrefetchesInserted += Inserted;
  MRewritten->inc();
  MInserted->inc(Inserted);
  if (Journal)
    Journal->append({.Ts = Vm.clock().now(),
                     .Kind = DecisionKind::PrefetchInject,
                     .Consumer = "prefetch",
                     .Action = "rewrite_method",
                     .Outcome = "applied",
                     .Method = MId,
                     .Rate = static_cast<double>(Src.totalMisses()),
                     .Value = Inserted});
  return true;
}

void PrefetchInjector::revert(MethodId MId) {
  // Reinstall just this method's saved original (the per-method
  // counterpart of the consumer-mode wholesale revert() below).
  for (auto It = SavedOriginals.begin(); It != SavedOriginals.end(); ++It) {
    if (It->first != MId)
      continue;
    MReverts->inc();
    if (Journal)
      Journal->append({.Ts = Vm.clock().now(),
                       .Kind = DecisionKind::Revert,
                       .Consumer = "prefetch",
                       .Action = "reinstall_original",
                       .Outcome = "reverted",
                       .Method = MId,
                       .Value = 1});
    Vm.installCompiledCode(Vm.method(MId), std::move(It->second));
    SavedOriginals.erase(It);
    return;
  }
}

void PrefetchInjector::revert() {
  if (Reverted)
    return;
  Reverted = true;
  MReverts->inc();
  // Reinstall the saved originals; bodies rewritten since stay retired,
  // exactly like any other recompilation.
  for (auto &[Id, Original] : SavedOriginals) {
    if (Journal)
      Journal->append({.Ts = Vm.clock().now(),
                       .Kind = DecisionKind::Revert,
                       .Consumer = "prefetch",
                       .Action = "reinstall_original",
                       .Outcome = "reverted",
                       .Method = Id,
                       .Value = SavedOriginals.size()});
    Vm.installCompiledCode(Vm.method(Id), std::move(Original));
  }
  SavedOriginals.clear();
}
