//===-- core/SamplePipeline.cpp -------------------------------------------===//

#include "core/SamplePipeline.h"

#include "hpm/EventMultiplexer.h"
#include "obs/Obs.h"

#include <cassert>
#include <string>

using namespace hpmvm;

double PeriodContext::scale(HpmEventKind Kind) const {
  double DutyCycle = Mux ? Mux->dutyCycleScale(Kind) : 1.0;
  // A tenant holding the shared PMU for share s of its executed cycles saw
  // only ~s of the events a dedicated counter would have sampled; scale
  // the other 1/s back in. TenantShare is 1.0 outside fleet runs, keeping
  // single-VM results bit-identical.
  return TenantShare > 0.0 && TenantShare < 1.0 ? DutyCycle / TenantShare
                                                : DutyCycle;
}

void SamplePipeline::addConsumer(SampleConsumer &C) {
  Consumers.push_back(Entry{&C});
  if (Obs)
    wire(Consumers.back());
}

void SamplePipeline::wire(Entry &E) {
  std::string Prefix = std::string("pipeline.") + E.C->name();
  E.MSamples = &Obs->metrics().counter(Prefix + ".samples");
  E.MPeriods = &Obs->metrics().counter(Prefix + ".periods");
  E.C->attachObs(*Obs);
}

void SamplePipeline::attachObs(ObsContext &Obs) {
  this->Obs = &Obs;
  MDispatched = &Obs.metrics().counter("pipeline.dispatched");
  MDelivered = &Obs.metrics().counter("pipeline.delivered");
  for (Entry &E : Consumers)
    wire(E);
}

void SamplePipeline::dispatch(const AttributedSample &S) {
  MDispatched->inc();
  for (Entry &E : Consumers) {
    if (!E.C->wantsKind(S.Kind))
      continue;
    E.C->onSample(S);
    E.MSamples->inc();
    MDelivered->inc();
  }
}

void SamplePipeline::dispatchBatch(std::span<const AttributedSample> Batch) {
  if (Batch.empty())
    return;
  HpmEventKind Kind = Batch.front().Kind;
#ifndef NDEBUG
  for (const AttributedSample &S : Batch)
    assert(S.Kind == Kind && "a batch must not mix event kinds");
#endif
  MDispatched->inc(Batch.size());
  for (Entry &E : Consumers) {
    if (!E.C->wantsKind(Kind))
      continue;
    E.C->consumeBatch(Batch);
    E.MSamples->inc(Batch.size());
    MDelivered->inc(Batch.size());
  }
}

void SamplePipeline::endPeriod(const PeriodContext &Ctx) {
  for (Entry &E : Consumers) {
    E.C->onPeriod(Ctx);
    E.MPeriods->inc();
  }
}
