//===-- core/SampleResolver.h - PC -> method/bytecode mapping --*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps a raw PEBS sample to source-level constructs (paper section 4.2):
///   1. Samples whose PC lies outside the VM's compiled-code space (kernel,
///      native libraries) are dropped immediately.
///   2. The sorted method table resolves the PC to a method.
///   3. The machine-code map resolves the PC to a bytecode index: trivial
///      arithmetic for baseline code; the per-instruction map for
///      opt-compiled code.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_CORE_SAMPLERESOLVER_H
#define HPMVM_CORE_SAMPLERESOLVER_H

#include "obs/Metrics.h"
#include "support/Types.h"
#include "vm/MethodTable.h"

#include <map>

namespace hpmvm {

class ObsContext;
class VirtualMachine;

/// A sample resolved to source constructs.
struct ResolvedSample {
  bool Valid = false;
  MethodId Method = kInvalidId;
  CodeFlavor Flavor = CodeFlavor::Baseline;
  uint32_t Bci = 0;
  /// Machine-instruction index within the compiled function (optimized
  /// code only; kInvalidId for baseline samples).
  uint32_t InstIdx = kInvalidId;
  /// Index into VirtualMachine::compiledCode (optimized code only).
  uint32_t OptIndex = kInvalidId;
};

/// Resolution statistics (mirrors the paper's filtering steps).
struct ResolverStats {
  uint64_t Resolved = 0;
  uint64_t ResolvedOptimized = 0;
  uint64_t DroppedOutsideVm = 0; ///< Kernel / native library PCs.
  uint64_t DroppedUnknownCode = 0;
};

/// Resolves sample PCs against a VM's method table and code maps.
class SampleResolver {
public:
  explicit SampleResolver(VirtualMachine &Vm) : Vm(Vm) {}

  ResolvedSample resolve(Address Pc);

  /// Registers resolution metrics: resolver.resolved, unresolved-PC drops,
  /// no-bytecode-map drops.
  void attachObs(ObsContext &Obs);

  const ResolverStats &stats() const { return Stats; }

private:
  /// Lazily (re)builds the CodeBase -> OptIndex index when new methods have
  /// been compiled since the last build.
  void refreshOptIndex();

  VirtualMachine &Vm;
  ResolverStats Stats;
  std::map<Address, uint32_t> OptByBase;
  size_t IndexedFns = 0;
  Counter *MResolved = &Counter::sink();
  Counter *MResolvedOpt = &Counter::sink();
  Counter *MUnresolvedPc = &Counter::sink();
  Counter *MNoBytecodeMap = &Counter::sink();
};

} // namespace hpmvm

#endif // HPMVM_CORE_SAMPLERESOLVER_H
