//===-- core/SampleResolver.h - PC -> method/bytecode mapping --*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps raw PEBS samples to source-level constructs (paper section 4.2):
///   1. Samples whose PC lies outside the VM's compiled-code space (kernel,
///      native libraries) are dropped immediately.
///   2. The sorted method table resolves the PC to a method.
///   3. The machine-code map resolves the PC to a bytecode index: trivial
///      arithmetic for baseline code; the per-instruction map for
///      opt-compiled code.
///
/// The resolver keeps its own flat, sorted array of code ranges (mirroring
/// the VM's method table, with the optimized-code function index folded
/// in), rebuilt only when methods are (re)compiled. Lookups are a binary
/// search over that contiguous array, fronted by a last-range memo: PEBS
/// PCs cluster heavily -- consecutive samples usually land in the same
/// method -- so the memo turns most resolutions into a single range check.
/// resolveBatch() resolves a whole collector batch in one pass into a
/// reusable ResolvedBatch, flushing the per-sample metrics once per batch.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_CORE_SAMPLERESOLVER_H
#define HPMVM_CORE_SAMPLERESOLVER_H

#include "hpm/Sample.h"
#include "obs/Metrics.h"
#include "support/Types.h"
#include "vm/MethodTable.h"

#include <vector>

namespace hpmvm {

class ObsContext;
class VirtualMachine;
struct MachineFunction;

/// A sample resolved to source constructs.
struct ResolvedSample {
  bool Valid = false;
  MethodId Method = kInvalidId;
  CodeFlavor Flavor = CodeFlavor::Baseline;
  uint32_t Bci = 0;
  /// Machine-instruction index within the compiled function (optimized
  /// code only; kInvalidId for baseline samples).
  uint32_t InstIdx = kInvalidId;
  /// Index into VirtualMachine::compiledCode (optimized code only).
  uint32_t OptIndex = kInvalidId;
};

/// Reusable output buffer for batch resolution: one ResolvedSample per
/// input sample, in input order (invalid entries mark dropped samples).
struct ResolvedBatch {
  std::vector<ResolvedSample> Samples;

  size_t size() const { return Samples.size(); }
  const ResolvedSample &operator[](size_t I) const { return Samples[I]; }
};

/// Resolution statistics (mirrors the paper's filtering steps).
struct ResolverStats {
  uint64_t Resolved = 0;
  uint64_t ResolvedOptimized = 0;
  uint64_t DroppedOutsideVm = 0; ///< Kernel / native library PCs.
  uint64_t DroppedUnknownCode = 0;
};

/// Resolves sample PCs against a VM's method table and code maps.
class SampleResolver {
public:
  explicit SampleResolver(VirtualMachine &Vm) : Vm(Vm) {}

  /// Resolves a single PC (the scalar path: one lookup, per-call metric
  /// updates).
  ResolvedSample resolve(Address Pc);

  /// Resolves \p N samples into \p Out.Samples (resized to N) in one pass
  /// over the flat range index, with the last-range memo carried across
  /// consecutive samples and metrics flushed once at the end.
  void resolveBatch(const PebsSample *Samples, size_t N, ResolvedBatch &Out);

  /// Registers resolution metrics: resolver.resolved /
  /// resolver.resolved_optimized plus the drop counters
  /// resolver.dropped_outside_vm / resolver.dropped_unknown_code
  /// (matching the ResolverStats field names).
  void attachObs(ObsContext &Obs);

  const ResolverStats &stats() const { return Stats; }

private:
  /// One entry of the flat resolution index: a method-table range with the
  /// compiled-function index (and its true code limit) folded in so
  /// optimized-code resolution needs no second lookup.
  struct CodeRange {
    Address Start = 0;
    Address End = 0; ///< Exclusive (method-table range end).
    Address CodeLimit = 0; ///< End of real code; PCs beyond it are dropped.
    MethodId Method = kInvalidId;
    CodeFlavor Flavor = CodeFlavor::Baseline;
    uint32_t OptIndex = kInvalidId; ///< Compiled-function index (opt only).
    /// The compiled function covering this range (opt only). Captured at
    /// index-rebuild time; safe because the VM's compiled-function store
    /// only grows (growth triggers a rebuild before the next resolution).
    const MachineFunction *Fn = nullptr;
  };

  /// Rebuilds the flat range index when methods were (re)compiled since
  /// the last build. Cheap no-op otherwise (two size compares).
  void refreshIndex();

  /// Core single-PC resolution against the flat index. Updates Stats but
  /// not the metric counters (callers batch those).
  void resolveOne(Address Pc, ResolvedSample &R);

  VirtualMachine &Vm;
  ResolverStats Stats;
  /// Flat mirror of the method table, sorted by Start.
  std::vector<CodeRange> Ranges;
  /// (CodeBase, OptIndex) of every compiled function, sorted by CodeBase.
  std::vector<std::pair<Address, uint32_t>> FnByBase;
  /// Last-range memo: index into Ranges of the most recent hit.
  size_t LastHit = SIZE_MAX;
  size_t SeenRanges = 0; ///< methodTable().size() at the last rebuild.
  size_t SeenFns = 0;    ///< numCompiledFunctions() at the last rebuild.
  Counter *MResolved = &Counter::sink();
  Counter *MResolvedOpt = &Counter::sink();
  Counter *MDroppedOutsideVm = &Counter::sink();
  Counter *MDroppedUnknownCode = &Counter::sink();
};

} // namespace hpmvm

#endif // HPMVM_CORE_SAMPLERESOLVER_H
