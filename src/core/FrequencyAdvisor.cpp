//===-- core/FrequencyAdvisor.cpp -----------------------------------------===//

#include "core/FrequencyAdvisor.h"

#include "obs/Obs.h"
#include "vm/AdaptiveOptimizationSystem.h"
#include "vm/VirtualMachine.h"

using namespace hpmvm;

FrequencyAdvisor::FrequencyAdvisor(VirtualMachine &Vm, uint64_t MinAccesses)
    : Vm(Vm), MinAccesses(MinAccesses) {}

void FrequencyAdvisor::attachObs(ObsContext &Obs) {
  MSamples = &Obs.metrics().counter("freq.samples");
  MHotMethods = &Obs.metrics().counter("freq.hot_methods");
  MCoallocations = &Obs.metrics().counter("freq.coallocations");
  Journal = &Obs.journal();
}

CoallocationHint FrequencyAdvisor::coallocationHint(ClassId Cls) {
  const ClassRegistry &Classes = Vm.classes();
  CoallocationHint Hint;
  uint64_t Best = 0;
  for (FieldId F : Classes.fieldsOf(Cls)) {
    const FieldInfo &FI = Classes.field(F);
    if (!FI.IsRef)
      continue;
    uint64_t Accesses = Vm.fieldAccessCount(F);
    if (Accesses >= MinAccesses && Accesses > Best) {
      Best = Accesses;
      Hint.Field = F;
      Hint.SlotOffset = FI.Offset;
    }
  }
  return Hint;
}

void FrequencyAdvisor::onSample(const AttributedSample &S) {
  MSamples->inc();
  if (S.Method != kInvalidId) {
    ensureMethod(S.Method);
    ++MethodSamples[S.Method];
  }
}

void FrequencyAdvisor::consumeBatch(std::span<const AttributedSample> Batch) {
  // One metrics bump per batch; the tally itself is an indexed increment.
  MSamples->inc(Batch.size());
  for (const AttributedSample &S : Batch) {
    if (S.Method != kInvalidId) {
      ensureMethod(S.Method);
      ++MethodSamples[S.Method];
    }
  }
}

bool FrequencyAdvisor::apply(MethodId M) {
  ensureMethod(M);
  if (Reported[M])
    return false; // Already reported (by either path); a noop for the
                  // engine, which records it and moves on.
  Reported[M] = 1;
  ++HotReported;
  MHotMethods->inc();
  if (Journal)
    Journal->append({.Ts = Vm.clock().now(),
                     .Kind = DecisionKind::HotRecompile,
                     .Consumer = "frequency",
                     .Action = "note_hot_method",
                     .Outcome = "reported_to_aos",
                     .Method = M,
                     .Rate = static_cast<double>(sampleCount(M)),
                     .Value = HotMethodSamples});
  Vm.aos().noteHpmHotMethod(M);
  return true;
}

void FrequencyAdvisor::onPeriod(const PeriodContext &Ctx) {
  // Report methods whose sample frequency crossed the threshold to the
  // AOS, once each (in ascending method-id order). Under pseudo-adaptive
  // mode the AOS is frozen and only counts the report; with adaptive
  // recompilation enabled it compiles.
  for (MethodId Id = 0; Id != MethodSamples.size(); ++Id) {
    if (MethodSamples[Id] < HotMethodSamples || Reported[Id])
      continue;
    Reported[Id] = 1;
    ++HotReported;
    MHotMethods->inc();
    if (Journal)
      Journal->append({.Ts = Ctx.Now,
                       .Kind = DecisionKind::HotRecompile,
                       .Consumer = "frequency",
                       .Action = "note_hot_method",
                       .Outcome = "reported_to_aos",
                       .Method = Id,
                       .Rate = static_cast<double>(MethodSamples[Id]),
                       .Value = HotMethodSamples});
    Vm.aos().noteHpmHotMethod(Id);
  }
}
