//===-- core/FrequencyAdvisor.cpp -----------------------------------------===//

#include "core/FrequencyAdvisor.h"

#include "vm/VirtualMachine.h"

using namespace hpmvm;

FrequencyAdvisor::FrequencyAdvisor(const VirtualMachine &Vm,
                                   uint64_t MinAccesses)
    : Vm(Vm), MinAccesses(MinAccesses) {}

CoallocationHint FrequencyAdvisor::coallocationHint(ClassId Cls) {
  const ClassRegistry &Classes = Vm.classes();
  CoallocationHint Hint;
  uint64_t Best = 0;
  for (FieldId F : Classes.fieldsOf(Cls)) {
    const FieldInfo &FI = Classes.field(F);
    if (!FI.IsRef)
      continue;
    uint64_t Accesses = Vm.fieldAccessCount(F);
    if (Accesses >= MinAccesses && Accesses > Best) {
      Best = Accesses;
      Hint.Field = F;
      Hint.SlotOffset = FI.Offset;
    }
  }
  return Hint;
}
