//===-- core/FieldMissTable.h - Per-reference-field miss counts *- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "We keep a per-reference event count which tells the runtime system how
/// many misses occurred when dereferencing the corresponding access path
/// expressions." Counts are updated in batches as the collector thread
/// processes samples; the table also records per-period timelines for
/// tracked fields (the data behind Figures 7 and 8: cumulative miss counts
/// and miss rates over time, including the stepwise-constant shape caused
/// by batch processing).
///
/// Storage is a dense vector indexed by FieldId -- field ids are small and
/// dense in this VM, so the per-sample count update is a single indexed
/// add (no hashing, no buckets). A count of zero means "not in the table"
/// (counts only ever grow except when the bounded mode evicts an entry,
/// which resets it to zero), so presence needs no separate bitmap.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_CORE_FIELDMISSTABLE_H
#define HPMVM_CORE_FIELDMISSTABLE_H

#include "obs/Metrics.h"
#include "support/Types.h"

#include <vector>

namespace hpmvm {

class ObsContext;

/// One timeline point: the end of a measurement period.
struct PeriodPoint {
  Cycles At = 0;          ///< Virtual time at the period boundary.
  uint64_t Delta = 0;     ///< Sampled misses during the period.
  uint64_t Cumulative = 0;///< Sampled misses since the start.
};

/// Per-field sampled-miss accounting.
class FieldMissTable {
public:
  /// Records \p N sampled misses attributed to \p F.
  void addMiss(FieldId F, uint64_t N = 1);

  /// Caps the number of distinct fields held (0 = unbounded, the default).
  /// When a new field would exceed the cap, the coldest untracked entry is
  /// evicted (its count restarts from zero if it is ever sampled again) --
  /// the bounded-table mode for long-running many-field workloads.
  void setCapacity(size_t MaxFields) { Capacity = MaxFields; }
  size_t capacity() const { return Capacity; }
  uint64_t evictions() const { return Evictions; }
  size_t numFields() const { return NumFields; }

  /// Registers table metrics (misses recorded, periods, entries gauge,
  /// evictions).
  void attachObs(ObsContext &Obs);

  /// Cumulative sampled misses for \p F.
  uint64_t misses(FieldId F) const {
    return F < Counts.size() ? Counts[F] : 0;
  }

  uint64_t totalMisses() const { return Total; }

  /// Ends the current measurement period (one collector batch): snapshots
  /// deltas for tracked fields and bumps the version that invalidates
  /// advisor caches.
  void endPeriod(Cycles Now);

  /// Starts recording a timeline for \p F.
  void trackField(FieldId F);

  /// Timeline of \p F (empty unless tracked).
  const std::vector<PeriodPoint> &timeline(FieldId F) const;

  /// Bumped by endPeriod; consumers cache derived data against it.
  uint64_t version() const { return Version; }

  /// Zeroes all counters and timelines (not the tracked-field set).
  void reset();

private:
  void evictColdest(FieldId Incoming);
  /// Grows the dense arrays to cover \p F.
  void ensureField(FieldId F) {
    if (F >= Counts.size()) {
      Counts.resize(F + 1, 0);
      PeriodCounts.resize(F + 1, 0);
      Tracked.resize(F + 1, 0);
      Timelines.resize(F + 1);
    }
  }

  // Dense, FieldId-indexed (all four parallel).
  std::vector<uint64_t> Counts;       ///< 0 = not in the table.
  std::vector<uint64_t> PeriodCounts; ///< This period's misses (tracked).
  std::vector<uint8_t> Tracked;       ///< Timeline recording on?
  std::vector<std::vector<PeriodPoint>> Timelines;
  /// Tracked fields in trackField() order (endPeriod iteration).
  std::vector<FieldId> TrackedList;
  size_t NumFields = 0; ///< Fields with a nonzero count.
  uint64_t Total = 0;
  uint64_t Version = 0;
  size_t Capacity = 0;
  uint64_t Evictions = 0;
  Counter *MMisses = &Counter::sink();
  Counter *MPeriods = &Counter::sink();
  Counter *MEvictions = &Counter::sink();
  Gauge *MFields = &Gauge::sink();
};

} // namespace hpmvm

#endif // HPMVM_CORE_FIELDMISSTABLE_H
