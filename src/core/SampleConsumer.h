//===-- core/SampleConsumer.h - Pipeline consumer interface ----*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The consumer side of the sample pipeline. The paper drives exactly one
/// optimization (co-allocation) from one event kind; its section 6 outlook
/// — and every modern HPM-feedback system — wants several simultaneous
/// consumers of the same sample stream. A SampleConsumer subscribes to one
/// or more HpmEventKinds and receives:
///
///   - consumeBatch(): every resolved, non-VM-internal sample of a
///     subscribed kind, delivered one collector batch at a time. All
///     samples of a batch share one event kind (batch boundaries never
///     span a multiplexer rotation), and each is already attributed to a
///     field when it landed on an instruction of interest (Field ==
///     kInvalidId otherwise, e.g. for baseline-code samples, which the
///     paper's path dropped but which method-hotness consumers need).
///     The default implementation loops onSample(), so scalar consumers
///     need not care about batching;
///   - onPeriod(): the end of each measurement period (= one delivered
///     collector batch), with a PeriodContext carrying the virtual time
///     and, under event multiplexing, the duty-cycle correction for each
///     kind.
///
/// Contract: consumers run synchronously on the sample-processing path and
/// must not advance the virtual clock from onSample (the per-sample
/// processing cost is charged once, by the monitor; a consumer that
/// recompiles code from onPeriod charges that work like any recompilation
/// would). With the default configuration — a single MissTableConsumer —
/// the pipeline reproduces the pre-pipeline monitor bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_CORE_SAMPLECONSUMER_H
#define HPMVM_CORE_SAMPLECONSUMER_H

#include "memsim/MemoryEvent.h"
#include "support/Types.h"
#include "vm/MethodTable.h"

#include <span>

namespace hpmvm {

class EventMultiplexer;
class ObsContext;

/// One resolved sample, as fanned out to consumers.
struct AttributedSample {
  /// The event kind being sampled when this sample was taken (under
  /// multiplexing: the current rotation slot).
  HpmEventKind Kind = HpmEventKind::L1DMiss;
  /// The field the sampled instruction loads, when the sample landed on an
  /// instruction of interest; kInvalidId otherwise (baseline code, or an
  /// optimized instruction that is not a reference-field load).
  FieldId Field = kInvalidId;
  MethodId Method = kInvalidId;
  CodeFlavor Flavor = CodeFlavor::Baseline;
  /// Machine-instruction index / compiled-code index (optimized only).
  uint32_t InstIdx = kInvalidId;
  uint32_t OptIndex = kInvalidId;
  /// The faulting data address (the PEBS record's EAX).
  Address DataAddr = 0;
  /// The VM shard this sample belongs to (0 outside fleet runs). Each
  /// shard runs its own pipeline, so consumers normally see one tenant;
  /// the id keeps records auditable once they are merged fleet-wide.
  TenantId Tenant = 0;
};

/// Per-period context handed to every consumer at period boundaries.
struct PeriodContext {
  /// Virtual time at the end of the period.
  Cycles Now = 0;
  /// The monitor's multiplexer, or null in single-event mode.
  const EventMultiplexer *Mux = nullptr;
  /// Fraction of this period's executed cycles the owning tenant held the
  /// shared PMU for (PmuArbiter grant). 1.0 outside fleet runs and for a
  /// 1-shard fleet, so single-VM results are untouched.
  double TenantShare = 1.0;

  /// Correction factor for \p Kind: multiply a per-period sample count by
  /// this to estimate what a dedicated (non-multiplexed, non-shared)
  /// counter would have seen. Folds the multiplexer's per-kind duty cycle
  /// with the tenant's PMU share, so BottleneckClassifier rate estimates
  /// stay unbiased as the sampling facility is divided N ways. 1.0 in
  /// single-event single-tenant mode.
  double scale(HpmEventKind Kind) const;
};

/// A pipeline stage fed by the monitor's sample stream.
class SampleConsumer {
public:
  virtual ~SampleConsumer() = default;

  /// Stable short name; namespaces the consumer's pipeline metrics
  /// (pipeline.<name>.samples / pipeline.<name>.periods).
  virtual const char *name() const = 0;

  /// Event-kind subscription filter; the default subscribes to everything.
  virtual bool wantsKind(HpmEventKind) const { return true; }

  /// One sample of a subscribed kind.
  virtual void onSample(const AttributedSample &S) = 0;

  /// One collector batch of subscribed samples (all of one event kind;
  /// batches never span a multiplexer rotation). Consumers on the hot
  /// path override this to amortize per-sample dispatch; the default
  /// preserves scalar semantics exactly.
  virtual void consumeBatch(std::span<const AttributedSample> Batch) {
    for (const AttributedSample &S : Batch)
      onSample(S);
  }

  /// End of a measurement period (called for every consumer, regardless of
  /// whether any of its kinds were sampled this period).
  virtual void onPeriod(const PeriodContext &) {}

  /// Hook for the consumer's own metrics/trace namespace; wired by
  /// SamplePipeline::attachObs.
  virtual void attachObs(ObsContext &) {}
};

} // namespace hpmvm

#endif // HPMVM_CORE_SAMPLECONSUMER_H
