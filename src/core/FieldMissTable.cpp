//===-- core/FieldMissTable.cpp -------------------------------------------===//

#include "core/FieldMissTable.h"

#include "obs/Obs.h"

#include <algorithm>

using namespace hpmvm;

void FieldMissTable::attachObs(ObsContext &Obs) {
  MMisses = &Obs.metrics().counter("misstable.misses_recorded");
  MPeriods = &Obs.metrics().counter("misstable.periods");
  MEvictions = &Obs.metrics().counter("misstable.evictions");
  MFields = &Obs.metrics().gauge("misstable.fields");
}

void FieldMissTable::addMiss(FieldId F, uint64_t N) {
  ensureField(F);
  if (Counts[F] == 0) {
    if (Capacity && NumFields >= Capacity)
      evictColdest(F);
    ++NumFields;
  }
  Counts[F] += N;
  Total += N;
  MMisses->inc(N);
  if (Tracked[F])
    PeriodCounts[F] += N;
}

void FieldMissTable::evictColdest(FieldId Incoming) {
  // Tracked fields (with timelines) are pinned; evict the coldest of the
  // rest. Linear scan is fine: this runs only when a new field arrives at
  // a full table, never on the per-sample count path.
  size_t Victim = Counts.size();
  for (size_t F = 0; F != Counts.size(); ++F) {
    if (Counts[F] == 0 || F == Incoming || Tracked[F])
      continue;
    if (Victim == Counts.size() || Counts[F] < Counts[Victim])
      Victim = F;
  }
  if (Victim == Counts.size())
    return; // Everything is tracked; let the table grow past the cap.
  Counts[Victim] = 0;
  --NumFields;
  ++Evictions;
  MEvictions->inc();
}

void FieldMissTable::trackField(FieldId F) {
  ensureField(F);
  if (!Tracked[F]) {
    Tracked[F] = 1;
    TrackedList.push_back(F);
  }
}

void FieldMissTable::endPeriod(Cycles Now) {
  for (FieldId F : TrackedList) {
    std::vector<PeriodPoint> &Line = Timelines[F];
    uint64_t Delta = PeriodCounts[F];
    PeriodCounts[F] = 0;
    uint64_t Cum = Line.empty() ? Delta : Line.back().Cumulative + Delta;
    Line.push_back(PeriodPoint{Now, Delta, Cum});
  }
  ++Version;
  MPeriods->inc();
  MFields->set(NumFields);
}

const std::vector<PeriodPoint> &FieldMissTable::timeline(FieldId F) const {
  static const std::vector<PeriodPoint> Empty;
  return F < Timelines.size() ? Timelines[F] : Empty;
}

void FieldMissTable::reset() {
  std::fill(Counts.begin(), Counts.end(), 0);
  std::fill(PeriodCounts.begin(), PeriodCounts.end(), 0);
  NumFields = 0;
  Total = 0;
  for (std::vector<PeriodPoint> &Line : Timelines)
    Line.clear();
  ++Version;
}
