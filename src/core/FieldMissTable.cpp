//===-- core/FieldMissTable.cpp -------------------------------------------===//

#include "core/FieldMissTable.h"

#include "obs/Obs.h"

using namespace hpmvm;

void FieldMissTable::attachObs(ObsContext &Obs) {
  MMisses = &Obs.metrics().counter("misstable.misses_recorded");
  MPeriods = &Obs.metrics().counter("misstable.periods");
  MEvictions = &Obs.metrics().counter("misstable.evictions");
  MFields = &Obs.metrics().gauge("misstable.fields");
}

void FieldMissTable::addMiss(FieldId F, uint64_t N) {
  if (Capacity && Counts.size() >= Capacity && !Counts.count(F))
    evictColdest(F);
  Counts[F] += N;
  Total += N;
  MMisses->inc(N);
  auto It = Timelines.find(F);
  if (It != Timelines.end())
    PeriodCounts[F] += N;
}

void FieldMissTable::evictColdest(FieldId Incoming) {
  // Tracked fields (with timelines) are pinned; evict the coldest of the
  // rest. Linear scan is fine: this runs only when a new field arrives at
  // a full table, never on the per-sample count path.
  auto Victim = Counts.end();
  for (auto It = Counts.begin(); It != Counts.end(); ++It) {
    if (It->first == Incoming || Timelines.count(It->first))
      continue;
    if (Victim == Counts.end() || It->second < Victim->second)
      Victim = It;
  }
  if (Victim == Counts.end())
    return; // Everything is tracked; let the table grow past the cap.
  Counts.erase(Victim);
  ++Evictions;
  MEvictions->inc();
}

uint64_t FieldMissTable::misses(FieldId F) const {
  auto It = Counts.find(F);
  return It == Counts.end() ? 0 : It->second;
}

void FieldMissTable::trackField(FieldId F) {
  Timelines.try_emplace(F);
  PeriodCounts.try_emplace(F, 0);
}

void FieldMissTable::endPeriod(Cycles Now) {
  for (auto &[Field, Line] : Timelines) {
    uint64_t Delta = PeriodCounts[Field];
    PeriodCounts[Field] = 0;
    uint64_t Cum = Line.empty() ? Delta : Line.back().Cumulative + Delta;
    Line.push_back(PeriodPoint{Now, Delta, Cum});
  }
  ++Version;
  MPeriods->inc();
  MFields->set(Counts.size());
}

const std::vector<PeriodPoint> &FieldMissTable::timeline(FieldId F) const {
  static const std::vector<PeriodPoint> Empty;
  auto It = Timelines.find(F);
  return It == Timelines.end() ? Empty : It->second;
}

void FieldMissTable::reset() {
  Counts.clear();
  Total = 0;
  for (auto &[Field, Line] : Timelines)
    Line.clear();
  for (auto &[Field, C] : PeriodCounts)
    C = 0;
  ++Version;
}
