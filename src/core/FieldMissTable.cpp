//===-- core/FieldMissTable.cpp -------------------------------------------===//

#include "core/FieldMissTable.h"

using namespace hpmvm;

void FieldMissTable::addMiss(FieldId F, uint64_t N) {
  Counts[F] += N;
  Total += N;
  auto It = Timelines.find(F);
  if (It != Timelines.end())
    PeriodCounts[F] += N;
}

uint64_t FieldMissTable::misses(FieldId F) const {
  auto It = Counts.find(F);
  return It == Counts.end() ? 0 : It->second;
}

void FieldMissTable::trackField(FieldId F) {
  Timelines.try_emplace(F);
  PeriodCounts.try_emplace(F, 0);
}

void FieldMissTable::endPeriod(Cycles Now) {
  for (auto &[Field, Line] : Timelines) {
    uint64_t Delta = PeriodCounts[Field];
    PeriodCounts[Field] = 0;
    uint64_t Cum = Line.empty() ? Delta : Line.back().Cumulative + Delta;
    Line.push_back(PeriodPoint{Now, Delta, Cum});
  }
  ++Version;
}

const std::vector<PeriodPoint> &FieldMissTable::timeline(FieldId F) const {
  static const std::vector<PeriodPoint> Empty;
  auto It = Timelines.find(F);
  return It == Timelines.end() ? Empty : It->second;
}

void FieldMissTable::reset() {
  Counts.clear();
  Total = 0;
  for (auto &[Field, Line] : Timelines)
    Line.clear();
  for (auto &[Field, C] : PeriodCounts)
    C = 0;
  ++Version;
}
