//===-- core/RegressionGate.cpp -------------------------------------------===//

#include "core/RegressionGate.h"

#include <numeric>

using namespace hpmvm;

RegressionGate::Verdict RegressionGate::observe(double Rate) {
  if (Config.IgnoreZeroRatePeriods && Rate == 0.0)
    return Verdict::None;
  ++Observed;
  switch (Current) {
  case State::Monitoring:
  case State::Accepted:
  case State::Reverted: {
    Window.push_back(Rate);
    if (Window.size() > Config.BaselineWindow)
      Window.erase(Window.begin());
    Baseline = std::accumulate(Window.begin(), Window.end(), 0.0) /
               static_cast<double>(Window.size());
    return Verdict::None;
  }
  case State::Warmup:
    if (++Skipped >= Config.WarmupPeriods) {
      Current = State::Assessing;
      Window.clear();
    }
    return Verdict::None;
  case State::Assessing: {
    Window.push_back(Rate);
    if (Window.size() < Config.DecisionWindow)
      return Verdict::None;
    Assessed = std::accumulate(Window.begin(), Window.end(), 0.0) /
               static_cast<double>(Window.size());
    BaselineAtDecision = Baseline;
    Window.clear();
    if (Baseline > 0.0 && Assessed > Baseline * Config.RegressionFactor) {
      Current = State::Reverted;
      return Verdict::Reverted;
    }
    Current = State::Accepted;
    return Verdict::Accepted;
  }
  }
  return Verdict::None;
}
