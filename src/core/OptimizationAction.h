//===-- core/OptimizationAction.h - Guarded action contract ----*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common contract behind the policy engine's "different optimization
/// step" menu (paper section 5.3: "either a different optimization step can
/// be performed or it is possible to revert to the old code"). Each
/// provider -- co-allocation, prefetch injection, hot-method recompilation
/// -- scores its applicability to a classified bottleneck, applies itself
/// to one method, and (where physically possible) reverts. The engine owns
/// when to call each; providers own how.
///
/// Scores are deterministic functions of the classified window rates only,
/// so the engine's choice (and therefore the DecisionJournal) is
/// byte-identical across --jobs values. Ties are broken by action
/// registration order, which the Experiment fixes as coalloc, prefetch,
/// recompile -- removal of misses beats hiding them beats recompilation.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_CORE_OPTIMIZATIONACTION_H
#define HPMVM_CORE_OPTIMIZATIONACTION_H

#include "support/Types.h"

namespace hpmvm {

/// The engine's action menu. Order is the deterministic tie-break rank
/// (lower wins) and the blacklist key half.
enum class ActionKind : uint8_t {
  Coallocate,     ///< CoallocationAdvisor: move referents next to holders.
  PrefetchInject, ///< PrefetchInjector: hide misses behind prefetches.
  HotRecompile,   ///< FrequencyAdvisor: report the method hot to the AOS.
};

constexpr size_t kNumActionKinds = 3;

inline const char *actionKindName(ActionKind K) {
  switch (K) {
  case ActionKind::Coallocate:
    return "coalloc";
  case ActionKind::PrefetchInject:
    return "prefetch";
  case ActionKind::HotRecompile:
    return "recompile";
  }
  return "unknown";
}

/// What a hot method is bound on, per the classifier's taxonomy.
enum class BottleneckLabel : uint8_t {
  Unknown,        ///< Not yet classified (or demoted below the floor).
  LatencyBound,   ///< L1D misses dominate; loads stall on latency.
  BandwidthBound, ///< L2 misses dominate; traffic goes to memory.
  TlbBound,       ///< DTLB misses dominate; page locality is the problem.
  ComputeBound,   ///< Hot in samples but modest miss rates.
};

inline const char *bottleneckLabelName(BottleneckLabel L) {
  switch (L) {
  case BottleneckLabel::Unknown:
    return "unknown";
  case BottleneckLabel::LatencyBound:
    return "latency_bound";
  case BottleneckLabel::BandwidthBound:
    return "bandwidth_bound";
  case BottleneckLabel::TlbBound:
    return "tlb_bound";
  case BottleneckLabel::ComputeBound:
    return "compute_bound";
  }
  return "unknown";
}

/// One classified hot method: the stable (hysteresis-filtered) label plus
/// the per-window rates the label was derived from. The per-kind rates are
/// estimated events per classification window (samples, duty-cycle
/// corrected for multiplexing, times the kind's sampling interval);
/// SampleRate is duty-corrected samples -- the frequency signal.
struct MethodBottleneck {
  MethodId Method = kInvalidId;
  BottleneckLabel Label = BottleneckLabel::Unknown;
  double L1Rate = 0.0;     ///< Estimated L1D misses this window.
  double L2Rate = 0.0;     ///< Estimated L2 misses this window.
  double TlbRate = 0.0;    ///< Estimated DTLB misses this window.
  double SampleRate = 0.0; ///< Scaled samples this window (frequency).
};

/// A guarded optimization the PolicyEngine can apply per method.
class OptimizationAction {
public:
  virtual ~OptimizationAction() = default;

  virtual ActionKind kind() const = 0;
  /// Journal name for this action ("coalloc", ...); a string literal.
  virtual const char *actionName() const { return actionKindName(kind()); }

  /// Expected benefit of applying this action to \p B, in comparable
  /// scaled-samples units across actions. <= 0 means not applicable.
  /// Must be pure: no side effects, no clock access.
  virtual double score(const MethodBottleneck &B) const = 0;

  /// Applies the action to \p Method. \returns false when nothing changed
  /// (the engine records a noop and will not retry).
  virtual bool apply(MethodId Method) = 0;

  /// Rolls the action back for \p Method. Called only after a successful
  /// apply(); providers whose effect is irreversible (recompilation)
  /// implement this as a no-op -- the blacklist still prevents a retry.
  virtual void revert(MethodId Method) = 0;
};

} // namespace hpmvm

#endif // HPMVM_CORE_OPTIMIZATIONACTION_H
