//===-- core/PhaseDetector.h - Execution phase detection -------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper section 5.3: "The rate of events for each reference field is
/// measured throughout the execution and this allows detecting phase
/// changes in the execution or checking whether an optimization decision
/// ... had a positive or a negative impact." The checking half lives in
/// OptimizationController; this is the phase-change half: a change-point
/// detector over per-period event rates. A phase change is flagged when
/// the recent short-window average departs from the established level by
/// a configurable factor in either direction; the level then re-anchors
/// to the new regime.
///
/// Used by the Figure 7 bench to annotate db's build/scan phase structure
/// and available to adaptive policies that want to, e.g., re-evaluate
/// placement decisions when the program changes behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_CORE_PHASEDETECTOR_H
#define HPMVM_CORE_PHASEDETECTOR_H

#include "core/SampleConsumer.h"
#include "obs/Metrics.h"
#include "support/Statistics.h"
#include "support/Types.h"

#include <cstddef>

namespace hpmvm {

class DecisionJournal;
class ObsContext;
class TraceBuffer;
class VirtualClock;

/// Change-point policy.
struct PhaseDetectorConfig {
  /// Short window whose average is compared against the phase level.
  size_t Window = 3;
  /// Flag a change when the window average exceeds level*Factor or drops
  /// below level/Factor.
  double ChangeFactor = 2.5;
  /// Observations before the first change can be flagged (establishes the
  /// initial level).
  size_t MinPeriods = 4;
  /// Treat rates below this as zero-activity (lulls): entering/leaving a
  /// lull is also a phase change.
  double ActivityFloor = 0.5;
};

/// Streaming phase-change detector over one metric. Also usable as a
/// pipeline consumer: registered on a SamplePipeline it observes the
/// per-period (duty-cycle-corrected) sample rate and flags phase changes
/// of the whole monitored event stream.
class PhaseDetector : public SampleConsumer {
public:
  explicit PhaseDetector(const PhaseDetectorConfig &Config = {});

  /// Feeds one measurement period's rate. \returns true when this period
  /// starts a new phase.
  bool observe(double Rate);

  /// Registers the phase.changes counter, journals a PhaseChange decision
  /// per detected change, and (with a clock set) emits a "phase.change"
  /// trace instant.
  void attachObs(ObsContext &Obs) override;

  /// Timestamps the trace instants; without it changes are counted but
  /// not traced.
  void setClock(const VirtualClock *C) { Clock = C; }

  // SampleConsumer: count a period's samples, observe the scaled rate.
  const char *name() const override { return "phase"; }
  void onSample(const AttributedSample &S) override {
    ++PeriodSamples[static_cast<size_t>(S.Kind)];
  }
  void consumeBatch(std::span<const AttributedSample> Batch) override {
    // Batches are homogeneous in kind: one indexed add for the whole
    // batch.
    if (!Batch.empty())
      PeriodSamples[static_cast<size_t>(Batch.front().Kind)] += Batch.size();
  }
  void onPeriod(const PeriodContext &Ctx) override;

  /// Number of the current phase (the first phase is 1; 0 before any
  /// observation).
  size_t currentPhase() const { return Phase; }

  /// The established rate level of the current phase.
  double level() const { return Level; }

  size_t periodsObserved() const { return Observed; }

private:
  PhaseDetectorConfig Config;
  MovingAverage Short;
  double Level = 0.0;
  bool LevelActive = false; ///< Is the current phase above the floor?
  size_t Phase = 0;
  size_t Observed = 0;
  size_t SincePhaseStart = 0;
  uint64_t PeriodSamples[kNumHpmEventKinds] = {};
  Counter *MChanges = &Counter::sink();
  TraceBuffer *Trace = nullptr;
  DecisionJournal *Journal = nullptr;
  const VirtualClock *Clock = nullptr;
};

} // namespace hpmvm

#endif // HPMVM_CORE_PHASEDETECTOR_H
