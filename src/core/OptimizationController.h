//===-- core/OptimizationController.h - Assess & revert --------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The online feedback loop of section 5.3 / Figure 8: "The rate of events
/// for each reference field is measured throughout the execution and this
/// allows ... checking whether an optimization decision by the JIT or the
/// GC had a positive or a negative impact. If the transformation improved
/// performance, the system can proceed normally. If the transformation
/// reduced performance, either a different optimization step can be
/// performed or it is possible to revert to the old code."
///
/// The controller watches a per-period miss rate. Before any policy change
/// it maintains a baseline (mean over a sliding window). After
/// notePolicyChange() it collects a decision window; if the post-change
/// mean exceeds baseline by the regression threshold, it fires the revert
/// action ("after several measurement periods it triggers a switch back to
/// the original configuration"). Note that, as in the paper, objects
/// already placed stay where they are -- only newly promoted objects follow
/// the restored policy.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_CORE_OPTIMIZATIONCONTROLLER_H
#define HPMVM_CORE_OPTIMIZATIONCONTROLLER_H

#include "core/RegressionGate.h"
#include "obs/Metrics.h"
#include "support/Types.h"

#include <cstddef>
#include <functional>

namespace hpmvm {

class DecisionJournal;
class ObsContext;
class TraceBuffer;
class VirtualClock;

/// Controller policy: historically defined here, now shared with the
/// PolicyEngine's per-(method, action) gates as GateConfig.
using ControllerConfig = GateConfig;

/// Assesses one optimization decision via measured event rates. A thin obs
/// wrapper over RegressionGate: the gate decides, the controller journals,
/// counts, traces, and fires the revert action.
class OptimizationController {
public:
  using State = RegressionGate::State;

  explicit OptimizationController(const ControllerConfig &Config = {});

  /// Feeds one measurement period's event rate (events per period or per
  /// second -- any consistent unit).
  void observePeriod(double Rate);

  /// Declares that a policy change was just applied; assessment starts.
  void notePolicyChange();

  /// Registers controller.policy_changes / reverts / accepts counters,
  /// journals Assess/Revert/Accept decisions, and, when \p Clock is given,
  /// emits trace instants at each verdict.
  void attachObs(ObsContext &Obs, const VirtualClock *Clock = nullptr);

  /// Names the optimization this controller guards in journal records
  /// (e.g. "prefetch"); must be a string literal. Default "controller".
  void setJournalSubject(const char *Name) { Subject = Name; }

  /// Action invoked when a regression is detected.
  void setRevertAction(std::function<void()> Fn) {
    Revert = std::move(Fn);
  }

  State state() const { return Gate.state(); }
  double baselineRate() const { return Gate.baseline(); }
  double assessedRate() const { return Gate.assessed(); }
  /// The baseline as it stood when the last verdict was reached (the
  /// running baseline keeps moving afterwards).
  double decisionBaseline() const { return Gate.decisionBaseline(); }
  size_t periodsObserved() const { return Gate.observed(); }

private:
  RegressionGate Gate;
  std::function<void()> Revert;
  Counter *MPolicyChanges = &Counter::sink();
  Counter *MReverts = &Counter::sink();
  Counter *MAccepts = &Counter::sink();
  TraceBuffer *Trace = nullptr;
  DecisionJournal *Journal = nullptr;
  const VirtualClock *Clock = nullptr;
  const char *Subject = "controller";
};

} // namespace hpmvm

#endif // HPMVM_CORE_OPTIMIZATIONCONTROLLER_H
