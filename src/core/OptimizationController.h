//===-- core/OptimizationController.h - Assess & revert --------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The online feedback loop of section 5.3 / Figure 8: "The rate of events
/// for each reference field is measured throughout the execution and this
/// allows ... checking whether an optimization decision by the JIT or the
/// GC had a positive or a negative impact. If the transformation improved
/// performance, the system can proceed normally. If the transformation
/// reduced performance, either a different optimization step can be
/// performed or it is possible to revert to the old code."
///
/// The controller watches a per-period miss rate. Before any policy change
/// it maintains a baseline (mean over a sliding window). After
/// notePolicyChange() it collects a decision window; if the post-change
/// mean exceeds baseline by the regression threshold, it fires the revert
/// action ("after several measurement periods it triggers a switch back to
/// the original configuration"). Note that, as in the paper, objects
/// already placed stay where they are -- only newly promoted objects follow
/// the restored policy.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_CORE_OPTIMIZATIONCONTROLLER_H
#define HPMVM_CORE_OPTIMIZATIONCONTROLLER_H

#include "obs/Metrics.h"
#include "support/Types.h"

#include <cstddef>
#include <functional>
#include <vector>

namespace hpmvm {

class DecisionJournal;
class ObsContext;
class TraceBuffer;
class VirtualClock;

/// Controller policy.
struct ControllerConfig {
  size_t BaselineWindow = 4;  ///< Periods averaged for the baseline.
  size_t DecisionWindow = 4;  ///< Periods observed after a change.
  /// Revert when post-change mean rate > baseline * this factor.
  double RegressionFactor = 1.3;
  /// Ignore this many periods right after the change (placement effects
  /// only appear once the GC has promoted objects under the new policy).
  size_t WarmupPeriods = 1;
  /// Skip periods with a zero rate entirely (program phases with no
  /// activity on the monitored class carry no information; deciding on
  /// them would compare lulls against load).
  bool IgnoreZeroRatePeriods = false;
};

/// Assesses one optimization decision via measured event rates.
class OptimizationController {
public:
  enum class State : uint8_t {
    Monitoring, ///< Maintaining the baseline.
    Warmup,     ///< Change applied; skipping warm-up periods.
    Assessing,  ///< Collecting the decision window.
    Reverted,   ///< Regression detected; revert action fired.
    Accepted,   ///< Change kept (no regression).
  };

  explicit OptimizationController(const ControllerConfig &Config = {});

  /// Feeds one measurement period's event rate (events per period or per
  /// second -- any consistent unit).
  void observePeriod(double Rate);

  /// Declares that a policy change was just applied; assessment starts.
  void notePolicyChange();

  /// Registers controller.policy_changes / reverts / accepts counters,
  /// journals Assess/Revert/Accept decisions, and, when \p Clock is given,
  /// emits trace instants at each verdict.
  void attachObs(ObsContext &Obs, const VirtualClock *Clock = nullptr);

  /// Names the optimization this controller guards in journal records
  /// (e.g. "prefetch"); must be a string literal. Default "controller".
  void setJournalSubject(const char *Name) { Subject = Name; }

  /// Action invoked when a regression is detected.
  void setRevertAction(std::function<void()> Fn) {
    Revert = std::move(Fn);
  }

  State state() const { return Current; }
  double baselineRate() const { return Baseline; }
  double assessedRate() const { return Assessed; }
  /// The baseline as it stood when the last verdict was reached (the
  /// running baseline keeps moving afterwards).
  double decisionBaseline() const { return BaselineAtDecision; }
  size_t periodsObserved() const { return Observed; }

private:
  ControllerConfig Config;
  State Current = State::Monitoring;
  std::vector<double> Window;
  double Baseline = 0.0;
  double Assessed = 0.0;
  double BaselineAtDecision = 0.0;
  size_t Observed = 0;
  size_t Skipped = 0;
  std::function<void()> Revert;
  Counter *MPolicyChanges = &Counter::sink();
  Counter *MReverts = &Counter::sink();
  Counter *MAccepts = &Counter::sink();
  TraceBuffer *Trace = nullptr;
  DecisionJournal *Journal = nullptr;
  const VirtualClock *Clock = nullptr;
  const char *Subject = "controller";
};

} // namespace hpmvm

#endif // HPMVM_CORE_OPTIMIZATIONCONTROLLER_H
