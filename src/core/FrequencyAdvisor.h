//===-- core/FrequencyAdvisor.h - Frequency-driven placement ---*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison policy from online object reordering (Huang et al.,
/// OOPSLA 2004): place the referent of the most frequently *accessed*
/// reference field next to its holder, using light-weight software
/// profiling of field loads. The paper's position: "Our work takes a
/// similar approach, but we do not rely on execution frequencies as a
/// metric for locality. Instead we use direct feedback from the memory
/// hierarchy about cache misses" -- frequency counts a hot-but-cached
/// field the same as a hot-and-missing one. The ablation bench compares
/// the two advisors head to head.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_CORE_FREQUENCYADVISOR_H
#define HPMVM_CORE_FREQUENCYADVISOR_H

#include "heap/GcApi.h"
#include "support/Types.h"

namespace hpmvm {

class VirtualMachine;

/// PlacementAdvisor driven by field *access* frequency (requires
/// VmConfig::ProfileFieldAccess).
class FrequencyAdvisor : public PlacementAdvisor {
public:
  /// \p MinAccesses gates hotness, like the miss advisor's sample
  /// threshold (but on raw access counts, which are ~sampling-interval
  /// times larger).
  FrequencyAdvisor(const VirtualMachine &Vm, uint64_t MinAccesses = 1000);

  CoallocationHint coallocationHint(ClassId Cls) override;
  void noteCoallocation(ClassId, FieldId) override { ++Coallocations; }

  uint64_t coallocationCount() const { return Coallocations; }

private:
  const VirtualMachine &Vm;
  uint64_t MinAccesses;
  uint64_t Coallocations = 0;
};

} // namespace hpmvm

#endif // HPMVM_CORE_FREQUENCYADVISOR_H
