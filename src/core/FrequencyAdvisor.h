//===-- core/FrequencyAdvisor.h - Frequency-driven placement ---*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison policy from online object reordering (Huang et al.,
/// OOPSLA 2004): place the referent of the most frequently *accessed*
/// reference field next to its holder, using light-weight software
/// profiling of field loads. The paper's position: "Our work takes a
/// similar approach, but we do not rely on execution frequencies as a
/// metric for locality. Instead we use direct feedback from the memory
/// hierarchy about cache misses" -- frequency counts a hot-but-cached
/// field the same as a hot-and-missing one. The ablation bench compares
/// the two advisors head to head.
///
/// As a pipeline consumer the advisor additionally tracks per-method
/// sample frequency and reports persistently hot methods to the AOS
/// (AdaptiveOptimizationSystem::noteHpmHotMethod), closing the
/// HPM-feedback -> recompilation loop the paper's section 6 sketches.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_CORE_FREQUENCYADVISOR_H
#define HPMVM_CORE_FREQUENCYADVISOR_H

#include "core/OptimizationAction.h"
#include "core/SampleConsumer.h"
#include "heap/GcApi.h"
#include "obs/Metrics.h"
#include "support/Types.h"

#include <vector>

namespace hpmvm {

class DecisionJournal;
class ObsContext;
class VirtualMachine;

/// PlacementAdvisor driven by field *access* frequency (requires
/// VmConfig::ProfileFieldAccess) and SampleConsumer reporting
/// sample-frequent methods to the AOS. Also an OptimizationAction: the
/// PolicyEngine's recompilation lever for compute-bound methods, reported
/// to the AOS one method per apply. Recompilation is irreversible, so
/// revert() is a no-op and the engine's blacklist alone prevents retries.
class FrequencyAdvisor : public PlacementAdvisor,
                         public SampleConsumer,
                         public OptimizationAction {
public:
  /// \p MinAccesses gates hotness, like the miss advisor's sample
  /// threshold (but on raw access counts, which are ~sampling-interval
  /// times larger).
  FrequencyAdvisor(VirtualMachine &Vm, uint64_t MinAccesses = 1000);

  // PlacementAdvisor.
  CoallocationHint coallocationHint(ClassId Cls) override;
  void noteCoallocation(ClassId, FieldId) override {
    ++Coallocations;
    MCoallocations->inc();
  }

  uint64_t coallocationCount() const { return Coallocations; }

  // SampleConsumer: per-method sample frequency feeding AOS decisions.
  const char *name() const override { return "frequency"; }
  void onSample(const AttributedSample &S) override;
  void consumeBatch(std::span<const AttributedSample> Batch) override;
  void onPeriod(const PeriodContext &Ctx) override;

  /// Registers freq.samples / freq.hot_methods / freq.coallocations and
  /// journals a HotRecompile decision per hot-method report.
  void attachObs(ObsContext &Obs) override;

  /// Samples on a not-yet-optimized method before it is reported hot to
  /// the AOS (once per method).
  void setHotMethodSamples(uint64_t N) { HotMethodSamples = N; }

  uint64_t sampleCount(MethodId Id) const {
    return Id < MethodSamples.size() ? MethodSamples[Id] : 0;
  }
  uint64_t hotMethodsReported() const { return HotReported; }

  // OptimizationAction: hot-recompilation for compute-bound methods (the
  // miss-directed actions have nothing to fix there; frequency is exactly
  // the right metric for "just make the code better").
  ActionKind kind() const override { return ActionKind::HotRecompile; }
  const char *actionName() const override { return "recompile"; }
  double score(const MethodBottleneck &B) const override {
    return B.Label == BottleneckLabel::ComputeBound ? B.SampleRate : 0.0;
  }
  bool apply(MethodId M) override;
  void revert(MethodId) override {}

private:
  void ensureMethod(MethodId Id) {
    if (Id >= MethodSamples.size()) {
      MethodSamples.resize(Id + 1, 0);
      Reported.resize(Id + 1, 0);
    }
  }

  VirtualMachine &Vm;
  uint64_t MinAccesses;
  uint64_t Coallocations = 0;
  uint64_t HotMethodSamples = 16;
  uint64_t HotReported = 0;
  // Dense, MethodId-indexed: method ids are small and dense, so the
  // per-sample tally is a single indexed increment.
  std::vector<uint64_t> MethodSamples;
  std::vector<uint8_t> Reported;
  Counter *MSamples = &Counter::sink();
  Counter *MHotMethods = &Counter::sink();
  Counter *MCoallocations = &Counter::sink();
  DecisionJournal *Journal = nullptr;
};

} // namespace hpmvm

#endif // HPMVM_CORE_FREQUENCYADVISOR_H
