//===-- core/CoallocationAdvisor.h - Hot-field placement advice *- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bridge between miss statistics and the GC: "The VM keeps a list [of]
/// the reference fields for each class type sorted by number of associated
/// cache misses. When deciding to co-allocate two objects the GC just
/// requests enough space to fit both objects." For each promoted class the
/// advisor returns the hottest reference field above a sample threshold.
/// It also implements the Figure 8 lever: a forced gap between parent and
/// child that deliberately undoes the locality win.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_CORE_COALLOCATIONADVISOR_H
#define HPMVM_CORE_COALLOCATIONADVISOR_H

#include "core/FieldMissTable.h"
#include "core/OptimizationAction.h"
#include "heap/GcApi.h"
#include "support/Types.h"

#include <map>
#include <set>
#include <vector>

namespace hpmvm {

class ClassRegistry;
class DecisionJournal;
class ObsContext;
class VirtualClock;

/// Advisor policy knobs.
struct AdvisorConfig {
  /// Minimum sampled misses before a field is considered hot. Low because
  /// sampled counts are already heavily decimated by the PEBS interval.
  uint64_t MinMissSamples = 2;
  bool Enabled = true;
  /// Padding (bytes) forced between co-allocated pairs; 0 in normal
  /// operation, one cache line (128) in the Figure 8 experiment.
  uint32_t ForcedGapBytes = 0;
};

/// PlacementAdvisor driven by the per-field miss table. Also an
/// OptimizationAction: under the PolicyEngine, co-allocation is switched
/// on per guarded method (any active method keeps the advisor enabled;
/// reverting the last one disables it again). Placement itself stays
/// class-keyed -- the method is the policy engine's accounting unit, as in
/// the paper, where the GC placement policy is global but assessed against
/// the miss rate it was meant to improve.
class CoallocationAdvisor : public PlacementAdvisor,
                            public OptimizationAction {
public:
  CoallocationAdvisor(const ClassRegistry &Classes,
                      const FieldMissTable &Table,
                      const AdvisorConfig &Config = {});

  CoallocationHint coallocationHint(ClassId Cls) override;
  uint32_t gapBytes() override { return Config.ForcedGapBytes; }
  void noteCoallocation(ClassId Cls, FieldId Field) override;

  /// Registers advisor metrics: hints served (valid / none), pairs
  /// co-allocated, hint-cache invalidations. Also journals Coalloc
  /// decisions: per-class hint changes and forced-gap changes.
  void attachObs(ObsContext &Obs);

  /// Clock used to stamp journal records (journaling is silent without).
  void setClock(const VirtualClock *C) { Clock = C; }

  void setEnabled(bool E) { Config.Enabled = E; }
  void setForcedGapBytes(uint32_t B);
  const AdvisorConfig &config() const { return Config; }

  // OptimizationAction: co-allocation removes misses at the source, so it
  // outranks prefetching only by registration order -- their latency-bound
  // scores tie by construction (2 * L1 rate), and the engine's
  // registration-order tie-break prefers removal over hiding.
  ActionKind kind() const override { return ActionKind::Coallocate; }
  const char *actionName() const override { return "coalloc"; }
  double score(const MethodBottleneck &B) const override {
    switch (B.Label) {
    case BottleneckLabel::LatencyBound:
      return 2.0 * B.L1Rate;
    case BottleneckLabel::BandwidthBound:
      return 1.5 * B.L2Rate;
    case BottleneckLabel::TlbBound:
      // The paper's result: miss-driven placement does not fix page-level
      // locality ("the DTLB-miss-driven approach does not improve
      // performance"). Low, non-zero: still worth a guarded try when
      // nothing else applies.
      return 0.25 * B.TlbRate;
    case BottleneckLabel::Unknown:
    case BottleneckLabel::ComputeBound:
      return 0.0;
    }
    return 0.0;
  }
  bool apply(MethodId M) override {
    PolicyActive.insert(M);
    Config.Enabled = true;
    return true;
  }
  void revert(MethodId M) override {
    PolicyActive.erase(M);
    if (PolicyActive.empty())
      Config.Enabled = false;
  }

  /// The reference fields of \p Cls sorted by miss count, hottest first
  /// (exposed for diagnostics and tests).
  std::vector<std::pair<FieldId, uint64_t>> sortedFields(ClassId Cls) const;

  uint64_t coallocationCount() const { return TotalCoallocations; }
  uint64_t coallocationCount(FieldId F) const;

private:
  const ClassRegistry &Classes;
  const FieldMissTable &Table;
  AdvisorConfig Config;
  /// Hint cache, invalidated when the table's version moves. Ordered maps
  /// (the advisor journals, so it is on an export path; lint rule R2):
  /// all three are keyed by small dense ids and touched only on cache
  /// misses and hint changes, so the log-time lookup is invisible.
  std::map<ClassId, CoallocationHint> Cache;
  uint64_t CacheVersion = ~0ull;
  uint64_t TotalCoallocations = 0;
  std::map<FieldId, uint64_t> PerField;
  /// Last hint field journaled per class, to journal only *changes* (the
  /// hint is recomputed on every cache invalidation but rarely moves).
  std::map<ClassId, FieldId> LastJournaledHint;
  /// Methods whose policy-engine coalloc action is currently applied.
  std::set<MethodId> PolicyActive;
  Counter *MHints = &Counter::sink();
  Counter *MNoHints = &Counter::sink();
  Counter *MCoallocations = &Counter::sink();
  Counter *MCacheInvalidations = &Counter::sink();
  DecisionJournal *Journal = nullptr;
  const VirtualClock *Clock = nullptr;
};

} // namespace hpmvm

#endif // HPMVM_CORE_COALLOCATIONADVISOR_H
