//===-- workloads/KernelsStreamTree.cpp - Stream & Tree kernels -----------===//
//
// Stream: compress/mpegaudio-style large-array passes. The buffers exceed
// the 4 KB free-list ceiling, so they are born in the large object space --
// there are no (parent, child) pairs under the co-allocation size limit,
// which is why Figure 3 shows zero co-allocated objects for these two
// programs.
//
// Tree: mtrt-style linked nodes. Walking child pointers makes Node::left /
// Node::right the hot reference fields; co-allocating a node with its
// hotter child shortens pointer-chasing chains by a line.
//
//===----------------------------------------------------------------------===//

#include "workloads/PatternKernels.h"

#include "vm/BytecodeBuilder.h"
#include "vm/VirtualMachine.h"

#include <cassert>

using namespace hpmvm;

WorkloadProgram hpmvm::buildStream(VirtualMachine &Vm,
                                   const StreamParams &P) {
  assert(P.ArrayBytes >= 64 && "stream buffers too small to be meaningful");
  ClassRegistry &C = Vm.classes();
  const std::string &Px = P.Prefix;

  ClassId ByteArr = C.defineArrayClass(Px + "byte[]", ElemKind::I8);
  uint32_t GIn = Vm.addGlobal(ValKind::Ref);
  uint32_t GOut = Vm.addGlobal(ValKind::Ref);
  const int32_t Len = static_cast<int32_t>(P.ArrayBytes);

  // --- init(): allocate and fill the in/out buffers ------------------------
  MethodId Init;
  {
    BytecodeBuilder B(Px + ".init");
    uint32_t A = B.newLocal(), I = B.newLocal();
    B.returns(RetKind::Void);
    B.iconst(Len).newArray(ByteArr).astore(A);
    Label Head = B.label(), Done = B.label();
    B.iconst(0).istore(I);
    B.bind(Head).iload(I).iconst(Len).ifICmp(CondKind::Ge, Done);
    B.aload(A).iload(I).iconst(256).rand().astoreI();
    // Fill every 8th byte only: the zero-init already touched the lines.
    B.iinc(I, 8).jump(Head);
    B.bind(Done);
    B.aload(A).gput(GIn);
    B.iconst(Len).newArray(ByteArr).gput(GOut);
    B.ret();
    Init = Vm.addMethod(B.build());
  }

  // --- pass() -> acc: out[i] = f(in[i]) -------------------------------------
  MethodId Pass;
  {
    BytecodeBuilder B(Px + ".pass");
    uint32_t InA = B.newLocal(), OutA = B.newLocal(), I = B.newLocal(),
             X = B.newLocal(), Acc = B.newLocal();
    B.returns(RetKind::Int);
    B.gget(GIn).astore(InA).gget(GOut).astore(OutA);
    B.iconst(0).istore(Acc);
    Label Head = B.label(), Done = B.label();
    B.iconst(0).istore(I);
    B.bind(Head).iload(I).iconst(Len).ifICmp(CondKind::Ge, Done);
    B.aload(InA).iload(I).aloadI().istore(X);
    // The per-element compute knob (mpegaudio does real DSP work per
    // sample; compress only a table lookup and a compare).
    for (uint32_t Op = 0; Op != P.ComputeOps; ++Op)
      B.iload(X).iconst(31).imul().iconst(7).iadd().istore(X);
    B.iload(X).iload(Acc).iadd().istore(Acc);
    B.aload(OutA).iload(I).iload(X).iconst(255).iand().astoreI();
    B.iinc(I, 1).jump(Head);
    B.bind(Done).iload(Acc).iret();
    Pass = Vm.addMethod(B.build());
  }

  // --- main ----------------------------------------------------------------
  WorkloadProgram Prog;
  {
    BytecodeBuilder B(Px + ".run");
    uint32_t R = B.newLocal(), Ps = B.newLocal();
    B.returns(RetKind::Void);
    Label RHead = B.label(), RDone = B.label();
    B.iconst(0).istore(R);
    B.bind(RHead).iload(R).iconst(static_cast<int32_t>(P.Rebuilds))
        .ifICmp(CondKind::Ge, RDone);
    B.call(Init);
    Label PHead = B.label(), PDone = B.label();
    B.iconst(0).istore(Ps);
    B.bind(PHead).iload(Ps).iconst(static_cast<int32_t>(P.Passes))
        .ifICmp(CondKind::Ge, PDone);
    B.call(Pass).popv();
    B.iinc(Ps, 1).jump(PHead);
    B.bind(PDone).iinc(R, 1).jump(RHead);
    B.bind(RDone).ret();
    Prog.Main = Vm.addMethod(B.build());
  }

  Prog.CompilationPlan = {Px + ".init", Px + ".pass", Px + ".run"};
  return Prog;
}

WorkloadProgram hpmvm::buildTree(VirtualMachine &Vm, const TreeParams &P) {
  assert(P.Depth >= 2 && P.Depth <= 22 && "tree depth out of sane range");
  ClassRegistry &C = Vm.classes();
  const std::string &Px = P.Prefix;

  ClassId Node = C.defineClass(Px + "Node", {{"left", true},
                                             {"right", true},
                                             {"payload", true},
                                             {"data", false}});
  ClassId IntArr = C.defineArrayClass(Px + "int[]", ElemKind::I32);
  FieldId FLeft = C.fieldId(Node, "left");
  FieldId FRight = C.fieldId(Node, "right");
  FieldId FPayload = C.fieldId(Node, "payload");
  FieldId FData = C.fieldId(Node, "data");
  uint32_t GRoot = Vm.addGlobal(ValKind::Ref);

  // --- build(depth) -> Node (recursive) -------------------------------------
  MethodId Build = Vm.declareMethod(Px + ".build", {ValKind::Int},
                                    RetKind::Ref);
  {
    BytecodeBuilder B(Px + ".build");
    uint32_t D = B.addParam(ValKind::Int);
    uint32_t Nd = B.newLocal(), A = B.newLocal(), I = B.newLocal();
    B.returns(RetKind::Ref);
    B.newObj(Node).astore(Nd);
    B.iconst(static_cast<int32_t>(P.PayloadInts)).newArray(IntArr)
        .astore(A);
    Label FHead = B.label(), FDone = B.label();
    B.iconst(0).istore(I);
    B.bind(FHead).iload(I).iconst(static_cast<int32_t>(P.PayloadInts))
        .ifICmp(CondKind::Ge, FDone);
    B.aload(A).iload(I).iconst(1 << 20).rand().astoreI();
    B.iinc(I, 1).jump(FHead);
    B.bind(FDone);
    B.aload(Nd).aload(A).putfield(FPayload);
    B.aload(Nd).iconst(1 << 16).rand().putfield(FData);
    Label Leaf = B.label();
    B.iload(D).iconst(1).ifICmp(CondKind::Le, Leaf);
    B.aload(Nd).iload(D).iconst(1).isub().call(Build).putfield(FLeft);
    B.aload(Nd).iload(D).iconst(1).isub().call(Build).putfield(FRight);
    B.bind(Leaf).aload(Nd).aret();
    Vm.defineMethod(Build, B.build());
  }

  // --- traverse(node) -> sum (recursive, depth-first) -----------------------
  MethodId Traverse = Vm.declareMethod(Px + ".traverse", {ValKind::Ref},
                                       RetKind::Int);
  {
    BytecodeBuilder B(Px + ".traverse");
    uint32_t Nd = B.addParam(ValKind::Ref);
    uint32_t Acc = B.newLocal(), Ch = B.newLocal();
    B.returns(RetKind::Int);
    Label NotNull = B.label();
    B.aload(Nd).ifNonNull(NotNull);
    B.iconst(0).iret();
    B.bind(NotNull);
    B.aload(Nd).getfield(FData).istore(Acc);
    B.aload(Nd).getfield(FPayload).iconst(0).aloadI().iload(Acc).iadd()
        .istore(Acc);
    B.aload(Nd).getfield(FLeft).astore(Ch);
    B.aload(Ch).call(Traverse).iload(Acc).iadd().istore(Acc);
    B.aload(Nd).getfield(FRight).astore(Ch);
    B.aload(Ch).call(Traverse).iload(Acc).iadd().istore(Acc);
    B.iload(Acc).iret();
    Vm.defineMethod(Traverse, B.build());
  }

  ClassId Scratch = C.defineArrayClass(Px + "scratch[]", ElemKind::I16);

  // --- walk(steps) -> sum: random descents from the root --------------------
  MethodId Walk;
  {
    BytecodeBuilder B(Px + ".walk");
    uint32_t Steps = B.addParam(ValKind::Int);
    uint32_t Cur = B.newLocal(), Acc = B.newLocal(), I = B.newLocal(),
             Ch = B.newLocal();
    B.returns(RetKind::Int);
    B.gget(GRoot).astore(Cur);
    B.iconst(0).istore(Acc);
    Label Head = B.label(), Done = B.label(), GoRight = B.label(),
          Descend = B.label(), Restart = B.label();
    B.iconst(0).istore(I);
    B.bind(Head).iload(I).iload(Steps).ifICmp(CondKind::Ge, Done);
    B.iconst(2).rand().ifZ(CondKind::Ne, GoRight);
    B.aload(Cur).getfield(FLeft).astore(Ch);
    B.jump(Descend);
    B.bind(GoRight).aload(Cur).getfield(FRight).astore(Ch);
    B.bind(Descend);
    B.aload(Ch).ifNull(Restart);
    B.aload(Ch).astore(Cur);
    B.aload(Cur).getfield(FData).iload(Acc).iadd().istore(Acc);
    if (P.GarbageEvery) {
      // Transient allocation per few steps (visitor objects, temp keys):
      // this is what keeps the nursery turning over in the originals.
      Label SkipG = B.label();
      B.iload(I).iconst(static_cast<int32_t>(P.GarbageEvery)).irem()
          .ifZ(CondKind::Ne, SkipG);
      B.iconst(24).newArray(Scratch).popv();
      B.bind(SkipG);
    }
    B.iinc(I, 1).jump(Head);
    B.bind(Restart).gget(GRoot).astore(Cur).iinc(I, 1).jump(Head);
    B.bind(Done).iload(Acc).iret();
    Walk = Vm.addMethod(B.build());
  }

  // --- main ----------------------------------------------------------------
  WorkloadProgram Prog;
  {
    BytecodeBuilder B(Px + ".run");
    uint32_t It = B.newLocal(), K = B.newLocal();
    B.returns(RetKind::Void);
    Label IHead = B.label(), IDone = B.label();
    B.iconst(0).istore(It);
    B.bind(IHead).iload(It).iconst(static_cast<int32_t>(P.Iterations))
        .ifICmp(CondKind::Ge, IDone);
    // Drop the previous tree before building its replacement so the peak
    // live set is one tree.
    B.aconstNull().gput(GRoot);
    B.iconst(static_cast<int32_t>(P.Depth)).call(Build).gput(GRoot);
    Label THead = B.label(), TDone = B.label();
    B.iconst(0).istore(K);
    B.bind(THead).iload(K).iconst(static_cast<int32_t>(P.Traversals))
        .ifICmp(CondKind::Ge, TDone);
    B.gget(GRoot).call(Traverse).popv();
    B.iinc(K, 1).jump(THead);
    B.bind(TDone);
    Label WHead = B.label(), WDone = B.label();
    B.iconst(0).istore(K);
    B.bind(WHead).iload(K).iconst(static_cast<int32_t>(P.Walks))
        .ifICmp(CondKind::Ge, WDone);
    B.iconst(static_cast<int32_t>(P.WalkSteps)).call(Walk).popv();
    B.iinc(K, 1).jump(WHead);
    B.bind(WDone).iinc(It, 1).jump(IHead);
    B.bind(IDone).ret();
    Prog.Main = Vm.addMethod(B.build());
  }

  Prog.CompilationPlan = {Px + ".build", Px + ".traverse", Px + ".walk",
                          Px + ".run"};
  return Prog;
}
