//===-- workloads/PseudoJbb.cpp - pseudojbb -------------------------------===//
//
// SPEC JBB2000 with a fixed transaction count (the paper uses n=100000,
// max 6 warehouses). Orders hold 20-element long[] item arrays whose
// bodies exceed one 128-byte cache line: the GC co-allocates millions of
// (Order, items) pairs but "optimizing for reduced cache misses at the
// cache-line level does not yield a significant benefit for this program"
// -- 2-6% miss reduction, <=2% speedup.
//
//===----------------------------------------------------------------------===//

#include "workloads/PatternKernels.h"

#include "vm/VirtualMachine.h"

using namespace hpmvm;

namespace hpmvm::workloads {

WorkloadProgram buildPseudoJbb(VirtualMachine &Vm, const WorkloadParams &P) {
  WarehouseParams W;
  W.Prefix = "jbb";
  W.WindowSize = scaled(6000, P);
  W.Transactions = scaled(120000, P);
  W.ItemsPerOrder = 20;
  W.NameChars = 10;
  W.ScanEvery = 12;
  W.ScanOrders = 32;
  return buildWarehouse(Vm, W);
}

} // namespace hpmvm::workloads
