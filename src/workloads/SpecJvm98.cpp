//===-- workloads/SpecJvm98.cpp - The seven SPECjvm98 programs ------------===//
//
// Synthetic analogues of the SPECjvm98 programs the paper runs with the
// largest input (s=100) repeated 3 times. Each builder documents which
// demographic property of the original it reproduces.
//
//===----------------------------------------------------------------------===//

#include "workloads/PatternKernels.h"

#include "vm/VirtualMachine.h"

using namespace hpmvm;

namespace hpmvm::workloads {

/// _201_compress: LZW over large byte buffers. All significant data lives
/// in large arrays (LOS) -> no co-allocation candidates (Figure 3 shows
/// zero for compress). High L1 miss rate from streaming makes it one of
/// the worst cases for sampling overhead at the 25K interval.
WorkloadProgram buildCompress(VirtualMachine &Vm, const WorkloadParams &P) {
  StreamParams S;
  S.Prefix = "compress";
  S.ArrayBytes = scaled(512 * 1024, P);
  S.Passes = 2;
  S.ComputeOps = 1;
  S.Rebuilds = 3;
  return buildStream(Vm, S);
}

/// _202_jess: expert system; repeated scans over small fact records with
/// high temporal reuse. Small working set; modest but real co-allocation
/// benefit (the paper's Figure 4 shows a visible L1 reduction for jess).
WorkloadProgram buildJess(VirtualMachine &Vm, const WorkloadParams &P) {
  RecordTableParams R;
  R.Prefix = "jess";
  R.NumRecords = scaled(6000, P);
  R.MinChars = 4;
  R.MaxChars = 12;
  R.TouchChars = 4;
  R.ScanPasses = 30;
  R.SortPasses = 0;
  R.Iterations = 3;
  R.GarbageEvery = 1;
  R.GarbageChars = 16;
  return buildRecordTable(Vm, R);
}

/// _209_db: the headline program. A shuffled in-memory database of String
/// records; every operation dereferences Record::value (the paper's
/// String::value -> char[]) in cache-hostile order. Best case for
/// HPM-guided co-allocation: ~28% fewer L1 misses, ~14% faster.
WorkloadProgram buildDb(VirtualMachine &Vm, const WorkloadParams &P) {
  RecordTableParams R;
  R.Prefix = "db";
  R.NumRecords = scaled(12000, P);
  R.MinChars = 8;
  R.MaxChars = 24;
  R.TouchChars = 8;
  R.ScanPasses = 14;
  R.SortPasses = 4;
  R.Iterations = 3;
  R.GarbageEvery = 1;
  R.GarbageChars = 24;
  return buildRecordTable(Vm, R);
}

/// _213_javac: compiler front end; mostly short-lived tokens/trees (little
/// survives into the mature space), so co-allocation finds few candidates
/// and the net effect is a slight slowdown (~ the sampling overhead) -- the
/// paper's worst case at -2.1%.
WorkloadProgram buildJavac(VirtualMachine &Vm, const WorkloadParams &P) {
  ParserParams Pp;
  Pp.Prefix = "javac";
  Pp.TokenWaves = 60;
  Pp.TokensPerWave = scaled(2500, P);
  Pp.TokenChars = 10;
  Pp.RingSize = 64;
  Pp.AstNodes = scaled(9000, P);
  Pp.AstWalks = 15000;
  Pp.WalkSteps = 12;
  Pp.SymbolRows = scaled(2500, P);
  WorkloadProgram Parser = buildParser(Vm, Pp);

  TreeParams T;
  T.Prefix = "javacIr";
  T.Depth = 10;
  T.Traversals = 6;
  T.Walks = 6000;
  T.WalkSteps = 10;
  T.PayloadInts = 2;
  T.Iterations = 3;
  T.GarbageEvery = 2;
  WorkloadProgram Ir = buildTree(Vm, T);

  return combinePrograms(Vm, "javac", {Parser, Ir});
}

/// _222_mpegaudio: DSP kernel; compute-bound over buffers that mostly fit
/// in L2, so the absolute number of misses is small and the *constant*
/// part of the monitoring overhead dominates (paper section 6.2).
WorkloadProgram buildMpegaudio(VirtualMachine &Vm, const WorkloadParams &P) {
  StreamParams S;
  S.Prefix = "mpegaudio";
  S.ArrayBytes = scaled(256 * 1024, P);
  S.Passes = 6;
  S.ComputeOps = 4;
  S.Rebuilds = 1;
  return buildStream(Vm, S);
}

/// _227_mtrt: raytracer; a large tree of small scene nodes traversed by
/// pointer walks. Node->child chains benefit moderately from
/// co-allocation.
WorkloadProgram buildMtrt(VirtualMachine &Vm, const WorkloadParams &P) {
  TreeParams T;
  T.Prefix = "mtrt";
  T.Depth = P.ScalePercent >= 100 ? 14 : 12;
  T.Traversals = 2;
  T.Walks = scaled(25000, P);
  T.WalkSteps = 30;
  T.PayloadInts = 4;
  T.Iterations = 2;
  T.GarbageEvery = 4;
  return buildTree(Vm, T);
}

/// _228_jack: parser generator; token churn plus a small persistent table,
/// repeated over its input 3 times. Small mature population -> small
/// co-allocation counts, near-neutral outcome.
WorkloadProgram buildJack(VirtualMachine &Vm, const WorkloadParams &P) {
  ParserParams Pp;
  Pp.Prefix = "jack";
  Pp.TokenWaves = 40;
  Pp.TokensPerWave = scaled(1500, P);
  Pp.TokenChars = 8;
  Pp.RingSize = 48;
  Pp.AstNodes = scaled(4000, P);
  Pp.AstWalks = 8000;
  Pp.WalkSteps = 10;
  Pp.SymbolRows = scaled(1500, P);
  WorkloadProgram Parser = buildParser(Vm, Pp);

  RecordTableParams R;
  R.Prefix = "jackTbl";
  R.NumRecords = scaled(2500, P);
  R.MinChars = 6;
  R.MaxChars = 14;
  R.TouchChars = 4;
  R.ScanPasses = 10;
  R.SortPasses = 0;
  R.Iterations = 3;
  R.GarbageEvery = 1;
  R.GarbageChars = 16;
  WorkloadProgram Table = buildRecordTable(Vm, R);

  return combinePrograms(Vm, "jack", {Parser, Table});
}

} // namespace hpmvm::workloads
