//===-- workloads/PatternKernels.h - Reusable workload kernels -*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized program kernels, written in the VM's bytecode, from which
/// the 16 benchmark programs are composed. Each kernel gets its own class
/// names (prefix) so miss statistics and co-allocation decisions stay per
/// benchmark. The kernels model the object demographics that drive the
/// paper's results:
///
///   RecordTable  parent Record -> small char[] payload, shuffled scan
///                order (db's String/char[] pattern -- the headline case).
///   Stream       large primitive arrays in the LOS, sequential passes
///                (compress/mpegaudio: zero co-allocation candidates).
///   Tree         linked nodes with child-pointer walks (mtrt/bloat/pmd).
///   HashProbe    bucket chains with char[] keys (hsqldb).
///   Postings     per-term linked posting lists (luindex/lusearch).
///   Warehouse    orders holding >128-byte long[] item arrays (pseudojbb:
///                many co-allocations, little cache-line benefit).
///   Parser       token churn + symbol probes + AST walks (javac, antlr,
///                jack, jython, fop).
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_WORKLOADS_PATTERNKERNELS_H
#define HPMVM_WORKLOADS_PATTERNKERNELS_H

#include "workloads/Workload.h"

#include <initializer_list>
#include <string>

namespace hpmvm {

class VirtualMachine;

/// Shuffled record table with char[] payloads (db-style).
struct RecordTableParams {
  std::string Prefix;
  uint32_t NumRecords = 10000;
  uint32_t MinChars = 8;       ///< Payload length range (chars).
  uint32_t MaxChars = 24;
  uint32_t TouchChars = 8;     ///< Chars read per record per scan.
  uint32_t ScanPasses = 10;
  uint32_t SortPasses = 2;     ///< Bubble passes comparing first chars.
  uint32_t Iterations = 3;     ///< Table rebuilds (the paper runs s=100 3x).
  uint32_t GarbageEvery = 4;   ///< Temp char[] per this many records (0=off).
  uint32_t GarbageChars = 24;  ///< Length of each comparison temporary.
};
WorkloadProgram buildRecordTable(VirtualMachine &Vm,
                                 const RecordTableParams &P);

/// Large-array streaming (compress/mpegaudio-style).
struct StreamParams {
  std::string Prefix;
  uint32_t ArrayBytes = 1 << 20; ///< Per buffer; > 4 KB lands in the LOS.
  uint32_t Passes = 8;
  uint32_t ComputeOps = 0;       ///< Extra ALU ops per element.
  uint32_t Rebuilds = 1;         ///< Buffer reallocations ("files").
};
WorkloadProgram buildStream(VirtualMachine &Vm, const StreamParams &P);

/// Binary tree with payload arrays and pointer walks (mtrt-style).
struct TreeParams {
  std::string Prefix;
  uint32_t Depth = 14;
  uint32_t Traversals = 4;  ///< Full recursive traversals per iteration.
  uint32_t Walks = 20000;   ///< Random root-to-leaf-ish walks.
  uint32_t WalkSteps = 24;
  uint32_t PayloadInts = 4;
  uint32_t Iterations = 2;
  uint32_t GarbageEvery = 8;
};
WorkloadProgram buildTree(VirtualMachine &Vm, const TreeParams &P);

/// Chained hash table with char[] keys and row payloads (hsqldb-style).
struct HashProbeParams {
  std::string Prefix;
  uint32_t NumRows = 20000;
  uint32_t TableSize = 4096;
  uint32_t KeyChars = 12;
  uint32_t RowInts = 8;
  uint32_t Probes = 120000;
  uint32_t Iterations = 2;
  uint32_t GarbageEvery = 6;
};
WorkloadProgram buildHashProbe(VirtualMachine &Vm, const HashProbeParams &P);

/// Per-term posting lists (luindex/lusearch-style).
struct PostingsParams {
  std::string Prefix;
  uint32_t NumTerms = 4000;
  uint32_t NumPostings = 60000;
  uint32_t Queries = 30000;
  uint32_t MaxChain = 24;   ///< Postings visited per query.
  uint32_t Iterations = 2;
  uint32_t GarbageEvery = 6;
};
WorkloadProgram buildPostings(VirtualMachine &Vm, const PostingsParams &P);

/// Order/customer transactions with >line-sized item arrays (pseudojbb).
struct WarehouseParams {
  std::string Prefix;
  uint32_t WindowSize = 12000;  ///< Live ring of recent orders.
  uint32_t Transactions = 60000;
  uint32_t ItemsPerOrder = 20;  ///< 20 longs = 160 B body: > one 128 B line.
  uint32_t NameChars = 10;
  uint32_t ScanEvery = 16;      ///< Payment/stock scan per N transactions.
  uint32_t ScanOrders = 24;     ///< Orders touched per scan.
};
WorkloadProgram buildWarehouse(VirtualMachine &Vm, const WarehouseParams &P);

/// Token churn + symbol-table probes + AST walks (compiler-ish programs).
struct ParserParams {
  std::string Prefix;
  uint32_t TokenWaves = 60;
  uint32_t TokensPerWave = 2000;
  uint32_t TokenChars = 10;
  uint32_t RingSize = 64;         ///< Live token window (survival knob).
  uint32_t AstNodes = 12000;
  uint32_t AstWalks = 30000;
  uint32_t WalkSteps = 16;
  uint32_t SymbolRows = 3000;
  uint32_t SymbolProbesPerWave = 400;
};
WorkloadProgram buildParser(VirtualMachine &Vm, const ParserParams &P);

/// Builds a main method that runs several sub-programs in order and merges
/// their compilation plans.
WorkloadProgram combinePrograms(VirtualMachine &Vm, const std::string &Name,
                                std::initializer_list<WorkloadProgram> Parts);

/// Scales \p N by \p P.ScalePercent (floor 1).
uint32_t scaled(uint32_t N, const WorkloadParams &P);

} // namespace hpmvm

#endif // HPMVM_WORKLOADS_PATTERNKERNELS_H
