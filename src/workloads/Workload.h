//===-- workloads/Workload.h - Benchmark program registry ------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Table 1 benchmark set, rebuilt as synthetic programs in our
/// bytecode: SPECjvm98 (compress, jess, db, javac, mpegaudio, mtrt, jack),
/// DaCapo 10-2006 MR-2 (antlr, bloat, fop, hsqldb, jython, luindex,
/// lusearch, pmd -- chart/eclipse/xalan excluded as in the paper), and
/// pseudojbb. Each program mirrors the original's object demographics:
/// which objects survive, their sizes relative to the 128-byte line, and
/// the parent->child access patterns -- the properties the co-allocation
/// results depend on. Per-program rationale lives with each builder.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_WORKLOADS_WORKLOAD_H
#define HPMVM_WORKLOADS_WORKLOAD_H

#include "support/Types.h"
#include "vm/Bytecode.h"

#include <string>
#include <vector>

namespace hpmvm {

class VirtualMachine;

/// Build-time knobs shared by all workloads.
struct WorkloadParams {
  /// Scales data-set sizes (100 = the default size used by the test suite
  /// and benches; the paper's originals are of course far larger).
  uint32_t ScalePercent = 100;
  uint64_t Seed = 42;
};

/// What building a workload into a VM yields.
struct WorkloadProgram {
  MethodId Main = kInvalidId;
  /// The pre-generated compilation plan (paper: pseudo-adaptive mode
  /// compiles exactly these methods).
  std::vector<std::string> CompilationPlan;
  /// Request-level entry points, set only by server workloads: Setup
  /// builds the tenant's session state once, and each RequestHandler is a
  /// no-argument method the fleet's traffic driver invokes per request.
  /// Batch workloads leave these empty and are driven through Main (which
  /// server workloads also provide -- a fixed request schedule -- so every
  /// workload still runs under the plain Experiment harness).
  MethodId Setup = kInvalidId;
  std::vector<MethodId> RequestHandlers;
};

/// Registry entry for one benchmark.
struct WorkloadSpec {
  std::string Name;
  std::string Suite;       ///< "SPECjvm98", "DaCapo", "SPEC JBB2000".
  std::string Description; ///< One line, shown in Table 1.
  /// Estimated minimum heap at 100% scale (the "1x" of the heap sweeps).
  uint32_t MinHeapBytes;
  WorkloadProgram (*Build)(VirtualMachine &Vm, const WorkloadParams &P);
};

/// All benchmarks, in the paper's Table 1 order.
const std::vector<WorkloadSpec> &allWorkloads();

/// Request-serving workloads for the multi-tenant fleet harness. Kept out
/// of allWorkloads() so the paper's Table 1 grid (and everything keyed to
/// its 16 entries) is unchanged; findWorkload() searches both registries.
const std::vector<WorkloadSpec> &serverWorkloads();

/// \returns the spec named \p Name (batch or server), or nullptr.
const WorkloadSpec *findWorkload(const std::string &Name);

/// Minimum heap for \p Spec at the given scale (live set scales with the
/// data sizes; a floor keeps tiny scales functional).
uint32_t scaledMinHeap(const WorkloadSpec &Spec, const WorkloadParams &P);

} // namespace hpmvm

#endif // HPMVM_WORKLOADS_WORKLOAD_H
