//===-- workloads/KernelsTable.cpp - RecordTable kernel + helpers ---------===//
//
// The db-style kernel: a table of Record objects each holding a small
// char[] payload, scanned in shuffled index order. Without co-allocation a
// Record (32 B, size class 32) and its payload (~40-64 B, other classes)
// are promoted into different free-list blocks, so each record visit costs
// two cache misses; co-allocating them into one cell recovers spatial
// locality. The paper's _209_db behaves exactly this way around
// String::value.
//
//===----------------------------------------------------------------------===//

#include "workloads/PatternKernels.h"

#include "vm/BytecodeBuilder.h"
#include "vm/VirtualMachine.h"

#include <cassert>

using namespace hpmvm;

uint32_t hpmvm::scaled(uint32_t N, const WorkloadParams &P) {
  uint64_t S = static_cast<uint64_t>(N) * P.ScalePercent / 100;
  return S ? static_cast<uint32_t>(S) : 1;
}

WorkloadProgram
hpmvm::combinePrograms(VirtualMachine &Vm, const std::string &Name,
                       std::initializer_list<WorkloadProgram> Parts) {
  WorkloadProgram Result;
  BytecodeBuilder B(Name + ".main");
  for (const WorkloadProgram &Part : Parts) {
    assert(Part.Main != kInvalidId && "combining an unbuilt program");
    B.call(Part.Main);
    for (const std::string &Hot : Part.CompilationPlan)
      Result.CompilationPlan.push_back(Hot);
  }
  B.ret();
  Result.Main = Vm.addMethod(B.build());
  Result.CompilationPlan.push_back(Name + ".main");
  return Result;
}

WorkloadProgram hpmvm::buildRecordTable(VirtualMachine &Vm,
                                        const RecordTableParams &P) {
  assert(P.MinChars >= 1 && P.MaxChars >= P.MinChars && P.NumRecords >= 2 &&
         "degenerate record-table parameters");
  ClassRegistry &C = Vm.classes();
  const std::string &Px = P.Prefix;

  ClassId Rec = C.defineClass(Px + "Record", {{"value", true},
                                              {"len", false},
                                              {"hash", false},
                                              {"pad", false}});
  ClassId Chars = C.defineArrayClass(Px + "char[]", ElemKind::I16);
  ClassId RecArr = C.defineArrayClass(Px + "Record[]", ElemKind::Ref);
  ClassId IntArr = C.defineArrayClass(Px + "int[]", ElemKind::I32);
  FieldId FValue = C.fieldId(Rec, "value");
  FieldId FLen = C.fieldId(Rec, "len");
  FieldId FHash = C.fieldId(Rec, "hash");

  uint32_t GTable = Vm.addGlobal(ValKind::Ref);
  uint32_t GIndex = Vm.addGlobal(ValKind::Ref);

  // --- makeRecord(len) -> Record -----------------------------------------
  MethodId MkRec;
  {
    BytecodeBuilder B(Px + ".makeRecord");
    uint32_t L = B.addParam(ValKind::Int);
    uint32_t R = B.newLocal(), A = B.newLocal(), I = B.newLocal();
    B.returns(RetKind::Ref);
    B.newObj(Rec).astore(R);
    B.iload(L).newArray(Chars).astore(A);
    Label Head = B.label(), Done = B.label();
    B.iconst(0).istore(I);
    B.bind(Head).iload(I).iload(L).ifICmp(CondKind::Ge, Done);
    B.aload(A).iload(I).iconst(26).rand().iconst(65).iadd().astoreI();
    B.iinc(I, 1).jump(Head);
    B.bind(Done);
    B.aload(R).aload(A).putfield(FValue);
    B.aload(R).iload(L).putfield(FLen);
    B.aload(R).iconst(1000000).rand().putfield(FHash);
    B.aload(R).aret();
    MkRec = Vm.addMethod(B.build());
  }

  // --- buildTable(n): fills gTable and a shuffled gIndex ------------------
  MethodId Build;
  {
    BytecodeBuilder B(Px + ".buildTable");
    uint32_t N = B.addParam(ValKind::Int);
    uint32_t T = B.newLocal(), X = B.newLocal(), I = B.newLocal(),
             J = B.newLocal(), Tmp = B.newLocal();
    B.returns(RetKind::Void);

    // Publish the fresh table immediately so the previous iteration's
    // table becomes garbage before this one fills (live-set peak stays at
    // one table, as in the originals which drop old state first).
    B.iload(N).newArray(RecArr).astore(T);
    B.aload(T).gput(GTable);
    Label H1 = B.label(), D1 = B.label();
    B.iconst(0).istore(I);
    B.bind(H1).iload(I).iload(N).ifICmp(CondKind::Ge, D1);
    B.aload(T).iload(I);
    B.iconst(static_cast<int32_t>(P.MaxChars - P.MinChars + 1))
        .rand()
        .iconst(static_cast<int32_t>(P.MinChars))
        .iadd();
    B.call(MkRec).astoreR();
    B.iinc(I, 1).jump(H1);
    B.bind(D1);

    B.iload(N).newArray(IntArr).astore(X);
    B.aload(X).gput(GIndex);
    Label H2 = B.label(), D2 = B.label();
    B.iconst(0).istore(I);
    B.bind(H2).iload(I).iload(N).ifICmp(CondKind::Ge, D2);
    B.aload(X).iload(I).iload(I).astoreI();
    B.iinc(I, 1).jump(H2);
    B.bind(D2);

    // Fisher-Yates shuffle so scans visit records in allocation-unrelated
    // order (the property that defeats plain bump-order locality).
    Label H3 = B.label(), D3 = B.label();
    B.iload(N).iconst(1).isub().istore(I);
    B.bind(H3).iload(I).iconst(1).ifICmp(CondKind::Lt, D3);
    B.iload(I).iconst(1).iadd().rand().istore(J);
    B.aload(X).iload(I).aloadI().istore(Tmp);
    B.aload(X).iload(I).aload(X).iload(J).aloadI().astoreI();
    B.aload(X).iload(J).iload(Tmp).astoreI();
    B.iinc(I, -1).jump(H3);
    B.bind(D3);
    B.ret();
    Build = Vm.addMethod(B.build());
  }

  // --- scanPass(n) -> acc --------------------------------------------------
  MethodId Scan;
  {
    BytecodeBuilder B(Px + ".scanPass");
    uint32_t N = B.addParam(ValKind::Int);
    uint32_t Acc = B.newLocal(), T = B.newLocal(), X = B.newLocal(),
             I = B.newLocal(), R = B.newLocal(), V = B.newLocal(),
             L = B.newLocal(), K = B.newLocal();
    B.returns(RetKind::Int);
    B.gget(GTable).astore(T).gget(GIndex).astore(X);
    B.iconst(0).istore(Acc);
    Label Head = B.label(), Done = B.label();
    B.iconst(0).istore(I);
    B.bind(Head).iload(I).iload(N).ifICmp(CondKind::Ge, Done);
    // r = table[index[i]]
    B.aload(T).aload(X).iload(I).aloadI().aloadR().astore(R);
    B.aload(R).getfield(FHash).iload(Acc).iadd().istore(Acc);
    B.aload(R).getfield(FValue).astore(V);
    B.aload(R).getfield(FLen).istore(L);
    // l = min(l, TouchChars)
    Label ClampOk = B.label();
    B.iload(L).iconst(static_cast<int32_t>(P.TouchChars))
        .ifICmp(CondKind::Le, ClampOk);
    B.iconst(static_cast<int32_t>(P.TouchChars)).istore(L);
    B.bind(ClampOk);
    Label KHead = B.label(), KDone = B.label();
    B.iconst(0).istore(K);
    B.bind(KHead).iload(K).iload(L).ifICmp(CondKind::Ge, KDone);
    B.aload(V).iload(K).aloadI().iload(Acc).iadd().istore(Acc);
    B.iinc(K, 1).jump(KHead);
    B.bind(KDone);
    if (P.GarbageEvery) {
      // Short-lived comparison temporaries (as db's String operations
      // produce); this is what keeps the nursery turning over.
      Label SkipG = B.label();
      B.iload(I).iconst(static_cast<int32_t>(P.GarbageEvery)).irem()
          .ifZ(CondKind::Ne, SkipG);
      B.iconst(static_cast<int32_t>(P.GarbageChars)).newArray(Chars)
          .popv();
      B.bind(SkipG);
    }
    B.iinc(I, 1).jump(Head);
    B.bind(Done).iload(Acc).iret();
    Scan = Vm.addMethod(B.build());
  }

  // --- sortPass(n): one bubble pass over the index, comparing first chars -
  MethodId Sort;
  {
    BytecodeBuilder B(Px + ".sortPass");
    uint32_t N = B.addParam(ValKind::Int);
    uint32_t T = B.newLocal(), X = B.newLocal(), I = B.newLocal(),
             R1 = B.newLocal(), R2 = B.newLocal(), C1 = B.newLocal(),
             C2 = B.newLocal(), Tmp = B.newLocal(), Nm1 = B.newLocal();
    B.returns(RetKind::Void);
    B.gget(GTable).astore(T).gget(GIndex).astore(X);
    B.iload(N).iconst(1).isub().istore(Nm1);
    Label Head = B.label(), Done = B.label(), NoSwap = B.label();
    B.iconst(0).istore(I);
    B.bind(Head).iload(I).iload(Nm1).ifICmp(CondKind::Ge, Done);
    B.aload(T).aload(X).iload(I).aloadI().aloadR().astore(R1);
    B.aload(T).aload(X).iload(I).iconst(1).iadd().aloadI().aloadR()
        .astore(R2);
    B.aload(R1).getfield(FValue).iconst(0).aloadI().istore(C1);
    B.aload(R2).getfield(FValue).iconst(0).aloadI().istore(C2);
    B.iload(C1).iload(C2).ifICmp(CondKind::Le, NoSwap);
    B.aload(X).iload(I).aloadI().istore(Tmp);
    B.aload(X).iload(I).aload(X).iload(I).iconst(1).iadd().aloadI()
        .astoreI();
    B.aload(X).iload(I).iconst(1).iadd().iload(Tmp).astoreI();
    B.bind(NoSwap).iinc(I, 1).jump(Head);
    B.bind(Done).ret();
    Sort = Vm.addMethod(B.build());
  }

  // --- main ----------------------------------------------------------------
  WorkloadProgram Prog;
  {
    BytecodeBuilder B(Px + ".run");
    uint32_t It = B.newLocal(), Ps = B.newLocal();
    B.returns(RetKind::Void);
    Label IHead = B.label(), IDone = B.label();
    B.iconst(0).istore(It);
    B.bind(IHead).iload(It).iconst(static_cast<int32_t>(P.Iterations))
        .ifICmp(CondKind::Ge, IDone);
    B.iconst(static_cast<int32_t>(P.NumRecords)).call(Build);
    Label PHead = B.label(), PDone = B.label();
    B.iconst(0).istore(Ps);
    B.bind(PHead).iload(Ps).iconst(static_cast<int32_t>(P.ScanPasses))
        .ifICmp(CondKind::Ge, PDone);
    B.iconst(static_cast<int32_t>(P.NumRecords)).call(Scan).popv();
    B.iinc(Ps, 1).jump(PHead);
    B.bind(PDone);
    Label SHead = B.label(), SDone = B.label();
    B.iconst(0).istore(Ps);
    B.bind(SHead).iload(Ps).iconst(static_cast<int32_t>(P.SortPasses))
        .ifICmp(CondKind::Ge, SDone);
    B.iconst(static_cast<int32_t>(P.NumRecords)).call(Sort);
    B.iinc(Ps, 1).jump(SHead);
    B.bind(SDone).iinc(It, 1).jump(IHead);
    B.bind(IDone).ret();
    Prog.Main = Vm.addMethod(B.build());
  }

  Prog.CompilationPlan = {Px + ".makeRecord", Px + ".buildTable",
                          Px + ".scanPass", Px + ".sortPass", Px + ".run"};
  return Prog;
}
