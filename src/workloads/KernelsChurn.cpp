//===-- workloads/KernelsChurn.cpp - Warehouse & Parser kernels -----------===//
//
// Warehouse (pseudojbb): transactions allocate Order objects holding
// 20-element long[] item arrays (160-byte bodies -- larger than one
// 128-byte cache line). A sliding window keeps recent orders live, so the
// GC promotes and co-allocates millions of pairs over a run, but because
// the child spans multiple lines anyway the cache-line benefit is small:
// the paper measures only 2-6% miss reduction for jbb despite 2.4 million
// co-allocated objects.
//
// Parser (javac/antlr/jack/jython/fop): waves of short-lived token objects
// (high nursery churn, low survival -> few promotions, so monitoring
// overhead dominates any gain), plus a persistent symbol table and an AST
// walked through child pointers.
//
//===----------------------------------------------------------------------===//

#include "workloads/PatternKernels.h"

#include "vm/BytecodeBuilder.h"
#include "vm/VirtualMachine.h"

#include <cassert>

using namespace hpmvm;

WorkloadProgram hpmvm::buildWarehouse(VirtualMachine &Vm,
                                      const WarehouseParams &P) {
  assert(P.WindowSize >= 16 && P.ItemsPerOrder >= 2 &&
         "degenerate warehouse parameters");
  ClassRegistry &C = Vm.classes();
  const std::string &Px = P.Prefix;

  ClassId Order = C.defineClass(Px + "Order", {{"items", true},
                                               {"customer", true},
                                               {"total", false},
                                               {"status", false}});
  ClassId Cust = C.defineClass(Px + "Customer", {{"name", true},
                                                 {"id", false}});
  ClassId LongArr = C.defineArrayClass(Px + "long[]", ElemKind::I64);
  ClassId Chars = C.defineArrayClass(Px + "char[]", ElemKind::I16);
  ClassId OrderArr = C.defineArrayClass(Px + "Order[]", ElemKind::Ref);
  FieldId FItems = C.fieldId(Order, "items");
  FieldId FCustomer = C.fieldId(Order, "customer");
  FieldId FTotal = C.fieldId(Order, "total");
  FieldId FName = C.fieldId(Cust, "name");
  uint32_t GRing = Vm.addGlobal(ValKind::Ref);

  const int32_t Items = static_cast<int32_t>(P.ItemsPerOrder);
  const int32_t Window = static_cast<int32_t>(P.WindowSize);

  // --- setup(): the live window --------------------------------------------
  MethodId Setup;
  {
    BytecodeBuilder B(Px + ".setup");
    B.returns(RetKind::Void);
    B.iconst(Window).newArray(OrderArr).gput(GRing);
    B.ret();
    Setup = Vm.addMethod(B.build());
  }

  // --- newOrder(slot): one transaction's allocations -----------------------
  MethodId NewOrder;
  {
    BytecodeBuilder B(Px + ".newOrder");
    uint32_t Slot = B.addParam(ValKind::Int);
    uint32_t O = B.newLocal(), A = B.newLocal(), Cu = B.newLocal(),
             Nm = B.newLocal(), I = B.newLocal();
    B.returns(RetKind::Void);
    B.newObj(Order).astore(O);
    B.iconst(Items).newArray(LongArr).astore(A);
    Label FHead = B.label(), FDone = B.label();
    B.iconst(0).istore(I);
    B.bind(FHead).iload(I).iconst(Items).ifICmp(CondKind::Ge, FDone);
    B.aload(A).iload(I).iconst(10000).rand().astoreI();
    B.iinc(I, 1).jump(FHead);
    B.bind(FDone);
    B.newObj(Cust).astore(Cu);
    B.iconst(static_cast<int32_t>(P.NameChars)).newArray(Chars).astore(Nm);
    B.aload(Nm).iconst(0).iconst(26).rand().iconst(65).iadd().astoreI();
    B.aload(Cu).aload(Nm).putfield(FName);
    B.aload(Cu).iconst(1 << 20).rand().putfield(C.fieldId(Cust, "id"));
    B.aload(O).aload(A).putfield(FItems);
    B.aload(O).aload(Cu).putfield(FCustomer);
    B.aload(O).iconst(100000).rand().putfield(FTotal);
    B.gget(GRing).iload(Slot).aload(O).astoreR();
    B.ret();
    NewOrder = Vm.addMethod(B.build());
  }

  // --- scanOrders(k) -> acc: payment/stock-level pass ----------------------
  MethodId Scan;
  {
    BytecodeBuilder B(Px + ".scanOrders");
    uint32_t K = B.addParam(ValKind::Int);
    uint32_t R = B.newLocal(), O = B.newLocal(), A = B.newLocal(),
             Cu = B.newLocal(), Acc = B.newLocal(), I = B.newLocal();
    B.returns(RetKind::Int);
    B.gget(GRing).astore(R);
    B.iconst(0).istore(Acc);
    Label Head = B.label(), Done = B.label(), Skip = B.label();
    B.iconst(0).istore(I);
    B.bind(Head).iload(I).iload(K).ifICmp(CondKind::Ge, Done);
    B.aload(R).iconst(Window).rand().aloadR().astore(O);
    B.aload(O).ifNull(Skip);
    B.aload(O).getfield(FTotal).iload(Acc).iadd().istore(Acc);
    B.aload(O).getfield(FItems).astore(A);
    // Touch items spread across the (multi-line) array.
    B.aload(A).iconst(0).aloadI().iload(Acc).iadd().istore(Acc);
    B.aload(A).iconst(Items / 2).aloadI().iload(Acc).iadd().istore(Acc);
    B.aload(A).iconst(Items - 1).aloadI().iload(Acc).iadd().istore(Acc);
    B.aload(O).getfield(FCustomer).astore(Cu);
    B.aload(Cu).getfield(FName).iconst(0).aloadI().iload(Acc).iadd()
        .istore(Acc);
    B.bind(Skip).iinc(I, 1).jump(Head);
    B.bind(Done).iload(Acc).iret();
    Scan = Vm.addMethod(B.build());
  }

  // --- main ----------------------------------------------------------------
  WorkloadProgram Prog;
  {
    BytecodeBuilder B(Px + ".run");
    uint32_t T = B.newLocal();
    B.returns(RetKind::Void);
    B.call(Setup);
    Label Head = B.label(), Done = B.label(), NoScan = B.label();
    B.iconst(0).istore(T);
    B.bind(Head).iload(T).iconst(static_cast<int32_t>(P.Transactions))
        .ifICmp(CondKind::Ge, Done);
    B.iload(T).iconst(Window).irem().call(NewOrder);
    B.iload(T).iconst(static_cast<int32_t>(P.ScanEvery)).irem()
        .ifZ(CondKind::Ne, NoScan);
    B.iconst(static_cast<int32_t>(P.ScanOrders)).call(Scan).popv();
    B.bind(NoScan).iinc(T, 1).jump(Head);
    B.bind(Done).ret();
    Prog.Main = Vm.addMethod(B.build());
  }

  Prog.CompilationPlan = {Px + ".setup", Px + ".newOrder",
                          Px + ".scanOrders", Px + ".run"};
  return Prog;
}

WorkloadProgram hpmvm::buildParser(VirtualMachine &Vm,
                                   const ParserParams &P) {
  assert(P.RingSize >= 2 && P.SymbolRows >= 16 &&
         "degenerate parser parameters");
  ClassRegistry &C = Vm.classes();
  const std::string &Px = P.Prefix;

  ClassId Tok = C.defineClass(Px + "Token", {{"text", true},
                                             {"kind", false}});
  ClassId Ast = C.defineClass(Px + "AstNode", {{"c0", true},
                                               {"c1", true},
                                               {"c2", true},
                                               {"kind", false}});
  ClassId Sym = C.defineClass(Px + "Symbol", {{"name", true},
                                              {"val", false}});
  ClassId Chars = C.defineArrayClass(Px + "char[]", ElemKind::I16);
  ClassId TokArr = C.defineArrayClass(Px + "Token[]", ElemKind::Ref);
  ClassId AstArr = C.defineArrayClass(Px + "AstNode[]", ElemKind::Ref);
  ClassId SymArr = C.defineArrayClass(Px + "Symbol[]", ElemKind::Ref);
  FieldId FText = C.fieldId(Tok, "text");
  FieldId FC0 = C.fieldId(Ast, "c0");
  FieldId FC1 = C.fieldId(Ast, "c1");
  FieldId FC2 = C.fieldId(Ast, "c2");
  FieldId FAstKind = C.fieldId(Ast, "kind");
  FieldId FSymName = C.fieldId(Sym, "name");
  uint32_t GRing = Vm.addGlobal(ValKind::Ref);
  uint32_t GAst = Vm.addGlobal(ValKind::Ref);
  uint32_t GSym = Vm.addGlobal(ValKind::Ref);

  const int32_t Ring = static_cast<int32_t>(P.RingSize);
  const int32_t Nodes = static_cast<int32_t>(P.AstNodes);
  const int32_t Rows = static_cast<int32_t>(P.SymbolRows);

  // --- symBuild(): the persistent symbol table -----------------------------
  MethodId SymBuild;
  {
    BytecodeBuilder B(Px + ".symBuild");
    uint32_t T = B.newLocal(), I = B.newLocal(), S = B.newLocal(),
             Nm = B.newLocal();
    B.returns(RetKind::Void);
    B.iconst(Rows).newArray(SymArr).astore(T);
    Label Head = B.label(), Done = B.label();
    B.iconst(0).istore(I);
    B.bind(Head).iload(I).iconst(Rows).ifICmp(CondKind::Ge, Done);
    B.newObj(Sym).astore(S);
    B.iconst(8).newArray(Chars).astore(Nm);
    B.aload(Nm).iconst(0).iconst(26).rand().iconst(97).iadd().astoreI();
    B.aload(S).aload(Nm).putfield(FSymName);
    B.aload(S).iload(I).putfield(C.fieldId(Sym, "val"));
    B.aload(T).iload(I).aload(S).astoreR();
    B.iinc(I, 1).jump(Head);
    B.bind(Done).aload(T).gput(GSym);
    B.ret();
    SymBuild = Vm.addMethod(B.build());
  }

  // --- astBuild(): persistent tree-ish graph over an index array -----------
  MethodId AstBuild;
  {
    BytecodeBuilder B(Px + ".astBuild");
    uint32_t T = B.newLocal(), I = B.newLocal(), Nd = B.newLocal();
    B.returns(RetKind::Void);
    B.iconst(Nodes).newArray(AstArr).astore(T);
    Label H1 = B.label(), D1 = B.label();
    B.iconst(0).istore(I);
    B.bind(H1).iload(I).iconst(Nodes).ifICmp(CondKind::Ge, D1);
    B.newObj(Ast).astore(Nd);
    B.aload(Nd).iconst(256).rand().putfield(FAstKind);
    B.aload(T).iload(I).aload(Nd).astoreR();
    B.iinc(I, 1).jump(H1);
    B.bind(D1);
    // Link node[i]'s children to earlier nodes (acyclic by construction).
    Label H2 = B.label(), D2 = B.label();
    B.iconst(1).istore(I);
    B.bind(H2).iload(I).iconst(Nodes).ifICmp(CondKind::Ge, D2);
    B.aload(T).iload(I).aloadR().astore(Nd);
    B.aload(Nd).aload(T).iload(I).rand().aloadR().putfield(FC0);
    B.aload(Nd).aload(T).iload(I).rand().aloadR().putfield(FC1);
    B.aload(Nd).aload(T).iload(I).rand().aloadR().putfield(FC2);
    B.iinc(I, 1).jump(H2);
    B.bind(D2).aload(T).gput(GAst);
    B.ret();
    AstBuild = Vm.addMethod(B.build());
  }

  // --- lexWave(n) -> acc: token churn + symbol probes ----------------------
  MethodId LexWave;
  {
    BytecodeBuilder B(Px + ".lexWave");
    uint32_t N = B.addParam(ValKind::Int);
    uint32_t R = B.newLocal(), S = B.newLocal(), I = B.newLocal(),
             Tk = B.newLocal(), Tx = B.newLocal(), Acc = B.newLocal(),
             Sm = B.newLocal();
    B.returns(RetKind::Int);
    B.gget(GRing).astore(R).gget(GSym).astore(S);
    B.iconst(0).istore(Acc);
    Label Head = B.label(), Done = B.label(), NoProbe = B.label();
    B.iconst(0).istore(I);
    B.bind(Head).iload(I).iload(N).ifICmp(CondKind::Ge, Done);
    B.newObj(Tok).astore(Tk);
    B.iconst(static_cast<int32_t>(P.TokenChars)).newArray(Chars)
        .astore(Tx);
    B.aload(Tx).iconst(0).iconst(26).rand().iconst(97).iadd().astoreI();
    B.aload(Tk).aload(Tx).putfield(FText);
    B.aload(Tk).iconst(64).rand().putfield(C.fieldId(Tok, "kind"));
    B.aload(R).iload(I).iconst(Ring).irem().aload(Tk).astoreR();
    // Every 5th token resolves an identifier against the symbol table.
    B.iload(I).iconst(5).irem().ifZ(CondKind::Ne, NoProbe);
    B.aload(S).iconst(Rows).rand().aloadR().astore(Sm);
    B.aload(Sm).getfield(FSymName).iconst(0).aloadI().iload(Acc).iadd()
        .istore(Acc);
    B.bind(NoProbe).iinc(I, 1).jump(Head);
    B.bind(Done).iload(Acc).iret();
    LexWave = Vm.addMethod(B.build());
  }

  // --- astWalk(steps) -> acc: child-pointer descents ------------------------
  MethodId AstWalk;
  {
    BytecodeBuilder B(Px + ".astWalk");
    uint32_t Steps = B.addParam(ValKind::Int);
    uint32_t T = B.newLocal(), Cur = B.newLocal(), Ch = B.newLocal(),
             Acc = B.newLocal(), I = B.newLocal(), D = B.newLocal();
    B.returns(RetKind::Int);
    B.gget(GAst).astore(T);
    B.aload(T).iconst(Nodes).rand().aloadR().astore(Cur);
    B.iconst(0).istore(Acc);
    Label Head = B.label(), Done = B.label(), Pick1 = B.label(),
          Pick2 = B.label(), Picked = B.label(), Reseed = B.label();
    B.iconst(0).istore(I);
    B.bind(Head).iload(I).iload(Steps).ifICmp(CondKind::Ge, Done);
    B.iconst(3).rand().istore(D);
    B.iload(D).iconst(0).ifICmp(CondKind::Ne, Pick1);
    B.aload(Cur).getfield(FC0).astore(Ch);
    B.jump(Picked);
    B.bind(Pick1).iload(D).iconst(1).ifICmp(CondKind::Ne, Pick2);
    B.aload(Cur).getfield(FC1).astore(Ch);
    B.jump(Picked);
    B.bind(Pick2).aload(Cur).getfield(FC2).astore(Ch);
    B.bind(Picked);
    B.aload(Ch).ifNull(Reseed);
    B.aload(Ch).astore(Cur);
    B.aload(Cur).getfield(FAstKind).iload(Acc).iadd().istore(Acc);
    B.iinc(I, 1).jump(Head);
    B.bind(Reseed);
    B.aload(T).iconst(Nodes).rand().aloadR().astore(Cur);
    B.iinc(I, 1).jump(Head);
    B.bind(Done).iload(Acc).iret();
    AstWalk = Vm.addMethod(B.build());
  }

  // --- main ----------------------------------------------------------------
  WorkloadProgram Prog;
  {
    BytecodeBuilder B(Px + ".run");
    uint32_t W = B.newLocal();
    B.returns(RetKind::Void);
    B.call(SymBuild);
    B.call(AstBuild);
    B.iconst(Ring).newArray(TokArr).gput(GRing);
    // Interleave lexing (churn) with AST walks (locality pressure), as a
    // compiler interleaves parsing with semantic passes.
    uint32_t WalksPerWave = P.TokenWaves ? P.AstWalks / P.TokenWaves : 0;
    uint32_t K = B.newLocal();
    Label WHead = B.label(), WDone = B.label();
    B.iconst(0).istore(W);
    B.bind(WHead).iload(W).iconst(static_cast<int32_t>(P.TokenWaves))
        .ifICmp(CondKind::Ge, WDone);
    B.iconst(static_cast<int32_t>(P.TokensPerWave)).call(LexWave).popv();
    Label AHead = B.label(), ADone = B.label();
    B.iconst(0).istore(K);
    B.bind(AHead).iload(K).iconst(static_cast<int32_t>(WalksPerWave))
        .ifICmp(CondKind::Ge, ADone);
    B.iconst(static_cast<int32_t>(P.WalkSteps)).call(AstWalk).popv();
    B.iinc(K, 1).jump(AHead);
    B.bind(ADone);
    B.iinc(W, 1).jump(WHead);
    B.bind(WDone).ret();
    Prog.Main = Vm.addMethod(B.build());
  }

  Prog.CompilationPlan = {Px + ".symBuild", Px + ".astBuild",
                          Px + ".lexWave", Px + ".astWalk", Px + ".run"};
  return Prog;
}
