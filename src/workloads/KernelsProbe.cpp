//===-- workloads/KernelsProbe.cpp - HashProbe & Postings kernels ---------===//
//
// HashProbe: hsqldb-style bucket chains. Every probe dereferences
// Bucket::key (a char[] compare), Bucket::row, Row::data and chases
// Bucket::next -- four reference fields competing for hotness, with
// key/next dominating. Thousands of buckets survive, so co-allocation has
// a big population to act on (hsqldb is among the largest co-allocators in
// the paper's Figure 3).
//
// Postings: luindex/lusearch-style per-term linked posting lists. The only
// hot field is Posting::next, so co-allocation linearizes list prefixes --
// each node lands in the same cell as its predecessor.
//
//===----------------------------------------------------------------------===//

#include "workloads/PatternKernels.h"

#include "vm/BytecodeBuilder.h"
#include "vm/VirtualMachine.h"

#include <cassert>

using namespace hpmvm;

WorkloadProgram hpmvm::buildHashProbe(VirtualMachine &Vm,
                                      const HashProbeParams &P) {
  assert(P.TableSize >= 16 && P.NumRows >= P.TableSize / 4 &&
         "degenerate hash-probe parameters");
  ClassRegistry &C = Vm.classes();
  const std::string &Px = P.Prefix;

  ClassId Bucket = C.defineClass(Px + "Bucket", {{"key", true},
                                                 {"next", true},
                                                 {"row", true},
                                                 {"hash", false}});
  ClassId Row = C.defineClass(Px + "Row", {{"data", true}, {"id", false}});
  ClassId Chars = C.defineArrayClass(Px + "char[]", ElemKind::I16);
  ClassId IntArr = C.defineArrayClass(Px + "int[]", ElemKind::I32);
  ClassId BucketArr = C.defineArrayClass(Px + "Bucket[]", ElemKind::Ref);
  FieldId FKey = C.fieldId(Bucket, "key");
  FieldId FNext = C.fieldId(Bucket, "next");
  FieldId FRow = C.fieldId(Bucket, "row");
  FieldId FData = C.fieldId(Row, "data");
  uint32_t GTable = Vm.addGlobal(ValKind::Ref);

  const int32_t TblSize = static_cast<int32_t>(P.TableSize);

  // --- build(): table of chained buckets -----------------------------------
  MethodId Build;
  {
    BytecodeBuilder B(Px + ".build");
    uint32_t T = B.newLocal(), I = B.newLocal(), Bk = B.newLocal(),
             K = B.newLocal(), H = B.newLocal(), R = B.newLocal(),
             J = B.newLocal();
    B.returns(RetKind::Void);
    // Publish immediately: the previous iteration's table dies before this
    // one fills (keeps the live-set peak at one table).
    B.iconst(TblSize).newArray(BucketArr).astore(T);
    B.aload(T).gput(GTable);
    Label Head = B.label(), Done = B.label();
    B.iconst(0).istore(I);
    B.bind(Head).iload(I).iconst(static_cast<int32_t>(P.NumRows))
        .ifICmp(CondKind::Ge, Done);
    // key = random char[KeyChars]
    B.iconst(static_cast<int32_t>(P.KeyChars)).newArray(Chars).astore(K);
    Label KHead = B.label(), KDone = B.label();
    B.iconst(0).istore(J);
    B.bind(KHead).iload(J).iconst(static_cast<int32_t>(P.KeyChars))
        .ifICmp(CondKind::Ge, KDone);
    B.aload(K).iload(J).iconst(26).rand().iconst(97).iadd().astoreI();
    B.iinc(J, 1).jump(KHead);
    B.bind(KDone);
    // row = new Row{data = int[RowInts], id = i}
    B.newObj(Row).astore(R);
    B.aload(R).iconst(static_cast<int32_t>(P.RowInts)).newArray(IntArr)
        .putfield(FData);
    B.aload(R).iload(I).putfield(C.fieldId(Row, "id"));
    // bucket = new Bucket; chain into slot h = rand(TblSize)
    B.iconst(TblSize).rand().istore(H);
    B.newObj(Bucket).astore(Bk);
    B.aload(Bk).aload(K).putfield(FKey);
    B.aload(Bk).aload(R).putfield(FRow);
    B.aload(Bk).iload(H).putfield(C.fieldId(Bucket, "hash"));
    B.aload(Bk).aload(T).iload(H).aloadR().putfield(FNext);
    B.aload(T).iload(H).aload(Bk).astoreR();
    B.iinc(I, 1).jump(Head);
    B.bind(Done);
    B.ret();
    Build = Vm.addMethod(B.build());
  }

  // --- probe(n) -> acc: random lookups walking chains ----------------------
  MethodId Probe;
  {
    BytecodeBuilder B(Px + ".probe");
    uint32_t N = B.addParam(ValKind::Int);
    uint32_t T = B.newLocal(), I = B.newLocal(), Bk = B.newLocal(),
             Acc = B.newLocal(), K = B.newLocal(), R = B.newLocal();
    B.returns(RetKind::Int);
    B.gget(GTable).astore(T);
    B.iconst(0).istore(Acc);
    Label Head = B.label(), Done = B.label();
    B.iconst(0).istore(I);
    B.bind(Head).iload(I).iload(N).ifICmp(CondKind::Ge, Done);
    B.aload(T).iconst(TblSize).rand().aloadR().astore(Bk);
    Label CHead = B.label(), CDone = B.label();
    B.bind(CHead).aload(Bk).ifNull(CDone);
    // Touch the key's first char (the compare), the row payload, then
    // follow the chain.
    B.aload(Bk).getfield(FKey).astore(K);
    B.aload(K).iconst(0).aloadI().iload(Acc).iadd().istore(Acc);
    B.aload(Bk).getfield(FRow).astore(R);
    B.aload(R).getfield(FData).iconst(0).aloadI().iload(Acc).iadd()
        .istore(Acc);
    B.aload(Bk).getfield(FNext).astore(Bk);
    B.jump(CHead);
    B.bind(CDone);
    if (P.GarbageEvery) {
      // Each lookup materializes a transient result (row copy + string),
      // as SQL layers do.
      Label SkipG = B.label();
      B.iload(I).iconst(static_cast<int32_t>(P.GarbageEvery)).irem()
          .ifZ(CondKind::Ne, SkipG);
      B.iconst(static_cast<int32_t>(2 * P.KeyChars)).newArray(Chars)
          .popv();
      B.iconst(static_cast<int32_t>(P.RowInts)).newArray(IntArr).popv();
      B.bind(SkipG);
    }
    B.iinc(I, 1).jump(Head);
    B.bind(Done).iload(Acc).iret();
    Probe = Vm.addMethod(B.build());
  }

  // --- main ----------------------------------------------------------------
  WorkloadProgram Prog;
  {
    BytecodeBuilder B(Px + ".run");
    uint32_t It = B.newLocal();
    B.returns(RetKind::Void);
    Label Head = B.label(), Done = B.label();
    B.iconst(0).istore(It);
    B.bind(Head).iload(It).iconst(static_cast<int32_t>(P.Iterations))
        .ifICmp(CondKind::Ge, Done);
    B.call(Build);
    B.iconst(static_cast<int32_t>(P.Probes)).call(Probe).popv();
    B.iinc(It, 1).jump(Head);
    B.bind(Done).ret();
    Prog.Main = Vm.addMethod(B.build());
  }

  Prog.CompilationPlan = {Px + ".build", Px + ".probe", Px + ".run"};
  return Prog;
}

WorkloadProgram hpmvm::buildPostings(VirtualMachine &Vm,
                                     const PostingsParams &P) {
  assert(P.NumTerms >= 16 && P.NumPostings >= P.NumTerms &&
         "degenerate postings parameters");
  ClassRegistry &C = Vm.classes();
  const std::string &Px = P.Prefix;

  ClassId Posting = C.defineClass(Px + "Posting", {{"next", true},
                                                   {"doc", false},
                                                   {"freq", false},
                                                   {"pad", false}});
  ClassId PostArr = C.defineArrayClass(Px + "Posting[]", ElemKind::Ref);
  ClassId Chars = C.defineArrayClass(Px + "char[]", ElemKind::I16);
  FieldId FNext = C.fieldId(Posting, "next");
  FieldId FDoc = C.fieldId(Posting, "doc");
  FieldId FFreq = C.fieldId(Posting, "freq");
  uint32_t GHeads = Vm.addGlobal(ValKind::Ref);

  const int32_t Terms = static_cast<int32_t>(P.NumTerms);

  // --- index(): build the per-term posting lists ---------------------------
  MethodId Index;
  {
    BytecodeBuilder B(Px + ".index");
    uint32_t H = B.newLocal(), I = B.newLocal(), Ps = B.newLocal(),
             T = B.newLocal();
    B.returns(RetKind::Void);
    // Publish immediately: the previous index dies before this one fills.
    B.iconst(Terms).newArray(PostArr).astore(H);
    B.aload(H).gput(GHeads);
    Label Head = B.label(), Done = B.label();
    B.iconst(0).istore(I);
    B.bind(Head).iload(I).iconst(static_cast<int32_t>(P.NumPostings))
        .ifICmp(CondKind::Ge, Done);
    B.iconst(Terms).rand().istore(T);
    B.newObj(Posting).astore(Ps);
    B.aload(Ps).iload(I).putfield(FDoc);
    B.aload(Ps).iconst(64).rand().putfield(FFreq);
    B.aload(Ps).aload(H).iload(T).aloadR().putfield(FNext);
    B.aload(H).iload(T).aload(Ps).astoreR();
    if (P.GarbageEvery) {
      // The tokenizer's transient term strings.
      Label SkipG = B.label();
      B.iload(I).iconst(static_cast<int32_t>(P.GarbageEvery)).irem()
          .ifZ(CondKind::Ne, SkipG);
      B.iconst(16).newArray(Chars).popv();
      B.bind(SkipG);
    }
    B.iinc(I, 1).jump(Head);
    B.bind(Done);
    B.ret();
    Index = Vm.addMethod(B.build());
  }

  // --- search(n) -> acc: walk random terms' lists --------------------------
  MethodId Search;
  {
    BytecodeBuilder B(Px + ".search");
    uint32_t N = B.addParam(ValKind::Int);
    uint32_t H = B.newLocal(), I = B.newLocal(), Ps = B.newLocal(),
             Acc = B.newLocal(), Steps = B.newLocal();
    B.returns(RetKind::Int);
    B.gget(GHeads).astore(H);
    B.iconst(0).istore(Acc);
    Label Head = B.label(), Done = B.label();
    B.iconst(0).istore(I);
    B.bind(Head).iload(I).iload(N).ifICmp(CondKind::Ge, Done);
    B.aload(H).iconst(Terms).rand().aloadR().astore(Ps);
    B.iconst(0).istore(Steps);
    Label CHead = B.label(), CDone = B.label();
    B.bind(CHead).aload(Ps).ifNull(CDone);
    B.iload(Steps).iconst(static_cast<int32_t>(P.MaxChain))
        .ifICmp(CondKind::Ge, CDone);
    B.aload(Ps).getfield(FDoc).iload(Acc).iadd().istore(Acc);
    B.aload(Ps).getfield(FFreq).iload(Acc).iadd().istore(Acc);
    B.aload(Ps).getfield(FNext).astore(Ps);
    B.iinc(Steps, 1).jump(CHead);
    B.bind(CDone);
    if (P.GarbageEvery) {
      // Transient query/token strings.
      Label SkipG = B.label();
      B.iload(I).iconst(static_cast<int32_t>(P.GarbageEvery)).irem()
          .ifZ(CondKind::Ne, SkipG);
      B.iconst(32).newArray(Chars).popv();
      B.bind(SkipG);
    }
    B.iinc(I, 1).jump(Head);
    B.bind(Done).iload(Acc).iret();
    Search = Vm.addMethod(B.build());
  }

  // --- main ----------------------------------------------------------------
  WorkloadProgram Prog;
  {
    BytecodeBuilder B(Px + ".run");
    uint32_t It = B.newLocal();
    B.returns(RetKind::Void);
    Label Head = B.label(), Done = B.label();
    B.iconst(0).istore(It);
    B.bind(Head).iload(It).iconst(static_cast<int32_t>(P.Iterations))
        .ifICmp(CondKind::Ge, Done);
    B.call(Index);
    B.iconst(static_cast<int32_t>(P.Queries)).call(Search).popv();
    B.iinc(It, 1).jump(Head);
    B.bind(Done).ret();
    Prog.Main = Vm.addMethod(B.build());
  }

  Prog.CompilationPlan = {Px + ".index", Px + ".search", Px + ".run"};
  return Prog;
}
