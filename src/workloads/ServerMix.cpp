//===-- workloads/ServerMix.cpp - Request-serving tenant workload ---------===//
//
// The fleet harness's tenant program: a db-style session store served by
// request handlers instead of one batch main. Session state is a table of
// Record objects with small char[] payloads (the paper's headline
// co-allocation shape), and three handlers model a service's request mix:
//
//   lookup   read-mostly point queries over shuffled indices -- the
//            L1-miss-heavy path co-allocation helps;
//   insert   replaces random records with fresh ones -- nursery churn and
//            promotion pressure that keeps the GC (and placement
//            decisions) active;
//   report   a short sort-and-scan pass -- mixed access, the "analytics"
//            tail of the mix.
//
// Handlers take no arguments and read everything from globals, so the
// fleet's traffic driver can invoke them directly. Main runs setup plus a
// fixed round-robin request schedule, so the workload also runs (and is
// testable) under the plain one-VM Experiment harness.
//
//===----------------------------------------------------------------------===//

#include "workloads/PatternKernels.h"

#include "vm/BytecodeBuilder.h"
#include "vm/VirtualMachine.h"

using namespace hpmvm;

namespace hpmvm::workloads {
WorkloadProgram buildServerMix(VirtualMachine &, const WorkloadParams &);
} // namespace hpmvm::workloads

WorkloadProgram hpmvm::workloads::buildServerMix(VirtualMachine &Vm,
                                                 const WorkloadParams &P) {
  const uint32_t NumRecords = scaled(6000, P);
  const uint32_t MinChars = 8, MaxChars = 24, TouchChars = 8;
  const uint32_t LookupProbes = scaled(400, P);
  const uint32_t InsertCount = scaled(120, P);
  const uint32_t ReportWindow = scaled(200, P);
  const uint32_t GarbageChars = 24;
  /// Fixed batch schedule for Main: rounds of lookup,lookup,insert,report.
  const uint32_t MainRounds = 8;

  ClassRegistry &C = Vm.classes();
  const std::string Px = "srv";

  ClassId Rec = C.defineClass(Px + "Record", {{"value", true},
                                              {"len", false},
                                              {"hash", false},
                                              {"pad", false}});
  ClassId Chars = C.defineArrayClass(Px + "char[]", ElemKind::I16);
  ClassId RecArr = C.defineArrayClass(Px + "Record[]", ElemKind::Ref);
  FieldId FValue = C.fieldId(Rec, "value");
  FieldId FLen = C.fieldId(Rec, "len");
  FieldId FHash = C.fieldId(Rec, "hash");

  uint32_t GTable = Vm.addGlobal(ValKind::Ref);
  uint32_t GSize = Vm.addGlobal(ValKind::Int);

  // --- makeRecord(len) -> Record -----------------------------------------
  MethodId MkRec;
  {
    BytecodeBuilder B(Px + ".makeRecord");
    uint32_t L = B.addParam(ValKind::Int);
    uint32_t R = B.newLocal(), A = B.newLocal(), I = B.newLocal();
    B.returns(RetKind::Ref);
    B.newObj(Rec).astore(R);
    B.iload(L).newArray(Chars).astore(A);
    Label Head = B.label(), Done = B.label();
    B.iconst(0).istore(I);
    B.bind(Head).iload(I).iload(L).ifICmp(CondKind::Ge, Done);
    B.aload(A).iload(I).iconst(26).rand().iconst(65).iadd().astoreI();
    B.iinc(I, 1).jump(Head);
    B.bind(Done);
    B.aload(R).aload(A).putfield(FValue);
    B.aload(R).iload(L).putfield(FLen);
    B.aload(R).iconst(1000000).rand().putfield(FHash);
    B.aload(R).aret();
    MkRec = Vm.addMethod(B.build());
  }

  WorkloadProgram Prog;

  // --- setup(): session table of NumRecords records -----------------------
  {
    BytecodeBuilder B(Px + ".setup");
    uint32_t T = B.newLocal(), I = B.newLocal();
    B.returns(RetKind::Void);
    B.iconst(static_cast<int32_t>(NumRecords)).gput(GSize);
    B.iconst(static_cast<int32_t>(NumRecords)).newArray(RecArr).astore(T);
    B.aload(T).gput(GTable);
    Label Head = B.label(), Done = B.label();
    B.iconst(0).istore(I);
    B.bind(Head).iload(I).iconst(static_cast<int32_t>(NumRecords))
        .ifICmp(CondKind::Ge, Done);
    B.aload(T).iload(I);
    B.iconst(static_cast<int32_t>(MaxChars - MinChars + 1))
        .rand()
        .iconst(static_cast<int32_t>(MinChars))
        .iadd();
    B.call(MkRec).astoreR();
    B.iinc(I, 1).jump(Head);
    B.bind(Done).ret();
    Prog.Setup = Vm.addMethod(B.build());
  }

  // --- lookup(): LookupProbes random point queries -------------------------
  MethodId Lookup;
  {
    BytecodeBuilder B(Px + ".lookup");
    uint32_t T = B.newLocal(), N = B.newLocal(), I = B.newLocal(),
             R = B.newLocal(), V = B.newLocal(), L = B.newLocal(),
             K = B.newLocal(), Acc = B.newLocal();
    B.returns(RetKind::Void);
    B.gget(GTable).astore(T).gget(GSize).istore(N);
    B.iconst(0).istore(Acc);
    Label Head = B.label(), Done = B.label();
    B.iconst(0).istore(I);
    B.bind(Head).iload(I).iconst(static_cast<int32_t>(LookupProbes))
        .ifICmp(CondKind::Ge, Done);
    // r = table[rand(n)]
    B.aload(T).iload(N).rand().aloadR().astore(R);
    B.aload(R).getfield(FHash).iload(Acc).iadd().istore(Acc);
    B.aload(R).getfield(FValue).astore(V);
    B.aload(R).getfield(FLen).istore(L);
    Label ClampOk = B.label();
    B.iload(L).iconst(static_cast<int32_t>(TouchChars))
        .ifICmp(CondKind::Le, ClampOk);
    B.iconst(static_cast<int32_t>(TouchChars)).istore(L);
    B.bind(ClampOk);
    Label KHead = B.label(), KDone = B.label();
    B.iconst(0).istore(K);
    B.bind(KHead).iload(K).iload(L).ifICmp(CondKind::Ge, KDone);
    B.aload(V).iload(K).aloadI().iload(Acc).iadd().istore(Acc);
    B.iinc(K, 1).jump(KHead);
    B.bind(KDone);
    if (GarbageChars) {
      // Short-lived response temporaries, every 8th probe.
      Label SkipG = B.label();
      B.iload(I).iconst(8).irem().ifZ(CondKind::Ne, SkipG);
      B.iconst(static_cast<int32_t>(GarbageChars)).newArray(Chars).popv();
      B.bind(SkipG);
    }
    B.iinc(I, 1).jump(Head);
    B.bind(Done).ret();
    Lookup = Vm.addMethod(B.build());
  }

  // --- insert(): InsertCount random record replacements --------------------
  MethodId Insert;
  {
    BytecodeBuilder B(Px + ".insert");
    uint32_t T = B.newLocal(), N = B.newLocal(), I = B.newLocal();
    B.returns(RetKind::Void);
    B.gget(GTable).astore(T).gget(GSize).istore(N);
    Label Head = B.label(), Done = B.label();
    B.iconst(0).istore(I);
    B.bind(Head).iload(I).iconst(static_cast<int32_t>(InsertCount))
        .ifICmp(CondKind::Ge, Done);
    // table[rand(n)] = makeRecord(rand-length)
    B.aload(T).iload(N).rand();
    B.iconst(static_cast<int32_t>(MaxChars - MinChars + 1))
        .rand()
        .iconst(static_cast<int32_t>(MinChars))
        .iadd();
    B.call(MkRec).astoreR();
    B.iinc(I, 1).jump(Head);
    B.bind(Done).ret();
    Insert = Vm.addMethod(B.build());
  }

  // --- report(): one bubble pass + scan over a ReportWindow prefix ---------
  MethodId Report;
  {
    BytecodeBuilder B(Px + ".report");
    uint32_t T = B.newLocal(), N = B.newLocal(), W = B.newLocal(),
             I = B.newLocal(), R1 = B.newLocal(), R2 = B.newLocal(),
             C1 = B.newLocal(), C2 = B.newLocal(), Acc = B.newLocal();
    B.returns(RetKind::Void);
    B.gget(GTable).astore(T).gget(GSize).istore(N);
    B.iconst(static_cast<int32_t>(ReportWindow)).istore(W);
    Label WOk = B.label();
    B.iload(W).iload(N).ifICmp(CondKind::Le, WOk);
    B.iload(N).istore(W);
    B.bind(WOk);
    // Bubble pass comparing first payload chars of adjacent records.
    Label Head = B.label(), Done = B.label(), NoSwap = B.label();
    B.iconst(0).istore(I);
    B.bind(Head).iload(I).iload(W).iconst(1).isub()
        .ifICmp(CondKind::Ge, Done);
    B.aload(T).iload(I).aloadR().astore(R1);
    B.aload(T).iload(I).iconst(1).iadd().aloadR().astore(R2);
    B.aload(R1).getfield(FValue).iconst(0).aloadI().istore(C1);
    B.aload(R2).getfield(FValue).iconst(0).aloadI().istore(C2);
    B.iload(C1).iload(C2).ifICmp(CondKind::Le, NoSwap);
    B.aload(T).iload(I).aload(R2).astoreR();
    B.aload(T).iload(I).iconst(1).iadd().aload(R1).astoreR();
    B.bind(NoSwap).iinc(I, 1).jump(Head);
    B.bind(Done);
    // Scan the window, accumulating hashes.
    Label SHead = B.label(), SDone = B.label();
    B.iconst(0).istore(Acc);
    B.iconst(0).istore(I);
    B.bind(SHead).iload(I).iload(W).ifICmp(CondKind::Ge, SDone);
    B.aload(T).iload(I).aloadR().getfield(FHash).iload(Acc).iadd()
        .istore(Acc);
    B.iinc(I, 1).jump(SHead);
    B.bind(SDone).ret();
    Report = Vm.addMethod(B.build());
  }

  Prog.RequestHandlers = {Lookup, Insert, Report};

  // --- main: setup + fixed round-robin schedule ----------------------------
  {
    BytecodeBuilder B(Px + ".main");
    uint32_t I = B.newLocal();
    B.returns(RetKind::Void);
    B.call(Prog.Setup);
    Label Head = B.label(), Done = B.label();
    B.iconst(0).istore(I);
    B.bind(Head).iload(I).iconst(static_cast<int32_t>(MainRounds))
        .ifICmp(CondKind::Ge, Done);
    B.call(Lookup).call(Lookup).call(Insert).call(Report);
    B.iinc(I, 1).jump(Head);
    B.bind(Done).ret();
    Prog.Main = Vm.addMethod(B.build());
  }

  Prog.CompilationPlan = {Px + ".makeRecord", Px + ".setup", Px + ".lookup",
                          Px + ".insert", Px + ".report", Px + ".main"};
  return Prog;
}
