//===-- workloads/DaCapo.cpp - The eight DaCapo programs ------------------===//
//
// Synthetic analogues of the DaCapo 10-2006 MR-2 programs the paper uses
// (chart, eclipse and xalan excluded, as in the paper, for Jikes 2.4.2
// compatibility).
//
//===----------------------------------------------------------------------===//

#include "workloads/PatternKernels.h"

#include "vm/VirtualMachine.h"

using namespace hpmvm;

namespace hpmvm::workloads {

/// antlr: grammar parsing; AST-heavy with moderate token churn.
WorkloadProgram buildAntlr(VirtualMachine &Vm, const WorkloadParams &P) {
  ParserParams Pp;
  Pp.Prefix = "antlr";
  Pp.TokenWaves = 80;
  Pp.TokensPerWave = scaled(3000, P);
  Pp.TokenChars = 8;
  Pp.RingSize = 64;
  Pp.AstNodes = scaled(12000, P);
  Pp.AstWalks = 25000;
  Pp.WalkSteps = 14;
  Pp.SymbolRows = scaled(2000, P);
  return buildParser(Vm, Pp);
}

/// bloat: bytecode optimizer; long pointer walks over a persistent IR
/// graph -- one of the programs Figure 4 shows benefiting.
WorkloadProgram buildBloat(VirtualMachine &Vm, const WorkloadParams &P) {
  TreeParams T;
  T.Prefix = "bloat";
  T.Depth = P.ScalePercent >= 100 ? 14 : 12;
  T.Traversals = 1;
  T.Walks = scaled(30000, P);
  T.WalkSteps = 24;
  T.PayloadInts = 4;
  T.Iterations = 2;
  T.GarbageEvery = 4;
  return buildTree(Vm, T);
}

/// fop: XSL-FO to PDF; a single small document -- the tiniest program in
/// the paper's Table 2 (16 KB of MC maps).
WorkloadProgram buildFop(VirtualMachine &Vm, const WorkloadParams &P) {
  ParserParams Pp;
  Pp.Prefix = "fop";
  Pp.TokenWaves = 12;
  Pp.TokensPerWave = scaled(800, P);
  Pp.TokenChars = 8;
  Pp.RingSize = 32;
  Pp.AstNodes = scaled(2500, P);
  Pp.AstWalks = 4000;
  Pp.WalkSteps = 10;
  Pp.SymbolRows = scaled(500, P);
  return buildParser(Vm, Pp);
}

/// hsqldb: in-memory database; large persistent bucket-chained tables with
/// char[] keys. Large co-allocated populations (Figure 3).
WorkloadProgram buildHsqldb(VirtualMachine &Vm, const WorkloadParams &P) {
  HashProbeParams H;
  H.Prefix = "hsqldb";
  H.NumRows = scaled(8000, P);
  H.TableSize = 2048;
  H.KeyChars = 12;
  H.RowInts = 8;
  H.Probes = scaled(100000, P);
  H.Iterations = 2;
  H.GarbageEvery = 1;
  return buildHashProbe(Vm, H);
}

/// jython: Python interpreter on the JVM; frame/token churn plus dict
/// (hash) probes. Biggest code footprint in the paper's Table 2.
WorkloadProgram buildJython(VirtualMachine &Vm, const WorkloadParams &P) {
  ParserParams Pp;
  Pp.Prefix = "jython";
  Pp.TokenWaves = 50;
  Pp.TokensPerWave = scaled(2000, P);
  Pp.TokenChars = 10;
  Pp.RingSize = 96;
  Pp.AstNodes = scaled(8000, P);
  Pp.AstWalks = 12000;
  Pp.WalkSteps = 12;
  Pp.SymbolRows = scaled(3000, P);
  WorkloadProgram Interp = buildParser(Vm, Pp);

  HashProbeParams H;
  H.Prefix = "jythonDict";
  H.NumRows = scaled(5000, P);
  H.TableSize = 1024;
  H.KeyChars = 10;
  H.RowInts = 4;
  H.Probes = scaled(50000, P);
  H.Iterations = 2;
  H.GarbageEvery = 1;
  WorkloadProgram Dict = buildHashProbe(Vm, H);

  return combinePrograms(Vm, "jython", {Interp, Dict});
}

/// luindex: Lucene indexing; allocation-heavy construction of per-term
/// posting lists that survive (large co-allocated populations).
WorkloadProgram buildLuindex(VirtualMachine &Vm, const WorkloadParams &P) {
  PostingsParams Po;
  Po.Prefix = "luindex";
  Po.NumTerms = scaled(3000, P);
  Po.NumPostings = scaled(50000, P);
  Po.Queries = scaled(10000, P);
  Po.MaxChain = 16;
  Po.Iterations = 4;
  Po.GarbageEvery = 1;
  return buildPostings(Vm, Po);
}

/// lusearch: Lucene search; walks existing posting lists hard.
WorkloadProgram buildLusearch(VirtualMachine &Vm, const WorkloadParams &P) {
  PostingsParams Po;
  Po.Prefix = "lusearch";
  Po.NumTerms = scaled(3000, P);
  Po.NumPostings = scaled(40000, P);
  Po.Queries = scaled(65000, P);
  Po.MaxChain = 20;
  Po.Iterations = 2;
  Po.GarbageEvery = 1;
  return buildPostings(Vm, Po);
}

/// pmd: source-code analyzer; AST walks plus rule-table scans (one of the
/// benefiting programs in Figure 4).
WorkloadProgram buildPmd(VirtualMachine &Vm, const WorkloadParams &P) {
  TreeParams T;
  T.Prefix = "pmdAst";
  T.Depth = 13;
  T.Traversals = 2;
  T.Walks = scaled(20000, P);
  T.WalkSteps = 20;
  T.PayloadInts = 2;
  T.Iterations = 2;
  T.GarbageEvery = 4;
  WorkloadProgram Ast = buildTree(Vm, T);

  RecordTableParams R;
  R.Prefix = "pmdRules";
  R.NumRecords = scaled(5000, P);
  R.MinChars = 6;
  R.MaxChars = 16;
  R.TouchChars = 6;
  R.ScanPasses = 12;
  R.SortPasses = 1;
  R.Iterations = 2;
  R.GarbageEvery = 1;
  R.GarbageChars = 16;
  WorkloadProgram Rules = buildRecordTable(Vm, R);

  return combinePrograms(Vm, "pmd", {Ast, Rules});
}

} // namespace hpmvm::workloads
