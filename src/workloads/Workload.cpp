//===-- workloads/Workload.cpp - The benchmark registry -------------------===//

#include "workloads/Workload.h"

#include "workloads/PatternKernels.h"

using namespace hpmvm;

namespace hpmvm::workloads {
WorkloadProgram buildCompress(VirtualMachine &, const WorkloadParams &);
WorkloadProgram buildJess(VirtualMachine &, const WorkloadParams &);
WorkloadProgram buildDb(VirtualMachine &, const WorkloadParams &);
WorkloadProgram buildJavac(VirtualMachine &, const WorkloadParams &);
WorkloadProgram buildMpegaudio(VirtualMachine &, const WorkloadParams &);
WorkloadProgram buildMtrt(VirtualMachine &, const WorkloadParams &);
WorkloadProgram buildJack(VirtualMachine &, const WorkloadParams &);
WorkloadProgram buildAntlr(VirtualMachine &, const WorkloadParams &);
WorkloadProgram buildBloat(VirtualMachine &, const WorkloadParams &);
WorkloadProgram buildFop(VirtualMachine &, const WorkloadParams &);
WorkloadProgram buildHsqldb(VirtualMachine &, const WorkloadParams &);
WorkloadProgram buildJython(VirtualMachine &, const WorkloadParams &);
WorkloadProgram buildLuindex(VirtualMachine &, const WorkloadParams &);
WorkloadProgram buildLusearch(VirtualMachine &, const WorkloadParams &);
WorkloadProgram buildPmd(VirtualMachine &, const WorkloadParams &);
WorkloadProgram buildPseudoJbb(VirtualMachine &, const WorkloadParams &);
WorkloadProgram buildServerMix(VirtualMachine &, const WorkloadParams &);
} // namespace hpmvm::workloads

const std::vector<WorkloadSpec> &hpmvm::allWorkloads() {
  using namespace hpmvm::workloads;
  static const std::vector<WorkloadSpec> Specs = {
      {"compress", "SPECjvm98", "LZW compression over large byte buffers",
       3 * 1024 * 1024, buildCompress},
      {"jess", "SPECjvm98", "expert system scanning small fact records",
       5 * 1024 * 1024 / 2, buildJess},
      {"db", "SPECjvm98", "in-memory database of shuffled String records",
       4 * 1024 * 1024, buildDb},
      {"javac", "SPECjvm98", "compiler front end: token/AST churn",
       3 * 1024 * 1024, buildJavac},
      {"mpegaudio", "SPECjvm98", "compute-bound audio decoding",
       5 * 1024 * 1024 / 2, buildMpegaudio},
      {"mtrt", "SPECjvm98", "raytracer walking a scene tree",
       7 * 1024 * 1024 / 2, buildMtrt},
      {"jack", "SPECjvm98", "parser generator, 3 passes over its input",
       5 * 1024 * 1024 / 2, buildJack},
      {"pseudojbb", "SPEC JBB2000", "warehouse transactions, fixed count",
       11 * 1024 * 1024 / 2, buildPseudoJbb},
      {"antlr", "DaCapo", "grammar parsing, AST-heavy",
       3 * 1024 * 1024, buildAntlr},
      {"bloat", "DaCapo", "bytecode optimizer walking an IR graph",
       7 * 1024 * 1024 / 2, buildBloat},
      {"fop", "DaCapo", "XSL-FO formatter, single small document",
       2 * 1024 * 1024, buildFop},
      {"hsqldb", "DaCapo", "in-memory SQL: chained hash tables",
       4 * 1024 * 1024, buildHsqldb},
      {"jython", "DaCapo", "Python interpreter: churn + dict probes",
       7 * 1024 * 1024 / 2, buildJython},
      {"luindex", "DaCapo", "text indexing: builds posting lists",
       9 * 1024 * 1024 / 2, buildLuindex},
      {"lusearch", "DaCapo", "text search: walks posting lists",
       4 * 1024 * 1024, buildLusearch},
      {"pmd", "DaCapo", "source analyzer: AST walks + rule tables",
       7 * 1024 * 1024 / 2, buildPmd},
  };
  return Specs;
}

const std::vector<WorkloadSpec> &hpmvm::serverWorkloads() {
  using namespace hpmvm::workloads;
  static const std::vector<WorkloadSpec> Specs = {
      {"servermix", "Server",
       "request-serving tenant: lookup/insert/report session mix",
       3 * 1024 * 1024, buildServerMix},
  };
  return Specs;
}

const WorkloadSpec *hpmvm::findWorkload(const std::string &Name) {
  for (const WorkloadSpec &S : allWorkloads())
    if (S.Name == Name)
      return &S;
  for (const WorkloadSpec &S : serverWorkloads())
    if (S.Name == Name)
      return &S;
  return nullptr;
}

uint32_t hpmvm::scaledMinHeap(const WorkloadSpec &Spec,
                              const WorkloadParams &P) {
  uint64_t Scaled =
      static_cast<uint64_t>(Spec.MinHeapBytes) * P.ScalePercent / 100;
  const uint32_t Floor = 2 * 1024 * 1024;
  return Scaled < Floor ? Floor : static_cast<uint32_t>(Scaled);
}
