//===-- obs/TraceBuffer.h - Virtual-clock trace events ----------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded ring buffer of virtual-clock-timestamped trace events (GC
/// pauses, collector-thread polls, recompilations, phase changes, interval
/// retargets) plus a writer that emits chrome://tracing-compatible JSON.
///
/// Events carry static-string names/categories (no allocation on the record
/// path) and timestamps in virtual cycles; recording an event never advances
/// the virtual clock, so tracing is invisible to the experiments it
/// observes. When the ring is full the oldest events are overwritten and the
/// drop is accounted (the same discipline the PEBS debug store applies to
/// samples).
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_OBS_TRACEBUFFER_H
#define HPMVM_OBS_TRACEBUFFER_H

#include "support/Types.h"

#include <cstdio>
#include <string>
#include <vector>

namespace hpmvm {

/// Chrome trace event phases we emit.
enum class TracePhase : uint8_t {
  Complete, ///< "X": a span with start timestamp and duration.
  Instant,  ///< "i": a point event.
  CounterSample, ///< "C": a named value sampled over time.
};

/// One recorded event. Name/Category/ArgName must be string literals (or
/// otherwise outlive the buffer).
struct TraceEvent {
  Cycles Ts = 0;      ///< Virtual-clock start timestamp.
  Cycles Dur = 0;     ///< Duration in cycles (Complete events only).
  const char *Name = "";
  const char *Category = "";
  const char *ArgName = nullptr; ///< Optional single argument.
  uint64_t Arg = 0;
  TracePhase Phase = TracePhase::Instant;
};

/// Fixed-capacity ring of trace events.
class TraceBuffer {
public:
  static constexpr size_t kDefaultCapacity = 65536;

  explicit TraceBuffer(size_t Capacity = kDefaultCapacity);

  /// Records a span [Start, Start+Dur).
  void complete(Cycles Start, Cycles Dur, const char *Name,
                const char *Category, const char *ArgName = nullptr,
                uint64_t Arg = 0) {
    push({Start, Dur, Name, Category, ArgName, Arg, TracePhase::Complete});
  }

  /// Records a point event at \p At.
  void instant(Cycles At, const char *Name, const char *Category,
               const char *ArgName = nullptr, uint64_t Arg = 0) {
    push({At, 0, Name, Category, ArgName, Arg, TracePhase::Instant});
  }

  /// Records a counter-track sample (rendered as a value-over-time track).
  void counterSample(Cycles At, const char *Name, const char *Category,
                     const char *ArgName, uint64_t Value) {
    push({At, 0, Name, Category, ArgName, Value, TracePhase::CounterSample});
  }

  /// Number of events currently retained (<= capacity).
  size_t size() const { return Events.size(); }
  size_t capacity() const { return Cap; }
  /// Total events ever recorded, including overwritten ones.
  uint64_t recorded() const { return Recorded; }
  /// Events lost to ring wraparound.
  uint64_t dropped() const { return Recorded - Events.size(); }

  /// Event \p I in chronological order (0 = oldest retained).
  const TraceEvent &event(size_t I) const;

  void clear();

private:
  void push(const TraceEvent &E);

  size_t Cap;
  std::vector<TraceEvent> Events; ///< Ring storage (grows up to Cap).
  size_t Head = 0;                ///< Next overwrite position once full.
  uint64_t Recorded = 0;
};

/// Emits a TraceBuffer as chrome://tracing "Trace Event Format" JSON:
/// timestamps converted from virtual cycles to virtual microseconds at the
/// VirtualClock's nominal 3 GHz.
class ChromeTraceWriter {
public:
  static void write(const TraceBuffer &Buffer, FILE *Out);
  /// Writes to \p Path; \returns false (with a logged error) on I/O failure.
  static bool writeFile(const TraceBuffer &Buffer, const std::string &Path);
};

} // namespace hpmvm

#endif // HPMVM_OBS_TRACEBUFFER_H
