//===-- obs/Metrics.cpp ---------------------------------------------------===//

#include "obs/Metrics.h"

#include <algorithm>
#include <utility>

using namespace hpmvm;

Counter &Counter::sink() {
  static Counter S;
  return S;
}

Gauge &Gauge::sink() {
  static Gauge S;
  return S;
}

Histogram &Histogram::sink() {
  static Histogram S;
  return S;
}

// The metric classes hold atomics and are therefore not copyable; construct
// them in place.
Counter &MetricsRegistry::counter(const std::string &Name) {
  auto It = CounterIdx.find(Name);
  if (It != CounterIdx.end())
    return *It->second;
  Counters.emplace_back(std::piecewise_construct, std::forward_as_tuple(Name),
                        std::forward_as_tuple());
  CounterIdx.emplace(Name, &Counters.back().second);
  return Counters.back().second;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  auto It = GaugeIdx.find(Name);
  if (It != GaugeIdx.end())
    return *It->second;
  Gauges.emplace_back(std::piecewise_construct, std::forward_as_tuple(Name),
                      std::forward_as_tuple());
  GaugeIdx.emplace(Name, &Gauges.back().second);
  return Gauges.back().second;
}

Histogram &MetricsRegistry::histogram(const std::string &Name) {
  auto It = HistogramIdx.find(Name);
  if (It != HistogramIdx.end())
    return *It->second;
  Histograms.emplace_back(std::piecewise_construct,
                          std::forward_as_tuple(Name),
                          std::forward_as_tuple());
  HistogramIdx.emplace(Name, &Histograms.back().second);
  return Histograms.back().second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot S;
  for (const auto &[Name, C] : Counters)
    S.Counters.emplace_back(Name, C.value());
  for (const auto &[Name, G] : Gauges)
    S.Gauges.emplace_back(Name, G.value());
  for (const auto &[Name, H] : Histograms) {
    MetricsSnapshot::HistogramData D;
    D.Name = Name;
    D.Count = H.count();
    D.Sum = H.sum();
    D.Min = H.min();
    D.Max = H.max();
    for (size_t I = 0; I != Histogram::kBuckets; ++I)
      if (H.bucket(I))
        D.Buckets.emplace_back(static_cast<uint32_t>(I), H.bucket(I));
    D.computePercentiles();
    S.Histograms.push_back(std::move(D));
  }
  auto ByName = [](const auto &A, const auto &B) { return A.first < B.first; };
  std::sort(S.Counters.begin(), S.Counters.end(), ByName);
  std::sort(S.Gauges.begin(), S.Gauges.end(), ByName);
  std::sort(S.Histograms.begin(), S.Histograms.end(),
            [](const auto &A, const auto &B) { return A.Name < B.Name; });
  return S;
}

void MetricsRegistry::writeJson(FILE *Out) const { snapshot().writeJson(Out); }

uint64_t MetricsSnapshot::counter(const std::string &Name) const {
  for (const auto &[N, V] : Counters)
    if (N == Name)
      return V;
  return 0;
}

uint64_t MetricsSnapshot::gauge(const std::string &Name) const {
  for (const auto &[N, V] : Gauges)
    if (N == Name)
      return V;
  return 0;
}

const MetricsSnapshot::HistogramData *
MetricsSnapshot::histogram(const std::string &Name) const {
  for (const auto &H : Histograms)
    if (H.Name == Name)
      return &H;
  return nullptr;
}

// Metric names are dot/underscore identifiers, but escape defensively so
// the output is valid JSON for any name; suite labels and journal strings
// can carry arbitrary user text.
void hpmvm::writeJsonStringEscaped(FILE *Out, std::string_view S) {
  fputc('"', Out);
  for (char C : S) {
    switch (C) {
    case '"':
      fputs("\\\"", Out);
      break;
    case '\\':
      fputs("\\\\", Out);
      break;
    case '\n':
      fputs("\\n", Out);
      break;
    case '\t':
      fputs("\\t", Out);
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        fprintf(Out, "\\u%04x", C);
      else
        fputc(C, Out);
    }
  }
  fputc('"', Out);
}

namespace {

/// Inclusive upper edge of log2 bucket \p I: bucket 0 holds only zeros,
/// bucket i (i >= 1) holds [2^(i-1), 2^i).
uint64_t bucketUpperEdge(uint32_t I) {
  if (I == 0)
    return 0;
  if (I >= 64)
    return ~0ull;
  return (1ull << I) - 1;
}

} // namespace

uint64_t MetricsSnapshot::HistogramData::percentile(double Q) const {
  if (Count == 0)
    return 0;
  // Rank of the quantile sample (1-based, nearest-rank definition:
  // ceil(Q * Count)).
  double Exact = Q * static_cast<double>(Count);
  uint64_t Target = static_cast<uint64_t>(Exact);
  if (static_cast<double>(Target) < Exact)
    ++Target;
  if (Target < 1)
    Target = 1;
  if (Target > Count)
    Target = Count;
  uint64_t Cum = 0;
  for (const auto &[Index, N] : Buckets) {
    Cum += N;
    if (Cum >= Target) {
      uint64_t V = bucketUpperEdge(Index);
      if (V > Max)
        V = Max; // The top bucket's true extent is bounded by Max.
      if (V < Min)
        V = Min;
      return V;
    }
  }
  return Max;
}

void MetricsSnapshot::HistogramData::computePercentiles() {
  P50 = percentile(0.50);
  P95 = percentile(0.95);
  P99 = percentile(0.99);
}

void MetricsSnapshot::writeJson(FILE *Out) const {
  fputs("{\n  \"counters\": {", Out);
  for (size_t I = 0; I != Counters.size(); ++I) {
    fputs(I ? ",\n    " : "\n    ", Out);
    writeJsonStringEscaped(Out, Counters[I].first);
    fprintf(Out, ": %llu",
            static_cast<unsigned long long>(Counters[I].second));
  }
  fputs(Counters.empty() ? "},\n" : "\n  },\n", Out);

  fputs("  \"gauges\": {", Out);
  for (size_t I = 0; I != Gauges.size(); ++I) {
    fputs(I ? ",\n    " : "\n    ", Out);
    writeJsonStringEscaped(Out, Gauges[I].first);
    fprintf(Out, ": %llu", static_cast<unsigned long long>(Gauges[I].second));
  }
  fputs(Gauges.empty() ? "},\n" : "\n  },\n", Out);

  fputs("  \"histograms\": {", Out);
  for (size_t I = 0; I != Histograms.size(); ++I) {
    const HistogramData &H = Histograms[I];
    fputs(I ? ",\n    " : "\n    ", Out);
    writeJsonStringEscaped(Out, H.Name);
    fprintf(Out,
            ": {\"count\": %llu, \"sum\": %llu, \"min\": %llu, "
            "\"max\": %llu, \"p50\": %llu, \"p95\": %llu, \"p99\": %llu, "
            "\"log2_buckets\": [",
            static_cast<unsigned long long>(H.Count),
            static_cast<unsigned long long>(H.Sum),
            static_cast<unsigned long long>(H.Min),
            static_cast<unsigned long long>(H.Max),
            static_cast<unsigned long long>(H.P50),
            static_cast<unsigned long long>(H.P95),
            static_cast<unsigned long long>(H.P99));
    for (size_t B = 0; B != H.Buckets.size(); ++B)
      fprintf(Out, "%s[%u, %llu]", B ? ", " : "", H.Buckets[B].first,
              static_cast<unsigned long long>(H.Buckets[B].second));
    fputs("]}", Out);
  }
  fputs(Histograms.empty() ? "}\n" : "\n  }\n", Out);
  fputs("}\n", Out);
}

std::string MetricsSnapshot::toJson() const {
  char *Buf = nullptr;
  size_t Len = 0;
  FILE *Mem = open_memstream(&Buf, &Len);
  writeJson(Mem);
  fclose(Mem);
  std::string S(Buf, Len);
  free(Buf);
  return S;
}
