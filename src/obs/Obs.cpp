//===-- obs/Obs.cpp -------------------------------------------------------===//

#include "obs/Obs.h"

#include "support/Flags.h"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <sys/stat.h>

using namespace hpmvm;

ObsContext::ObsContext(const ObsConfig &Config)
    : Config(Config), Trace(Config.TraceCapacity) {
  if (Config.SelfProfile)
    Prof.enable(Metrics, Config.SelfProfileEvery);
}

bool hpmvm::ensureParentDir(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  if (Slash == std::string::npos || Slash == 0)
    return true; // Current directory or filesystem root: nothing to create.
  std::string Dir = Path.substr(0, Slash);
  for (size_t I = 1; I <= Dir.size(); ++I) {
    if (I != Dir.size() && Dir[I] != '/')
      continue;
    std::string Prefix = Dir.substr(0, I);
    if (mkdir(Prefix.c_str(), 0777) == 0 || errno == EEXIST) {
      // Created, or something exists there -- make sure it's a directory
      // (a plain file shadowing a path component would otherwise surface
      // as a confusing fopen failure much later).
      struct stat St;
      if (stat(Prefix.c_str(), &St) != 0 || !S_ISDIR(St.st_mode))
        return false;
      continue;
    }
    return false;
  }
  return true;
}

bool ObsContext::exportAll() const {
  bool Ok = true;
  if (!Config.MetricsOutPath.empty()) {
    FILE *Out = fopen(Config.MetricsOutPath.c_str(), "w");
    if (!Out) {
      logError("obs", "cannot open metrics output '%s'",
               Config.MetricsOutPath.c_str());
      Ok = false;
    } else {
      Metrics.writeJson(Out);
      fclose(Out);
      logDebug("obs", "wrote metrics snapshot to %s",
               Config.MetricsOutPath.c_str());
    }
  }
  if (!Config.TraceOutPath.empty()) {
    Ok &= ChromeTraceWriter::writeFile(Trace, Config.TraceOutPath);
    if (Ok)
      logDebug("obs", "wrote %zu trace events to %s", Trace.size(),
               Config.TraceOutPath.c_str());
  }
  if (!Config.JournalOutPath.empty()) {
    Ok &= Journal.writeFile(Config.JournalOutPath);
    if (Journal.dropped())
      logWarn("obs", "decision journal dropped %llu records (capacity %zu)",
              static_cast<unsigned long long>(Journal.dropped()),
              Journal.capacity());
  }
  return Ok;
}

static ObsConfig ProcessConfig;
static std::atomic<bool> ProcessConfigFrozen{false};

void hpmvm::setProcessObsConfig(const ObsConfig &Config) {
  if (ProcessConfigFrozen.load(std::memory_order_acquire)) {
    logError("obs", "process ObsConfig is frozen (experiments may be "
                    "running); ignoring late configuration");
    return;
  }
  ProcessConfig = Config;
}

const ObsConfig &hpmvm::processObsConfig() { return ProcessConfig; }

void hpmvm::freezeProcessObsConfig() {
  ProcessConfigFrozen.store(true, std::memory_order_release);
}

bool hpmvm::processObsConfigFrozen() {
  return ProcessConfigFrozen.load(std::memory_order_acquire);
}

ObsConfig hpmvm::resolveObsConfig(const ObsConfig &C) {
  ObsConfig R = C;
  if (R.MetricsOutPath.empty())
    R.MetricsOutPath = ProcessConfig.MetricsOutPath;
  if (R.TraceOutPath.empty())
    R.TraceOutPath = ProcessConfig.TraceOutPath;
  if (R.JournalOutPath.empty())
    R.JournalOutPath = ProcessConfig.JournalOutPath;
  if (R.Level == ObsConfig().Level)
    R.Level = ProcessConfig.Level;
  if (R.TraceCapacity == TraceBuffer::kDefaultCapacity)
    R.TraceCapacity = ProcessConfig.TraceCapacity;
  if (!R.SelfProfile)
    R.SelfProfile = ProcessConfig.SelfProfile;
  if (R.SelfProfileEvery == ObsConfig().SelfProfileEvery)
    R.SelfProfileEvery = ProcessConfig.SelfProfileEvery;
  return R;
}

bool hpmvm::parseObsFlags(int &Argc, char **Argv) {
  ObsConfig C = ProcessConfig;
  flags::ArgScanner S(Argc, Argv);

  // The obs layer reports through its own log sink, so flags are matched
  // with the scanner's non-printing tryTake primitive.
  auto Take = [&](const char *Flag, std::string &Value) {
    switch (S.tryTake(Flag, Value)) {
    case flags::TakeResult::NoMatch:
      return false;
    case flags::TakeResult::MissingValue:
      logError("obs", "%s requires a value", Flag);
      S.fail();
      return true;
    case flags::TakeResult::Value:
      return true;
    }
    return false;
  };

  // Create missing output directories at parse time so a bad path fails
  // here, naming the flag and path, rather than silently at run end.
  auto TakePath = [&](const char *Flag, std::string &Dest) {
    std::string Value;
    if (!Take(Flag, Value))
      return false;
    if (!Value.empty() && !ensureParentDir(Value)) {
      logError("obs", "%s: cannot create output directory for '%s'", Flag,
               Value.c_str());
      S.fail();
    }
    Dest = Value;
    return true;
  };

  while (S.next()) {
    std::string Value;
    if (TakePath("--metrics-out", C.MetricsOutPath)) {
    } else if (TakePath("--trace-out", C.TraceOutPath)) {
    } else if (TakePath("--journal-out", C.JournalOutPath)) {
    } else if (S.takeSwitch("--self-profile")) {
      C.SelfProfile = true;
    } else if (Take("--log-level", Value)) {
      if (!Value.empty() && !parseLogLevel(Value, C.Level)) {
        logError("obs",
                 "unknown log level '%s' (want trace|debug|info|warn|"
                 "error|off)",
                 Value.c_str());
        S.fail();
      }
    } else {
      S.keep();
    }
  }

  setProcessObsConfig(C);
  Log::setLevel(C.Level);
  return S.ok();
}
