//===-- obs/Obs.cpp -------------------------------------------------------===//

#include "obs/Obs.h"

#include <atomic>
#include <cstring>

using namespace hpmvm;

ObsContext::ObsContext(const ObsConfig &Config)
    : Config(Config), Trace(Config.TraceCapacity) {}

bool ObsContext::exportAll() const {
  bool Ok = true;
  if (!Config.MetricsOutPath.empty()) {
    FILE *Out = fopen(Config.MetricsOutPath.c_str(), "w");
    if (!Out) {
      logError("obs", "cannot open metrics output '%s'",
               Config.MetricsOutPath.c_str());
      Ok = false;
    } else {
      Metrics.writeJson(Out);
      fclose(Out);
      logDebug("obs", "wrote metrics snapshot to %s",
               Config.MetricsOutPath.c_str());
    }
  }
  if (!Config.TraceOutPath.empty()) {
    Ok &= ChromeTraceWriter::writeFile(Trace, Config.TraceOutPath);
    if (Ok)
      logDebug("obs", "wrote %zu trace events to %s", Trace.size(),
               Config.TraceOutPath.c_str());
  }
  return Ok;
}

static ObsConfig ProcessConfig;
static std::atomic<bool> ProcessConfigFrozen{false};

void hpmvm::setProcessObsConfig(const ObsConfig &Config) {
  if (ProcessConfigFrozen.load(std::memory_order_acquire)) {
    logError("obs", "process ObsConfig is frozen (experiments may be "
                    "running); ignoring late configuration");
    return;
  }
  ProcessConfig = Config;
}

const ObsConfig &hpmvm::processObsConfig() { return ProcessConfig; }

void hpmvm::freezeProcessObsConfig() {
  ProcessConfigFrozen.store(true, std::memory_order_release);
}

bool hpmvm::processObsConfigFrozen() {
  return ProcessConfigFrozen.load(std::memory_order_acquire);
}

ObsConfig hpmvm::resolveObsConfig(const ObsConfig &C) {
  ObsConfig R = C;
  if (R.MetricsOutPath.empty())
    R.MetricsOutPath = ProcessConfig.MetricsOutPath;
  if (R.TraceOutPath.empty())
    R.TraceOutPath = ProcessConfig.TraceOutPath;
  if (R.Level == ObsConfig().Level)
    R.Level = ProcessConfig.Level;
  if (R.TraceCapacity == TraceBuffer::kDefaultCapacity)
    R.TraceCapacity = ProcessConfig.TraceCapacity;
  return R;
}

bool hpmvm::parseObsFlags(int &Argc, char **Argv) {
  ObsConfig C = ProcessConfig;
  int Out = 1;
  bool Ok = true;

  auto Take = [&](int &I, const char *Flag, std::string &Value) {
    size_t FlagLen = strlen(Flag);
    if (strncmp(Argv[I], Flag, FlagLen) != 0)
      return false;
    if (Argv[I][FlagLen] == '=') {
      Value = Argv[I] + FlagLen + 1;
      return true;
    }
    if (Argv[I][FlagLen] != '\0')
      return false;
    if (I + 1 >= Argc) {
      logError("obs", "%s requires a value", Flag);
      Ok = false;
      return true;
    }
    Value = Argv[++I];
    return true;
  };

  for (int I = 1; I < Argc; ++I) {
    std::string Value;
    if (Take(I, "--metrics-out", Value)) {
      C.MetricsOutPath = Value;
    } else if (Take(I, "--trace-out", Value)) {
      C.TraceOutPath = Value;
    } else if (Take(I, "--log-level", Value)) {
      if (!Value.empty() && !parseLogLevel(Value, C.Level)) {
        logError("obs",
                 "unknown log level '%s' (want trace|debug|info|warn|"
                 "error|off)",
                 Value.c_str());
        Ok = false;
      }
    } else {
      Argv[Out++] = Argv[I];
    }
  }
  Argc = Out;
  Argv[Argc] = nullptr;

  setProcessObsConfig(C);
  Log::setLevel(C.Level);
  return Ok;
}
