//===-- obs/DecisionJournal.cpp -------------------------------------------===//

#include "obs/DecisionJournal.h"

#include "obs/Log.h"
#include "obs/Metrics.h"

#include <cstdlib>

using namespace hpmvm;

const char *DecisionJournal::kindName(DecisionKind K) {
  switch (K) {
  case DecisionKind::SamplingPolicy:
    return "SamplingPolicy";
  case DecisionKind::Coalloc:
    return "Coalloc";
  case DecisionKind::PrefetchInject:
    return "PrefetchInject";
  case DecisionKind::HotRecompile:
    return "HotRecompile";
  case DecisionKind::PhaseChange:
    return "PhaseChange";
  case DecisionKind::Assess:
    return "Assess";
  case DecisionKind::Revert:
    return "Revert";
  case DecisionKind::Accept:
    return "Accept";
  case DecisionKind::Classify:
    return "Classify";
  case DecisionKind::Score:
    return "Score";
  case DecisionKind::Apply:
    return "Apply";
  case DecisionKind::Blacklist:
    return "Blacklist";
  }
  return "Unknown";
}

void DecisionJournal::writeRecordJson(FILE *Out, const DecisionRecord &R) {
  fprintf(Out, "{\"ts\": %llu, \"kind\": \"%s\", \"consumer\": ",
          static_cast<unsigned long long>(R.Ts), kindName(R.Kind));
  writeJsonStringEscaped(Out, R.Consumer);
  fputs(", \"action\": ", Out);
  writeJsonStringEscaped(Out, R.Action);
  if (R.Method != kInvalidId)
    fprintf(Out, ", \"method\": %u", R.Method);
  if (R.Field != kInvalidId)
    fprintf(Out, ", \"field\": %u", R.Field);
  // %.6g keeps rate serialization short and deterministic (rates derive
  // from integer sample counts, not host timing).
  if (R.Rate >= 0.0)
    fprintf(Out, ", \"rate\": %.6g", R.Rate);
  if (R.Baseline >= 0.0)
    fprintf(Out, ", \"baseline\": %.6g", R.Baseline);
  fprintf(Out, ", \"value\": %llu", static_cast<unsigned long long>(R.Value));
  if (R.Tenant != kInvalidId)
    fprintf(Out, ", \"tenant\": %u", R.Tenant);
  if (R.Outcome) {
    fputs(", \"outcome\": ", Out);
    writeJsonStringEscaped(Out, R.Outcome);
  }
  fputc('}', Out);
}

void DecisionJournal::writeJsonl(FILE *Out) const {
  std::vector<DecisionRecord> Snap = snapshot();
  for (const DecisionRecord &R : Snap) {
    writeRecordJson(Out, R);
    fputc('\n', Out);
  }
}

bool DecisionJournal::writeFile(const std::string &Path) const {
  FILE *Out = fopen(Path.c_str(), "w");
  if (!Out) {
    logError("obs", "cannot open journal output '%s'", Path.c_str());
    return false;
  }
  writeJsonl(Out);
  fclose(Out);
  return true;
}

std::string DecisionJournal::toJsonl() const {
  char *Buf = nullptr;
  size_t Len = 0;
  FILE *Mem = open_memstream(&Buf, &Len);
  writeJsonl(Mem);
  fclose(Mem);
  std::string S(Buf, Len);
  free(Buf);
  return S;
}
