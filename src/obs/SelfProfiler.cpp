//===-- obs/SelfProfiler.cpp ----------------------------------------------===//

#include "obs/SelfProfiler.h"

using namespace hpmvm;

void SelfProfiler::enable(MetricsRegistry &M, uint32_t SampleEvery) {
  Enabled = true;
  Every = SampleEvery ? SampleEvery : 1;
  Stages[static_cast<size_t>(PipelineStage::Drain)] =
      &M.histogram("pipeline.stage.drain_ns");
  Stages[static_cast<size_t>(PipelineStage::Resolve)] =
      &M.histogram("pipeline.stage.resolve_ns");
  Stages[static_cast<size_t>(PipelineStage::Attribute)] =
      &M.histogram("pipeline.stage.attribute_ns");
  Stages[static_cast<size_t>(PipelineStage::Dispatch)] =
      &M.histogram("pipeline.stage.dispatch_ns");
}
