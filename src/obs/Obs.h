//===-- obs/Obs.h - Observability context + export wiring -------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-run observability bundle threaded through the pipeline: one
/// MetricsRegistry plus one TraceBuffer. Every instrumented component
/// exposes `attachObs(ObsContext &)`, which resolves its named metrics once
/// and remembers the trace buffer; unattached components fall back to the
/// metric sinks and skip tracing entirely.
///
/// ObsConfig is the user-facing knob set (metrics-out path, trace-out path,
/// log level, trace capacity) carried by harness RunConfig and settable
/// process-wide from the --metrics-out/--trace-out/--log-level flags that
/// benches and examples parse, so any figure binary can dump its telemetry
/// alongside its table.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_OBS_OBS_H
#define HPMVM_OBS_OBS_H

#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/TraceBuffer.h"

#include <string>

namespace hpmvm {

/// User-facing observability configuration.
struct ObsConfig {
  /// Where to write the final metrics snapshot JSON ("" = don't export).
  std::string MetricsOutPath;
  /// Where to write the Chrome-trace JSON ("" = don't export).
  std::string TraceOutPath;
  LogLevel Level = LogLevel::Info;
  size_t TraceCapacity = TraceBuffer::kDefaultCapacity;

  bool exportsAnything() const {
    return !MetricsOutPath.empty() || !TraceOutPath.empty();
  }
};

/// The telemetry state of one run.
class ObsContext {
public:
  explicit ObsContext(const ObsConfig &Config = {});

  MetricsRegistry &metrics() { return Metrics; }
  const MetricsRegistry &metrics() const { return Metrics; }
  TraceBuffer &trace() { return Trace; }
  const TraceBuffer &trace() const { return Trace; }
  const ObsConfig &config() const { return Config; }

  /// Writes metrics/trace JSON to the configured paths (no-op for paths
  /// left empty). \returns false if any configured export failed.
  bool exportAll() const;

private:
  ObsConfig Config;
  MetricsRegistry Metrics;
  TraceBuffer Trace;
};

/// Process-wide default ObsConfig, inherited by every Experiment whose
/// RunConfig leaves its own ObsConfig untouched. Set by the CLI flags.
///
/// Set-once-before-threads: writes are only legal while the process is
/// still single-threaded (main() startup). ParallelRunner freezes the
/// config before spawning workers; later writes are rejected with an
/// error so concurrent experiments only ever see immutable state.
void setProcessObsConfig(const ObsConfig &Config);
const ObsConfig &processObsConfig();

/// Marks the process ObsConfig read-only (called by ParallelRunner before
/// it starts worker threads). Subsequent setProcessObsConfig/parseObsFlags
/// calls log an error and change nothing.
void freezeProcessObsConfig();
bool processObsConfigFrozen();

/// Merges \p C with the process-wide default: unset fields (empty paths,
/// default level/capacity) inherit the process value.
ObsConfig resolveObsConfig(const ObsConfig &C);

/// Strips `--metrics-out <path>`, `--trace-out <path>` and `--log-level
/// <trace|debug|info|warn|error|off>` (plus the --flag=value spellings)
/// from argv, storing them as the process ObsConfig and applying the log
/// level immediately. Unrecognized arguments are left in place; argc is
/// updated. \returns false (after logging) on a malformed obs flag.
bool parseObsFlags(int &Argc, char **Argv);

} // namespace hpmvm

#endif // HPMVM_OBS_OBS_H
