//===-- obs/Obs.h - Observability context + export wiring -------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-run observability bundle threaded through the pipeline: one
/// MetricsRegistry, one TraceBuffer, one DecisionJournal, and one
/// SelfProfiler. Every instrumented component exposes
/// `attachObs(ObsContext &)`, which resolves its named metrics once and
/// remembers the trace buffer and journal; unattached components fall back
/// to the metric sinks and skip tracing/journaling entirely.
///
/// ObsConfig is the user-facing knob set (metrics/trace/journal paths, log
/// level, trace capacity, self-profiling) carried by harness RunConfig and
/// settable process-wide from the --metrics-out/--trace-out/--journal-out/
/// --self-profile/--log-level flags that benches and examples parse, so
/// any figure binary can dump its telemetry alongside its table.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_OBS_OBS_H
#define HPMVM_OBS_OBS_H

#include "obs/DecisionJournal.h"
#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/SelfProfiler.h"
#include "obs/TraceBuffer.h"

#include <string>

namespace hpmvm {

/// User-facing observability configuration.
struct ObsConfig {
  /// Where to write the final metrics snapshot JSON ("" = don't export).
  std::string MetricsOutPath;
  /// Where to write the Chrome-trace JSON ("" = don't export).
  std::string TraceOutPath;
  /// Where to write the decision journal JSONL ("" = don't export).
  std::string JournalOutPath;
  LogLevel Level = LogLevel::Info;
  size_t TraceCapacity = TraceBuffer::kDefaultCapacity;
  /// Time the sample-pipeline stages with the host clock (--self-profile).
  /// Off by default: host timings are nondeterministic, and the figures'
  /// metrics JSON must stay byte-identical across --jobs values.
  bool SelfProfile = false;
  /// When self-profiling, time every Nth batch (1 = all).
  uint32_t SelfProfileEvery = 1;

  bool exportsAnything() const {
    return !MetricsOutPath.empty() || !TraceOutPath.empty() ||
           !JournalOutPath.empty();
  }
};

/// The telemetry state of one run.
class ObsContext {
public:
  explicit ObsContext(const ObsConfig &Config = {});

  MetricsRegistry &metrics() { return Metrics; }
  const MetricsRegistry &metrics() const { return Metrics; }
  TraceBuffer &trace() { return Trace; }
  const TraceBuffer &trace() const { return Trace; }
  DecisionJournal &journal() { return Journal; }
  const DecisionJournal &journal() const { return Journal; }
  SelfProfiler &selfProfiler() { return Prof; }
  const SelfProfiler &selfProfiler() const { return Prof; }
  const ObsConfig &config() const { return Config; }

  /// Writes metrics/trace/journal output to the configured paths (no-op
  /// for paths left empty). \returns false if any configured export failed.
  bool exportAll() const;

private:
  ObsConfig Config;
  MetricsRegistry Metrics;
  TraceBuffer Trace;
  DecisionJournal Journal;
  SelfProfiler Prof;
};

/// Creates the directory components of \p Path's parent (mkdir -p) so the
/// obs exporters can write into not-yet-existing directories. \returns
/// false when a component exists as a non-directory or cannot be created.
bool ensureParentDir(const std::string &Path);

/// Process-wide default ObsConfig, inherited by every Experiment whose
/// RunConfig leaves its own ObsConfig untouched. Set by the CLI flags.
///
/// Set-once-before-threads: writes are only legal while the process is
/// still single-threaded (main() startup). ParallelRunner freezes the
/// config before spawning workers; later writes are rejected with an
/// error so concurrent experiments only ever see immutable state.
void setProcessObsConfig(const ObsConfig &Config);
const ObsConfig &processObsConfig();

/// Marks the process ObsConfig read-only (called by ParallelRunner before
/// it starts worker threads). Subsequent setProcessObsConfig/parseObsFlags
/// calls log an error and change nothing.
void freezeProcessObsConfig();
bool processObsConfigFrozen();

/// Merges \p C with the process-wide default: unset fields (empty paths,
/// default level/capacity) inherit the process value.
ObsConfig resolveObsConfig(const ObsConfig &C);

/// Strips `--metrics-out <path>`, `--trace-out <path>`, `--journal-out
/// <path>`, `--self-profile`, and `--log-level
/// <trace|debug|info|warn|error|off>` (plus the --flag=value spellings)
/// from argv, storing them as the process ObsConfig and applying the log
/// level immediately. Output paths naming a missing directory have it
/// created eagerly (mkdir -p), so a typo'd path fails at flag-parse time
/// with a message naming the path instead of silently at run end.
/// Unrecognized arguments are left in place; argc is updated. \returns
/// false (after logging) on a malformed obs flag or uncreatable directory.
bool parseObsFlags(int &Argc, char **Argv);

} // namespace hpmvm

#endif // HPMVM_OBS_OBS_H
