//===-- obs/DecisionJournal.h - Optimization decision audit log -*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An append-only, thread-safe, virtual-clock-stamped log of every
/// optimization decision the feedback pipeline takes: sampling-interval
/// retargets, co-allocation hints, prefetch injections, hot-method
/// recompilation requests, phase changes, and the controller's
/// assess/revert/accept verdicts. The paper's loop (observe -> act ->
/// assess -> possibly revert) otherwise leaves no durable record of *what*
/// was decided and *why*; the journal is that record, and the substrate the
/// policy-engine and autotuner roadmap items audit and learn from.
///
/// Discipline mirrors the rest of the obs layer:
///   - records carry static-string names only (no allocation per record
///     beyond vector growth), and appending never advances the virtual
///     clock, so journaling is invisible to the experiments it observes;
///   - the journal is bounded; once full, *new* records are dropped and
///     counted (keep-first: an audit log must preserve the earliest
///     decisions that shaped the run, unlike the trace ring which favors
///     recency);
///   - serialization (JSONL, one record per line) is deterministic, so
///     journal files diff cleanly across runs and across --jobs values.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_OBS_DECISIONJOURNAL_H
#define HPMVM_OBS_DECISIONJOURNAL_H

#include "support/Types.h"

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace hpmvm {

/// What kind of decision a journal record describes.
enum class DecisionKind : uint8_t {
  SamplingPolicy, ///< SamplingIntervalController retargeted the interval.
  Coalloc,        ///< CoallocationAdvisor changed a hint or forced gap.
  PrefetchInject, ///< PrefetchInjector rewrote a method with prefetches.
  HotRecompile,   ///< FrequencyAdvisor reported a hot method to the AOS.
  PhaseChange,    ///< PhaseDetector flagged a program phase change.
  Assess,         ///< OptimizationController began assessing a policy change.
  Revert,         ///< A guarded optimization was rolled back.
  Accept,         ///< A guarded optimization passed assessment.
  Classify,       ///< BottleneckClassifier (re)labelled a hot method.
  Score,          ///< PolicyEngine scored a candidate action for a method.
  Apply,          ///< PolicyEngine applied the best-scoring action.
  Blacklist,      ///< PolicyEngine blacklisted a reverted (method, action).
};

/// One journaled decision. All strings must be literals (or otherwise
/// outlive the journal); numeric fields that don't apply keep their
/// sentinels and are omitted from the JSONL serialization.
struct DecisionRecord {
  Cycles Ts = 0;                  ///< Virtual-clock timestamp.
  DecisionKind Kind = DecisionKind::Assess;
  const char *Consumer = "";      ///< Acting component ("coalloc", ...).
  const char *Action = "";        ///< What was done ("inject", "hint", ...).
  const char *Outcome = nullptr;  ///< Optional result ("applied", ...).
  MethodId Method = kInvalidId;   ///< Optional subject method.
  FieldId Field = kInvalidId;     ///< Optional subject field.
  double Rate = -1.0;             ///< Triggering rate (negative = absent).
  double Baseline = -1.0;         ///< Comparison baseline (negative = absent).
  uint64_t Value = 0;             ///< Kind-specific payload (count, interval,
                                  ///< gap bytes, phase number, ...).
  TenantId Tenant = kInvalidId;   ///< Owning VM shard in fleet runs;
                                  ///< kInvalidId (omitted) otherwise.
};

/// Bounded append-only decision log. Appends take a mutex (decisions are
/// rare -- per period, not per sample -- so this is nowhere near the hot
/// path) which also makes the journal safe to share across threads, like
/// the metric sinks.
class DecisionJournal {
public:
  static constexpr size_t kDefaultCapacity = 65536;

  explicit DecisionJournal(size_t Capacity = kDefaultCapacity)
      : Cap(Capacity ? Capacity : 1) {}

  /// Appends \p R; once the journal holds capacity() records, further
  /// appends are dropped (and counted) rather than evicting old records.
  void append(const DecisionRecord &R) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Recorded;
    if (Records.size() < Cap)
      Records.push_back(R);
  }

  size_t capacity() const { return Cap; }
  /// Number of records currently retained (<= capacity).
  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Records.size();
  }
  /// Total records ever appended, including dropped ones.
  uint64_t recorded() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Recorded;
  }
  /// Records lost to the capacity bound.
  uint64_t dropped() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Recorded - Records.size();
  }

  /// Copy of the retained records, in append order.
  std::vector<DecisionRecord> snapshot() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Records;
  }

  void clear() {
    std::lock_guard<std::mutex> Lock(Mu);
    Records.clear();
    Recorded = 0;
  }

  /// Writes the journal as JSONL: one deterministic JSON object per line,
  /// in append order.
  void writeJsonl(FILE *Out) const;
  /// Writes to \p Path; \returns false (with a logged error) on I/O failure.
  bool writeFile(const std::string &Path) const;
  std::string toJsonl() const;

  /// Serializes one record as a single-line JSON object (no newline).
  /// Shared with the harness' runs-JSON writer so journals embedded in
  /// BENCH_*.json documents match the standalone JSONL shape.
  static void writeRecordJson(FILE *Out, const DecisionRecord &R);

  /// Stable name of \p K as serialized ("SamplingPolicy", "Revert", ...).
  static const char *kindName(DecisionKind K);

private:
  mutable std::mutex Mu;
  size_t Cap;
  std::vector<DecisionRecord> Records;
  uint64_t Recorded = 0;
};

} // namespace hpmvm

#endif // HPMVM_OBS_DECISIONJOURNAL_H
