//===-- obs/Metrics.h - Pipeline metrics registry ---------------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cheap named metrics for the HPM->GC feedback pipeline: counters, gauges
/// and fixed-log2-bucket histograms registered by name in a MetricsRegistry.
///
/// Design constraints (the pipeline is what Figure 2 measures, so the
/// instrumentation must not perturb it):
///   - the hot path is a single-instruction `uint64_t` bump through a
///     pre-resolved pointer -- no lookup, no lock, no branch, and no
///     virtual-clock cost;
///   - name resolution happens once, at wiring time (attachObs), never on
///     the increment path;
///   - unwired components point their metric handles at process-wide sink
///     instances, so instrumented code needs no null checks;
///   - snapshots/export run at run end or on poll boundaries only, and are
///     deterministic (names sorted) so telemetry diffs cleanly across runs.
///
/// Threading: registries are per-experiment and accessed only by the
/// thread running that experiment, but the process-wide sink instances are
/// shared by every concurrently running experiment (harness/ParallelRunner).
/// All mutation therefore goes through relaxed atomic loads/stores: that is
/// race-free under the memory model (ThreadSanitizer-clean) and compiles to
/// the same unlocked load/add/store sequence as a plain bump, preserving
/// the serial hot path (bench/micro_components BM_Metric*). Concurrent
/// increments to the *sinks* may lose updates -- acceptable, the sinks
/// exist to discard.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_OBS_METRICS_H
#define HPMVM_OBS_METRICS_H

#include "support/Types.h"

#include <atomic>
#include <bit>
#include <cstdio>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace hpmvm {

/// Writes \p S as a JSON string literal: surrounding quotes plus escapes
/// for quote, backslash, and control characters. Shared by every obs-layer
/// JSON emitter (metrics, traces, decision journal).
void writeJsonStringEscaped(FILE *Out, std::string_view S);

namespace detail {
/// The metric mutation primitive: an unsynchronized-looking bump that is
/// nevertheless race-free. Relaxed load + relaxed store keeps the serial
/// code identical to `V += N` (no lock prefix, no fence); the only thing
/// given up is atomicity of the read-modify-write, i.e. concurrent bumps
/// to the shared sinks may lose counts.
inline void relaxedAdd(std::atomic<uint64_t> &V, uint64_t N) {
  V.store(V.load(std::memory_order_relaxed) + N, std::memory_order_relaxed);
}
} // namespace detail

/// Monotonic event count.
class Counter {
public:
  void inc(uint64_t N = 1) { detail::relaxedAdd(V, N); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

  /// Process-wide discard instance: components not wired to a registry
  /// increment this so the hot path carries no null check.
  static Counter &sink();

private:
  std::atomic<uint64_t> V{0};
};

/// Last-written value (fill levels, table sizes, current intervals).
class Gauge {
public:
  void set(uint64_t N) { V.store(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

  static Gauge &sink();

private:
  std::atomic<uint64_t> V{0};
};

/// Histogram over uint64 values with fixed log2 buckets: bucket i counts
/// values v with bit_width(v) == i, i.e. bucket 0 holds zeros and bucket i
/// (i >= 1) holds [2^(i-1), 2^i).
class Histogram {
public:
  static constexpr size_t kBuckets = 65;

  void record(uint64_t V) {
    detail::relaxedAdd(Buckets[std::bit_width(V)], 1);
    detail::relaxedAdd(N, 1);
    detail::relaxedAdd(Sum, V);
    uint64_t Cnt = N.load(std::memory_order_relaxed);
    if (Cnt == 1 || V < MinV.load(std::memory_order_relaxed))
      MinV.store(V, std::memory_order_relaxed);
    if (V > MaxV.load(std::memory_order_relaxed))
      MaxV.store(V, std::memory_order_relaxed);
  }

  uint64_t count() const { return N.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  uint64_t min() const {
    return count() ? MinV.load(std::memory_order_relaxed) : 0;
  }
  uint64_t max() const { return MaxV.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }
  void reset() {
    for (auto &B : Buckets)
      B.store(0, std::memory_order_relaxed);
    N.store(0, std::memory_order_relaxed);
    Sum.store(0, std::memory_order_relaxed);
    MinV.store(0, std::memory_order_relaxed);
    MaxV.store(0, std::memory_order_relaxed);
  }

  static Histogram &sink();

private:
  std::atomic<uint64_t> Buckets[kBuckets] = {};
  std::atomic<uint64_t> N{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> MinV{0};
  std::atomic<uint64_t> MaxV{0};
};

/// Immutable, name-sorted copy of a registry's state (what RunResult
/// carries and what the JSON exporter writes).
struct MetricsSnapshot {
  struct HistogramData {
    std::string Name;
    uint64_t Count = 0;
    uint64_t Sum = 0;
    uint64_t Min = 0;
    uint64_t Max = 0;
    /// Approximate percentiles derived from the log2 buckets: the value is
    /// the inclusive upper edge of the bucket where the cumulative count
    /// crosses the quantile, clamped to [Min, Max]. Exact for the 0th/last
    /// sample; otherwise accurate to the bucket's power-of-two resolution.
    uint64_t P50 = 0;
    uint64_t P95 = 0;
    uint64_t P99 = 0;
    /// (log2 bucket index, count) pairs for non-empty buckets only.
    std::vector<std::pair<uint32_t, uint64_t>> Buckets;

    /// Fills P50/P95/P99 from Count/Min/Max/Buckets.
    void computePercentiles();
    /// The value at quantile \p Q in [0, 1] (same approximation as above).
    uint64_t percentile(double Q) const;
  };

  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<std::pair<std::string, uint64_t>> Gauges;
  std::vector<HistogramData> Histograms;

  /// Value of counter \p Name, or 0 when absent (a metric that was never
  /// registered was never incremented).
  uint64_t counter(const std::string &Name) const;
  /// Value of gauge \p Name, or 0 when absent.
  uint64_t gauge(const std::string &Name) const;
  const HistogramData *histogram(const std::string &Name) const;

  /// Serializes as one deterministic JSON object:
  ///   {"counters":{...},"gauges":{...},"histograms":{...}}
  void writeJson(FILE *Out) const;
  std::string toJson() const;
};

/// Owner of all named metrics of one run. Registration is idempotent: the
/// same name always yields the same instance, so independent components may
/// share a metric (e.g. two GC plans both bumping "gc.collections").
class MetricsRegistry {
public:
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  MetricsSnapshot snapshot() const;
  void writeJson(FILE *Out) const;

  size_t numCounters() const { return Counters.size(); }
  size_t numGauges() const { return Gauges.size(); }
  size_t numHistograms() const { return Histograms.size(); }

private:
  // Deques give pointer stability; the maps only serve (cold) registration.
  // Ordered maps, not hash maps: the registry sits on the export path, and
  // the determinism linter (R2) bans hash-iteration order anywhere it
  // could leak into output -- ordered lookups cost nothing at wiring time.
  std::deque<std::pair<std::string, Counter>> Counters;
  std::deque<std::pair<std::string, Gauge>> Gauges;
  std::deque<std::pair<std::string, Histogram>> Histograms;
  std::map<std::string, Counter *> CounterIdx;
  std::map<std::string, Gauge *> GaugeIdx;
  std::map<std::string, Histogram *> HistogramIdx;
};

} // namespace hpmvm

#endif // HPMVM_OBS_METRICS_H
