//===-- obs/SelfProfiler.h - Monitoring-path self profiling ----*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sampled host-time (steady_clock) timers for the sample-pipeline stages:
/// drain -> resolveBatch -> attribute -> dispatchBatch. Each timed stage
/// feeds a `pipeline.stage.*` log2 histogram (nanoseconds), and the total
/// timed nanoseconds back a `monitor.self_overhead_frac_ppm` gauge so fig2's
/// sampling-overhead story covers the monitoring path's own cost (the
/// at-scale concern of arXiv:2011.13432).
///
/// Host wall time is inherently nondeterministic, so self-profiling is
/// strictly opt-in (`--self-profile`): when disabled (the default) no
/// histogram is registered, no clock is read, and metrics JSON is
/// byte-identical to a build without this feature -- preserving the
/// figures' determinism contract across --jobs values.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_OBS_SELFPROFILER_H
#define HPMVM_OBS_SELFPROFILER_H

#include "obs/Metrics.h"

#include <chrono>

namespace hpmvm {

/// The timed pipeline stages, in batch order.
enum class PipelineStage : uint8_t { Drain, Resolve, Attribute, Dispatch };

/// Per-run stage timer set. One instance lives in ObsContext; the sample
/// collector decides per batch whether to time it (beginBatch), and the
/// monitor's stage code records durations for timed batches only.
class SelfProfiler {
public:
  static constexpr size_t kNumStages = 4;

  /// Registers the stage histograms in \p M and arms the profiler. Every
  /// \p SampleEvery-th batch is timed (1 = all batches).
  void enable(MetricsRegistry &M, uint32_t SampleEvery);

  bool enabled() const { return Enabled; }

  /// Called once per poll, before the drain. \returns true when this batch
  /// should be timed; the decision is sticky until the next beginBatch so
  /// the downstream stages (which run synchronously within the poll) see a
  /// consistent answer via timingBatch().
  bool beginBatch() {
    if (!Enabled)
      return false;
    Timed = (BatchIndex++ % Every) == 0;
    return Timed;
  }

  /// Whether the batch currently being processed is timed.
  bool timingBatch() const { return Timed; }

  /// Host monotonic clock, nanoseconds.
  static uint64_t nowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  void recordStage(PipelineStage S, uint64_t Ns) {
    Stages[static_cast<size_t>(S)]->record(Ns);
    TimedNs += Ns;
  }

  /// Total nanoseconds accumulated across all timed stages.
  uint64_t totalTimedNs() const { return TimedNs; }
  /// Sampling divisor: extrapolate totalTimedNs() * sampleEvery() to
  /// estimate the cost over *all* batches.
  uint32_t sampleEvery() const { return Every; }

private:
  bool Enabled = false;
  bool Timed = false;
  uint32_t Every = 1;
  uint64_t BatchIndex = 0;
  uint64_t TimedNs = 0;
  Histogram *Stages[kNumStages] = {&Histogram::sink(), &Histogram::sink(),
                                   &Histogram::sink(), &Histogram::sink()};
};

} // namespace hpmvm

#endif // HPMVM_OBS_SELFPROFILER_H
