//===-- obs/TraceBuffer.cpp -----------------------------------------------===//

#include "obs/TraceBuffer.h"

#include "obs/Log.h"
#include "obs/Metrics.h" // writeJsonStringEscaped
#include "support/VirtualClock.h"

#include <algorithm>
#include <cassert>

using namespace hpmvm;

TraceBuffer::TraceBuffer(size_t Capacity) : Cap(Capacity ? Capacity : 1) {
  Events.reserve(Cap < 4096 ? Cap : 4096);
}

void TraceBuffer::push(const TraceEvent &E) {
  ++Recorded;
  if (Events.size() < Cap) {
    Events.push_back(E);
    return;
  }
  Events[Head] = E;
  Head = (Head + 1) % Cap;
}

const TraceEvent &TraceBuffer::event(size_t I) const {
  assert(I < Events.size() && "trace event index out of range");
  if (Events.size() < Cap) // Not yet wrapped: storage is chronological.
    return Events[I];
  return Events[(Head + I) % Cap];
}

void TraceBuffer::clear() {
  Events.clear();
  Head = 0;
  Recorded = 0;
}

namespace {

/// Cycles -> virtual microseconds for the "ts"/"dur" fields.
double toMicros(Cycles C) { return VirtualClock::toSeconds(C) * 1e6; }

const char *phaseCode(TracePhase P) {
  switch (P) {
  case TracePhase::Complete:
    return "X";
  case TracePhase::Instant:
    return "i";
  case TracePhase::CounterSample:
    return "C";
  }
  return "i";
}

} // namespace

void ChromeTraceWriter::write(const TraceBuffer &Buffer, FILE *Out) {
  // Record order is completion order: a span is pushed when it ends but
  // stamped with its start time, so instants emitted inside it precede it
  // in the ring. Sort by start timestamp (stably, preserving record order
  // among equals) for a deterministic, viewer-friendly file.
  std::vector<TraceEvent> Sorted;
  Sorted.reserve(Buffer.size());
  for (size_t I = 0; I != Buffer.size(); ++I)
    Sorted.push_back(Buffer.event(I));
  std::stable_sort(
      Sorted.begin(), Sorted.end(),
      [](const TraceEvent &A, const TraceEvent &B) { return A.Ts < B.Ts; });

  fputs("{\n\"traceEvents\": [", Out);
  for (size_t I = 0; I != Sorted.size(); ++I) {
    const TraceEvent &E = Sorted[I];
    fputs(I ? ",\n " : "\n ", Out);
    // All events land on one virtual pid/tid: the simulated machine.
    // Names/categories are usually literals, but suite labels can reach
    // here through user-provided strings -- escape them all.
    fputs("{\"name\": ", Out);
    writeJsonStringEscaped(Out, E.Name);
    fputs(", \"cat\": ", Out);
    writeJsonStringEscaped(Out, E.Category);
    fprintf(Out, ", \"ph\": \"%s\", \"ts\": %.3f, \"pid\": 1, \"tid\": 1",
            phaseCode(E.Phase), toMicros(E.Ts));
    if (E.Phase == TracePhase::Complete)
      fprintf(Out, ", \"dur\": %.3f", toMicros(E.Dur));
    if (E.Phase == TracePhase::Instant)
      fputs(", \"s\": \"g\"", Out); // Global-scope instant.
    if (E.ArgName) {
      fputs(", \"args\": {", Out);
      writeJsonStringEscaped(Out, E.ArgName);
      fprintf(Out, ": %llu}", static_cast<unsigned long long>(E.Arg));
    }
    fputc('}', Out);
  }
  fputs(Buffer.size() ? "\n],\n" : "],\n", Out);
  fputs("\"displayTimeUnit\": \"ms\",\n", Out);
  fprintf(Out,
          "\"otherData\": {\"clock_hz\": %llu, \"events_recorded\": %llu, "
          "\"events_dropped\": %llu}\n}\n",
          static_cast<unsigned long long>(VirtualClock::kHz),
          static_cast<unsigned long long>(Buffer.recorded()),
          static_cast<unsigned long long>(Buffer.dropped()));
}

bool ChromeTraceWriter::writeFile(const TraceBuffer &Buffer,
                                  const std::string &Path) {
  FILE *Out = fopen(Path.c_str(), "w");
  if (!Out) {
    logError("obs", "cannot open trace output '%s'", Path.c_str());
    return false;
  }
  write(Buffer, Out);
  fclose(Out);
  return true;
}
