//===-- obs/Log.h - Leveled, category-tagged logging ------------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured-diagnostics facility replacing scattered fprintf/printf
/// call sites: every message carries a severity and a subsystem category
/// ("gc", "hpm", "vm", "harness", ...), is filtered against a process-wide
/// minimum level, and goes to a configurable sink (stderr by default).
/// Benches and examples expose the level as --log-level; the enabled()
/// check is a single integer compare so disabled levels cost nothing on
/// the paths that matter.
///
/// Threading: the level and sink are process-wide, set once at startup
/// (before any ParallelRunner threads exist) and then only read. Both are
/// relaxed atomics so concurrent experiments can log without racing the
/// configuration; message emission itself relies on stdio's per-FILE lock.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_OBS_LOG_H
#define HPMVM_OBS_LOG_H

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>

namespace hpmvm {

/// Message severities, least to most severe. Off disables everything.
enum class LogLevel : uint8_t { Trace, Debug, Info, Warn, Error, Off };

/// Process-wide logging configuration + emission.
class Log {
public:
  static void setLevel(LogLevel L);
  static LogLevel level();

  /// Redirects output (nullptr restores stderr).
  static void setSink(FILE *F);

  static bool enabled(LogLevel L) {
    return L >= MinLevel.load(std::memory_order_relaxed);
  }

  /// Emits "[level category] message\n" when \p L passes the filter.
  static void write(LogLevel L, const char *Category, const char *Fmt, ...)
      __attribute__((format(printf, 3, 4)));
  static void vwrite(LogLevel L, const char *Category, const char *Fmt,
                     va_list Args);

private:
  static std::atomic<LogLevel> MinLevel;
  static std::atomic<FILE *> Sink;
};

/// "error" -> LogLevel::Error etc.; \returns false on an unknown name.
bool parseLogLevel(const std::string &Name, LogLevel &Out);
const char *logLevelName(LogLevel L);

// Category-tagged convenience wrappers, printf-checked.
void logError(const char *Category, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));
void logWarn(const char *Category, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));
void logInfo(const char *Category, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));
void logDebug(const char *Category, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));
void logTrace(const char *Category, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace hpmvm

#endif // HPMVM_OBS_LOG_H
