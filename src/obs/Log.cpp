//===-- obs/Log.cpp -------------------------------------------------------===//

#include "obs/Log.h"

using namespace hpmvm;

std::atomic<LogLevel> Log::MinLevel{LogLevel::Info};
std::atomic<FILE *> Log::Sink{nullptr};

void Log::setLevel(LogLevel L) {
  MinLevel.store(L, std::memory_order_relaxed);
}
LogLevel Log::level() { return MinLevel.load(std::memory_order_relaxed); }
void Log::setSink(FILE *F) { Sink.store(F, std::memory_order_relaxed); }

void Log::write(LogLevel L, const char *Category, const char *Fmt, ...) {
  if (!enabled(L))
    return;
  va_list Args;
  va_start(Args, Fmt);
  vwrite(L, Category, Fmt, Args);
  va_end(Args);
}

void Log::vwrite(LogLevel L, const char *Category, const char *Fmt,
                 va_list Args) {
  if (!enabled(L))
    return;
  FILE *S = Sink.load(std::memory_order_relaxed);
  FILE *Out = S ? S : stderr;
  fprintf(Out, "[%s %s] ", logLevelName(L), Category);
  vfprintf(Out, Fmt, Args);
  fputc('\n', Out);
}

const char *hpmvm::logLevelName(LogLevel L) {
  switch (L) {
  case LogLevel::Trace:
    return "trace";
  case LogLevel::Debug:
    return "debug";
  case LogLevel::Info:
    return "info";
  case LogLevel::Warn:
    return "warn";
  case LogLevel::Error:
    return "error";
  case LogLevel::Off:
    return "off";
  }
  return "?";
}

bool hpmvm::parseLogLevel(const std::string &Name, LogLevel &Out) {
  for (LogLevel L : {LogLevel::Trace, LogLevel::Debug, LogLevel::Info,
                     LogLevel::Warn, LogLevel::Error, LogLevel::Off})
    if (Name == logLevelName(L)) {
      Out = L;
      return true;
    }
  return false;
}

#define HPMVM_LOG_FN(FnName, Level)                                           \
  void hpmvm::FnName(const char *Category, const char *Fmt, ...) {            \
    if (!Log::enabled(Level))                                                 \
      return;                                                                 \
    va_list Args;                                                             \
    va_start(Args, Fmt);                                                      \
    Log::vwrite(Level, Category, Fmt, Args);                                  \
    va_end(Args);                                                             \
  }

HPMVM_LOG_FN(logError, LogLevel::Error)
HPMVM_LOG_FN(logWarn, LogLevel::Warn)
HPMVM_LOG_FN(logInfo, LogLevel::Info)
HPMVM_LOG_FN(logDebug, LogLevel::Debug)
HPMVM_LOG_FN(logTrace, LogLevel::Trace)

#undef HPMVM_LOG_FN
