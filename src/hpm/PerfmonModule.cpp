//===-- hpm/PerfmonModule.cpp ---------------------------------------------===//

#include "hpm/PerfmonModule.h"

#include "obs/Obs.h"

#include <cassert>

using namespace hpmvm;

void PerfmonModule::startSampling(HpmEventKind Kind, uint64_t Interval,
                                  bool RandomizeLowBits) {
  PebsConfig Config = Unit.config();
  Config.SelectedEvent = Kind;
  Config.Interval = Interval;
  Config.RandomizeLowBits = RandomizeLowBits;
  Unit.configure(Config);
  Unit.start();
}

void PerfmonModule::stopSampling() { Unit.stop(); }

void PerfmonModule::attachObs(ObsContext &Obs) {
  Unit.attachObs(Obs);
  MInterruptsServiced = &Obs.metrics().counter("hpm.kernel.interrupts_serviced");
  MDelivered = &Obs.metrics().counter("hpm.kernel.samples_delivered");
}

void PerfmonModule::serviceInterrupt() {
  MInterruptsServiced->inc();
  DrainScratch.clear();
  Unit.drainInto(DrainScratch);
  KernelBuffer.insert(KernelBuffer.end(), DrainScratch.begin(),
                      DrainScratch.end());
}

size_t PerfmonModule::readSamples(PebsSample *Dest, size_t Max) {
  assert(Dest != nullptr || Max == 0);
  // A poll from user space always empties the debug store, whether or not
  // the overflow interrupt has fired yet; this is what lets the collector
  // thread's adaptive polling guarantee no samples are dropped.
  if (Unit.interruptPending() || KernelBuffer.empty())
    serviceInterrupt();
  size_t N = 0;
  while (N < Max && !KernelBuffer.empty()) {
    Dest[N++] = KernelBuffer.front();
    KernelBuffer.pop_front();
  }
  TotalDelivered += N;
  MDelivered->inc(N);
  return N;
}
