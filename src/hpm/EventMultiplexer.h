//===-- hpm/EventMultiplexer.h - Time-multiplexed event kinds --*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The P4 "allows only one event to be measured at a time" (paper
/// section 3.1), so the paper's system picks L1 misses and notes that a
/// TLB-driven variant did not improve results. This extension implements
/// the standard workaround used by modern profilers: *time-multiplexing*
/// -- rotate the sampled event kind on a fixed virtual-time slice and
/// scale each kind's sampled counts by the inverse of its duty cycle,
/// yielding simultaneous statistical views of L1, L2 and DTLB behaviour
/// from single-event hardware.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_HPM_EVENTMULTIPLEXER_H
#define HPMVM_HPM_EVENTMULTIPLEXER_H

#include "hpm/PerfmonModule.h"
#include "obs/Metrics.h"
#include "support/Types.h"
#include "support/VirtualClock.h"

#include <vector>

namespace hpmvm {

class ObsContext;
class TraceBuffer;

/// Multiplexing policy: which kinds to rotate through, each with its own
/// sampling interval (event kinds differ in frequency by orders of
/// magnitude) and the slice length.
struct MultiplexerConfig {
  struct Slot {
    HpmEventKind Kind;
    uint64_t Interval;
  };
  std::vector<Slot> Rotation = {{HpmEventKind::L1DMiss, 5000},
                                {HpmEventKind::DtlbMiss, 500}};
  /// Virtual time per slice (scaled like the polling window).
  double SliceMs = 0.5;
};

/// Rotates the PEBS-selected event kind and keeps duty-cycle-corrected
/// per-kind estimates.
class EventMultiplexer {
public:
  EventMultiplexer(PerfmonModule &Module, VirtualClock &Clock,
                   const MultiplexerConfig &Config = {});

  /// Starts sampling with the first slot.
  void start();

  /// Called once per collector poll (like the auto-interval controller):
  /// rotates to the next slot when the current slice has expired. The
  /// caller must have drained samples first so none are attributed to the
  /// wrong kind. \returns true if a rotation happened.
  bool onPoll(uint64_t SamplesSinceLastPoll);

  /// Stops sampling (final drain is the caller's job).
  void stop();

  HpmEventKind currentKind() const {
    return Config.Rotation[Slot].Kind;
  }
  uint64_t rotations() const { return Rotations; }

  /// Raw samples attributed to \p Kind across its slices.
  uint64_t samples(HpmEventKind Kind) const;

  /// Duty-cycle-corrected estimate of the total number of \p Kind events:
  /// samples * interval * (totalTime / timeSampledAsKind).
  double estimatedEvents(HpmEventKind Kind) const;

  /// Inverse duty cycle of \p Kind so far (>= 1): totalTime /
  /// timeSampledAsKind, including the live current slice. Multiply a
  /// per-period sample count by this to estimate the dedicated-counter
  /// equivalent. 1.0 for kinds not in the rotation or not yet sampled.
  double dutyCycleScale(HpmEventKind Kind) const;

  /// Registers mux.rotations / mux.samples counters and emits a
  /// "mux.rotate" trace instant per rotation.
  void attachObs(ObsContext &Obs);

private:
  size_t slotIndex(HpmEventKind Kind) const;

  PerfmonModule &Module;
  VirtualClock &Clock;
  MultiplexerConfig Config;
  size_t Slot = 0;
  Cycles SliceStart = 0;
  Cycles TotalStart = 0;
  uint64_t Rotations = 0;
  std::vector<uint64_t> Samples;  ///< Per rotation slot.
  std::vector<Cycles> ActiveTime; ///< Per rotation slot.
  bool Running = false;
  TraceBuffer *Trace = nullptr;
  Counter *MRotations = &Counter::sink();
  Counter *MSamples = &Counter::sink();
};

} // namespace hpmvm

#endif // HPMVM_HPM_EVENTMULTIPLEXER_H
