//===-- hpm/EventMultiplexer.cpp ------------------------------------------===//

#include "hpm/EventMultiplexer.h"

#include "obs/Obs.h"

#include <cassert>

using namespace hpmvm;

void EventMultiplexer::attachObs(ObsContext &Obs) {
  Trace = &Obs.trace();
  MRotations = &Obs.metrics().counter("mux.rotations");
  MSamples = &Obs.metrics().counter("mux.samples");
}

EventMultiplexer::EventMultiplexer(PerfmonModule &Module,
                                   VirtualClock &Clock,
                                   const MultiplexerConfig &Config)
    : Module(Module), Clock(Clock), Config(Config) {
  assert(!Config.Rotation.empty() && "nothing to multiplex");
  assert(Config.SliceMs > 0 && "slice must be positive");
  Samples.assign(Config.Rotation.size(), 0);
  ActiveTime.assign(Config.Rotation.size(), 0);
}

void EventMultiplexer::start() {
  assert(!Running && "multiplexer already running");
  Running = true;
  Slot = 0;
  SliceStart = TotalStart = Clock.now();
  Module.startSampling(Config.Rotation[0].Kind, Config.Rotation[0].Interval);
}

bool EventMultiplexer::onPoll(uint64_t SamplesSinceLastPoll) {
  assert(Running && "poll on a stopped multiplexer");
  Samples[Slot] += SamplesSinceLastPoll;
  MSamples->inc(SamplesSinceLastPoll);
  Cycles Now = Clock.now();
  if (VirtualClock::toSeconds(Now - SliceStart) * 1e3 < Config.SliceMs)
    return false;

  // Slice over: account the time, rotate to the next kind. The hardware
  // can only hold one event, so this is a full stop/reprogram/start.
  ActiveTime[Slot] += Now - SliceStart;
  Slot = (Slot + 1) % Config.Rotation.size();
  Module.stopSampling();
  Module.startSampling(Config.Rotation[Slot].Kind,
                       Config.Rotation[Slot].Interval);
  SliceStart = Now;
  ++Rotations;
  MRotations->inc();
  if (Trace)
    Trace->instant(Now, "mux.rotate", "hpm", "slot",
                   static_cast<uint64_t>(Slot));
  return true;
}

void EventMultiplexer::stop() {
  if (!Running)
    return;
  Running = false;
  ActiveTime[Slot] += Clock.now() - SliceStart;
  Module.stopSampling();
}

size_t EventMultiplexer::slotIndex(HpmEventKind Kind) const {
  for (size_t I = 0; I != Config.Rotation.size(); ++I)
    if (Config.Rotation[I].Kind == Kind)
      return I;
  return Config.Rotation.size();
}

uint64_t EventMultiplexer::samples(HpmEventKind Kind) const {
  size_t I = slotIndex(Kind);
  return I < Samples.size() ? Samples[I] : 0;
}

double EventMultiplexer::dutyCycleScale(HpmEventKind Kind) const {
  size_t I = slotIndex(Kind);
  if (I >= Samples.size())
    return 1.0;
  Cycles Now = Clock.now();
  Cycles Active = ActiveTime[I];
  if (Running && I == Slot)
    Active += Now - SliceStart;
  Cycles Total = Now - TotalStart;
  if (Active == 0 || Total == 0)
    return 1.0;
  return static_cast<double>(Total) / static_cast<double>(Active);
}

double EventMultiplexer::estimatedEvents(HpmEventKind Kind) const {
  size_t I = slotIndex(Kind);
  if (I >= Samples.size() || ActiveTime[I] == 0)
    return 0.0;
  Cycles Total = Clock.now() - TotalStart;
  double DutyCycle = static_cast<double>(ActiveTime[I]) /
                     static_cast<double>(Total ? Total : 1);
  return static_cast<double>(Samples[I]) *
         static_cast<double>(Config.Rotation[I].Interval) /
         (DutyCycle > 0 ? DutyCycle : 1.0);
}
