//===-- hpm/Sample.h - 40-byte PEBS sample record ---------------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PEBS sample record. The paper: "One sample on the P4 platform has a
/// size of 40 bytes. It contains the program counter (EIP) where the sampled
/// event occurred and the values of all registers at that time." The VM only
/// analyzes EIP (as the paper does); by convention the simulated machine
/// stashes the faulting data address in EAX so tests can verify precision.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_HPM_SAMPLE_H
#define HPMVM_HPM_SAMPLE_H

#include "support/Types.h"

namespace hpmvm {

/// One precise event-based sample: EIP + EFLAGS + the 8 IA-32 GP registers.
struct PebsSample {
  Address Eip = 0;
  uint32_t Eflags = 0;
  /// EAX, EBX, ECX, EDX, ESI, EDI, EBP, ESP. Regs[0] (EAX) carries the
  /// faulting data address in this simulation.
  uint32_t Regs[8] = {};
};

static_assert(sizeof(PebsSample) == 40,
              "the P4 PEBS record is exactly 40 bytes");

/// Number of 32-bit ints per sample when marshalled through the native
/// library's pre-allocated int[] array.
inline constexpr size_t kSampleInts = sizeof(PebsSample) / sizeof(uint32_t);

/// A borrowed view over a contiguous run of marshalled samples (the native
/// library's pre-allocated buffer). Zero-copy: consumers read the records
/// in place; the view is invalidated by the next drain into the owning
/// buffer. All samples in one batch were taken while the same event kind
/// was programmed (under multiplexing the rotation only advances between
/// polls), so a batch never mixes event kinds.
struct SampleBatch {
  const PebsSample *Data = nullptr;
  size_t N = 0;
  /// The VM shard whose PMU context produced this batch (0 outside fleet
  /// runs). Carried on the batch view, not in the 40-byte hardware record:
  /// the debug-store buffer is per-tenant, so a batch never mixes tenants.
  TenantId Tenant = 0;

  const PebsSample *data() const { return Data; }
  size_t size() const { return N; }
  bool empty() const { return N == 0; }
  const PebsSample &operator[](size_t I) const { return Data[I]; }
  const PebsSample *begin() const { return Data; }
  const PebsSample *end() const { return Data + N; }
};

} // namespace hpmvm

#endif // HPMVM_HPM_SAMPLE_H
