//===-- hpm/NativeSampleLibrary.cpp ---------------------------------------===//

#include "hpm/NativeSampleLibrary.h"

#include "obs/Obs.h"

#include <cassert>

using namespace hpmvm;

NativeSampleLibrary::NativeSampleLibrary(PerfmonModule &Module,
                                         size_t ArrayInts)
    : Module(Module), Buffer(ArrayInts / kSampleInts) {
  assert(ArrayInts >= kSampleInts && "array cannot hold even one sample");
}

void NativeSampleLibrary::attachObs(ObsContext &Obs) {
  MReadCalls = &Obs.metrics().counter("hpm.native.read_calls");
  MCopied = &Obs.metrics().counter("hpm.native.samples_copied");
  MCopyCycles = &Obs.metrics().counter("hpm.native.copy_cycles");
}

size_t NativeSampleLibrary::readIntoArray() {
  // Disable GC for the short period while samples are copied; no allocation
  // happens on this path, so the lock can never deadlock against a
  // collection triggered from here.
  if (GcLock)
    GcLock(true);
  // One kernel-side fill of the pre-allocated buffer; no per-sample JNI
  // calls and no second user-space copy (batch() reads it in place).
  static_assert(sizeof(PebsSample) == kSampleInts * sizeof(uint32_t));
  size_t N = Module.readSamples(Buffer.data(), Buffer.size());
  if (GcLock)
    GcLock(false);

  ValidSamples = N;
  Cycles Cost = Costs.PerCall + Costs.PerSample * N;
  TotalCost += Cost;
  MReadCalls->inc();
  MCopied->inc(N);
  MCopyCycles->inc(Cost);
  if (Clock)
    Clock->advance(Cost);
  return N;
}

PebsSample NativeSampleLibrary::decode(size_t I) const {
  assert(I < ValidSamples && "decoding past the marshalled samples");
  return Buffer[I];
}
