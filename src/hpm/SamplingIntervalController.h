//===-- hpm/SamplingIntervalController.h - "auto" interval mode -*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's fully autonomous mode: "the only monitoring parameter is
/// samples/sec -- in practice we found that a default of 200 samples/sec
/// provides reasonable accuracy and low overhead". This controller observes
/// the achieved sample rate and multiplicatively adjusts the PEBS interval
/// toward the target. Benches that scale workloads down scale the target
/// up correspondingly (see DESIGN.md section 6).
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_HPM_SAMPLINGINTERVALCONTROLLER_H
#define HPMVM_HPM_SAMPLINGINTERVALCONTROLLER_H

#include "hpm/PebsUnit.h"
#include "support/Types.h"
#include "support/VirtualClock.h"

namespace hpmvm {

class DecisionJournal;
class ObsContext;
class TraceBuffer;

/// Auto-interval policy parameters.
struct AutoIntervalConfig {
  /// Target sample rate in samples per virtual second. Paper default: 200.
  double TargetSamplesPerSec = 200.0;
  uint64_t MinInterval = 2000;
  uint64_t MaxInterval = 4000000;
  /// Clamp on the per-adjustment multiplicative step.
  double MaxStep = 4.0;
  /// Minimum virtual time between adjustments, ms (scaled to the scaled
  /// workloads, like the collector's polling window).
  double AdjustPeriodMs = 1.0;
};

/// Adjusts PebsUnit::interval() to track a samples/sec target.
class SamplingIntervalController {
public:
  SamplingIntervalController(PebsUnit &Unit, VirtualClock &Clock,
                             const AutoIntervalConfig &Config = {});

  /// Called after each collector poll: re-estimates the sample rate over the
  /// last adjustment period and retunes the interval.
  void onPoll();

  /// Registers the adjustment counter / current-interval gauge, journals
  /// a SamplingPolicy decision per retarget, and emits a trace instant.
  void attachObs(ObsContext &Obs);

  uint64_t adjustments() const { return Adjustments; }
  const AutoIntervalConfig &config() const { return Config; }

private:
  PebsUnit &Unit;
  VirtualClock &Clock;
  AutoIntervalConfig Config;
  Cycles LastAdjustAt;
  uint64_t LastSampleCount;
  uint64_t Adjustments = 0;
  TraceBuffer *Trace = nullptr;
  DecisionJournal *Journal = nullptr;
  Counter *MAdjustments = &Counter::sink();
  Gauge *MInterval = &Gauge::sink();
};

} // namespace hpmvm

#endif // HPMVM_HPM_SAMPLINGINTERVALCONTROLLER_H
