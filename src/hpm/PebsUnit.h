//===-- hpm/PebsUnit.h - Precise event-based sampling unit -----*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulation of the Pentium 4 precise event-based sampling (PEBS)
/// mechanism:
///   - event detectors count every occurrence of each event kind ("normal
///     counting" mode: totals readable after execution);
///   - exactly one event kind can be selected for sampling at a time;
///   - an interval counter is decremented per selected event; when it hits
///     zero a microcode routine stores a 40-byte sample (EIP + registers)
///     into a buffer supplied by the OS, and the counter is re-armed with
///     the interval whose low 8 bits are randomized (the paper randomizes
///     8 low-order bits to avoid sampling the same locations repeatedly);
///   - an interrupt is raised only when the buffer is filled to a
///     configured mark, keeping sampling overhead low.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_HPM_PEBSUNIT_H
#define HPMVM_HPM_PEBSUNIT_H

#include "hpm/Sample.h"
#include "memsim/MemoryEvent.h"
#include "obs/Metrics.h"
#include "support/Random.h"
#include "support/Types.h"
#include "support/VirtualClock.h"

#include <vector>

namespace hpmvm {

class ObsContext;

/// PEBS configuration (what the kernel module programs into the MSRs).
struct PebsConfig {
  HpmEventKind SelectedEvent = HpmEventKind::L1DMiss;
  /// Sample every Interval-th occurrence of the selected event.
  uint64_t Interval = 100000;
  /// Randomize the low 8 bits of the interval (paper section 6.1).
  bool RandomizeLowBits = true;
  /// Capacity of the CPU's debug-store sample buffer, in samples.
  size_t BufferCapacity = 2048;
  /// Raise the buffer-overflow interrupt when the buffer reaches this
  /// fraction of its capacity.
  double InterruptFillMark = 0.9;
  /// Cycles the sampling microcode steals per stored sample.
  Cycles MicrocodeCyclesPerSample = 500;
};

/// Counting + sampling state of the performance monitoring unit.
class PebsUnit : public MemoryEventListener {
public:
  explicit PebsUnit(uint64_t Seed = 0x5eed);

  /// Programs the unit. Allowed while stopped only.
  void configure(const PebsConfig &Config);

  /// Starts/stops event sampling. Counting of raw event totals is always on
  /// (the event detectors run continuously).
  void start();
  void stop();
  bool isRunning() const { return Running; }

  /// Changes the sampling interval on the fly (used by the auto-interval
  /// controller). Takes effect when the counter is next re-armed.
  void setInterval(uint64_t Interval);
  uint64_t interval() const { return Config.Interval; }

  /// Shared-PMU sample gate. When closed, the event detectors keep
  /// counting (totals stay exact) but the sampling countdown is frozen --
  /// the unit models a PMU context that is currently switched out while
  /// another tenant holds the one physical sampling facility. Open by
  /// default, so single-VM runs never see the gate; the PmuArbiter opens
  /// exactly one tenant's gate at a time in fleet runs.
  void setSampleGate(bool Open) { GateOpen = Open; }
  bool sampleGateOpen() const { return GateOpen; }

  /// If set, microcode sample-store cycles advance this clock directly.
  void setClock(VirtualClock *C) { Clock = C; }

  /// Registers this unit's metrics (hpm.samples_collected / dropped /
  /// buffer-overflow interrupts) with \p Obs. Unattached units count into
  /// the metric sinks.
  void attachObs(ObsContext &Obs);

  // MemoryEventListener: called by the memory hierarchy for every event.
  void onMemoryEvent(HpmEventKind Kind, Address Pc, Address DataAddr) override;

  /// Moves all buffered samples into \p Out (appending) and clears the
  /// interrupt. Models the kernel interrupt handler / poll path reading the
  /// debug store area.
  void drainInto(std::vector<PebsSample> &Out);

  bool interruptPending() const { return InterruptPending; }
  size_t bufferedSamples() const { return Buffer.size(); }

  /// Raw event totals ("normal counting" mode), indexed by HpmEventKind.
  uint64_t eventCount(HpmEventKind Kind) const {
    return EventCounts[static_cast<size_t>(Kind)];
  }
  uint64_t samplesTaken() const { return SamplesTaken; }
  uint64_t samplesDropped() const { return SamplesDropped; }
  Cycles microcodeCycles() const { return MicrocodeCycles; }
  const PebsConfig &config() const { return Config; }

  /// Zeroes counters and buffer (between experiments).
  void reset();

private:
  uint64_t nextCountdown();

  PebsConfig Config;
  SplitMix64 Rng;
  VirtualClock *Clock = nullptr;
  bool Running = false;
  bool GateOpen = true;
  uint64_t Countdown = 0;
  std::vector<PebsSample> Buffer;
  bool InterruptPending = false;
  uint64_t EventCounts[3] = {};
  uint64_t SamplesTaken = 0;
  uint64_t SamplesDropped = 0;
  Cycles MicrocodeCycles = 0;
  Counter *MSamples = &Counter::sink();
  Counter *MDropped = &Counter::sink();
  Counter *MInterrupts = &Counter::sink();
};

} // namespace hpmvm

#endif // HPMVM_HPM_PEBSUNIT_H
