//===-- hpm/SampleCollector.h - Adaptive polling collector -----*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulation of the paper's Java collector thread (part 3 of the system):
/// a thread that polls the kernel device driver via the native library for
/// new samples. "The polling interval is adaptively set between 10ms and
/// 1000ms depending on the size of the sample buffer and the sampling rate.
/// This makes sure that no samples will be dropped due to a full sample
/// buffer."
///
/// Threading substitution (documented in DESIGN.md): instead of a
/// preemptive OS thread, the collector is cooperatively scheduled off the
/// virtual clock -- the VM execution loop calls maybePoll() at safepoints.
/// This keeps every experiment deterministic while preserving the polling
/// policy, the batching behaviour (the paper's Figure 7 shows
/// stepwise-constant curves caused by batch processing), and the cycle
/// costs.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_HPM_SAMPLECOLLECTOR_H
#define HPMVM_HPM_SAMPLECOLLECTOR_H

#include "hpm/NativeSampleLibrary.h"
#include "support/Types.h"
#include "support/VirtualClock.h"

#include <functional>

namespace hpmvm {

class ObsContext;
class SelfProfiler;
class TraceBuffer;

/// Collector policy + cost parameters.
struct SampleCollectorConfig {
  double MinPollMs = 10.0;
  double MaxPollMs = 1000.0;
  /// Grow the polling interval when a poll returns less than this fraction
  /// of buffer capacity...
  double LowFill = 0.05;
  /// ...and shrink it when a poll returns more than this fraction.
  double HighFill = 0.50;
  Cycles PollCost = 25000; ///< Thread wakeup + JNI poll when empty.
};

/// Cooperative collector thread draining samples and delivering them in
/// batches to a consumer (the HpmMonitor). Delivery is zero-copy: the
/// consumer receives a view over the native library's marshalled buffer,
/// valid only for the duration of the call.
class SampleCollector {
public:
  using Consumer = std::function<void(const PebsSample *Samples, size_t N)>;

  SampleCollector(NativeSampleLibrary &Library, VirtualClock &Clock,
                  const SampleCollectorConfig &Config = {});

  void setConsumer(Consumer C) { Deliver = std::move(C); }

  /// Registers polling metrics (polls, empty polls, batch-size histogram,
  /// interval changes) and starts emitting per-poll trace spans plus
  /// interval-retarget instants into \p Obs's trace buffer.
  void attachObs(ObsContext &Obs);

  /// Polls if the adaptive deadline has passed. Called from VM safepoints.
  /// \returns the number of samples delivered (0 if not due or none ready).
  size_t maybePoll();

  /// Unconditional poll; used at program exit so no tail samples are lost.
  size_t pollNow();

  double pollIntervalMs() const { return IntervalMs; }
  uint64_t polls() const { return Polls; }
  uint64_t samplesDelivered() const { return Delivered; }
  Cycles overheadCycles() const { return Overhead; }

private:
  void adaptInterval(size_t BatchSize);

  NativeSampleLibrary &Library;
  VirtualClock &Clock;
  SampleCollectorConfig Config;
  Consumer Deliver;
  double IntervalMs;
  Cycles NextPollAt = 0;
  uint64_t Polls = 0;
  uint64_t Delivered = 0;
  Cycles Overhead = 0;
  TraceBuffer *Trace = nullptr;
  SelfProfiler *Prof = nullptr; ///< Set only when --self-profile is on.
  Counter *MPolls = &Counter::sink();
  Counter *MEmptyPolls = &Counter::sink();
  Counter *MDelivered = &Counter::sink();
  Counter *MIntervalChanges = &Counter::sink();
  Histogram *MBatch = &Histogram::sink();
};

} // namespace hpmvm

#endif // HPMVM_HPM_SAMPLECOLLECTOR_H
