//===-- hpm/SamplingIntervalController.cpp --------------------------------===//

#include "hpm/SamplingIntervalController.h"

#include "obs/Obs.h"

#include <cassert>

using namespace hpmvm;

SamplingIntervalController::SamplingIntervalController(
    PebsUnit &Unit, VirtualClock &Clock, const AutoIntervalConfig &Config)
    : Unit(Unit), Clock(Clock), Config(Config), LastAdjustAt(Clock.now()),
      LastSampleCount(Unit.samplesTaken()) {
  assert(Config.TargetSamplesPerSec > 0 && "target rate must be positive");
  assert(Config.MinInterval > 0 && Config.MinInterval <= Config.MaxInterval &&
         "interval bounds are inverted");
}

void SamplingIntervalController::attachObs(ObsContext &Obs) {
  Trace = &Obs.trace();
  Journal = &Obs.journal();
  MAdjustments = &Obs.metrics().counter("hpm.interval_adjustments");
  MInterval = &Obs.metrics().gauge("hpm.sampling_interval");
  MInterval->set(Unit.interval());
}

void SamplingIntervalController::onPoll() {
  Cycles Now = Clock.now();
  double DtSec = VirtualClock::toSeconds(Now - LastAdjustAt);
  if (DtSec * 1000.0 < Config.AdjustPeriodMs)
    return;

  uint64_t Taken = Unit.samplesTaken();
  uint64_t NewSamples = Taken - LastSampleCount;
  double ObservedRate = static_cast<double>(NewSamples) / DtSec;
  LastAdjustAt = Now;
  LastSampleCount = Taken;

  // interval' = interval * observed/target: too many samples -> widen the
  // interval, too few -> tighten it. Clamp the step so one noisy period
  // cannot swing the interval wildly. With zero samples this period, halve
  // the interval (bounded exploration toward more samples).
  double Step = NewSamples == 0
                    ? 0.5
                    : ObservedRate / Config.TargetSamplesPerSec;
  if (Step > Config.MaxStep)
    Step = Config.MaxStep;
  if (Step < 1.0 / Config.MaxStep)
    Step = 1.0 / Config.MaxStep;

  double NewInterval = static_cast<double>(Unit.interval()) * Step;
  if (NewInterval < static_cast<double>(Config.MinInterval))
    NewInterval = static_cast<double>(Config.MinInterval);
  if (NewInterval > static_cast<double>(Config.MaxInterval))
    NewInterval = static_cast<double>(Config.MaxInterval);
  uint64_t OldInterval = Unit.interval();
  Unit.setInterval(static_cast<uint64_t>(NewInterval));
  ++Adjustments;
  MAdjustments->inc();
  MInterval->set(Unit.interval());
  if (Trace)
    Trace->instant(Now, "pebs.interval_retarget", "hpm", "interval",
                   Unit.interval());
  if (Journal && Unit.interval() != OldInterval)
    Journal->append({.Ts = Now,
                     .Kind = DecisionKind::SamplingPolicy,
                     .Consumer = "hpm",
                     .Action = "interval_retarget",
                     .Rate = ObservedRate,
                     .Baseline = Config.TargetSamplesPerSec,
                     .Value = Unit.interval()});
}
