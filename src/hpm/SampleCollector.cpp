//===-- hpm/SampleCollector.cpp -------------------------------------------===//

#include "hpm/SampleCollector.h"

#include "obs/Obs.h"

#include <cassert>

using namespace hpmvm;

SampleCollector::SampleCollector(NativeSampleLibrary &Library,
                                 VirtualClock &Clock,
                                 const SampleCollectorConfig &Config)
    : Library(Library), Clock(Clock), Config(Config),
      IntervalMs(Config.MinPollMs) {
  assert(Config.MinPollMs > 0 && Config.MinPollMs <= Config.MaxPollMs &&
         "polling interval bounds are inverted");
  NextPollAt = Clock.now() + VirtualClock::fromMillis(IntervalMs);
}

void SampleCollector::attachObs(ObsContext &Obs) {
  Trace = &Obs.trace();
  if (Obs.selfProfiler().enabled())
    Prof = &Obs.selfProfiler();
  MPolls = &Obs.metrics().counter("collector.polls");
  MEmptyPolls = &Obs.metrics().counter("collector.empty_polls");
  MDelivered = &Obs.metrics().counter("collector.samples_delivered");
  MIntervalChanges = &Obs.metrics().counter("collector.interval_changes");
  MBatch = &Obs.metrics().histogram("collector.batch_samples");
}

size_t SampleCollector::maybePoll() {
  if (Clock.now() < NextPollAt)
    return 0;
  return pollNow();
}

size_t SampleCollector::pollNow() {
  ++Polls;
  MPolls->inc();
  Cycles Before = Clock.now();
  Clock.advance(Config.PollCost);
  // Self-profiling (opt-in): the drain stage is the readIntoArray call
  // alone; the monitor times its own downstream stages for the same batch
  // (the timingBatch() decision made here is sticky through delivery).
  bool Timed = Prof && Prof->beginBatch();
  uint64_t DrainT0 = Timed ? SelfProfiler::nowNs() : 0;
  size_t N = Library.readIntoArray();
  if (Timed)
    Prof->recordStage(PipelineStage::Drain, SelfProfiler::nowNs() - DrainT0);
  if (N && Deliver) {
    // Hand the consumer the library's marshalled buffer in place (one
    // drain, zero re-copies); the view is consumed synchronously before
    // the next poll can overwrite it. The consumer charges its own (much
    // larger) per-sample processing cost.
    SampleBatch Batch = Library.batch();
    Deliver(Batch.data(), Batch.size());
  }
  Delivered += N;
  MDelivered->inc(N);
  if (!N)
    MEmptyPolls->inc();
  MBatch->record(N);
  Overhead += Clock.now() - Before;
  if (Trace)
    Trace->complete(Before, Clock.now() - Before, "collector.poll",
                    "collector", "samples", N);
  adaptInterval(N);
  NextPollAt = Clock.now() + VirtualClock::fromMillis(IntervalMs);
  return N;
}

void SampleCollector::adaptInterval(size_t BatchSize) {
  double Old = IntervalMs;
  double Fill = static_cast<double>(BatchSize) /
                static_cast<double>(Library.capacitySamples());
  if (Fill > Config.HighFill)
    IntervalMs *= 0.5;
  else if (Fill < Config.LowFill)
    IntervalMs *= 2.0;
  if (IntervalMs < Config.MinPollMs)
    IntervalMs = Config.MinPollMs;
  if (IntervalMs > Config.MaxPollMs)
    IntervalMs = Config.MaxPollMs;
  if (IntervalMs != Old) {
    MIntervalChanges->inc();
    if (Trace)
      Trace->instant(Clock.now(), "collector.interval_retarget", "collector",
                     "interval_us", static_cast<uint64_t>(IntervalMs * 1e3));
  }
}
