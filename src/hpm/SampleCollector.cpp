//===-- hpm/SampleCollector.cpp -------------------------------------------===//

#include "hpm/SampleCollector.h"

#include <cassert>

using namespace hpmvm;

SampleCollector::SampleCollector(NativeSampleLibrary &Library,
                                 VirtualClock &Clock,
                                 const SampleCollectorConfig &Config)
    : Library(Library), Clock(Clock), Config(Config),
      IntervalMs(Config.MinPollMs) {
  assert(Config.MinPollMs > 0 && Config.MinPollMs <= Config.MaxPollMs &&
         "polling interval bounds are inverted");
  NextPollAt = Clock.now() + VirtualClock::fromMillis(IntervalMs);
}

size_t SampleCollector::maybePoll() {
  if (Clock.now() < NextPollAt)
    return 0;
  return pollNow();
}

size_t SampleCollector::pollNow() {
  ++Polls;
  Cycles Before = Clock.now();
  Clock.advance(Config.PollCost);
  size_t N = Library.readIntoArray();
  if (N && Deliver) {
    // Decode the int[] back into sample records for the consumer. The
    // consumer charges its own (much larger) per-sample processing cost.
    static thread_local std::vector<PebsSample> Batch;
    Batch.clear();
    for (size_t I = 0; I != N; ++I)
      Batch.push_back(Library.decode(I));
    Deliver(Batch.data(), Batch.size());
  }
  Delivered += N;
  Overhead += Clock.now() - Before;
  adaptInterval(N);
  NextPollAt = Clock.now() + VirtualClock::fromMillis(IntervalMs);
  return N;
}

void SampleCollector::adaptInterval(size_t BatchSize) {
  double Fill = static_cast<double>(BatchSize) /
                static_cast<double>(Library.capacitySamples());
  if (Fill > Config.HighFill)
    IntervalMs *= 0.5;
  else if (Fill < Config.LowFill)
    IntervalMs *= 2.0;
  if (IntervalMs < Config.MinPollMs)
    IntervalMs = Config.MinPollMs;
  if (IntervalMs > Config.MaxPollMs)
    IntervalMs = Config.MaxPollMs;
}
