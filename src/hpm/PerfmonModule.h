//===-- hpm/PerfmonModule.h - "Kernel module" layer -------------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulation of the HP perfmon loadable kernel module (part 1 of the
/// paper's three-part system). It owns access to the performance counter
/// hardware, hides platform-specific details from the VM, services the
/// buffer-overflow interrupt by moving samples from the CPU's debug store
/// into a kernel buffer, and exposes a read interface user space polls.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_HPM_PERFMONMODULE_H
#define HPMVM_HPM_PERFMONMODULE_H

#include "hpm/PebsUnit.h"
#include "hpm/PmuArbiter.h"
#include "hpm/Sample.h"

#include <deque>

namespace hpmvm {

class ObsContext;

/// Kernel-side sampling service over the PEBS hardware.
class PerfmonModule {
public:
  explicit PerfmonModule(PebsUnit &Unit) : Unit(Unit) {}

  /// Shared-PMU (fleet) mode: joins \p A, which from now on owns the
  /// unit's sample gate. This module keeps programming its tenant's PMU
  /// *context* (event selection, interval) exactly as in single-VM mode;
  /// whether that context is loaded into the physical PMU is the
  /// arbiter's round-robin decision. \returns the assigned tenant id.
  TenantId joinArbiter(PmuArbiter &A) {
    Arbiter = &A;
    Tenant = A.add(Unit);
    return Tenant;
  }

  /// The owning tenant's cumulative PMU tenancy; zeros outside fleet mode
  /// (monitors treat a non-advancing share as "fully granted").
  PmuShare pmuShare() const {
    return Arbiter ? Arbiter->shareOf(Tenant) : PmuShare{};
  }

  TenantId tenant() const { return Tenant; }
  PmuArbiter *arbiter() { return Arbiter; }

  /// Programs and starts sampling of \p Kind every \p Interval events.
  /// Mirrors pfm_self_start(); the platform-specific MSR programming is
  /// hidden behind this call, as the paper requires of the interface.
  void startSampling(HpmEventKind Kind, uint64_t Interval,
                     bool RandomizeLowBits = true);

  void stopSampling();
  bool isSampling() const { return Unit.isRunning(); }

  /// Copies up to \p Max samples into \p Dest, consuming them. Services the
  /// hardware interrupt (drains the debug store) first if one is pending or
  /// if the kernel buffer is empty. \returns the number of samples copied.
  size_t readSamples(PebsSample *Dest, size_t Max);

  /// \returns the number of samples currently available kernel-side
  /// (debug store + kernel buffer).
  size_t samplesAvailable() const {
    return KernelBuffer.size() + Unit.bufferedSamples();
  }

  /// Registers kernel-side metrics (interrupts serviced, samples
  /// delivered to user space) and forwards to the PEBS unit.
  void attachObs(ObsContext &Obs);

  PebsUnit &unit() { return Unit; }
  const PebsUnit &unit() const { return Unit; }
  uint64_t totalDelivered() const { return TotalDelivered; }

private:
  /// The interrupt handler: moves debug-store contents into KernelBuffer.
  void serviceInterrupt();

  PebsUnit &Unit;
  PmuArbiter *Arbiter = nullptr;
  TenantId Tenant = 0;
  std::deque<PebsSample> KernelBuffer;
  std::vector<PebsSample> DrainScratch;
  uint64_t TotalDelivered = 0;
  Counter *MInterruptsServiced = &Counter::sink();
  Counter *MDelivered = &Counter::sink();
};

} // namespace hpmvm

#endif // HPMVM_HPM_PERFMONMODULE_H
