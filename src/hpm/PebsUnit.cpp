//===-- hpm/PebsUnit.cpp --------------------------------------------------===//

#include "hpm/PebsUnit.h"

#include "obs/Obs.h"

#include <cassert>

using namespace hpmvm;

PebsUnit::PebsUnit(uint64_t Seed) : Rng(Seed) {}

void PebsUnit::attachObs(ObsContext &Obs) {
  MSamples = &Obs.metrics().counter("hpm.samples_collected");
  MDropped = &Obs.metrics().counter("hpm.samples_dropped");
  MInterrupts = &Obs.metrics().counter("hpm.buffer_overflow_interrupts");
}

void PebsUnit::configure(const PebsConfig &NewConfig) {
  assert(!Running && "reconfiguring a running PEBS unit");
  assert(NewConfig.Interval > 0 && "sampling interval must be positive");
  Config = NewConfig;
  Buffer.reserve(Config.BufferCapacity);
}

void PebsUnit::start() {
  assert(!Running && "PEBS unit already running");
  Running = true;
  Countdown = nextCountdown();
}

void PebsUnit::stop() { Running = false; }

void PebsUnit::setInterval(uint64_t Interval) {
  assert(Interval > 0 && "sampling interval must be positive");
  Config.Interval = Interval;
}

uint64_t PebsUnit::nextCountdown() {
  // Randomize the 8 low-order bits so we do not repeatedly sample the same
  // program locations when event arrivals are periodic. Intervals that are
  // not meaningfully larger than the randomized range are used as-is
  // (clearing their high bits would destroy the interval entirely).
  if (!Config.RandomizeLowBits || Config.Interval <= 512)
    return Config.Interval;
  uint64_t Base = Config.Interval & ~0xffull;
  uint64_t Value = Base | (Rng.next() & 0xffull);
  return Value ? Value : 1;
}

void PebsUnit::onMemoryEvent(HpmEventKind Kind, Address Pc, Address DataAddr) {
  ++EventCounts[static_cast<size_t>(Kind)];
  if (!Running || !GateOpen || Kind != Config.SelectedEvent)
    return;
  assert(Countdown > 0 && "countdown must be armed while running");
  if (--Countdown != 0)
    return;
  Countdown = nextCountdown();

  // The microcode routine stores EIP + register state into the debug store
  // buffer. We model the register file by stashing the data address in EAX.
  if (Buffer.size() >= Config.BufferCapacity) {
    ++SamplesDropped;
    MDropped->inc();
    return;
  }
  PebsSample S;
  S.Eip = Pc;
  S.Regs[0] = DataAddr;
  Buffer.push_back(S);
  ++SamplesTaken;
  MSamples->inc();
  MicrocodeCycles += Config.MicrocodeCyclesPerSample;
  if (Clock)
    Clock->advance(Config.MicrocodeCyclesPerSample);

  if (!InterruptPending &&
      static_cast<double>(Buffer.size()) >=
          Config.InterruptFillMark * static_cast<double>(Config.BufferCapacity)) {
    InterruptPending = true;
    MInterrupts->inc();
  }
}

void PebsUnit::drainInto(std::vector<PebsSample> &Out) {
  Out.insert(Out.end(), Buffer.begin(), Buffer.end());
  Buffer.clear();
  InterruptPending = false;
}

void PebsUnit::reset() {
  Buffer.clear();
  InterruptPending = false;
  EventCounts[0] = EventCounts[1] = EventCounts[2] = 0;
  SamplesTaken = 0;
  SamplesDropped = 0;
  MicrocodeCycles = 0;
  Countdown = Running ? nextCountdown() : 0;
}
