//===-- hpm/PmuArbiter.cpp ------------------------------------------------===//

#include "hpm/PmuArbiter.h"

#include "hpm/PebsUnit.h"

#include <cassert>

using namespace hpmvm;

PmuArbiter::PmuArbiter(const PmuArbiterConfig &Config) : Config(Config) {
  assert(Config.SliceMs > 0 && "grant slice must be positive");
  SliceCycles = VirtualClock::fromMillis(Config.SliceMs);
  if (SliceCycles == 0)
    SliceCycles = 1;
}

TenantId PmuArbiter::add(PebsUnit &Unit) {
  assert(!Started && "tenants join before arbitration starts");
  Units.push_back(&Unit);
  Shares.push_back({});
  return static_cast<TenantId>(Units.size() - 1);
}

void PmuArbiter::start() {
  assert(!Units.empty() && "arbitrating zero tenants");
  Started = true;
  Current = 0;
  SliceUsed = 0;
  for (TenantId T = 0; T != Units.size(); ++T)
    Units[T]->setSampleGate(granted(T));
}

bool PmuArbiter::beginQuantum(TenantId T) {
  assert(Started && T < Units.size());
  bool G = granted(T);
  Units[T]->setSampleGate(G);
  return G;
}

void PmuArbiter::endQuantum(TenantId T, Cycles Delta) {
  assert(Started && T < Units.size());
  Shares[T].Executed += Delta;
  if (granted(T))
    Shares[T].Granted += Delta;
  if (Units.size() <= 1)
    return;
  SliceUsed += Delta;
  while (SliceUsed >= SliceCycles) {
    SliceUsed -= SliceCycles;
    Current = (Current + 1) % static_cast<TenantId>(Units.size());
    ++Rotations;
  }
}

double PmuArbiter::grantedFraction(TenantId T) const {
  const PmuShare &S = Shares[T];
  return S.Executed ? static_cast<double>(S.Granted) /
                          static_cast<double>(S.Executed)
                    : 1.0;
}
