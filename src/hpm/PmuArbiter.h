//===-- hpm/PmuArbiter.h - One physical PMU, N tenants ----------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Time-multiplexes the one physical sampling facility across the VM
/// shards of a fleet run. Each tenant keeps its own PebsUnit -- its saved
/// PMU context: event selection, interval counter, debug-store buffer --
/// and the arbiter decides whose context is *loaded*, i.e. whose sample
/// gate is open. The grant rotates fair round-robin after every
/// SliceMs of executed fleet time; context switches happen only at quantum
/// (request) boundaries, like per-thread PMU virtualization at kernel
/// scheduling points.
///
/// Event *counting* is per-tenant and always on (the simulated detectors
/// are free), so only sampling is contended -- which is exactly the
/// scaling question: do HPM-guided optimizations still pay off when a
/// tenant sees only 1/N of the sampling bandwidth? To keep downstream rate
/// estimates unbiased, the arbiter tracks per-tenant executed vs.
/// PMU-granted cycles; monitors fold the per-period granted share into
/// PeriodContext::scale alongside the per-kind duty-cycle correction.
///
/// This layer sits *under* the per-kind EventMultiplexer: the mux rotates
/// which event kind a tenant samples while its gate is open; the arbiter
/// rotates which tenant's gate is open at all.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_HPM_PMUARBITER_H
#define HPMVM_HPM_PMUARBITER_H

#include "support/Types.h"
#include "support/VirtualClock.h"

#include <vector>

namespace hpmvm {

class PebsUnit;

/// Cumulative PMU tenancy of one tenant: how many of its executed cycles
/// it held the sampling grant for. Monitors diff successive readings to
/// get an exact per-period share.
struct PmuShare {
  Cycles Granted = 0;
  Cycles Executed = 0;
};

struct PmuArbiterConfig {
  /// Grant slice in virtual milliseconds of *executed* fleet time (all
  /// tenants pooled); after each slice the grant moves to the next tenant.
  double SliceMs = 0.2;
};

/// Fair round-robin owner of the sampling grant.
class PmuArbiter {
public:
  explicit PmuArbiter(const PmuArbiterConfig &Config = {});

  /// Adds a tenant's PMU context. \returns the tenant's id (registration
  /// order; fleets register shards in shard order, so ids coincide).
  /// Gates are not touched until start().
  TenantId add(PebsUnit &Unit);

  /// Grants tenant 0 and closes every other gate. With a single tenant
  /// the arbiter degenerates to always-granted: a 1-shard fleet samples
  /// exactly like a plain single-VM run.
  void start();

  /// Whether \p T currently holds the grant.
  bool granted(TenantId T) const {
    return Units.size() <= 1 || Current == T;
  }
  TenantId current() const { return Current; }

  /// Applies \p T's gate for the execution quantum it is about to run and
  /// \returns whether it holds the PMU for it. The grant is held for whole
  /// quanta: the context switch cost model is "switch at request
  /// boundaries", not per event.
  bool beginQuantum(TenantId T);

  /// Charges \p T's just-finished quantum of \p Delta executed cycles and
  /// rotates the grant once per fully used slice.
  void endQuantum(TenantId T, Cycles Delta);

  /// Cumulative tenancy of \p T (see PmuShare).
  PmuShare shareOf(TenantId T) const { return Shares[T]; }

  /// Lifetime granted fraction of \p T's executed cycles (1.0 before it
  /// executed anything).
  double grantedFraction(TenantId T) const;

  size_t tenants() const { return Units.size(); }
  uint64_t rotations() const { return Rotations; }
  const PmuArbiterConfig &config() const { return Config; }

private:
  PmuArbiterConfig Config;
  Cycles SliceCycles;
  Cycles SliceUsed = 0;
  TenantId Current = 0;
  uint64_t Rotations = 0;
  bool Started = false;
  std::vector<PebsUnit *> Units;
  std::vector<PmuShare> Shares;
};

} // namespace hpmvm

#endif // HPMVM_HPM_PMUARBITER_H
