//===-- hpm/NativeSampleLibrary.h - JNI shim layer --------------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulation of the paper's native shared library (part 2 of the system):
/// the VM cannot call the kernel module directly, so a native C library is
/// accessed via JNI. Efficiency trick reproduced from the paper: the VM
/// provides a pre-allocated int[] array once; the native function copies all
/// collected samples into that array directly, with no per-sample JNI calls.
/// The GC must not run while the copy is in progress (no allocation happens
/// in the native code, and the VM additionally holds a GC lock around the
/// copy) -- modeled by the GcLock hook, which tests and the VM wire up.
///
/// Zero-copy drain: the kernel module fills the pre-allocated buffer once
/// per read call, and batch() hands consumers a SampleBatch view over that
/// buffer in place -- no per-sample re-marshalling between the native copy
/// and the VM-side processing loop. The view stays valid until the next
/// readIntoArray().
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_HPM_NATIVESAMPLELIBRARY_H
#define HPMVM_HPM_NATIVESAMPLELIBRARY_H

#include "hpm/PerfmonModule.h"
#include "hpm/Sample.h"
#include "support/Types.h"
#include "support/VirtualClock.h"

#include <functional>
#include <vector>

namespace hpmvm {

class ObsContext;

/// Cost model of one native read call (JNI transition + copy loop).
struct NativeLibraryCosts {
  Cycles PerCall = 4000;  ///< JNI transition + syscall into the module.
  Cycles PerSample = 100; ///< memcpy of one 40-byte record.
};

/// User-space native library marshalling samples into a pre-allocated
/// int[] array.
class NativeSampleLibrary {
public:
  /// The paper's user-space library keeps an 80 KB buffer; 80 KB of 40-byte
  /// samples is 2048 samples = 20480 ints.
  static constexpr size_t kDefaultArrayInts = 80 * 1024 / sizeof(uint32_t);

  explicit NativeSampleLibrary(PerfmonModule &Module,
                               size_t ArrayInts = kDefaultArrayInts);

  /// Reads all currently available samples (up to array capacity) into the
  /// pre-allocated array. Calls the GC lock hook around the copy.
  /// \returns the number of samples now valid in the array.
  size_t readIntoArray();

  /// \returns the number of samples readIntoArray() marshalled last time.
  size_t arrayedSamples() const { return ValidSamples; }

  /// Zero-copy view over the samples the last readIntoArray() marshalled;
  /// invalidated by the next readIntoArray().
  SampleBatch batch() const {
    return SampleBatch{Buffer.data(), ValidSamples, Tenant};
  }

  /// Tags batches with the owning VM shard (fleet runs; 0 otherwise).
  void setTenant(TenantId T) { Tenant = T; }

  /// Decodes sample \p I from the buffer. Pre: I < arrayedSamples().
  PebsSample decode(size_t I) const;

  /// Raw int[] view of the marshalled buffer (what "Java" sees): the same
  /// storage batch() exposes, reinterpreted as the paper's int array.
  const uint32_t *array() const {
    return reinterpret_cast<const uint32_t *>(Buffer.data());
  }

  /// Hook invoked with true before the copy and false after; the VM uses it
  /// to disable GC during the transfer.
  void setGcLock(std::function<void(bool)> Hook) { GcLock = std::move(Hook); }

  /// If set, call costs advance this clock.
  void setClock(VirtualClock *C) { Clock = C; }
  void setCosts(const NativeLibraryCosts &C) { Costs = C; }

  /// Registers marshalling metrics (read calls, samples copied, copy
  /// cycles); does NOT forward to the module, which is wired separately.
  void attachObs(ObsContext &Obs);

  Cycles totalCostCycles() const { return TotalCost; }
  size_t capacitySamples() const { return Buffer.size(); }

private:
  PerfmonModule &Module;
  /// The pre-allocated marshalling buffer (the paper's int[] array, held
  /// as typed records so drains are a single kernel-side fill).
  std::vector<PebsSample> Buffer;
  size_t ValidSamples = 0;
  TenantId Tenant = 0;
  std::function<void(bool)> GcLock;
  VirtualClock *Clock = nullptr;
  NativeLibraryCosts Costs;
  Cycles TotalCost = 0;
  Counter *MReadCalls = &Counter::sink();
  Counter *MCopied = &Counter::sink();
  Counter *MCopyCycles = &Counter::sink();
};

} // namespace hpmvm

#endif // HPMVM_HPM_NATIVESAMPLELIBRARY_H
