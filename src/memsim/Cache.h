//===-- memsim/Cache.h - Set-associative cache model -----------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative, LRU, write-allocate cache model. Geometry defaults
/// follow the paper's platform: a Pentium 4 with a 16 KB L1 data cache and a
/// 1 MB unified L2, both with 128-byte lines.
///
/// The storage is struct-of-arrays: one contiguous block of encoded tags per
/// set (padded to eight slots so the probe is a fixed-trip-count branchless
/// compare loop the compiler can vectorize) plus one packed rank word per
/// set holding true-LRU order as one byte per way. This replaces the old
/// Way{Tag,LastUse,Valid} array-of-structs whose linear scans and per-way
/// 64-bit use ticks dominated the simulator's per-access cost. The replaced
/// model is preserved verbatim in ReferenceMemsim.h and the randomized
/// equivalence tests in tests/memsim/ pin this implementation to it
/// bit-for-bit (hits, misses, and eviction order).
///
/// Tag encoding: a valid way stores (Tag << 1) | 1, an empty way stores 0,
/// and the pad slots beyond the real associativity store 2 -- even, so a pad
/// can never equal an (always odd) encoded tag, and nonzero, so a pad never
/// looks like a free way.
///
/// Rank encoding (associativity <= 8): byte W of the set's rank word is way
/// W's LRU rank -- 0 is most recent, Associativity-1 is the eviction
/// candidate. The word is initialized to 0x0706050403020100 and maintained
/// with SWAR updates under the invariant that its bytes always form a
/// permutation of 0..7 in which an empty way J holds rank J. That holds
/// because the only invalidation is a whole-cache flush (which reinitializes
/// the word) and fills always take the lowest-indexed empty way -- exactly
/// the old model's first-invalid victim scan -- so when K ways are live they
/// own ranks {0..K-1} and the empty and pad ways keep their identity ranks,
/// which a promotion of rank R < K can never disturb. Associativities above
/// eight fall back to an unpacked byte-per-way rank array with the same
/// algebra.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_MEMSIM_CACHE_H
#define HPMVM_MEMSIM_CACHE_H

#include "support/Types.h"

#include <bit>
#include <cstdint>
#include <vector>

namespace hpmvm {

/// Geometry of one cache level.
struct CacheConfig {
  uint32_t SizeBytes;
  uint32_t LineBytes;
  uint32_t Associativity;

  uint32_t numSets() const {
    return SizeBytes / (LineBytes * Associativity);
  }
};

/// The paper's L1 data cache: 16 KB, 128-byte lines ("One cache line
/// contains 128 bytes"), 8-way (P4 L1D associativity).
CacheConfig l1DefaultConfig();

/// The paper's L2: 1 MB, 128-byte lines, 8-way.
CacheConfig l2DefaultConfig();

/// One level of set-associative cache with true-LRU replacement.
class Cache {
public:
  /// Fixed slot count of the packed layout; real associativity may be lower
  /// (pad slots hold the sentinel) but not higher without falling back to
  /// the generic layout.
  static constexpr uint32_t kPackedSlots = 8;

  explicit Cache(const CacheConfig &Config);

  /// Looks up the line containing \p Addr; on a miss, fills it (evicting the
  /// LRU way). \returns true on hit.
  bool access(Address Addr) { return accessLineNum(lineNumber(Addr)); }

  /// \returns true if the line containing \p Addr is present, without
  /// touching LRU state (for tests and the prefetcher).
  bool contains(Address Addr) const { return containsLineNum(lineNumber(Addr)); }

  /// Inserts the line containing \p Addr if absent without counting a
  /// hit/miss (models a hardware prefetch fill). \returns true if the line
  /// was newly inserted.
  bool prefetch(Address Addr) { return prefetchLineNum(lineNumber(Addr)); }

  /// The same operations keyed by a precomputed line number
  /// (address >> log2(LineBytes)). The fused MemoryHierarchy path splits
  /// each address once and feeds every level from the shared line number
  /// instead of re-deriving it per level.
  bool accessLineNum(uint64_t LineNum) {
    if (!Packed)
      return accessGeneric(LineNum);
    uint64_t Enc = encode(LineNum >> TagShift);
    uint32_t SetIdx = static_cast<uint32_t>(LineNum) & SetMask;
    const uint64_t *Slot = &Tags[static_cast<size_t>(SetIdx) * kPackedSlots];
    uint32_t HitMask = 0, FreeMask = 0;
    for (uint32_t W = 0; W != kPackedSlots; ++W) {
      uint64_t T = Slot[W];
      HitMask |= static_cast<uint32_t>(T == Enc) << W;
      FreeMask |= static_cast<uint32_t>(T == 0) << W;
    }
    if (HitMask) {
      ++Hits;
      promotePacked(RankBits[SetIdx],
                    static_cast<uint32_t>(std::countr_zero(HitMask)));
      return true;
    }
    ++Misses;
    fillPacked(SetIdx, FreeMask, Enc);
    return false;
  }

  bool containsLineNum(uint64_t LineNum) const {
    if (!Packed)
      return containsGeneric(LineNum);
    uint64_t Enc = encode(LineNum >> TagShift);
    uint32_t SetIdx = static_cast<uint32_t>(LineNum) & SetMask;
    const uint64_t *Slot = &Tags[static_cast<size_t>(SetIdx) * kPackedSlots];
    bool Hit = false;
    for (uint32_t W = 0; W != kPackedSlots; ++W)
      Hit |= Slot[W] == Enc;
    return Hit;
  }

  bool prefetchLineNum(uint64_t LineNum) {
    if (!Packed)
      return prefetchGeneric(LineNum);
    uint64_t Enc = encode(LineNum >> TagShift);
    uint32_t SetIdx = static_cast<uint32_t>(LineNum) & SetMask;
    const uint64_t *Slot = &Tags[static_cast<size_t>(SetIdx) * kPackedSlots];
    uint32_t HitMask = 0, FreeMask = 0;
    for (uint32_t W = 0; W != kPackedSlots; ++W) {
      uint64_t T = Slot[W];
      HitMask |= static_cast<uint32_t>(T == Enc) << W;
      FreeMask |= static_cast<uint32_t>(T == 0) << W;
    }
    // A line that is already present is NOT promoted (matching the old
    // model, whose prefetch bailed out before assigning a use tick).
    if (HitMask)
      return false;
    fillPacked(SetIdx, FreeMask, Enc);
    return true;
  }

  /// Invalidates all lines (e.g. between experiments).
  void flush();

  const CacheConfig &config() const { return Config; }
  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }

  /// \returns the address of the first byte of the line containing \p Addr.
  /// Templated so 64-bit callers keep their high half: the mask widens to
  /// uint64_t before complementing, where the old `~(Config.LineBytes - 1)`
  /// complemented in uint32_t and zeroed bits 32..63 of wider addresses.
  template <typename AddrT> AddrT lineBase(AddrT Addr) const {
    return static_cast<AddrT>(Addr &
                              ~static_cast<uint64_t>(Config.LineBytes - 1));
  }

  /// \returns Addr >> log2(LineBytes), the key of the LineNum entry points.
  uint64_t lineNumber(uint64_t Addr) const { return Addr >> LineShift; }

  uint32_t lineShift() const { return LineShift; }

private:
  static constexpr uint64_t kRepeatedOnes = 0x0101010101010101ull;
  static constexpr uint64_t kHighBits = 0x8080808080808080ull;
  static constexpr uint64_t kIdentityRanks = 0x0706050403020100ull;
  static constexpr uint64_t kPadSentinel = 2;

  static uint64_t encode(uint64_t Tag) { return (Tag << 1) | 1; }

  /// Makes \p Way the MRU of its set: every byte of \p R with a rank below
  /// Way's current rank ages by one, then Way's byte drops to 0. All bytes
  /// stay <= 8, so the SWAR add can never carry between lanes, and forcing
  /// the high bit before subtracting the rank keeps the per-byte compare
  /// borrow-free.
  static void promotePacked(uint64_t &R, uint32_t Way) {
    uint32_t Shift = Way * 8;
    uint64_t Rank = (R >> Shift) & 0xff;
    if (Rank == 0)
      return; // Already MRU; common for repeated hits on one line.
    uint64_t Below = ~((R | kHighBits) - Rank * kRepeatedOnes) & kHighBits;
    R += Below >> 7;
    R &= ~(0xffull << Shift);
  }

  /// Fills the first free way of \p SetIdx (or, when full, the way whose
  /// rank byte equals Associativity-1, i.e. the true-LRU way) with \p Enc
  /// and promotes it to MRU.
  void fillPacked(uint32_t SetIdx, uint32_t FreeMask, uint64_t Enc) {
    uint64_t &R = RankBits[SetIdx];
    uint32_t Way;
    if (FreeMask) {
      Way = static_cast<uint32_t>(std::countr_zero(FreeMask));
    } else {
      // Locate the unique byte equal to Associativity-1 via zero-byte
      // detection on the XOR; ranks are a permutation, so exactly one byte
      // matches and the lowest-zero-byte position is exact.
      uint64_t X = R ^ (static_cast<uint64_t>(Config.Associativity - 1) *
                        kRepeatedOnes);
      uint64_t Zero = (X - kRepeatedOnes) & ~X & kHighBits;
      Way = static_cast<uint32_t>(std::countr_zero(Zero)) >> 3;
    }
    Tags[static_cast<size_t>(SetIdx) * kPackedSlots + Way] = Enc;
    promotePacked(R, Way);
  }

  // Unpacked fallback for associativities above kPackedSlots; same rank
  // algebra over a byte array.
  bool accessGeneric(uint64_t LineNum);
  bool containsGeneric(uint64_t LineNum) const;
  bool prefetchGeneric(uint64_t LineNum);
  void fillGeneric(uint32_t SetIdx, uint64_t Enc);

  CacheConfig Config;
  uint32_t LineShift;
  uint32_t SetMask;
  uint32_t TagShift;
  bool Packed;
  std::vector<uint64_t> Tags;     // NumSets * slots, row-major by set.
  std::vector<uint64_t> RankBits; // Packed layout: one rank word per set.
  std::vector<uint8_t> Ranks;     // Generic layout: NumSets * Associativity.
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

} // namespace hpmvm

#endif // HPMVM_MEMSIM_CACHE_H
