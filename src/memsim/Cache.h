//===-- memsim/Cache.h - Set-associative cache model -----------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative, LRU, write-allocate cache model. Geometry defaults
/// follow the paper's platform: a Pentium 4 with a 16 KB L1 data cache and a
/// 1 MB unified L2, both with 128-byte lines.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_MEMSIM_CACHE_H
#define HPMVM_MEMSIM_CACHE_H

#include "support/Types.h"

#include <cstdint>
#include <vector>

namespace hpmvm {

/// Geometry of one cache level.
struct CacheConfig {
  uint32_t SizeBytes;
  uint32_t LineBytes;
  uint32_t Associativity;

  uint32_t numSets() const {
    return SizeBytes / (LineBytes * Associativity);
  }
};

/// The paper's L1 data cache: 16 KB, 128-byte lines ("One cache line
/// contains 128 bytes"), 8-way (P4 L1D associativity).
CacheConfig l1DefaultConfig();

/// The paper's L2: 1 MB, 128-byte lines, 8-way.
CacheConfig l2DefaultConfig();

/// One level of set-associative cache with true-LRU replacement.
class Cache {
public:
  explicit Cache(const CacheConfig &Config);

  /// Looks up the line containing \p Addr; on a miss, fills it (evicting the
  /// LRU way). \returns true on hit.
  bool access(Address Addr);

  /// \returns true if the line containing \p Addr is present, without
  /// touching LRU state (for tests and the prefetcher).
  bool contains(Address Addr) const;

  /// Inserts the line containing \p Addr if absent without counting a
  /// hit/miss (models a hardware prefetch fill). \returns true if the line
  /// was newly inserted.
  bool prefetch(Address Addr);

  /// Invalidates all lines (e.g. between experiments).
  void flush();

  const CacheConfig &config() const { return Config; }
  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }

  /// \returns the address of the first byte of the line containing \p Addr.
  Address lineBase(Address Addr) const {
    return Addr & ~(Config.LineBytes - 1);
  }

private:
  struct Way {
    uint64_t Tag = 0;
    uint64_t LastUse = 0;
    bool Valid = false;
  };

  /// \returns (set index, tag) for \p Addr.
  void split(Address Addr, uint32_t &SetIdx, uint64_t &Tag) const;

  /// \returns a pointer to the matching way in \p SetIdx, or nullptr.
  Way *findWay(uint32_t SetIdx, uint64_t Tag);
  const Way *findWay(uint32_t SetIdx, uint64_t Tag) const;

  CacheConfig Config;
  uint32_t LineShift;
  uint32_t SetMask;
  std::vector<Way> Ways; // NumSets * Associativity, row-major by set.
  uint64_t UseTick = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

} // namespace hpmvm

#endif // HPMVM_MEMSIM_CACHE_H
