//===-- memsim/ReferenceMemsim.h - Legacy scalar memsim oracle -*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The retired array-of-structs memsim implementation, kept verbatim as an
/// executable oracle -- the same pattern as MonitorConfig::ScalarSamplePath
/// on the sample path. The production Cache/Tlb/MemoryHierarchy moved to a
/// struct-of-arrays layout with packed LRU ranks (see Cache.h); these
/// classes preserve the original per-way scan semantics, including its two
/// victim-selection quirks (Cache takes the FIRST invalid way, Tlb the
/// LAST invalid entry), so the randomized equivalence tests and the
/// BM_MemsimAccess scalar baseline have a bit-exact reference to diff
/// against. The only deliberate divergence from the retired code is the
/// 64-bit-safe line mask in lineBase()/split(): the old
/// `~(Config.LineBytes - 1)` promoted through uint32_t and zeroed the high
/// half of 64-bit addresses, and the production model fixed that, so the
/// oracle must agree above 4 GiB too.
///
/// Not linked into the simulator proper: only the memsim tests and the
/// micro benches include it.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_MEMSIM_REFERENCEMEMSIM_H
#define HPMVM_MEMSIM_REFERENCEMEMSIM_H

#include "memsim/Cache.h"
#include "memsim/MemoryEvent.h"
#include "memsim/MemoryHierarchy.h"
#include "memsim/Tlb.h"

#include <cassert>
#include <vector>

namespace hpmvm::refmodel {

/// The original array-of-structs set-associative LRU cache.
class Cache {
public:
  explicit Cache(const CacheConfig &Config) : Config(Config) {
    assert(Config.LineBytes != 0 &&
           (Config.LineBytes & (Config.LineBytes - 1)) == 0 &&
           "line size must be a power of two");
    uint32_t NumSets = Config.numSets();
    assert(NumSets != 0 && (NumSets & (NumSets - 1)) == 0 &&
           "set count must be a power of two");
    LineShift = log2Exact(Config.LineBytes);
    SetMask = NumSets - 1;
    Ways.resize(static_cast<size_t>(NumSets) * Config.Associativity);
  }

  bool access(uint64_t Addr) {
    uint32_t SetIdx;
    uint64_t Tag;
    split(Addr, SetIdx, Tag);
    ++UseTick;
    if (Way *Hit = findWay(SetIdx, Tag)) {
      Hit->LastUse = UseTick;
      ++Hits;
      return true;
    }
    ++Misses;
    // Fill: evict the LRU way (or the FIRST invalid one).
    Way *Victim = victimIn(SetIdx);
    Victim->Valid = true;
    Victim->Tag = Tag;
    Victim->LastUse = UseTick;
    return false;
  }

  bool contains(uint64_t Addr) const {
    uint32_t SetIdx;
    uint64_t Tag;
    split(Addr, SetIdx, Tag);
    return findWay(SetIdx, Tag) != nullptr;
  }

  bool prefetch(uint64_t Addr) {
    uint32_t SetIdx;
    uint64_t Tag;
    split(Addr, SetIdx, Tag);
    if (findWay(SetIdx, Tag))
      return false;
    Way *Victim = victimIn(SetIdx);
    ++UseTick;
    Victim->Valid = true;
    Victim->Tag = Tag;
    Victim->LastUse = UseTick;
    return true;
  }

  void flush() {
    for (Way &W : Ways)
      W.Valid = false;
    UseTick = 0;
  }

  const CacheConfig &config() const { return Config; }
  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }

  uint64_t lineBase(uint64_t Addr) const {
    return Addr & ~static_cast<uint64_t>(Config.LineBytes - 1);
  }

private:
  struct Way {
    uint64_t Tag = 0;
    uint64_t LastUse = 0;
    bool Valid = false;
  };

  static uint32_t log2Exact(uint32_t V) {
    uint32_t Log = 0;
    while (V > 1) {
      V >>= 1;
      ++Log;
    }
    return Log;
  }

  void split(uint64_t Addr, uint32_t &SetIdx, uint64_t &Tag) const {
    uint64_t Line = Addr >> LineShift;
    SetIdx = static_cast<uint32_t>(Line) & SetMask;
    Tag = Line >> log2Exact(SetMask + 1);
  }

  Way *findWay(uint32_t SetIdx, uint64_t Tag) {
    Way *Set = &Ways[static_cast<size_t>(SetIdx) * Config.Associativity];
    for (uint32_t W = 0; W != Config.Associativity; ++W)
      if (Set[W].Valid && Set[W].Tag == Tag)
        return &Set[W];
    return nullptr;
  }

  const Way *findWay(uint32_t SetIdx, uint64_t Tag) const {
    return const_cast<Cache *>(this)->findWay(SetIdx, Tag);
  }

  Way *victimIn(uint32_t SetIdx) {
    Way *Set = &Ways[static_cast<size_t>(SetIdx) * Config.Associativity];
    Way *Victim = &Set[0];
    for (uint32_t W = 0; W != Config.Associativity; ++W) {
      if (!Set[W].Valid) {
        Victim = &Set[W];
        break;
      }
      if (Set[W].LastUse < Victim->LastUse)
        Victim = &Set[W];
    }
    return Victim;
  }

  CacheConfig Config;
  uint32_t LineShift;
  uint32_t SetMask;
  std::vector<Way> Ways;
  uint64_t UseTick = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// The original fully-associative LRU TLB. Note the victim quirk this
/// preserves: while invalid entries remain, the scan keeps overwriting the
/// victim pointer, so the LAST invalid entry wins and the table fills from
/// the highest index down.
class Tlb {
public:
  explicit Tlb(const TlbConfig &Config) : Config(Config) {
    assert(Config.PageBytes != 0 &&
           (Config.PageBytes & (Config.PageBytes - 1)) == 0 &&
           "page size must be a power of two");
    PageShift = 0;
    for (uint32_t V = Config.PageBytes; V > 1; V >>= 1)
      ++PageShift;
    Entries.resize(Config.Entries);
  }

  bool access(uint64_t Addr) {
    uint64_t Page = Addr >> PageShift;
    ++UseTick;
    Entry *Victim = &Entries[0];
    for (Entry &E : Entries) {
      if (E.Valid && E.Page == Page) {
        E.LastUse = UseTick;
        ++Hits;
        return true;
      }
      if (!E.Valid)
        Victim = &E;
      else if (Victim->Valid && E.LastUse < Victim->LastUse)
        Victim = &E;
    }
    ++Misses;
    Victim->Valid = true;
    Victim->Page = Page;
    Victim->LastUse = UseTick;
    return false;
  }

  void flush() {
    for (Entry &E : Entries)
      E.Valid = false;
    UseTick = 0;
  }

  const TlbConfig &config() const { return Config; }
  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }

private:
  struct Entry {
    uint64_t Page = 0;
    uint64_t LastUse = 0;
    bool Valid = false;
  };

  TlbConfig Config;
  uint32_t PageShift;
  std::vector<Entry> Entries;
  uint64_t UseTick = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// The original level-by-level MemoryHierarchy: re-splits the address per
/// level and walks the AoS caches above. Mirrors MemoryHierarchy::access
/// exactly (TLB -> L1 -> stream prefetch -> L2, same penalties, same event
/// order) so whole-hierarchy traces can be diffed, listener events
/// included.
class MemoryHierarchy {
public:
  explicit MemoryHierarchy(const MemoryHierarchyConfig &Config = {})
      : Config(Config), L1(Config.L1), L2(Config.L2), Dtlb(Config.Dtlb) {
    assert(Config.L1.LineBytes == Config.L2.LineBytes &&
           "the model assumes a uniform line size across levels");
  }

  AccessResult access(Address Addr, uint32_t Size, bool IsWrite, Address Pc) {
    (void)IsWrite;
    assert(Size != 0 && "zero-sized access");
    AccessResult Result;
    ++Stats.Accesses;
    uint32_t LineBytes = Config.L1.LineBytes;
    Address First = static_cast<Address>(L1.lineBase(Addr));
    Address Last =
        static_cast<Address>(L1.lineBase(static_cast<Address>(Addr + Size - 1)));
    for (Address Line = First;; Line += LineBytes) {
      accessLine(Line, Pc, Result);
      if (Line == Last)
        break;
    }
    return Result;
  }

  Cycles softwarePrefetch(Address Addr, Address Pc) {
    (void)Pc;
    ++Stats.SwPrefetches;
    Address Line = static_cast<Address>(L1.lineBase(Addr));
    Cycles Penalty = 0;
    Dtlb.access(Line);
    if (L1.contains(Line))
      return Penalty;
    if (L2.contains(Line)) {
      Penalty += Config.Latency.L2HitPenalty / 2;
    } else {
      Penalty += Config.Latency.MemoryPenalty / 2;
      L2.prefetch(Line);
    }
    L1.prefetch(Line);
    ++Stats.SwPrefetchFills;
    return Penalty;
  }

  void setListener(MemoryEventListener *L) { Listener = L; }

  void reset() {
    L1.flush();
    L2.flush();
    Dtlb.flush();
    Stats = MemoryStats();
    LastMissLine = 0;
  }

  const MemoryStats &stats() const { return Stats; }
  const MemoryHierarchyConfig &config() const { return Config; }
  const Cache &l1() const { return L1; }
  const Cache &l2() const { return L2; }
  const Tlb &dtlb() const { return Dtlb; }

private:
  void accessLine(Address LineAddr, Address Pc, AccessResult &Result) {
    if (!Dtlb.access(LineAddr)) {
      ++Result.TlbMisses;
      ++Stats.TlbMisses;
      Result.Penalty += Config.Latency.TlbMissPenalty;
      if (Listener)
        Listener->onMemoryEvent(HpmEventKind::DtlbMiss, Pc, LineAddr);
    }

    if (L1.access(LineAddr))
      return;

    ++Result.L1Misses;
    ++Stats.L1Misses;
    if (Listener)
      Listener->onMemoryEvent(HpmEventKind::L1DMiss, Pc, LineAddr);

    if (Config.StreamPrefetch) {
      uint32_t LineBytes = Config.L2.LineBytes;
      if (LineAddr == LastMissLine + LineBytes) {
        if (L2.prefetch(static_cast<Address>(LineAddr + LineBytes)))
          ++Stats.PrefetchFills;
      }
      LastMissLine = LineAddr;
    }

    if (L2.access(LineAddr)) {
      Result.Penalty += Config.Latency.L2HitPenalty;
      return;
    }

    ++Result.L2Misses;
    ++Stats.L2Misses;
    Result.Penalty += Config.Latency.MemoryPenalty;
    if (Listener)
      Listener->onMemoryEvent(HpmEventKind::L2Miss, Pc, LineAddr);
  }

  MemoryHierarchyConfig Config;
  Cache L1;
  Cache L2;
  Tlb Dtlb;
  MemoryEventListener *Listener = nullptr;
  MemoryStats Stats;
  Address LastMissLine = 0;
};

} // namespace hpmvm::refmodel

#endif // HPMVM_MEMSIM_REFERENCEMEMSIM_H
