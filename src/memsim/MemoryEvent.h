//===-- memsim/MemoryEvent.h - Performance event kinds ---------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kinds of machine-level events the simulated performance monitoring
/// unit can observe. The paper's P4 PEBS supports (among others) L1 and L2
/// cache misses and DTLB misses, and can monitor exactly one event kind at a
/// time; we model that set.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_MEMSIM_MEMORYEVENT_H
#define HPMVM_MEMSIM_MEMORYEVENT_H

#include "support/Types.h"

#include <cstddef>

namespace hpmvm {

/// Machine-level event kinds observable by the HPM unit.
enum class HpmEventKind : uint8_t {
  L1DMiss,  ///< L1 data cache miss (replay-tagged, PEBS-capable on the P4).
  L2Miss,   ///< Unified L2 miss (goes to main memory).
  DtlbMiss, ///< Data TLB miss (page walk).
};

/// Number of HpmEventKind values (for per-kind arrays).
inline constexpr size_t kNumHpmEventKinds = 3;

inline const char *eventKindName(HpmEventKind Kind) {
  switch (Kind) {
  case HpmEventKind::L1DMiss:
    return "L1D_MISS";
  case HpmEventKind::L2Miss:
    return "L2_MISS";
  case HpmEventKind::DtlbMiss:
    return "DTLB_MISS";
  }
  return "UNKNOWN";
}

/// Observer of memory-hierarchy events. The PEBS unit implements this to
/// count/sample events; the hook carries the exact instruction address so
/// precise event-based sampling can attribute the event to one instruction
/// (the P4 PEBS property the whole paper builds on).
class MemoryEventListener {
public:
  virtual ~MemoryEventListener() = default;

  /// Called once per event occurrence. \p Pc is the simulated machine-code
  /// address of the instruction performing the access; \p DataAddr the
  /// faulting data address.
  virtual void onMemoryEvent(HpmEventKind Kind, Address Pc,
                             Address DataAddr) = 0;
};

} // namespace hpmvm

#endif // HPMVM_MEMSIM_MEMORYEVENT_H
