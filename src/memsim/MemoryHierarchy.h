//===-- memsim/MemoryHierarchy.h - L1/L2/DTLB + cost model -----*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The complete simulated memory hierarchy the VM executes against: L1 data
/// cache, unified L2, DTLB, an optional hardware stream prefetcher (the
/// paper notes the P4 "includes hardware-based prefetching of data
/// streams"), a cycle-cost model, and the event hook the PEBS unit attaches
/// to. Every semantic heap access performed by the interpreter or by
/// simulated optimized machine code goes through MemoryHierarchy::access.
///
/// The access path is fused: the address is split into a line number once
/// and every level is probed through the Cache/Tlb LineNum entry points, so
/// the common TLB-hit + L1-hit case runs entirely inline with no per-level
/// re-splitting (the old model recomputed set index and tag -- including a
/// log2 loop -- inside each level on every probe). Only the L1-miss
/// continuation (stream prefetcher, L2, memory) is out of line. Behavior is
/// bit-identical to the level-by-level model preserved in
/// ReferenceMemsim.h, including event order and the uint32_t wrap of the
/// line walk, which the line-number loop reproduces via LineNumMask.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_MEMSIM_MEMORYHIERARCHY_H
#define HPMVM_MEMSIM_MEMORYHIERARCHY_H

#include "memsim/Cache.h"
#include "memsim/MemoryEvent.h"
#include "memsim/Tlb.h"
#include "support/Types.h"

#include <cassert>

namespace hpmvm {

/// Latency model (cycles added on top of the instruction's base cost).
struct LatencyConfig {
  Cycles L2HitPenalty = 18;    ///< L1 miss that hits in L2.
  Cycles MemoryPenalty = 200;  ///< L2 miss (main-memory access).
  Cycles TlbMissPenalty = 30;  ///< Page-table walk.
};

/// Whole-hierarchy configuration.
struct MemoryHierarchyConfig {
  CacheConfig L1 = l1DefaultConfig();
  CacheConfig L2 = l2DefaultConfig();
  TlbConfig Dtlb = dtlbDefaultConfig();
  LatencyConfig Latency;
  /// Model the P4's hardware stream prefetcher: on an L2 demand miss that
  /// continues an ascending line stride, the next line is prefetched into L2.
  bool StreamPrefetch = true;
};

/// Outcome of one access (aggregated over the lines it touches).
struct AccessResult {
  Cycles Penalty = 0;
  uint8_t L1Misses = 0;
  uint8_t L2Misses = 0;
  uint8_t TlbMisses = 0;
};

/// Aggregate counters (the "normal counting" mode of the P4 HPM: total event
/// counts readable after execution).
struct MemoryStats {
  uint64_t Accesses = 0;
  uint64_t L1Misses = 0;
  uint64_t L2Misses = 0;
  uint64_t TlbMisses = 0;
  uint64_t PrefetchFills = 0;   ///< Hardware stream-prefetch fills.
  uint64_t SwPrefetches = 0;    ///< Software prefetches issued.
  uint64_t SwPrefetchFills = 0; ///< ...that actually fetched a line.
};

/// L1 + L2 + DTLB with event notification and a cycle cost model.
class MemoryHierarchy {
public:
  explicit MemoryHierarchy(const MemoryHierarchyConfig &Config = {});

  /// Performs one data access of \p Size bytes at \p Addr issued by the
  /// instruction at \p Pc. Accesses spanning line boundaries touch each line
  /// (the common case is 1 line; object headers and small fields never span
  /// more than 2). Fires one listener event per miss, tagged with \p Pc --
  /// this is the "precise" in precise event-based sampling.
  AccessResult access(Address Addr, uint32_t Size, bool IsWrite, Address Pc) {
    return accessFast(Addr, Size, IsWrite, Pc);
  }

  /// The fused implementation behind access(); named so the micro benches
  /// can pit it against the ReferenceMemsim scalar model by name.
  AccessResult accessFast(Address Addr, uint32_t Size, bool IsWrite,
                          Address Pc) {
    (void)IsWrite; // Write-allocate: reads and writes behave identically here.
    assert(Size != 0 && "zero-sized access");
    AccessResult Result;
    ++Stats.Accesses;
    uint32_t FirstNum = Addr >> LineShift;
    uint32_t LastNum = static_cast<Address>(Addr + Size - 1) >> LineShift;
    // Masked increment == the old Address-typed `Line += LineBytes` walk,
    // wrap included.
    for (uint32_t LineNum = FirstNum;; LineNum = (LineNum + 1) & LineNumMask) {
      accessLineFast(LineNum, Pc, Result);
      if (LineNum == LastNum)
        break;
    }
    return Result;
  }

  /// Issues a software prefetch for the line containing \p Addr (the
  /// JIT-inserted prefetch instructions of the prefetch-injection
  /// extension). Fills L1 and L2 without counting demand misses or firing
  /// PEBS events; \returns the stall cycles charged at the prefetch point
  /// (half the demand penalty: the fetch overlaps the short window before
  /// first use).
  Cycles softwarePrefetch(Address Addr, Address Pc);

  /// Registers the event observer (the PEBS unit). Pass nullptr to detach.
  void setListener(MemoryEventListener *L) { Listener = L; }

  /// Empties caches and TLB and zeroes statistics.
  void reset();

  const MemoryStats &stats() const { return Stats; }
  const MemoryHierarchyConfig &config() const { return Config; }
  const Cache &l1() const { return L1; }
  const Cache &l2() const { return L2; }
  const Tlb &dtlb() const { return Dtlb; }

private:
  /// Inline head of the per-line walk: TLB and L1, which absorb almost every
  /// access. The L1-miss continuation is out of line.
  void accessLineFast(uint32_t LineNum, Address Pc, AccessResult &Result) {
    Address LineAddr = static_cast<Address>(LineNum) << LineShift;
    // TLB first: one translation per page touched. (A line never spans pages
    // because line size divides page size.)
    if (!Dtlb.access(LineAddr)) {
      ++Result.TlbMisses;
      ++Stats.TlbMisses;
      Result.Penalty += Config.Latency.TlbMissPenalty;
      if (Listener)
        Listener->onMemoryEvent(HpmEventKind::DtlbMiss, Pc, LineAddr);
    }
    if (L1.accessLineNum(LineNum))
      return;
    accessLineL1Miss(LineNum, LineAddr, Pc, Result);
  }

  /// Stream prefetcher + L2 + memory leg of a line access.
  void accessLineL1Miss(uint32_t LineNum, Address LineAddr, Address Pc,
                        AccessResult &Result);

  MemoryHierarchyConfig Config;
  Cache L1;
  Cache L2;
  Tlb Dtlb;
  MemoryEventListener *Listener = nullptr;
  MemoryStats Stats;
  uint32_t LineShift;   ///< log2(L1.LineBytes) == log2(L2.LineBytes).
  uint32_t LineNumMask; ///< 0xffffffff >> LineShift: wrap of the line walk.
  Address LastMissLine = 0; ///< For the stream-prefetch heuristic.
};

} // namespace hpmvm

#endif // HPMVM_MEMSIM_MEMORYHIERARCHY_H
