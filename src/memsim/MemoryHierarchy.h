//===-- memsim/MemoryHierarchy.h - L1/L2/DTLB + cost model -----*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The complete simulated memory hierarchy the VM executes against: L1 data
/// cache, unified L2, DTLB, an optional hardware stream prefetcher (the
/// paper notes the P4 "includes hardware-based prefetching of data
/// streams"), a cycle-cost model, and the event hook the PEBS unit attaches
/// to. Every semantic heap access performed by the interpreter or by
/// simulated optimized machine code goes through MemoryHierarchy::access.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_MEMSIM_MEMORYHIERARCHY_H
#define HPMVM_MEMSIM_MEMORYHIERARCHY_H

#include "memsim/Cache.h"
#include "memsim/MemoryEvent.h"
#include "memsim/Tlb.h"
#include "support/Types.h"

namespace hpmvm {

/// Latency model (cycles added on top of the instruction's base cost).
struct LatencyConfig {
  Cycles L2HitPenalty = 18;    ///< L1 miss that hits in L2.
  Cycles MemoryPenalty = 200;  ///< L2 miss (main-memory access).
  Cycles TlbMissPenalty = 30;  ///< Page-table walk.
};

/// Whole-hierarchy configuration.
struct MemoryHierarchyConfig {
  CacheConfig L1 = l1DefaultConfig();
  CacheConfig L2 = l2DefaultConfig();
  TlbConfig Dtlb = dtlbDefaultConfig();
  LatencyConfig Latency;
  /// Model the P4's hardware stream prefetcher: on an L2 demand miss that
  /// continues an ascending line stride, the next line is prefetched into L2.
  bool StreamPrefetch = true;
};

/// Outcome of one access (aggregated over the lines it touches).
struct AccessResult {
  Cycles Penalty = 0;
  uint8_t L1Misses = 0;
  uint8_t L2Misses = 0;
  uint8_t TlbMisses = 0;
};

/// Aggregate counters (the "normal counting" mode of the P4 HPM: total event
/// counts readable after execution).
struct MemoryStats {
  uint64_t Accesses = 0;
  uint64_t L1Misses = 0;
  uint64_t L2Misses = 0;
  uint64_t TlbMisses = 0;
  uint64_t PrefetchFills = 0;   ///< Hardware stream-prefetch fills.
  uint64_t SwPrefetches = 0;    ///< Software prefetches issued.
  uint64_t SwPrefetchFills = 0; ///< ...that actually fetched a line.
};

/// L1 + L2 + DTLB with event notification and a cycle cost model.
class MemoryHierarchy {
public:
  explicit MemoryHierarchy(const MemoryHierarchyConfig &Config = {});

  /// Performs one data access of \p Size bytes at \p Addr issued by the
  /// instruction at \p Pc. Accesses spanning line boundaries touch each line
  /// (the common case is 1 line; object headers and small fields never span
  /// more than 2). Fires one listener event per miss, tagged with \p Pc --
  /// this is the "precise" in precise event-based sampling.
  AccessResult access(Address Addr, uint32_t Size, bool IsWrite, Address Pc);

  /// Issues a software prefetch for the line containing \p Addr (the
  /// JIT-inserted prefetch instructions of the prefetch-injection
  /// extension). Fills L1 and L2 without counting demand misses or firing
  /// PEBS events; \returns the stall cycles charged at the prefetch point
  /// (half the demand penalty: the fetch overlaps the short window before
  /// first use).
  Cycles softwarePrefetch(Address Addr, Address Pc);

  /// Registers the event observer (the PEBS unit). Pass nullptr to detach.
  void setListener(MemoryEventListener *L) { Listener = L; }

  /// Empties caches and TLB and zeroes statistics.
  void reset();

  const MemoryStats &stats() const { return Stats; }
  const MemoryHierarchyConfig &config() const { return Config; }
  const Cache &l1() const { return L1; }
  const Cache &l2() const { return L2; }
  const Tlb &dtlb() const { return Dtlb; }

private:
  /// Accesses a single line; updates \p Result.
  void accessLine(Address LineAddr, Address Pc, AccessResult &Result);

  MemoryHierarchyConfig Config;
  Cache L1;
  Cache L2;
  Tlb Dtlb;
  MemoryEventListener *Listener = nullptr;
  MemoryStats Stats;
  Address LastMissLine = 0; ///< For the stream-prefetch heuristic.
};

} // namespace hpmvm

#endif // HPMVM_MEMSIM_MEMORYHIERARCHY_H
