//===-- memsim/Tlb.cpp ----------------------------------------------------===//

#include "memsim/Tlb.h"

#include <cassert>

using namespace hpmvm;

TlbConfig hpmvm::dtlbDefaultConfig() {
  return TlbConfig{/*Entries=*/64, /*PageBytes=*/4096};
}

Tlb::Tlb(const TlbConfig &Config) : Config(Config) {
  assert(Config.PageBytes != 0 &&
         (Config.PageBytes & (Config.PageBytes - 1)) == 0 &&
         "page size must be a power of two");
  PageShift = 0;
  for (uint32_t V = Config.PageBytes; V > 1; V >>= 1)
    ++PageShift;
  Entries.resize(Config.Entries);
}

bool Tlb::access(Address Addr) {
  uint64_t Page = Addr >> PageShift;
  ++UseTick;
  Entry *Victim = &Entries[0];
  for (Entry &E : Entries) {
    if (E.Valid && E.Page == Page) {
      E.LastUse = UseTick;
      ++Hits;
      return true;
    }
    if (!E.Valid)
      Victim = &E;
    else if (Victim->Valid && E.LastUse < Victim->LastUse)
      Victim = &E;
  }
  ++Misses;
  Victim->Valid = true;
  Victim->Page = Page;
  Victim->LastUse = UseTick;
  return false;
}

void Tlb::flush() {
  for (Entry &E : Entries)
    E.Valid = false;
  UseTick = 0;
}
