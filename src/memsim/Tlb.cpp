//===-- memsim/Tlb.cpp ----------------------------------------------------===//

#include "memsim/Tlb.h"

#include <cassert>

using namespace hpmvm;

TlbConfig hpmvm::dtlbDefaultConfig() {
  return TlbConfig{/*Entries=*/64, /*PageBytes=*/4096};
}

Tlb::Tlb(const TlbConfig &Config) : Config(Config) {
  assert(Config.PageBytes != 0 &&
         (Config.PageBytes & (Config.PageBytes - 1)) == 0 &&
         "page size must be a power of two");
  assert(Config.Entries != 0 && "TLB must have at least one entry");
  assert(Config.Entries <= 256 && "byte-wide LRU ranks cap the entry count");
  PageShift = 0;
  for (uint32_t V = Config.PageBytes; V > 1; V >>= 1)
    ++PageShift;
  Pages.resize(Config.Entries);
  Ranks.resize(Config.Entries);
  flush();
}

bool Tlb::accessSlow(uint64_t Enc) {
  uint32_t N = Config.Entries;
  for (uint32_t J = 0; J != N; ++J) {
    if (Pages[J] == Enc) {
      ++Hits;
      uint8_t Rank = Ranks[J];
      for (uint32_t K = 0; K != N; ++K)
        Ranks[K] += Ranks[K] < Rank;
      Ranks[J] = 0;
      MruEnc = Enc;
      return true;
    }
  }
  ++Misses;
  uint32_t Victim;
  uint8_t Rank;
  if (ValidCount < N) {
    // Fill top-down (see the header); the next free entry's rank is exactly
    // ValidCount under the N-1-J identity initialization.
    Victim = N - 1 - ValidCount;
    Rank = static_cast<uint8_t>(ValidCount);
    ++ValidCount;
  } else {
    Victim = 0;
    Rank = static_cast<uint8_t>(N - 1);
    for (uint32_t J = 0; J != N; ++J)
      if (Ranks[J] == Rank)
        Victim = J;
  }
  Pages[Victim] = Enc;
  for (uint32_t K = 0; K != N; ++K)
    Ranks[K] += Ranks[K] < Rank;
  Ranks[Victim] = 0;
  MruEnc = Enc;
  return false;
}

void Tlb::flush() {
  uint32_t N = Config.Entries;
  for (uint32_t J = 0; J != N; ++J) {
    Pages[J] = 0;
    Ranks[J] = static_cast<uint8_t>(N - 1 - J);
  }
  ValidCount = 0;
  MruEnc = 0;
}
