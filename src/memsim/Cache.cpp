//===-- memsim/Cache.cpp --------------------------------------------------===//

#include "memsim/Cache.h"

#include <cassert>

using namespace hpmvm;

static uint32_t log2Exact(uint32_t V) {
  assert(V != 0 && (V & (V - 1)) == 0 && "value must be a power of two");
  uint32_t Log = 0;
  while (V > 1) {
    V >>= 1;
    ++Log;
  }
  return Log;
}

CacheConfig hpmvm::l1DefaultConfig() {
  return CacheConfig{/*SizeBytes=*/16 * 1024, /*LineBytes=*/128,
                     /*Associativity=*/8};
}

CacheConfig hpmvm::l2DefaultConfig() {
  return CacheConfig{/*SizeBytes=*/1024 * 1024, /*LineBytes=*/128,
                     /*Associativity=*/8};
}

Cache::Cache(const CacheConfig &Config) : Config(Config) {
  assert(Config.LineBytes != 0 && (Config.LineBytes & (Config.LineBytes - 1)) == 0 &&
         "line size must be a power of two");
  uint32_t NumSets = Config.numSets();
  assert(NumSets != 0 && (NumSets & (NumSets - 1)) == 0 &&
         "set count must be a power of two");
  assert(Config.Associativity != 0 && "associativity must be nonzero");
  LineShift = log2Exact(Config.LineBytes);
  SetMask = NumSets - 1;
  TagShift = log2Exact(NumSets);
  Packed = Config.Associativity <= kPackedSlots;
  uint32_t Slots = Packed ? kPackedSlots : Config.Associativity;
  Tags.resize(static_cast<size_t>(NumSets) * Slots);
  if (Packed)
    RankBits.resize(NumSets);
  else
    Ranks.resize(static_cast<size_t>(NumSets) * Config.Associativity);
  flush();
}

void Cache::flush() {
  uint32_t NumSets = SetMask + 1;
  if (Packed) {
    for (uint32_t S = 0; S != NumSets; ++S) {
      uint64_t *Slot = &Tags[static_cast<size_t>(S) * kPackedSlots];
      for (uint32_t W = 0; W != kPackedSlots; ++W)
        Slot[W] = W < Config.Associativity ? 0 : kPadSentinel;
      RankBits[S] = kIdentityRanks;
    }
    return;
  }
  for (uint64_t &T : Tags)
    T = 0;
  for (uint32_t S = 0; S != NumSets; ++S)
    for (uint32_t W = 0; W != Config.Associativity; ++W)
      Ranks[static_cast<size_t>(S) * Config.Associativity + W] =
          static_cast<uint8_t>(W);
}

bool Cache::accessGeneric(uint64_t LineNum) {
  uint64_t Enc = encode(LineNum >> TagShift);
  uint32_t SetIdx = static_cast<uint32_t>(LineNum) & SetMask;
  uint64_t *Slot = &Tags[static_cast<size_t>(SetIdx) * Config.Associativity];
  uint8_t *R = &Ranks[static_cast<size_t>(SetIdx) * Config.Associativity];
  for (uint32_t W = 0; W != Config.Associativity; ++W) {
    if (Slot[W] == Enc) {
      ++Hits;
      uint8_t Rank = R[W];
      for (uint32_t J = 0; J != Config.Associativity; ++J)
        R[J] += R[J] < Rank;
      R[W] = 0;
      return true;
    }
  }
  ++Misses;
  fillGeneric(SetIdx, Enc);
  return false;
}

bool Cache::containsGeneric(uint64_t LineNum) const {
  uint64_t Enc = encode(LineNum >> TagShift);
  uint32_t SetIdx = static_cast<uint32_t>(LineNum) & SetMask;
  const uint64_t *Slot =
      &Tags[static_cast<size_t>(SetIdx) * Config.Associativity];
  for (uint32_t W = 0; W != Config.Associativity; ++W)
    if (Slot[W] == Enc)
      return true;
  return false;
}

bool Cache::prefetchGeneric(uint64_t LineNum) {
  if (containsGeneric(LineNum))
    return false;
  uint64_t Enc = encode(LineNum >> TagShift);
  uint32_t SetIdx = static_cast<uint32_t>(LineNum) & SetMask;
  fillGeneric(SetIdx, Enc);
  return true;
}

void Cache::fillGeneric(uint32_t SetIdx, uint64_t Enc) {
  uint64_t *Slot = &Tags[static_cast<size_t>(SetIdx) * Config.Associativity];
  uint8_t *R = &Ranks[static_cast<size_t>(SetIdx) * Config.Associativity];
  uint32_t Way = Config.Associativity;
  for (uint32_t W = 0; W != Config.Associativity; ++W) {
    if (Slot[W] == 0) {
      Way = W; // First free way, as in the old first-invalid victim scan.
      break;
    }
  }
  if (Way == Config.Associativity) {
    uint8_t Lru = static_cast<uint8_t>(Config.Associativity - 1);
    for (uint32_t W = 0; W != Config.Associativity; ++W)
      if (R[W] == Lru)
        Way = W;
  }
  Slot[Way] = Enc;
  uint8_t Rank = R[Way];
  for (uint32_t J = 0; J != Config.Associativity; ++J)
    R[J] += R[J] < Rank;
  R[Way] = 0;
}
