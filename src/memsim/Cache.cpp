//===-- memsim/Cache.cpp --------------------------------------------------===//

#include "memsim/Cache.h"

#include <cassert>

using namespace hpmvm;

static uint32_t log2Exact(uint32_t V) {
  assert(V != 0 && (V & (V - 1)) == 0 && "value must be a power of two");
  uint32_t Log = 0;
  while (V > 1) {
    V >>= 1;
    ++Log;
  }
  return Log;
}

CacheConfig hpmvm::l1DefaultConfig() {
  return CacheConfig{/*SizeBytes=*/16 * 1024, /*LineBytes=*/128,
                     /*Associativity=*/8};
}

CacheConfig hpmvm::l2DefaultConfig() {
  return CacheConfig{/*SizeBytes=*/1024 * 1024, /*LineBytes=*/128,
                     /*Associativity=*/8};
}

Cache::Cache(const CacheConfig &Config) : Config(Config) {
  assert(Config.LineBytes != 0 && (Config.LineBytes & (Config.LineBytes - 1)) == 0 &&
         "line size must be a power of two");
  uint32_t NumSets = Config.numSets();
  assert(NumSets != 0 && (NumSets & (NumSets - 1)) == 0 &&
         "set count must be a power of two");
  LineShift = log2Exact(Config.LineBytes);
  SetMask = NumSets - 1;
  Ways.resize(static_cast<size_t>(NumSets) * Config.Associativity);
}

void Cache::split(Address Addr, uint32_t &SetIdx, uint64_t &Tag) const {
  uint64_t Line = Addr >> LineShift;
  SetIdx = static_cast<uint32_t>(Line) & SetMask;
  Tag = Line >> log2Exact(SetMask + 1);
}

Cache::Way *Cache::findWay(uint32_t SetIdx, uint64_t Tag) {
  Way *Set = &Ways[static_cast<size_t>(SetIdx) * Config.Associativity];
  for (uint32_t W = 0; W != Config.Associativity; ++W)
    if (Set[W].Valid && Set[W].Tag == Tag)
      return &Set[W];
  return nullptr;
}

const Cache::Way *Cache::findWay(uint32_t SetIdx, uint64_t Tag) const {
  return const_cast<Cache *>(this)->findWay(SetIdx, Tag);
}

bool Cache::access(Address Addr) {
  uint32_t SetIdx;
  uint64_t Tag;
  split(Addr, SetIdx, Tag);
  ++UseTick;
  if (Way *Hit = findWay(SetIdx, Tag)) {
    Hit->LastUse = UseTick;
    ++Hits;
    return true;
  }
  ++Misses;
  // Fill: evict the LRU way (or use an invalid one).
  Way *Set = &Ways[static_cast<size_t>(SetIdx) * Config.Associativity];
  Way *Victim = &Set[0];
  for (uint32_t W = 0; W != Config.Associativity; ++W) {
    if (!Set[W].Valid) {
      Victim = &Set[W];
      break;
    }
    if (Set[W].LastUse < Victim->LastUse)
      Victim = &Set[W];
  }
  Victim->Valid = true;
  Victim->Tag = Tag;
  Victim->LastUse = UseTick;
  return false;
}

bool Cache::contains(Address Addr) const {
  uint32_t SetIdx;
  uint64_t Tag;
  split(Addr, SetIdx, Tag);
  return findWay(SetIdx, Tag) != nullptr;
}

bool Cache::prefetch(Address Addr) {
  uint32_t SetIdx;
  uint64_t Tag;
  split(Addr, SetIdx, Tag);
  if (findWay(SetIdx, Tag))
    return false;
  // Insert with the current tick but do not count a miss: prefetch fills are
  // not demand misses.
  Way *Set = &Ways[static_cast<size_t>(SetIdx) * Config.Associativity];
  Way *Victim = &Set[0];
  for (uint32_t W = 0; W != Config.Associativity; ++W) {
    if (!Set[W].Valid) {
      Victim = &Set[W];
      break;
    }
    if (Set[W].LastUse < Victim->LastUse)
      Victim = &Set[W];
  }
  ++UseTick;
  Victim->Valid = true;
  Victim->Tag = Tag;
  Victim->LastUse = UseTick;
  return true;
}

void Cache::flush() {
  for (Way &W : Ways)
    W.Valid = false;
  UseTick = 0;
}
