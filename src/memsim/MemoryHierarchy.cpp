//===-- memsim/MemoryHierarchy.cpp ----------------------------------------===//

#include "memsim/MemoryHierarchy.h"

#include <cassert>

using namespace hpmvm;

MemoryHierarchy::MemoryHierarchy(const MemoryHierarchyConfig &Config)
    : Config(Config), L1(Config.L1), L2(Config.L2), Dtlb(Config.Dtlb) {
  assert(Config.L1.LineBytes == Config.L2.LineBytes &&
         "the model assumes a uniform line size across levels");
}

void MemoryHierarchy::accessLine(Address LineAddr, Address Pc,
                                 AccessResult &Result) {
  // TLB first: one translation per page touched. (A line never spans pages
  // because line size divides page size.)
  if (!Dtlb.access(LineAddr)) {
    ++Result.TlbMisses;
    ++Stats.TlbMisses;
    Result.Penalty += Config.Latency.TlbMissPenalty;
    if (Listener)
      Listener->onMemoryEvent(HpmEventKind::DtlbMiss, Pc, LineAddr);
  }

  if (L1.access(LineAddr))
    return;

  ++Result.L1Misses;
  ++Stats.L1Misses;
  if (Listener)
    Listener->onMemoryEvent(HpmEventKind::L1DMiss, Pc, LineAddr);

  // Stream prefetcher: when L1 misses continue an ascending line stream,
  // keep pulling the next line into L2 ahead of the demand accesses, so
  // streaming workloads (compress, mpegaudio) are not dominated by memory
  // latency -- as on the real P4. The stream stays alive across L2 hits
  // (that is what makes it a *stream* prefetcher, not a miss predictor).
  if (Config.StreamPrefetch) {
    uint32_t LineBytes = Config.L2.LineBytes;
    if (LineAddr == LastMissLine + LineBytes) {
      if (L2.prefetch(LineAddr + LineBytes))
        ++Stats.PrefetchFills;
    }
    LastMissLine = LineAddr;
  }

  if (L2.access(LineAddr)) {
    Result.Penalty += Config.Latency.L2HitPenalty;
    return;
  }

  ++Result.L2Misses;
  ++Stats.L2Misses;
  Result.Penalty += Config.Latency.MemoryPenalty;
  if (Listener)
    Listener->onMemoryEvent(HpmEventKind::L2Miss, Pc, LineAddr);
}

AccessResult MemoryHierarchy::access(Address Addr, uint32_t Size, bool IsWrite,
                                     Address Pc) {
  (void)IsWrite; // Write-allocate: reads and writes behave identically here.
  assert(Size != 0 && "zero-sized access");
  AccessResult Result;
  ++Stats.Accesses;
  uint32_t LineBytes = Config.L1.LineBytes;
  Address First = L1.lineBase(Addr);
  Address Last = L1.lineBase(Addr + Size - 1);
  for (Address Line = First;; Line += LineBytes) {
    accessLine(Line, Pc, Result);
    if (Line == Last)
      break;
  }
  return Result;
}

Cycles MemoryHierarchy::softwarePrefetch(Address Addr, Address Pc) {
  (void)Pc; // Prefetches are not precise-sampled; kept for symmetry.
  ++Stats.SwPrefetches;
  Address Line = L1.lineBase(Addr);
  Cycles Penalty = 0;
  // The prefetch still translates its address.
  Dtlb.access(Line);
  if (L1.contains(Line))
    return Penalty;
  if (L2.contains(Line)) {
    Penalty += Config.Latency.L2HitPenalty / 2;
  } else {
    Penalty += Config.Latency.MemoryPenalty / 2;
    L2.prefetch(Line);
  }
  L1.prefetch(Line);
  ++Stats.SwPrefetchFills;
  return Penalty;
}

void MemoryHierarchy::reset() {
  L1.flush();
  L2.flush();
  Dtlb.flush();
  Stats = MemoryStats();
  LastMissLine = 0;
}
