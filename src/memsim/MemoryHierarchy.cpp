//===-- memsim/MemoryHierarchy.cpp ----------------------------------------===//

#include "memsim/MemoryHierarchy.h"

using namespace hpmvm;

MemoryHierarchy::MemoryHierarchy(const MemoryHierarchyConfig &Config)
    : Config(Config), L1(Config.L1), L2(Config.L2), Dtlb(Config.Dtlb) {
  assert(Config.L1.LineBytes == Config.L2.LineBytes &&
         "the model assumes a uniform line size across levels");
  LineShift = L1.lineShift();
  LineNumMask = 0xffffffffu >> LineShift;
}

void MemoryHierarchy::accessLineL1Miss(uint32_t LineNum, Address LineAddr,
                                       Address Pc, AccessResult &Result) {
  ++Result.L1Misses;
  ++Stats.L1Misses;
  if (Listener)
    Listener->onMemoryEvent(HpmEventKind::L1DMiss, Pc, LineAddr);

  // Stream prefetcher: when L1 misses continue an ascending line stream,
  // keep pulling the next line into L2 ahead of the demand accesses, so
  // streaming workloads (compress, mpegaudio) are not dominated by memory
  // latency -- as on the real P4. The stream stays alive across L2 hits
  // (that is what makes it a *stream* prefetcher, not a miss predictor).
  if (Config.StreamPrefetch) {
    uint32_t LineBytes = Config.L2.LineBytes;
    if (LineAddr == LastMissLine + LineBytes) {
      if (L2.prefetch(LineAddr + LineBytes))
        ++Stats.PrefetchFills;
    }
    LastMissLine = LineAddr;
  }

  if (L2.accessLineNum(LineNum)) {
    Result.Penalty += Config.Latency.L2HitPenalty;
    return;
  }

  ++Result.L2Misses;
  ++Stats.L2Misses;
  Result.Penalty += Config.Latency.MemoryPenalty;
  if (Listener)
    Listener->onMemoryEvent(HpmEventKind::L2Miss, Pc, LineAddr);
}

Cycles MemoryHierarchy::softwarePrefetch(Address Addr, Address Pc) {
  (void)Pc; // Prefetches are not precise-sampled; kept for symmetry.
  ++Stats.SwPrefetches;
  uint32_t LineNum = Addr >> LineShift;
  Address Line = static_cast<Address>(LineNum) << LineShift;
  Cycles Penalty = 0;
  // The prefetch still translates its address.
  Dtlb.access(Line);
  if (L1.containsLineNum(LineNum))
    return Penalty;
  if (L2.containsLineNum(LineNum)) {
    Penalty += Config.Latency.L2HitPenalty / 2;
  } else {
    Penalty += Config.Latency.MemoryPenalty / 2;
    L2.prefetchLineNum(LineNum);
  }
  L1.prefetchLineNum(LineNum);
  ++Stats.SwPrefetchFills;
  return Penalty;
}

void MemoryHierarchy::reset() {
  L1.flush();
  L2.flush();
  Dtlb.flush();
  Stats = MemoryStats();
  LastMissLine = 0;
}
