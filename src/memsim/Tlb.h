//===-- memsim/Tlb.h - Data TLB model ---------------------------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fully-associative LRU data TLB (the P4 DTLB holds 64 entries for 4 KB
/// pages). DTLB misses are one of the PEBS-selectable events the paper's
/// infrastructure can monitor; the evaluation notes that driving
/// co-allocation by TLB misses instead of L1 misses did not improve jbb.
///
/// Storage is struct-of-arrays like Cache: a vector of encoded pages
/// ((Page << 1) | 1; 0 marks an empty entry) plus a byte-per-entry LRU rank
/// array (0 = most recent). Because memory accesses have strong page
/// locality, the most-recently-used encoding is additionally memoized in a
/// single word, so the overwhelmingly common repeat-hit resolves inline with
/// one compare -- promoting a rank-0 entry is a no-op, which keeps the
/// shortcut bit-identical to the old full scan.
///
/// Victim quirk, preserved from the old model: its scan kept overwriting the
/// victim pointer while invalid entries remained (and the `Victim->Valid`
/// guard made an invalid victim stick), so the LAST invalid entry won and
/// the table filled from the highest index down. Hence ranks initialize to
/// N-1-J and the not-full victim is entry N-1-ValidCount.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_MEMSIM_TLB_H
#define HPMVM_MEMSIM_TLB_H

#include "support/Types.h"

#include <cstdint>
#include <vector>

namespace hpmvm {

/// TLB geometry.
struct TlbConfig {
  uint32_t Entries;
  uint32_t PageBytes;
};

/// The P4 DTLB: 64 entries, 4 KB pages, fully associative.
TlbConfig dtlbDefaultConfig();

/// Fully-associative LRU TLB.
class Tlb {
public:
  explicit Tlb(const TlbConfig &Config);

  /// Looks up the page containing \p Addr, filling on a miss.
  /// \returns true on hit.
  bool access(Address Addr) {
    uint64_t Enc = ((static_cast<uint64_t>(Addr) >> PageShift) << 1) | 1;
    if (Enc == MruEnc) {
      ++Hits;
      return true;
    }
    return accessSlow(Enc);
  }

  void flush();

  const TlbConfig &config() const { return Config; }
  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }

private:
  /// Scan + promote (hit) or fill (miss); updates the MRU memo.
  bool accessSlow(uint64_t Enc);

  TlbConfig Config;
  uint32_t PageShift;
  std::vector<uint64_t> Pages; ///< Encoded pages; 0 marks an empty entry.
  std::vector<uint8_t> Ranks;  ///< LRU ranks, 0 = MRU.
  uint32_t ValidCount = 0;
  uint64_t MruEnc = 0; ///< Encoding of the rank-0 entry; 0 while empty.
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

} // namespace hpmvm

#endif // HPMVM_MEMSIM_TLB_H
