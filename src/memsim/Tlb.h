//===-- memsim/Tlb.h - Data TLB model ---------------------------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fully-associative LRU data TLB (the P4 DTLB holds 64 entries for 4 KB
/// pages). DTLB misses are one of the PEBS-selectable events the paper's
/// infrastructure can monitor; the evaluation notes that driving
/// co-allocation by TLB misses instead of L1 misses did not improve jbb.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_MEMSIM_TLB_H
#define HPMVM_MEMSIM_TLB_H

#include "support/Types.h"

#include <vector>

namespace hpmvm {

/// TLB geometry.
struct TlbConfig {
  uint32_t Entries;
  uint32_t PageBytes;
};

/// The P4 DTLB: 64 entries, 4 KB pages, fully associative.
TlbConfig dtlbDefaultConfig();

/// Fully-associative LRU TLB.
class Tlb {
public:
  explicit Tlb(const TlbConfig &Config);

  /// Looks up the page containing \p Addr, filling on a miss.
  /// \returns true on hit.
  bool access(Address Addr);

  void flush();

  const TlbConfig &config() const { return Config; }
  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }

private:
  struct Entry {
    uint64_t Page = 0;
    uint64_t LastUse = 0;
    bool Valid = false;
  };

  TlbConfig Config;
  uint32_t PageShift;
  std::vector<Entry> Entries;
  uint64_t UseTick = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

} // namespace hpmvm

#endif // HPMVM_MEMSIM_TLB_H
