//===-- harness/ExperimentRunner.cpp --------------------------------------===//

#include "harness/ExperimentRunner.h"

#include "vm/AdaptiveOptimizationSystem.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace hpmvm;

Experiment::Experiment(const RunConfig &Config) : Config(Config) {
  Spec = findWorkload(Config.Workload);
  if (!Spec) {
    fprintf(stderr, "unknown workload '%s'\n", Config.Workload.c_str());
    abort();
  }
  assert((!Config.Coallocation || Config.Monitoring) &&
         "co-allocation needs the monitoring system's miss data");

  HeapBytes = Config.HeapBytesOverride
                  ? Config.HeapBytesOverride
                  : static_cast<uint32_t>(
                        scaledMinHeap(*Spec, Config.Params) *
                        Config.HeapFactor);
  HeapBytes = alignUp(HeapBytes, 64 * 1024);

  VmConfig VC;
  VC.HeapBytes = HeapBytes;
  VC.Seed = Config.Params.Seed;
  VC.ProfileFieldAccess = Config.ProfileFieldAccess;
  Vm = std::make_unique<VirtualMachine>(VC);

  CollectorConfig CC;
  CC.HeapBytes = HeapBytes;
  if (Config.MaxCoallocPairBytes)
    CC.MaxCoallocPairBytes = Config.MaxCoallocPairBytes;
  if (Config.Collector == CollectorKind::GenMS)
    Gc = std::make_unique<GenMSPlan>(Vm->objects(), Vm->clock(), CC);
  else
    Gc = std::make_unique<GenCopyPlan>(Vm->objects(), Vm->clock(), CC);
  Vm->setCollector(Gc.get());

  Prog = Spec->Build(*Vm, Config.Params);

  if (Config.PseudoAdaptive)
    Vm->aos().applyCompilationPlan(Prog.CompilationPlan);

  if (Config.Monitoring) {
    Monitor = std::make_unique<HpmMonitor>(*Vm, Config.Monitor);
    Monitor->attach();
    Monitor->advisor().setEnabled(Config.Coallocation);
  }
}

Experiment::~Experiment() = default;

void Experiment::run() {
  assert(!Ran && "experiment ran twice");
  Ran = true;
  Vm->run(Prog.Main);
  if (Monitor)
    Monitor->finish();
}

RunResult Experiment::result() {
  RunResult R;
  R.TotalCycles = Vm->clock().now();
  R.GcCycles = Gc->stats().GcCycles;
  R.Memory = Vm->memory().stats();
  R.Gc = Gc->stats();
  R.Vm = Vm->stats();
  R.HeapBytes = HeapBytes;
  R.CoallocatedPairs = Gc->stats().ObjectsCoallocated;
  if (Monitor) {
    R.MonitorOverheadCycles = Monitor->overheadCycles();
    R.SamplesTaken = Monitor->pebs().samplesTaken();
  }
  return R;
}

RunResult hpmvm::runExperiment(const RunConfig &Config) {
  Experiment E(Config);
  E.run();
  return E.result();
}
