//===-- harness/ExperimentRunner.cpp --------------------------------------===//

#include "harness/ExperimentRunner.h"

#include "obs/Log.h"
#include "vm/AdaptiveOptimizationSystem.h"

#include <cassert>
#include <cstdlib>

using namespace hpmvm;

Experiment::Experiment(const RunConfig &Config)
    : Config(Config), Obs(resolveObsConfig(Config.Obs)) {
  Spec = findWorkload(Config.Workload);
  if (!Spec) {
    logError("harness", "unknown workload '%s'", Config.Workload.c_str());
    abort();
  }
  assert((!Config.Coallocation || Config.Monitoring) &&
         "co-allocation needs the monitoring system's miss data");
  assert((!Config.PolicyEngine || Config.Monitoring) &&
         "the policy engine needs the monitoring system");
  assert((!Config.PolicyEngine ||
          (!Config.Coallocation && !Config.PrefetchConsumer &&
           !Config.FrequencyConsumer)) &&
         "policy-engine mode owns the decision layer; the autonomous "
         "consumer flags must stay off");

  HeapBytes = Config.HeapBytesOverride
                  ? Config.HeapBytesOverride
                  : static_cast<uint32_t>(
                        scaledMinHeap(*Spec, Config.Params) *
                        Config.HeapFactor);
  HeapBytes = alignUp(HeapBytes, 64 * 1024);

  VmConfig VC;
  VC.HeapBytes = HeapBytes;
  VC.Seed = Config.Params.Seed;
  VC.ProfileFieldAccess = Config.ProfileFieldAccess;
  Vm = std::make_unique<VirtualMachine>(VC);

  CollectorConfig CC;
  CC.HeapBytes = HeapBytes;
  if (Config.MaxCoallocPairBytes)
    CC.MaxCoallocPairBytes = Config.MaxCoallocPairBytes;
  if (Config.Collector == CollectorKind::GenMS)
    Gc = std::make_unique<GenMSPlan>(Vm->objects(), Vm->clock(), CC);
  else
    Gc = std::make_unique<GenCopyPlan>(Vm->objects(), Vm->clock(), CC);
  Vm->setCollector(Gc.get());

  Prog = Spec->Build(*Vm, Config.Params);

  if (Config.PseudoAdaptive)
    Vm->aos().applyCompilationPlan(Prog.CompilationPlan);

  if (Config.Monitoring) {
    // Classification needs every event kind flowing; default a three-kind
    // multiplexer rotation in policy mode unless the caller chose one.
    if (Config.PolicyEngine && Config.Monitor.Events.size() < 2)
      this->Config.Monitor.Events = {{HpmEventKind::L1DMiss, 5000},
                                     {HpmEventKind::L2Miss, 1000},
                                     {HpmEventKind::DtlbMiss, 500}};
    Monitor = std::make_unique<HpmMonitor>(*Vm, this->Config.Monitor);
    Monitor->attach();
    Monitor->advisor().setEnabled(Config.Coallocation);
    if (Config.PhaseConsumer) {
      Phase = std::make_unique<PhaseDetector>(Config.Phase);
      Phase->setClock(&Vm->clock());
      Monitor->addConsumer(*Phase);
    }
    if (Config.PrefetchConsumer) {
      Prefetcher = std::make_unique<PrefetchInjector>(*Vm, Config.Prefetch);
      if (Config.PrefetchController) {
        PrefetchCtl = std::make_unique<OptimizationController>(
            Config.PrefetchControllerConfig);
        PrefetchCtl->setJournalSubject("prefetch");
        Prefetcher->setController(PrefetchCtl.get());
      }
      Monitor->addConsumer(*Prefetcher);
    }
    if (Config.FrequencyConsumer) {
      Freq = std::make_unique<FrequencyAdvisor>(*Vm);
      Freq->setHotMethodSamples(Config.FrequencyHotSamples);
      Monitor->addConsumer(*Freq);
    }
    if (Config.PolicyEngine) {
      // The classifier compares event kinds, so it needs each kind's
      // events-per-sample weight -- the mux slot's sampling interval.
      for (const MultiplexerConfig::Slot &S : this->Config.Monitor.Events)
        this->Config.Policy.Classifier
            .KindWeight[static_cast<size_t>(S.Kind)] =
            static_cast<double>(S.Interval);
      // Classifier before engine: pipeline onPeriod runs in registration
      // order, so the engine always reads the freshly closed window.
      Classifier = std::make_unique<BottleneckClassifier>(
          this->Config.Policy.Classifier);
      Monitor->addConsumer(*Classifier);
      Engine = std::make_unique<class PolicyEngine>(*Classifier,
                                                    Config.Policy);
      // Action providers: not pipeline consumers here -- the engine alone
      // decides when they act. The advisor starts disabled (the engine's
      // coalloc action enables it); the injector reads hot fields from
      // the monitor's shared miss table. Registration order is the score
      // tie-break: coalloc, prefetch, recompile.
      Prefetcher = std::make_unique<PrefetchInjector>(*Vm, Config.Prefetch);
      Prefetcher->setMissSource(&Monitor->missTable());
      Freq = std::make_unique<FrequencyAdvisor>(*Vm);
      Freq->setHotMethodSamples(Config.FrequencyHotSamples);
      Engine->addAction(Monitor->advisor());
      Engine->addAction(*Prefetcher);
      Engine->addAction(*Freq);
      Monitor->addConsumer(*Engine);
    }
  } else {
    assert(!Config.PhaseConsumer && !Config.PrefetchConsumer &&
           !Config.FrequencyConsumer &&
           "pipeline consumers need the monitoring system");
  }

  // Wire telemetry last, once every component exists. Unmonitored runs
  // still register VM/GC metrics, so a baseline exports zeroed HPM
  // counters rather than omitting the registry entirely.
  Vm->attachObs(Obs);
  Gc->attachObs(Obs);
  if (Monitor)
    Monitor->attachObs(Obs);
  if (PrefetchCtl)
    PrefetchCtl->attachObs(Obs, &Vm->clock());
  if (Config.PolicyEngine) {
    // The policy-mode action providers are not pipeline consumers, so the
    // pipeline does not wire their telemetry; do it here.
    Prefetcher->attachObs(Obs);
    Freq->attachObs(Obs);
  }
}

Experiment::~Experiment() = default;

void Experiment::run() {
  beginRun();
  Vm->run(Prog.Main);
  finishRun();
}

void Experiment::beginRun() {
  assert(!Ran && "experiment ran twice");
  Ran = true;
  RunStart = Vm->clock().now();
  WallT0 = Obs.selfProfiler().enabled() ? SelfProfiler::nowNs() : 0;
}

void Experiment::finishRun() {
  if (Monitor)
    Monitor->finish();
  SelfProfiler &Prof = Obs.selfProfiler();
  if (Prof.enabled()) {
    // Extrapolate the sampled per-stage timings to the whole run and
    // report the monitor's host-side share of it in parts per million.
    // Only meaningful here, where one experiment owns the whole wall
    // interval; in suite mode runs interleave and the gauge stays 0.
    uint64_t WallNs = SelfProfiler::nowNs() - WallT0;
    double Frac = WallNs ? static_cast<double>(Prof.totalTimedNs()) *
                               Prof.sampleEvery() /
                               static_cast<double>(WallNs)
                         : 0.0;
    Obs.metrics()
        .gauge("monitor.self_overhead_frac_ppm")
        .set(static_cast<uint64_t>(Frac * 1e6));
  }
  Obs.trace().complete(RunStart, Vm->clock().now() - RunStart,
                       "experiment.run", "harness");
  if (Obs.config().exportsAnything())
    Obs.exportAll();
}

RunResult Experiment::result() {
  RunResult R;
  R.TotalCycles = Vm->clock().now();
  R.GcCycles = Gc->stats().GcCycles;
  R.Memory = Vm->memory().stats();
  R.Gc = Gc->stats();
  R.Vm = Vm->stats();
  R.HeapBytes = HeapBytes;
  R.CoallocatedPairs = Gc->stats().ObjectsCoallocated;
  if (Monitor) {
    R.MonitorOverheadCycles = Monitor->overheadCycles();
    R.SamplesTaken = Monitor->pebs().samplesTaken();
  }
  R.Metrics = Obs.metrics().snapshot();
  R.Journal = Obs.journal().snapshot();
  return R;
}

RunResult hpmvm::runExperiment(const RunConfig &Config) {
  Experiment E(Config);
  E.run();
  return E.result();
}
