//===-- harness/Suite.cpp -------------------------------------------------===//

#include "harness/Suite.h"

#include "harness/ParallelRunner.h"
#include "obs/Log.h"
#include "obs/Obs.h"
#include "support/Format.h"

#include <cassert>
#include <cstdlib>

using namespace hpmvm;

const char *hpmvm::collectorKindName(CollectorKind K) {
  return K == CollectorKind::GenMS ? "GenMS" : "GenCopy";
}

size_t SuiteSpec::indexOf(size_t W, size_t H, size_t C, size_t V,
                          size_t Rep) const {
  assert(W < Workloads.size() && H < HeapFactors.size() &&
         C < Collectors.size() && V < Variants.size() &&
         Rep < (Repeat ? Repeat : 1) && "grid coordinate out of range");
  size_t R = Repeat ? Repeat : 1;
  return (((W * HeapFactors.size() + H) * Collectors.size() + C) *
              Variants.size() +
          V) *
             R +
         Rep;
}

std::vector<SuiteRun> hpmvm::expandSuite(const SuiteSpec &Spec) {
  assert(!Spec.Workloads.empty() && "a suite needs at least one workload");
  assert(!Spec.Variants.empty() && "a suite needs at least one variant");
  uint32_t Reps = Spec.Repeat ? Spec.Repeat : 1;

  std::vector<SuiteRun> Runs;
  Runs.reserve(Spec.numCells());
  for (size_t W = 0; W != Spec.Workloads.size(); ++W)
    for (size_t H = 0; H != Spec.HeapFactors.size(); ++H)
      for (size_t C = 0; C != Spec.Collectors.size(); ++C)
        for (size_t V = 0; V != Spec.Variants.size(); ++V)
          for (uint32_t Rep = 0; Rep != Reps; ++Rep) {
            SuiteRun Run;
            Run.Index = Runs.size();
            Run.W = W;
            Run.H = H;
            Run.C = C;
            Run.V = V;
            Run.Rep = Rep;

            // Label: the workload plus every axis with more than one
            // level, so filters stay short and stable when a bench adds
            // an axis.
            Run.Label = Spec.Workloads[W];
            if (Spec.HeapFactors.size() > 1)
              Run.Label +=
                  formatString("/%gx", Spec.HeapFactors[H]);
            if (Spec.Collectors.size() > 1)
              Run.Label +=
                  std::string("/") + collectorKindName(Spec.Collectors[C]);
            if (Spec.Variants.size() > 1)
              Run.Label += "/" + Spec.Variants[V].Name;
            if (Reps > 1)
              Run.Label += formatString("/rep%u", Rep);

            RunConfig &Cfg = Run.Config;
            Cfg.Workload = Spec.Workloads[W];
            Cfg.Params = Spec.Params;
            Cfg.Params.Seed = Spec.Params.Seed + Rep;
            Cfg.HeapFactor = Spec.HeapFactors[H];
            Cfg.Collector = Spec.Collectors[C];
            if (Spec.Common)
              Spec.Common(Cfg);
            if (Spec.Variants[V].Apply)
              Spec.Variants[V].Apply(Cfg);
            Runs.push_back(std::move(Run));
          }
  return Runs;
}

bool hpmvm::suiteFilterMatches(const std::string &Filter,
                               const std::string &Label) {
  return Filter.empty() || Label.find(Filter) != std::string::npos;
}

SuiteResults::SuiteResults(SuiteSpec Spec, std::vector<SuiteRun> Runs)
    : Spec(std::move(Spec)), Runs(std::move(Runs)),
      Results(this->Runs.size()), Ran(this->Runs.size(), 0) {}

const RunResult &SuiteResults::at(size_t W, size_t H, size_t C, size_t V,
                                  size_t Rep) const {
  size_t I = Spec.indexOf(W, H, C, V, Rep);
  if (!Ran[I]) {
    logError("harness", "suite cell '%s' was filtered out but its result "
                        "was requested",
             Runs[I].Label.c_str());
    abort();
  }
  return Results[I];
}

double
SuiteResults::mean(size_t W, size_t H, size_t C, size_t V,
                   const std::function<double(const RunResult &)> &Field)
    const {
  double Sum = 0;
  size_t N = 0;
  uint32_t Reps = Spec.Repeat ? Spec.Repeat : 1;
  for (uint32_t Rep = 0; Rep != Reps; ++Rep) {
    size_t I = Spec.indexOf(W, H, C, V, Rep);
    if (!Ran[I])
      continue;
    Sum += Field(Results[I]);
    ++N;
  }
  return N ? Sum / static_cast<double>(N) : 0.0;
}

size_t SuiteResults::numExecuted() const {
  size_t N = 0;
  for (char R : Ran)
    N += R != 0;
  return N;
}

ObsConfig hpmvm::uniquifySuiteObsPaths(ObsConfig Config, size_t Index) {
  auto Uniquify = [Index](std::string &Path) {
    if (Path.empty())
      return;
    std::string Tag = formatString(".run%03zu", Index);
    size_t Dot = Path.rfind('.');
    size_t Slash = Path.find_last_of('/');
    if (Dot == std::string::npos ||
        (Slash != std::string::npos && Dot < Slash))
      Path += Tag;
    else
      Path.insert(Dot, Tag);
  };
  Uniquify(Config.MetricsOutPath);
  Uniquify(Config.TraceOutPath);
  Uniquify(Config.JournalOutPath);
  return Config;
}

SuiteResults hpmvm::runSuite(const SuiteSpec &Spec,
                             const SuiteOptions &Opts) {
  SuiteResults R(Spec, expandSuite(Spec));

  std::vector<size_t> ToRun;
  for (const SuiteRun &Run : R.Runs)
    if (suiteFilterMatches(Opts.Filter, Run.Label))
      ToRun.push_back(Run.Index);

  // Resolve telemetry up front (single-threaded) and de-collide export
  // paths by grid index: N concurrent runs must not race on one file, and
  // the names must not depend on the job count.
  std::vector<RunConfig> Configs(ToRun.size());
  for (size_t J = 0; J != ToRun.size(); ++J) {
    RunConfig C = R.Runs[ToRun[J]].Config;
    C.Obs = resolveObsConfig(C.Obs);
    if (ToRun.size() > 1 && C.Obs.exportsAnything())
      C.Obs = uniquifySuiteObsPaths(C.Obs, ToRun[J]);
    Configs[J] = std::move(C);
  }

  parallelFor(ToRun.size(), Opts.Jobs, [&](size_t J) {
    R.Results[ToRun[J]] = runExperiment(Configs[J]);
    R.Ran[ToRun[J]] = 1;
  });
  return R;
}

namespace {

void writeJsonEscaped(FILE *Out, const std::string &S) {
  fputc('"', Out);
  for (char C : S) {
    if (C == '"' || C == '\\')
      fputc('\\', Out);
    if (static_cast<unsigned char>(C) < 0x20)
      fprintf(Out, "\\u%04x", C);
    else
      fputc(C, Out);
  }
  fputc('"', Out);
}

void writeField(FILE *Out, const char *Name, uint64_t V, bool Last = false) {
  fprintf(Out, "      \"%s\": %llu%s\n", Name,
          static_cast<unsigned long long>(V), Last ? "" : ",");
}

} // namespace

bool hpmvm::writeRunsJson(FILE *Out, const std::string &Bench,
                          const std::vector<LabeledResult> &Runs) {
  fputs("{\n  \"bench\": ", Out);
  writeJsonEscaped(Out, Bench);
  fputs(",\n  \"runs\": [", Out);
  for (size_t I = 0; I != Runs.size(); ++I) {
    const RunResult &R = Runs[I].Result;
    fputs(I ? ",\n    {\n" : "\n    {\n", Out);
    fputs("      \"label\": ", Out);
    writeJsonEscaped(Out, Runs[I].Label);
    fputs(",\n", Out);
    writeField(Out, "heap_bytes", R.HeapBytes);
    writeField(Out, "total_cycles", R.TotalCycles);
    writeField(Out, "gc_cycles", R.GcCycles);
    writeField(Out, "monitor_overhead_cycles", R.MonitorOverheadCycles);
    writeField(Out, "samples_taken", R.SamplesTaken);
    writeField(Out, "coallocated_pairs", R.CoallocatedPairs);
    writeField(Out, "accesses", R.Memory.Accesses);
    writeField(Out, "l1_misses", R.Memory.L1Misses);
    writeField(Out, "l2_misses", R.Memory.L2Misses);
    writeField(Out, "tlb_misses", R.Memory.TlbMisses);
    writeField(Out, "minor_collections", R.Gc.MinorCollections);
    writeField(Out, "major_collections", R.Gc.MajorCollections);
    writeField(Out, "objects_promoted", R.Gc.ObjectsPromoted);
    writeField(Out, "bytecodes_interpreted", R.Vm.BytecodesInterpreted);
    writeField(Out, "machine_insts_executed", R.Vm.MachineInstsExecuted);
    writeField(Out, "objects_allocated", R.Vm.ObjectsAllocated);
    writeField(Out, "bytes_allocated", R.Vm.BytesAllocated);
    fputs("      \"metrics\": ", Out);
    R.Metrics.writeJson(Out);
    // The decision journal rides along so one runs-JSON file is enough to
    // triage a run with hpmvm_report. Journal contents are virtual-clock
    // deterministic, so this keeps the jobs-determinism byte comparison.
    fputs(",\n      \"decisions\": [", Out);
    for (size_t D = 0; D != R.Journal.size(); ++D) {
      fputs(D ? ",\n        " : "\n        ", Out);
      DecisionJournal::writeRecordJson(Out, R.Journal[D]);
    }
    fputs(R.Journal.empty() ? "]\n" : "\n      ]\n", Out);
    fputs("    }", Out);
  }
  fputs(Runs.empty() ? "]\n}\n" : "\n  ]\n}\n", Out);
  return ferror(Out) == 0;
}

bool hpmvm::writeRunsJsonFile(const std::string &Path,
                              const std::string &Bench,
                              const std::vector<LabeledResult> &Runs) {
  FILE *Out = fopen(Path.c_str(), "w");
  if (!Out) {
    logError("harness", "cannot open results output '%s'", Path.c_str());
    return false;
  }
  bool Ok = writeRunsJson(Out, Bench, Runs);
  Ok &= fclose(Out) == 0;
  if (Ok)
    logInfo("harness", "wrote %zu run results to %s", Runs.size(),
            Path.c_str());
  return Ok;
}

bool hpmvm::writeSuiteJsonFile(const std::string &Path,
                               const std::string &Bench,
                               const SuiteResults &Results) {
  std::vector<LabeledResult> Runs;
  for (const SuiteRun &Run : Results.runs()) {
    size_t I = Run.Index;
    if (Results.ran(Run.W, Run.H, Run.C, Run.V, Run.Rep))
      Runs.push_back({Results.runs()[I].Label,
                      Results.at(Run.W, Run.H, Run.C, Run.V, Run.Rep)});
  }
  return writeRunsJsonFile(Path, Bench, Runs);
}
