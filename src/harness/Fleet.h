//===-- harness/Fleet.h - Multi-tenant sharded VM fleet ---------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet harness lifts the one-Experiment-one-VM assumption: N tenant
/// shards, each a full Experiment (own heap, AOS, sample pipeline and
/// policy engine), served request traffic while one *physical* PMU is
/// time-multiplexed across them through a PmuArbiter (per-shard PebsUnits
/// are the saved counter contexts; only the granted shard's sample gate is
/// open, all shards' counters always count).
///
/// Two modes:
///   - Traffic (default): a discrete-event loop drives open-loop
///     Poisson/bursty request arrivals per tenant against the shard's
///     server workload handlers. One request = one PMU quantum (context
///     switches happen at request boundaries, like a CPU scheduler). The
///     schedule is fully deterministic: each tenant's arrival and
///     handler-mix stream is an independent seeded SplitMix64, so it is a
///     pure function of the config. When the fleet is arbiter-free,
///     FleetConfig::Jobs can additionally run shard streams on a worker
///     pool *inside* the run -- workers publish finished quanta through
///     lock-free SPSC queues and a coordinator commits them in the
///     sequential earliest-start/lowest-id order, keeping every output
///     byte-identical to Jobs=1. Shared-PMU fleets always run the
///     sequential engine (the arbiter couples every quantum's timing).
///   - Classic (Traffic = false): each shard runs its whole program
///     back-to-back with a dedicated PMU -- a suite of N runs packaged as
///     one fleet. A 1-shard classic fleet reproduces a plain Experiment
///     bit-for-bit (the equivalence test asserts exactly that).
///
/// Per-tenant duty: shard s executes with seed Base.Seed + s (workload and
/// PEBS streams both), and under the shared PMU its per-period granted
/// share flows through PeriodContext::scale so BottleneckClassifier rates
/// stay unbiased at any shard count.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_HARNESS_FLEET_H
#define HPMVM_HARNESS_FLEET_H

#include "harness/ExperimentRunner.h"
#include "hpm/PmuArbiter.h"

#include <memory>
#include <vector>

namespace hpmvm {

/// Open-loop request traffic, all in virtual time.
struct FleetTrafficConfig {
  /// Requests served per tenant (the run length).
  uint32_t RequestsPerTenant = 256;
  /// Mean per-tenant arrival rate (requests per virtual second). Arrivals
  /// are open-loop: a request that finds its shard busy queues, and the
  /// shard works through its backlog.
  double ArrivalRatePerSec = 20000.0;
  /// Bursty modulation: the instantaneous rate alternates between
  /// (1+A) and (1-A) times the mean every half BurstPeriodMs, with a
  /// deterministic per-tenant phase shift so tenants' bursts interleave.
  /// 0 = plain Poisson.
  double BurstAmplitude = 0.5;
  double BurstPeriodMs = 4.0;
  /// Seed of the traffic streams (arrivals + handler mix). Each tenant
  /// derives an independent stream from it, so per-tenant schedules do not
  /// depend on how tenants interleave.
  uint64_t Seed = 0x7ea0f1ee;
};

/// Full configuration of one fleet run.
struct FleetConfig {
  /// Per-shard base config; shard s runs it with Params.Seed + s,
  /// Monitor.Seed + s and Monitor.Tenant = s. In traffic mode the
  /// workload must be a server workload (non-empty RequestHandlers).
  RunConfig Base;
  uint32_t Shards = 1;
  /// Request-driven discrete-event mode (shared PMU); false = classic
  /// back-to-back whole-program shards (dedicated PMUs).
  bool Traffic = true;
  FleetTrafficConfig TrafficCfg;
  PmuArbiterConfig Arbiter;
  /// Intra-fleet worker threads (--fleet-jobs; 0 = one per hardware
  /// thread). Classic mode runs whole shards on the pool. Traffic mode runs
  /// each shard's request stream on a worker and commits finished quanta
  /// through per-shard SPSC queues in the sequential engine's
  /// earliest-start/lowest-id order, so schedules, journals, and metrics
  /// are byte-identical at any value -- see DESIGN.md sec. 15. Fleets whose
  /// shards share a PMU (an arbiter with tenants) always use the
  /// sequential engine: the arbiter's grant gate feeds each quantum's
  /// sampling overhead back into the virtual clock, so quantum k+1 depends
  /// on every earlier quantum fleet-wide and the schedule admits no
  /// intra-run parallelism.
  unsigned Jobs = 1;
};

/// One tenant's outcome.
struct FleetTenantResult {
  TenantId Tenant = 0;
  RunResult Run;
  /// Cumulative shared-PMU tenancy (zeros in classic mode).
  PmuShare Share;
  uint64_t Requests = 0;
  /// Cycles spent executing requests (excludes open-loop idle waits).
  Cycles BusyCycles = 0;
};

/// Fleet-wide outcome: per-tenant results plus an aggregate row.
struct FleetResult {
  std::vector<FleetTenantResult> Tenants;
  uint64_t PmuRotations = 0;
  /// Max tenant clock -- the fleet's makespan.
  Cycles MakespanCycles = 0;
  /// Headline sums across tenants (TotalCycles = makespan; Metrics left
  /// empty -- per-tenant snapshots stay with each tenant). The journal is
  /// the tenants' journals merged by timestamp with each record stamped
  /// with its tenant, so one fleet-wide JSONL stays auditable.
  RunResult Aggregate;
};

/// Owns the N shard Experiments and the shared-PMU arbiter.
class Fleet {
public:
  explicit Fleet(const FleetConfig &Config);
  ~Fleet();

  /// Runs the whole fleet to completion (setup, traffic, drain).
  void run();

  FleetResult result();

  size_t shards() const { return Shards.size(); }
  Experiment &shard(size_t I) { return *Shards[I]; }
  PmuArbiter &arbiter() { return Arbiter; }
  const FleetConfig &config() const { return Config; }

private:
  void runClassic();
  void runTraffic();
  /// Arbiter-free traffic fleets only: shard streams on \p Jobs workers,
  /// quanta committed in the sequential order (byte-identical results).
  void runTrafficParallel(unsigned Jobs);

  FleetConfig Config;
  PmuArbiter Arbiter;
  std::vector<std::unique_ptr<Experiment>> Shards;
  std::vector<uint64_t> Requests;
  std::vector<Cycles> Busy;
  bool Ran = false;
};

/// Convenience: configure, run, return the result.
FleetResult runFleet(const FleetConfig &Config);

} // namespace hpmvm

#endif // HPMVM_HARNESS_FLEET_H
