//===-- harness/Suite.h - Declarative experiment grids ----------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's evaluation is a grid of independent deterministic runs
/// (Figure 5 alone: 16 workloads x 5 heap sizes x 2 configurations). A
/// SuiteSpec states such a grid declaratively -- axes over workload, heap
/// factor, collector, a named list of configuration variants, and a repeat
/// count -- and expands to a flat RunConfig list in a fixed row-major order
/// (workload outermost, repeat innermost). runSuite() executes the grid on
/// a ParallelRunner thread pool and collects results **by grid index**, so
/// every table/CSV/JSON derived from a SuiteResults is bit-identical
/// regardless of --jobs.
///
/// Rules for anything reachable from a suite run (enforced by the TSan CI
/// job): no mutable namespace-scope or static state without atomics or a
/// lock; per-run state lives in the Experiment. See DESIGN.md section 8.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_HARNESS_SUITE_H
#define HPMVM_HARNESS_SUITE_H

#include "harness/ExperimentRunner.h"

#include <functional>
#include <string>
#include <vector>

namespace hpmvm {

/// Printable collector-axis label ("GenMS" / "GenCopy").
const char *collectorKindName(CollectorKind K);

/// One named point on the "configuration" axis: a transform applied to the
/// cell's base RunConfig (a null Apply is the identity, i.e. the plain
/// baseline).
struct SuiteVariant {
  std::string Name;
  std::function<void(RunConfig &)> Apply;
};

/// A declarative experiment grid. expand() produces the cross product of
/// all axes; axes left at their defaults contribute a single grid level.
struct SuiteSpec {
  std::vector<std::string> Workloads;
  std::vector<double> HeapFactors = {4.0};
  std::vector<CollectorKind> Collectors = {CollectorKind::GenMS};
  std::vector<SuiteVariant> Variants = {{"base", nullptr}};
  /// Scale and the *base* seed; repetition r runs with Seed + r, so rep 0
  /// reproduces a single-run suite exactly.
  WorkloadParams Params;
  uint32_t Repeat = 1;
  /// Extra setup applied to every cell before its variant (shared
  /// monitoring defaults etc.).
  std::function<void(RunConfig &)> Common;

  size_t numCells() const {
    return Workloads.size() * HeapFactors.size() * Collectors.size() *
           Variants.size() * (Repeat ? Repeat : 1);
  }

  /// Flat index of a cell in expansion order (row-major, workload
  /// outermost, rep innermost).
  size_t indexOf(size_t W, size_t H = 0, size_t C = 0, size_t V = 0,
                 size_t Rep = 0) const;
};

/// One expanded grid point.
struct SuiteRun {
  size_t Index = 0; ///< Flat grid index; results are collected under it.
  size_t W = 0, H = 0, C = 0, V = 0, Rep = 0;
  /// "workload/heap/collector/variant/rep" -- segments for axes with a
  /// single level are omitted, e.g. "db/1.5x/coalloc".
  std::string Label;
  RunConfig Config;
};

/// Expands \p Spec into its full run list, in grid order.
std::vector<SuiteRun> expandSuite(const SuiteSpec &Spec);

/// Label filter: empty matches everything, otherwise substring match.
bool suiteFilterMatches(const std::string &Filter, const std::string &Label);

struct SuiteOptions {
  /// Worker threads; 0 = one per hardware thread, 1 = serial (inline).
  unsigned Jobs = 1;
  /// Only runs whose Label matches are executed; the rest stay empty in
  /// the results (SuiteResults::ran()).
  std::string Filter;
};

/// Grid-indexed results of one suite execution.
class SuiteResults {
public:
  SuiteResults(SuiteSpec Spec, std::vector<SuiteRun> Runs);

  const SuiteSpec &spec() const { return Spec; }
  const std::vector<SuiteRun> &runs() const { return Runs; }

  bool ran(size_t W, size_t H = 0, size_t C = 0, size_t V = 0,
           size_t Rep = 0) const {
    return Ran[Spec.indexOf(W, H, C, V, Rep)];
  }
  /// The run at a cell; aborts if the cell was filtered out.
  const RunResult &at(size_t W, size_t H = 0, size_t C = 0, size_t V = 0,
                      size_t Rep = 0) const;

  /// Mean of Field over the cell's executed repetitions (0 when none ran).
  double mean(size_t W, size_t H, size_t C, size_t V,
              const std::function<double(const RunResult &)> &Field) const;

  /// Number of runs that actually executed.
  size_t numExecuted() const;

private:
  friend SuiteResults runSuite(const SuiteSpec &, const SuiteOptions &);

  SuiteSpec Spec;
  std::vector<SuiteRun> Runs;
  std::vector<RunResult> Results;
  std::vector<char> Ran;
};

/// Executes the grid: expands, filters, runs on a ParallelRunner pool, and
/// returns results keyed by grid index. When more than one run exports
/// telemetry, per-run --metrics-out/--trace-out paths get a deterministic
/// ".runNNN" suffix (see uniquifySuiteObsPaths) so concurrent exports
/// never collide on one file.
SuiteResults runSuite(const SuiteSpec &Spec, const SuiteOptions &Opts = {});

/// Inserts ".run<Index:03>" before the extension of any configured export
/// path ("fig5.metrics.json" -> "fig5.metrics.run007.json"). Index-based,
/// so the names are independent of scheduling.
ObsConfig uniquifySuiteObsPaths(ObsConfig Config, size_t Index);

/// A (label, result) pair for benches whose runs don't come from a
/// SuiteSpec grid (custom Experiment drivers like fig7).
struct LabeledResult {
  std::string Label;
  RunResult Result;
};

/// Writes the uniform --json-out payload: one object with bench metadata
/// and a "runs" array in the given order, each run carrying its label,
/// headline numbers, and the name-sorted metrics snapshot. Deterministic
/// byte-for-byte for a given run list. \returns false on I/O failure.
bool writeRunsJson(FILE *Out, const std::string &Bench,
                   const std::vector<LabeledResult> &Runs);
bool writeRunsJsonFile(const std::string &Path, const std::string &Bench,
                       const std::vector<LabeledResult> &Runs);

/// The suite flavor: executed runs, in grid order.
bool writeSuiteJsonFile(const std::string &Path, const std::string &Bench,
                        const SuiteResults &Results);

} // namespace hpmvm

#endif // HPMVM_HARNESS_SUITE_H
