//===-- harness/ExperimentRunner.h - One-experiment assembly ---*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Standard assembly of one experiment run: VM + collector plan + workload
/// program + (optionally) the HPM monitoring system with co-allocation.
/// Every bench, example and integration test goes through this, so the
/// configurations compared in the paper's figures differ in exactly the
/// intended knobs.
///
/// The paper's configurations map as:
///   baseline            Monitoring=false, Coallocation=false, GenMS
///   monitoring only     Monitoring=true,  Coallocation=false (Figure 2)
///   dyn-coalloc         Monitoring=true,  Coallocation=true  (Figures 3-7)
///   GenCopy             Collector=GenCopy                     (Figure 6)
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_HARNESS_EXPERIMENTRUNNER_H
#define HPMVM_HARNESS_EXPERIMENTRUNNER_H

#include "core/BottleneckClassifier.h"
#include "core/FrequencyAdvisor.h"
#include "core/HpmMonitor.h"
#include "core/OptimizationController.h"
#include "core/PhaseDetector.h"
#include "core/PolicyEngine.h"
#include "core/PrefetchInjector.h"
#include "gc/GenCopyPlan.h"
#include "gc/GenMSPlan.h"
#include "obs/Obs.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workload.h"

#include <memory>
#include <string>

namespace hpmvm {

/// Which collector plan to run.
enum class CollectorKind : uint8_t { GenMS, GenCopy };

/// Full configuration of one run.
struct RunConfig {
  std::string Workload = "db";
  WorkloadParams Params;
  /// Heap size as a multiple of the workload's (scaled) minimum heap; the
  /// paper sweeps 1x-4x.
  double HeapFactor = 4.0;
  /// Absolute override (0 = use HeapFactor).
  uint32_t HeapBytesOverride = 0;
  CollectorKind Collector = CollectorKind::GenMS;
  /// Run the HPM monitoring system.
  bool Monitoring = false;
  MonitorConfig Monitor;
  /// Enable HPM-guided co-allocation (requires Monitoring).
  bool Coallocation = false;
  /// Pseudo-adaptive mode: opt-compile the workload's pre-generated plan
  /// up front (the paper's evaluation configuration). When false, the AOS
  /// compiles adaptively.
  bool PseudoAdaptive = true;
  /// Ablation: ceiling for co-allocated pair size (0 = the free-list
  /// default of 4 KB).
  uint32_t MaxCoallocPairBytes = 0;
  /// Count executed getfield operations (for the frequency-driven
  /// comparison advisor).
  bool ProfileFieldAccess = false;
  /// Extra pipeline consumers (beyond the default co-allocation path);
  /// all require Monitoring. The defaults keep the pipeline single-
  /// consumer, i.e. exactly the paper's configuration.
  bool PhaseConsumer = false;
  PhaseDetectorConfig Phase;
  bool PrefetchConsumer = false;
  PrefetchInjectorConfig Prefetch;
  /// Assess-and-revert instance for the prefetch consumer.
  bool PrefetchController = false;
  ControllerConfig PrefetchControllerConfig;
  bool FrequencyConsumer = false;
  /// Sample threshold for the frequency consumer's AOS hot-method
  /// reports.
  uint64_t FrequencyHotSamples = 16;
  /// Policy-engine mode (requires Monitoring; mutually exclusive with the
  /// autonomous Prefetch/Frequency consumers and the always-on
  /// Coallocation flag): a BottleneckClassifier labels hot methods and a
  /// PolicyEngine drives coalloc / prefetch / recompile as guarded,
  /// revertible, blacklistable actions. When Monitor.Events is left empty
  /// a default three-kind multiplexer rotation is installed, since
  /// classification needs all event kinds.
  bool PolicyEngine = false;
  PolicyEngineConfig Policy;
  /// Telemetry: export paths, log level, trace capacity. Fields left at
  /// their defaults inherit the process-wide config set by the
  /// --metrics-out/--trace-out/--log-level flags (see obs/Obs.h).
  ObsConfig Obs;
};

/// Headline numbers of one run.
struct RunResult {
  Cycles TotalCycles = 0;
  Cycles GcCycles = 0;
  Cycles MonitorOverheadCycles = 0;
  MemoryStats Memory;
  GcStats Gc;
  VmRuntimeStats Vm;
  uint64_t SamplesTaken = 0;
  uint64_t CoallocatedPairs = 0;
  uint32_t HeapBytes = 0;
  /// Final metrics snapshot (taken when result() is called).
  MetricsSnapshot Metrics;
  /// The run's decision journal (every policy decision the online
  /// optimizers took, virtual-clock-stamped, in append order).
  std::vector<DecisionRecord> Journal;

  double seconds() const { return VirtualClock::toSeconds(TotalCycles); }
};

/// Owns all components of one experiment.
class Experiment {
public:
  explicit Experiment(const RunConfig &Config);
  ~Experiment();

  /// Runs the workload to completion (and finishes the monitor).
  void run();

  /// Split-phase run, for drivers that interleave their own execution
  /// between start and finish (the fleet's request traffic loop):
  /// beginRun() marks the start (and arms the self-profiler), the caller
  /// invokes whatever it wants on vm(), and finishRun() drains/stops the
  /// monitor and exports telemetry. run() is exactly beginRun() +
  /// Vm->run(Main) + finishRun().
  void beginRun();
  void finishRun();

  RunResult result();

  VirtualMachine &vm() { return *Vm; }
  GarbageCollector &collector() { return *Gc; }
  /// The run's telemetry (metrics registry + trace buffer).
  ObsContext &obs() { return Obs; }
  /// Null when Monitoring is off.
  HpmMonitor *monitor() { return Monitor.get(); }
  /// Null unless the corresponding consumer was configured.
  PhaseDetector *phaseDetector() { return Phase.get(); }
  PrefetchInjector *prefetchInjector() { return Prefetcher.get(); }
  FrequencyAdvisor *frequencyAdvisor() { return Freq.get(); }
  OptimizationController *prefetchController() { return PrefetchCtl.get(); }
  BottleneckClassifier *bottleneckClassifier() { return Classifier.get(); }
  PolicyEngine *policyEngine() { return Engine.get(); }
  const WorkloadProgram &program() const { return Prog; }
  const WorkloadSpec &spec() const { return *Spec; }
  uint32_t heapBytes() const { return HeapBytes; }

private:
  RunConfig Config;
  ObsContext Obs;
  const WorkloadSpec *Spec;
  uint32_t HeapBytes;
  std::unique_ptr<VirtualMachine> Vm;
  std::unique_ptr<GarbageCollector> Gc;
  std::unique_ptr<HpmMonitor> Monitor;
  std::unique_ptr<PhaseDetector> Phase;
  std::unique_ptr<PrefetchInjector> Prefetcher;
  std::unique_ptr<OptimizationController> PrefetchCtl;
  std::unique_ptr<FrequencyAdvisor> Freq;
  std::unique_ptr<BottleneckClassifier> Classifier;
  std::unique_ptr<class PolicyEngine> Engine;
  WorkloadProgram Prog;
  bool Ran = false;
  /// Split-phase run state (set by beginRun, consumed by finishRun).
  Cycles RunStart = 0;
  uint64_t WallT0 = 0;
};

/// Convenience: configure, run, return the result.
RunResult runExperiment(const RunConfig &Config);

} // namespace hpmvm

#endif // HPMVM_HARNESS_EXPERIMENTRUNNER_H
