//===-- harness/ParallelRunner.h - Concurrent experiment execution -*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread pool for independent Experiments. Every Experiment owns its VM,
/// heap, virtual clock, RNG and ObsContext, so runs are embarrassingly
/// parallel -- the only shared state reachable from Experiment::run() is
/// the obs layer (metric sinks, Log, the process ObsConfig), all of which
/// is atomic or frozen before workers start (see obs/ headers).
///
/// Contract: results are collected **by index**, so anything derived from
/// them (tables, CSV mirrors, metrics JSON) is bit-identical regardless of
/// the job count. Jobs==1 runs inline on the caller's thread -- exactly the
/// historical serial behavior, no threads created.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_HARNESS_PARALLELRUNNER_H
#define HPMVM_HARNESS_PARALLELRUNNER_H

#include "harness/ExperimentRunner.h"

#include <functional>
#include <vector>

namespace hpmvm {

/// Resolves a --jobs request: 0 means "one per hardware thread", anything
/// else is used as given (clamped to >= 1).
unsigned effectiveJobs(unsigned Requested);

/// Runs Body(0) .. Body(N-1), each exactly once, on up to \p Jobs worker
/// threads. Body must confine its writes to state owned by its index.
/// Indices are handed out through a shared atomic cursor, so completion
/// order is scheduling-dependent -- never derive output from it. With
/// Jobs <= 1 (or N <= 1) the loop runs inline and no thread is spawned.
/// Before spawning workers the process ObsConfig is frozen
/// (freezeProcessObsConfig); the first exception from any index is
/// rethrown on the caller's thread after all workers join.
void parallelFor(size_t N, unsigned Jobs,
                 const std::function<void(size_t)> &Body);

/// Convenience: run every config, return results in input order.
std::vector<RunResult> runExperiments(const std::vector<RunConfig> &Configs,
                                      unsigned Jobs);

} // namespace hpmvm

#endif // HPMVM_HARNESS_PARALLELRUNNER_H
