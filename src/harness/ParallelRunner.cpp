//===-- harness/ParallelRunner.cpp ----------------------------------------===//

#include "harness/ParallelRunner.h"

#include "obs/Obs.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

using namespace hpmvm;

unsigned hpmvm::effectiveJobs(unsigned Requested) {
  if (Requested)
    return Requested;
  unsigned Hw = std::thread::hardware_concurrency();
  return Hw ? Hw : 1;
}

void hpmvm::parallelFor(size_t N, unsigned Jobs,
                        const std::function<void(size_t)> &Body) {
  Jobs = effectiveJobs(Jobs);
  if (Jobs <= 1 || N <= 1) {
    for (size_t I = 0; I != N; ++I)
      Body(I);
    return;
  }

  // From here on multiple experiments may read the process ObsConfig
  // concurrently; make late writes impossible instead of racy.
  freezeProcessObsConfig();

  std::atomic<size_t> Next{0};
  std::exception_ptr FirstError;
  std::mutex ErrorLock;

  auto Worker = [&] {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= N)
        return;
      try {
        Body(I);
      } catch (...) {
        std::lock_guard<std::mutex> Guard(ErrorLock);
        if (!FirstError)
          FirstError = std::current_exception();
      }
    }
  };

  size_t NumThreads = Jobs < N ? Jobs : N;
  std::vector<std::thread> Threads;
  Threads.reserve(NumThreads);
  for (size_t T = 0; T != NumThreads; ++T)
    Threads.emplace_back(Worker);
  for (std::thread &T : Threads)
    T.join();
  if (FirstError)
    std::rethrow_exception(FirstError);
}

std::vector<RunResult>
hpmvm::runExperiments(const std::vector<RunConfig> &Configs, unsigned Jobs) {
  std::vector<RunResult> Results(Configs.size());
  parallelFor(Configs.size(), Jobs,
              [&](size_t I) { Results[I] = runExperiment(Configs[I]); });
  return Results;
}
