//===-- harness/Fleet.cpp -------------------------------------------------===//

#include "harness/Fleet.h"

#include "harness/ParallelRunner.h"
#include "harness/Suite.h"
#include "obs/Log.h"
#include "obs/Obs.h"
#include "support/Random.h"
#include "support/SpscQueue.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <thread>

using namespace hpmvm;

namespace {

/// Traffic-shape constants shared by every tenant stream.
struct TrafficShape {
  double MeanGap;
  double HalfBurst;
  double Amplitude;

  explicit TrafficShape(const FleetTrafficConfig &TC) {
    const double CyclesPerMs =
        static_cast<double>(VirtualClock::fromMillis(1));
    MeanGap = CyclesPerMs * 1000.0 / TC.ArrivalRatePerSec;
    HalfBurst =
        TC.BurstPeriodMs > 0 ? CyclesPerMs * TC.BurstPeriodMs / 2.0 : 0.0;
    Amplitude = TC.BurstAmplitude;
  }
};

/// One tenant's independent arrival + handler-mix stream. Consumes its
/// SplitMix64 in a fixed order -- burst phase at construction, then
/// first-arrival gap, then one handler pick and one gap per request -- so
/// the sequential and parallel engines see identical schedules no matter
/// which thread runs the stream.
class TrafficStream {
public:
  TrafficStream(const TrafficShape &Shape, uint64_t Seed, size_t Tenant)
      : Shape(Shape), Tenant(Tenant),
        Rng(Seed +
            0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(Tenant) + 1)) {
    if (Shape.HalfBurst > 0.0)
      Phase = Rng.nextDouble() * 2.0 * Shape.HalfBurst;
  }

  /// Exponential interarrival with piecewise-constant bursty rate: the
  /// instantaneous rate is (1 +/- BurstAmplitude) x mean, alternating every
  /// half burst period, phase-shifted per tenant.
  double drawGap(double At) {
    double U = 1.0 - Rng.nextDouble(); // (0, 1]
    double Mult = 1.0;
    if (Shape.HalfBurst > 0.0 && Shape.Amplitude > 0.0) {
      uint64_t Half = static_cast<uint64_t>((At + Phase) / Shape.HalfBurst);
      Mult = (Half & 1) ? 1.0 - Shape.Amplitude : 1.0 + Shape.Amplitude;
      if (Mult <= 0.0)
        Mult = 0.05;
    }
    return Shape.MeanGap * -std::log(U) / Mult;
  }

  /// 60/30/10 lookup/insert/report mix, rotated by tenant id so tenants
  /// stress different paths.
  size_t pickHandler(size_t NumHandlers) {
    uint64_t D = Rng.nextBelow(10);
    size_t Idx = D < 6 ? 0 : D < 9 ? 1 : 2;
    return (Idx + Tenant) % NumHandlers;
  }

private:
  TrafficShape Shape;
  size_t Tenant;
  SplitMix64 Rng;
  double Phase = 0.0;
};

/// One finished quantum, published worker -> coordinator. Start is the
/// value the sequential pick loop would have computed for this quantum
/// (max of the shard clock before serving and the arrival time); the setup
/// quantum uses -1 so every setup commits before any request, in shard
/// order, exactly like the sequential engine's setup pass.
struct QuantumRecord {
  double Start;
  Cycles Delta;
};

constexpr double kSetupStart = -1.0;

void requireServerWorkload(Experiment &E) {
  if (E.program().RequestHandlers.empty()) {
    logError("harness",
             "fleet traffic mode needs a server workload; '%s' has no "
             "request handlers",
             E.spec().Name.c_str());
    abort();
  }
}

} // namespace

Fleet::Fleet(const FleetConfig &Config)
    : Config(Config), Arbiter(Config.Arbiter) {
  assert(Config.Shards >= 1 && "a fleet needs at least one shard");
  Shards.reserve(Config.Shards);
  Requests.assign(Config.Shards, 0);
  Busy.assign(Config.Shards, 0);
  for (uint32_t S = 0; S != Config.Shards; ++S) {
    RunConfig C = Config.Base;
    // Per-shard seeds: deterministic, scheduling-independent, and shard 0
    // of a 1-shard fleet runs the base config verbatim.
    C.Params.Seed = Config.Base.Params.Seed + S;
    C.Monitor.Seed = Config.Base.Monitor.Seed + S;
    C.Monitor.Tenant = S;
    C.Obs = resolveObsConfig(C.Obs);
    if (Config.Shards > 1 && C.Obs.exportsAnything())
      C.Obs = uniquifySuiteObsPaths(C.Obs, S);
    Shards.push_back(std::make_unique<Experiment>(C));
    // The shared PMU exists only where shards interleave. Classic mode is
    // N dedicated machines; joining the arbiter there would close every
    // non-granted shard's sample gate for its entire (unshared) run.
    if (Config.Traffic && Shards.back()->monitor()) {
      TenantId T =
          Shards.back()->monitor()->perfmon().joinArbiter(Arbiter);
      (void)T;
      assert(T == S && "arbiter tenant ids must match shard order");
    }
  }
  if (Arbiter.tenants())
    Arbiter.start();
}

Fleet::~Fleet() = default;

void Fleet::run() {
  assert(!Ran && "fleet ran twice");
  Ran = true;
  if (Config.Traffic)
    runTraffic();
  else
    runClassic();
}

void Fleet::runClassic() {
  // Classic shards are N dedicated machines; the pool contract is the same
  // as runExperiments (results collected by index, so any job count yields
  // identical output).
  parallelFor(Shards.size(), effectiveJobs(Config.Jobs),
              [&](size_t I) { Shards[I]->run(); });
}

void Fleet::runTraffic() {
  const bool Shared = Arbiter.tenants() != 0;
  unsigned Jobs = effectiveJobs(Config.Jobs);
  if (!Shared && Jobs > 1 && Shards.size() > 1) {
    runTrafficParallel(
        std::min<unsigned>(Jobs, static_cast<unsigned>(Shards.size())));
    return;
  }

  const FleetTrafficConfig &TC = Config.TrafficCfg;
  const size_t N = Shards.size();

  // Independent per-tenant traffic streams: each tenant's arrivals and
  // handler picks consume its own SplitMix64 in request order, so the
  // schedule never depends on how tenants happen to interleave.
  TrafficShape Shape(TC);
  std::vector<TrafficStream> Streams;
  std::vector<double> NextArrival(N, 0.0);
  Streams.reserve(N);
  for (size_t T = 0; T != N; ++T)
    Streams.emplace_back(Shape, TC.Seed, T);

  // Session setup, one quantum per shard, in shard order.
  for (size_t T = 0; T != N; ++T) {
    Experiment &E = *Shards[T];
    requireServerWorkload(E);
    E.beginRun();
    if (Shared)
      Arbiter.beginQuantum(static_cast<TenantId>(T));
    Cycles C0 = E.vm().clock().now();
    if (E.program().Setup != kInvalidId)
      E.vm().invoke(E.program().Setup, {});
    E.vm().safepoint();
    if (Shared)
      Arbiter.endQuantum(static_cast<TenantId>(T),
                         E.vm().clock().now() - C0);
    NextArrival[T] =
        static_cast<double>(E.vm().clock().now()) +
        Streams[T].drawGap(static_cast<double>(E.vm().clock().now()));
  }

  // The discrete-event request loop: always serve the tenant whose next
  // request starts earliest (its arrival, or now if it has a backlog);
  // ties break to the lowest shard id. One request = one PMU quantum.
  std::vector<uint32_t> Served(N, 0);
  for (;;) {
    size_t Pick = N;
    double PickStart = 0.0;
    for (size_t T = 0; T != N; ++T) {
      if (Served[T] >= TC.RequestsPerTenant)
        continue;
      double Start =
          std::max(static_cast<double>(Shards[T]->vm().clock().now()),
                   NextArrival[T]);
      if (Pick == N || Start < PickStart) {
        Pick = T;
        PickStart = Start;
      }
    }
    if (Pick == N)
      break;
    Experiment &E = *Shards[Pick];
    VirtualClock &Clock = E.vm().clock();
    Cycles Arr = static_cast<Cycles>(NextArrival[Pick]);
    if (Clock.now() < Arr)
      Clock.advance(Arr - Clock.now()); // Open-loop: idle until arrival.
    const std::vector<MethodId> &H = E.program().RequestHandlers;
    size_t Idx = Streams[Pick].pickHandler(H.size());
    if (Shared)
      Arbiter.beginQuantum(static_cast<TenantId>(Pick));
    Cycles C0 = Clock.now();
    E.vm().invoke(H[Idx], {});
    E.vm().safepoint(); // Poll so tail samples are not stranded.
    Cycles Delta = Clock.now() - C0;
    if (Shared)
      Arbiter.endQuantum(static_cast<TenantId>(Pick), Delta);
    Busy[Pick] += Delta;
    ++Requests[Pick];
    ++Served[Pick];
    NextArrival[Pick] += Streams[Pick].drawGap(NextArrival[Pick]);
  }

  // Drain and export, in shard order. The fleet gauges ride in each
  // tenant's metrics snapshot so runs-JSON and hpmvm_report see them
  // without any format change.
  for (size_t T = 0; T != N; ++T) {
    Experiment &E = *Shards[T];
    E.obs().metrics().gauge("fleet.requests").set(Requests[T]);
    E.obs().metrics().gauge("fleet.busy_cycles").set(Busy[T]);
    if (Shared)
      E.obs()
          .metrics()
          .gauge("fleet.pmu_granted_ppm")
          .set(static_cast<uint64_t>(
              Arbiter.grantedFraction(static_cast<TenantId>(T)) * 1e6));
    E.finishRun();
  }
}

void Fleet::runTrafficParallel(unsigned Jobs) {
  // Only reachable for arbiter-free fleets: without the shared-PMU gate,
  // the sequential loop's iterations touch nothing but the picked shard's
  // own state, so each shard's request stream can run stand-alone on a
  // worker while the coordinator below replays the exact sequential commit
  // order from the published start times.
  assert(Arbiter.tenants() == 0 && "parallel engine requires no shared PMU");
  const FleetTrafficConfig &TC = Config.TrafficCfg;
  const size_t N = Shards.size();
  // Pre-flight the workload check (the sequential engine does it lazily in
  // its setup pass) so workers cannot hit the abort path concurrently.
  for (size_t T = 0; T != N; ++T)
    requireServerWorkload(*Shards[T]);

  TrafficShape Shape(TC);

  // One queue per shard, sized so a worker can never block: a shard
  // publishes exactly RequestsPerTenant + 1 quanta (setup included), and
  // bounded queues with whole-shard worker assignments plus a strict merge
  // would otherwise deadlock (the coordinator may need shard X's head
  // while X's worker is wedged pushing an earlier shard's overflow).
  const uint32_t PerShard = TC.RequestsPerTenant + 1;
  std::vector<std::unique_ptr<SpscQueue<QuantumRecord>>> Queues;
  Queues.reserve(N);
  for (size_t T = 0; T != N; ++T)
    Queues.push_back(std::make_unique<SpscQueue<QuantumRecord>>(PerShard));

  // Same contract as parallelFor: the obs layer is frozen before any
  // worker exists, and the first worker exception is rethrown after join.
  freezeProcessObsConfig();
  std::atomic<bool> Failed{false};
  std::exception_ptr FirstError;
  std::mutex ErrorLock;

  // Runs one shard's entire stream -- setup plus every request in arrival
  // order -- publishing each finished quantum. Start times reproduce the
  // sequential pick loop's values exactly.
  auto runShard = [&](size_t T) {
    Experiment &E = *Shards[T];
    SpscQueue<QuantumRecord> &Q = *Queues[T];
    TrafficStream Stream(Shape, TC.Seed, T);
    VirtualClock &Clock = E.vm().clock();
    E.beginRun();
    if (E.program().Setup != kInvalidId)
      E.vm().invoke(E.program().Setup, {});
    E.vm().safepoint();
    bool Pushed = Q.tryPush({kSetupStart, 0});
    assert(Pushed && "quantum queue sized to never fill");
    double Next = static_cast<double>(Clock.now()) +
                  Stream.drawGap(static_cast<double>(Clock.now()));
    const std::vector<MethodId> &H = E.program().RequestHandlers;
    for (uint32_t R = 0; R != TC.RequestsPerTenant; ++R) {
      double Start = std::max(static_cast<double>(Clock.now()), Next);
      Cycles Arr = static_cast<Cycles>(Next);
      if (Clock.now() < Arr)
        Clock.advance(Arr - Clock.now()); // Open-loop: idle until arrival.
      size_t Idx = Stream.pickHandler(H.size());
      Cycles C0 = Clock.now();
      E.vm().invoke(H[Idx], {});
      E.vm().safepoint(); // Poll so tail samples are not stranded.
      Pushed = Q.tryPush({Start, Clock.now() - C0});
      assert(Pushed && "quantum queue sized to never fill");
      Next += Stream.drawGap(Next);
    }
    (void)Pushed;
  };

  // Static round-robin shard ownership: worker W serves shards W, W+Jobs,
  // ... sequentially. The coordinator's merge tolerates any per-worker
  // pacing; ownership never moves, preserving SPSC.
  std::vector<std::thread> Workers;
  Workers.reserve(Jobs);
  for (unsigned W = 0; W != Jobs; ++W) {
    Workers.emplace_back([&, W] {
      try {
        for (size_t T = W; T < N; T += Jobs)
          runShard(T);
      } catch (...) {
        {
          std::lock_guard<std::mutex> Lock(ErrorLock);
          if (!FirstError)
            FirstError = std::current_exception();
        }
        Failed.store(true);
      }
    });
  }

  // Deterministic commit: a k-way merge over the queue heads replays the
  // sequential engine's earliest-start/lowest-id order (each shard's start
  // sequence is non-decreasing, so heads suffice). Stalls until every
  // unfinished shard has a visible head; commits accumulate the fleet
  // counters in exactly the Jobs=1 order.
  std::vector<uint32_t> Committed(N, 0);
  std::vector<double> LastStart(N, kSetupStart);
  size_t TotalQuanta = N * static_cast<size_t>(PerShard);
  for (size_t Done = 0; Done != TotalQuanta;) {
    size_t Pick = N;
    double PickStart = 0.0;
    bool AllHeadsVisible = true;
    for (size_t T = 0; T != N; ++T) {
      if (Committed[T] == PerShard)
        continue;
      const QuantumRecord *Head = Queues[T]->peek();
      if (!Head) {
        AllHeadsVisible = false;
        break;
      }
      if (Pick == N || Head->Start < PickStart) {
        Pick = T;
        PickStart = Head->Start;
      }
    }
    if (!AllHeadsVisible) {
      if (Failed.load())
        break;
      std::this_thread::yield();
      continue;
    }
    QuantumRecord Rec = *Queues[Pick]->peek();
    Queues[Pick]->pop();
    assert(Rec.Start >= LastStart[Pick] &&
           "per-shard start times must be non-decreasing");
    LastStart[Pick] = Rec.Start;
    if (Rec.Start != kSetupStart) {
      Busy[Pick] += Rec.Delta;
      ++Requests[Pick];
    }
    ++Committed[Pick];
    ++Done;
  }

  for (std::thread &W : Workers)
    W.join();
  if (FirstError)
    std::rethrow_exception(FirstError);

  // Drain and export, in shard order on this thread -- identical to the
  // sequential engine's drain pass (no shared PMU here, so no granted-share
  // gauge).
  for (size_t T = 0; T != N; ++T) {
    Experiment &E = *Shards[T];
    E.obs().metrics().gauge("fleet.requests").set(Requests[T]);
    E.obs().metrics().gauge("fleet.busy_cycles").set(Busy[T]);
    E.finishRun();
  }
}

FleetResult Fleet::result() {
  FleetResult R;
  R.PmuRotations = Arbiter.rotations();
  R.Tenants.reserve(Shards.size());
  RunResult &A = R.Aggregate;
  for (size_t T = 0; T != Shards.size(); ++T) {
    FleetTenantResult TR;
    TR.Tenant = static_cast<TenantId>(T);
    TR.Run = Shards[T]->result();
    if (Arbiter.tenants())
      TR.Share = Arbiter.shareOf(static_cast<TenantId>(T));
    TR.Requests = Requests[T];
    TR.BusyCycles = Busy[T];

    const RunResult &Run = TR.Run;
    R.MakespanCycles = std::max(R.MakespanCycles, Run.TotalCycles);
    A.GcCycles += Run.GcCycles;
    A.MonitorOverheadCycles += Run.MonitorOverheadCycles;
    A.SamplesTaken += Run.SamplesTaken;
    A.CoallocatedPairs += Run.CoallocatedPairs;
    A.HeapBytes += Run.HeapBytes;
    A.Memory.Accesses += Run.Memory.Accesses;
    A.Memory.L1Misses += Run.Memory.L1Misses;
    A.Memory.L2Misses += Run.Memory.L2Misses;
    A.Memory.TlbMisses += Run.Memory.TlbMisses;
    A.Gc.MinorCollections += Run.Gc.MinorCollections;
    A.Gc.MajorCollections += Run.Gc.MajorCollections;
    A.Gc.ObjectsPromoted += Run.Gc.ObjectsPromoted;
    A.Vm.BytecodesInterpreted += Run.Vm.BytecodesInterpreted;
    A.Vm.MachineInstsExecuted += Run.Vm.MachineInstsExecuted;
    A.Vm.ObjectsAllocated += Run.Vm.ObjectsAllocated;
    A.Vm.BytesAllocated += Run.Vm.BytesAllocated;
    for (DecisionRecord D : Run.Journal) {
      D.Tenant = static_cast<TenantId>(T);
      A.Journal.push_back(D);
    }
    R.Tenants.push_back(std::move(TR));
  }
  A.TotalCycles = R.MakespanCycles;
  // Merge the per-tenant journals into one timeline; stable sort keeps
  // same-timestamp records in tenant order, so the merged JSONL is a pure
  // function of the per-tenant journals.
  std::stable_sort(A.Journal.begin(), A.Journal.end(),
                   [](const DecisionRecord &X, const DecisionRecord &Y) {
                     return X.Ts < Y.Ts;
                   });
  return R;
}

FleetResult hpmvm::runFleet(const FleetConfig &Config) {
  Fleet F(Config);
  F.run();
  return F.result();
}
