//===-- harness/Fleet.cpp -------------------------------------------------===//

#include "harness/Fleet.h"

#include "harness/Suite.h"
#include "obs/Log.h"
#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>

using namespace hpmvm;

Fleet::Fleet(const FleetConfig &Config)
    : Config(Config), Arbiter(Config.Arbiter) {
  assert(Config.Shards >= 1 && "a fleet needs at least one shard");
  Shards.reserve(Config.Shards);
  Requests.assign(Config.Shards, 0);
  Busy.assign(Config.Shards, 0);
  for (uint32_t S = 0; S != Config.Shards; ++S) {
    RunConfig C = Config.Base;
    // Per-shard seeds: deterministic, scheduling-independent, and shard 0
    // of a 1-shard fleet runs the base config verbatim.
    C.Params.Seed = Config.Base.Params.Seed + S;
    C.Monitor.Seed = Config.Base.Monitor.Seed + S;
    C.Monitor.Tenant = S;
    C.Obs = resolveObsConfig(C.Obs);
    if (Config.Shards > 1 && C.Obs.exportsAnything())
      C.Obs = uniquifySuiteObsPaths(C.Obs, S);
    Shards.push_back(std::make_unique<Experiment>(C));
    // The shared PMU exists only where shards interleave. Classic mode is
    // N dedicated machines; joining the arbiter there would close every
    // non-granted shard's sample gate for its entire (unshared) run.
    if (Config.Traffic && Shards.back()->monitor()) {
      TenantId T =
          Shards.back()->monitor()->perfmon().joinArbiter(Arbiter);
      (void)T;
      assert(T == S && "arbiter tenant ids must match shard order");
    }
  }
  if (Arbiter.tenants())
    Arbiter.start();
}

Fleet::~Fleet() = default;

void Fleet::run() {
  assert(!Ran && "fleet ran twice");
  Ran = true;
  if (Config.Traffic)
    runTraffic();
  else
    runClassic();
}

void Fleet::runClassic() {
  for (std::unique_ptr<Experiment> &E : Shards)
    E->run();
}

void Fleet::runTraffic() {
  const FleetTrafficConfig &TC = Config.TrafficCfg;
  const size_t N = Shards.size();
  const bool Shared = Arbiter.tenants() != 0;

  // Independent per-tenant traffic streams: each tenant's arrivals and
  // handler picks consume its own SplitMix64 in request order, so the
  // schedule never depends on how tenants happen to interleave.
  const double CyclesPerMs = static_cast<double>(VirtualClock::fromMillis(1));
  const double MeanGap = CyclesPerMs * 1000.0 / TC.ArrivalRatePerSec;
  const double HalfBurst =
      TC.BurstPeriodMs > 0 ? CyclesPerMs * TC.BurstPeriodMs / 2.0 : 0.0;
  std::vector<SplitMix64> Rngs;
  std::vector<double> Phase(N, 0.0), NextArrival(N, 0.0);
  Rngs.reserve(N);
  for (size_t T = 0; T != N; ++T) {
    Rngs.emplace_back(TC.Seed + 0x9e3779b97f4a7c15ull *
                                    (static_cast<uint64_t>(T) + 1));
    if (HalfBurst > 0.0)
      Phase[T] = Rngs.back().nextDouble() * 2.0 * HalfBurst;
  }
  // Exponential interarrival with piecewise-constant bursty rate: the
  // instantaneous rate is (1 +/- BurstAmplitude) x mean, alternating every
  // half burst period, phase-shifted per tenant.
  auto drawGap = [&](size_t T, double At) {
    double U = 1.0 - Rngs[T].nextDouble(); // (0, 1]
    double Mult = 1.0;
    if (HalfBurst > 0.0 && TC.BurstAmplitude > 0.0) {
      uint64_t Half = static_cast<uint64_t>((At + Phase[T]) / HalfBurst);
      Mult = (Half & 1) ? 1.0 - TC.BurstAmplitude : 1.0 + TC.BurstAmplitude;
      if (Mult <= 0.0)
        Mult = 0.05;
    }
    return MeanGap * -std::log(U) / Mult;
  };
  // 60/30/10 lookup/insert/report mix, rotated by tenant id so tenants
  // stress different paths.
  auto pickHandler = [&](size_t T, size_t NumHandlers) {
    uint64_t D = Rngs[T].nextBelow(10);
    size_t Idx = D < 6 ? 0 : D < 9 ? 1 : 2;
    return (Idx + T) % NumHandlers;
  };

  // Session setup, one quantum per shard, in shard order.
  for (size_t T = 0; T != N; ++T) {
    Experiment &E = *Shards[T];
    if (E.program().RequestHandlers.empty()) {
      logError("harness",
               "fleet traffic mode needs a server workload; '%s' has no "
               "request handlers",
               E.spec().Name.c_str());
      abort();
    }
    E.beginRun();
    if (Shared)
      Arbiter.beginQuantum(static_cast<TenantId>(T));
    Cycles C0 = E.vm().clock().now();
    if (E.program().Setup != kInvalidId)
      E.vm().invoke(E.program().Setup, {});
    E.vm().safepoint();
    if (Shared)
      Arbiter.endQuantum(static_cast<TenantId>(T),
                         E.vm().clock().now() - C0);
    NextArrival[T] = static_cast<double>(E.vm().clock().now()) +
                     drawGap(T, static_cast<double>(E.vm().clock().now()));
  }

  // The discrete-event request loop: always serve the tenant whose next
  // request starts earliest (its arrival, or now if it has a backlog);
  // ties break to the lowest shard id. One request = one PMU quantum.
  std::vector<uint32_t> Served(N, 0);
  for (;;) {
    size_t Pick = N;
    double PickStart = 0.0;
    for (size_t T = 0; T != N; ++T) {
      if (Served[T] >= TC.RequestsPerTenant)
        continue;
      double Start =
          std::max(static_cast<double>(Shards[T]->vm().clock().now()),
                   NextArrival[T]);
      if (Pick == N || Start < PickStart) {
        Pick = T;
        PickStart = Start;
      }
    }
    if (Pick == N)
      break;
    Experiment &E = *Shards[Pick];
    VirtualClock &Clock = E.vm().clock();
    Cycles Arr = static_cast<Cycles>(NextArrival[Pick]);
    if (Clock.now() < Arr)
      Clock.advance(Arr - Clock.now()); // Open-loop: idle until arrival.
    const std::vector<MethodId> &H = E.program().RequestHandlers;
    size_t Idx = pickHandler(Pick, H.size());
    if (Shared)
      Arbiter.beginQuantum(static_cast<TenantId>(Pick));
    Cycles C0 = Clock.now();
    E.vm().invoke(H[Idx], {});
    E.vm().safepoint(); // Poll so tail samples are not stranded.
    Cycles Delta = Clock.now() - C0;
    if (Shared)
      Arbiter.endQuantum(static_cast<TenantId>(Pick), Delta);
    Busy[Pick] += Delta;
    ++Requests[Pick];
    ++Served[Pick];
    NextArrival[Pick] += drawGap(Pick, NextArrival[Pick]);
  }

  // Drain and export, in shard order. The fleet gauges ride in each
  // tenant's metrics snapshot so runs-JSON and hpmvm_report see them
  // without any format change.
  for (size_t T = 0; T != N; ++T) {
    Experiment &E = *Shards[T];
    E.obs().metrics().gauge("fleet.requests").set(Requests[T]);
    E.obs().metrics().gauge("fleet.busy_cycles").set(Busy[T]);
    if (Shared)
      E.obs()
          .metrics()
          .gauge("fleet.pmu_granted_ppm")
          .set(static_cast<uint64_t>(
              Arbiter.grantedFraction(static_cast<TenantId>(T)) * 1e6));
    E.finishRun();
  }
}

FleetResult Fleet::result() {
  FleetResult R;
  R.PmuRotations = Arbiter.rotations();
  R.Tenants.reserve(Shards.size());
  RunResult &A = R.Aggregate;
  for (size_t T = 0; T != Shards.size(); ++T) {
    FleetTenantResult TR;
    TR.Tenant = static_cast<TenantId>(T);
    TR.Run = Shards[T]->result();
    if (Arbiter.tenants())
      TR.Share = Arbiter.shareOf(static_cast<TenantId>(T));
    TR.Requests = Requests[T];
    TR.BusyCycles = Busy[T];

    const RunResult &Run = TR.Run;
    R.MakespanCycles = std::max(R.MakespanCycles, Run.TotalCycles);
    A.GcCycles += Run.GcCycles;
    A.MonitorOverheadCycles += Run.MonitorOverheadCycles;
    A.SamplesTaken += Run.SamplesTaken;
    A.CoallocatedPairs += Run.CoallocatedPairs;
    A.HeapBytes += Run.HeapBytes;
    A.Memory.Accesses += Run.Memory.Accesses;
    A.Memory.L1Misses += Run.Memory.L1Misses;
    A.Memory.L2Misses += Run.Memory.L2Misses;
    A.Memory.TlbMisses += Run.Memory.TlbMisses;
    A.Gc.MinorCollections += Run.Gc.MinorCollections;
    A.Gc.MajorCollections += Run.Gc.MajorCollections;
    A.Gc.ObjectsPromoted += Run.Gc.ObjectsPromoted;
    A.Vm.BytecodesInterpreted += Run.Vm.BytecodesInterpreted;
    A.Vm.MachineInstsExecuted += Run.Vm.MachineInstsExecuted;
    A.Vm.ObjectsAllocated += Run.Vm.ObjectsAllocated;
    A.Vm.BytesAllocated += Run.Vm.BytesAllocated;
    for (DecisionRecord D : Run.Journal) {
      D.Tenant = static_cast<TenantId>(T);
      A.Journal.push_back(D);
    }
    R.Tenants.push_back(std::move(TR));
  }
  A.TotalCycles = R.MakespanCycles;
  // Merge the per-tenant journals into one timeline; stable sort keeps
  // same-timestamp records in tenant order, so the merged JSONL is a pure
  // function of the per-tenant journals.
  std::stable_sort(A.Journal.begin(), A.Journal.end(),
                   [](const DecisionRecord &X, const DecisionRecord &Y) {
                     return X.Ts < Y.Ts;
                   });
  return R;
}

FleetResult hpmvm::runFleet(const FleetConfig &Config) {
  Fleet F(Config);
  F.run();
  return F.result();
}
