//===-- support/Random.h - Deterministic pseudo-random numbers -*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic RNG (SplitMix64) used everywhere randomness
/// is needed: PEBS interval randomization (the paper randomizes the low 8
/// bits of the sampling interval), workload data generation, and property
/// tests. Determinism matters: every experiment must be reproducible from
/// its seed.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_SUPPORT_RANDOM_H
#define HPMVM_SUPPORT_RANDOM_H

#include <cstddef>
#include <cstdint>

namespace hpmvm {

/// Deterministic 64-bit PRNG (SplitMix64). Cheap enough to sit on the PEBS
/// event path.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed = 0x9e3779b97f4a7c15ull) : State(Seed) {}

  /// \returns the next 64 random bits.
  uint64_t next();

  /// \returns a uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound);

  /// \returns a uniform value in [Lo, Hi] inclusive. Requires Lo <= Hi.
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi);

  /// \returns a uniform double in [0, 1).
  double nextDouble();

  /// Reseeds the generator.
  void seed(uint64_t Seed) { State = Seed; }

private:
  uint64_t State;
};

/// Fisher-Yates shuffles \p Data[0..N) using \p Rng.
template <typename T>
void shuffle(T *Data, size_t N, SplitMix64 &Rng) {
  if (N < 2)
    return;
  for (size_t I = N - 1; I != 0; --I) {
    size_t J = static_cast<size_t>(Rng.nextBelow(I + 1));
    T Tmp = Data[I];
    Data[I] = Data[J];
    Data[J] = Tmp;
  }
}

} // namespace hpmvm

#endif // HPMVM_SUPPORT_RANDOM_H
