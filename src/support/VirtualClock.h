//===-- support/VirtualClock.h - Deterministic cycle clock -----*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated machine's cycle counter. All components (VM execution,
/// memory-hierarchy penalties, GC work, PEBS microcode, the sample-collector
/// "thread") advance this single clock, so runs are fully deterministic and
/// "execution time" is a reproducible quantity. The nominal frequency is
/// 3 GHz, matching the paper's 3 GHz Pentium 4, so cycle counts convert to
/// virtual seconds for the 10-1000 ms polling interval and the samples/sec
/// auto-interval target.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_SUPPORT_VIRTUALCLOCK_H
#define HPMVM_SUPPORT_VIRTUALCLOCK_H

#include "support/Types.h"

namespace hpmvm {

/// Deterministic cycle counter with a fixed nominal frequency.
class VirtualClock {
public:
  /// Nominal CPU frequency: 3 GHz, as in the paper's experimental platform.
  static constexpr uint64_t kHz = 3000000000ull;

  Cycles now() const { return Now; }

  /// Advances the clock by \p Delta cycles.
  void advance(Cycles Delta) { Now += Delta; }

  /// Resets the clock to zero (for back-to-back experiments).
  void reset() { Now = 0; }

  /// Converts cycles to virtual seconds at the nominal frequency.
  static double toSeconds(Cycles C) {
    return static_cast<double>(C) / static_cast<double>(kHz);
  }

  /// Converts virtual milliseconds to cycles at the nominal frequency.
  static Cycles fromMillis(double Ms) {
    return static_cast<Cycles>(Ms * 1e-3 * static_cast<double>(kHz));
  }

private:
  Cycles Now = 0;
};

} // namespace hpmvm

#endif // HPMVM_SUPPORT_VIRTUALCLOCK_H
