//===-- support/Flags.h - Shared command-line flag scanning ----*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one implementation of the repo-wide flag conventions, shared by the
/// obs flag parser, every bench binary (via bench::init) and the
/// hpmvm_report tool:
///
///   - "--flag value" and "--flag=value" are both accepted;
///   - numeric values parse strictly (the whole string must be a decimal
///     unsigned integer; atoi-style silent truncation to 0 is a bug, not a
///     convenience);
///   - malformed input produces an error message *naming the flag*, and the
///     caller exits 2 -- a typo'd sweep script must fail loudly instead of
///     silently benchmarking the wrong thing;
///   - arguments the caller does not recognize are compacted to the front
///     of argv so parsers can be chained (obs flags first, then bench
///     flags, then bench-specific extras).
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_SUPPORT_FLAGS_H
#define HPMVM_SUPPORT_FLAGS_H

#include <cstdint>
#include <string>

namespace hpmvm::flags {

/// Strict unsigned parse: the whole string must be a decimal number.
/// (atoi/atoll silently turn garbage into 0 -- a mistyped HPMVM_SEED would
/// quietly change every result.)
bool parseUint(const char *Text, uint64_t &Out);

/// What matching the current argument against a flag yielded.
enum class TakeResult {
  NoMatch,      ///< The argument is not this flag.
  Value,        ///< Matched; the value was extracted.
  MissingValue, ///< Matched as "--flag" at the end of argv: no value.
};

/// In-place argv scanner implementing the conventions above. Usage:
///
///   flags::ArgScanner S(Argc, Argv);
///   while (S.next()) {
///     uint64_t V = 0;
///     std::string Value;
///     if (S.takeUint("--jobs", 1024, V))
///       Opts.Jobs = static_cast<unsigned>(V);
///     else if (S.take("--filter", Value))
///       Opts.Filter = Value;
///     else
///       S.keepUnknown();   // or S.keep() for chained parsers
///   }
///   return S.ok();
///
/// When next() returns false the scanner has compacted argc/argv down to
/// the kept arguments (argv[0] plus every keep()), NUL-terminated like the
/// original vector.
class ArgScanner {
public:
  ArgScanner(int &Argc, char **Argv) : Argc(Argc), Argv(Argv) {}

  /// Advances to the next argument; false at the end (which finalizes the
  /// argv compaction).
  bool next();

  /// The current argument (valid between a true next() and the following
  /// next()).
  const char *arg() const { return Argv[I]; }

  /// Low-level match of the current argument against \p Flag; fills
  /// \p Value on TakeResult::Value, consuming the following argument in
  /// the "--flag value" form. Emits no diagnostics -- for callers with
  /// their own error sink.
  TakeResult tryTake(const char *Flag, std::string &Value);

  /// Convenience: tryTake + an "error: <flag> requires a value" stderr
  /// diagnostic on MissingValue (which also marks the scan failed).
  /// \returns true when the argument matched the flag at all.
  bool take(const char *Flag, std::string &Value);

  /// take() + strict unsigned parse bounded by \p Max; diagnoses and marks
  /// the scan failed on garbage, leaving \p Slot untouched.
  bool takeUint(const char *Flag, uint64_t Max, uint64_t &Slot);

  /// A bare valueless switch ("--self-profile").
  bool takeSwitch(const char *Flag);

  /// Keeps the current argument for a later parser in the chain.
  void keep() { Argv[Out++] = Argv[I]; }

  /// Diagnoses the current argument as unknown, marks the scan failed, and
  /// keeps it (mirroring the historical bench behavior, where the bad
  /// argument stays visible to whatever inspects argv after the failure).
  void keepUnknown();

  /// True while every taken flag parsed cleanly.
  bool ok() const { return Ok; }

  /// Marks the scan failed (for caller-side validation of a taken value).
  void fail() { Ok = false; }

private:
  int &Argc;
  char **Argv;
  int I = 0;
  int Out = 1;
  bool Ok = true;
  bool Done = false;
};

} // namespace hpmvm::flags

#endif // HPMVM_SUPPORT_FLAGS_H
