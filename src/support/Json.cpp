//===-- support/Json.cpp --------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cstdlib>

using namespace hpmvm;
using namespace hpmvm::json;

ValuePtr Value::get(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  auto It = Obj.find(Key);
  return It == Obj.end() ? nullptr : It->second;
}

double Value::num(const std::string &Key, double Default) const {
  ValuePtr V = get(Key);
  return V && V->isNumber() ? V->Num : Default;
}

std::string Value::str(const std::string &Key,
                       const std::string &Default) const {
  ValuePtr V = get(Key);
  return V && V->isString() ? V->Str : Default;
}

namespace {

class Parser {
public:
  explicit Parser(const std::string &Text) : S(Text) {}

  ValuePtr parse(bool &Ok) {
    Pos = 0;
    Failed = false;
    ValuePtr V = value();
    skipWs();
    Ok = !Failed && V && Pos == S.size();
    return Ok ? V : nullptr;
  }

private:
  void skipWs() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  bool eat(char C) {
    skipWs();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  ValuePtr fail() {
    Failed = true;
    return nullptr;
  }

  ValuePtr value() {
    skipWs();
    if (Pos >= S.size())
      return fail();
    char C = S[Pos];
    if (C == '{')
      return object();
    if (C == '[')
      return array();
    if (C == '"')
      return string();
    if (C == 't' || C == 'f')
      return boolean();
    if (C == 'n')
      return null();
    return number();
  }

  ValuePtr object() {
    if (!eat('{'))
      return fail();
    auto V = std::make_shared<Value>();
    V->K = Value::Kind::Object;
    skipWs();
    if (eat('}'))
      return V;
    while (true) {
      ValuePtr Key = string();
      if (!Key || !eat(':'))
        return fail();
      ValuePtr Member = value();
      if (!Member)
        return fail();
      V->Obj[Key->Str] = Member;
      if (eat(','))
        continue;
      if (eat('}'))
        return V;
      return fail();
    }
  }

  ValuePtr array() {
    if (!eat('['))
      return fail();
    auto V = std::make_shared<Value>();
    V->K = Value::Kind::Array;
    skipWs();
    if (eat(']'))
      return V;
    while (true) {
      ValuePtr Elem = value();
      if (!Elem)
        return fail();
      V->Arr.push_back(Elem);
      if (eat(','))
        continue;
      if (eat(']'))
        return V;
      return fail();
    }
  }

  ValuePtr string() {
    skipWs();
    if (Pos >= S.size() || S[Pos] != '"')
      return fail();
    ++Pos;
    auto V = std::make_shared<Value>();
    V->K = Value::Kind::String;
    while (Pos < S.size() && S[Pos] != '"') {
      char C = S[Pos++];
      if (C == '\\') {
        if (Pos >= S.size())
          return fail();
        char E = S[Pos++];
        switch (E) {
        case 'n': V->Str += '\n'; break;
        case 't': V->Str += '\t'; break;
        case 'r': V->Str += '\r'; break;
        case '"': V->Str += '"'; break;
        case '\\': V->Str += '\\'; break;
        case '/': V->Str += '/'; break;
        case 'u': // Keep the escape verbatim; callers don't need decoding.
          V->Str += "\\u";
          break;
        default:
          return fail();
        }
      } else {
        V->Str += C;
      }
    }
    if (Pos >= S.size())
      return fail();
    ++Pos; // Closing quote.
    return V;
  }

  ValuePtr boolean() {
    if (S.compare(Pos, 4, "true") == 0) {
      Pos += 4;
      auto V = std::make_shared<Value>();
      V->K = Value::Kind::Bool;
      V->B = true;
      return V;
    }
    if (S.compare(Pos, 5, "false") == 0) {
      Pos += 5;
      auto V = std::make_shared<Value>();
      V->K = Value::Kind::Bool;
      return V;
    }
    return fail();
  }

  ValuePtr null() {
    if (S.compare(Pos, 4, "null") == 0) {
      Pos += 4;
      return std::make_shared<Value>();
    }
    return fail();
  }

  ValuePtr number() {
    size_t Start = Pos;
    if (Pos < S.size() && (S[Pos] == '-' || S[Pos] == '+'))
      ++Pos;
    bool Digits = false;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
            S[Pos] == '-' || S[Pos] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(S[Pos])))
        Digits = true;
      ++Pos;
    }
    if (!Digits)
      return fail();
    auto V = std::make_shared<Value>();
    V->K = Value::Kind::Number;
    V->Num = std::strtod(S.substr(Start, Pos - Start).c_str(), nullptr);
    return V;
  }

  const std::string &S;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace

ValuePtr hpmvm::json::parse(const std::string &Text, bool &Ok) {
  Parser P(Text);
  return P.parse(Ok);
}
