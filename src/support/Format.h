//===-- support/Format.h - printf-style std::string formatting -*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small printf-style formatting helpers returning std::string, used instead
/// of iostreams throughout the library (library code never includes
/// <iostream>).
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_SUPPORT_FORMAT_H
#define HPMVM_SUPPORT_FORMAT_H

#include <cstdarg>
#include <string>

namespace hpmvm {

/// Formats \p Fmt with printf semantics into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// va_list flavour of formatString.
std::string formatStringV(const char *Fmt, va_list Args);

/// Renders \p Value with thousands separators, e.g. 1234567 -> "1,234,567".
std::string withThousandsSep(uint64_t Value);

/// Renders a ratio as a signed percentage with one decimal, e.g. 0.861 ->
/// "-13.9%" when interpreted as new/old (pass Ratio-1 yourself); this simply
/// formats \p Fraction*100 with a sign.
std::string asPercent(double Fraction);

} // namespace hpmvm

#endif // HPMVM_SUPPORT_FORMAT_H
