//===-- support/VirtualClock.cpp ------------------------------------------===//
//
// VirtualClock is header-only; this file exists so the support library has a
// translation unit anchoring the module and to static_assert platform
// assumptions in exactly one place.
//
//===----------------------------------------------------------------------===//

#include "support/VirtualClock.h"

namespace hpmvm {

static_assert(sizeof(Address) == 4, "the simulated machine is 32-bit");
static_assert(VirtualClock::kHz == 3000000000ull,
              "cost-model constants are calibrated for a 3 GHz clock");

} // namespace hpmvm
