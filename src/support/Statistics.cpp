//===-- support/Statistics.cpp --------------------------------------------===//

#include "support/Statistics.h"

#include <cassert>
#include <cmath>

using namespace hpmvm;

void RunningStat::add(double X) {
  ++N;
  if (N == 1) {
    Mean = Min = Max = X;
    M2 = 0.0;
    return;
  }
  double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
  if (X < Min)
    Min = X;
  if (X > Max)
    Max = X;
}

double RunningStat::stddev() const {
  if (N < 2)
    return 0.0;
  return std::sqrt(M2 / static_cast<double>(N - 1));
}

double MovingAverage::add(double X) {
  assert(Window > 0 && "window must be positive");
  if (Ring.size() < Window) {
    Ring.push_back(X);
    Sum += X;
  } else {
    size_t Slot = Count % Window;
    Sum -= Ring[Slot];
    Ring[Slot] = X;
    Sum += X;
  }
  ++Count;
  return value();
}

double hpmvm::geometricMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 1.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geometric mean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}
