//===-- support/Flags.cpp -------------------------------------------------===//

#include "support/Flags.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace hpmvm;
using namespace hpmvm::flags;

bool hpmvm::flags::parseUint(const char *Text, uint64_t &Out) {
  if (!Text || !*Text)
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long V = strtoull(Text, &End, 10);
  if (errno || End == Text || *End != '\0' || strchr(Text, '-'))
    return false;
  Out = V;
  return true;
}

bool ArgScanner::next() {
  ++I;
  if (I < Argc)
    return true;
  if (!Done) {
    Done = true;
    Argc = Out;
    Argv[Argc] = nullptr;
  }
  return false;
}

TakeResult ArgScanner::tryTake(const char *Flag, std::string &Value) {
  size_t FlagLen = strlen(Flag);
  if (strncmp(Argv[I], Flag, FlagLen) != 0)
    return TakeResult::NoMatch;
  if (Argv[I][FlagLen] == '=') {
    Value = Argv[I] + FlagLen + 1;
    return TakeResult::Value;
  }
  if (Argv[I][FlagLen] != '\0')
    return TakeResult::NoMatch;
  if (I + 1 >= Argc)
    return TakeResult::MissingValue;
  Value = Argv[++I];
  return TakeResult::Value;
}

bool ArgScanner::take(const char *Flag, std::string &Value) {
  switch (tryTake(Flag, Value)) {
  case TakeResult::NoMatch:
    return false;
  case TakeResult::MissingValue:
    fprintf(stderr, "error: %s requires a value\n", Flag);
    Ok = false;
    return true;
  case TakeResult::Value:
    return true;
  }
  return false;
}

bool ArgScanner::takeUint(const char *Flag, uint64_t Max, uint64_t &Slot) {
  std::string Value;
  if (!take(Flag, Value))
    return false;
  if (!Ok)
    return true; // The missing value was already diagnosed.
  uint64_t V = 0;
  if (!parseUint(Value.c_str(), V) || V > Max) {
    fprintf(stderr,
            "error: %s wants an unsigned integer <= %llu, got '%s'\n", Flag,
            static_cast<unsigned long long>(Max), Value.c_str());
    Ok = false;
    return true;
  }
  Slot = V;
  return true;
}

bool ArgScanner::takeSwitch(const char *Flag) {
  return strcmp(Argv[I], Flag) == 0;
}

void ArgScanner::keepUnknown() {
  fprintf(stderr, "error: unknown argument '%s'\n", Argv[I]);
  Ok = false;
  keep();
}
