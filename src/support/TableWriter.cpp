//===-- support/TableWriter.cpp -------------------------------------------===//

#include "support/TableWriter.h"

#include <cassert>

using namespace hpmvm;

TableWriter::TableWriter(std::vector<std::string> Headers)
    : Headers(std::move(Headers)) {
  assert(!this->Headers.empty() && "a table needs at least one column");
}

void TableWriter::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Headers.size() && "row/header arity mismatch");
  Rows.push_back(std::move(Cells));
}

void TableWriter::print(FILE *Out) const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t C = 0; C != Headers.size(); ++C)
    Widths[C] = Headers[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      if (Row[C].size() > Widths[C])
        Widths[C] = Row[C].size();

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C != Row.size(); ++C) {
      if (C)
        fputs("  ", Out);
      int W = static_cast<int>(Widths[C]);
      // Left-align the first (label) column, right-align the rest.
      if (C == 0)
        fprintf(Out, "%-*s", W, Row[C].c_str());
      else
        fprintf(Out, "%*s", W, Row[C].c_str());
    }
    fputc('\n', Out);
  };

  PrintRow(Headers);
  size_t Total = Headers.size() - 1;
  for (size_t W : Widths)
    Total += W + 1;
  for (size_t I = 0; I != Total; ++I)
    fputc('-', Out);
  fputc('\n', Out);
  for (const auto &Row : Rows)
    PrintRow(Row);
}

void TableWriter::printCsv(FILE *Out) const {
  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C != Row.size(); ++C) {
      if (C)
        fputc(',', Out);
      // Quote cells containing commas or quotes.
      const std::string &Cell = Row[C];
      if (Cell.find(',') != std::string::npos ||
          Cell.find('"') != std::string::npos) {
        fputc('"', Out);
        for (char Ch : Cell) {
          if (Ch == '"')
            fputc('"', Out);
          fputc(Ch, Out);
        }
        fputc('"', Out);
      } else {
        fputs(Cell.c_str(), Out);
      }
    }
    fputc('\n', Out);
  };
  PrintRow(Headers);
  for (const auto &Row : Rows)
    PrintRow(Row);
}
