//===-- support/Format.cpp ------------------------------------------------===//

#include "support/Format.h"

#include <cassert>
#include <cstdio>
#include <vector>

using namespace hpmvm;

std::string hpmvm::formatStringV(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  assert(Needed >= 0 && "invalid format string");
  std::string Result(static_cast<size_t>(Needed), '\0');
  // C++11 guarantees contiguous storage; +1 for the terminating NUL that
  // vsnprintf writes into the reserved byte past size().
  vsnprintf(Result.data(), static_cast<size_t>(Needed) + 1, Fmt, Args);
  return Result;
}

std::string hpmvm::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Result = formatStringV(Fmt, Args);
  va_end(Args);
  return Result;
}

std::string hpmvm::withThousandsSep(uint64_t Value) {
  std::string Digits = std::to_string(Value);
  std::string Result;
  Result.reserve(Digits.size() + Digits.size() / 3);
  size_t Lead = Digits.size() % 3;
  if (Lead == 0)
    Lead = 3;
  for (size_t I = 0; I != Digits.size(); ++I) {
    if (I != 0 && (I - Lead) % 3 == 0 && I >= Lead)
      Result.push_back(',');
    Result.push_back(Digits[I]);
  }
  return Result;
}

std::string hpmvm::asPercent(double Fraction) {
  return formatString("%+.1f%%", Fraction * 100.0);
}
