//===-- support/Statistics.h - Running stats & moving averages -*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Numeric helpers used by the evaluation harness: Welford running
/// mean/stddev (the paper reports execution-time averages over 3 runs with
/// standard deviations) and the 3-period moving average the paper plots in
/// Figure 7(b).
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_SUPPORT_STATISTICS_H
#define HPMVM_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace hpmvm {

/// Online mean / standard deviation (Welford's algorithm).
class RunningStat {
public:
  void add(double X);

  size_t count() const { return N; }
  double mean() const { return N ? Mean : 0.0; }
  /// Sample standard deviation (divides by N-1); 0 for fewer than 2 points.
  double stddev() const;
  double min() const { return N ? Min : 0.0; }
  double max() const { return N ? Max : 0.0; }

private:
  size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// Fixed-window moving average over the last \c Window values; used for the
/// "moving average over the last 3 periods" trend lines of Figure 7(b).
class MovingAverage {
public:
  explicit MovingAverage(size_t Window) : Window(Window) {}

  /// Adds a value and returns the average over the last min(count, Window)
  /// values.
  double add(double X);

  double value() const { return Count ? Sum / static_cast<double>(
                                            Count < Window ? Count : Window)
                                      : 0.0; }

private:
  size_t Window;
  size_t Count = 0;
  double Sum = 0.0;
  std::vector<double> Ring;
};

/// \returns the geometric mean of \p Values; 1.0 for an empty vector.
double geometricMean(const std::vector<double> &Values);

} // namespace hpmvm

#endif // HPMVM_SUPPORT_STATISTICS_H
