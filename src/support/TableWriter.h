//===-- support/TableWriter.h - Aligned text & CSV tables ------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Column-aligned plain-text table output (for the benchmark harness, which
/// reprints the paper's tables/figures as rows) plus a CSV mirror so results
/// can be plotted. Writes to a C FILE* (normally stdout); the library avoids
/// <iostream>.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_SUPPORT_TABLEWRITER_H
#define HPMVM_SUPPORT_TABLEWRITER_H

#include <cstdio>
#include <string>
#include <vector>

namespace hpmvm {

/// Accumulates rows of strings and prints them with aligned columns.
class TableWriter {
public:
  /// Creates a table with the given column \p Headers.
  explicit TableWriter(std::vector<std::string> Headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void addRow(std::vector<std::string> Cells);

  /// Prints the table, column-aligned, to \p Out (default stdout). The first
  /// column is left-aligned, the rest right-aligned (numeric convention).
  void print(FILE *Out = stdout) const;

  /// Writes the table as CSV to \p Out.
  void printCsv(FILE *Out) const;

  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace hpmvm

#endif // HPMVM_SUPPORT_TABLEWRITER_H
