//===-- support/Random.cpp ------------------------------------------------===//

#include "support/Random.h"

#include <cassert>

using namespace hpmvm;

uint64_t SplitMix64::next() {
  State += 0x9e3779b97f4a7c15ull;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

uint64_t SplitMix64::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "nextBelow(0) is meaningless");
  // Rejection sampling to avoid modulo bias; the loop terminates with
  // probability 1 and almost always on the first iteration.
  uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t R = next();
    if (R >= Threshold)
      return R % Bound;
  }
}

uint64_t SplitMix64::nextInRange(uint64_t Lo, uint64_t Hi) {
  assert(Lo <= Hi && "empty range");
  return Lo + nextBelow(Hi - Lo + 1);
}

double SplitMix64::nextDouble() {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}
