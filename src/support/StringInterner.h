//===-- support/StringInterner.h - Arena-backed string interning -*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns strings into an arena once and hands out small integer ids and
/// stable NUL-terminated pointers. Used for method and field labels on the
/// sample-resolve path: labels are interned at (re)compile time, so batches
/// and journal records can carry 4-byte ids instead of heap-allocated
/// std::string copies per record.
///
/// Ids are dense and insertion-ordered (first intern wins), pointers remain
/// valid for the interner's lifetime. Lookup is an open-addressing FNV-1a
/// table -- no std::unordered_map, whose iteration order the determinism
/// lint (R2) bans from decision paths and whose per-node allocations this
/// class exists to avoid.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_SUPPORT_STRINGINTERNER_H
#define HPMVM_SUPPORT_STRINGINTERNER_H

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace hpmvm {

class StringInterner {
public:
  static constexpr uint32_t kNoId = 0xffffffffu;

  StringInterner();

  /// \returns the id of \p S, interning it on first sight. Ids count up
  /// from 0 in insertion order.
  uint32_t intern(std::string_view S);

  /// \returns the id of \p S if already interned, else kNoId. Never
  /// allocates.
  uint32_t find(std::string_view S) const;

  /// \returns the stable NUL-terminated text of \p Id.
  const char *text(uint32_t Id) const { return Texts[Id]; }

  /// Number of distinct strings interned.
  uint32_t size() const { return static_cast<uint32_t>(Texts.size()); }

private:
  static uint64_t hash(std::string_view S);
  const char *copyToArena(std::string_view S);
  void grow();

  std::vector<const char *> Texts;     ///< Id -> arena text.
  std::vector<uint32_t> Buckets;       ///< Id + 1; 0 marks an empty bucket.
  std::vector<std::unique_ptr<char[]>> Chunks;
  size_t ChunkUsed = 0;
  size_t ChunkSize = 0;
};

} // namespace hpmvm

#endif // HPMVM_SUPPORT_STRINGINTERNER_H
