//===-- support/StringInterner.cpp ----------------------------------------===//

#include "support/StringInterner.h"

#include <cassert>
#include <cstring>

using namespace hpmvm;

StringInterner::StringInterner() : Buckets(64, 0) {}

uint64_t StringInterner::hash(std::string_view S) {
  // FNV-1a, the same function the trace ring uses for label folding.
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

const char *StringInterner::copyToArena(std::string_view S) {
  size_t Need = S.size() + 1;
  if (ChunkUsed + Need > ChunkSize) {
    ChunkSize = Need > 4096 ? Need : 4096;
    Chunks.push_back(std::make_unique<char[]>(ChunkSize));
    ChunkUsed = 0;
  }
  char *Dst = Chunks.back().get() + ChunkUsed;
  std::memcpy(Dst, S.data(), S.size());
  Dst[S.size()] = '\0';
  ChunkUsed += Need;
  return Dst;
}

void StringInterner::grow() {
  std::vector<uint32_t> Old = std::move(Buckets);
  Buckets.assign(Old.size() * 2, 0);
  size_t Mask = Buckets.size() - 1;
  for (uint32_t Slot : Old) {
    if (Slot == 0)
      continue;
    size_t B = hash(Texts[Slot - 1]) & Mask;
    while (Buckets[B] != 0)
      B = (B + 1) & Mask;
    Buckets[B] = Slot;
  }
}

uint32_t StringInterner::intern(std::string_view S) {
  size_t Mask = Buckets.size() - 1;
  size_t B = hash(S) & Mask;
  while (Buckets[B] != 0) {
    uint32_t Id = Buckets[B] - 1;
    if (S == Texts[Id])
      return Id;
    B = (B + 1) & Mask;
  }
  uint32_t Id = static_cast<uint32_t>(Texts.size());
  assert(Id != kNoId && "interner full");
  Texts.push_back(copyToArena(S));
  Buckets[B] = Id + 1;
  // Keep load factor under ~70% so probe chains stay short.
  if ((Texts.size() + 1) * 10 > Buckets.size() * 7)
    grow();
  return Id;
}

uint32_t StringInterner::find(std::string_view S) const {
  size_t Mask = Buckets.size() - 1;
  size_t B = hash(S) & Mask;
  while (Buckets[B] != 0) {
    uint32_t Id = Buckets[B] - 1;
    if (S == Texts[Id])
      return Id;
    B = (B + 1) & Mask;
  }
  return kNoId;
}
