//===-- support/SpscQueue.h - Lock-free SPSC ring buffer -------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded single-producer/single-consumer ring buffer: one worker thread
/// pushes, one coordinator thread pops, no locks. Used by the fleet layer
/// to publish finished request-quanta from shard workers to the
/// deterministic commit loop (see harness/Fleet.cpp), the same shape as the
/// SampleBatch hand-off on the sample path.
///
/// Memory ordering is the textbook pair: the producer publishes a slot with
/// a release store of Tail (making the slot write visible before the index
/// moves), the consumer acquires Tail before reading the slot, and the
/// mirror-image applies to Head for slot reuse. Indices are monotonically
/// increasing and masked on use, so full/empty never ambiguate.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_SUPPORT_SPSCQUEUE_H
#define HPMVM_SUPPORT_SPSCQUEUE_H

#include <atomic>
#include <cassert>
#include <cstddef>
#include <vector>

namespace hpmvm {

template <typename T> class SpscQueue {
public:
  /// \p MinCapacity is rounded up to a power of two (capacity is exact:
  /// the queue holds up to that many elements).
  explicit SpscQueue(size_t MinCapacity) {
    size_t Cap = 1;
    while (Cap < MinCapacity)
      Cap <<= 1;
    Slots.resize(Cap);
    Mask = Cap - 1;
  }

  SpscQueue(const SpscQueue &) = delete;
  SpscQueue &operator=(const SpscQueue &) = delete;

  /// Producer side. \returns false when full (no blocking, no overwrite).
  bool tryPush(const T &Value) {
    size_t T0 = Tail.load(std::memory_order_relaxed);
    if (T0 - Head.load(std::memory_order_acquire) > Mask)
      return false;
    Slots[T0 & Mask] = Value;
    Tail.store(T0 + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. \returns false when empty.
  bool tryPop(T &Out) {
    size_t H = Head.load(std::memory_order_relaxed);
    if (H == Tail.load(std::memory_order_acquire))
      return false;
    Out = Slots[H & Mask];
    Head.store(H + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: \returns a pointer to the front element without
  /// consuming it, or nullptr when empty. Valid until the next pop.
  const T *peek() const {
    size_t H = Head.load(std::memory_order_relaxed);
    if (H == Tail.load(std::memory_order_acquire))
      return nullptr;
    return &Slots[H & Mask];
  }

  /// Consumer side: drops the front element. Requires a prior successful
  /// peek().
  void pop() {
    size_t H = Head.load(std::memory_order_relaxed);
    assert(H != Tail.load(std::memory_order_acquire) && "pop on empty queue");
    Head.store(H + 1, std::memory_order_release);
  }

  /// Approximate from either side; exact when the other side is quiescent.
  size_t size() const {
    return Tail.load(std::memory_order_acquire) -
           Head.load(std::memory_order_acquire);
  }

  bool empty() const { return size() == 0; }
  size_t capacity() const { return Mask + 1; }

private:
  std::vector<T> Slots;
  size_t Mask;
  // Producer and consumer indices on separate cache lines so the two
  // threads do not false-share.
  alignas(64) std::atomic<size_t> Head{0};
  alignas(64) std::atomic<size_t> Tail{0};
};

} // namespace hpmvm

#endif // HPMVM_SUPPORT_SPSCQUEUE_H
