//===-- support/Types.h - Fundamental simulated-machine types --*- C++ -*-===//
//
// Part of the hpmvm project: a reproduction of "Online Optimizations Driven
// by Hardware Performance Monitoring" (Schneider, Payer, Gross; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fundamental integer types of the simulated 32-bit machine (the paper's
/// platform is a 32-bit Pentium 4) plus the virtual cycle type shared by the
/// memory-hierarchy, HPM, and VM cost models.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_SUPPORT_TYPES_H
#define HPMVM_SUPPORT_TYPES_H

#include <cstddef>
#include <cstdint>

namespace hpmvm {

/// A simulated 32-bit virtual address (the P4 is a 32-bit machine).
using Address = uint32_t;

/// A count of simulated CPU cycles. The nominal clock is 3 GHz (see
/// VirtualClock), matching the paper's experimental platform.
using Cycles = uint64_t;

/// Identifier of a VM class (type). Index into the ClassRegistry.
using ClassId = uint32_t;

/// Identifier of a field within the global field table. Reference fields get
/// miss counters attached to this id (the paper's "per-reference event
/// count").
using FieldId = uint32_t;

/// Identifier of a VM method.
using MethodId = uint32_t;

/// Identifier of one VM shard (tenant) in a fleet run. Single-VM runs are
/// tenant 0 throughout; kInvalidId marks "no tenant" where the distinction
/// matters (e.g. journal records of non-fleet runs).
using TenantId = uint32_t;

/// Sentinel for "no class" / "no field" / "no method".
inline constexpr uint32_t kInvalidId = 0xffffffffu;

/// Null simulated reference.
inline constexpr Address kNullRef = 0;

/// The simulated machine's word size in bytes (32-bit words).
inline constexpr uint32_t kWordBytes = 4;

/// Object alignment in the simulated heap.
inline constexpr uint32_t kObjectAlign = 8;

/// Align \p Value up to the next multiple of \p Align (a power of two).
constexpr uint32_t alignUp(uint32_t Value, uint32_t Align) {
  return (Value + Align - 1) & ~(Align - 1);
}

/// \returns true if \p Value is aligned to \p Align (a power of two).
constexpr bool isAligned(uint32_t Value, uint32_t Align) {
  return (Value & (Align - 1)) == 0;
}

} // namespace hpmvm

#endif // HPMVM_SUPPORT_TYPES_H
