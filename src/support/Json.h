//===-- support/Json.h - Minimal JSON parser --------------------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny recursive-descent JSON parser, just enough to round-trip the
/// telemetry exporters' output (objects, arrays, strings with basic escapes,
/// numbers, booleans, null). Shared by the test suite and the hpmvm_report
/// triage tool; not a general-purpose parser (no \uXXXX decoding, numbers
/// go through strtod).
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_SUPPORT_JSON_H
#define HPMVM_SUPPORT_JSON_H

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace hpmvm::json {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<ValuePtr> Arr;
  std::map<std::string, ValuePtr> Obj;

  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }

  /// Object member or null when absent/not an object.
  ValuePtr get(const std::string &Key) const;

  /// Number value of member \p Key, or \p Default when absent/not a number.
  double num(const std::string &Key, double Default = 0.0) const;
  /// String value of member \p Key, or \p Default when absent/not a string.
  std::string str(const std::string &Key,
                  const std::string &Default = "") const;
};

/// Parses \p Text as one JSON document. \p Ok is set false when the text
/// failed to parse or has trailing garbage; the result is null in that case.
ValuePtr parse(const std::string &Text, bool &Ok);

} // namespace hpmvm::json

#endif // HPMVM_SUPPORT_JSON_H
