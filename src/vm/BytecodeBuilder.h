//===-- vm/BytecodeBuilder.h - Fluent bytecode assembly --------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small assembler for Method bodies with labels and forward-reference
/// patching. All workload programs (src/workloads) and most VM tests are
/// written against this API.
///
/// \code
///   BytecodeBuilder B("sum");
///   uint32_t N = B.addParam(ValKind::Int);
///   uint32_t Acc = B.newLocal(), I = B.newLocal();
///   B.returns(RetKind::Int);
///   B.iconst(0).istore(Acc).iconst(0).istore(I);
///   Label Loop = B.label(), Done = B.label();
///   B.bind(Loop).iload(I).iload(N).ifICmp(CondKind::Ge, Done);
///   B.iload(Acc).iload(I).iadd().istore(Acc).iinc(I, 1).jump(Loop);
///   B.bind(Done).iload(Acc).iret();
///   Method M = B.build();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_VM_BYTECODEBUILDER_H
#define HPMVM_VM_BYTECODEBUILDER_H

#include "vm/Bytecode.h"

#include <cassert>

namespace hpmvm {

/// An abstract jump target; create with BytecodeBuilder::label(), place
/// with bind(), reference from branch emitters.
struct Label {
  uint32_t Id = kInvalidId;
};

/// Assembles one Method.
class BytecodeBuilder {
public:
  explicit BytecodeBuilder(std::string Name);

  /// Declares the next parameter; \returns its local index.
  uint32_t addParam(ValKind Kind);
  /// Reserves a non-parameter local; \returns its index.
  uint32_t newLocal();
  BytecodeBuilder &returns(RetKind Kind);
  /// Marks the method as VM-internal (excluded from optimization).
  BytecodeBuilder &vmInternal();

  Label label();
  BytecodeBuilder &bind(Label L);

  // Constants, locals, arithmetic.
  BytecodeBuilder &iconst(int32_t V) { return emit(Op::IConst, V); }
  BytecodeBuilder &aconstNull() { return emit(Op::AConstNull); }
  BytecodeBuilder &iload(uint32_t L) { return emit(Op::ILoad, (int32_t)L); }
  BytecodeBuilder &istore(uint32_t L) { return emit(Op::IStore, (int32_t)L); }
  BytecodeBuilder &aload(uint32_t L) { return emit(Op::ALoad, (int32_t)L); }
  BytecodeBuilder &astore(uint32_t L) { return emit(Op::AStore, (int32_t)L); }
  BytecodeBuilder &iinc(uint32_t L, int32_t D) {
    return emit(Op::IInc, (int32_t)L, D);
  }
  BytecodeBuilder &iadd() { return emit(Op::IAdd); }
  BytecodeBuilder &isub() { return emit(Op::ISub); }
  BytecodeBuilder &imul() { return emit(Op::IMul); }
  BytecodeBuilder &idiv() { return emit(Op::IDiv); }
  BytecodeBuilder &irem() { return emit(Op::IRem); }
  BytecodeBuilder &iand() { return emit(Op::IAnd); }
  BytecodeBuilder &ior() { return emit(Op::IOr); }
  BytecodeBuilder &ixor() { return emit(Op::IXor); }
  BytecodeBuilder &ishl() { return emit(Op::IShl); }
  BytecodeBuilder &ishr() { return emit(Op::IShr); }
  BytecodeBuilder &ineg() { return emit(Op::INeg); }

  // Control flow.
  BytecodeBuilder &jump(Label L) { return emitBranch(Op::Goto, 0, L); }
  BytecodeBuilder &ifICmp(CondKind C, Label L) {
    return emitBranch(Op::IfICmp, static_cast<int32_t>(C), L);
  }
  BytecodeBuilder &ifZ(CondKind C, Label L) {
    return emitBranch(Op::IfZ, static_cast<int32_t>(C), L);
  }
  BytecodeBuilder &ifNull(Label L) { return emitBranch(Op::IfNull, 0, L); }
  BytecodeBuilder &ifNonNull(Label L) {
    return emitBranch(Op::IfNonNull, 0, L);
  }

  // Heap.
  BytecodeBuilder &newObj(ClassId C) { return emit(Op::New, (int32_t)C); }
  BytecodeBuilder &newArray(ClassId C) {
    return emit(Op::NewArray, (int32_t)C);
  }
  BytecodeBuilder &getfield(FieldId F) {
    return emit(Op::GetField, (int32_t)F);
  }
  BytecodeBuilder &putfield(FieldId F) {
    return emit(Op::PutField, (int32_t)F);
  }
  BytecodeBuilder &aloadI() { return emit(Op::ALoadI); }
  BytecodeBuilder &astoreI() { return emit(Op::AStoreI); }
  BytecodeBuilder &aloadR() { return emit(Op::ALoadR); }
  BytecodeBuilder &astoreR() { return emit(Op::AStoreR); }
  BytecodeBuilder &arraylen() { return emit(Op::ArrayLen); }

  // Globals, calls, misc.
  BytecodeBuilder &gget(uint32_t G) { return emit(Op::GGet, (int32_t)G); }
  BytecodeBuilder &gput(uint32_t G) { return emit(Op::GPut, (int32_t)G); }
  BytecodeBuilder &call(MethodId M) { return emit(Op::Call, (int32_t)M); }
  BytecodeBuilder &ret() { return emit(Op::Ret); }
  BytecodeBuilder &iret() { return emit(Op::IRet); }
  BytecodeBuilder &aret() { return emit(Op::ARet); }
  BytecodeBuilder &popv() { return emit(Op::Pop); }
  BytecodeBuilder &dup() { return emit(Op::Dup); }
  BytecodeBuilder &rand() { return emit(Op::Rand); }

  /// Finalizes the method: patches branch targets (all labels must be
  /// bound) and returns it. The builder must not be reused afterwards.
  Method build();

  uint32_t nextPc() const { return static_cast<uint32_t>(M.Code.size()); }

private:
  BytecodeBuilder &emit(Op O, int32_t A = 0, int32_t B = 0);
  BytecodeBuilder &emitBranch(Op O, int32_t A, Label L);

  Method M;
  /// Owns the label text M.Name points at until the VM interns it.
  std::string NameStorage;
  std::vector<int32_t> LabelPos;                   ///< -1 while unbound.
  std::vector<std::pair<uint32_t, uint32_t>> Fixups; ///< (insn, label).
  bool Built = false;
};

} // namespace hpmvm

#endif // HPMVM_VM_BYTECODEBUILDER_H
