//===-- vm/MachineCode.h - The opt-compiler's machine IR -------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The register-based machine IR emitted by the optimizing compiler. Each
/// instruction occupies 4 simulated bytes in the immortal code space, so a
/// PEBS sample's EIP identifies exactly one MachineInst -- the property
/// that lets the monitoring system map raw samples back to bytecode.
///
/// Every instruction carries:
///   - its bytecode index (Bci): the *machine code map*. The paper extends
///     Jikes' opt compiler to keep this per instruction rather than only at
///     GC points, growing maps 4-5x (Table 2) but enabling precise
///     attribution;
///   - a GC-point flag (allocations and calls): the *GC map* subset.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_VM_MACHINECODE_H
#define HPMVM_VM_MACHINECODE_H

#include "support/Types.h"
#include "vm/Bytecode.h"

#include <cassert>
#include <vector>

namespace hpmvm {

/// Machine IR opcodes.
enum class MOp : uint8_t {
  MovImm,    ///< Dst = Imm
  Mov,       ///< Dst = SrcA
  Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, ///< Dst = SrcA op SrcB
  AddImm,    ///< Dst = SrcA + Imm (immediate-folding peephole, IInc)
  Neg,       ///< Dst = -SrcA
  Br,        ///< jump to inst index Imm
  BrCmp,     ///< if SrcA <Cond> SrcB jump to Imm
  BrZero,    ///< if SrcA <Cond> 0 jump to Imm
  BrNull,    ///< if SrcA == null jump to Imm
  BrNonNull, ///< if SrcA != null jump to Imm
  NewObject, ///< Dst = allocate(class Imm)            [GC point]
  NewArray,  ///< Dst = allocate(class Imm, len SrcA)  [GC point]
  LoadField, ///< Dst = SrcA.field(Imm)                [heap access]
  StoreField,///< SrcA.field(Imm) = SrcB               [heap access]
  LoadElem,  ///< Dst = SrcA[SrcB]                     [heap access x2]
  StoreElem, ///< SrcA[SrcB] = SrcC                    [heap access x2]
  ArrayLen,  ///< Dst = SrcA.length                    [header access]
  GlobalGet, ///< Dst = globals[Imm]
  GlobalSet, ///< globals[Imm] = SrcA
  Prefetch,  ///< software-prefetch the line of the address in SrcA
  Call,      ///< Dst = call method Imm, args CallSites[Aux] [GC point]
  Ret,       ///< return (SrcA when the method is non-void)
  RandInt,   ///< Dst = uniform [0, SrcA)
};

const char *mopName(MOp O);

/// Register number placeholder for "no register".
inline constexpr uint16_t kNoReg = 0xffff;

/// One machine instruction. Register operands index the function's virtual
/// register file (locals first, then stack-slot temps).
struct MachineInst {
  MOp Op;
  uint16_t Dst = kNoReg;
  uint16_t SrcA = kNoReg;
  uint16_t SrcB = kNoReg;
  uint16_t SrcC = kNoReg;
  int32_t Imm = 0;     ///< Immediate / class / field / global / target / callee.
  uint16_t Aux = 0;    ///< CondKind for branches; call-site index for Call.
  uint32_t Bci = 0;    ///< Bytecode index (machine code map entry).
  bool IsGcPoint = false;
  bool DstIsRef = false; ///< The defined value is a reference.
};

/// Per-call-site argument registers (kept out of MachineInst to keep it
/// small).
struct CallSite {
  std::vector<uint16_t> ArgRegs;
};

/// Simulated encoded size of one machine instruction.
inline constexpr uint32_t kMachineInstBytes = 4;

/// A compiled method body.
struct MachineFunction {
  MethodId Method = kInvalidId;
  uint32_t NumRegs = 0;
  std::vector<MachineInst> Insts;
  std::vector<CallSite> CallSites;
  /// Which registers hold references at function entry (parameters); the
  /// executor tags the rest as instructions define them.
  std::vector<bool> RegIsRefAtEntry;

  Address CodeBase = 0; ///< Assigned in the immortal space.
  uint32_t codeBytes() const {
    return static_cast<uint32_t>(Insts.size()) * kMachineInstBytes;
  }
  Address codeLimit() const { return CodeBase + codeBytes(); }

  /// \returns the instruction index for code address \p Pc.
  uint32_t instIndexFor(Address Pc) const {
    assert(Pc >= CodeBase && Pc < codeLimit() && "PC outside this function");
    return (Pc - CodeBase) / kMachineInstBytes;
  }
  Address addressOf(uint32_t InstIdx) const {
    return CodeBase + InstIdx * kMachineInstBytes;
  }
};

/// Sizes of the mapping metadata a compiled method carries (Table 2). The
/// encodings model Jikes': a GC map entry per GC point (offset + compressed
/// reference map), an MC map entry per machine instruction (offset +
/// delta-encoded bytecode index).
struct CompiledMethodMaps {
  uint32_t MachineCodeBytes = 0;
  uint32_t GcMapBytes = 0;
  uint32_t McMapBytes = 0;
};

/// Bytes per GC-map entry in the modeled encoding.
inline constexpr uint32_t kGcMapBytesPerEntry = 8;
/// Bytes per machine-code-map entry in the modeled encoding.
inline constexpr uint32_t kMcMapBytesPerEntry = 5;

/// Computes map sizes for \p F.
CompiledMethodMaps computeMaps(const MachineFunction &F);

} // namespace hpmvm

#endif // HPMVM_VM_MACHINECODE_H
