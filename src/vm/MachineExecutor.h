//===-- vm/MachineExecutor.h - Simulated optimized execution ---*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a MachineFunction: the simulation of running JIT-optimized
/// machine code. Each instruction costs one base cycle plus memory
/// penalties; heap accesses are issued at the instruction's immortal-space
/// address, so every cache-miss event the PEBS unit samples carries the
/// exact optimized-code PC -- the precision the whole feedback system is
/// built on.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_VM_MACHINEEXECUTOR_H
#define HPMVM_VM_MACHINEEXECUTOR_H

#include "vm/Bytecode.h"
#include "vm/MachineCode.h"
#include "vm/Value.h"

#include <vector>

namespace hpmvm {

class VirtualMachine;

/// Executes compiled machine IR.
class MachineExecutor {
public:
  /// Runs \p F (the optimized code of \p M) with \p Args.
  static Value run(VirtualMachine &Vm, Method &M, const MachineFunction &F,
                   std::vector<Value> Args);
};

} // namespace hpmvm

#endif // HPMVM_VM_MACHINEEXECUTOR_H
