//===-- vm/OptCompiler.cpp ------------------------------------------------===//

#include "vm/OptCompiler.h"

#include "vm/ClassRegistry.h"

#include <cassert>

using namespace hpmvm;

std::vector<std::vector<ValKind>> OptCompiler::stackKindsPerBci(
    const Method &M, const ClassRegistry &Classes,
    const std::vector<Method> &AllMethods,
    const std::vector<ValKind> &GlobalKinds) {
  const uint32_t N = static_cast<uint32_t>(M.Code.size());
  std::vector<std::vector<ValKind>> In(N);
  std::vector<bool> Known(N, false);

  std::vector<uint32_t> Worklist;
  In[0] = {};
  Known[0] = true;
  Worklist.push_back(0);

  auto Flow = [&](uint32_t To, const std::vector<ValKind> &S) {
    assert(To < N && "branch target out of range (method not verified?)");
    if (!Known[To]) {
      In[To] = S;
      Known[To] = true;
      Worklist.push_back(To);
      return;
    }
    assert(In[To] == S && "inconsistent stack kinds (method not verified?)");
  };

  while (!Worklist.empty()) {
    uint32_t Pc = Worklist.back();
    Worklist.pop_back();
    std::vector<ValKind> S = In[Pc];
    const Insn &I = M.Code[Pc];

    auto Pop = [&]() {
      assert(!S.empty());
      S.pop_back();
    };
    auto Push = [&](ValKind K) { S.push_back(K); };

    bool Falls = true;
    switch (I.Opcode) {
    case Op::IConst: Push(ValKind::Int); break;
    case Op::AConstNull: Push(ValKind::Ref); break;
    case Op::ILoad:  Push(ValKind::Int); break;
    case Op::ALoad:  Push(ValKind::Ref); break;
    case Op::IStore:
    case Op::AStore: Pop(); break;
    case Op::IInc:   break;
    case Op::IAdd: case Op::ISub: case Op::IMul: case Op::IDiv:
    case Op::IRem: case Op::IAnd: case Op::IOr: case Op::IXor:
    case Op::IShl: case Op::IShr:
      Pop();
      Pop();
      Push(ValKind::Int);
      break;
    case Op::INeg: break; // pop int, push int: no net kind change.
    case Op::Goto:
      Flow(static_cast<uint32_t>(I.B), S);
      Falls = false;
      break;
    case Op::IfICmp:
      Pop();
      Pop();
      Flow(static_cast<uint32_t>(I.B), S);
      break;
    case Op::IfZ:
    case Op::IfNull:
    case Op::IfNonNull:
      Pop();
      Flow(static_cast<uint32_t>(I.B), S);
      break;
    case Op::New: Push(ValKind::Ref); break;
    case Op::NewArray:
      Pop();
      Push(ValKind::Ref);
      break;
    case Op::GetField:
      Pop();
      Push(Classes.field(I.A).IsRef ? ValKind::Ref : ValKind::Int);
      break;
    case Op::PutField:
      Pop();
      Pop();
      break;
    case Op::ALoadI:
      Pop();
      Pop();
      Push(ValKind::Int);
      break;
    case Op::ALoadR:
      Pop();
      Pop();
      Push(ValKind::Ref);
      break;
    case Op::AStoreI:
    case Op::AStoreR:
      Pop();
      Pop();
      Pop();
      break;
    case Op::ArrayLen:
      Pop();
      Push(ValKind::Int);
      break;
    case Op::GGet: Push(GlobalKinds[I.A]); break;
    case Op::GPut: Pop(); break;
    case Op::Call: {
      const Method &Callee = AllMethods[I.A];
      for (uint32_t P = 0; P != Callee.NumParams; ++P)
        Pop();
      if (Callee.Return == RetKind::Int)
        Push(ValKind::Int);
      else if (Callee.Return == RetKind::Ref)
        Push(ValKind::Ref);
      break;
    }
    case Op::Ret:
    case Op::IRet:
    case Op::ARet:
      Falls = false;
      break;
    case Op::Pop: Pop(); break;
    case Op::Dup: Push(S.back()); break;
    case Op::Rand: break; // pop int, push int.
    }

    if (Falls)
      Flow(Pc + 1, S);
  }
  return In;
}

MachineFunction OptCompiler::compile(const Method &M,
                                     const ClassRegistry &Classes,
                                     const std::vector<Method> &AllMethods,
                                     const std::vector<ValKind> &GlobalKinds) {
  const uint32_t N = static_cast<uint32_t>(M.Code.size());
  auto Kinds = stackKindsPerBci(M, Classes, AllMethods, GlobalKinds);

  // Reachability over the bytecode CFG: only reachable bytecodes are
  // lowered (their stack depths are well-defined by the kinds pass).
  std::vector<bool> Reachable(N, false);
  {
    std::vector<uint32_t> Stack = {0};
    while (!Stack.empty()) {
      uint32_t Pc = Stack.back();
      Stack.pop_back();
      if (Reachable[Pc])
        continue;
      Reachable[Pc] = true;
      const Insn &I = M.Code[Pc];
      switch (I.Opcode) {
      case Op::Goto:
        Stack.push_back(static_cast<uint32_t>(I.B));
        break;
      case Op::IfICmp: case Op::IfZ: case Op::IfNull: case Op::IfNonNull:
        Stack.push_back(static_cast<uint32_t>(I.B));
        Stack.push_back(Pc + 1);
        break;
      case Op::Ret: case Op::IRet: case Op::ARet:
        break;
      default:
        Stack.push_back(Pc + 1);
        break;
      }
    }
  }

  // Branch targets of *reachable* branches: the peephole must not fold a
  // constant materialization across one.
  std::vector<bool> IsTarget(N, false);
  for (uint32_t Pc = 0; Pc != N; ++Pc) {
    if (!Reachable[Pc])
      continue;
    const Insn &I = M.Code[Pc];
    switch (I.Opcode) {
    case Op::Goto: case Op::IfICmp: case Op::IfZ:
    case Op::IfNull: case Op::IfNonNull:
      IsTarget[static_cast<uint32_t>(I.B)] = true;
      break;
    default:
      break;
    }
  }

  uint32_t MaxDepth = 0;
  for (uint32_t Pc = 0; Pc != N; ++Pc)
    if (Kinds[Pc].size() > MaxDepth)
      MaxDepth = static_cast<uint32_t>(Kinds[Pc].size());
  // The deepest transient depth is entry-depth+pushes within one bytecode;
  // +2 headroom covers every opcode's intermediate state.
  const uint32_t NumStackRegs = MaxDepth + 2;

  MachineFunction F;
  F.Method = M.Id;
  F.NumRegs = M.NumLocals + NumStackRegs;
  F.RegIsRefAtEntry.assign(F.NumRegs, false);
  for (uint32_t P = 0; P != M.NumParams; ++P)
    F.RegIsRefAtEntry[P] = M.ParamKinds[P] == ValKind::Ref;

  auto LocalReg = [&](int32_t L) { return static_cast<uint16_t>(L); };
  auto StackReg = [&](uint32_t Depth) {
    assert(Depth < NumStackRegs && "stack register overflow");
    return static_cast<uint16_t>(M.NumLocals + Depth);
  };

  std::vector<uint32_t> BciFirstInst(N + 1, 0);

  // Pass 1: emit, recording branch targets as *bytecode* indices in Imm.
  for (uint32_t Pc = 0; Pc != N; ++Pc) {
    BciFirstInst[Pc] = static_cast<uint32_t>(F.Insts.size());
    if (!Reachable[Pc])
      continue;

    const Insn &I = M.Code[Pc];
    const uint32_t D = static_cast<uint32_t>(Kinds[Pc].size());

    auto Emit = [&](MachineInst MI) {
      MI.Bci = Pc;
      F.Insts.push_back(MI);
    };
    auto EmitArith = [&](MOp O) {
      // Peephole: MovImm r, k ; <r = a op k>  ==>  AddImm when op is
      // add/sub. Safe because the consumed stack slot is dead afterwards
      // and this bytecode is not a branch target (a jump here would expect
      // the operand to be materialized by the source path -- which it is,
      // since that path also folds or materializes; forbid to stay simple).
      if ((O == MOp::Add || O == MOp::Sub) && !IsTarget[Pc] &&
          !F.Insts.empty()) {
        MachineInst &Last = F.Insts.back();
        if (Last.Op == MOp::MovImm && Last.Dst == StackReg(D - 1)) {
          int32_t K = O == MOp::Add ? Last.Imm : -Last.Imm;
          uint32_t LastBci = Last.Bci;
          F.Insts.pop_back();
          // Keep jumps to the folded constant's bci working: it now begins
          // at the AddImm we are about to emit.
          BciFirstInst[LastBci] =
              static_cast<uint32_t>(F.Insts.size());
          Emit({.Op = MOp::AddImm, .Dst = StackReg(D - 2),
                .SrcA = StackReg(D - 2), .Imm = K});
          return;
        }
      }
      Emit({.Op = O, .Dst = StackReg(D - 2), .SrcA = StackReg(D - 2),
            .SrcB = StackReg(D - 1)});
    };

    switch (I.Opcode) {
    case Op::IConst:
      Emit({.Op = MOp::MovImm, .Dst = StackReg(D), .Imm = I.A});
      break;
    case Op::AConstNull:
      Emit({.Op = MOp::MovImm, .Dst = StackReg(D), .Imm = 0,
            .DstIsRef = true});
      break;
    case Op::ILoad:
      Emit({.Op = MOp::Mov, .Dst = StackReg(D), .SrcA = LocalReg(I.A)});
      break;
    case Op::ALoad:
      Emit({.Op = MOp::Mov, .Dst = StackReg(D), .SrcA = LocalReg(I.A),
            .DstIsRef = true});
      break;
    case Op::IStore:
      Emit({.Op = MOp::Mov, .Dst = LocalReg(I.A), .SrcA = StackReg(D - 1)});
      break;
    case Op::AStore:
      Emit({.Op = MOp::Mov, .Dst = LocalReg(I.A), .SrcA = StackReg(D - 1),
            .DstIsRef = true});
      break;
    case Op::IInc:
      Emit({.Op = MOp::AddImm, .Dst = LocalReg(I.A), .SrcA = LocalReg(I.A),
            .Imm = I.B});
      break;
    case Op::IAdd: EmitArith(MOp::Add); break;
    case Op::ISub: EmitArith(MOp::Sub); break;
    case Op::IMul: EmitArith(MOp::Mul); break;
    case Op::IDiv: EmitArith(MOp::Div); break;
    case Op::IRem: EmitArith(MOp::Rem); break;
    case Op::IAnd: EmitArith(MOp::And); break;
    case Op::IOr:  EmitArith(MOp::Or); break;
    case Op::IXor: EmitArith(MOp::Xor); break;
    case Op::IShl: EmitArith(MOp::Shl); break;
    case Op::IShr: EmitArith(MOp::Shr); break;
    case Op::INeg:
      Emit({.Op = MOp::Neg, .Dst = StackReg(D - 1), .SrcA = StackReg(D - 1)});
      break;
    case Op::Goto:
      Emit({.Op = MOp::Br, .Imm = I.B});
      break;
    case Op::IfICmp:
      Emit({.Op = MOp::BrCmp, .SrcA = StackReg(D - 2),
            .SrcB = StackReg(D - 1), .Imm = I.B,
            .Aux = static_cast<uint16_t>(I.A)});
      break;
    case Op::IfZ:
      Emit({.Op = MOp::BrZero, .SrcA = StackReg(D - 1), .Imm = I.B,
            .Aux = static_cast<uint16_t>(I.A)});
      break;
    case Op::IfNull:
      Emit({.Op = MOp::BrNull, .SrcA = StackReg(D - 1), .Imm = I.B});
      break;
    case Op::IfNonNull:
      Emit({.Op = MOp::BrNonNull, .SrcA = StackReg(D - 1), .Imm = I.B});
      break;
    case Op::New:
      Emit({.Op = MOp::NewObject, .Dst = StackReg(D), .Imm = I.A,
            .IsGcPoint = true, .DstIsRef = true});
      break;
    case Op::NewArray:
      Emit({.Op = MOp::NewArray, .Dst = StackReg(D - 1),
            .SrcA = StackReg(D - 1), .Imm = I.A, .IsGcPoint = true,
            .DstIsRef = true});
      break;
    case Op::GetField:
      Emit({.Op = MOp::LoadField, .Dst = StackReg(D - 1),
            .SrcA = StackReg(D - 1), .Imm = I.A,
            .DstIsRef = Classes.field(I.A).IsRef});
      break;
    case Op::PutField:
      Emit({.Op = MOp::StoreField, .SrcA = StackReg(D - 2),
            .SrcB = StackReg(D - 1), .Imm = I.A});
      break;
    case Op::ALoadI:
      Emit({.Op = MOp::LoadElem, .Dst = StackReg(D - 2),
            .SrcA = StackReg(D - 2), .SrcB = StackReg(D - 1)});
      break;
    case Op::ALoadR:
      Emit({.Op = MOp::LoadElem, .Dst = StackReg(D - 2),
            .SrcA = StackReg(D - 2), .SrcB = StackReg(D - 1),
            .DstIsRef = true});
      break;
    case Op::AStoreI:
      Emit({.Op = MOp::StoreElem, .SrcA = StackReg(D - 3),
            .SrcB = StackReg(D - 2), .SrcC = StackReg(D - 1)});
      break;
    case Op::AStoreR:
      Emit({.Op = MOp::StoreElem, .SrcA = StackReg(D - 3),
            .SrcB = StackReg(D - 2), .SrcC = StackReg(D - 1), .Aux = 1});
      break;
    case Op::ArrayLen:
      Emit({.Op = MOp::ArrayLen, .Dst = StackReg(D - 1),
            .SrcA = StackReg(D - 1)});
      break;
    case Op::GGet:
      Emit({.Op = MOp::GlobalGet, .Dst = StackReg(D), .Imm = I.A,
            .DstIsRef = GlobalKinds[I.A] == ValKind::Ref});
      break;
    case Op::GPut:
      Emit({.Op = MOp::GlobalSet, .SrcA = StackReg(D - 1), .Imm = I.A});
      break;
    case Op::Call: {
      const Method &Callee = AllMethods[I.A];
      CallSite Site;
      for (uint32_t P = 0; P != Callee.NumParams; ++P)
        Site.ArgRegs.push_back(StackReg(D - Callee.NumParams + P));
      F.CallSites.push_back(std::move(Site));
      uint16_t Dst = Callee.Return == RetKind::Void
                         ? kNoReg
                         : StackReg(D - Callee.NumParams);
      Emit({.Op = MOp::Call, .Dst = Dst, .Imm = I.A,
            .Aux = static_cast<uint16_t>(F.CallSites.size() - 1),
            .IsGcPoint = true,
            .DstIsRef = Callee.Return == RetKind::Ref});
      break;
    }
    case Op::Ret:
      Emit({.Op = MOp::Ret});
      break;
    case Op::IRet:
    case Op::ARet:
      Emit({.Op = MOp::Ret, .SrcA = StackReg(D - 1)});
      break;
    case Op::Pop:
      break; // Stack-slot registers above the live depth are simply dead.
    case Op::Dup:
      Emit({.Op = MOp::Mov, .Dst = StackReg(D), .SrcA = StackReg(D - 1),
            .DstIsRef = Kinds[Pc].back() == ValKind::Ref});
      break;
    case Op::Rand:
      Emit({.Op = MOp::RandInt, .Dst = StackReg(D - 1),
            .SrcA = StackReg(D - 1)});
      break;
    }
  }
  BciFirstInst[N] = static_cast<uint32_t>(F.Insts.size());

  // Pass 2: rewrite branch targets from bytecode indices to machine
  // instruction indices. Loop back-edges become yieldpoints (GC points),
  // as in Jikes, which inserts yieldpoints at loop back-edges and method
  // prologues -- these dominate the GC-map population.
  for (uint32_t I = 0; I != F.Insts.size(); ++I) {
    MachineInst &MI = F.Insts[I];
    switch (MI.Op) {
    case MOp::Br: case MOp::BrCmp: case MOp::BrZero:
    case MOp::BrNull: case MOp::BrNonNull:
      MI.Imm = static_cast<int32_t>(BciFirstInst[MI.Imm]);
      assert(MI.Imm >= 0 &&
             static_cast<size_t>(MI.Imm) < F.Insts.size() &&
             "branch lowered to an out-of-range instruction");
      if (static_cast<uint32_t>(MI.Imm) <= I)
        MI.IsGcPoint = true; // Back-edge yieldpoint.
      break;
    default:
      break;
    }
  }
  if (!F.Insts.empty())
    F.Insts.front().IsGcPoint = true; // Prologue yieldpoint.

  return F;
}
