//===-- vm/AdaptiveOptimizationSystem.cpp ---------------------------------===//

#include "vm/AdaptiveOptimizationSystem.h"

#include "obs/Obs.h"
#include "vm/OptCompiler.h"
#include "vm/VirtualMachine.h"

#include <cassert>

using namespace hpmvm;

AdaptiveOptimizationSystem::AdaptiveOptimizationSystem(VirtualMachine &Vm,
                                                       const AosConfig &Config)
    : Vm(Vm), Config(Config) {
  NextTimerSampleAt =
      Vm.clock().now() + VirtualClock::fromMillis(Config.TimerSampleMs);
}

void AdaptiveOptimizationSystem::attachObs(ObsContext &Obs) {
  Trace = &Obs.trace();
  MRecompilations = &Obs.metrics().counter("aos.recompilations");
  MCompileCycles = &Obs.metrics().counter("aos.compile_cycles");
  MTimerSamples = &Obs.metrics().counter("aos.timer_samples");
  MHpmHotReports = &Obs.metrics().counter("aos.hpm_hot_reports");
  MHpmRecompilations = &Obs.metrics().counter("aos.hpm_recompilations");
}

void AdaptiveOptimizationSystem::setConfig(const AosConfig &C) {
  Config = C;
  NextTimerSampleAt =
      Vm.clock().now() + VirtualClock::fromMillis(Config.TimerSampleMs);
}

bool AdaptiveOptimizationSystem::shouldCompile(const Method &M) const {
  if (!Config.Enabled || M.isOptCompiled() || M.Code.empty())
    return false;
  return M.Invocations >= Config.HotInvocationThreshold ||
         M.BackEdges >= Config.HotBackEdgeThreshold;
}

void AdaptiveOptimizationSystem::onInvoke(Method &M) {
  if (shouldCompile(M))
    compileNow(M);
}

void AdaptiveOptimizationSystem::onBackEdge(Method &M) {
  // A long-running loop makes the method hot even with few invocations; the
  // newly compiled code takes effect at the *next* invocation (we do not
  // model on-stack replacement).
  if (shouldCompile(M))
    compileNow(M);
}

void AdaptiveOptimizationSystem::onSafepoint(MethodId Current) {
  Cycles Now = Vm.clock().now();
  if (Now < NextTimerSampleAt)
    return;
  NextTimerSampleAt = Now + VirtualClock::fromMillis(Config.TimerSampleMs);
  if (Current == kInvalidId)
    return;
  ++TimerSamples;
  MTimerSamples->inc();
  if (SamplesPerMethod.size() <= Current)
    SamplesPerMethod.resize(Current + 1, 0);
  ++SamplesPerMethod[Current];
}

uint64_t AdaptiveOptimizationSystem::timerSamplesOf(MethodId Id) const {
  return Id < SamplesPerMethod.size() ? SamplesPerMethod[Id] : 0;
}

void AdaptiveOptimizationSystem::compileNow(Method &M) {
  if (M.isOptCompiled() || M.Code.empty())
    return;
  MachineFunction F = OptCompiler::compile(M, Vm.classes(), Vm.methods(),
                                           Vm.globalKinds());
  // Charge the compile time to the virtual clock, as a real JIT would steal
  // mutator time (Jikes compiles on the application thread by default).
  Cycles Cost = static_cast<Cycles>(M.Code.size()) * kCompileCyclesPerBytecode;
  Vm.clock().advance(Cost);
  Vm.stats().CompileCycles += Cost;
  MRecompilations->inc();
  MCompileCycles->inc(Cost);
  if (Trace)
    Trace->instant(Vm.clock().now(), "aos.recompile", "vm", "method", M.Id);
  Vm.installCompiledCode(M, std::move(F));
}

void AdaptiveOptimizationSystem::noteHpmHotMethod(MethodId Id) {
  ++HpmHotReports;
  MHpmHotReports->inc();
  if (!Config.Enabled)
    return;
  Method &M = Vm.method(Id);
  if (M.isOptCompiled() || M.Code.empty())
    return;
  MHpmRecompilations->inc();
  if (Trace)
    Trace->instant(Vm.clock().now(), "aos.hpm_recompile", "vm", "method",
                   Id);
  compileNow(M);
}

void AdaptiveOptimizationSystem::applyCompilationPlan(
    const std::vector<std::string> &MethodNames) {
  // Pseudo-adaptive mode: compile exactly the plan, then freeze.
  for (const std::string &Name : MethodNames) {
    MethodId Id = Vm.findMethod(Name);
    assert(Id != kInvalidId && "compilation plan names an unknown method");
    compileNow(Vm.method(Id));
  }
  Config.Enabled = false;
}
