//===-- vm/Value.h - Tagged runtime values ----------------------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VM's runtime value: a 32-bit payload plus a reference tag. The tag
/// exists so frames can enumerate their reference slots exactly for the
/// GC's root scan (Jikes gets the same information from its compilers'
/// reference maps).
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_VM_VALUE_H
#define HPMVM_VM_VALUE_H

#include "support/Types.h"

namespace hpmvm {

/// A tagged 32-bit runtime value.
struct Value {
  uint32_t Bits = 0;
  bool IsRef = false;

  static Value makeInt(int32_t V) {
    return Value{static_cast<uint32_t>(V), false};
  }
  static Value makeRef(Address A) { return Value{A, true}; }

  int32_t asInt() const { return static_cast<int32_t>(Bits); }
  Address asRef() const { return Bits; }

  bool operator==(const Value &O) const = default;
};

} // namespace hpmvm

#endif // HPMVM_VM_VALUE_H
