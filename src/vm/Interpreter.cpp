//===-- vm/Interpreter.cpp ------------------------------------------------===//

#include "vm/Interpreter.h"

#include "vm/AdaptiveOptimizationSystem.h"
#include "vm/IntOps.h"
#include "vm/VirtualMachine.h"

#include <cassert>

using namespace hpmvm;

bool hpmvm::evalCond(CondKind Cond, int32_t A, int32_t B) {
  switch (Cond) {
  case CondKind::Eq:
    return A == B;
  case CondKind::Ne:
    return A != B;
  case CondKind::Lt:
    return A < B;
  case CondKind::Ge:
    return A >= B;
  case CondKind::Gt:
    return A > B;
  case CondKind::Le:
    return A <= B;
  }
  return false;
}

namespace {

/// One interpreter activation; registered as a GC root while live.
struct InterpFrame : public FrameRefVisitor {
  std::vector<Value> Locals;
  std::vector<Value> Stack;

  void visitRefs(const std::function<void(Address &)> &Fn) override {
    for (Value &V : Locals)
      if (V.IsRef && V.Bits != kNullRef)
        Fn(V.Bits);
    for (Value &V : Stack)
      if (V.IsRef && V.Bits != kNullRef)
        Fn(V.Bits);
  }
};

} // namespace

Value Interpreter::run(VirtualMachine &Vm, Method &M,
                       std::vector<Value> Args) {
  InterpFrame F;
  F.Locals.resize(M.NumLocals);
  for (size_t I = 0; I != Args.size(); ++I)
    F.Locals[I] = Args[I];
  F.Stack.reserve(16);
  VirtualMachine::FrameScope Scope(Vm, &F);

  VirtualClock &Clock = Vm.clock();
  VmRuntimeStats &Stats = Vm.stats();
  uint64_t SinceSafepoint = 0;

  auto Pop = [&]() -> Value {
    assert(!F.Stack.empty() && "operand stack underflow (verifier bug)");
    Value V = F.Stack.back();
    F.Stack.pop_back();
    return V;
  };
  auto Push = [&](Value V) { F.Stack.push_back(V); };

  uint32_t Pc = 0;
  for (;;) {
    assert(Pc < M.Code.size() && "PC ran off the end (verifier bug)");
    const Insn &I = M.Code[Pc];
    Clock.advance(kInterpretedInsnCycles);
    ++Stats.BytecodesInterpreted;
    if (++SinceSafepoint >= kSafepointStride) {
      SinceSafepoint = 0;
      Vm.safepoint();
    }
    const Address MPc = VirtualMachine::baselinePc(M, Pc);
    uint32_t Next = Pc + 1;

    switch (I.Opcode) {
    case Op::IConst:
      Push(Value::makeInt(I.A));
      break;
    case Op::AConstNull:
      Push(Value::makeRef(kNullRef));
      break;
    case Op::ILoad:
    case Op::ALoad:
      Push(F.Locals[I.A]);
      break;
    case Op::IStore:
    case Op::AStore:
      F.Locals[I.A] = Pop();
      break;
    case Op::IInc:
      F.Locals[I.A] = Value::makeInt(intops::add(F.Locals[I.A].asInt(), I.B));
      break;

    case Op::IAdd: case Op::ISub: case Op::IMul: case Op::IDiv:
    case Op::IRem: case Op::IAnd: case Op::IOr: case Op::IXor:
    case Op::IShl: case Op::IShr: {
      int32_t B = Pop().asInt();
      int32_t A = Pop().asInt();
      int32_t R = 0;
      switch (I.Opcode) {
      case Op::IAdd: R = intops::add(A, B); break;
      case Op::ISub: R = intops::sub(A, B); break;
      case Op::IMul: R = intops::mul(A, B); break;
      case Op::IDiv:
        if (B == 0)
          Vm.trap("division by zero");
        R = intops::div(A, B);
        break;
      case Op::IRem:
        if (B == 0)
          Vm.trap("division by zero (rem)");
        R = intops::rem(A, B);
        break;
      case Op::IAnd: R = A & B; break;
      case Op::IOr:  R = A | B; break;
      case Op::IXor: R = A ^ B; break;
      case Op::IShl: R = A << (B & 31); break;
      case Op::IShr: R = A >> (B & 31); break;
      default: break;
      }
      Push(Value::makeInt(R));
      break;
    }
    case Op::INeg:
      Push(Value::makeInt(intops::neg(Pop().asInt())));
      break;

    case Op::Goto:
      Next = static_cast<uint32_t>(I.B);
      break;
    case Op::IfICmp: {
      int32_t B = Pop().asInt();
      int32_t A = Pop().asInt();
      if (evalCond(static_cast<CondKind>(I.A), A, B))
        Next = static_cast<uint32_t>(I.B);
      break;
    }
    case Op::IfZ: {
      int32_t A = Pop().asInt();
      if (evalCond(static_cast<CondKind>(I.A), A, 0))
        Next = static_cast<uint32_t>(I.B);
      break;
    }
    case Op::IfNull:
      if (Pop().asRef() == kNullRef)
        Next = static_cast<uint32_t>(I.B);
      break;
    case Op::IfNonNull:
      if (Pop().asRef() != kNullRef)
        Next = static_cast<uint32_t>(I.B);
      break;

    case Op::New:
      Push(Value::makeRef(Vm.allocateObject(I.A, MPc)));
      break;
    case Op::NewArray: {
      int32_t Len = Pop().asInt();
      if (Len < 0)
        Vm.trap("negative array length");
      Push(Value::makeRef(
          Vm.allocateArray(I.A, static_cast<uint32_t>(Len), MPc)));
      break;
    }
    case Op::GetField: {
      Address Ref = Pop().asRef();
      Push(Vm.getFieldOp(Ref, I.A, MPc));
      break;
    }
    case Op::PutField: {
      Value V = Pop();
      Address Ref = Pop().asRef();
      Vm.putFieldOp(Ref, I.A, V, MPc);
      break;
    }
    case Op::ALoadI:
    case Op::ALoadR: {
      int32_t Idx = Pop().asInt();
      Address Arr = Pop().asRef();
      Push(Vm.arrayLoadOp(Arr, Idx, I.Opcode == Op::ALoadR, MPc));
      break;
    }
    case Op::AStoreI:
    case Op::AStoreR: {
      Value V = Pop();
      int32_t Idx = Pop().asInt();
      Address Arr = Pop().asRef();
      Vm.arrayStoreOp(Arr, Idx, V, I.Opcode == Op::AStoreR, MPc);
      break;
    }
    case Op::ArrayLen: {
      Address Arr = Pop().asRef();
      Push(Value::makeInt(Vm.arrayLenOp(Arr, MPc)));
      break;
    }

    case Op::GGet:
      Push(Vm.global(I.A));
      break;
    case Op::GPut:
      Vm.setGlobal(I.A, Pop());
      break;

    case Op::Call: {
      const Method &Callee = Vm.method(I.A);
      std::vector<Value> CallArgs(Callee.NumParams);
      for (uint32_t P = Callee.NumParams; P != 0; --P)
        CallArgs[P - 1] = Pop();
      Value R = Vm.invoke(I.A, std::move(CallArgs));
      if (Callee.Return != RetKind::Void)
        Push(R);
      break;
    }
    case Op::Ret:
      return Value::makeInt(0);
    case Op::IRet:
    case Op::ARet:
      return Pop();

    case Op::Pop:
      (void)Pop();
      break;
    case Op::Dup:
      Push(F.Stack.back());
      break;
    case Op::Rand: {
      int32_t Bound = Pop().asInt();
      if (Bound <= 0)
        Vm.trap("rand bound must be positive");
      Push(Value::makeInt(static_cast<int32_t>(
          Vm.mutatorRng().nextBelow(static_cast<uint64_t>(Bound)))));
      break;
    }
    }

    // Loop back-edges feed the AOS's hotness estimate and are safepoints.
    if (Next <= Pc) {
      ++M.BackEdges;
      Vm.aos().onBackEdge(M);
      Vm.safepoint();
    }
    Pc = Next;
  }
}
