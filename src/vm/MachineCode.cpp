//===-- vm/MachineCode.cpp ------------------------------------------------===//

#include "vm/MachineCode.h"

using namespace hpmvm;

const char *hpmvm::mopName(MOp O) {
  switch (O) {
  case MOp::MovImm:     return "movimm";
  case MOp::Mov:        return "mov";
  case MOp::Add:        return "add";
  case MOp::Sub:        return "sub";
  case MOp::Mul:        return "mul";
  case MOp::Div:        return "div";
  case MOp::Rem:        return "rem";
  case MOp::And:        return "and";
  case MOp::Or:         return "or";
  case MOp::Xor:        return "xor";
  case MOp::Shl:        return "shl";
  case MOp::Shr:        return "shr";
  case MOp::AddImm:     return "addimm";
  case MOp::Neg:        return "neg";
  case MOp::Br:         return "br";
  case MOp::BrCmp:      return "brcmp";
  case MOp::BrZero:     return "brzero";
  case MOp::BrNull:     return "brnull";
  case MOp::BrNonNull:  return "brnonnull";
  case MOp::NewObject:  return "newobject";
  case MOp::NewArray:   return "newarray";
  case MOp::LoadField:  return "loadfield";
  case MOp::StoreField: return "storefield";
  case MOp::LoadElem:   return "loadelem";
  case MOp::StoreElem:  return "storeelem";
  case MOp::ArrayLen:   return "arraylen";
  case MOp::GlobalGet:  return "globalget";
  case MOp::GlobalSet:  return "globalset";
  case MOp::Prefetch:   return "prefetch";
  case MOp::Call:       return "call";
  case MOp::Ret:        return "ret";
  case MOp::RandInt:    return "rand";
  }
  return "?";
}

CompiledMethodMaps hpmvm::computeMaps(const MachineFunction &F) {
  CompiledMethodMaps Maps;
  Maps.MachineCodeBytes = F.codeBytes();
  uint32_t GcPoints = 0;
  for (const MachineInst &I : F.Insts)
    if (I.IsGcPoint)
      ++GcPoints;
  Maps.GcMapBytes = GcPoints * kGcMapBytesPerEntry;
  Maps.McMapBytes =
      static_cast<uint32_t>(F.Insts.size()) * kMcMapBytesPerEntry;
  return Maps;
}
