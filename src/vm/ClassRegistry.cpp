//===-- vm/ClassRegistry.cpp ----------------------------------------------===//

#include "vm/ClassRegistry.h"

using namespace hpmvm;

ClassId ClassRegistry::defineClass(const std::string &Name,
                                   const std::vector<FieldSpec> &Specs) {
  std::vector<uint32_t> RefOffsets;
  for (size_t I = 0; I != Specs.size(); ++I)
    if (Specs[I].IsRef)
      RefOffsets.push_back(objheader::kHeaderBytes +
                           static_cast<uint32_t>(I) * 4);

  ClassId Cls = Table.addScalarClass(Name, static_cast<uint32_t>(Specs.size()),
                                     std::move(RefOffsets));
  FieldsByClass.resize(Table.size());
  for (size_t I = 0; I != Specs.size(); ++I) {
    FieldInfo Info;
    Info.Name = Names.text(Names.intern(Name + "::" + Specs[I].Name));
    Info.Owner = Cls;
    Info.Offset = objheader::kHeaderBytes + static_cast<uint32_t>(I) * 4;
    Info.IsRef = Specs[I].IsRef;
    Fields.push_back(std::move(Info));
    FieldsByClass[Cls].push_back(static_cast<FieldId>(Fields.size() - 1));
  }
  return Cls;
}

ClassId ClassRegistry::defineArrayClass(const std::string &Name,
                                        ElemKind Elem) {
  ClassId Cls = Table.addArrayClass(Name, Elem);
  FieldsByClass.resize(Table.size());
  return Cls;
}

FieldId ClassRegistry::fieldId(ClassId Cls, std::string_view Field) const {
  assert(Cls < FieldsByClass.size() && "unknown class id");
  for (FieldId Id : FieldsByClass[Cls]) {
    // Match "...::Field" (qualified names are "Class::field").
    std::string_view Name(Fields[Id].Name);
    if (Name.size() >= Field.size() + 2 && Name.ends_with(Field) &&
        Name.substr(Name.size() - Field.size() - 2, 2) == "::")
      return Id;
  }
  assert(false && "field not found in class");
  return kInvalidId;
}
