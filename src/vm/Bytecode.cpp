//===-- vm/Bytecode.cpp - opName and the bytecode verifier ----------------===//

#include "vm/Bytecode.h"

#include "support/Format.h"
#include "vm/ClassRegistry.h"

#include <cassert>
#include <optional>

using namespace hpmvm;

const char *hpmvm::opName(Op O) {
  switch (O) {
  case Op::IConst:   return "iconst";
  case Op::AConstNull: return "aconst_null";
  case Op::ILoad:    return "iload";
  case Op::IStore:   return "istore";
  case Op::ALoad:    return "aload";
  case Op::AStore:   return "astore";
  case Op::IInc:     return "iinc";
  case Op::IAdd:     return "iadd";
  case Op::ISub:     return "isub";
  case Op::IMul:     return "imul";
  case Op::IDiv:     return "idiv";
  case Op::IRem:     return "irem";
  case Op::IAnd:     return "iand";
  case Op::IOr:      return "ior";
  case Op::IXor:     return "ixor";
  case Op::IShl:     return "ishl";
  case Op::IShr:     return "ishr";
  case Op::INeg:     return "ineg";
  case Op::Goto:     return "goto";
  case Op::IfICmp:   return "if_icmp";
  case Op::IfZ:      return "ifz";
  case Op::IfNull:   return "ifnull";
  case Op::IfNonNull:return "ifnonnull";
  case Op::New:      return "new";
  case Op::NewArray: return "newarray";
  case Op::GetField: return "getfield";
  case Op::PutField: return "putfield";
  case Op::ALoadI:   return "aload_i";
  case Op::AStoreI:  return "astore_i";
  case Op::ALoadR:   return "aload_r";
  case Op::AStoreR:  return "astore_r";
  case Op::ArrayLen: return "arraylen";
  case Op::GGet:     return "gget";
  case Op::GPut:     return "gput";
  case Op::Call:     return "call";
  case Op::Ret:      return "ret";
  case Op::IRet:     return "iret";
  case Op::ARet:     return "aret";
  case Op::Pop:      return "pop";
  case Op::Dup:      return "dup";
  case Op::Rand:     return "rand";
  }
  return "?";
}

namespace {

/// Per-local abstract type: None (never written), a concrete kind, or
/// Conflict (different kinds on different paths; reads are rejected).
enum class LKind : uint8_t { None, Int, Ref, Conflict };

LKind toLKind(ValKind K) {
  return K == ValKind::Int ? LKind::Int : LKind::Ref;
}

/// Abstract state at one program point.
struct AbsState {
  std::vector<ValKind> Stack;
  std::vector<LKind> Locals;

  bool operator==(const AbsState &O) const = default;
};

/// Merges \p In into \p Cur. \returns false on a stack mismatch (fatal),
/// true otherwise; sets \p Changed when Cur grew.
bool mergeInto(AbsState &Cur, const AbsState &In, bool &Changed) {
  if (Cur.Stack != In.Stack)
    return false;
  for (size_t I = 0; I != Cur.Locals.size(); ++I) {
    LKind &C = Cur.Locals[I];
    LKind N = In.Locals[I];
    if (C == N)
      continue;
    LKind Merged = (C == LKind::None) ? N
                   : (N == LKind::None) ? C
                                        : LKind::Conflict;
    if (Merged != C) {
      C = Merged;
      Changed = true;
    }
  }
  return true;
}

} // namespace

std::string hpmvm::verifyMethod(const Method &M,
                                const std::vector<Method> &AllMethods,
                                const ClassRegistry &Classes,
                                const std::vector<ValKind> &GlobalKinds) {
  auto Err = [&](uint32_t Pc, const std::string &Msg) {
    return formatString("%s@%u: %s", M.Name, Pc, Msg.c_str());
  };

  if (M.NumParams != M.ParamKinds.size())
    return std::string(M.Name) + ": NumParams disagrees with ParamKinds";
  if (M.NumLocals < M.NumParams)
    return std::string(M.Name) + ": fewer locals than parameters";
  if (M.Code.empty())
    return std::string(M.Name) + ": empty body";

  const uint32_t N = static_cast<uint32_t>(M.Code.size());

  // Entry state: parameters typed, other locals untouched.
  AbsState Entry;
  Entry.Locals.assign(M.NumLocals, LKind::None);
  for (uint32_t I = 0; I != M.NumParams; ++I)
    Entry.Locals[I] = toLKind(M.ParamKinds[I]);

  std::vector<std::optional<AbsState>> InStates(N);
  InStates[0] = Entry;
  std::vector<uint32_t> Worklist = {0};

  auto Flow = [&](uint32_t To, const AbsState &S) -> std::string {
    if (To >= N)
      return formatString("%s: branch/fallthrough to %u out of range",
                          M.Name, To);
    if (!InStates[To]) {
      InStates[To] = S;
      Worklist.push_back(To);
      return "";
    }
    bool Changed = false;
    if (!mergeInto(*InStates[To], S, Changed))
      return formatString("%s@%u: stack shape mismatch at merge",
                          M.Name, To);
    if (Changed)
      Worklist.push_back(To);
    return "";
  };

  while (!Worklist.empty()) {
    uint32_t Pc = Worklist.back();
    Worklist.pop_back();
    AbsState S = *InStates[Pc];
    const Insn &I = M.Code[Pc];

    auto Pop = [&](ValKind Want, const char *What) -> std::string {
      if (S.Stack.empty())
        return Err(Pc, formatString("stack underflow popping %s", What));
      ValKind Got = S.Stack.back();
      S.Stack.pop_back();
      if (Got != Want)
        return Err(Pc, formatString("expected %s operand for %s",
                                    Want == ValKind::Int ? "int" : "ref",
                                    What));
      return "";
    };
    auto Push = [&](ValKind K) { S.Stack.push_back(K); };

    bool FallsThrough = true;
    std::string E;
    switch (I.Opcode) {
    case Op::IConst:
      Push(ValKind::Int);
      break;
    case Op::AConstNull:
      Push(ValKind::Ref);
      break;
    case Op::ILoad:
    case Op::ALoad: {
      if (I.A < 0 || static_cast<uint32_t>(I.A) >= M.NumLocals)
        return Err(Pc, "local index out of range");
      LKind K = S.Locals[I.A];
      LKind Want = I.Opcode == Op::ILoad ? LKind::Int : LKind::Ref;
      if (K != Want)
        return Err(Pc, K == LKind::None ? "read of uninitialized local"
                                        : "local type mismatch");
      Push(I.Opcode == Op::ILoad ? ValKind::Int : ValKind::Ref);
      break;
    }
    case Op::IStore:
    case Op::AStore: {
      if (I.A < 0 || static_cast<uint32_t>(I.A) >= M.NumLocals)
        return Err(Pc, "local index out of range");
      ValKind Want = I.Opcode == Op::IStore ? ValKind::Int : ValKind::Ref;
      if (!(E = Pop(Want, "store")).empty())
        return E;
      S.Locals[I.A] = toLKind(Want);
      break;
    }
    case Op::IInc:
      if (I.A < 0 || static_cast<uint32_t>(I.A) >= M.NumLocals)
        return Err(Pc, "local index out of range");
      if (S.Locals[I.A] != LKind::Int)
        return Err(Pc, "iinc of a non-int local");
      break;
    case Op::IAdd: case Op::ISub: case Op::IMul: case Op::IDiv:
    case Op::IRem: case Op::IAnd: case Op::IOr: case Op::IXor:
    case Op::IShl: case Op::IShr:
      if (!(E = Pop(ValKind::Int, "arithmetic rhs")).empty())
        return E;
      if (!(E = Pop(ValKind::Int, "arithmetic lhs")).empty())
        return E;
      Push(ValKind::Int);
      break;
    case Op::INeg:
      if (!(E = Pop(ValKind::Int, "negation")).empty())
        return E;
      Push(ValKind::Int);
      break;
    case Op::Goto:
      if (!(E = Flow(static_cast<uint32_t>(I.B), S)).empty())
        return E;
      FallsThrough = false;
      break;
    case Op::IfICmp:
      if (!(E = Pop(ValKind::Int, "compare rhs")).empty())
        return E;
      if (!(E = Pop(ValKind::Int, "compare lhs")).empty())
        return E;
      if (!(E = Flow(static_cast<uint32_t>(I.B), S)).empty())
        return E;
      break;
    case Op::IfZ:
      if (!(E = Pop(ValKind::Int, "zero compare")).empty())
        return E;
      if (!(E = Flow(static_cast<uint32_t>(I.B), S)).empty())
        return E;
      break;
    case Op::IfNull:
    case Op::IfNonNull:
      if (!(E = Pop(ValKind::Ref, "null test")).empty())
        return E;
      if (!(E = Flow(static_cast<uint32_t>(I.B), S)).empty())
        return E;
      break;
    case Op::New:
      if (I.A < 0 || static_cast<size_t>(I.A) >= Classes.numClasses())
        return Err(Pc, "unknown class");
      if (Classes.heapClasses().desc(I.A).isArray())
        return Err(Pc, "New of an array class (use NewArray)");
      Push(ValKind::Ref);
      break;
    case Op::NewArray:
      if (I.A < 0 || static_cast<size_t>(I.A) >= Classes.numClasses())
        return Err(Pc, "unknown class");
      if (!Classes.heapClasses().desc(I.A).isArray())
        return Err(Pc, "NewArray of a scalar class");
      if (!(E = Pop(ValKind::Int, "array length")).empty())
        return E;
      Push(ValKind::Ref);
      break;
    case Op::GetField: {
      if (I.A < 0 || static_cast<size_t>(I.A) >= Classes.numFields())
        return Err(Pc, "unknown field");
      if (!(E = Pop(ValKind::Ref, "getfield receiver")).empty())
        return E;
      Push(Classes.field(I.A).IsRef ? ValKind::Ref : ValKind::Int);
      break;
    }
    case Op::PutField: {
      if (I.A < 0 || static_cast<size_t>(I.A) >= Classes.numFields())
        return Err(Pc, "unknown field");
      ValKind VK = Classes.field(I.A).IsRef ? ValKind::Ref : ValKind::Int;
      if (!(E = Pop(VK, "putfield value")).empty())
        return E;
      if (!(E = Pop(ValKind::Ref, "putfield receiver")).empty())
        return E;
      break;
    }
    case Op::ALoadI:
    case Op::ALoadR:
      if (!(E = Pop(ValKind::Int, "array index")).empty())
        return E;
      if (!(E = Pop(ValKind::Ref, "array ref")).empty())
        return E;
      Push(I.Opcode == Op::ALoadI ? ValKind::Int : ValKind::Ref);
      break;
    case Op::AStoreI:
    case Op::AStoreR:
      if (!(E = Pop(I.Opcode == Op::AStoreI ? ValKind::Int : ValKind::Ref,
                    "array store value")).empty())
        return E;
      if (!(E = Pop(ValKind::Int, "array index")).empty())
        return E;
      if (!(E = Pop(ValKind::Ref, "array ref")).empty())
        return E;
      break;
    case Op::ArrayLen:
      if (!(E = Pop(ValKind::Ref, "arraylen")).empty())
        return E;
      Push(ValKind::Int);
      break;
    case Op::GGet:
      if (I.A < 0 || static_cast<size_t>(I.A) >= GlobalKinds.size())
        return Err(Pc, "unknown global");
      Push(GlobalKinds[I.A]);
      break;
    case Op::GPut:
      if (I.A < 0 || static_cast<size_t>(I.A) >= GlobalKinds.size())
        return Err(Pc, "unknown global");
      if (!(E = Pop(GlobalKinds[I.A], "gput value")).empty())
        return E;
      break;
    case Op::Call: {
      if (I.A < 0 || static_cast<size_t>(I.A) >= AllMethods.size())
        return Err(Pc, "unknown callee");
      const Method &Callee = AllMethods[I.A];
      for (uint32_t P = Callee.NumParams; P != 0; --P)
        if (!(E = Pop(Callee.ParamKinds[P - 1], "call argument")).empty())
          return E;
      if (Callee.Return == RetKind::Int)
        Push(ValKind::Int);
      else if (Callee.Return == RetKind::Ref)
        Push(ValKind::Ref);
      break;
    }
    case Op::Ret:
      if (M.Return != RetKind::Void)
        return Err(Pc, "void return from a non-void method");
      FallsThrough = false;
      break;
    case Op::IRet:
      if (M.Return != RetKind::Int)
        return Err(Pc, "int return from a non-int method");
      if (!(E = Pop(ValKind::Int, "return value")).empty())
        return E;
      FallsThrough = false;
      break;
    case Op::ARet:
      if (M.Return != RetKind::Ref)
        return Err(Pc, "ref return from a non-ref method");
      if (!(E = Pop(ValKind::Ref, "return value")).empty())
        return E;
      FallsThrough = false;
      break;
    case Op::Pop:
      if (S.Stack.empty())
        return Err(Pc, "stack underflow on pop");
      S.Stack.pop_back();
      break;
    case Op::Dup:
      if (S.Stack.empty())
        return Err(Pc, "stack underflow on dup");
      Push(S.Stack.back());
      break;
    case Op::Rand:
      if (!(E = Pop(ValKind::Int, "rand bound")).empty())
        return E;
      Push(ValKind::Int);
      break;
    }

    if (FallsThrough) {
      if (Pc + 1 == N)
        return Err(Pc, "control falls off the end of the method");
      if (!(E = Flow(Pc + 1, S)).empty())
        return E;
    }
  }
  return "";
}
