//===-- vm/ClassRegistry.h - Classes, fields, globals ----------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VM-level type registry. Extends the GC-level HeapClassTable with
/// field names and a *global field table*: every reference field gets a
/// FieldId, which is the key the monitoring system attributes cache misses
/// to ("we keep a per-reference event count which tells the runtime system
/// how many misses occurred when dereferencing the corresponding access
/// path expressions").
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_VM_CLASSREGISTRY_H
#define HPMVM_VM_CLASSREGISTRY_H

#include "heap/ObjectModel.h"
#include "support/StringInterner.h"
#include "support/Types.h"

#include <string>
#include <string_view>
#include <vector>

namespace hpmvm {

/// Declaration of one instance field.
struct FieldSpec {
  std::string Name;
  bool IsRef = false;
};

/// Resolved information about one field.
struct FieldInfo {
  /// "Class::field" qualified name, interned into the registry's arena at
  /// class-definition time (stable for the registry's lifetime). Sample
  /// consumers keep FieldIds; this text is for diagnostics and reports.
  const char *Name = "";
  ClassId Owner = kInvalidId;
  uint32_t Offset = 0;   ///< Byte offset from object start.
  bool IsRef = false;
};

/// VM class/field registry, layered over the GC's HeapClassTable.
class ClassRegistry {
public:
  /// Defines a scalar class with 4-byte fields laid out in declaration
  /// order after the header.
  ClassId defineClass(const std::string &Name,
                      const std::vector<FieldSpec> &Fields);

  /// Defines an array class of the given element kind.
  ClassId defineArrayClass(const std::string &Name, ElemKind Elem);

  /// \returns the FieldId of \p Field in \p Cls; asserts if absent.
  FieldId fieldId(ClassId Cls, std::string_view Field) const;

  const FieldInfo &field(FieldId Id) const {
    assert(Id < Fields.size() && "unknown field id");
    return Fields[Id];
  }

  /// FieldIds of all fields declared by \p Cls.
  const std::vector<FieldId> &fieldsOf(ClassId Cls) const {
    assert(Cls < FieldsByClass.size() && "unknown class id");
    return FieldsByClass[Cls];
  }

  size_t numFields() const { return Fields.size(); }
  size_t numClasses() const { return Table.size(); }

  const std::string &className(ClassId Cls) const {
    return Table.desc(Cls).Name;
  }

  /// The GC-level view of the registered classes.
  const HeapClassTable &heapClasses() const { return Table; }

private:
  HeapClassTable Table;
  std::vector<FieldInfo> Fields;
  std::vector<std::vector<FieldId>> FieldsByClass;
  /// Arena for qualified field names; FieldInfo::Name points in here.
  StringInterner Names;
};

} // namespace hpmvm

#endif // HPMVM_VM_CLASSREGISTRY_H
