//===-- vm/VirtualMachine.h - The VM facade ---------------------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The virtual machine: owns the simulated clock, memory hierarchy, heap
/// backing store, class/method registries, globals, compiled code, and the
/// adaptive optimization system; dispatches method invocations to the
/// baseline interpreter or to optimized machine code; provides the
/// mutator's memory-access services (every semantic heap access is charged
/// through the memory hierarchy at a precise code address, which is what
/// the PEBS unit samples); and acts as the GC's root provider.
///
/// Wiring: the collector plan (src/gc) and the HPM monitor (src/core) are
/// attached from outside; see harness/ExperimentRunner for the standard
/// assembly.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_VM_VIRTUALMACHINE_H
#define HPMVM_VM_VIRTUALMACHINE_H

#include "heap/GcApi.h"
#include "heap/HeapMemory.h"
#include "heap/ImmortalSpace.h"
#include "heap/ObjectModel.h"
#include "memsim/MemoryHierarchy.h"
#include "support/Random.h"
#include "support/StringInterner.h"
#include "support/Types.h"
#include "support/VirtualClock.h"
#include "vm/Bytecode.h"
#include "vm/ClassRegistry.h"
#include "vm/CostModel.h"
#include "vm/MachineCode.h"
#include "vm/MethodTable.h"
#include "vm/Value.h"

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace hpmvm {

class AdaptiveOptimizationSystem;
class ObsContext;

/// VM construction parameters.
struct VmConfig {
  uint32_t HeapBytes = 64 * 1024 * 1024;
  uint64_t Seed = 1;
  MemoryHierarchyConfig Mem;
  /// Charge the cache traffic of zero-initializing fresh objects (the
  /// allocation-site stores real hardware would issue).
  bool CountAllocationTraffic = true;
  /// Count executed getfield operations per field (the light-weight
  /// software profiling the frequency-driven comparison advisor uses;
  /// costs one cycle per field read when enabled).
  bool ProfileFieldAccess = false;
};

/// Mutator-side runtime statistics.
struct VmRuntimeStats {
  uint64_t BytecodesInterpreted = 0;
  uint64_t MachineInstsExecuted = 0;
  uint64_t Invocations = 0;
  uint64_t ObjectsAllocated = 0;
  uint64_t BytesAllocated = 0;
  uint64_t MethodsOptCompiled = 0;
  Cycles CompileCycles = 0;
  uint64_t Traps = 0;
};

/// A frame that can enumerate its reference slots for the root scan.
class FrameRefVisitor {
public:
  virtual ~FrameRefVisitor() = default;
  virtual void visitRefs(const std::function<void(Address &)> &Fn) = 0;
};

/// The virtual machine.
class VirtualMachine : public RootProvider {
public:
  explicit VirtualMachine(const VmConfig &Config = {});
  ~VirtualMachine();

  VirtualMachine(const VirtualMachine &) = delete;
  VirtualMachine &operator=(const VirtualMachine &) = delete;

  // --- Program definition -------------------------------------------------
  ClassRegistry &classes() { return Registry; }
  const ClassRegistry &classes() const { return Registry; }

  /// Declares a method signature without a body (for mutual recursion);
  /// provide the body later with defineMethod. The label is interned into
  /// the VM's arena (Method::Name stays valid for the VM's lifetime).
  MethodId declareMethod(std::string_view Name, std::vector<ValKind> Params,
                         RetKind Ret);

  /// Fills in the body of a declared method. \p M's signature must match.
  /// Verifies the bytecode (fatal on failure) and assigns baseline code
  /// addresses.
  void defineMethod(MethodId Id, Method M);

  /// declare + define in one step; \returns the new MethodId.
  MethodId addMethod(Method M);

  /// Registers a VM-level global slot. Reference globals are GC roots.
  uint32_t addGlobal(ValKind Kind);

  Method &method(MethodId Id);
  const std::vector<Method> &methods() const { return Methods; }
  const std::vector<ValKind> &globalKinds() const { return GlobalKinds; }

  /// By-name lookup through the label interner: one hash probe plus an id
  /// table read, no per-method string compares. First declaration wins for
  /// duplicate names (matching the old linear scan).
  MethodId findMethod(std::string_view Name) const;

  /// The interned label of \p Id (arena-backed, stable).
  const char *methodLabel(MethodId Id) const {
    assert(Id < Methods.size() && "unknown method id");
    return Methods[Id].Name;
  }

  // --- Collector / monitor wiring ------------------------------------------
  void setCollector(GarbageCollector *C);
  GarbageCollector &collector() {
    assert(Gc && "no collector attached");
    return *Gc;
  }

  /// Hook run at safepoints (the harness polls the sample collector and
  /// the auto-interval controller here).
  void setSafepointHook(std::function<void()> Hook) {
    SafepointHook = std::move(Hook);
  }

  /// Wires VM-side observability (currently the AOS's recompilation
  /// metrics/trace events) into \p Obs.
  void attachObs(ObsContext &Obs);

  // --- Execution ------------------------------------------------------------
  /// Invokes a method (dispatching to interpreter or optimized code).
  Value invoke(MethodId Id, std::vector<Value> Args);

  /// Runs \p Main (no arguments) to completion.
  void run(MethodId Main);

  // --- Services used by the execution engines -------------------------------
  /// Loads \p Size bytes at \p A, charging the memory hierarchy with the
  /// access issued from code address \p Pc. \returns the (low) 32 bits.
  uint32_t mutatorLoad(Address A, uint32_t Size, Address Pc);
  /// Stores the low \p Size bytes of \p V at \p A.
  void mutatorStore(Address A, uint32_t Size, uint32_t V, Address Pc);

  Address allocateObject(ClassId Cls, Address Pc);
  Address allocateArray(ClassId Cls, uint32_t Length, Address Pc);

  /// Reference store with generational write barrier; the caller has
  /// already charged the cache access.
  void refStore(Address Holder, Address SlotAddr, Address NewVal);

  // Shared semantic heap operations (null/type/bounds checked, memory
  // traffic charged at \p Pc). Used by both execution engines so their
  // semantics cannot diverge.
  Value getFieldOp(Address Ref, FieldId Fid, Address Pc);
  void putFieldOp(Address Ref, FieldId Fid, Value V, Address Pc);
  Value arrayLoadOp(Address Arr, int32_t Idx, bool WantRef, Address Pc);
  void arrayStoreOp(Address Arr, int32_t Idx, Value V, bool IsRefStore,
                    Address Pc);
  int32_t arrayLenOp(Address Arr, Address Pc);

  /// Software-prefetch service for JIT-inserted Prefetch instructions.
  void prefetchHint(Address A, Address Pc);

  /// Safepoint: runs the harness hook and AOS timer sampling.
  void safepoint();

  Value global(uint32_t Idx) const;
  void setGlobal(uint32_t Idx, Value V);

  [[noreturn]] void trap(const std::string &Msg);

  // --- Components -----------------------------------------------------------
  VirtualClock &clock() { return Clock; }
  MemoryHierarchy &memory() { return Mem; }
  HeapMemory &heapMemory() { return Heap; }
  ObjectModel &objects() { return Objects; }
  ImmortalSpace &immortal() { return Immortal; }
  MethodTable &methodTable() { return CodeTable; }
  SplitMix64 &mutatorRng() { return MutatorRng; }
  AdaptiveOptimizationSystem &aos() { return *Aos; }
  VmRuntimeStats &stats() { return Stats; }
  const VmConfig &config() const { return Config; }

  /// The method currently executing (innermost frame), for AOS timer
  /// sampling; kInvalidId outside invoke().
  MethodId currentMethod() const { return CurrentMethod; }

  /// Executed getfield count for \p F (0 unless ProfileFieldAccess).
  uint64_t fieldAccessCount(FieldId F) const {
    return F < FieldAccessCounts.size() ? FieldAccessCounts[F] : 0;
  }

  const MachineFunction &compiledCode(uint32_t OptIndex) const {
    return CompiledFns.at(OptIndex);
  }
  size_t numCompiledFunctions() const { return CompiledFns.size(); }

  /// Installs \p F as \p M's optimized code: assigns immortal addresses,
  /// updates the method table, retires old code. Called by the AOS.
  void installCompiledCode(Method &M, MachineFunction F);

  /// Baseline "machine code" address of bytecode \p Bci in \p M.
  static Address baselinePc(const Method &M, uint32_t Bci) {
    return M.BaselineCodeBase + Bci * kBaselineBytesPerBytecode;
  }

  // --- Roots -----------------------------------------------------------------
  void forEachRoot(const std::function<void(Address &)> &Fn) override;

  /// RAII registration of an active frame for root scanning.
  class FrameScope {
  public:
    FrameScope(VirtualMachine &Vm, FrameRefVisitor *Frame) : Vm(Vm) {
      Vm.Frames.push_back(Frame);
    }
    ~FrameScope() { Vm.Frames.pop_back(); }
    FrameScope(const FrameScope &) = delete;
    FrameScope &operator=(const FrameScope &) = delete;

  private:
    VirtualMachine &Vm;
  };

private:
  friend class FrameScope;

  void chargeAllocation(Address Obj, uint32_t Bytes, Address Pc);

  /// Interns \p Name into the label arena and records \p Id as its
  /// findMethod winner (first declaration wins). \returns the arena text.
  const char *internLabel(std::string_view Name, MethodId Id);

  VmConfig Config;
  VirtualClock Clock;
  MemoryHierarchy Mem;
  HeapMemory Heap;
  ClassRegistry Registry;
  ObjectModel Objects;
  ImmortalSpace Immortal;
  MethodTable CodeTable;
  SplitMix64 MutatorRng;
  std::vector<Method> Methods;
  std::deque<MachineFunction> CompiledFns;
  std::vector<Value> Globals;
  std::vector<ValKind> GlobalKinds;
  std::vector<FrameRefVisitor *> Frames;
  GarbageCollector *Gc = nullptr;
  std::unique_ptr<AdaptiveOptimizationSystem> Aos;
  std::function<void()> SafepointHook;
  VmRuntimeStats Stats;
  MethodId CurrentMethod = kInvalidId;
  std::vector<uint64_t> FieldAccessCounts;
  /// Arena for method labels; Method::Name always points in here.
  StringInterner Labels;
  /// Interned label id -> lowest MethodId bearing that label (the
  /// findMethod winner). Indexed by label id; kInvalidId when unmapped.
  std::vector<MethodId> MethodByLabel;
};

} // namespace hpmvm

#endif // HPMVM_VM_VIRTUALMACHINE_H
