//===-- vm/MachineExecutor.cpp --------------------------------------------===//

#include "vm/MachineExecutor.h"

#include "vm/Interpreter.h" // evalCond
#include "vm/IntOps.h"
#include "vm/VirtualMachine.h"

#include <cassert>

using namespace hpmvm;

namespace {

/// One optimized-code activation; its virtual register file is a GC root
/// set (the real system's GC maps describe exactly this).
struct MachineFrame : public FrameRefVisitor {
  std::vector<Value> Regs;

  void visitRefs(const std::function<void(Address &)> &Fn) override {
    for (Value &V : Regs)
      if (V.IsRef && V.Bits != kNullRef)
        Fn(V.Bits);
  }
};

} // namespace

Value MachineExecutor::run(VirtualMachine &Vm, Method &M,
                           const MachineFunction &F,
                           std::vector<Value> Args) {
  (void)M; // The method is implicit in F; kept for symmetry/debugging.
  assert(F.CodeBase != 0 && "executing uninstalled code");
  MachineFrame Frame;
  Frame.Regs.resize(F.NumRegs);
  for (size_t I = 0; I != Args.size(); ++I)
    Frame.Regs[I] = Args[I];
  VirtualMachine::FrameScope Scope(Vm, &Frame);

  VirtualClock &Clock = Vm.clock();
  VmRuntimeStats &Stats = Vm.stats();
  std::vector<Value> &R = Frame.Regs;
  uint64_t SinceSafepoint = 0;

  auto Int = [&](uint16_t Reg) { return R[Reg].asInt(); };
  auto Ref = [&](uint16_t Reg) { return R[Reg].asRef(); };
  auto SetInt = [&](uint16_t Reg, int32_t V) { R[Reg] = Value::makeInt(V); };

  uint32_t Idx = 0;
  for (;;) {
    assert(Idx < F.Insts.size() && "machine PC ran off the end");
    const MachineInst &I = F.Insts[Idx];
    const Address Pc = F.addressOf(Idx);
    Clock.advance(kMachineInstCycles);
    ++Stats.MachineInstsExecuted;
    if (++SinceSafepoint >= kSafepointStride) {
      SinceSafepoint = 0;
      Vm.safepoint();
    }
    uint32_t Next = Idx + 1;

    switch (I.Op) {
    case MOp::MovImm:
      if (I.DstIsRef)
        R[I.Dst] = Value::makeRef(static_cast<Address>(I.Imm));
      else
        SetInt(I.Dst, I.Imm);
      break;
    case MOp::Mov:
      R[I.Dst] = R[I.SrcA];
      break;
    case MOp::Add: SetInt(I.Dst, intops::add(Int(I.SrcA), Int(I.SrcB))); break;
    case MOp::Sub: SetInt(I.Dst, intops::sub(Int(I.SrcA), Int(I.SrcB))); break;
    case MOp::Mul: SetInt(I.Dst, intops::mul(Int(I.SrcA), Int(I.SrcB))); break;
    case MOp::Div:
      if (Int(I.SrcB) == 0)
        Vm.trap("division by zero");
      SetInt(I.Dst, intops::div(Int(I.SrcA), Int(I.SrcB)));
      break;
    case MOp::Rem:
      if (Int(I.SrcB) == 0)
        Vm.trap("division by zero (rem)");
      SetInt(I.Dst, intops::rem(Int(I.SrcA), Int(I.SrcB)));
      break;
    case MOp::And: SetInt(I.Dst, Int(I.SrcA) & Int(I.SrcB)); break;
    case MOp::Or:  SetInt(I.Dst, Int(I.SrcA) | Int(I.SrcB)); break;
    case MOp::Xor: SetInt(I.Dst, Int(I.SrcA) ^ Int(I.SrcB)); break;
    case MOp::Shl: SetInt(I.Dst, Int(I.SrcA) << (Int(I.SrcB) & 31)); break;
    case MOp::Shr: SetInt(I.Dst, Int(I.SrcA) >> (Int(I.SrcB) & 31)); break;
    case MOp::AddImm:
      SetInt(I.Dst, intops::add(Int(I.SrcA), I.Imm));
      break;
    case MOp::Neg:
      SetInt(I.Dst, intops::neg(Int(I.SrcA)));
      break;

    case MOp::Br:
      Next = static_cast<uint32_t>(I.Imm);
      break;
    case MOp::BrCmp:
      if (evalCond(static_cast<CondKind>(I.Aux), Int(I.SrcA), Int(I.SrcB)))
        Next = static_cast<uint32_t>(I.Imm);
      break;
    case MOp::BrZero:
      if (evalCond(static_cast<CondKind>(I.Aux), Int(I.SrcA), 0))
        Next = static_cast<uint32_t>(I.Imm);
      break;
    case MOp::BrNull:
      if (Ref(I.SrcA) == kNullRef)
        Next = static_cast<uint32_t>(I.Imm);
      break;
    case MOp::BrNonNull:
      if (Ref(I.SrcA) != kNullRef)
        Next = static_cast<uint32_t>(I.Imm);
      break;

    case MOp::NewObject:
      R[I.Dst] = Value::makeRef(Vm.allocateObject(I.Imm, Pc));
      break;
    case MOp::NewArray: {
      int32_t Len = Int(I.SrcA);
      if (Len < 0)
        Vm.trap("negative array length");
      R[I.Dst] = Value::makeRef(
          Vm.allocateArray(I.Imm, static_cast<uint32_t>(Len), Pc));
      break;
    }
    case MOp::LoadField:
      R[I.Dst] = Vm.getFieldOp(Ref(I.SrcA), I.Imm, Pc);
      break;
    case MOp::StoreField:
      Vm.putFieldOp(Ref(I.SrcA), I.Imm, R[I.SrcB], Pc);
      break;
    case MOp::LoadElem:
      R[I.Dst] = Vm.arrayLoadOp(Ref(I.SrcA), Int(I.SrcB), I.DstIsRef, Pc);
      break;
    case MOp::StoreElem:
      Vm.arrayStoreOp(Ref(I.SrcA), Int(I.SrcB), R[I.SrcC],
                      /*IsRefStore=*/I.Aux != 0, Pc);
      break;
    case MOp::ArrayLen:
      SetInt(I.Dst, Vm.arrayLenOp(Ref(I.SrcA), Pc));
      break;

    case MOp::GlobalGet:
      R[I.Dst] = Vm.global(I.Imm);
      break;
    case MOp::GlobalSet:
      Vm.setGlobal(I.Imm, R[I.SrcA]);
      break;

    case MOp::Prefetch:
      if (Address A = Ref(I.SrcA))
        Vm.prefetchHint(A, Pc);
      break;

    case MOp::Call: {
      const CallSite &Site = F.CallSites[I.Aux];
      const Method &Callee = Vm.method(I.Imm);
      std::vector<Value> CallArgs(Site.ArgRegs.size());
      for (size_t P = 0; P != Site.ArgRegs.size(); ++P)
        CallArgs[P] = R[Site.ArgRegs[P]];
      Value Result = Vm.invoke(I.Imm, std::move(CallArgs));
      if (Callee.Return != RetKind::Void)
        R[I.Dst] = Result;
      break;
    }
    case MOp::Ret:
      return I.SrcA == kNoReg ? Value::makeInt(0) : R[I.SrcA];

    case MOp::RandInt: {
      int32_t Bound = Int(I.SrcA);
      if (Bound <= 0)
        Vm.trap("rand bound must be positive");
      SetInt(I.Dst, static_cast<int32_t>(
                        Vm.mutatorRng().nextBelow(
                            static_cast<uint64_t>(Bound))));
      break;
    }
    }

    if (Next <= Idx)
      Vm.safepoint(); // Loop back-edge: poll.
    Idx = Next;
  }
}
