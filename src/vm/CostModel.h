//===-- vm/CostModel.h - Cycle cost constants -------------------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// All cycle-cost constants of the execution model in one place (memory
/// latencies live in memsim::LatencyConfig; GC costs in gc/GcCostModel.h).
/// DESIGN.md section 6 documents the calibration: the absolute values are
/// chosen so the paper's *relative* results (sampling overhead per
/// interval, baseline-vs-optimized code quality, monitoring cost shares)
/// come out in the observed ranges.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_VM_COSTMODEL_H
#define HPMVM_VM_COSTMODEL_H

#include "support/Types.h"

namespace hpmvm {

/// Base cost of one interpreted (baseline-compiled) bytecode.
inline constexpr Cycles kInterpretedInsnCycles = 8;

/// Base cost of one optimized machine instruction.
inline constexpr Cycles kMachineInstCycles = 1;

/// Call/return linkage overhead per invocation.
inline constexpr Cycles kCallOverheadCycles = 12;

/// Allocation fast path (bump or free-list pop), excluding zeroing.
inline constexpr Cycles kAllocCycles = 10;

/// Zeroing cost per 16 bytes of a new object.
inline constexpr Cycles kZeroCyclesPer16Bytes = 1;

/// Generational write-barrier cost per reference store.
inline constexpr Cycles kWriteBarrierCycles = 3;

/// JIT compilation cost per bytecode compiled (opt compiler).
inline constexpr Cycles kCompileCyclesPerBytecode = 1500;

/// Per-sample cost of resolving + bookkeeping a PEBS sample in the VM
/// (method-table lookup, machine-code-map walk, per-field counter update).
/// Together with the PEBS microcode, kernel copy and collector poll costs
/// this reproduces the Figure 2 overhead magnitudes.
inline constexpr Cycles kSampleProcessCycles = 6000;

/// Simulated baseline-compiler code expansion: bytes of machine code per
/// bytecode instruction (used to assign baseline PCs).
inline constexpr uint32_t kBaselineBytesPerBytecode = 12;

/// Safepoint polling stride: the execution engines call
/// VirtualMachine::safepoint() every this-many executed instructions (and
/// at every method return).
inline constexpr uint64_t kSafepointStride = 256;

} // namespace hpmvm

#endif // HPMVM_VM_COSTMODEL_H
