//===-- vm/Interpreter.h - Baseline bytecode interpreter -------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline execution engine: every method starts out "baseline
/// compiled" (Jikes compiles everything with the quick baseline compiler
/// first); we model the resulting code as direct interpretation at a higher
/// per-instruction cost. Heap accesses are issued at the bytecode's
/// baseline PC, so samples landing in baseline code still resolve to a
/// method + bytecode -- but the monitoring system only computes
/// instructions-of-interest for opt-compiled methods, exactly as in the
/// paper ("the monitoring system does not consider instructions in
/// non-optimized methods").
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_VM_INTERPRETER_H
#define HPMVM_VM_INTERPRETER_H

#include "vm/Bytecode.h"
#include "vm/Value.h"

#include <vector>

namespace hpmvm {

class VirtualMachine;

/// Executes bytecode directly.
class Interpreter {
public:
  /// Runs \p M with \p Args; \returns the method's result (a dummy int 0
  /// for void methods).
  static Value run(VirtualMachine &Vm, Method &M, std::vector<Value> Args);
};

/// Evaluates \p Cond over (A, B); shared by interpreter and machine
/// executor so comparison semantics cannot drift apart.
bool evalCond(CondKind Cond, int32_t A, int32_t B);

} // namespace hpmvm

#endif // HPMVM_VM_INTERPRETER_H
