//===-- vm/Disassembler.cpp -----------------------------------------------===//

#include "vm/Disassembler.h"

#include "support/Format.h"
#include "vm/ClassRegistry.h"

using namespace hpmvm;

namespace {

const char *condName(CondKind C) {
  switch (C) {
  case CondKind::Eq: return "eq";
  case CondKind::Ne: return "ne";
  case CondKind::Lt: return "lt";
  case CondKind::Ge: return "ge";
  case CondKind::Gt: return "gt";
  case CondKind::Le: return "le";
  }
  return "?";
}

std::string className(const ClassRegistry &Classes, int32_t Id) {
  if (Id < 0 || static_cast<size_t>(Id) >= Classes.numClasses())
    return formatString("class#%d", Id);
  return Classes.className(static_cast<ClassId>(Id));
}

std::string fieldName(const ClassRegistry &Classes, int32_t Id) {
  if (Id < 0 || static_cast<size_t>(Id) >= Classes.numFields())
    return formatString("field#%d", Id);
  return Classes.field(static_cast<FieldId>(Id)).Name;
}

std::string methodName(const std::vector<Method> &Methods, int32_t Id) {
  if (Id < 0 || static_cast<size_t>(Id) >= Methods.size())
    return formatString("method#%d", Id);
  return Methods[Id].Name;
}

std::string reg(uint16_t R) {
  return R == kNoReg ? std::string("-") : formatString("r%u", R);
}

} // namespace

std::string hpmvm::disassembleInsn(const Insn &I,
                                   const ClassRegistry &Classes,
                                   const std::vector<Method> &Methods) {
  switch (I.Opcode) {
  case Op::IConst:
    return formatString("iconst %d", I.A);
  case Op::ILoad:
  case Op::IStore:
  case Op::ALoad:
  case Op::AStore:
  case Op::GGet:
  case Op::GPut:
    return formatString("%s %d", opName(I.Opcode), I.A);
  case Op::IInc:
    return formatString("iinc %d, %d", I.A, I.B);
  case Op::Goto:
    return formatString("goto -> %d", I.B);
  case Op::IfICmp:
    return formatString("if_icmp%s -> %d",
                        condName(static_cast<CondKind>(I.A)), I.B);
  case Op::IfZ:
    return formatString("if%sz -> %d",
                        condName(static_cast<CondKind>(I.A)), I.B);
  case Op::IfNull:
  case Op::IfNonNull:
    return formatString("%s -> %d", opName(I.Opcode), I.B);
  case Op::New:
  case Op::NewArray:
    return formatString("%s %s", opName(I.Opcode),
                        className(Classes, I.A).c_str());
  case Op::GetField:
  case Op::PutField:
    return formatString("%s %s", opName(I.Opcode),
                        fieldName(Classes, I.A).c_str());
  case Op::Call:
    return formatString("call %s", methodName(Methods, I.A).c_str());
  default:
    return opName(I.Opcode);
  }
}

std::string hpmvm::disassembleMethod(const Method &M,
                                     const ClassRegistry &Classes,
                                     const std::vector<Method> &Methods) {
  std::string Out = formatString(
      "method %s (%u params, %u locals, %zu bytecodes)\n", M.Name,
      M.NumParams, M.NumLocals, M.Code.size());
  for (size_t I = 0; I != M.Code.size(); ++I)
    Out += formatString("  %4zu: %s\n", I,
                        disassembleInsn(M.Code[I], Classes, Methods).c_str());
  return Out;
}

std::string
hpmvm::disassembleMachineInst(const MachineInst &I,
                              const ClassRegistry &Classes,
                              const std::vector<Method> &Methods) {
  switch (I.Op) {
  case MOp::MovImm:
    return I.DstIsRef && I.Imm == 0
               ? formatString("mov %s <- null", reg(I.Dst).c_str())
               : formatString("mov %s <- %d", reg(I.Dst).c_str(), I.Imm);
  case MOp::Mov:
    return formatString("mov %s <- %s", reg(I.Dst).c_str(),
                        reg(I.SrcA).c_str());
  case MOp::Add: case MOp::Sub: case MOp::Mul: case MOp::Div:
  case MOp::Rem: case MOp::And: case MOp::Or: case MOp::Xor:
  case MOp::Shl: case MOp::Shr:
    return formatString("%s %s <- %s, %s", mopName(I.Op),
                        reg(I.Dst).c_str(), reg(I.SrcA).c_str(),
                        reg(I.SrcB).c_str());
  case MOp::AddImm:
    return formatString("add %s <- %s, %d", reg(I.Dst).c_str(),
                        reg(I.SrcA).c_str(), I.Imm);
  case MOp::Neg:
    return formatString("neg %s <- %s", reg(I.Dst).c_str(),
                        reg(I.SrcA).c_str());
  case MOp::Br:
    return formatString("br -> @%d", I.Imm);
  case MOp::BrCmp:
    return formatString("br.%s %s, %s -> @%d",
                        condName(static_cast<CondKind>(I.Aux)),
                        reg(I.SrcA).c_str(), reg(I.SrcB).c_str(), I.Imm);
  case MOp::BrZero:
    return formatString("br.%sz %s -> @%d",
                        condName(static_cast<CondKind>(I.Aux)),
                        reg(I.SrcA).c_str(), I.Imm);
  case MOp::BrNull:
    return formatString("br.null %s -> @%d", reg(I.SrcA).c_str(), I.Imm);
  case MOp::BrNonNull:
    return formatString("br.nonnull %s -> @%d", reg(I.SrcA).c_str(),
                        I.Imm);
  case MOp::NewObject:
    return formatString("new %s <- %s", reg(I.Dst).c_str(),
                        className(Classes, I.Imm).c_str());
  case MOp::NewArray:
    return formatString("newarray %s <- %s[%s]", reg(I.Dst).c_str(),
                        className(Classes, I.Imm).c_str(),
                        reg(I.SrcA).c_str());
  case MOp::LoadField:
    return formatString("loadfield %s <- [%s + %s]", reg(I.Dst).c_str(),
                        reg(I.SrcA).c_str(),
                        fieldName(Classes, I.Imm).c_str());
  case MOp::StoreField:
    return formatString("storefield [%s + %s] <- %s",
                        reg(I.SrcA).c_str(),
                        fieldName(Classes, I.Imm).c_str(),
                        reg(I.SrcB).c_str());
  case MOp::LoadElem:
    return formatString("loadelem %s <- %s[%s]", reg(I.Dst).c_str(),
                        reg(I.SrcA).c_str(), reg(I.SrcB).c_str());
  case MOp::StoreElem:
    return formatString("storeelem %s[%s] <- %s", reg(I.SrcA).c_str(),
                        reg(I.SrcB).c_str(), reg(I.SrcC).c_str());
  case MOp::ArrayLen:
    return formatString("arraylen %s <- %s", reg(I.Dst).c_str(),
                        reg(I.SrcA).c_str());
  case MOp::GlobalGet:
    return formatString("gget %s <- g%d", reg(I.Dst).c_str(), I.Imm);
  case MOp::GlobalSet:
    return formatString("gput g%d <- %s", I.Imm, reg(I.SrcA).c_str());
  case MOp::Prefetch:
    return formatString("prefetch [%s]", reg(I.SrcA).c_str());
  case MOp::Call:
    return formatString("call %s%s%s",
                        methodName(Methods, I.Imm).c_str(),
                        I.Dst == kNoReg ? "" : " -> ",
                        I.Dst == kNoReg ? "" : reg(I.Dst).c_str());
  case MOp::Ret:
    return I.SrcA == kNoReg ? std::string("ret")
                            : formatString("ret %s", reg(I.SrcA).c_str());
  case MOp::RandInt:
    return formatString("rand %s <- [0, %s)", reg(I.Dst).c_str(),
                        reg(I.SrcA).c_str());
  }
  return "?";
}

std::string hpmvm::disassembleMachineFunction(
    const MachineFunction &F, const ClassRegistry &Classes,
    const std::vector<Method> &Methods,
    const std::vector<FieldId> *Interest) {
  std::string Out = formatString(
      "compiled %s: %zu insts, %u regs, code @0x%08x\n",
      methodName(Methods, static_cast<int32_t>(F.Method)).c_str(),
      F.Insts.size(), F.NumRegs, F.CodeBase);
  for (size_t I = 0; I != F.Insts.size(); ++I) {
    const MachineInst &MI = F.Insts[I];
    Out += formatString(
        "  0x%08x @%-4zu bci=%-3u %s %s", F.addressOf(static_cast<uint32_t>(I)),
        I, MI.Bci, MI.IsGcPoint ? "[gc]" : "    ",
        disassembleMachineInst(MI, Classes, Methods).c_str());
    if (Interest && I < Interest->size() && (*Interest)[I] != kInvalidId)
      Out += formatString("  ; misses -> %s",
                          fieldName(Classes,
                                    static_cast<int32_t>((*Interest)[I]))
                              .c_str());
    Out += "\n";
  }
  return Out;
}
