//===-- vm/Bytecode.h - The stack bytecode ISA ------------------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Java-flavoured stack bytecode: 32-bit int and reference values,
/// locals, an operand stack, field/array access, allocation, calls, and
/// structured conditionals. Workload programs are written in this bytecode
/// (via BytecodeBuilder), executed by the baseline Interpreter, and lowered
/// by the OptCompiler into the machine IR the monitoring system attributes
/// samples to.
///
/// The ISA deliberately mirrors the paper's Figure 1 example: an access
/// path expression `p.y.i` compiles to `ALoad p; GetField y; GetField i`,
/// and the interest analysis recovers the (instruction, field) pair
/// (I3, A::y) from the lowered form.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_VM_BYTECODE_H
#define HPMVM_VM_BYTECODE_H

#include "support/Types.h"

#include <string>
#include <vector>

namespace hpmvm {

/// Bytecode opcodes.
enum class Op : uint8_t {
  // Constants and locals.
  IConst,   ///< push int A
  AConstNull, ///< push null reference
  ILoad,    ///< push int local A
  IStore,   ///< pop int into local A
  ALoad,    ///< push ref local A
  AStore,   ///< pop ref into local A
  IInc,     ///< local A += B (no stack traffic)

  // Arithmetic / logic (pop 2 ints, push int; Neg pops 1).
  IAdd, ISub, IMul, IDiv, IRem, IAnd, IOr, IXor, IShl, IShr, INeg,

  // Control flow. A = CondKind for conditional forms, B = target index.
  Goto,     ///< jump to B
  IfICmp,   ///< pop int b, int a; jump to B if a <cond:A> b
  IfZ,      ///< pop int a; jump to B if a <cond:A> 0
  IfNull,   ///< pop ref; jump to B if null
  IfNonNull,///< pop ref; jump to B if non-null

  // Heap access.
  New,      ///< push new instance of class A
  NewArray, ///< pop length; push new array of class A
  GetField, ///< pop ref; push field A (int or ref per field type)
  PutField, ///< pop value, ref; store into field A
  ALoadI,   ///< pop index, arrayref; push int element (I8/I16/I32/I64 low)
  AStoreI,  ///< pop int value, index, arrayref
  ALoadR,   ///< pop index, arrayref; push ref element
  AStoreR,  ///< pop ref value, index, arrayref
  ArrayLen, ///< pop arrayref; push length

  // Globals (VM-level root slots, registered with isRef).
  GGet,     ///< push global A
  GPut,     ///< pop into global A

  // Calls and returns. A = MethodId.
  Call,     ///< pop args (right to left); push return value if non-void
  Ret,      ///< return void
  IRet,     ///< return int
  ARet,     ///< return ref

  // Misc.
  Pop,      ///< discard top of stack
  Dup,      ///< duplicate top of stack
  Rand,     ///< pop int bound; push uniform [0, bound)
};

const char *opName(Op O);

/// Comparison kinds for IfICmp / IfZ.
enum class CondKind : uint8_t { Eq, Ne, Lt, Ge, Gt, Le };

/// One bytecode instruction. A and B are operand fields whose meaning
/// depends on the opcode (see Op).
struct Insn {
  Op Opcode;
  int32_t A = 0;
  int32_t B = 0;
};

/// Return kind of a method.
enum class RetKind : uint8_t { Void, Int, Ref };

/// Static type of a stack slot / local / global.
enum class ValKind : uint8_t { Int, Ref };

/// A method: bytecode plus signature and compile-state metadata filled in
/// by the VM as it runs.
struct Method {
  /// Label for diagnostics and by-name lookup. Before the method enters a
  /// VM the pointer is owned by the producer (BytecodeBuilder keeps it
  /// alive); declareMethod/defineMethod re-intern it into the VM's label
  /// arena, so inside a VM's method table it is always arena-backed and
  /// stable for the VM's lifetime.
  const char *Name = "";
  MethodId Id = kInvalidId;
  uint32_t NumParams = 0;
  std::vector<ValKind> ParamKinds;
  RetKind Return = RetKind::Void;
  uint32_t NumLocals = 0; ///< Including parameters.
  std::vector<Insn> Code;
  /// VM-internal methods are resolvable but excluded from optimization
  /// (the paper monitors events in application classes only).
  bool IsVmInternal = false;

  // --- filled by the VM ---
  uint64_t Invocations = 0;
  uint64_t BackEdges = 0;
  Address BaselineCodeBase = 0; ///< Baseline "machine code" start address.
  uint32_t OptIndex = kInvalidId; ///< Index of compiled code, if opt-compiled.

  bool isOptCompiled() const { return OptIndex != kInvalidId; }
};

class ClassRegistry;

/// Bytecode verifier: simulates types and stack depth along all paths.
/// \returns the empty string if \p M is well-formed, else a diagnostic.
/// Checks: operand stack discipline, local/global index bounds, branch
/// targets, type agreement at merges, field/class operand validity,
/// signature conformance of calls and returns.
std::string verifyMethod(const Method &M,
                         const std::vector<Method> &AllMethods,
                         const ClassRegistry &Classes,
                         const std::vector<ValKind> &GlobalKinds);

} // namespace hpmvm

#endif // HPMVM_VM_BYTECODE_H
