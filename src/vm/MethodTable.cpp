//===-- vm/MethodTable.cpp ------------------------------------------------===//

#include "vm/MethodTable.h"

#include <algorithm>
#include <cassert>

using namespace hpmvm;

void MethodTable::add(Address Start, Address End, MethodId Method,
                      CodeFlavor Flavor) {
  assert(Start < End && "empty or inverted code range");
  MethodRange R{Start, End, Method, Flavor};
  auto It = std::lower_bound(
      Ranges.begin(), Ranges.end(), R,
      [](const MethodRange &A, const MethodRange &B) {
        return A.Start < B.Start;
      });
  assert((It == Ranges.end() || It->Start >= End) &&
         "new code range overlaps an existing one");
  assert((It == Ranges.begin() || std::prev(It)->End <= Start) &&
         "new code range overlaps an existing one");
  Ranges.insert(It, R);
}

const MethodRange *MethodTable::lookup(Address Pc) const {
  // First range with Start > Pc; the candidate is its predecessor.
  auto It = std::upper_bound(
      Ranges.begin(), Ranges.end(), Pc,
      [](Address A, const MethodRange &R) { return A < R.Start; });
  if (It == Ranges.begin())
    return nullptr;
  const MethodRange &R = *std::prev(It);
  return Pc < R.End ? &R : nullptr;
}
