//===-- vm/BytecodeBuilder.cpp --------------------------------------------===//

#include "vm/BytecodeBuilder.h"

using namespace hpmvm;

BytecodeBuilder::BytecodeBuilder(std::string Name)
    : NameStorage(std::move(Name)) {
  // The VM re-interns the label at declare/define time; until then the
  // builder keeps it alive (build() contract: builder outlives the handoff).
  M.Name = NameStorage.c_str();
}

uint32_t BytecodeBuilder::addParam(ValKind Kind) {
  assert(M.NumLocals == M.NumParams &&
         "declare all parameters before allocating locals");
  M.ParamKinds.push_back(Kind);
  ++M.NumParams;
  return M.NumLocals++;
}

uint32_t BytecodeBuilder::newLocal() { return M.NumLocals++; }

BytecodeBuilder &BytecodeBuilder::returns(RetKind Kind) {
  M.Return = Kind;
  return *this;
}

BytecodeBuilder &BytecodeBuilder::vmInternal() {
  M.IsVmInternal = true;
  return *this;
}

Label BytecodeBuilder::label() {
  LabelPos.push_back(-1);
  return Label{static_cast<uint32_t>(LabelPos.size() - 1)};
}

BytecodeBuilder &BytecodeBuilder::bind(Label L) {
  assert(L.Id < LabelPos.size() && "binding an unknown label");
  assert(LabelPos[L.Id] < 0 && "label bound twice");
  LabelPos[L.Id] = static_cast<int32_t>(M.Code.size());
  return *this;
}

BytecodeBuilder &BytecodeBuilder::emit(Op O, int32_t A, int32_t B) {
  assert(!Built && "builder reused after build()");
  M.Code.push_back(Insn{O, A, B});
  return *this;
}

BytecodeBuilder &BytecodeBuilder::emitBranch(Op O, int32_t A, Label L) {
  assert(L.Id < LabelPos.size() && "branch to an unknown label");
  Fixups.emplace_back(static_cast<uint32_t>(M.Code.size()), L.Id);
  return emit(O, A, /*B=*/-1);
}

Method BytecodeBuilder::build() {
  assert(!Built && "build() called twice");
  Built = true;
  for (auto [InsnIdx, LabelId] : Fixups) {
    assert(LabelPos[LabelId] >= 0 && "branch to an unbound label");
    M.Code[InsnIdx].B = LabelPos[LabelId];
  }
  return std::move(M);
}
