//===-- vm/VirtualMachine.cpp ---------------------------------------------===//

#include "vm/VirtualMachine.h"

#include "obs/Obs.h"
#include "support/Format.h"
#include "vm/AdaptiveOptimizationSystem.h"
#include "vm/Interpreter.h"
#include "vm/MachineExecutor.h"

#include <cstdlib>

using namespace hpmvm;

VirtualMachine::VirtualMachine(const VmConfig &Config)
    : Config(Config), Mem(Config.Mem),
      Heap(kHeapBase, alignUp(Config.HeapBytes, 64 * 1024)),
      Objects(Heap, Registry.heapClasses()), MutatorRng(Config.Seed) {
  Aos = std::make_unique<AdaptiveOptimizationSystem>(*this);
}

VirtualMachine::~VirtualMachine() = default;

MethodId VirtualMachine::declareMethod(std::string_view Name,
                                       std::vector<ValKind> Params,
                                       RetKind Ret) {
  Method M;
  M.Id = static_cast<MethodId>(Methods.size());
  M.Name = internLabel(Name, M.Id);
  M.NumParams = static_cast<uint32_t>(Params.size());
  M.ParamKinds = std::move(Params);
  M.NumLocals = M.NumParams;
  M.Return = Ret;
  Methods.push_back(std::move(M));
  return Methods.back().Id;
}

const char *VirtualMachine::internLabel(std::string_view Name, MethodId Id) {
  uint32_t Lid = Labels.intern(Name);
  if (Lid >= MethodByLabel.size())
    MethodByLabel.resize(Lid + 1, kInvalidId);
  // First declaration wins, matching the old linear findMethod scan.
  if (MethodByLabel[Lid] == kInvalidId || Id < MethodByLabel[Lid])
    MethodByLabel[Lid] = Id;
  return Labels.text(Lid);
}

void VirtualMachine::defineMethod(MethodId Id, Method M) {
  assert(Id < Methods.size() && "defining an undeclared method");
  Method &Slot = Methods[Id];
  assert(Slot.Code.empty() && "method body defined twice");
  assert(Slot.NumParams == M.NumParams && Slot.ParamKinds == M.ParamKinds &&
         Slot.Return == M.Return && "body signature disagrees with declaration");
  M.Id = Id;
  // The declared label wins; a body-only label (declared anonymously, named
  // at definition) is interned now so it is arena-backed and findable.
  M.Name = *Slot.Name ? Slot.Name : internLabel(M.Name, Id);
  Slot = std::move(M);
  Slot.Id = Id;

  std::string Diag = verifyMethod(Slot, Methods, Registry, GlobalKinds);
  if (!Diag.empty())
    trap("bytecode verification failed: " + Diag);

  // Baseline-compile: reserve simulated machine code in the immortal space
  // so every bytecode has a PC samples can resolve.
  uint32_t CodeBytes =
      static_cast<uint32_t>(Slot.Code.size()) * kBaselineBytesPerBytecode;
  Slot.BaselineCodeBase = Immortal.alloc(CodeBytes);
  CodeTable.add(Slot.BaselineCodeBase, Slot.BaselineCodeBase + CodeBytes,
                Id, CodeFlavor::Baseline);
}

MethodId VirtualMachine::addMethod(Method M) {
  MethodId Id = declareMethod(M.Name, M.ParamKinds, M.Return);
  defineMethod(Id, std::move(M));
  return Id;
}

uint32_t VirtualMachine::addGlobal(ValKind Kind) {
  GlobalKinds.push_back(Kind);
  Globals.push_back(Kind == ValKind::Ref ? Value::makeRef(kNullRef)
                                         : Value::makeInt(0));
  return static_cast<uint32_t>(Globals.size() - 1);
}

Method &VirtualMachine::method(MethodId Id) {
  assert(Id < Methods.size() && "unknown method id");
  return Methods[Id];
}

MethodId VirtualMachine::findMethod(std::string_view Name) const {
  uint32_t Lid = Labels.find(Name);
  if (Lid == StringInterner::kNoId || Lid >= MethodByLabel.size())
    return kInvalidId;
  return MethodByLabel[Lid];
}

void VirtualMachine::setCollector(GarbageCollector *C) {
  Gc = C;
  if (Gc)
    Gc->setRootProvider(this);
}

Value VirtualMachine::invoke(MethodId Id, std::vector<Value> Args) {
  Method &M = method(Id);
  assert(Args.size() == M.NumParams && "argument count mismatch");
  ++M.Invocations;
  ++Stats.Invocations;
  Clock.advance(kCallOverheadCycles);
  Aos->onInvoke(M);

  MethodId Saved = CurrentMethod;
  CurrentMethod = Id;
  Value Result = M.isOptCompiled()
                     ? MachineExecutor::run(*this, M, CompiledFns[M.OptIndex],
                                            std::move(Args))
                     : Interpreter::run(*this, M, std::move(Args));
  CurrentMethod = Saved;
  return Result;
}

void VirtualMachine::run(MethodId Main) {
  invoke(Main, {});
  safepoint(); // Final poll so tail samples are not stranded.
}

uint32_t VirtualMachine::mutatorLoad(Address A, uint32_t Size, Address Pc) {
  AccessResult R = Mem.access(A, Size, /*IsWrite=*/false, Pc);
  Clock.advance(R.Penalty);
  switch (Size) {
  case 1:
    return Heap.readByte(A);
  case 2:
    return Heap.readHalf(A);
  case 4:
  case 8: // 64-bit loads return the low word on this 32-bit machine.
    return Heap.readWord(A);
  default:
    trap(formatString("unsupported load size %u", Size));
  }
}

void VirtualMachine::mutatorStore(Address A, uint32_t Size, uint32_t V,
                                  Address Pc) {
  AccessResult R = Mem.access(A, Size, /*IsWrite=*/true, Pc);
  Clock.advance(R.Penalty);
  switch (Size) {
  case 1:
    Heap.writeByte(A, static_cast<uint8_t>(V));
    return;
  case 2:
    Heap.writeHalf(A, static_cast<uint16_t>(V));
    return;
  case 8:
    Heap.writeWord(A + 4, 0);
    [[fallthrough]];
  case 4:
    Heap.writeWord(A, V);
    return;
  default:
    trap(formatString("unsupported store size %u", Size));
  }
}

void VirtualMachine::chargeAllocation(Address Obj, uint32_t Bytes,
                                      Address Pc) {
  ++Stats.ObjectsAllocated;
  Stats.BytesAllocated += Bytes;
  Clock.advance(kAllocCycles + (Bytes / 16) * kZeroCyclesPer16Bytes);
  if (Config.CountAllocationTraffic) {
    // The zero-initializing stores touch every line of the new object.
    AccessResult R = Mem.access(Obj, Bytes, /*IsWrite=*/true, Pc);
    Clock.advance(R.Penalty);
  }
}

Address VirtualMachine::allocateObject(ClassId Cls, Address Pc) {
  uint32_t Bytes = Objects.scalarObjectBytes(Cls);
  Address Obj = collector().allocate(Cls, Bytes, 0);
  if (Obj == kNullRef)
    trap(formatString("out of memory allocating %s (%u bytes)",
                      Registry.className(Cls).c_str(), Bytes));
  chargeAllocation(Obj, Bytes, Pc);
  return Obj;
}

Address VirtualMachine::allocateArray(ClassId Cls, uint32_t Length,
                                      Address Pc) {
  uint32_t Bytes = Objects.arrayObjectBytes(Cls, Length);
  Address Obj = collector().allocate(Cls, Bytes, Length);
  if (Obj == kNullRef)
    trap(formatString("out of memory allocating %s[%u] (%u bytes)",
                      Registry.className(Cls).c_str(), Length, Bytes));
  chargeAllocation(Obj, Bytes, Pc);
  return Obj;
}

void VirtualMachine::refStore(Address Holder, Address SlotAddr,
                              Address NewVal) {
  Clock.advance(kWriteBarrierCycles);
  collector().writeBarrier(Holder, SlotAddr, NewVal);
}

void VirtualMachine::prefetchHint(Address A, Address Pc) {
  Clock.advance(Mem.softwarePrefetch(A, Pc));
}

void VirtualMachine::safepoint() {
  if (SafepointHook)
    SafepointHook();
  Aos->onSafepoint(CurrentMethod);
}

Value VirtualMachine::global(uint32_t Idx) const {
  assert(Idx < Globals.size() && "unknown global");
  return Globals[Idx];
}

void VirtualMachine::setGlobal(uint32_t Idx, Value V) {
  assert(Idx < Globals.size() && "unknown global");
  assert(V.IsRef == (GlobalKinds[Idx] == ValKind::Ref) &&
         "global kind mismatch");
  Globals[Idx] = V;
}

void VirtualMachine::attachObs(ObsContext &Obs) { Aos->attachObs(Obs); }

void VirtualMachine::trap(const std::string &Msg) {
  ++Stats.Traps;
  logError("vm", "hpmvm trap: %s", Msg.c_str());
  abort();
}

void VirtualMachine::installCompiledCode(Method &M, MachineFunction F) {
  if (M.isOptCompiled()) {
    // Recompilation abandons the old code in place (the immortal space is
    // never collected); account the stale bytes as the paper does.
    Immortal.noteStale(CompiledFns[M.OptIndex].codeBytes());
  }
  F.Method = M.Id;
  F.CodeBase = Immortal.alloc(F.codeBytes());
  CodeTable.add(F.CodeBase, F.codeLimit(), M.Id, CodeFlavor::Optimized);
  CompiledFns.push_back(std::move(F));
  M.OptIndex = static_cast<uint32_t>(CompiledFns.size() - 1);
  ++Stats.MethodsOptCompiled;
}

void VirtualMachine::forEachRoot(const std::function<void(Address &)> &Fn) {
  for (Value &G : Globals)
    if (G.IsRef && G.Bits != kNullRef)
      Fn(G.Bits);
  for (FrameRefVisitor *F : Frames)
    F->visitRefs(Fn);
}

//===----------------------------------------------------------------------===//
// Shared semantic heap operations (used by both execution engines).
//===----------------------------------------------------------------------===//

Value VirtualMachine::getFieldOp(Address Ref, FieldId Fid, Address Pc) {
  if (Ref == kNullRef)
    trap("null pointer dereference (getfield " +
         std::string(Registry.field(Fid).Name) + ")");
  const FieldInfo &FI = Registry.field(Fid);
  if (Objects.classOf(Ref) != FI.Owner)
    trap("getfield " + std::string(FI.Name) + " on an object of class " +
         Registry.className(Objects.classOf(Ref)));
  if (Config.ProfileFieldAccess) {
    if (FieldAccessCounts.size() <= Fid)
      FieldAccessCounts.resize(Registry.numFields(), 0);
    ++FieldAccessCounts[Fid];
    Clock.advance(1); // The instrumentation is not free.
  }
  uint32_t Bits = mutatorLoad(Ref + FI.Offset, 4, Pc);
  return FI.IsRef ? Value::makeRef(Bits)
                  : Value::makeInt(static_cast<int32_t>(Bits));
}

void VirtualMachine::putFieldOp(Address Ref, FieldId Fid, Value V,
                                Address Pc) {
  if (Ref == kNullRef)
    trap("null pointer dereference (putfield " +
         std::string(Registry.field(Fid).Name) + ")");
  const FieldInfo &FI = Registry.field(Fid);
  if (Objects.classOf(Ref) != FI.Owner)
    trap("putfield " + std::string(FI.Name) + " on an object of class " +
         Registry.className(Objects.classOf(Ref)));
  assert(V.IsRef == FI.IsRef && "field store kind mismatch");
  if (FI.IsRef)
    refStore(Ref, Ref + FI.Offset, V.Bits);
  mutatorStore(Ref + FI.Offset, 4, V.Bits, Pc);
}

int32_t VirtualMachine::arrayLenOp(Address Arr, Address Pc) {
  if (Arr == kNullRef)
    trap("null pointer dereference (arraylength)");
  // Object-header access: the length word lives in the header.
  uint32_t Len = mutatorLoad(Arr + objheader::kAuxOffset, 4, Pc);
  return static_cast<int32_t>(Len);
}

Value VirtualMachine::arrayLoadOp(Address Arr, int32_t Idx, bool WantRef,
                                  Address Pc) {
  if (Arr == kNullRef)
    trap("null pointer dereference (array load)");
  const HeapClassDesc &D = Objects.descOf(Arr);
  if (!D.isArray())
    trap("array load from a non-array object of class " + D.Name);
  if (WantRef != (D.ArrayElem == ElemKind::Ref))
    trap("array load element-kind mismatch on " + D.Name);
  // Bounds check reads the header's length word, then the element.
  int32_t Len = arrayLenOp(Arr, Pc);
  if (Idx < 0 || Idx >= Len)
    trap(formatString("array index %d out of bounds [0, %d)", Idx, Len));
  uint32_t ElemSize = elemKindSize(D.ArrayElem);
  Address EA = Arr + objheader::kHeaderBytes +
               static_cast<uint32_t>(Idx) * ElemSize;
  uint32_t Bits = mutatorLoad(EA, ElemSize, Pc);
  return WantRef ? Value::makeRef(Bits)
                 : Value::makeInt(static_cast<int32_t>(Bits));
}

void VirtualMachine::arrayStoreOp(Address Arr, int32_t Idx, Value V,
                                  bool IsRefStore, Address Pc) {
  if (Arr == kNullRef)
    trap("null pointer dereference (array store)");
  const HeapClassDesc &D = Objects.descOf(Arr);
  if (!D.isArray())
    trap("array store to a non-array object of class " + D.Name);
  if (IsRefStore != (D.ArrayElem == ElemKind::Ref))
    trap("array store element-kind mismatch on " + D.Name);
  int32_t Len = arrayLenOp(Arr, Pc);
  if (Idx < 0 || Idx >= Len)
    trap(formatString("array index %d out of bounds [0, %d)", Idx, Len));
  uint32_t ElemSize = elemKindSize(D.ArrayElem);
  Address EA = Arr + objheader::kHeaderBytes +
               static_cast<uint32_t>(Idx) * ElemSize;
  if (IsRefStore)
    refStore(Arr, EA, V.Bits);
  mutatorStore(EA, ElemSize, V.Bits, Pc);
}
