//===-- vm/Disassembler.h - Bytecode & machine-IR printing ----*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable listings of bytecode and compiled machine IR, with
/// symbolic class/field/method names and (for machine code) the simulated
/// addresses and per-instruction bytecode map -- the view the paper's
/// Figure 1 shows. Used by the tooling example and by tests that assert
/// on lowering structure.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_VM_DISASSEMBLER_H
#define HPMVM_VM_DISASSEMBLER_H

#include "vm/Bytecode.h"
#include "vm/MachineCode.h"

#include <string>
#include <vector>

namespace hpmvm {

class ClassRegistry;

/// Renders one bytecode instruction, e.g. "getfield dbRecord::value".
std::string disassembleInsn(const Insn &I, const ClassRegistry &Classes,
                            const std::vector<Method> &Methods);

/// Renders \p M's body, one "bci: mnemonic operands" line each.
std::string disassembleMethod(const Method &M, const ClassRegistry &Classes,
                              const std::vector<Method> &Methods);

/// Renders one machine instruction, e.g.
/// "loadfield r5 <- [r5 + dbRecord::value]".
std::string disassembleMachineInst(const MachineInst &I,
                                   const ClassRegistry &Classes,
                                   const std::vector<Method> &Methods);

/// Renders a compiled function: "addr  idx  bci  [gc]  inst" lines. When
/// \p Interest is non-null (one FieldId per instruction, from the
/// instructions-of-interest analysis), attributed instructions are
/// annotated with "; misses -> field".
std::string
disassembleMachineFunction(const MachineFunction &F,
                           const ClassRegistry &Classes,
                           const std::vector<Method> &Methods,
                           const std::vector<FieldId> *Interest = nullptr);

} // namespace hpmvm

#endif // HPMVM_VM_DISASSEMBLER_H
