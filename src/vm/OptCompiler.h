//===-- vm/OptCompiler.h - Bytecode -> machine IR compiler -----*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimizing compiler: lowers stack bytecode to the register-based
/// machine IR (locals and stack slots become virtual registers), assigns a
/// bytecode index to *every* machine instruction (the paper's extended
/// machine-code maps -- Jikes originally kept the mapping only at GC
/// points), marks GC points (allocations, calls), and runs a small
/// immediate-folding peephole so the output is visibly "optimized" relative
/// to the baseline.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_VM_OPTCOMPILER_H
#define HPMVM_VM_OPTCOMPILER_H

#include "vm/Bytecode.h"
#include "vm/MachineCode.h"

#include <vector>

namespace hpmvm {

class ClassRegistry;

/// Compiles verified bytecode to machine IR.
class OptCompiler {
public:
  /// Lowers \p M. Pre: \p M passed verifyMethod. CodeBase is left 0; the
  /// VM assigns immortal addresses when installing the code.
  static MachineFunction compile(const Method &M, const ClassRegistry &Classes,
                                 const std::vector<Method> &AllMethods,
                                 const std::vector<ValKind> &GlobalKinds);

  /// Computes the operand-stack value kinds at entry to every bytecode of
  /// \p M (empty vectors for unreachable code). Exposed for the compiler
  /// itself, tests, and the interest analysis.
  static std::vector<std::vector<ValKind>>
  stackKindsPerBci(const Method &M, const ClassRegistry &Classes,
                   const std::vector<Method> &AllMethods,
                   const std::vector<ValKind> &GlobalKinds);
};

} // namespace hpmvm

#endif // HPMVM_VM_OPTCOMPILER_H
