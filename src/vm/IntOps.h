//===-- vm/IntOps.h - Defined-overflow int32 arithmetic --------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VM's integer semantics: IAdd/ISub/IMul/INeg wrap modulo 2^32
/// (two's complement), IDiv/IRem define the INT32_MIN / -1 edge as
/// (INT32_MIN, 0) instead of trapping. Both execution engines -- the
/// interpreter and the machine-code executor -- must route their integer
/// ops through these helpers so randomized equivalence tests compare
/// defined behavior, not whatever the host compiler does with signed
/// overflow (which UBSan rightly rejects).
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_VM_INTOPS_H
#define HPMVM_VM_INTOPS_H

#include <cstdint>

namespace hpmvm {
namespace intops {

/// Signed wrap-around add: compute in uint32_t (defined), cast back.
inline int32_t add(int32_t A, int32_t B) {
  return static_cast<int32_t>(static_cast<uint32_t>(A) +
                              static_cast<uint32_t>(B));
}

inline int32_t sub(int32_t A, int32_t B) {
  return static_cast<int32_t>(static_cast<uint32_t>(A) -
                              static_cast<uint32_t>(B));
}

inline int32_t mul(int32_t A, int32_t B) {
  return static_cast<int32_t>(static_cast<uint32_t>(A) *
                              static_cast<uint32_t>(B));
}

inline int32_t neg(int32_t A) {
  return static_cast<int32_t>(0u - static_cast<uint32_t>(A));
}

/// Quotient with the lone overflowing case INT32_MIN / -1 pinned to
/// INT32_MIN (the wrapped result). Caller still traps on B == 0.
inline int32_t div(int32_t A, int32_t B) {
  if (A == INT32_MIN && B == -1)
    return INT32_MIN;
  return A / B;
}

/// Remainder matching div(): INT32_MIN % -1 is 0. Caller traps on B == 0.
inline int32_t rem(int32_t A, int32_t B) {
  if (A == INT32_MIN && B == -1)
    return 0;
  return A % B;
}

} // namespace intops
} // namespace hpmvm

#endif // HPMVM_VM_INTOPS_H
