//===-- vm/AdaptiveOptimizationSystem.h - AOS -------------------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adaptive optimization system, after Jikes' AOS: methods start
/// baseline; invocation/back-edge counters plus timer-based call-stack
/// sampling identify hot methods, which are recompiled with the optimizing
/// compiler (cost charged to the virtual clock).
///
/// The paper evaluates with a *pseudo-adaptive* configuration: "Each
/// program runs with a pre-generated compilation plan. This ensures that
/// the compiler optimizes exactly the same methods and the variations due
/// to the adaptive optimization system are minimized." applyCompilationPlan
/// implements that mode and disables online recompilation.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_VM_ADAPTIVEOPTIMIZATIONSYSTEM_H
#define HPMVM_VM_ADAPTIVEOPTIMIZATIONSYSTEM_H

#include "obs/Metrics.h"
#include "support/Types.h"
#include "vm/Bytecode.h"

#include <string>
#include <vector>

namespace hpmvm {

class ObsContext;
class TraceBuffer;
class VirtualMachine;

/// AOS policy parameters.
struct AosConfig {
  bool Enabled = true;
  uint64_t HotInvocationThreshold = 32;
  uint64_t HotBackEdgeThreshold = 2048;
  /// Period of timer-based call-stack sampling, virtual milliseconds.
  double TimerSampleMs = 10.0;
};

/// Tracks hotness and drives recompilation.
class AdaptiveOptimizationSystem {
public:
  AdaptiveOptimizationSystem(VirtualMachine &Vm, const AosConfig &Config = {});

  /// Replaces the policy; re-arms the sampling timer under the new period.
  void setConfig(const AosConfig &C);
  const AosConfig &config() const { return Config; }

  /// Called on every invocation (before dispatch); may opt-compile \p M.
  void onInvoke(Method &M);

  /// Called on every loop back-edge executed in baseline code.
  void onBackEdge(Method &M);

  /// Called from VM safepoints; performs timer-based sampling of the
  /// currently executing method (top of stack), as Jikes does to estimate
  /// method execution frequency.
  void onSafepoint(MethodId Current);

  /// Pseudo-adaptive mode: opt-compiles exactly the named methods now and
  /// disables adaptive recompilation.
  void applyCompilationPlan(const std::vector<std::string> &MethodNames);

  /// Opt-compiles \p M immediately (idempotent).
  void compileNow(Method &M);

  /// HPM-feedback hook: an external profiler (the sample pipeline's
  /// frequency consumer) observed \p Id as sample-hot. Recompiles the
  /// method right away when adaptive recompilation is enabled; under the
  /// pseudo-adaptive configuration the report is counted but ignored, so
  /// the paper's fixed compilation plan stays fixed.
  void noteHpmHotMethod(MethodId Id);
  uint64_t hpmHotReports() const { return HpmHotReports; }

  /// Registers AOS metrics (recompilations, compile cycles, timer samples)
  /// and emits a trace instant per opt-compilation.
  void attachObs(ObsContext &Obs);

  uint64_t timerSamples() const { return TimerSamples; }
  uint64_t timerSamplesOf(MethodId Id) const;

private:
  bool shouldCompile(const Method &M) const;

  VirtualMachine &Vm;
  AosConfig Config;
  Cycles NextTimerSampleAt = 0;
  uint64_t TimerSamples = 0;
  uint64_t HpmHotReports = 0;
  std::vector<uint64_t> SamplesPerMethod;
  TraceBuffer *Trace = nullptr;
  Counter *MRecompilations = &Counter::sink();
  Counter *MCompileCycles = &Counter::sink();
  Counter *MTimerSamples = &Counter::sink();
  Counter *MHpmHotReports = &Counter::sink();
  Counter *MHpmRecompilations = &Counter::sink();
};

} // namespace hpmvm

#endif // HPMVM_VM_ADAPTIVEOPTIMIZATIONSYSTEM_H
