//===-- vm/MethodTable.h - Sorted code-address lookup ----------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "For this lookup we keep a sorted table of all methods with their start
/// and end address. Whenever a method is compiled the first time or
/// recompiled by the optimizing compiler we update its entry accordingly."
/// Samples resolve PC -> (method, code flavor) through this table; entries
/// never move because compiled code lives in the immortal space.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_VM_METHODTABLE_H
#define HPMVM_VM_METHODTABLE_H

#include "support/Types.h"

#include <vector>

namespace hpmvm {

/// Which compiler produced a code range.
enum class CodeFlavor : uint8_t { Baseline, Optimized };

/// One code range.
struct MethodRange {
  Address Start = 0;
  Address End = 0; ///< Exclusive.
  MethodId Method = kInvalidId;
  CodeFlavor Flavor = CodeFlavor::Baseline;
};

/// Sorted, non-overlapping table of compiled code ranges.
class MethodTable {
public:
  /// Registers [Start, End) for \p Method. Ranges must not overlap live
  /// entries. A recompiled method's stale range stays resolvable (old code
  /// can still be on a simulated stack) unless explicitly removed.
  void add(Address Start, Address End, MethodId Method, CodeFlavor Flavor);

  /// \returns the entry containing \p Pc, or nullptr.
  const MethodRange *lookup(Address Pc) const;

  size_t size() const { return Ranges.size(); }

  /// The full table, sorted by Start. The sample resolver mirrors this
  /// into its flat code-range index; the size() delta tells it when to
  /// rebuild.
  const std::vector<MethodRange> &ranges() const { return Ranges; }

private:
  std::vector<MethodRange> Ranges; ///< Sorted by Start.
};

} // namespace hpmvm

#endif // HPMVM_VM_METHODTABLE_H
