//===-- heap/ImmortalSpace.h - Non-collected code/meta space ---*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The immortal object space. The paper: "For simplicity, code for compiled
/// methods is allocated in the immortal object space of the VM which is not
/// garbage-collected. This way the copying GC does not move compiled code
/// which would require an update of the lookup table after every GC run."
/// The space also records stale bytes left behind by re-compiled methods,
/// which the paper argues stay small because only a small fraction of
/// methods are recompiled.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_HEAP_IMMORTALSPACE_H
#define HPMVM_HEAP_IMMORTALSPACE_H

#include "heap/AddressSpace.h"
#include "support/Types.h"

#include <cassert>

namespace hpmvm {

/// Monotonic allocator for compiled code and VM meta-data addresses.
class ImmortalSpace {
public:
  ImmortalSpace(Address Base = kImmortalBase, Address Limit = kImmortalLimit)
      : Base(Base), Limit(Limit), Cursor(Base) {}

  /// Reserves \p Bytes (16-byte aligned, like a code allocator).
  /// \returns the base address; asserts on exhaustion (the immortal space
  /// is sized generously -- running out is a configuration bug).
  Address alloc(uint32_t Bytes) {
    uint32_t Aligned = alignUp(Bytes, 16);
    assert(Limit - Cursor >= Aligned && "immortal space exhausted");
    Address Result = Cursor;
    Cursor += Aligned;
    BytesAllocated += Aligned;
    return Result;
  }

  /// Records that \p Bytes previously allocated became stale (a method was
  /// recompiled and its old code abandoned in place).
  void noteStale(uint32_t Bytes) { StaleBytes += Bytes; }

  uint64_t bytesAllocated() const { return BytesAllocated; }
  uint64_t staleBytes() const { return StaleBytes; }
  bool contains(Address A) const { return A >= Base && A < Cursor; }

private:
  Address Base;
  Address Limit;
  Address Cursor;
  uint64_t BytesAllocated = 0;
  uint64_t StaleBytes = 0;
};

} // namespace hpmvm

#endif // HPMVM_HEAP_IMMORTALSPACE_H
