//===-- heap/BlockedBumpAllocator.cpp -------------------------------------===//

#include "heap/BlockedBumpAllocator.h"

#include <cassert>

using namespace hpmvm;

Address BlockedBumpAllocator::alloc(uint32_t Bytes) {
  assert(isAligned(Bytes, kObjectAlign) && "unaligned allocation size");
  assert(Bytes <= kBlockBytes && "oversized request belongs in the LOS");
  if (BumpLimit - BumpCursor < Bytes || Blocks.empty()) {
    // Seal the current block's fill line and chain a new block.
    if (!Blocks.empty())
      Fills.back() = BumpCursor - Blocks.back();
    if (blocksOwned() >= Budget)
      return kNullRef;
    Address NewBlock = Pool.allocBlock(Space);
    if (NewBlock == kNullRef)
      return kNullRef;
    Blocks.push_back(NewBlock);
    Fills.push_back(0);
    BumpCursor = NewBlock;
    BumpLimit = NewBlock + kBlockBytes;
  }
  Address Result = BumpCursor;
  BumpCursor += Bytes;
  Fills.back() = BumpCursor - Blocks.back();
  return Result;
}

void BlockedBumpAllocator::releaseAll() {
  for (Address B : Blocks)
    Pool.freeBlock(B);
  Blocks.clear();
  Fills.clear();
  BumpCursor = 0;
  BumpLimit = 0;
}

uint32_t BlockedBumpAllocator::usedBytes() const {
  uint32_t Sum = 0;
  for (uint32_t F : Fills)
    Sum += F;
  return Sum;
}

uint32_t BlockedBumpAllocator::headroomBytes() const {
  uint32_t OwnedHeadroom = BumpLimit - BumpCursor;
  uint32_t UnownedBlocks =
      Budget > blocksOwned() ? Budget - blocksOwned() : 0;
  uint32_t PoolBlocks = Pool.freeBlocks();
  if (UnownedBlocks > PoolBlocks)
    UnownedBlocks = PoolBlocks;
  return OwnedHeadroom + UnownedBlocks * kBlockBytes;
}

bool BlockedBumpAllocator::containsAllocated(Address A) const {
  for (size_t I = 0; I != Blocks.size(); ++I)
    if (A >= Blocks[I] && A < Blocks[I] + Fills[I])
      return true;
  return false;
}
