//===-- heap/FreeListAllocator.h - Segregated free list --------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mature space's segregated free-list allocator: "Tenured objects are
/// managed using a free-list allocator that allocates objects into 40
/// different size classes up to 4 KBytes to minimize heap fragmentation."
/// Each 64 KB pool block is dedicated to one size class and carved into
/// equal cells; cell occupancy is tracked per block so mark-and-sweep can
/// return dead cells (and wholly-empty blocks) to the free lists.
///
/// This structure is what makes co-allocation profitable: *without*
/// co-allocation a parent and child of different sizes land in different
/// size classes, hence in different blocks, hence on different cache lines
/// and often different pages. Co-allocation requests one cell sized for
/// both objects, so the pair is contiguous.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_HEAP_FREELISTALLOCATOR_H
#define HPMVM_HEAP_FREELISTALLOCATOR_H

#include "heap/BlockPool.h"
#include "heap/SizeClasses.h"
#include "support/Types.h"

#include <cassert>
#include <functional>
#include <unordered_map>
#include <vector>

namespace hpmvm {

/// Usage statistics of the free-list space.
struct FreeListStats {
  uint64_t CellsAllocated = 0;   ///< Lifetime allocations.
  uint64_t BytesRequested = 0;   ///< Lifetime requested bytes.
  uint64_t BytesWasted = 0;      ///< Lifetime internal fragmentation.
  uint32_t CellsInUse = 0;
  uint32_t CellBytesInUse = 0;   ///< Cells in use, at cell granularity.
};

/// Segregated-fit allocator over pool blocks.
class FreeListAllocator {
public:
  explicit FreeListAllocator(BlockPool &Pool) : Pool(Pool) {}

  /// Allocates a cell for a request of \p Bytes.
  /// \returns the cell address, or 0 when the pool is exhausted (caller
  /// triggers a full collection). Pre: Bytes <= kMaxFreeListBytes.
  Address alloc(uint32_t Bytes);

  /// Sweeps the space: every in-use cell is passed to \p IsLive; dead cells
  /// return to their free list and blocks with no survivors return to the
  /// pool. \returns the number of cells freed.
  uint32_t sweep(const std::function<bool(Address)> &IsLive);

  /// Invokes \p Fn for every in-use cell (heap walkers, verifiers).
  void forEachCell(const std::function<void(Address)> &Fn) const;

  /// \returns the cell size of the block containing \p Cell. Pre: \p Cell
  /// is in a free-list block.
  uint32_t cellSizeAt(Address Cell) const;

  /// \returns true if \p A points at the base of an in-use cell.
  bool isInUseCell(Address A) const;

  const FreeListStats &stats() const { return Stats; }
  uint32_t blocksOwned() const { return static_cast<uint32_t>(Meta.size()); }
  /// Bytes owned by the space, at block granularity (the quantity heap
  /// sizing decisions use).
  uint32_t footprintBytes() const { return blocksOwned() * kBlockBytes; }

private:
  struct BlockMeta {
    uint32_t SizeClass = 0;
    uint32_t CellBytes = 0;
    uint32_t NumCells = 0;
    uint32_t UsedCount = 0;
    std::vector<bool> Used;
    std::vector<uint16_t> FreeStack; ///< Indices of free cells.
  };

  /// Claims a new block for \p Cls and threads its cells.
  BlockMeta *addBlock(uint32_t Cls);

  BlockPool &Pool;
  std::unordered_map<Address, BlockMeta> Meta;
  /// Blocks with at least one free cell, per size class (stack; stale
  /// entries are pruned lazily).
  std::vector<Address> Partial[kNumSizeClasses];
  FreeListStats Stats;
};

} // namespace hpmvm

#endif // HPMVM_HEAP_FREELISTALLOCATOR_H
