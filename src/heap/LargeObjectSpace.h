//===-- heap/LargeObjectSpace.h - Non-moving large objects -----*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "Larger objects are handled in a separate portion of the heap": objects
/// exceeding the 4 KB free-list ceiling live here, in contiguous runs of
/// pool blocks, never moved. Workloads dominated by large objects
/// (compress, mpegaudio) have no co-allocation candidates precisely because
/// their data lives in this space -- the paper calls this out in Figure 3.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_HEAP_LARGEOBJECTSPACE_H
#define HPMVM_HEAP_LARGEOBJECTSPACE_H

#include "heap/BlockPool.h"
#include "support/Types.h"

#include <functional>
#include <map>

namespace hpmvm {

/// Tracks large objects as block runs.
class LargeObjectSpace {
public:
  explicit LargeObjectSpace(BlockPool &Pool) : Pool(Pool) {}

  /// Allocates \p Bytes (rounded up to whole blocks); \returns 0 on
  /// exhaustion.
  Address alloc(uint32_t Bytes);

  /// Frees every object for which \p IsLive returns false.
  /// \returns the number of objects freed.
  uint32_t sweep(const std::function<bool(Address)> &IsLive);

  /// Invokes \p Fn for every live large object's base address.
  void forEachObject(const std::function<void(Address)> &Fn) const;

  /// \returns true if \p A is the base of a live large object.
  bool isObjectBase(Address A) const { return Runs.count(A) != 0; }

  uint32_t objectCount() const { return static_cast<uint32_t>(Runs.size()); }
  uint32_t footprintBytes() const { return BlocksOwned * kBlockBytes; }
  uint64_t bytesRequested() const { return BytesRequested; }

private:
  BlockPool &Pool;
  std::map<Address, uint32_t> Runs; ///< base -> run length in blocks.
  uint32_t BlocksOwned = 0;
  uint64_t BytesRequested = 0;
};

} // namespace hpmvm

#endif // HPMVM_HEAP_LARGEOBJECTSPACE_H
