//===-- heap/ImmortalSpace.cpp --------------------------------------------===//
//
// ImmortalSpace is header-only; anchor TU.
//
//===----------------------------------------------------------------------===//

#include "heap/ImmortalSpace.h"
