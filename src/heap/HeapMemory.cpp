//===-- heap/HeapMemory.cpp -----------------------------------------------===//
//
// HeapMemory is header-only; this anchor keeps one TU per header in the
// heap library.
//
//===----------------------------------------------------------------------===//

#include "heap/HeapMemory.h"
