//===-- heap/GcApi.h - Collector interface seen by the VM ------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface between the VM/mutator and a garbage collector plan, plus
/// the hooks the HPM-feedback system uses to steer the GC:
///
///   - RootProvider: the VM enumerates root slots (globals + active
///     frames); collectors update them in place when objects move.
///   - PlacementAdvisor: the paper's contribution surface. GenMS consults
///     it while promoting a nursery object to decide which child (if any)
///     to co-allocate, and reports the pairs it placed. The Figure 8
///     experiment injects a deliberate gap through gapBytes().
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_HEAP_GCAPI_H
#define HPMVM_HEAP_GCAPI_H

#include "heap/BlockPool.h"
#include "support/Types.h"

#include <functional>

namespace hpmvm {

class ObsContext;

/// Enumerates the mutator's root slots. Collectors may rewrite each slot.
class RootProvider {
public:
  virtual ~RootProvider() = default;

  /// Invokes \p Fn once per root slot; the collector may update the slot
  /// through the reference.
  virtual void forEachRoot(const std::function<void(Address &)> &Fn) = 0;
};

/// What the advisor tells the GC about one class's hottest reference field.
struct CoallocationHint {
  /// Byte offset of the reference slot within the parent object.
  uint32_t SlotOffset = 0;
  /// The global field id (for attribution/statistics); kInvalidId when the
  /// class has no co-allocation candidate.
  FieldId Field = kInvalidId;

  bool valid() const { return Field != kInvalidId; }
};

/// Guides object placement during promotion (implemented by the HPM
/// feedback system in src/core; a null advisor means plain promotion).
class PlacementAdvisor {
public:
  virtual ~PlacementAdvisor() = default;

  /// \returns the reference field of \p Cls whose referent should be
  /// co-allocated directly after a promoted instance of \p Cls, or an
  /// invalid hint for plain promotion. (The VM keeps, per class type, the
  /// reference fields sorted by number of associated cache misses; this
  /// returns the hottest one above threshold.)
  virtual CoallocationHint coallocationHint(ClassId Cls) = 0;

  /// Padding inserted between the parent and the co-allocated child. Always
  /// 0 in normal operation; the Figure 8 experiment forces one cache line
  /// (128 bytes) to create a deliberately bad placement.
  virtual uint32_t gapBytes() { return 0; }

  /// Notification that a (parent class, field) pair was just co-allocated.
  virtual void noteCoallocation(ClassId Cls, FieldId Field) {
    (void)Cls;
    (void)Field;
  }
};

/// Collector statistics.
struct GcStats {
  uint64_t MinorCollections = 0;
  uint64_t MajorCollections = 0;
  Cycles GcCycles = 0;
  uint64_t ObjectsPromoted = 0;
  uint64_t BytesPromoted = 0;
  uint64_t BytesCopied = 0;
  uint64_t ObjectsCoallocated = 0;  ///< Co-allocated pairs placed.
  uint64_t CoallocGapBytes = 0;     ///< Padding bytes inserted (Fig. 8).
  uint64_t NurseryCollDuringFull = 0;
};

/// A garbage collector plan (GenMS or GenCopy).
class GarbageCollector {
public:
  virtual ~GarbageCollector() = default;

  /// Allocates an object of \p TotalBytes for class \p Cls (header
  /// included, 8-byte aligned; \p ArrayLen is the element count for
  /// arrays). Collects as needed; initializes the object header.
  /// \returns 0 only on genuine out-of-memory.
  virtual Address allocate(ClassId Cls, uint32_t TotalBytes,
                           uint32_t ArrayLen) = 0;

  /// Generational write barrier: the mutator stored \p NewValue into the
  /// reference slot at \p SlotAddr of object \p Holder.
  virtual void writeBarrier(Address Holder, Address SlotAddr,
                            Address NewValue) = 0;

  /// Forces a full-heap collection.
  virtual void collectFull() = 0;

  virtual void setRootProvider(RootProvider *P) = 0;
  virtual void setPlacementAdvisor(PlacementAdvisor *A) = 0;

  /// Disables/enables collection (held around the native sample-copy
  /// window). Allocation that would need a GC while disabled is a bug and
  /// asserts.
  virtual void setGcAllowed(bool Allowed) = 0;

  virtual const GcStats &stats() const = 0;
  virtual const char *name() const = 0;

  /// \returns which space the heap address \p A currently belongs to
  /// (SpaceId::Free for non-heap addresses). Diagnostics only.
  virtual SpaceId spaceOf(Address A) const = 0;

  /// Post-GC callback hook (the monitor uses it to timestamp collections
  /// in the miss-rate timelines). Argument: true for full collections.
  virtual void setGcNotify(std::function<void(bool)> Fn) = 0;

  /// Wires pause metrics and trace events into \p Obs (no-op for
  /// collectors that are not instrumented).
  virtual void attachObs(ObsContext &Obs) { (void)Obs; }
};

} // namespace hpmvm

#endif // HPMVM_HEAP_GCAPI_H
