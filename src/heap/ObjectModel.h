//===-- heap/ObjectModel.h - Object layout & class descriptors -*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated Java-like object model shared by the VM and the garbage
/// collectors.
///
/// Object layout (all offsets in bytes):
///   +0  ClassId   (forwarding address once kForwarded is set)
///   +4  SizeBytes (total, header included, 8-byte aligned)
///   +8  Flags     (GC mark, forwarded, logged-in-remset, coallocated)
///   +12 AuxWord   (array length for arrays; scratch otherwise)
///   +16 fields / array elements
///
/// HeapClassTable holds the GC-relevant part of a class: instance size,
/// which offsets hold references, and array element kind. The VM's richer
/// ClassRegistry (field names etc.) layers on top of it.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_HEAP_OBJECTMODEL_H
#define HPMVM_HEAP_OBJECTMODEL_H

#include "heap/HeapMemory.h"
#include "support/Types.h"

#include <string>
#include <vector>

namespace hpmvm {

/// Array element kinds (Java-ish primitive widths).
enum class ElemKind : uint8_t {
  None, ///< Not an array class.
  Ref,  ///< Object references (4 bytes).
  I32,  ///< ints (4 bytes).
  I16,  ///< chars/shorts (2 bytes).
  I8,   ///< bytes/booleans (1 byte).
  I64,  ///< longs (8 bytes) -- pseudojbb's long[] payloads exceed a line.
};

/// \returns the element width in bytes; 0 for ElemKind::None.
uint32_t elemKindSize(ElemKind Kind);

/// GC-level description of one class.
struct HeapClassDesc {
  std::string Name;
  /// Total instance size (header included) for scalar classes; 0 for arrays
  /// (whose size depends on length).
  uint32_t InstanceBytes = 0;
  /// Byte offsets (from object start) of reference-typed fields.
  std::vector<uint32_t> RefOffsets;
  ElemKind ArrayElem = ElemKind::None;

  bool isArray() const { return ArrayElem != ElemKind::None; }
};

/// Registry of HeapClassDescs, indexed by ClassId.
class HeapClassTable {
public:
  /// Registers a scalar class with \p NumFields 4-byte fields of which the
  /// offsets in \p RefOffsets are references. \returns its ClassId.
  ClassId addScalarClass(std::string Name, uint32_t NumFields,
                         std::vector<uint32_t> RefOffsets);

  /// Registers an array class with the given element kind.
  ClassId addArrayClass(std::string Name, ElemKind Elem);

  const HeapClassDesc &desc(ClassId Id) const {
    assert(Id < Descs.size() && "unknown class id");
    return Descs[Id];
  }

  size_t size() const { return Descs.size(); }

private:
  std::vector<HeapClassDesc> Descs;
};

/// Object header field offsets and flag bits.
namespace objheader {
inline constexpr uint32_t kClassOffset = 0;
inline constexpr uint32_t kSizeOffset = 4;
inline constexpr uint32_t kFlagsOffset = 8;
inline constexpr uint32_t kAuxOffset = 12;
inline constexpr uint32_t kHeaderBytes = 16;

inline constexpr uint32_t kMarkBit = 1u << 0;
inline constexpr uint32_t kForwardedBit = 1u << 1;
inline constexpr uint32_t kLoggedBit = 1u << 2;    ///< In the remembered set.
inline constexpr uint32_t kCoallocBit = 1u << 3;   ///< Placed by co-allocation.
} // namespace objheader

/// Typed accessors over raw heap bytes. Owned by the VM; shared by
/// interpreter, machine executor and collectors.
class ObjectModel {
public:
  ObjectModel(HeapMemory &Mem, const HeapClassTable &Classes)
      : Mem(Mem), Classes(Classes) {}

  /// \returns the total allocation size for an instance of scalar class
  /// \p Id (8-byte aligned).
  uint32_t scalarObjectBytes(ClassId Id) const;

  /// \returns the total allocation size for an array of class \p Id with
  /// \p Length elements (8-byte aligned).
  uint32_t arrayObjectBytes(ClassId Id, uint32_t Length) const;

  /// Writes a fresh header at \p Obj and zero-fills the body.
  void initObject(Address Obj, ClassId Id, uint32_t TotalBytes,
                  uint32_t ArrayLength);

  ClassId classOf(Address Obj) const {
    return Mem.readWord(Obj + objheader::kClassOffset);
  }
  uint32_t sizeOf(Address Obj) const {
    return Mem.readWord(Obj + objheader::kSizeOffset);
  }
  uint32_t flagsOf(Address Obj) const {
    return Mem.readWord(Obj + objheader::kFlagsOffset);
  }
  void setFlags(Address Obj, uint32_t Flags) {
    Mem.writeWord(Obj + objheader::kFlagsOffset, Flags);
  }
  bool testFlag(Address Obj, uint32_t Bit) const {
    return (flagsOf(Obj) & Bit) != 0;
  }
  void orFlag(Address Obj, uint32_t Bit) { setFlags(Obj, flagsOf(Obj) | Bit); }
  void clearFlag(Address Obj, uint32_t Bit) {
    setFlags(Obj, flagsOf(Obj) & ~Bit);
  }

  uint32_t arrayLength(Address Obj) const {
    return Mem.readWord(Obj + objheader::kAuxOffset);
  }

  /// Marks \p Obj as forwarded to \p NewAddr (copying/ promoting GC).
  void forwardTo(Address Obj, Address NewAddr) {
    orFlag(Obj, objheader::kForwardedBit);
    Mem.writeWord(Obj + objheader::kClassOffset, NewAddr);
  }
  bool isForwarded(Address Obj) const {
    return testFlag(Obj, objheader::kForwardedBit);
  }
  Address forwardingAddress(Address Obj) const {
    assert(isForwarded(Obj) && "object is not forwarded");
    return Mem.readWord(Obj + objheader::kClassOffset);
  }

  /// \returns the address of the 4-byte field at byte offset \p Offset.
  Address fieldAddress(Address Obj, uint32_t Offset) const {
    return Obj + Offset;
  }

  /// \returns the address of array element \p Index.
  Address elementAddress(Address Obj, uint32_t Index) const;

  const HeapClassDesc &descOf(Address Obj) const {
    return Classes.desc(classOf(Obj));
  }

  /// Invokes \p Fn for the address of every reference slot in \p Obj
  /// (fields of scalar objects, all elements of reference arrays).
  template <typename Fn> void forEachRefSlot(Address Obj, Fn &&Callback) const {
    const HeapClassDesc &D = descOf(Obj);
    if (D.ArrayElem == ElemKind::Ref) {
      uint32_t Len = arrayLength(Obj);
      for (uint32_t I = 0; I != Len; ++I)
        Callback(Obj + objheader::kHeaderBytes + I * 4);
      return;
    }
    for (uint32_t Off : D.RefOffsets)
      Callback(Obj + Off);
  }

  HeapMemory &memory() { return Mem; }
  const HeapMemory &memory() const { return Mem; }
  const HeapClassTable &classes() const { return Classes; }

private:
  HeapMemory &Mem;
  const HeapClassTable &Classes;
};

} // namespace hpmvm

#endif // HPMVM_HEAP_OBJECTMODEL_H
