//===-- heap/BlockPool.cpp ------------------------------------------------===//

#include "heap/BlockPool.h"

using namespace hpmvm;

BlockPool::BlockPool(Address Base, uint32_t SizeBytes) : Base(Base) {
  assert(isAligned(SizeBytes, kBlockBytes) && "pool size not block-aligned");
  assert(isAligned(Base, kBlockBytes) && "pool base not block-aligned");
  Owners.assign(SizeBytes / kBlockBytes, SpaceId::Free);
  FreeCount = static_cast<uint32_t>(Owners.size());
}

Address BlockPool::allocBlock(SpaceId Owner) {
  assert(Owner != SpaceId::Free && "cannot allocate to the free space");
  if (FreeCount == 0)
    return kNullRef;
  uint32_t N = totalBlocks();
  for (uint32_t Step = 0; Step != N; ++Step) {
    uint32_t I = (NextSearchHint + Step) % N;
    if (Owners[I] == SpaceId::Free) {
      Owners[I] = Owner;
      --FreeCount;
      NextSearchHint = I + 1;
      return Base + I * kBlockBytes;
    }
  }
  return kNullRef; // Unreachable while FreeCount is accurate.
}

Address BlockPool::allocRun(uint32_t N, SpaceId Owner) {
  assert(N != 0 && "zero-length run");
  assert(Owner != SpaceId::Free && "cannot allocate to the free space");
  if (FreeCount < N)
    return kNullRef;
  uint32_t Total = totalBlocks();
  uint32_t RunLen = 0;
  for (uint32_t I = 0; I != Total; ++I) {
    if (Owners[I] == SpaceId::Free) {
      if (++RunLen == N) {
        uint32_t First = I + 1 - N;
        for (uint32_t J = First; J <= I; ++J)
          Owners[J] = Owner;
        FreeCount -= N;
        return Base + First * kBlockBytes;
      }
    } else {
      RunLen = 0;
    }
  }
  return kNullRef;
}

void BlockPool::freeBlock(Address A) {
  uint32_t I = blockIndex(A);
  assert(Owners[I] != SpaceId::Free && "double free of a heap block");
  Owners[I] = SpaceId::Free;
  ++FreeCount;
  if (I < NextSearchHint)
    NextSearchHint = I;
}

void BlockPool::freeRun(Address RunBase, uint32_t N) {
  assert(isAligned(RunBase - Base, kBlockBytes) && "run base not aligned");
  for (uint32_t J = 0; J != N; ++J)
    freeBlock(RunBase + J * kBlockBytes);
}

SpaceId BlockPool::ownerOf(Address A) const {
  if (!contains(A))
    return SpaceId::Free;
  return Owners[(A - Base) / kBlockBytes];
}

uint32_t BlockPool::blocksOwnedBy(SpaceId S) const {
  uint32_t Count = 0;
  for (SpaceId O : Owners)
    if (O == S)
      ++Count;
  return Count;
}
