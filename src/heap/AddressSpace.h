//===-- heap/AddressSpace.h - Simulated address-space layout ---*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed layout of the simulated 32-bit address space. The split matters to
/// the monitoring system: the collector thread drops samples whose PC lies
/// outside the VM's code space (kernel, native libraries), and compiled
/// method code lives in the immortal space so the copying GC never moves it
/// and the sorted method lookup table stays valid (paper section 4.2).
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_HEAP_ADDRESSSPACE_H
#define HPMVM_HEAP_ADDRESSSPACE_H

#include "support/Types.h"

namespace hpmvm {

/// Addresses below this are "kernel or native library" territory; samples
/// landing there are dropped immediately by the collector.
inline constexpr Address kNativeLimit = 0x08000000;

/// The VM boot image (VM-internal code). Samples here are resolvable but
/// excluded from optimization (the paper monitors application classes only).
inline constexpr Address kBootImageBase = 0x08000000;
inline constexpr Address kBootImageLimit = 0x10000000;

/// Immortal space: JIT-compiled machine code and VM meta objects. Never
/// garbage-collected, never moved.
inline constexpr Address kImmortalBase = 0x20000000;
inline constexpr Address kImmortalLimit = 0x30000000;

/// The garbage-collected heap (nursery + mature + large object space).
inline constexpr Address kHeapBase = 0x40000000;
inline constexpr Address kHeapMaxLimit = 0x80000000;

/// \returns true if \p A is inside JIT-compiled (immortal) code.
constexpr bool isInCompiledCode(Address A) {
  return A >= kImmortalBase && A < kImmortalLimit;
}

/// \returns true if \p A is inside the garbage-collected heap.
constexpr bool isInHeapRange(Address A) {
  return A >= kHeapBase && A < kHeapMaxLimit;
}

} // namespace hpmvm

#endif // HPMVM_HEAP_ADDRESSSPACE_H
