//===-- heap/BumpAllocator.cpp --------------------------------------------===//
//
// BumpAllocator is header-only; anchor TU.
//
//===----------------------------------------------------------------------===//

#include "heap/BumpAllocator.h"
