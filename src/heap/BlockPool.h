//===-- heap/BlockPool.h - Block-grained heap partitioning -----*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The garbage-collected heap is partitioned into 64 KB blocks handed out
/// by a single pool (the MMTk approach). Every space -- nursery, mature
/// free-list, copying semispaces, large object space -- owns a set of
/// blocks, which makes the Appel-style *variable-size nursery* natural: the
/// nursery is simply allowed to take whatever block budget remains after
/// the mature space's holdings. ownerOf() gives O(1) space membership for
/// any heap address, which the write barrier and tracing loops rely on.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_HEAP_BLOCKPOOL_H
#define HPMVM_HEAP_BLOCKPOOL_H

#include "support/Types.h"

#include <cassert>
#include <vector>

namespace hpmvm {

/// Identity of the space owning a block.
enum class SpaceId : uint8_t {
  Free,      ///< In the pool, unowned.
  Nursery,   ///< Young generation (bump allocation).
  Mature,    ///< GenMS mature space (free-list blocks).
  FromSpace, ///< GenCopy semispace (old copy).
  ToSpace,   ///< GenCopy semispace (new copy).
  Los,       ///< Large object space (contiguous runs).
};

inline const char *spaceName(SpaceId S) {
  switch (S) {
  case SpaceId::Free:
    return "free";
  case SpaceId::Nursery:
    return "nursery";
  case SpaceId::Mature:
    return "mature";
  case SpaceId::FromSpace:
    return "from-space";
  case SpaceId::ToSpace:
    return "to-space";
  case SpaceId::Los:
    return "los";
  }
  return "?";
}

/// Fixed block granularity of the heap.
inline constexpr uint32_t kBlockBytes = 64 * 1024;

/// Allocates and tracks ownership of heap blocks.
class BlockPool {
public:
  /// Manages [Base, Base+SizeBytes); SizeBytes must be block-aligned.
  BlockPool(Address Base, uint32_t SizeBytes);

  /// Claims one free block for \p Owner; \returns its base or kNullRef.
  Address allocBlock(SpaceId Owner);

  /// Claims \p N contiguous free blocks (first fit, low addresses first).
  /// \returns the base of the run or kNullRef.
  Address allocRun(uint32_t N, SpaceId Owner);

  /// Returns the block containing \p A to the pool.
  void freeBlock(Address A);

  /// Returns the \p N-block run starting at \p RunBase to the pool.
  void freeRun(Address RunBase, uint32_t N);

  /// \returns the owner of the block containing \p A (Free if \p A is
  /// outside the pool's range).
  SpaceId ownerOf(Address A) const;

  /// \returns the base address of the block containing \p A.
  Address blockBase(Address A) const {
    return Base + (blockIndex(A) * kBlockBytes);
  }

  uint32_t totalBlocks() const { return static_cast<uint32_t>(Owners.size()); }
  uint32_t freeBlocks() const { return FreeCount; }
  uint32_t usedBlocks() const { return totalBlocks() - FreeCount; }
  uint32_t blocksOwnedBy(SpaceId S) const;

  Address base() const { return Base; }
  Address limit() const { return Base + totalBlocks() * kBlockBytes; }
  bool contains(Address A) const { return A >= Base && A < limit(); }

  /// Invokes \p Fn with the base address of every block owned by \p S.
  template <typename Fn> void forEachBlock(SpaceId S, Fn &&Callback) const {
    for (uint32_t I = 0; I != Owners.size(); ++I)
      if (Owners[I] == S)
        Callback(Base + I * kBlockBytes);
  }

private:
  uint32_t blockIndex(Address A) const {
    assert(contains(A) && "address outside the block pool");
    return (A - Base) / kBlockBytes;
  }

  Address Base;
  std::vector<SpaceId> Owners;
  uint32_t FreeCount;
  uint32_t NextSearchHint = 0;
};

} // namespace hpmvm

#endif // HPMVM_HEAP_BLOCKPOOL_H
