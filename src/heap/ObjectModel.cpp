//===-- heap/ObjectModel.cpp ----------------------------------------------===//

#include "heap/ObjectModel.h"

#include <cassert>

using namespace hpmvm;

uint32_t hpmvm::elemKindSize(ElemKind Kind) {
  switch (Kind) {
  case ElemKind::None:
    return 0;
  case ElemKind::Ref:
  case ElemKind::I32:
    return 4;
  case ElemKind::I16:
    return 2;
  case ElemKind::I8:
    return 1;
  case ElemKind::I64:
    return 8;
  }
  return 0;
}

ClassId HeapClassTable::addScalarClass(std::string Name, uint32_t NumFields,
                                       std::vector<uint32_t> RefOffsets) {
  HeapClassDesc D;
  D.Name = std::move(Name);
  D.InstanceBytes =
      alignUp(objheader::kHeaderBytes + NumFields * 4, kObjectAlign);
  D.RefOffsets = std::move(RefOffsets);
  for ([[maybe_unused]] uint32_t Off : D.RefOffsets) {
    assert(Off >= objheader::kHeaderBytes && Off < D.InstanceBytes &&
           "reference offset outside the object body");
    assert(isAligned(Off, 4) && "unaligned reference field");
  }
  Descs.push_back(std::move(D));
  return static_cast<ClassId>(Descs.size() - 1);
}

ClassId HeapClassTable::addArrayClass(std::string Name, ElemKind Elem) {
  assert(Elem != ElemKind::None && "array class needs an element kind");
  HeapClassDesc D;
  D.Name = std::move(Name);
  D.ArrayElem = Elem;
  Descs.push_back(std::move(D));
  return static_cast<ClassId>(Descs.size() - 1);
}

uint32_t ObjectModel::scalarObjectBytes(ClassId Id) const {
  const HeapClassDesc &D = Classes.desc(Id);
  assert(!D.isArray() && "scalar size requested for an array class");
  return D.InstanceBytes;
}

uint32_t ObjectModel::arrayObjectBytes(ClassId Id, uint32_t Length) const {
  const HeapClassDesc &D = Classes.desc(Id);
  assert(D.isArray() && "array size requested for a scalar class");
  uint64_t Body = static_cast<uint64_t>(Length) * elemKindSize(D.ArrayElem);
  assert(Body <= 0x7fffffff && "array too large for the simulated heap");
  return alignUp(objheader::kHeaderBytes + static_cast<uint32_t>(Body),
                 kObjectAlign);
}

void ObjectModel::initObject(Address Obj, ClassId Id, uint32_t TotalBytes,
                             uint32_t ArrayLength) {
  assert(isAligned(Obj, kObjectAlign) && "misaligned object address");
  Mem.zero(Obj, TotalBytes);
  Mem.writeWord(Obj + objheader::kClassOffset, Id);
  Mem.writeWord(Obj + objheader::kSizeOffset, TotalBytes);
  Mem.writeWord(Obj + objheader::kFlagsOffset, 0);
  Mem.writeWord(Obj + objheader::kAuxOffset, ArrayLength);
}

Address ObjectModel::elementAddress(Address Obj, uint32_t Index) const {
  const HeapClassDesc &D = descOf(Obj);
  assert(D.isArray() && "element address of a non-array");
  assert(Index < arrayLength(Obj) && "array index out of bounds");
  return Obj + objheader::kHeaderBytes + Index * elemKindSize(D.ArrayElem);
}
