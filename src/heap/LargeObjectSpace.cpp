//===-- heap/LargeObjectSpace.cpp -----------------------------------------===//

#include "heap/LargeObjectSpace.h"

#include <cassert>
#include <vector>

using namespace hpmvm;

Address LargeObjectSpace::alloc(uint32_t Bytes) {
  assert(Bytes != 0 && "zero-sized large object");
  uint32_t N = (Bytes + kBlockBytes - 1) / kBlockBytes;
  Address Base = Pool.allocRun(N, SpaceId::Los);
  if (Base == kNullRef)
    return kNullRef;
  Runs.emplace(Base, N);
  BlocksOwned += N;
  BytesRequested += Bytes;
  return Base;
}

uint32_t
LargeObjectSpace::sweep(const std::function<bool(Address)> &IsLive) {
  std::vector<Address> Dead;
  for (const auto &[Base, N] : Runs) {
    (void)N;
    if (!IsLive(Base))
      Dead.push_back(Base);
  }
  for (Address Base : Dead) {
    auto It = Runs.find(Base);
    Pool.freeRun(Base, It->second);
    BlocksOwned -= It->second;
    Runs.erase(It);
  }
  return static_cast<uint32_t>(Dead.size());
}

void LargeObjectSpace::forEachObject(
    const std::function<void(Address)> &Fn) const {
  for (const auto &[Base, N] : Runs) {
    (void)N;
    Fn(Base);
  }
}
