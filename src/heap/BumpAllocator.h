//===-- heap/BumpAllocator.h - Bump-pointer allocation ---------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bump-pointer allocator: used for the nursery ("It does bump-pointer
/// allocation for young objects") and for GenCopy's to-space.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_HEAP_BUMPALLOCATOR_H
#define HPMVM_HEAP_BUMPALLOCATOR_H

#include "support/Types.h"

#include <cassert>

namespace hpmvm {

/// Contiguous bump allocation over [start, limit).
class BumpAllocator {
public:
  BumpAllocator() = default;
  BumpAllocator(Address Start, Address Limit) { setRange(Start, Limit); }

  /// (Re)binds the allocator to [Start, Limit) and resets the cursor.
  void setRange(Address Start, Address Limit) {
    assert(Start <= Limit && "inverted range");
    assert(isAligned(Start, kObjectAlign) && "unaligned region start");
    this->Start = Start;
    this->Limit = Limit;
    Cursor = Start;
  }

  /// Allocates \p Bytes (caller pre-aligns); \returns 0 on exhaustion.
  Address alloc(uint32_t Bytes) {
    assert(isAligned(Bytes, kObjectAlign) && "unaligned allocation size");
    if (Limit - Cursor < Bytes)
      return kNullRef;
    Address Result = Cursor;
    Cursor += Bytes;
    return Result;
  }

  /// Empties the region (e.g. after a nursery collection).
  void reset() { Cursor = Start; }

  Address start() const { return Start; }
  Address limit() const { return Limit; }
  Address cursor() const { return Cursor; }
  uint32_t usedBytes() const { return Cursor - Start; }
  uint32_t freeBytes() const { return Limit - Cursor; }
  uint32_t capacity() const { return Limit - Start; }

  /// \returns true if \p A points into the allocated part of this region.
  bool containsAllocated(Address A) const { return A >= Start && A < Cursor; }

  /// \returns true if \p A lies anywhere in the region.
  bool containsRange(Address A) const { return A >= Start && A < Limit; }

private:
  Address Start = 0;
  Address Limit = 0;
  Address Cursor = 0;
};

} // namespace hpmvm

#endif // HPMVM_HEAP_BUMPALLOCATOR_H
