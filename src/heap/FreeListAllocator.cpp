//===-- heap/FreeListAllocator.cpp ----------------------------------------===//

#include "heap/FreeListAllocator.h"

#include <algorithm>

using namespace hpmvm;

FreeListAllocator::BlockMeta *FreeListAllocator::addBlock(uint32_t Cls) {
  Address Block = Pool.allocBlock(SpaceId::Mature);
  if (Block == kNullRef)
    return nullptr;
  BlockMeta M;
  M.SizeClass = Cls;
  M.CellBytes = SizeClasses::cellBytes(Cls);
  M.NumCells = kBlockBytes / M.CellBytes;
  M.Used.assign(M.NumCells, false);
  M.FreeStack.reserve(M.NumCells);
  // Push high indices first so cells are handed out low-address-first.
  for (uint32_t I = M.NumCells; I != 0; --I)
    M.FreeStack.push_back(static_cast<uint16_t>(I - 1));
  auto [It, Inserted] = Meta.emplace(Block, std::move(M));
  assert(Inserted && "block already had metadata");
  Partial[Cls].push_back(Block);
  return &It->second;
}

Address FreeListAllocator::alloc(uint32_t Bytes) {
  uint32_t Cls = SizeClasses::classFor(Bytes);
  assert(Cls != kInvalidId && "request exceeds the free-list ceiling");

  // Find a block with a free cell, pruning exhausted entries.
  BlockMeta *M = nullptr;
  Address Block = kNullRef;
  auto &List = Partial[Cls];
  while (!List.empty()) {
    Block = List.back();
    BlockMeta &Candidate = Meta.at(Block);
    if (!Candidate.FreeStack.empty()) {
      M = &Candidate;
      break;
    }
    List.pop_back();
  }
  if (!M) {
    M = addBlock(Cls);
    if (!M)
      return kNullRef;
    Block = List.back();
  }

  uint16_t Cell = M->FreeStack.back();
  M->FreeStack.pop_back();
  assert(!M->Used[Cell] && "free list handed out an in-use cell");
  M->Used[Cell] = true;
  ++M->UsedCount;

  ++Stats.CellsAllocated;
  Stats.BytesRequested += Bytes;
  Stats.BytesWasted += M->CellBytes - Bytes;
  ++Stats.CellsInUse;
  Stats.CellBytesInUse += M->CellBytes;
  return Block + Cell * M->CellBytes;
}

uint32_t
FreeListAllocator::sweep(const std::function<bool(Address)> &IsLive) {
  uint32_t Freed = 0;
  std::vector<Address> DeadBlocks;
  for (auto &[Block, M] : Meta) {
    for (uint32_t I = 0; I != M.NumCells; ++I) {
      if (!M.Used[I])
        continue;
      Address Cell = Block + I * M.CellBytes;
      if (IsLive(Cell))
        continue;
      M.Used[I] = false;
      M.FreeStack.push_back(static_cast<uint16_t>(I));
      --M.UsedCount;
      ++Freed;
      --Stats.CellsInUse;
      Stats.CellBytesInUse -= M.CellBytes;
    }
    if (M.UsedCount == 0)
      DeadBlocks.push_back(Block);
  }

  for (Address Block : DeadBlocks) {
    Meta.erase(Block);
    Pool.freeBlock(Block);
  }

  // Rebuild the partial lists: membership may have changed arbitrarily.
  for (auto &List : Partial)
    List.clear();
  for (auto &[Block, M] : Meta)
    if (!M.FreeStack.empty())
      Partial[M.SizeClass].push_back(Block);
  return Freed;
}

void FreeListAllocator::forEachCell(
    const std::function<void(Address)> &Fn) const {
  for (const auto &[Block, M] : Meta)
    for (uint32_t I = 0; I != M.NumCells; ++I)
      if (M.Used[I])
        Fn(Block + I * M.CellBytes);
}

uint32_t FreeListAllocator::cellSizeAt(Address Cell) const {
  Address Block = Pool.blockBase(Cell);
  auto It = Meta.find(Block);
  assert(It != Meta.end() && "address not in a free-list block");
  return It->second.CellBytes;
}

bool FreeListAllocator::isInUseCell(Address A) const {
  if (Pool.ownerOf(A) != SpaceId::Mature)
    return false;
  Address Block = Pool.blockBase(A);
  auto It = Meta.find(Block);
  if (It == Meta.end())
    return false;
  const BlockMeta &M = It->second;
  uint32_t Offset = A - Block;
  if (Offset % M.CellBytes != 0)
    return false;
  return M.Used[Offset / M.CellBytes];
}
