//===-- heap/SizeClasses.cpp ----------------------------------------------===//

#include "heap/SizeClasses.h"

#include <cassert>

using namespace hpmvm;

const std::array<uint32_t, kNumSizeClasses> &SizeClasses::table() {
  // 40 classes, 16..4096 bytes, 8-byte aligned, granularity coarsening with
  // size (MMTk-style): 15 classes at 8-byte steps, 8 at 16, 8 at 32, 4 at
  // 128, 4 at 512, and the 4 KB ceiling.
  static const std::array<uint32_t, kNumSizeClasses> Table = {
      16,   24,   32,   40,   48,   56,   64,   72,   80,   88,
      96,   104,  112,  120,  128,  144,  160,  176,  192,  208,
      224,  240,  256,  288,  320,  352,  384,  416,  448,  480,
      512,  640,  768,  896,  1024, 1536, 2048, 2560, 3072, 4096};
  return Table;
}

uint32_t SizeClasses::cellBytes(uint32_t Index) {
  assert(Index < kNumSizeClasses && "size class index out of range");
  return table()[Index];
}

uint32_t SizeClasses::classFor(uint32_t Bytes) {
  if (Bytes > kMaxFreeListBytes)
    return kInvalidId;
  const auto &T = table();
  // Binary search for the first cell size >= Bytes.
  uint32_t Lo = 0, Hi = kNumSizeClasses - 1;
  while (Lo < Hi) {
    uint32_t Mid = (Lo + Hi) / 2;
    if (T[Mid] < Bytes)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  assert(T[Lo] >= Bytes && "size class lookup broken");
  return Lo;
}

uint32_t SizeClasses::wasteFor(uint32_t Bytes) {
  uint32_t Cls = classFor(Bytes);
  assert(Cls != kInvalidId && "request exceeds free-list ceiling");
  return cellBytes(Cls) - Bytes;
}
