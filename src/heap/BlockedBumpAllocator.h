//===-- heap/BlockedBumpAllocator.h - Bump over a block chain --*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bump-pointer allocation over a chain of pool blocks, used by the nursery
/// and by GenCopy's semispaces. The space has a *block budget* rather than
/// a fixed address range, which implements the Appel-style variable-size
/// nursery: the collector recomputes the budget after every collection from
/// the space left over by the mature generation.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_HEAP_BLOCKEDBUMPALLOCATOR_H
#define HPMVM_HEAP_BLOCKEDBUMPALLOCATOR_H

#include "heap/BlockPool.h"
#include "support/Types.h"

#include <vector>

namespace hpmvm {

/// Bump allocator drawing 64 KB blocks from a BlockPool up to a budget.
class BlockedBumpAllocator {
public:
  BlockedBumpAllocator(BlockPool &Pool, SpaceId Space)
      : Pool(Pool), Space(Space) {}

  /// Sets the maximum number of blocks this space may own.
  void setBlockBudget(uint32_t Blocks) { Budget = Blocks; }
  uint32_t blockBudget() const { return Budget; }

  /// Allocates \p Bytes (8-byte aligned, at most kBlockBytes). \returns 0
  /// when the budget or the pool is exhausted -- the caller triggers a GC.
  Address alloc(uint32_t Bytes);

  /// Releases every owned block back to the pool (post-collection).
  void releaseAll();

  /// Iterates objects in allocation order; \p Fn(Address) must return the
  /// object's size in bytes so the walk can skip to the next object. Used
  /// by collectors and heap verifiers.
  template <typename Fn> void forEachObject(Fn &&SizeOf) const {
    for (size_t I = 0; I != Blocks.size(); ++I) {
      Address Cursor = Blocks[I];
      Address End = (I + 1 == Blocks.size()) ? BumpCursor
                                             : Blocks[I] + FillOf(I);
      while (Cursor < End)
        Cursor += SizeOf(Cursor);
    }
  }

  uint32_t blocksOwned() const { return static_cast<uint32_t>(Blocks.size()); }
  uint32_t usedBytes() const;
  /// Bytes still allocatable within the current budget.
  uint32_t headroomBytes() const;

  /// \returns true if \p A lies in an owned block below its fill line.
  bool containsAllocated(Address A) const;

private:
  uint32_t FillOf(size_t I) const {
    // All blocks except the last are filled to their recorded fill line.
    return Fills[I];
  }

  BlockPool &Pool;
  SpaceId Space;
  uint32_t Budget = 0;
  std::vector<Address> Blocks;
  std::vector<uint32_t> Fills; ///< Bytes used in each owned block.
  Address BumpCursor = 0;
  Address BumpLimit = 0;
};

} // namespace hpmvm

#endif // HPMVM_HEAP_BLOCKEDBUMPALLOCATOR_H
