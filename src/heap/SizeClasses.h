//===-- heap/SizeClasses.h - The 40 free-list size classes -----*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's mature-space free-list allocator "allocates objects into 40
/// different size classes up to 4 KBytes (=VM default setting) to minimize
/// heap fragmentation". This table defines those 40 cell sizes: 8-byte
/// steps for small objects (where most allocation happens), coarsening
/// toward 4 KB. The limited number of classes is exactly why co-allocation
/// can increase internal fragmentation (paper section 5.4) -- the
/// fragmentation experiments depend on this structure.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_HEAP_SIZECLASSES_H
#define HPMVM_HEAP_SIZECLASSES_H

#include "support/Types.h"

#include <array>

namespace hpmvm {

/// Number of free-list size classes (paper/VM default).
inline constexpr uint32_t kNumSizeClasses = 40;

/// Maximum cell size handled by the free list; anything larger goes to the
/// large object space.
inline constexpr uint32_t kMaxFreeListBytes = 4096;

/// Size-class table and lookup.
class SizeClasses {
public:
  /// \returns the cell size in bytes of class \p Index.
  static uint32_t cellBytes(uint32_t Index);

  /// \returns the smallest class whose cell fits \p Bytes, or kInvalidId if
  /// Bytes > kMaxFreeListBytes.
  static uint32_t classFor(uint32_t Bytes);

  /// \returns internal fragmentation for a request of \p Bytes: cell size
  /// minus request. Pre: Bytes <= kMaxFreeListBytes.
  static uint32_t wasteFor(uint32_t Bytes);

private:
  static const std::array<uint32_t, kNumSizeClasses> &table();
};

} // namespace hpmvm

#endif // HPMVM_HEAP_SIZECLASSES_H
