//===-- heap/HeapMemory.h - Byte-addressable heap backing ------*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backing store for the simulated heap: a contiguous byte array addressed
/// by simulated 32-bit addresses. These accessors move data only -- cache
/// behaviour and cycle costs are charged separately by the execution engine
/// (mutator accesses run through memsim; GC work is charged by the GC cost
/// model), so the GC can move objects without polluting the mutator's
/// simulated cache statistics unrealistically.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_HEAP_HEAPMEMORY_H
#define HPMVM_HEAP_HEAPMEMORY_H

#include "heap/AddressSpace.h"
#include "support/Types.h"

#include <cassert>
#include <cstring>
#include <vector>

namespace hpmvm {

/// Byte-addressable backing store for [base, base+size).
class HeapMemory {
public:
  HeapMemory(Address Base, uint32_t SizeBytes)
      : Base(Base), Bytes(SizeBytes, 0) {}

  Address base() const { return Base; }
  uint32_t size() const { return static_cast<uint32_t>(Bytes.size()); }
  Address limit() const { return Base + size(); }

  bool contains(Address A) const { return A >= Base && A < limit(); }

  uint32_t readWord(Address A) const {
    assert(contains(A) && A + 4 <= limit() && "heap read out of bounds");
    uint32_t V;
    std::memcpy(&V, &Bytes[A - Base], 4);
    return V;
  }

  void writeWord(Address A, uint32_t V) {
    assert(contains(A) && A + 4 <= limit() && "heap write out of bounds");
    std::memcpy(&Bytes[A - Base], &V, 4);
  }

  uint16_t readHalf(Address A) const {
    assert(contains(A) && A + 2 <= limit() && "heap read out of bounds");
    uint16_t V;
    std::memcpy(&V, &Bytes[A - Base], 2);
    return V;
  }

  void writeHalf(Address A, uint16_t V) {
    assert(contains(A) && A + 2 <= limit() && "heap write out of bounds");
    std::memcpy(&Bytes[A - Base], &V, 2);
  }

  uint8_t readByte(Address A) const {
    assert(contains(A) && "heap read out of bounds");
    return Bytes[A - Base];
  }

  void writeByte(Address A, uint8_t V) {
    assert(contains(A) && "heap write out of bounds");
    Bytes[A - Base] = V;
  }

  /// memmove within the heap (GC copying). Ranges may not overlap in
  /// practice (copying GC copies between disjoint spaces) but memmove is
  /// used defensively.
  void copy(Address Dst, Address Src, uint32_t Len) {
    assert(contains(Dst) && Dst + Len <= limit() && "copy dst out of bounds");
    assert(contains(Src) && Src + Len <= limit() && "copy src out of bounds");
    std::memmove(&Bytes[Dst - Base], &Bytes[Src - Base], Len);
  }

  /// Zero-fills [A, A+Len).
  void zero(Address A, uint32_t Len) {
    assert(contains(A) && A + Len <= limit() && "zero out of bounds");
    std::memset(&Bytes[A - Base], 0, Len);
  }

private:
  Address Base;
  std::vector<uint8_t> Bytes;
};

} // namespace hpmvm

#endif // HPMVM_HEAP_HEAPMEMORY_H
