//===-- tools/hpmvm_lint.cpp - Determinism/conventions static checker -----===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
// Project-specific static analysis (DESIGN.md section 14): scans the given
// roots token-by-token and enforces the repo's determinism and
// observability conventions as named rules R1-R7 (see tools/LintEngine.h
// for the catalog).
//
//   hpmvm_lint [options] <root>...          lint files/trees
//   hpmvm_lint --list-rules                 print the rule catalog
//   hpmvm_lint --check-supp <file>          validate a suppression file
//
// Options:
//   --supp <file>       suppression file (entries need '# Why:' comments)
//   --error-on-new      exit 1 when any unsuppressed finding remains
//   --rules <R1,R3,..>  restrict reporting to a rule subset
//   --show-suppressed   also print findings silenced by the supp file
//
// Output: one `file:line: ruleId: message` line per finding, sorted by
// path, then a summary. Exit codes: 0 clean (or report-only), 1 findings
// under --error-on-new, 2 usage/IO errors, nonexistent or empty scan
// roots, and malformed or unjustified suppression files.
//
//===----------------------------------------------------------------------===//

#include "LintEngine.h"

#include "support/Flags.h"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

using namespace hpmvm;

namespace {

[[noreturn]] void usage(const char *Msg) {
  if (Msg)
    fprintf(stderr, "error: %s\n", Msg);
  fprintf(stderr,
          "usage: hpmvm_lint [--supp <file>] [--error-on-new]\n"
          "                  [--rules <R1,R2,...>] [--show-suppressed]\n"
          "                  <root>...\n"
          "       hpmvm_lint --list-rules\n"
          "       hpmvm_lint --check-supp <file>\n");
  exit(2);
}

bool readFile(const std::string &Path, std::string &Out) {
  FILE *F = fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  char Buf[64 * 1024];
  size_t N;
  Out.clear();
  while ((N = fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  bool Ok = !ferror(F);
  fclose(F);
  return Ok;
}

/// Loads and validates a suppression file; exits 2 on I/O errors,
/// malformed entries, or entries without a '# Why:' justification.
lint::SuppFile loadSupp(const std::string &Path) {
  std::string Text;
  if (!readFile(Path, Text)) {
    fprintf(stderr, "error: cannot read suppression file '%s'\n",
            Path.c_str());
    exit(2);
  }
  lint::SuppFile Supp = lint::parseSuppressions(Text);
  if (!Supp.Errors.empty()) {
    for (const std::string &E : Supp.Errors)
      fprintf(stderr, "error: %s\n", E.c_str());
    exit(2);
  }
  return Supp;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string SuppPath;
  std::string CheckSuppPath;
  std::string RulesArg;
  bool ErrorOnNew = false;
  bool ShowSuppressed = false;
  bool ListRules = false;
  std::vector<std::string> Roots;

  flags::ArgScanner S(Argc, Argv);
  while (S.next()) {
    std::string Value;
    if (S.take("--supp", Value))
      SuppPath = Value;
    else if (S.take("--check-supp", Value))
      CheckSuppPath = Value;
    else if (S.take("--rules", Value))
      RulesArg = Value;
    else if (S.takeSwitch("--error-on-new"))
      ErrorOnNew = true;
    else if (S.takeSwitch("--show-suppressed"))
      ShowSuppressed = true;
    else if (S.takeSwitch("--list-rules"))
      ListRules = true;
    else if (S.takeSwitch("--help") || S.takeSwitch("-h"))
      usage(nullptr);
    else if (S.arg()[0] == '-')
      usage((std::string("unknown flag '") + S.arg() + "'").c_str());
    else
      Roots.push_back(S.arg());
  }
  if (!S.ok())
    exit(2);

  if (ListRules) {
    for (const lint::RuleInfo &R : lint::rules())
      printf("%s  %s\n", R.Id, R.Summary);
    return 0;
  }
  if (!CheckSuppPath.empty()) {
    lint::SuppFile Supp = loadSupp(CheckSuppPath);
    printf("%s: %zu entries, all justified\n", CheckSuppPath.c_str(),
           Supp.Entries.size());
    return 0;
  }
  if (Roots.empty())
    usage("no scan roots given");

  std::set<std::string> RuleFilter;
  if (!RulesArg.empty()) {
    size_t Pos = 0;
    while (Pos <= RulesArg.size()) {
      size_t Comma = RulesArg.find(',', Pos);
      size_t End = Comma == std::string::npos ? RulesArg.size() : Comma;
      std::string R = RulesArg.substr(Pos, End - Pos);
      if (!R.empty()) {
        if (!lint::isKnownRule(R))
          usage(("unknown rule '" + R + "' in --rules").c_str());
        RuleFilter.insert(R);
      }
      if (Comma == std::string::npos)
        break;
      Pos = Comma + 1;
    }
    if (RuleFilter.empty())
      usage("--rules selects nothing");
  }

  std::vector<std::string> Files;
  for (const std::string &Root : Roots) {
    std::string Error;
    if (!lint::collectFiles(Root, Files, Error)) {
      fprintf(stderr, "error: %s\n", Error.c_str());
      exit(2);
    }
  }

  lint::SuppFile Supp;
  if (!SuppPath.empty())
    Supp = loadSupp(SuppPath);

  std::vector<lint::Finding> All;
  for (const std::string &File : Files) {
    std::string Text;
    if (!readFile(File, Text)) {
      fprintf(stderr, "error: cannot read '%s'\n", File.c_str());
      exit(2);
    }
    for (lint::Finding &F : lint::lintSource(File, Text)) {
      if (!RuleFilter.empty() && !RuleFilter.count(F.Rule))
        continue;
      All.push_back(std::move(F));
    }
  }
  lint::applySuppressions(All, Supp);

  size_t NumSuppressed = 0, NumActive = 0;
  for (const lint::Finding &F : All) {
    if (F.Suppressed) {
      ++NumSuppressed;
      if (ShowSuppressed)
        printf("%s:%u: %s: %s [suppressed]\n", F.File.c_str(), F.Line,
               F.Rule.c_str(), F.Message.c_str());
      continue;
    }
    ++NumActive;
    printf("%s:%u: %s: %s\n", F.File.c_str(), F.Line, F.Rule.c_str(),
           F.Message.c_str());
  }

  // Stale suppressions are advisory: a subset --rules run legitimately
  // leaves entries unmatched, so they warn rather than fail.
  if (RuleFilter.empty())
    for (const lint::SuppEntry &E : Supp.Entries)
      if (!E.Used)
        fprintf(stderr,
                "warning: unused suppression '%s %s' (line %u) -- the "
                "violation it silenced is gone; remove the entry\n",
                E.Rule.c_str(), E.PathSuffix.c_str(), E.SuppLine);

  printf("hpmvm_lint: %zu files scanned, %zu finding%s (%zu suppressed)\n",
         Files.size(), NumActive, NumActive == 1 ? "" : "s", NumSuppressed);
  return ErrorOnNew && NumActive > 0 ? 1 : 0;
}
