//===-- tools/hpmvm_report.cpp - Run-diff triage CLI ----------------------===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
// Offline triage for the telemetry the benches export:
//
//   hpmvm_report <a.json>                     one-run report
//   hpmvm_report <a.json> <b.json>            A-vs-B counter deltas
//   hpmvm_report --journal <a.jsonl>          decision-journal timeline
//
// Accepted inputs: a bench --json-out document (object with "runs", each
// run carrying metrics + its decision journal), a bare --metrics-out
// snapshot (object with "counters"), and --journal/--journal-b JSONL
// files written by --journal-out (attached to the single selected run, or
// standing alone). --run <substr> selects runs by label; --top <n> bounds
// the counter tables; --verdicts <consumer> narrows the timeline and the
// decision summaries to one consumer's records (e.g. "policy"). Journals
// from policy-engine runs additionally get a per-(method, action)
// blacklist table. Exits 2 on usage, I/O or parse errors.
//
// Fleet runs: per-tenant rows in a fleet bench document are plain runs
// labeled ".../tenantNNN", and merged fleet journals stamp each record
// with its tenant. --tenant <id> narrows both (runs by label tag, journal
// records by their "tenant" field), and any journal whose records carry
// tenants gets a decisions-by-tenant table next to the per-consumer one.
//
//===----------------------------------------------------------------------===//

#include "support/Flags.h"
#include "support/Json.h"
#include "support/TableWriter.h"
#include "support/VirtualClock.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

using namespace hpmvm;

namespace {

struct Options {
  std::vector<std::string> Inputs; ///< 1 or 2 positional run files.
  std::string JournalPath;         ///< --journal.
  std::string JournalBPath;        ///< --journal-b.
  std::string RunFilter;           ///< --run label substring.
  std::string VerdictsConsumer;    ///< --verdicts consumer filter.
  size_t Top = 12;                 ///< --top.
  bool HasTenant = false;          ///< --tenant given.
  uint32_t Tenant = 0;             ///< --tenant id.
};

/// One run's worth of triage data, whatever file shape it came from.
struct RunData {
  std::string Label;
  std::map<std::string, uint64_t> Counters; ///< Headline + metrics counters.
  std::vector<json::ValuePtr> Decisions;    ///< Journal records, in order.
};

[[noreturn]] void usage(const char *Msg) {
  if (Msg)
    fprintf(stderr, "error: %s\n", Msg);
  fprintf(stderr,
          "usage: hpmvm_report [<run.json>] [<run-b.json>]\n"
          "                    [--journal <a.jsonl>] [--journal-b <b.jsonl>]\n"
          "                    [--run <label-substring>] [--top <n>]\n"
          "                    [--verdicts <consumer>] [--tenant <id>]\n");
  exit(2);
}

bool readFile(const std::string &Path, std::string &Out) {
  FILE *F = fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  char Buf[64 * 1024];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  bool Ok = ferror(F) == 0;
  fclose(F);
  return Ok;
}

std::string formatCount(uint64_t V) {
  char Buf[32];
  snprintf(Buf, sizeof(Buf), "%llu", static_cast<unsigned long long>(V));
  return Buf;
}

std::string formatNum(double V) {
  char Buf[32];
  snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

/// Virtual-clock cycles -> milliseconds, for timeline readability.
std::string formatTsMs(double CycleStamp) {
  char Buf[32];
  snprintf(Buf, sizeof(Buf), "%.2f",
           VirtualClock::toSeconds(static_cast<Cycles>(CycleStamp)) * 1e3);
  return Buf;
}

/// Flattens one bench-document run object into RunData: the run's own
/// numeric fields plus its metrics counters, plus the embedded journal.
RunData flattenRun(const json::Value &Run) {
  RunData D;
  D.Label = Run.str("label", "(unlabeled)");
  for (const auto &[Key, Val] : Run.Obj)
    if (Val && Val->isNumber() && Key != "label")
      D.Counters[Key] = static_cast<uint64_t>(Val->Num);
  if (json::ValuePtr Metrics = Run.get("metrics"))
    if (json::ValuePtr Counters = Metrics->get("counters"))
      for (const auto &[Key, Val] : Counters->Obj)
        if (Val && Val->isNumber())
          D.Counters[Key] = static_cast<uint64_t>(Val->Num);
  if (json::ValuePtr Decisions = Run.get("decisions"))
    for (const json::ValuePtr &Rec : Decisions->Arr)
      if (Rec && Rec->isObject())
        D.Decisions.push_back(Rec);
  return D;
}

/// Loads one positional input: either a bench runs document (possibly
/// many runs; filtered by \p RunFilter) or a bare metrics snapshot.
std::vector<RunData> loadRuns(const std::string &Path,
                              const std::string &RunFilter) {
  std::string Text;
  if (!readFile(Path, Text)) {
    fprintf(stderr, "error: cannot read '%s'\n", Path.c_str());
    exit(2);
  }
  bool Ok = false;
  json::ValuePtr Doc = json::parse(Text, Ok);
  if (!Ok || !Doc || !Doc->isObject()) {
    fprintf(stderr, "error: '%s' is not a JSON object\n", Path.c_str());
    exit(2);
  }

  std::vector<RunData> Runs;
  if (json::ValuePtr RunsArr = Doc->get("runs")) {
    for (const json::ValuePtr &Run : RunsArr->Arr) {
      if (!Run || !Run->isObject())
        continue;
      RunData D = flattenRun(*Run);
      if (RunFilter.empty() ||
          D.Label.find(RunFilter) != std::string::npos)
        Runs.push_back(std::move(D));
    }
    if (Runs.empty()) {
      fprintf(stderr, "error: no run in '%s' matches --run '%s'\n",
              Path.c_str(), RunFilter.c_str());
      exit(2);
    }
  } else if (Doc->get("counters")) {
    // A bare --metrics-out snapshot: one pseudo-run named by the file.
    RunData D;
    D.Label = Path;
    if (json::ValuePtr Counters = Doc->get("counters"))
      for (const auto &[Key, Val] : Counters->Obj)
        if (Val && Val->isNumber())
          D.Counters[Key] = static_cast<uint64_t>(Val->Num);
    Runs.push_back(std::move(D));
  } else {
    fprintf(stderr,
            "error: '%s' has neither \"runs\" nor \"counters\" -- not a "
            "bench document or metrics snapshot\n",
            Path.c_str());
    exit(2);
  }
  return Runs;
}

/// Loads a --journal-out JSONL file into decision records.
std::vector<json::ValuePtr> loadJournal(const std::string &Path) {
  std::string Text;
  if (!readFile(Path, Text)) {
    fprintf(stderr, "error: cannot read '%s'\n", Path.c_str());
    exit(2);
  }
  std::vector<json::ValuePtr> Records;
  size_t Pos = 0, LineNo = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    ++LineNo;
    if (Line.empty())
      continue;
    bool Ok = false;
    json::ValuePtr Rec = json::parse(Line, Ok);
    if (!Ok || !Rec || !Rec->isObject() || Rec->str("kind").empty()) {
      fprintf(stderr, "error: '%s' line %zu is not a journal record\n",
              Path.c_str(), LineNo);
      exit(2);
    }
    Records.push_back(Rec);
  }
  return Records;
}

void printCounters(const RunData &Run, size_t Top) {
  std::vector<std::pair<std::string, uint64_t>> Sorted(Run.Counters.begin(),
                                                       Run.Counters.end());
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const auto &A, const auto &B) {
                     return A.second > B.second;
                   });
  TableWriter T({"counter", "value"});
  for (size_t I = 0; I != Sorted.size() && I != Top; ++I)
    T.addRow({Sorted[I].first, formatCount(Sorted[I].second)});
  printf("Top counters (%zu of %zu):\n", std::min(Top, Sorted.size()),
         Sorted.size());
  T.print(stdout);
}

/// True when any record in the list is tenant-stamped (a merged fleet
/// journal); plain per-VM journals carry no tenant field.
bool hasTenants(const std::vector<json::ValuePtr> &Decisions) {
  for (const json::ValuePtr &D : Decisions)
    if (D->get("tenant"))
      return true;
  return false;
}

void printTimeline(const std::vector<json::ValuePtr> &Decisions) {
  if (Decisions.empty()) {
    printf("Decision timeline: (empty)\n");
    return;
  }
  bool Tenants = hasTenants(Decisions);
  std::vector<std::string> Cols = {"t (ms)", "kind",     "consumer",
                                   "action", "subject",  "rate",
                                   "baseline", "outcome"};
  if (Tenants)
    Cols.insert(Cols.begin() + 1, "tenant");
  TableWriter T(Cols);
  for (const json::ValuePtr &D : Decisions) {
    std::string Subject;
    if (D->get("method"))
      Subject = "method " +
                formatCount(static_cast<uint64_t>(D->num("method")));
    else if (D->get("field"))
      Subject =
          "field " + formatCount(static_cast<uint64_t>(D->num("field")));
    std::vector<std::string> Row = {
        formatTsMs(D->num("ts")), D->str("kind"), D->str("consumer"),
        D->str("action"), Subject,
        D->get("rate") ? formatNum(D->num("rate")) : "",
        D->get("baseline") ? formatNum(D->num("baseline")) : "",
        D->str("outcome")};
    if (Tenants)
      Row.insert(Row.begin() + 1,
                 D->get("tenant")
                     ? formatCount(static_cast<uint64_t>(D->num("tenant")))
                     : "");
    T.addRow(Row);
  }
  printf("Decision timeline (%zu records):\n", Decisions.size());
  T.print(stdout);
}

void printVerdicts(const std::vector<json::ValuePtr> &Decisions) {
  // consumer -> {other decisions, applies, accepts, reverts, blacklists}.
  std::map<std::string, std::array<uint64_t, 5>> PerConsumer;
  for (const json::ValuePtr &D : Decisions) {
    std::string Kind = D->str("kind");
    std::array<uint64_t, 5> &Row = PerConsumer[D->str("consumer")];
    if (Kind == "Apply")
      ++Row[1];
    else if (Kind == "Accept")
      ++Row[2];
    else if (Kind == "Revert")
      ++Row[3];
    else if (Kind == "Blacklist")
      ++Row[4];
    else if (Kind != "Assess" && Kind != "PhaseChange")
      ++Row[0];
  }
  if (PerConsumer.empty())
    return;
  TableWriter T({"consumer", "decisions", "applies", "accepts", "reverts",
                 "blacklists"});
  for (const auto &[Consumer, Row] : PerConsumer)
    T.addRow({Consumer, formatCount(Row[0]), formatCount(Row[1]),
              formatCount(Row[2]), formatCount(Row[3]),
              formatCount(Row[4])});
  printf("Decisions by consumer:\n");
  T.print(stdout);
}

/// Fleet-journal companion to printVerdicts: the same verdict funnel,
/// grouped by the tenant stamp so per-shard behaviour is comparable at a
/// glance. Silent on journals without tenant stamps.
void printTenantVerdicts(const std::vector<json::ValuePtr> &Decisions) {
  std::map<uint64_t, std::array<uint64_t, 5>> PerTenant;
  for (const json::ValuePtr &D : Decisions) {
    if (!D->get("tenant"))
      continue;
    std::string Kind = D->str("kind");
    std::array<uint64_t, 5> &Row =
        PerTenant[static_cast<uint64_t>(D->num("tenant"))];
    if (Kind == "Apply")
      ++Row[1];
    else if (Kind == "Accept")
      ++Row[2];
    else if (Kind == "Revert")
      ++Row[3];
    else if (Kind == "Blacklist")
      ++Row[4];
    else if (Kind != "Assess" && Kind != "PhaseChange")
      ++Row[0];
  }
  if (PerTenant.empty())
    return;
  TableWriter T({"tenant", "decisions", "applies", "accepts", "reverts",
                 "blacklists"});
  for (const auto &[Tenant, Row] : PerTenant)
    T.addRow({formatCount(Tenant), formatCount(Row[0]), formatCount(Row[1]),
              formatCount(Row[2]), formatCount(Row[3]),
              formatCount(Row[4])});
  printf("\nDecisions by tenant:\n");
  T.print(stdout);
}

/// The policy engine's per-(method, action) blacklist as of the end of the
/// journal: every Blacklist record, with the revert that caused it.
void printBlacklist(const std::vector<json::ValuePtr> &Decisions) {
  TableWriter T({"t (ms)", "method", "action", "assessed", "baseline"});
  size_t N = 0;
  for (size_t I = 0; I != Decisions.size(); ++I) {
    const json::ValuePtr &D = Decisions[I];
    if (D->str("kind") != "Blacklist")
      continue;
    // The matching Revert directly precedes its Blacklist; pull its rates
    // so the table shows *why* the pair is banned.
    std::string Assessed, Baseline;
    if (I > 0) {
      const json::ValuePtr &Prev = Decisions[I - 1];
      if (Prev->str("kind") == "Revert" &&
          Prev->num("method") == D->num("method")) {
        Assessed = Prev->get("rate") ? formatNum(Prev->num("rate")) : "";
        Baseline =
            Prev->get("baseline") ? formatNum(Prev->num("baseline")) : "";
      }
    }
    T.addRow({formatTsMs(D->num("ts")),
              formatCount(static_cast<uint64_t>(D->num("method"))),
              D->str("action"), Assessed, Baseline});
    ++N;
  }
  if (!N)
    return;
  printf("\nBlacklisted (method, action) pairs (%zu):\n", N);
  T.print(stdout);
}

/// Applies the --verdicts consumer filter to a record list.
std::vector<json::ValuePtr>
filterConsumer(const std::vector<json::ValuePtr> &Decisions,
               const std::string &Consumer) {
  if (Consumer.empty())
    return Decisions;
  std::vector<json::ValuePtr> Out;
  for (const json::ValuePtr &D : Decisions)
    if (D->str("consumer") == Consumer)
      Out.push_back(D);
  return Out;
}

/// Applies the --tenant filter: keeps records stamped with that tenant.
/// A list with no tenant stamps at all (a plain per-VM journal, or a
/// tenant row's own journal) passes through untouched -- it is already
/// single-tenant context, narrowed by run selection.
std::vector<json::ValuePtr>
filterTenant(const std::vector<json::ValuePtr> &Decisions, bool HasTenant,
             uint32_t Tenant) {
  if (!HasTenant || !hasTenants(Decisions))
    return Decisions;
  std::vector<json::ValuePtr> Out;
  for (const json::ValuePtr &D : Decisions)
    if (D->get("tenant") &&
        static_cast<uint64_t>(D->num("tenant")) == Tenant)
      Out.push_back(D);
  return Out;
}

/// The label tag fleet benches give tenant rows ("s16/policy/tenant003").
std::string tenantTag(uint32_t Tenant) {
  char Buf[16];
  snprintf(Buf, sizeof(Buf), "tenant%03u", Tenant);
  return Buf;
}

/// Applies --tenant to a loaded run list: when the document carries
/// per-tenant rows, narrow to the asked-for tenant's. Documents without
/// any tenant rows (plain benches) pass through untouched -- there the
/// flag only means journal-record filtering.
void filterTenantRuns(std::vector<RunData> &Runs, const std::string &Path,
                      bool HasTenant, uint32_t Tenant) {
  if (!HasTenant)
    return;
  bool AnyTenantRow = false;
  for (const RunData &R : Runs)
    if (R.Label.find("tenant") != std::string::npos)
      AnyTenantRow = true;
  if (!AnyTenantRow)
    return;
  std::string Tag = tenantTag(Tenant);
  std::vector<RunData> Kept;
  for (RunData &R : Runs)
    if (R.Label.find(Tag) != std::string::npos)
      Kept.push_back(std::move(R));
  if (Kept.empty()) {
    fprintf(stderr, "error: no run in '%s' matches --tenant %u\n",
            Path.c_str(), Tenant);
    exit(2);
  }
  Runs = std::move(Kept);
}

void reportOneRun(const RunData &Run, size_t Top) {
  printf("== Run: %s ==\n", Run.Label.c_str());
  printCounters(Run, Top);
  printf("\n");
  printTimeline(Run.Decisions);
  printf("\n");
  printVerdicts(Run.Decisions);
  printTenantVerdicts(Run.Decisions);
  printBlacklist(Run.Decisions);
}

void reportDelta(const RunData &A, const RunData &B, size_t Top) {
  printf("== Delta: %s -> %s ==\n", A.Label.c_str(), B.Label.c_str());

  // Rank by relative change (largest movement first); counters present
  // on only one side rank ahead of everything.
  struct Row {
    std::string Name;
    uint64_t VA = 0, VB = 0;
    bool OnlyOne = false;
    double Rel = 0.0;
  };
  std::vector<Row> Rows;
  std::map<std::string, uint64_t> All = A.Counters;
  All.insert(B.Counters.begin(), B.Counters.end());
  for (const auto &[Name, Unused] : All) {
    (void)Unused;
    Row R;
    R.Name = Name;
    auto IA = A.Counters.find(Name), IB = B.Counters.find(Name);
    R.VA = IA != A.Counters.end() ? IA->second : 0;
    R.VB = IB != B.Counters.end() ? IB->second : 0;
    R.OnlyOne = IA == A.Counters.end() || IB == B.Counters.end();
    if (R.VA == R.VB && !R.OnlyOne)
      continue;
    double Base = R.VA ? static_cast<double>(R.VA) : 1.0;
    R.Rel = (static_cast<double>(R.VB) - static_cast<double>(R.VA)) / Base;
    Rows.push_back(std::move(R));
  }
  std::stable_sort(Rows.begin(), Rows.end(), [](const Row &X, const Row &Y) {
    if (X.OnlyOne != Y.OnlyOne)
      return X.OnlyOne;
    double AX = X.Rel < 0 ? -X.Rel : X.Rel;
    double AY = Y.Rel < 0 ? -Y.Rel : Y.Rel;
    return AX > AY;
  });

  TableWriter T({"counter", "a", "b", "delta", "rel"});
  for (size_t I = 0; I != Rows.size() && I != Top; ++I) {
    const Row &R = Rows[I];
    long long Delta =
        static_cast<long long>(R.VB) - static_cast<long long>(R.VA);
    char DeltaBuf[32], RelBuf[32];
    snprintf(DeltaBuf, sizeof(DeltaBuf), "%+lld", Delta);
    if (R.OnlyOne)
      snprintf(RelBuf, sizeof(RelBuf), "(one side)");
    else
      snprintf(RelBuf, sizeof(RelBuf), "%+.1f%%", R.Rel * 100.0);
    T.addRow({R.Name, formatCount(R.VA), formatCount(R.VB), DeltaBuf,
              RelBuf});
  }
  printf("Counters that moved (%zu of %zu changed):\n",
         std::min(Top, Rows.size()), Rows.size());
  T.print(stdout);

  printf("\n-- A: %s --\n", A.Label.c_str());
  printVerdicts(A.Decisions);
  printTenantVerdicts(A.Decisions);
  printBlacklist(A.Decisions);
  printf("\n-- B: %s --\n", B.Label.c_str());
  printVerdicts(B.Decisions);
  printTenantVerdicts(B.Decisions);
  printBlacklist(B.Decisions);
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  flags::ArgScanner S(Argc, Argv);
  std::string Value;
  uint64_t N = 0;
  while (S.next()) {
    if (S.take("--journal", Value))
      Opts.JournalPath = Value;
    else if (S.take("--journal-b", Value))
      Opts.JournalBPath = Value;
    else if (S.take("--run", Value))
      Opts.RunFilter = Value;
    else if (S.take("--verdicts", Value))
      Opts.VerdictsConsumer = Value;
    else if (S.takeUint("--top", 1u << 20, N)) {
      if (S.ok() && N == 0)
        usage("--top wants a positive integer");
      Opts.Top = N;
    } else if (S.takeUint("--tenant", kInvalidId - 1, N)) {
      Opts.HasTenant = true;
      Opts.Tenant = static_cast<uint32_t>(N);
    } else if (S.takeSwitch("--help") || S.takeSwitch("-h"))
      usage(nullptr);
    else if (S.arg()[0] == '-')
      usage((std::string("unknown flag '") + S.arg() + "'").c_str());
    else
      Opts.Inputs.push_back(S.arg());
  }
  if (!S.ok())
    exit(2);
  if (Opts.Inputs.size() > 2)
    usage("at most two run files");
  if (Opts.Inputs.empty() && Opts.JournalPath.empty())
    usage("nothing to report: give a run file or --journal");

  // Journal-only mode: a timeline straight off the JSONL file(s).
  if (Opts.Inputs.empty()) {
    std::vector<json::ValuePtr> A = filterTenant(
        filterConsumer(loadJournal(Opts.JournalPath), Opts.VerdictsConsumer),
        Opts.HasTenant, Opts.Tenant);
    printf("== Journal: %s ==\n", Opts.JournalPath.c_str());
    printTimeline(A);
    printf("\n");
    printVerdicts(A);
    printTenantVerdicts(A);
    printBlacklist(A);
    if (!Opts.JournalBPath.empty()) {
      std::vector<json::ValuePtr> B = filterTenant(
          filterConsumer(loadJournal(Opts.JournalBPath),
                         Opts.VerdictsConsumer),
          Opts.HasTenant, Opts.Tenant);
      printf("\n== Journal: %s ==\n", Opts.JournalBPath.c_str());
      printTimeline(B);
      printf("\n");
      printVerdicts(B);
      printTenantVerdicts(B);
      printBlacklist(B);
    }
    return 0;
  }

  std::vector<RunData> A = loadRuns(Opts.Inputs[0], Opts.RunFilter);
  filterTenantRuns(A, Opts.Inputs[0], Opts.HasTenant, Opts.Tenant);
  if (!Opts.JournalPath.empty()) {
    if (A.size() != 1)
      usage("--journal attaches to a single run; narrow with --run");
    A[0].Decisions = loadJournal(Opts.JournalPath);
  }
  for (RunData &R : A)
    R.Decisions = filterTenant(
        filterConsumer(R.Decisions, Opts.VerdictsConsumer), Opts.HasTenant,
        Opts.Tenant);

  if (Opts.Inputs.size() == 1) {
    for (size_t I = 0; I != A.size(); ++I) {
      if (I)
        printf("\n");
      reportOneRun(A[I], Opts.Top);
    }
    return 0;
  }

  std::vector<RunData> B = loadRuns(Opts.Inputs[1], Opts.RunFilter);
  filterTenantRuns(B, Opts.Inputs[1], Opts.HasTenant, Opts.Tenant);
  if (!Opts.JournalBPath.empty()) {
    if (B.size() != 1)
      usage("--journal-b attaches to a single run; narrow with --run");
    B[0].Decisions = loadJournal(Opts.JournalBPath);
  }
  for (RunData &R : B)
    R.Decisions = filterTenant(
        filterConsumer(R.Decisions, Opts.VerdictsConsumer), Opts.HasTenant,
        Opts.Tenant);

  // Pair runs by label; fall back to positional pairing when the label
  // sets are disjoint (e.g. comparing two different benches).
  size_t Paired = 0;
  for (const RunData &RA : A) {
    auto Match = std::find_if(B.begin(), B.end(), [&](const RunData &RB) {
      return RB.Label == RA.Label;
    });
    if (Match == B.end())
      continue;
    if (Paired)
      printf("\n");
    reportDelta(RA, *Match, Opts.Top);
    ++Paired;
  }
  if (!Paired) {
    for (size_t I = 0; I != A.size() && I != B.size(); ++I) {
      if (I)
        printf("\n");
      reportDelta(A[I], B[I], Opts.Top);
    }
    if (A.size() != B.size() || A.empty())
      fprintf(stderr, "note: no labels in common; paired positionally\n");
  }
  return 0;
}
