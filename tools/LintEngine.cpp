//===-- tools/LintEngine.cpp ----------------------------------------------===//

#include "LintEngine.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <set>

using namespace hpmvm;
using namespace hpmvm::lint;

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

namespace {

/// One lexical token. Comments vanish; string/char literals keep only
/// their inner text (so identifier rules never fire inside literals, and
/// literal rules never fire on code).
struct Tok {
  enum Kind { Ident, Str, Num, Punct };
  Kind K;
  std::string Text;
  unsigned Line;
};

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}
bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

/// Tokenizes \p Text. Line-aware, comment-aware, literal-aware; raw
/// strings and `#include` header-names are consumed without producing
/// identifier tokens. This is deliberately not a full C++ lexer -- just
/// enough fidelity that the rules below see code, and only code.
std::vector<Tok> lex(const std::string &Text) {
  std::vector<Tok> Toks;
  size_t I = 0, N = Text.size();
  unsigned Line = 1;
  bool AtLineStart = true;

  auto peek = [&](size_t Off) -> char {
    return I + Off < N ? Text[I + Off] : '\0';
  };

  while (I < N) {
    char C = Text[I];
    if (C == '\n') {
      ++Line;
      ++I;
      AtLineStart = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }

    // Preprocessor: only #include needs special handling (its <header>
    // operand would otherwise lex as identifiers); every other directive
    // body is scanned like code so a macro wrapping printf still trips R3.
    if (C == '#' && AtLineStart) {
      size_t J = I + 1;
      while (J < N && std::isspace(static_cast<unsigned char>(Text[J])) &&
             Text[J] != '\n')
        ++J;
      if (Text.compare(J, 7, "include") == 0) {
        while (I < N && Text[I] != '\n')
          ++I;
        continue;
      }
      ++I;
      AtLineStart = false;
      continue;
    }
    AtLineStart = false;

    // Comments.
    if (C == '/' && peek(1) == '/') {
      while (I < N && Text[I] != '\n')
        ++I;
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      I += 2;
      while (I < N && !(Text[I] == '*' && peek(1) == '/')) {
        if (Text[I] == '\n')
          ++Line;
        ++I;
      }
      I = std::min(I + 2, N);
      continue;
    }

    // String and character literals (with prefixes and raw strings).
    size_t LitStart = I;
    if (isIdentStart(C)) {
      size_t J = I;
      while (J < N && isIdentChar(Text[J]))
        ++J;
      std::string Word = Text.substr(I, J - I);
      bool RawPrefix = !Word.empty() && Word.back() == 'R';
      bool LitPrefix = Word == "u8" || Word == "u" || Word == "U" ||
                       Word == "L" || Word == "R" || Word == "u8R" ||
                       Word == "uR" || Word == "UR" || Word == "LR";
      if (LitPrefix && (peek(J - I) == '"' || peek(J - I) == '\'')) {
        I = J; // Fall through to the literal scan below.
        C = Text[I];
        if (RawPrefix && C == '"') {
          // Raw string: R"delim( ... )delim".
          size_t DStart = I + 1;
          size_t Paren = Text.find('(', DStart);
          if (Paren == std::string::npos) {
            ++I;
            continue;
          }
          std::string Close =
              ")" + Text.substr(DStart, Paren - DStart) + "\"";
          size_t End = Text.find(Close, Paren + 1);
          if (End == std::string::npos)
            End = N;
          std::string Inner = Text.substr(Paren + 1, End - Paren - 1);
          Toks.push_back({Tok::Str, Inner, Line});
          for (size_t K = LitStart; K < std::min(End + Close.size(), N); ++K)
            if (Text[K] == '\n')
              ++Line;
          I = std::min(End + Close.size(), N);
          continue;
        }
      } else {
        unsigned TokLine = Line;
        Toks.push_back({Tok::Ident, Word, TokLine});
        I = J;
        continue;
      }
    }

    if (C == '"' || C == '\'') {
      char Quote = C;
      size_t J = I + 1;
      std::string Inner;
      while (J < N && Text[J] != Quote) {
        if (Text[J] == '\\' && J + 1 < N) {
          Inner += Text[J];
          Inner += Text[J + 1];
          J += 2;
          continue;
        }
        if (Text[J] == '\n')
          ++Line; // Unterminated literal; keep line counts sane.
        Inner += Text[J];
        ++J;
      }
      if (Quote == '"')
        Toks.push_back({Tok::Str, Inner, Line});
      I = std::min(J + 1, N);
      continue;
    }

    // Numbers (incl. hex and digit separators -- 1'000 must not open a
    // character literal).
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t J = I;
      while (J < N && (isIdentChar(Text[J]) || Text[J] == '\'' ||
                       Text[J] == '.'))
        ++J;
      Toks.push_back({Tok::Num, Text.substr(I, J - I), Line});
      I = J;
      continue;
    }

    // Punctuation; :: and -> matter to the rules, so keep them whole.
    if (C == ':' && peek(1) == ':') {
      Toks.push_back({Tok::Punct, "::", Line});
      I += 2;
      continue;
    }
    if (C == '-' && peek(1) == '>') {
      Toks.push_back({Tok::Punct, "->", Line});
      I += 2;
      continue;
    }
    Toks.push_back({Tok::Punct, std::string(1, C), Line});
    ++I;
  }
  return Toks;
}

//===----------------------------------------------------------------------===//
// Path scoping
//===----------------------------------------------------------------------===//

std::string normalize(const std::string &Path) {
  std::string P = Path;
  std::replace(P.begin(), P.end(), '\\', '/');
  return P;
}

/// True when \p Path lives under directory \p Dir ("src/obs", "bench").
bool inDir(const std::string &Path, const std::string &Dir) {
  std::string P = normalize(Path);
  if (P.rfind(Dir + "/", 0) == 0)
    return true;
  return P.find("/" + Dir + "/") != std::string::npos;
}

/// True when \p Path names file \p Stem with any extension, e.g.
/// stem "src/obs/Log" matches ".../src/obs/Log.cpp" and "src/obs/Log.h".
bool isFileStem(const std::string &Path, const std::string &Stem) {
  std::string P = normalize(Path);
  size_t Pos = P.rfind(Stem + ".");
  if (Pos == std::string::npos)
    return false;
  return Pos == 0 || P[Pos - 1] == '/';
}

//===----------------------------------------------------------------------===//
// Token-stream helpers
//===----------------------------------------------------------------------===//

bool hasIdent(const std::vector<Tok> &Toks, const std::string &Name) {
  for (const Tok &T : Toks)
    if (T.K == Tok::Ident && T.Text == Name)
      return true;
  return false;
}

/// True when identifier sequence A :: B appears anywhere.
bool hasQualified(const std::vector<Tok> &Toks, const std::string &A,
                  const std::string &B) {
  for (size_t I = 0; I + 2 < Toks.size(); ++I)
    if (Toks[I].K == Tok::Ident && Toks[I].Text == A &&
        Toks[I + 1].K == Tok::Punct && Toks[I + 1].Text == "::" &&
        Toks[I + 2].K == Tok::Ident && Toks[I + 2].Text == B)
      return true;
  return false;
}

void addFinding(std::vector<Finding> &Out, const std::string &Path,
                unsigned Line, const char *Rule, std::string Message) {
  Out.push_back({Path, Line, Rule, std::move(Message), false});
}

//===----------------------------------------------------------------------===//
// R1: wall clocks and ambient randomness
//===----------------------------------------------------------------------===//

void checkR1(const std::string &Path, const std::vector<Tok> &Toks,
             std::vector<Finding> &Out) {
  // Identifiers that are nondeterministic wherever they appear.
  static const std::set<std::string> BannedIdents = {
      "system_clock",    "steady_clock", "high_resolution_clock",
      "random_device",   "mt19937",      "mt19937_64",
      "default_random_engine",           "gettimeofday",
      "clock_gettime",   "localtime",    "gmtime",
      "strftime",        "drand48",      "rdtsc",
      "__rdtsc",         "__builtin_ia32_rdtsc"};
  // Libc calls banned only as free-function calls: `X.rand()` is the VM's
  // seeded bytecode op, `Vm.clock()` the virtual clock accessor -- member
  // access and non-std qualification stay legal.
  static const std::set<std::string> BannedCalls = {"rand",  "srand", "time",
                                                    "clock", "random"};

  for (size_t I = 0; I != Toks.size(); ++I) {
    const Tok &T = Toks[I];
    if (T.K != Tok::Ident)
      continue;
    if (BannedIdents.count(T.Text)) {
      addFinding(Out, Path, T.Line, "R1",
                 "nondeterministic time/randomness source '" + T.Text +
                     "'; use the virtual clock or a seeded SplitMix64");
      continue;
    }
    if (!BannedCalls.count(T.Text))
      continue;
    if (I + 1 >= Toks.size() || Toks[I + 1].Text != "(")
      continue;
    if (I > 0) {
      const Tok &Prev = Toks[I - 1];
      // Member access / address-of declarations / non-std qualification.
      if (Prev.Text == "." || Prev.Text == "->" || Prev.Text == "&" ||
          Prev.Text == "*")
        continue;
      if (Prev.Text == "::" &&
          !(I >= 2 && Toks[I - 2].K == Tok::Ident && Toks[I - 2].Text == "std"))
        continue;
    }
    addFinding(Out, Path, T.Line, "R1",
               "call to '" + T.Text +
                   "()' is nondeterministic; use the virtual clock or a "
                   "seeded SplitMix64");
  }
}

//===----------------------------------------------------------------------===//
// R2/R4 shared scope: files that write exports, journals, or tables
//===----------------------------------------------------------------------===//

bool onExportPath(const std::string &Path, const std::vector<Tok> &Toks) {
  if (inDir(Path, "src/obs") || inDir(Path, "src/harness") ||
      inDir(Path, "bench") || inDir(Path, "tools") ||
      isFileStem(Path, "src/support/TableWriter"))
    return true;
  // Content scope: anything touching the journal or a table/JSON writer
  // is on an export path no matter where it lives (the core consumers
  // journal their decisions).
  static const std::set<std::string> Markers = {
      "DecisionJournal", "TableWriter", "writeJson", "writeSuiteJsonFile",
      "writeRunsJsonFile"};
  for (const Tok &T : Toks)
    if (T.K == Tok::Ident && Markers.count(T.Text))
      return true;
  return false;
}

void checkR2(const std::string &Path, const std::vector<Tok> &Toks,
             std::vector<Finding> &Out) {
  if (!onExportPath(Path, Toks))
    return;
  for (const Tok &T : Toks) {
    if (T.K != Tok::Ident)
      continue;
    if (T.Text == "unordered_map" || T.Text == "unordered_set")
      addFinding(Out, Path, T.Line, "R2",
                 "'" + T.Text +
                     "' in an export-writing file; hash-iteration order can "
                     "leak into output -- use sorted emission or a "
                     "dense/ordered container");
  }
}

//===----------------------------------------------------------------------===//
// R3: raw console output
//===----------------------------------------------------------------------===//

bool r3Allowlisted(const std::string &Path) {
  // Bench and tool binaries are the user interface; the Log sink, the
  // table writer, and the flag parser are the sanctioned output layers.
  return inDir(Path, "bench") || inDir(Path, "tools") ||
         isFileStem(Path, "src/obs/Log") ||
         isFileStem(Path, "src/support/TableWriter") ||
         isFileStem(Path, "src/support/Flags");
}

void checkR3(const std::string &Path, const std::vector<Tok> &Toks,
             std::vector<Finding> &Out) {
  if (r3Allowlisted(Path))
    return;
  static const std::set<std::string> PrintCalls = {"printf", "vprintf",
                                                   "puts", "putchar"};
  for (size_t I = 0; I != Toks.size(); ++I) {
    const Tok &T = Toks[I];
    if (T.K != Tok::Ident)
      continue;
    if (T.Text == "cout" || T.Text == "cerr") {
      addFinding(Out, Path, T.Line, "R3",
                 "raw std::" + T.Text +
                     " output; route diagnostics through obs/Log and data "
                     "through TableWriter/JSON exporters");
      continue;
    }
    bool IsPlainPrint = PrintCalls.count(T.Text) != 0;
    bool IsFPrint = T.Text == "fprintf" || T.Text == "vfprintf";
    if (!IsPlainPrint && !IsFPrint)
      continue;
    if (I + 1 >= Toks.size() || Toks[I + 1].Text != "(")
      continue;
    if (I > 0 && (Toks[I - 1].Text == "." || Toks[I - 1].Text == "->"))
      continue; // A method that happens to share the name.
    if (IsFPrint) {
      // fprintf to an explicitly opened FILE* is the export path and is
      // fine; only the console streams are rule violations.
      if (I + 2 < Toks.size() && Toks[I + 2].K == Tok::Ident &&
          (Toks[I + 2].Text == "stderr" || Toks[I + 2].Text == "stdout"))
        addFinding(Out, Path, T.Line, "R3",
                   "raw " + T.Text + "(" + Toks[I + 2].Text +
                       ", ...); route diagnostics through obs/Log");
      continue;
    }
    addFinding(Out, Path, T.Line, "R3",
               "raw " + T.Text +
                   "() output; route diagnostics through obs/Log and data "
                   "through TableWriter/JSON exporters");
  }
}

//===----------------------------------------------------------------------===//
// R4: pointer-keyed containers and pointer-value formatting on export paths
//===----------------------------------------------------------------------===//

void checkR4(const std::string &Path, const std::vector<Tok> &Toks,
             std::vector<Finding> &Out) {
  if (!onExportPath(Path, Toks))
    return;
  static const std::set<std::string> Containers = {
      "map", "multimap", "set", "multiset", "unordered_map",
      "unordered_set"};
  for (size_t I = 0; I != Toks.size(); ++I) {
    const Tok &T = Toks[I];
    if (T.K == Tok::Str) {
      // Pointer-value format specifier inside a literal: addresses are
      // ASLR-dependent, so they must never reach exported bytes.
      const std::string &S = T.Text;
      for (size_t C = 0; C + 1 < S.size(); ++C) {
        if (S[C] != '%' || S[C + 1] != 'p')
          continue;
        if (C + 2 < S.size() &&
            std::isalnum(static_cast<unsigned char>(S[C + 2])))
          continue; // "%pa..." style false positives ("50%passed").
        addFinding(Out, Path, T.Line, "R4",
                   "pointer-value format specifier in an export-writing "
                   "file; print a stable id, not an address");
        break;
      }
      continue;
    }
    if (T.K != Tok::Ident || !Containers.count(T.Text))
      continue;
    if (I + 1 >= Toks.size() || Toks[I + 1].Text != "<")
      continue;
    // Scan the first template argument (to the top-level comma or the
    // matching close); a '*' there means pointer keys, whose ordering is
    // the allocator's business, not the run's.
    int Depth = 1;
    bool PointerKey = false;
    for (size_t J = I + 2; J < Toks.size() && J < I + 64; ++J) {
      const std::string &P = Toks[J].Text;
      if (P == "<")
        ++Depth;
      else if (P == ">") {
        if (--Depth == 0)
          break;
      } else if (P == "," && Depth == 1)
        break;
      else if (P == "*")
        PointerKey = true;
      else if (P == ";" || P == "{" || P == ")")
        break; // Not a template after all (comparison expression).
    }
    if (PointerKey)
      addFinding(Out, Path, T.Line, "R4",
                 "pointer-keyed '" + T.Text +
                     "' in an export-writing file; key by a stable id "
                     "(MethodId/FieldId/ClassId), not an address");
  }
}

//===----------------------------------------------------------------------===//
// R5: bench/tool mains must validate flags via ArgScanner
//===----------------------------------------------------------------------===//

void checkR5(const std::string &Path, const std::vector<Tok> &Toks,
             std::vector<Finding> &Out) {
  if (!inDir(Path, "bench") && !inDir(Path, "tools"))
    return;
  for (size_t I = 0; I + 2 < Toks.size(); ++I) {
    if (Toks[I].K != Tok::Ident || Toks[I].Text != "int" ||
        Toks[I + 1].K != Tok::Ident || Toks[I + 1].Text != "main" ||
        Toks[I + 2].Text != "(")
      continue;
    if (hasIdent(Toks, "ArgScanner") || hasQualified(Toks, "bench", "init"))
      return;
    addFinding(Out, Path, Toks[I + 1].Line, "R5",
               "bench/tool main() must validate flags via flags::ArgScanner "
               "(directly or through bench::init) and exit 2 on unknown "
               "flags");
    return;
  }
}

//===----------------------------------------------------------------------===//
// R6: --*-out path flags go through ensureParentDir
//===----------------------------------------------------------------------===//

bool isOutFlagLiteral(const std::string &S) {
  if (S.size() < 7 || S.compare(0, 2, "--") != 0)
    return false;
  if (S.compare(S.size() - 4, 4, "-out") != 0)
    return false;
  for (size_t I = 2; I != S.size(); ++I) {
    char C = S[I];
    if (!std::islower(static_cast<unsigned char>(C)) &&
        !std::isdigit(static_cast<unsigned char>(C)) && C != '-')
      return false;
  }
  return true;
}

void checkR6(const std::string &Path, const std::vector<Tok> &Toks,
             std::vector<Finding> &Out) {
  bool HasHelper = hasIdent(Toks, "ensureParentDir");
  for (const Tok &T : Toks) {
    if (T.K != Tok::Str || !isOutFlagLiteral(T.Text))
      continue;
    if (HasHelper)
      return; // The file wires its out-paths through the shared helper.
    addFinding(Out, Path, T.Line, "R6",
               "output-path flag '" + T.Text +
                   "' must go through the shared ensureParentDir "
                   "mkdir-or-exit-2 helper before use");
  }
}

//===----------------------------------------------------------------------===//
// R7: std::string members/params on the memsim / sample-consumer hot paths
//===----------------------------------------------------------------------===//

/// R7 scopes on the RAW text, not tokens: the lexer swallows #include
/// lines, but inclusion is exactly the signal -- any file that pulls in the
/// memsim headers or the sample-consumer interface sits on a per-access /
/// per-sample hot path where std::string members and parameters mean
/// heap-allocating label plumbing. Labels there are interned const char*
/// (support/StringInterner) or numeric ids.
bool r7InScope(const std::string &Text) {
  return Text.find("#include \"memsim/") != std::string::npos ||
         Text.find("#include \"core/SampleConsumer.h\"") !=
             std::string::npos;
}

void checkR7(const std::string &Path, const std::string &Text,
             const std::vector<Tok> &Toks, std::vector<Finding> &Out) {
  if (!r7InScope(Text))
    return;
  // Brace-scope tracker, just precise enough to tell declarations from
  // code: members are std::string at class scope outside parens, params
  // are std::string inside parens at declaration scope (file, namespace,
  // class). Anything inside a function body -- locals, temporaries,
  // lambda params -- is the function's own business and stays legal.
  enum Scope { File, Namespace, Class, Function, Other };
  std::vector<Scope> Stack;
  int ParenDepth = 0;
  bool PendingClass = false, PendingNamespace = false, PendingEnum = false;
  bool SeenParenClose = false; // A ')' since the last ';'/'{'/'}'.
  unsigned LastFlagged = 0;
  for (size_t I = 0; I != Toks.size(); ++I) {
    const Tok &T = Toks[I];
    if (T.K == Tok::Ident) {
      if (T.Text == "enum") {
        PendingEnum = true;
      } else if (T.Text == "class" || T.Text == "struct" ||
                 T.Text == "union") {
        // `template <class T>` introduces a type parameter, not a class
        // head; the keyword there follows '<' or ','.
        bool TemplateParam =
            I > 0 && (Toks[I - 1].Text == "<" || Toks[I - 1].Text == ",");
        if (!PendingEnum && !TemplateParam)
          PendingClass = true;
      } else if (T.Text == "namespace") {
        PendingNamespace = true;
      } else if (T.Text == "std" && I + 2 < Toks.size() &&
                 Toks[I + 1].Text == "::" &&
                 Toks[I + 2].K == Tok::Ident &&
                 Toks[I + 2].Text == "string") {
        Scope S = Stack.empty() ? File : Stack.back();
        bool Member = S == Class && ParenDepth == 0;
        bool Param = ParenDepth > 0 &&
                     (S == File || S == Namespace || S == Class);
        if ((Member || Param) && T.Line != LastFlagged) {
          addFinding(Out, Path, T.Line, "R7",
                     std::string("std::string ") +
                         (Member ? "member" : "parameter") +
                         " in a memsim/sample-consumer hot-path file; "
                         "use an interned const char* label or a numeric "
                         "id (support/StringInterner)");
          LastFlagged = T.Line;
        }
      }
      continue;
    }
    if (T.K != Tok::Punct)
      continue;
    const std::string &P = T.Text;
    if (P == "(") {
      ++ParenDepth;
    } else if (P == ")") {
      if (ParenDepth)
        --ParenDepth;
      SeenParenClose = true;
    } else if (P == ";") {
      PendingClass = PendingNamespace = PendingEnum = false;
      SeenParenClose = false;
    } else if (P == "{") {
      Scope S = Other;
      if (PendingEnum)
        S = Other; // enum bodies hold no declarations R7 cares about.
      else if (PendingClass)
        S = Class;
      else if (PendingNamespace)
        S = Namespace;
      else if (SeenParenClose)
        S = Function;
      Stack.push_back(S);
      PendingClass = PendingNamespace = PendingEnum = false;
      SeenParenClose = false;
    } else if (P == "}") {
      if (!Stack.empty())
        Stack.pop_back();
      SeenParenClose = false;
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Public API
//===----------------------------------------------------------------------===//

const std::vector<RuleInfo> &lint::rules() {
  static const std::vector<RuleInfo> Rules = {
      {"R1", "no wall-clock or ambient randomness; virtual clock + seeded "
             "SplitMix64 only"},
      {"R2", "no unordered containers in export-writing files (iteration "
             "order leaks into output)"},
      {"R3", "no raw console output outside obs/Log, TableWriter, Flags, "
             "and bench/tool binaries"},
      {"R4", "no pointer-keyed containers or pointer-value formatting on "
             "export paths"},
      {"R5", "bench/tool mains validate flags via flags::ArgScanner and "
             "exit 2 on unknown flags"},
      {"R6", "every --*-out path flag goes through the shared "
             "ensureParentDir helper"},
      {"R7", "no std::string members or parameters in files on the "
             "memsim / sample-consumer hot paths; intern labels"},
  };
  return Rules;
}

bool lint::isKnownRule(const std::string &Rule) {
  for (const RuleInfo &R : rules())
    if (Rule == R.Id)
      return true;
  return false;
}

std::vector<Finding> lint::lintSource(const std::string &Path,
                                      const std::string &Text) {
  std::vector<Tok> Toks = lex(Text);
  std::vector<Finding> Out;
  checkR1(Path, Toks, Out);
  checkR2(Path, Toks, Out);
  checkR3(Path, Toks, Out);
  checkR4(Path, Toks, Out);
  checkR5(Path, Toks, Out);
  checkR6(Path, Toks, Out);
  checkR7(Path, Text, Toks, Out);
  std::stable_sort(Out.begin(), Out.end(),
                   [](const Finding &A, const Finding &B) {
                     if (A.Line != B.Line)
                       return A.Line < B.Line;
                     return A.Rule < B.Rule;
                   });
  return Out;
}

bool lint::collectFiles(const std::string &Root,
                        std::vector<std::string> &Out, std::string &Error) {
  namespace fs = std::filesystem;
  auto lintable = [](const fs::path &P) {
    std::string Ext = P.extension().string();
    return Ext == ".h" || Ext == ".hpp" || Ext == ".cpp" || Ext == ".cc" ||
           Ext == ".cxx";
  };

  std::error_code Ec;
  fs::file_status St = fs::status(Root, Ec);
  if (Ec || !fs::exists(St)) {
    Error = "scan root '" + Root + "' does not exist";
    return false;
  }
  if (fs::is_regular_file(St)) {
    if (!lintable(Root)) {
      Error = "'" + Root + "' is not a lintable C++ source file";
      return false;
    }
    Out.push_back(Root);
    return true;
  }

  size_t Before = Out.size();
  fs::recursive_directory_iterator It(Root, Ec), End;
  if (Ec) {
    Error = "cannot read scan root '" + Root + "': " + Ec.message();
    return false;
  }
  for (; It != End; It.increment(Ec)) {
    if (Ec) {
      Error = "error walking '" + Root + "': " + Ec.message();
      return false;
    }
    const fs::path &P = It->path();
    std::string Name = P.filename().string();
    if (It->is_directory()) {
      // Build trees, VCS metadata, and the linter's own deliberately
      // violating fixture corpus are never part of the scan.
      bool IsFixtures =
          Name == "fixtures" && P.parent_path().filename() == "lint";
      if (Name.rfind("build", 0) == 0 || Name == ".git" || IsFixtures)
        It.disable_recursion_pending();
      continue;
    }
    if (It->is_regular_file() && lintable(P))
      Out.push_back(P.generic_string());
  }
  if (Out.size() == Before) {
    Error = "scan root '" + Root +
            "' contains no lintable files (.h/.hpp/.cpp/.cc/.cxx)";
    return false;
  }
  std::sort(Out.begin() + static_cast<long>(Before), Out.end());
  return true;
}

SuppFile lint::parseSuppressions(const std::string &Text) {
  SuppFile Result;
  bool PendingWhy = false;
  unsigned LineNo = 0;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    std::string Raw = Text.substr(
        Pos, Nl == std::string::npos ? std::string::npos : Nl - Pos);
    ++LineNo;
    Pos = Nl == std::string::npos ? Text.size() + 1 : Nl + 1;

    // Trim.
    size_t B = Raw.find_first_not_of(" \t\r");
    size_t E = Raw.find_last_not_of(" \t\r");
    std::string L =
        B == std::string::npos ? std::string() : Raw.substr(B, E - B + 1);

    if (L.empty()) {
      // A blank line ends the justification block: "# Why:" must sit
      // directly above the entries it justifies.
      PendingWhy = false;
      continue;
    }
    if (L[0] == '#') {
      if (L.find("Why:") != std::string::npos)
        PendingWhy = true;
      continue;
    }

    // Entry: "<rule> <path>[:line]".
    size_t Sp = L.find_first_of(" \t");
    if (Sp == std::string::npos) {
      Result.Errors.push_back("lint.supp:" + std::to_string(LineNo) +
                              ": malformed entry '" + L +
                              "' (want '<rule> <path>[:line]')");
      continue;
    }
    SuppEntry Entry;
    Entry.Rule = L.substr(0, Sp);
    size_t RestPos = L.find_first_not_of(" \t", Sp);
    if (RestPos == std::string::npos) {
      Result.Errors.push_back("lint.supp:" + std::to_string(LineNo) +
                              ": malformed entry '" + L +
                              "' (want '<rule> <path>[:line]')");
      continue;
    }
    std::string Rest = L.substr(RestPos);
    if (!isKnownRule(Entry.Rule)) {
      Result.Errors.push_back("lint.supp:" + std::to_string(LineNo) +
                              ": unknown rule '" + Entry.Rule + "'");
      continue;
    }
    size_t Colon = Rest.rfind(':');
    if (Colon != std::string::npos && Colon + 1 < Rest.size() &&
        Rest.find_first_not_of("0123456789", Colon + 1) ==
            std::string::npos) {
      Entry.Line =
          static_cast<unsigned>(std::stoul(Rest.substr(Colon + 1)));
      Rest = Rest.substr(0, Colon);
    }
    Entry.PathSuffix = normalize(Rest);
    Entry.SuppLine = LineNo;
    Entry.Justified = PendingWhy;
    if (!Entry.Justified)
      Result.Errors.push_back(
          "lint.supp:" + std::to_string(LineNo) + ": entry '" + L +
          "' lacks a '# Why:' justification comment directly above it");
    Result.Entries.push_back(Entry);
  }
  return Result;
}

void lint::applySuppressions(std::vector<Finding> &Findings,
                             SuppFile &Supp) {
  for (Finding &F : Findings) {
    std::string Path = normalize(F.File);
    for (SuppEntry &E : Supp.Entries) {
      if (E.Rule != F.Rule)
        continue;
      if (Path.size() < E.PathSuffix.size())
        continue;
      size_t Off = Path.size() - E.PathSuffix.size();
      if (Path.compare(Off, std::string::npos, E.PathSuffix) != 0)
        continue;
      if (Off != 0 && Path[Off - 1] != '/')
        continue; // Suffix must start at a path-component boundary.
      if (E.Line != 0 && E.Line != F.Line)
        continue;
      F.Suppressed = true;
      E.Used = true;
    }
  }
}
