//===-- tools/LintEngine.h - hpmvm determinism/conventions linter -*-C++-*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rule engine behind the `hpmvm_lint` tool (DESIGN.md section 14): a
/// comment/string-aware token scanner that enforces the repo's determinism
/// and observability conventions as named, suppressible rules. Every
/// figure, table, and journal this repo emits must be byte-identical
/// across `--jobs` and across refactors; these rules reject the usual
/// nondeterminism sources (wall-clock reads, unordered-container
/// iteration feeding exports, unseeded randomness, pointer-value output)
/// at build time instead of leaving them for the CI `cmp` gates to catch
/// after the fact.
///
/// Rule catalog:
///   R1  no wall-clock or ambient randomness (std::chrono system/steady
///       clocks, rand, random_device, time(), ...); SplitMix64 with an
///       explicit seed is the sanctioned RNG
///   R2  no unordered_map/unordered_set in export-writing files, where
///       hash-iteration order can leak into user-visible output
///   R3  no raw console output (printf, std::cout/cerr, fprintf to
///       stdout/stderr) outside the obs Log, TableWriter, Flags, and
///       bench/tool mains; fprintf to an explicitly opened FILE* (the
///       export writers) is allowed
///   R4  no pointer-keyed containers or pointer-value format specifiers
///       on export paths (addresses differ run to run under ASLR)
///   R5  every bench/tool main validates flags through flags::ArgScanner
///       (directly or via bench::init) so unknown flags exit 2
///   R6  every "--*-out" path flag goes through the shared
///       ensureParentDir mkdir-or-exit-2 helper
///   R7  no std::string members or parameters in files on the memsim or
///       sample-consumer hot paths (raw text includes "memsim/" headers
///       or "core/SampleConsumer.h"); labels there are interned
///       const char* or numeric ids, so per-access/per-sample code never
///       allocates for a name (locals stay legal)
///
/// Findings print as `file:line: ruleId: message`. Suppressions live in a
/// checked-in `lint.supp`; every entry must carry a `# Why:` justification
/// comment or the file is rejected (exit 2 in the tool).
///
/// The engine is deliberately self-contained (no libclang): a lexer plus
/// token-pattern rules is enough for conventions of this shape, builds in
/// milliseconds, and keeps the gate runnable everywhere the repo builds.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_TOOLS_LINTENGINE_H
#define HPMVM_TOOLS_LINTENGINE_H

#include <string>
#include <vector>

namespace hpmvm::lint {

/// One rule violation at a source location.
struct Finding {
  std::string File;    ///< Path as scanned (relative to the scan cwd).
  unsigned Line = 0;   ///< 1-based line of the offending token.
  std::string Rule;    ///< "R1".."R6".
  std::string Message; ///< Human-readable explanation.
  bool Suppressed = false; ///< Matched a lint.supp entry.
};

/// Rule metadata for --list-rules and the docs.
struct RuleInfo {
  const char *Id;
  const char *Summary;
};

/// The full catalog, in rule order.
const std::vector<RuleInfo> &rules();

/// True when \p Rule is a known rule id ("R1".."R7").
bool isKnownRule(const std::string &Rule);

/// Lints one translation unit. \p Path decides path-scoped rules (R2/R3/
/// R4 scope, R5's bench/tool restriction), so callers may pass a virtual
/// path for in-memory sources (the fixture tests do). Findings come back
/// ordered by line.
std::vector<Finding> lintSource(const std::string &Path,
                                const std::string &Text);

/// Recursively collects lintable files (.h/.hpp/.cpp/.cc/.cxx) under
/// \p Root into \p Out, skipping build trees (any directory whose name
/// starts with "build"), VCS metadata, and the linter's own violation
/// corpus (tests/lint/fixtures). \p Root may also be a single file.
/// \returns false with \p Error set when the root does not exist or
/// contains nothing lintable -- a scan over zero files looks exactly like
/// a clean scan, so it must be a hard error.
bool collectFiles(const std::string &Root, std::vector<std::string> &Out,
                  std::string &Error);

/// One parsed suppression entry:
///   # Why: <justification for the exemption>
///   R1 src/obs/SelfProfiler.h[:line]
struct SuppEntry {
  std::string Rule;       ///< Rule id the entry silences.
  std::string PathSuffix; ///< Path, matched as a whole-component suffix.
  unsigned Line = 0;      ///< Optional source line (0 = whole file).
  unsigned SuppLine = 0;  ///< Line in the suppression file (diagnostics).
  bool Justified = false; ///< A "# Why:" comment directly precedes it.
  bool Used = false;      ///< Matched at least one finding this scan.
};

/// Parse result for a suppression file. Malformed lines and entries
/// without a justification land in Errors; an entry list with any error
/// must be rejected by the caller.
struct SuppFile {
  std::vector<SuppEntry> Entries;
  std::vector<std::string> Errors;
};

/// Parses suppression text (see SuppEntry for the format). Blank lines
/// reset the pending justification, so the "# Why:" comment must sit
/// directly above the entries it covers.
SuppFile parseSuppressions(const std::string &Text);

/// Marks findings matched by \p Supp as suppressed and the matching
/// entries as used.
void applySuppressions(std::vector<Finding> &Findings, SuppFile &Supp);

} // namespace hpmvm::lint

#endif // HPMVM_TOOLS_LINTENGINE_H
