#!/usr/bin/env bash
#===-- scripts/lint.sh - Run the full static-analysis gate locally -------===//
#
# Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
#
# Runs exactly what CI's `lint` job runs, in the same order and with the
# same arguments, so a clean `scripts/lint.sh` means a green lint gate:
#
#   1. Build hpmvm_lint and run it over src/ bench/ tools/ tests/ with the
#      checked-in suppression file and --error-on-new (exit 1 on findings).
#   2. Validate lint.supp hygiene: every entry must carry a "# Why:"
#      justification (--check-supp, exit 2 on violations).
#   3. If clang-tidy is installed, run it over the compilation database
#      (CMAKE_EXPORT_COMPILE_COMMANDS is on by default); otherwise skip
#      with a notice -- the container image ships only gcc, CI has both.
#
# Usage: scripts/lint.sh [build-dir]   (default: build)
#
#===----------------------------------------------------------------------===//

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"

cd "$REPO_ROOT"

echo "== hpmvm_lint =="
cmake -B "$BUILD_DIR" -S "$REPO_ROOT" >/dev/null
cmake --build "$BUILD_DIR" --target hpmvm_lint -j >/dev/null
"$BUILD_DIR/tools/hpmvm_lint" --supp lint.supp --error-on-new \
    src bench tools tests

echo "== lint.supp hygiene =="
"$BUILD_DIR/tools/hpmvm_lint" --check-supp lint.supp

echo "== clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  # The compile_commands.json lives in the build tree; -p points clang-tidy
  # at it. Checks and severities come from the checked-in .clang-tidy.
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "$BUILD_DIR" -quiet "$REPO_ROOT/src" \
        "$REPO_ROOT/bench" "$REPO_ROOT/tools"
  else
    # Fallback without the parallel driver: lint the library sources.
    find src bench tools -name '*.cpp' -print0 |
      xargs -0 clang-tidy -p "$BUILD_DIR" --quiet
  fi
else
  echo "clang-tidy not installed; skipping (CI runs it)."
fi

echo "lint.sh: all gates passed."
