//===-- tests/harness/SuiteTest.cpp ---------------------------------------===//
//
// The declarative grid layer: expansion order, labels, per-rep seeds,
// filtering, and export-path uniquification. Everything here is pure
// (no experiment executes), so it pins the contract the parallel runner
// relies on: grid index == position in expansion order, always.
//
//===----------------------------------------------------------------------===//

#include "harness/Suite.h"

#include "support/Json.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

SuiteSpec fullSpec() {
  SuiteSpec S;
  S.Workloads = {"db", "compress"};
  S.HeapFactors = {1.0, 1.5};
  S.Collectors = {CollectorKind::GenMS, CollectorKind::GenCopy};
  S.Variants = {{"base", nullptr},
                {"opt", [](RunConfig &C) { C.Monitoring = true; }}};
  S.Repeat = 2;
  S.Params.Seed = 100;
  return S;
}

TEST(Suite, ExpansionIsRowMajorWorkloadOutermostRepInnermost) {
  SuiteSpec S = fullSpec();
  std::vector<SuiteRun> Runs = expandSuite(S);
  ASSERT_EQ(Runs.size(), S.numCells());
  ASSERT_EQ(Runs.size(), 2u * 2 * 2 * 2 * 2);

  size_t I = 0;
  for (size_t W = 0; W != 2; ++W)
    for (size_t H = 0; H != 2; ++H)
      for (size_t C = 0; C != 2; ++C)
        for (size_t V = 0; V != 2; ++V)
          for (size_t Rep = 0; Rep != 2; ++Rep, ++I) {
            EXPECT_EQ(Runs[I].Index, I);
            EXPECT_EQ(S.indexOf(W, H, C, V, Rep), I);
            EXPECT_EQ(Runs[I].W, W);
            EXPECT_EQ(Runs[I].H, H);
            EXPECT_EQ(Runs[I].C, C);
            EXPECT_EQ(Runs[I].V, V);
            EXPECT_EQ(Runs[I].Rep, Rep);
            EXPECT_EQ(Runs[I].Config.Workload, S.Workloads[W]);
            EXPECT_EQ(Runs[I].Config.HeapFactor, S.HeapFactors[H]);
            EXPECT_EQ(Runs[I].Config.Collector, S.Collectors[C]);
            EXPECT_EQ(Runs[I].Config.Monitoring, V == 1);
          }
}

TEST(Suite, RepetitionSeedsAreBasePlusRep) {
  SuiteSpec S = fullSpec();
  for (const SuiteRun &Run : expandSuite(S))
    EXPECT_EQ(Run.Config.Params.Seed, 100u + Run.Rep)
        << "run " << Run.Label;
}

TEST(Suite, LabelsNameEveryMultiLevelAxis) {
  std::vector<SuiteRun> Runs = expandSuite(fullSpec());
  EXPECT_EQ(Runs.front().Label, "db/1x/GenMS/base/rep0");
  EXPECT_EQ(Runs.back().Label, "compress/1.5x/GenCopy/opt/rep1");
}

TEST(Suite, LabelsOmitSingletonAxes) {
  SuiteSpec S;
  S.Workloads = {"db"};
  std::vector<SuiteRun> Runs = expandSuite(S);
  ASSERT_EQ(Runs.size(), 1u);
  EXPECT_EQ(Runs[0].Label, "db");
}

TEST(Suite, CommonRunsBeforeTheVariant) {
  SuiteSpec S;
  S.Workloads = {"db"};
  S.Common = [](RunConfig &C) {
    C.Monitoring = true;
    C.Monitor.SamplingInterval = 1111;
  };
  S.Variants = {{"keep", nullptr},
                {"override",
                 [](RunConfig &C) {
                   EXPECT_TRUE(C.Monitoring) << "variant must see Common";
                   C.Monitor.SamplingInterval = 2222;
                 }}};
  std::vector<SuiteRun> Runs = expandSuite(S);
  ASSERT_EQ(Runs.size(), 2u);
  EXPECT_EQ(Runs[0].Config.Monitor.SamplingInterval, 1111u);
  EXPECT_EQ(Runs[1].Config.Monitor.SamplingInterval, 2222u);
}

TEST(Suite, FilterIsSubstringAndEmptyMatchesAll) {
  EXPECT_TRUE(suiteFilterMatches("", "db/1x/base"));
  EXPECT_TRUE(suiteFilterMatches("db", "db/1x/base"));
  EXPECT_TRUE(suiteFilterMatches("1x/base", "db/1x/base"));
  EXPECT_FALSE(suiteFilterMatches("coalloc", "db/1x/base"));
}

TEST(Suite, UniquifyInsertsRunTagBeforeTheExtension) {
  ObsConfig C;
  C.MetricsOutPath = "out/fig5.metrics.json";
  C.TraceOutPath = "fig5.trace.json";
  C.JournalOutPath = "fig5.journal.jsonl";
  ObsConfig U = uniquifySuiteObsPaths(C, 7);
  EXPECT_EQ(U.MetricsOutPath, "out/fig5.metrics.run007.json");
  EXPECT_EQ(U.TraceOutPath, "fig5.trace.run007.json");
  EXPECT_EQ(U.JournalOutPath, "fig5.journal.run007.jsonl");
}

TEST(Suite, UniquifyAppendsWhenThereIsNoExtension) {
  ObsConfig C;
  C.MetricsOutPath = "metricsfile";
  C.TraceOutPath = "dir.d/trace"; // The dot belongs to the directory.
  ObsConfig U = uniquifySuiteObsPaths(C, 12);
  EXPECT_EQ(U.MetricsOutPath, "metricsfile.run012");
  EXPECT_EQ(U.TraceOutPath, "dir.d/trace.run012");
}

TEST(Suite, UniquifyLeavesUnsetPathsAlone) {
  ObsConfig U = uniquifySuiteObsPaths(ObsConfig{}, 3);
  EXPECT_TRUE(U.MetricsOutPath.empty());
  EXPECT_TRUE(U.TraceOutPath.empty());
  EXPECT_TRUE(U.JournalOutPath.empty());
}

TEST(Suite, RunsJsonEmbedsTheDecisionJournal) {
  LabeledResult L;
  L.Label = "db/opt";
  L.Result.TotalCycles = 1000;
  L.Result.Journal.push_back({.Ts = 42,
                              .Kind = DecisionKind::PrefetchInject,
                              .Consumer = "prefetch",
                              .Action = "rewrite_method",
                              .Outcome = "applied",
                              .Method = 3,
                              .Value = 1});

  char *Buf = nullptr;
  size_t Len = 0;
  FILE *Mem = open_memstream(&Buf, &Len);
  ASSERT_TRUE(writeRunsJson(Mem, "test_bench", {L}));
  fclose(Mem);
  std::string Json(Buf, Len);
  free(Buf);

  bool Ok = false;
  auto Doc = json::parse(Json, Ok);
  ASSERT_TRUE(Ok) << Json;
  auto Runs = Doc->get("runs");
  ASSERT_TRUE(Runs && Runs->isArray());
  ASSERT_EQ(Runs->Arr.size(), 1u);
  auto Decisions = Runs->Arr[0]->get("decisions");
  ASSERT_TRUE(Decisions && Decisions->isArray());
  ASSERT_EQ(Decisions->Arr.size(), 1u);
  EXPECT_EQ(Decisions->Arr[0]->str("kind"), "PrefetchInject");
  EXPECT_EQ(Decisions->Arr[0]->str("consumer"), "prefetch");
  EXPECT_EQ(Decisions->Arr[0]->num("method"), 3.0);
}

TEST(Suite, RunsJsonWithEmptyJournalStaysValid) {
  LabeledResult L;
  L.Label = "base";
  char *Buf = nullptr;
  size_t Len = 0;
  FILE *Mem = open_memstream(&Buf, &Len);
  ASSERT_TRUE(writeRunsJson(Mem, "test_bench", {L}));
  fclose(Mem);
  std::string Json(Buf, Len);
  free(Buf);
  bool Ok = false;
  auto Doc = json::parse(Json, Ok);
  ASSERT_TRUE(Ok) << Json;
  EXPECT_TRUE(Doc->get("runs")->Arr[0]->get("decisions")->Arr.empty());
}

} // namespace
