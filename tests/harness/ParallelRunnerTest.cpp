//===-- tests/harness/ParallelRunnerTest.cpp ------------------------------===//
//
// The parallel execution layer, and the property the whole suite harness
// is built on: results depend only on the grid position, never on the job
// count or scheduling. Runs real (small) experiments at --jobs 1 and
// --jobs 4 and requires byte-identical results, including the name-sorted
// metrics JSON.
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelRunner.h"
#include "harness/Suite.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>

using namespace hpmvm;

namespace {

TEST(ParallelRunner, EffectiveJobsResolvesZeroToHardwareConcurrency) {
  EXPECT_EQ(effectiveJobs(1), 1u);
  EXPECT_EQ(effectiveJobs(7), 7u);
  EXPECT_GE(effectiveJobs(0), 1u);
}

TEST(ParallelRunner, ParallelForRunsEveryIndexExactlyOnce) {
  for (unsigned Jobs : {1u, 4u}) {
    std::vector<std::atomic<int>> Hits(64);
    parallelFor(Hits.size(), Jobs,
                [&](size_t I) { Hits[I].fetch_add(1); });
    for (size_t I = 0; I != Hits.size(); ++I)
      EXPECT_EQ(Hits[I].load(), 1) << "index " << I << " jobs " << Jobs;
  }
}

TEST(ParallelRunner, SerialModeStaysOnTheCallingThread) {
  std::thread::id Caller = std::this_thread::get_id();
  parallelFor(8, 1, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), Caller);
  });
}

TEST(ParallelRunner, FirstExceptionIsRethrownAfterJoining) {
  for (unsigned Jobs : {1u, 4u}) {
    std::atomic<int> Ran{0};
    EXPECT_THROW(parallelFor(8, Jobs,
                             [&](size_t I) {
                               Ran.fetch_add(1);
                               if (I == 3)
                                 throw std::runtime_error("boom");
                             }),
                 std::runtime_error)
        << "jobs " << Jobs;
    EXPECT_GE(Ran.load(), 1) << "jobs " << Jobs;
  }
}

// --- The determinism contract on real experiments --------------------------

SuiteSpec smallGrid() {
  SuiteSpec S;
  S.Workloads = {"db", "compress"};
  S.HeapFactors = {1.0, 2.0};
  S.Params.ScalePercent = 10;
  S.Params.Seed = 11;
  S.Variants = {{"base", nullptr},
                {"coalloc",
                 [](RunConfig &C) {
                   C.Monitoring = true;
                   C.Coallocation = true;
                   C.Monitor.SamplingInterval = 5000;
                 }}};
  return S;
}

void expectIdentical(const RunResult &A, const RunResult &B,
                     const std::string &Label) {
  EXPECT_EQ(A.TotalCycles, B.TotalCycles) << Label;
  EXPECT_EQ(A.GcCycles, B.GcCycles) << Label;
  EXPECT_EQ(A.MonitorOverheadCycles, B.MonitorOverheadCycles) << Label;
  EXPECT_EQ(A.SamplesTaken, B.SamplesTaken) << Label;
  EXPECT_EQ(A.CoallocatedPairs, B.CoallocatedPairs) << Label;
  EXPECT_EQ(A.Memory.Accesses, B.Memory.Accesses) << Label;
  EXPECT_EQ(A.Memory.L1Misses, B.Memory.L1Misses) << Label;
  EXPECT_EQ(A.Memory.L2Misses, B.Memory.L2Misses) << Label;
  EXPECT_EQ(A.Gc.MinorCollections, B.Gc.MinorCollections) << Label;
  EXPECT_EQ(A.Gc.MajorCollections, B.Gc.MajorCollections) << Label;
  EXPECT_EQ(A.Vm.BytecodesInterpreted, B.Vm.BytecodesInterpreted) << Label;
  // The full telemetry snapshot, serialized: metric names and values must
  // match byte for byte (names are sorted, so this is deterministic).
  EXPECT_EQ(A.Metrics.toJson(), B.Metrics.toJson()) << Label;
}

TEST(ParallelRunner, JobCountDoesNotChangeAnyResult) {
  SuiteSpec S = smallGrid();
  SuiteOptions Serial;
  Serial.Jobs = 1;
  SuiteOptions Parallel;
  Parallel.Jobs = 4;

  SuiteResults A = runSuite(S, Serial);
  SuiteResults B = runSuite(S, Parallel);
  ASSERT_EQ(A.numExecuted(), S.numCells());
  ASSERT_EQ(B.numExecuted(), S.numCells());
  for (const SuiteRun &Run : A.runs())
    expectIdentical(A.at(Run.W, Run.H, Run.C, Run.V, Run.Rep),
                    B.at(Run.W, Run.H, Run.C, Run.V, Run.Rep), Run.Label);
}

TEST(ParallelRunner, PerRunSeedsAreIndependentOfScheduling) {
  // Every repetition must behave as if it were the only run in the
  // process: rep r of a parallel suite == a lone serial run with seed
  // base+r.
  SuiteSpec S;
  S.Workloads = {"db"};
  S.Params.ScalePercent = 10;
  S.Params.Seed = 21;
  S.Repeat = 3;
  SuiteOptions Parallel;
  Parallel.Jobs = 4;
  SuiteResults R = runSuite(S, Parallel);

  for (uint32_t Rep = 0; Rep != 3; ++Rep) {
    RunConfig Lone;
    Lone.Workload = "db";
    Lone.Params.ScalePercent = 10;
    Lone.Params.Seed = 21 + Rep;
    expectIdentical(R.at(0, 0, 0, 0, Rep), runExperiment(Lone),
                    "rep" + std::to_string(Rep));
  }
  // And distinct seeds must actually change the run.
  EXPECT_NE(R.at(0, 0, 0, 0, 0).TotalCycles,
            R.at(0, 0, 0, 0, 1).TotalCycles);
}

TEST(ParallelRunner, MultiConsumerPipelineIsJobCountInvariant) {
  // The full pipeline configuration -- two multiplexed event kinds
  // fanning out to coalloc + phase + prefetch(+controller) + frequency
  // consumers -- must stay bit-identical across job counts, like every
  // other run.
  SuiteSpec S;
  S.Workloads = {"db"};
  S.HeapFactors = {1.0, 2.0};
  S.Params.ScalePercent = 10;
  S.Params.Seed = 13;
  S.Variants = {{"pipeline", [](RunConfig &C) {
                   C.Monitoring = true;
                   C.Coallocation = true;
                   C.Monitor.Events = {{HpmEventKind::L1DMiss, 5000},
                                       {HpmEventKind::DtlbMiss, 500}};
                   C.PhaseConsumer = true;
                   C.PrefetchConsumer = true;
                   C.PrefetchController = true;
                   C.FrequencyConsumer = true;
                 }}};
  SuiteOptions Serial;
  Serial.Jobs = 1;
  SuiteOptions Parallel;
  Parallel.Jobs = 4;
  SuiteResults A = runSuite(S, Serial);
  SuiteResults B = runSuite(S, Parallel);
  ASSERT_EQ(A.numExecuted(), S.numCells());
  for (const SuiteRun &Run : A.runs()) {
    const RunResult &R = A.at(Run.W, Run.H, Run.C, Run.V, Run.Rep);
    expectIdentical(R, B.at(Run.W, Run.H, Run.C, Run.V, Run.Rep),
                    Run.Label);
    // The consumers actually ran: their pipeline counters are nonzero.
    EXPECT_GT(R.Metrics.counter("pipeline.dispatched"), 0u) << Run.Label;
    EXPECT_GT(R.Metrics.counter("pipeline.phase.samples"), 0u) << Run.Label;
    EXPECT_GT(R.Metrics.counter("pipeline.prefetch.samples"), 0u)
        << Run.Label;
    EXPECT_GT(R.Metrics.counter("pipeline.frequency.samples"), 0u)
        << Run.Label;
    EXPECT_GT(R.Metrics.counter("mux.rotations"), 0u) << Run.Label;
  }
}

TEST(ParallelRunner, PolicyEngineJournalIsJobCountInvariant) {
  // Policy mode's whole value is the causal chain in the journal; it must
  // be byte-identical across job counts, record by record, or a triage
  // journal from a parallel suite could not be trusted.
  SuiteSpec S;
  S.Workloads = {"db"};
  S.HeapFactors = {1.0, 2.0};
  S.Params.ScalePercent = 20;
  S.Params.Seed = 17;
  S.Variants = {{"policy", [](RunConfig &C) {
                   C.Monitoring = true;
                   C.PolicyEngine = true;
                 }}};
  SuiteOptions Serial;
  Serial.Jobs = 1;
  SuiteOptions Parallel;
  Parallel.Jobs = 4;
  SuiteResults A = runSuite(S, Serial);
  SuiteResults B = runSuite(S, Parallel);
  ASSERT_EQ(A.numExecuted(), S.numCells());
  for (const SuiteRun &Run : A.runs()) {
    const RunResult &RA = A.at(Run.W, Run.H, Run.C, Run.V, Run.Rep);
    const RunResult &RB = B.at(Run.W, Run.H, Run.C, Run.V, Run.Rep);
    expectIdentical(RA, RB, Run.Label);
    EXPECT_GT(RA.Metrics.counter("classify.windows"), 0u) << Run.Label;
    ASSERT_EQ(RA.Journal.size(), RB.Journal.size()) << Run.Label;
    for (size_t D = 0; D != RA.Journal.size(); ++D) {
      const DecisionRecord &X = RA.Journal[D];
      const DecisionRecord &Y = RB.Journal[D];
      const std::string At = Run.Label + " record " + std::to_string(D);
      EXPECT_EQ(X.Ts, Y.Ts) << At;
      EXPECT_EQ(static_cast<int>(X.Kind), static_cast<int>(Y.Kind)) << At;
      EXPECT_STREQ(X.Consumer, Y.Consumer) << At;
      EXPECT_STREQ(X.Action, Y.Action) << At;
      EXPECT_EQ(X.Method, Y.Method) << At;
      EXPECT_EQ(X.Rate, Y.Rate) << At;
      EXPECT_EQ(X.Baseline, Y.Baseline) << At;
      EXPECT_EQ(X.Value, Y.Value) << At;
    }
  }
}

TEST(ParallelRunner, FilteredCellsDoNotRun) {
  SuiteSpec S = smallGrid();
  SuiteOptions Opts;
  Opts.Jobs = 4;
  Opts.Filter = "compress/2x";
  SuiteResults R = runSuite(S, Opts);
  EXPECT_EQ(R.numExecuted(), 2u); // compress/2x/{base,coalloc}.
  EXPECT_FALSE(R.ran(0, 0, 0, 0));
  EXPECT_TRUE(R.ran(1, 1, 0, 0));
  EXPECT_TRUE(R.ran(1, 1, 0, 1));
}

TEST(ParallelRunner, RunExperimentsReturnsResultsInInputOrder) {
  std::vector<RunConfig> Configs(2);
  Configs[0].Workload = "db";
  Configs[0].Params.ScalePercent = 10;
  Configs[1].Workload = "compress";
  Configs[1].Params.ScalePercent = 10;
  std::vector<RunResult> Par = runExperiments(Configs, 4);
  std::vector<RunResult> Ser = runExperiments(Configs, 1);
  ASSERT_EQ(Par.size(), 2u);
  expectIdentical(Par[0], Ser[0], "configs[0]");
  expectIdentical(Par[1], Ser[1], "configs[1]");
  EXPECT_NE(Par[0].TotalCycles, Par[1].TotalCycles)
      << "db and compress must be distinguishable";
}

} // namespace
