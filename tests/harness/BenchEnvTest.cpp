//===-- tests/harness/BenchEnvTest.cpp ------------------------------------===//
//
// The bench harness's strict parsing: a mistyped HPMVM_SEED or
// HPMVM_WORKLOADS must be a hard error, never a silent 0 or an empty
// sweep that looks like success.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include <gtest/gtest.h>

using namespace hpmvm;
using namespace hpmvm::bench;

namespace {

TEST(BenchEnv, ParseUintAcceptsPlainDecimals) {
  uint64_t V = 0;
  EXPECT_TRUE(parseUint("0", V));
  EXPECT_EQ(V, 0u);
  EXPECT_TRUE(parseUint("42", V));
  EXPECT_EQ(V, 42u);
  EXPECT_TRUE(parseUint("18446744073709551615", V)); // UINT64_MAX.
  EXPECT_EQ(V, UINT64_MAX);
}

TEST(BenchEnv, ParseUintRejectsWhatAtoiWouldSwallow) {
  uint64_t V = 99;
  EXPECT_FALSE(parseUint("", V));
  EXPECT_FALSE(parseUint(nullptr, V));
  EXPECT_FALSE(parseUint("abc", V));   // atoi: 0.
  EXPECT_FALSE(parseUint("12abc", V)); // atoi: 12.
  EXPECT_FALSE(parseUint("1 2", V));
  EXPECT_FALSE(parseUint("-1", V)); // strtoull would wrap, not fail.
  EXPECT_FALSE(parseUint("1.5", V));
  EXPECT_FALSE(parseUint("18446744073709551616", V)); // UINT64_MAX + 1.
  EXPECT_EQ(V, 99u) << "failed parses must not clobber the output";
}

TEST(BenchEnv, WorkloadListAcceptsValidNames) {
  std::vector<std::string> Names;
  std::string Error;
  ASSERT_TRUE(parseWorkloadList("db,compress", Names, Error)) << Error;
  ASSERT_EQ(Names.size(), 2u);
  EXPECT_EQ(Names[0], "db");
  EXPECT_EQ(Names[1], "compress");
}

TEST(BenchEnv, WorkloadListTolleratesStrayCommas) {
  std::vector<std::string> Names;
  std::string Error;
  ASSERT_TRUE(parseWorkloadList(",db,,compress,", Names, Error)) << Error;
  ASSERT_EQ(Names.size(), 2u);
}

TEST(BenchEnv, UnknownWorkloadIsAnErrorListingTheValidNames) {
  std::vector<std::string> Names;
  std::string Error;
  EXPECT_FALSE(parseWorkloadList("db,notaworkload", Names, Error));
  EXPECT_NE(Error.find("notaworkload"), std::string::npos) << Error;
  // The message must teach the fix: every registered name is listed.
  for (const WorkloadSpec &W : allWorkloads())
    EXPECT_NE(Error.find(W.Name), std::string::npos)
        << "missing " << W.Name << " in: " << Error;
}

TEST(BenchEnv, EmptySelectionIsAnErrorNotAnEmptySweep) {
  std::vector<std::string> Names;
  std::string Error;
  EXPECT_FALSE(parseWorkloadList("", Names, Error));
  EXPECT_FALSE(parseWorkloadList(",", Names, Error));
  EXPECT_NE(Error.find("selects nothing"), std::string::npos) << Error;
}

/// Mutable argv for parseBenchFlags (which compacts it in place).
struct ArgvFixture {
  std::vector<std::string> Store;
  std::vector<char *> Ptrs;
  int Argc;

  ArgvFixture(std::initializer_list<const char *> Args) {
    for (const char *A : Args)
      Store.emplace_back(A);
    for (std::string &S : Store)
      Ptrs.push_back(S.data());
    Ptrs.push_back(nullptr);
    Argc = static_cast<int>(Store.size());
  }
};

TEST(BenchEnv, BenchFlagsParseAndCompactArgv) {
  ArgvFixture A({"bench", "--jobs", "4", "--filter", "db", "--repeat=3",
                 "--json-out", "out.json"});
  BenchOptions Opts;
  ASSERT_TRUE(parseBenchFlags(A.Argc, A.Ptrs.data(), Opts));
  EXPECT_EQ(Opts.Jobs, 4u);
  EXPECT_EQ(Opts.Filter, "db");
  EXPECT_EQ(Opts.Repeat, 3u);
  EXPECT_EQ(Opts.JsonOutPath, "out.json");
  EXPECT_EQ(A.Argc, 1) << "consumed flags must be stripped from argv";
}

TEST(BenchEnv, BenchFlagsRejectGarbage) {
  {
    ArgvFixture A({"bench", "--jobs", "four"});
    BenchOptions Opts;
    EXPECT_FALSE(parseBenchFlags(A.Argc, A.Ptrs.data(), Opts));
  }
  {
    ArgvFixture A({"bench", "--repeat", "0"});
    BenchOptions Opts;
    EXPECT_FALSE(parseBenchFlags(A.Argc, A.Ptrs.data(), Opts));
  }
  {
    ArgvFixture A({"bench", "--frobnicate"});
    BenchOptions Opts;
    EXPECT_FALSE(parseBenchFlags(A.Argc, A.Ptrs.data(), Opts));
  }
}

} // namespace
