//===-- tests/harness/FleetTest.cpp ---------------------------------------===//

#include "harness/Fleet.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace hpmvm;

namespace {

/// Field-by-field journal record equality (the struct carries C strings,
/// so memcmp would compare pointers).
void expectJournalEq(const std::vector<DecisionRecord> &A,
                     const std::vector<DecisionRecord> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    SCOPED_TRACE(I);
    EXPECT_EQ(A[I].Ts, B[I].Ts);
    EXPECT_EQ(A[I].Kind, B[I].Kind);
    EXPECT_STREQ(A[I].Consumer, B[I].Consumer);
    EXPECT_STREQ(A[I].Action, B[I].Action);
    EXPECT_EQ(A[I].Outcome == nullptr, B[I].Outcome == nullptr);
    if (A[I].Outcome && B[I].Outcome) {
      EXPECT_STREQ(A[I].Outcome, B[I].Outcome);
    }
    EXPECT_EQ(A[I].Method, B[I].Method);
    EXPECT_EQ(A[I].Field, B[I].Field);
    EXPECT_EQ(A[I].Rate, B[I].Rate);
    EXPECT_EQ(A[I].Baseline, B[I].Baseline);
    EXPECT_EQ(A[I].Value, B[I].Value);
    EXPECT_EQ(A[I].Tenant, B[I].Tenant);
  }
}

/// Bit-for-bit equality of two run results: every headline stat, the full
/// metrics snapshot (via its canonical JSON), and the journal.
void expectRunEq(const RunResult &A, const RunResult &B) {
  EXPECT_EQ(A.TotalCycles, B.TotalCycles);
  EXPECT_EQ(A.GcCycles, B.GcCycles);
  EXPECT_EQ(A.MonitorOverheadCycles, B.MonitorOverheadCycles);
  EXPECT_EQ(A.SamplesTaken, B.SamplesTaken);
  EXPECT_EQ(A.CoallocatedPairs, B.CoallocatedPairs);
  EXPECT_EQ(A.HeapBytes, B.HeapBytes);
  EXPECT_EQ(A.Memory.Accesses, B.Memory.Accesses);
  EXPECT_EQ(A.Memory.L1Misses, B.Memory.L1Misses);
  EXPECT_EQ(A.Memory.L2Misses, B.Memory.L2Misses);
  EXPECT_EQ(A.Memory.TlbMisses, B.Memory.TlbMisses);
  EXPECT_EQ(A.Gc.MinorCollections, B.Gc.MinorCollections);
  EXPECT_EQ(A.Gc.MajorCollections, B.Gc.MajorCollections);
  EXPECT_EQ(A.Gc.ObjectsPromoted, B.Gc.ObjectsPromoted);
  EXPECT_EQ(A.Vm.BytecodesInterpreted, B.Vm.BytecodesInterpreted);
  EXPECT_EQ(A.Vm.MachineInstsExecuted, B.Vm.MachineInstsExecuted);
  EXPECT_EQ(A.Vm.ObjectsAllocated, B.Vm.ObjectsAllocated);
  EXPECT_EQ(A.Vm.BytesAllocated, B.Vm.BytesAllocated);
  EXPECT_EQ(A.Metrics.toJson(), B.Metrics.toJson());
  expectJournalEq(A.Journal, B.Journal);
}

/// A small traffic-mode fleet config over servermix.
FleetConfig trafficConfig(uint32_t Shards, bool Policy, uint64_t Seed) {
  FleetConfig F;
  F.Shards = Shards;
  F.Base.Workload = "servermix";
  F.Base.Params.ScalePercent = 10;
  F.Base.Params.Seed = Seed;
  F.Base.HeapFactor = 2.0;
  if (Policy) {
    F.Base.Monitoring = true;
    F.Base.PolicyEngine = true;
  }
  F.TrafficCfg.RequestsPerTenant = 48;
  F.TrafficCfg.ArrivalRatePerSec = 100000.0;
  return F;
}

} // namespace

// The tentpole equivalence: a 1-shard classic fleet IS a plain Experiment.
// Randomized over seeds and monitoring configurations -- shard 0 derives
// seed Base+0 and tenant id 0, both of which must be invisible.
class FleetEquivalenceTest
    : public testing::TestWithParam<std::tuple<uint64_t, bool>> {};

TEST_P(FleetEquivalenceTest, OneShardClassicFleetMatchesPlainExperiment) {
  auto [Seed, Policy] = GetParam();
  RunConfig Base;
  Base.Workload = "db";
  Base.Params.ScalePercent = 10;
  Base.Params.Seed = Seed;
  if (Policy) {
    Base.Monitoring = true;
    Base.PolicyEngine = true;
  }

  FleetConfig F;
  F.Base = Base;
  F.Shards = 1;
  F.Traffic = false; // Classic: the shard runs its whole program.
  FleetResult Fleet = runFleet(F);
  RunResult Plain = runExperiment(Base);

  ASSERT_EQ(Fleet.Tenants.size(), 1u);
  expectRunEq(Fleet.Tenants[0].Run, Plain);
  // The aggregate of one tenant is that tenant (journal unstamped rule:
  // stamps only exist in the merged fleet journal).
  EXPECT_EQ(Fleet.MakespanCycles, Plain.TotalCycles);
  EXPECT_EQ(Fleet.Aggregate.Memory.L1Misses, Plain.Memory.L1Misses);
  for (const DecisionRecord &D : Fleet.Tenants[0].Run.Journal)
    EXPECT_EQ(D.Tenant, kInvalidId);
  // Classic mode never shares the PMU.
  EXPECT_EQ(Fleet.PmuRotations, 0u);
  EXPECT_EQ(Fleet.Tenants[0].Share.Executed, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FleetEquivalenceTest,
    testing::Combine(testing::Values(0x1ull, 0xabcdull, 0xfeedbeefull),
                     testing::Bool()),
    [](const testing::TestParamInfo<std::tuple<uint64_t, bool>> &I) {
      return "seed" + std::to_string(std::get<0>(I.param)) +
             (std::get<1>(I.param) ? "_policy" : "_nohpm");
    });

TEST(Fleet, TrafficRunIsDeterministic) {
  FleetConfig F = trafficConfig(3, /*Policy=*/true, 0x5eed);
  FleetResult A = runFleet(F);
  FleetResult B = runFleet(F);
  ASSERT_EQ(A.Tenants.size(), B.Tenants.size());
  EXPECT_EQ(A.MakespanCycles, B.MakespanCycles);
  EXPECT_EQ(A.PmuRotations, B.PmuRotations);
  for (size_t T = 0; T != A.Tenants.size(); ++T) {
    SCOPED_TRACE(T);
    expectRunEq(A.Tenants[T].Run, B.Tenants[T].Run);
    EXPECT_EQ(A.Tenants[T].Requests, B.Tenants[T].Requests);
    EXPECT_EQ(A.Tenants[T].BusyCycles, B.Tenants[T].BusyCycles);
    EXPECT_EQ(A.Tenants[T].Share.Granted, B.Tenants[T].Share.Granted);
    EXPECT_EQ(A.Tenants[T].Share.Executed, B.Tenants[T].Share.Executed);
  }
  expectJournalEq(A.Aggregate.Journal, B.Aggregate.Journal);
}

TEST(Fleet, TenantScheduleIndependentOfFleetSize) {
  // Per-tenant traffic streams are seeded independently of the shard
  // count, and without monitoring the PMU grant cannot perturb execution:
  // tenant 0 of a 3-shard fleet must reproduce the 1-shard fleet's tenant
  // bit for bit. This is the scheduling-independence guarantee that makes
  // per-tenant results comparable across fleet sizes.
  FleetConfig One = trafficConfig(1, /*Policy=*/false, 0x77);
  FleetConfig Three = trafficConfig(3, /*Policy=*/false, 0x77);
  FleetResult A = runFleet(One);
  FleetResult B = runFleet(Three);
  ASSERT_EQ(B.Tenants.size(), 3u);
  EXPECT_EQ(A.Tenants[0].Requests, B.Tenants[0].Requests);
  EXPECT_EQ(A.Tenants[0].BusyCycles, B.Tenants[0].BusyCycles);
  expectRunEq(A.Tenants[0].Run, B.Tenants[0].Run);
}

TEST(Fleet, AggregateSumsTenantsAndStampsMergedJournal) {
  FleetConfig F = trafficConfig(4, /*Policy=*/true, 0x90210);
  FleetResult R = runFleet(F);
  ASSERT_EQ(R.Tenants.size(), 4u);

  uint64_t Accesses = 0, L1 = 0, Bytecodes = 0, JournalSize = 0;
  Cycles MaxTotal = 0;
  for (const FleetTenantResult &T : R.Tenants) {
    EXPECT_EQ(T.Requests, F.TrafficCfg.RequestsPerTenant);
    Accesses += T.Run.Memory.Accesses;
    L1 += T.Run.Memory.L1Misses;
    Bytecodes += T.Run.Vm.BytecodesInterpreted;
    JournalSize += T.Run.Journal.size();
    MaxTotal = std::max(MaxTotal, T.Run.TotalCycles);
    // Per-tenant journals stay unstamped (they are the tenant's own
    // first-person record); only the merged fleet journal is stamped.
    for (const DecisionRecord &D : T.Run.Journal)
      EXPECT_EQ(D.Tenant, kInvalidId);
  }
  EXPECT_EQ(R.Aggregate.Memory.Accesses, Accesses);
  EXPECT_EQ(R.Aggregate.Memory.L1Misses, L1);
  EXPECT_EQ(R.Aggregate.Vm.BytecodesInterpreted, Bytecodes);
  EXPECT_EQ(R.Aggregate.Journal.size(), JournalSize);
  EXPECT_EQ(R.MakespanCycles, MaxTotal);
  EXPECT_EQ(R.Aggregate.TotalCycles, MaxTotal);

  Cycles LastTs = 0;
  for (const DecisionRecord &D : R.Aggregate.Journal) {
    EXPECT_NE(D.Tenant, kInvalidId);
    EXPECT_LT(D.Tenant, 4u);
    EXPECT_GE(D.Ts, LastTs) << "merged journal must be time-ordered";
    LastTs = D.Ts;
  }
}

// The parallel traffic engine's contract: any --fleet-jobs value yields
// bit-identical results. Arbiter-free (nohpm) fleets actually exercise the
// worker-pool + SPSC-merge path at Jobs > 1; the comparison covers every
// headline stat, the full metrics snapshot, and both journals.
TEST(Fleet, TrafficJobsInvariant) {
  FleetConfig Seq = trafficConfig(4, /*Policy=*/false, 0x1057);
  FleetConfig Par = Seq;
  Par.Jobs = 4;
  FleetResult A = runFleet(Seq);
  FleetResult B = runFleet(Par);
  ASSERT_EQ(A.Tenants.size(), B.Tenants.size());
  EXPECT_EQ(A.MakespanCycles, B.MakespanCycles);
  for (size_t T = 0; T != A.Tenants.size(); ++T) {
    SCOPED_TRACE(T);
    expectRunEq(A.Tenants[T].Run, B.Tenants[T].Run);
    EXPECT_EQ(A.Tenants[T].Requests, B.Tenants[T].Requests);
    EXPECT_EQ(A.Tenants[T].BusyCycles, B.Tenants[T].BusyCycles);
  }
  expectJournalEq(A.Aggregate.Journal, B.Aggregate.Journal);
}

// More workers than shards, and Jobs=0 (one per hardware thread): both
// clamp and stay byte-identical.
TEST(Fleet, TrafficJobsClampAndAutoDetect) {
  FleetConfig Seq = trafficConfig(2, /*Policy=*/false, 0x2bad);
  FleetConfig Wide = Seq;
  Wide.Jobs = 16; // > shard count
  FleetConfig Auto = Seq;
  Auto.Jobs = 0; // hardware concurrency
  FleetResult A = runFleet(Seq);
  FleetResult B = runFleet(Wide);
  FleetResult C = runFleet(Auto);
  for (const FleetResult *R : {&B, &C}) {
    ASSERT_EQ(A.Tenants.size(), R->Tenants.size());
    for (size_t T = 0; T != A.Tenants.size(); ++T) {
      SCOPED_TRACE(T);
      expectRunEq(A.Tenants[T].Run, R->Tenants[T].Run);
      EXPECT_EQ(A.Tenants[T].Requests, R->Tenants[T].Requests);
      EXPECT_EQ(A.Tenants[T].BusyCycles, R->Tenants[T].BusyCycles);
    }
  }
}

// Shared-PMU fleets must ignore Jobs (the arbiter couples every quantum's
// timing fleet-wide, so the sequential engine is the only correct one).
TEST(Fleet, SharedPmuFleetIgnoresJobs) {
  FleetConfig Seq = trafficConfig(3, /*Policy=*/true, 0x5eed);
  FleetConfig Par = Seq;
  Par.Jobs = 4;
  FleetResult A = runFleet(Seq);
  FleetResult B = runFleet(Par);
  EXPECT_EQ(A.PmuRotations, B.PmuRotations);
  ASSERT_EQ(A.Tenants.size(), B.Tenants.size());
  for (size_t T = 0; T != A.Tenants.size(); ++T) {
    SCOPED_TRACE(T);
    expectRunEq(A.Tenants[T].Run, B.Tenants[T].Run);
    EXPECT_EQ(A.Tenants[T].Share.Granted, B.Tenants[T].Share.Granted);
    EXPECT_EQ(A.Tenants[T].Share.Executed, B.Tenants[T].Share.Executed);
  }
}

// Classic mode runs whole shards on the pool; results are collected by
// index, so any job count is invisible in the output.
TEST(Fleet, ClassicJobsInvariant) {
  FleetConfig Seq = trafficConfig(3, /*Policy=*/true, 0xc1a);
  Seq.Traffic = false;
  FleetConfig Par = Seq;
  Par.Jobs = 3;
  FleetResult A = runFleet(Seq);
  FleetResult B = runFleet(Par);
  ASSERT_EQ(A.Tenants.size(), B.Tenants.size());
  EXPECT_EQ(A.MakespanCycles, B.MakespanCycles);
  for (size_t T = 0; T != A.Tenants.size(); ++T) {
    SCOPED_TRACE(T);
    expectRunEq(A.Tenants[T].Run, B.Tenants[T].Run);
  }
  expectJournalEq(A.Aggregate.Journal, B.Aggregate.Journal);
}

TEST(Fleet, SharedPmuSplitsGrantAcrossTenants) {
  FleetConfig F = trafficConfig(4, /*Policy=*/true, 0xabc);
  Fleet Fl(F);
  Fl.run();
  FleetResult R = Fl.result();
  // Every tenant executed, none held the PMU the whole time, and the
  // grant actually rotated.
  EXPECT_GT(R.PmuRotations, 0u);
  double FractionSum = 0.0;
  for (const FleetTenantResult &T : R.Tenants) {
    EXPECT_GT(T.Share.Executed, 0u);
    EXPECT_LT(T.Share.Granted, T.Share.Executed);
    FractionSum += static_cast<double>(T.Share.Granted) /
                   static_cast<double>(T.Share.Executed);
  }
  // Shares are fractions of *each tenant's own* executed cycles; with
  // comparable per-tenant load they sum to roughly 1 PMU's worth.
  EXPECT_GT(FractionSum, 0.5);
  EXPECT_LT(FractionSum, 2.0);
}
