//===-- tests/hpm/PmuArbiterTest.cpp --------------------------------------===//

#include "hpm/PmuArbiter.h"

#include "hpm/PebsUnit.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

PebsConfig l1Config(uint64_t Interval) {
  PebsConfig C;
  C.SelectedEvent = HpmEventKind::L1DMiss;
  C.Interval = Interval;
  C.RandomizeLowBits = false;
  return C;
}

void fire(PebsUnit &U, uint64_t N) {
  for (uint64_t I = 0; I != N; ++I)
    U.onMemoryEvent(HpmEventKind::L1DMiss, 0x100 + static_cast<Address>(I),
                    0x40000000 + I);
}

/// Arbiter over \p N fresh sampling units, started.
struct Fixture {
  explicit Fixture(size_t N, double SliceMs = 0.2)
      : Arbiter(PmuArbiterConfig{SliceMs}), Units(N) {
    for (PebsUnit &U : Units) {
      U.configure(l1Config(1));
      U.start();
      Ids.push_back(Arbiter.add(U));
    }
    Arbiter.start();
  }
  PmuArbiter Arbiter;
  std::vector<PebsUnit> Units;
  std::vector<TenantId> Ids;
};

} // namespace

TEST(PmuArbiter, RegistrationOrderAssignsIds) {
  Fixture F(3);
  EXPECT_EQ(F.Ids, (std::vector<TenantId>{0, 1, 2}));
  EXPECT_EQ(F.Arbiter.tenants(), 3u);
}

TEST(PmuArbiter, SingleTenantIsAlwaysGranted) {
  Fixture F(1);
  EXPECT_TRUE(F.Arbiter.granted(0));
  EXPECT_TRUE(F.Arbiter.beginQuantum(0));
  F.Arbiter.endQuantum(0, VirtualClock::fromMillis(10.0));
  // No amount of executed time rotates a 1-tenant arbiter, and the gate
  // stays open -- a 1-shard fleet samples exactly like a plain VM.
  EXPECT_TRUE(F.Arbiter.granted(0));
  EXPECT_EQ(F.Arbiter.rotations(), 0u);
  EXPECT_TRUE(F.Units[0].sampleGateOpen());
  EXPECT_DOUBLE_EQ(F.Arbiter.grantedFraction(0), 1.0);
}

TEST(PmuArbiter, OnlyGrantedTenantsGateIsOpen) {
  Fixture F(3);
  EXPECT_TRUE(F.Arbiter.beginQuantum(0));
  EXPECT_FALSE(F.Arbiter.beginQuantum(1));
  EXPECT_FALSE(F.Arbiter.beginQuantum(2));
  EXPECT_TRUE(F.Units[0].sampleGateOpen());
  EXPECT_FALSE(F.Units[1].sampleGateOpen());
  EXPECT_FALSE(F.Units[2].sampleGateOpen());
}

TEST(PmuArbiter, ClosedGateCountsButDoesNotSample) {
  Fixture F(2);
  F.Arbiter.beginQuantum(1); // Tenant 1 not granted -> gate closed.
  fire(F.Units[1], 50);
  EXPECT_EQ(F.Units[1].eventCount(HpmEventKind::L1DMiss), 50u);
  EXPECT_EQ(F.Units[1].samplesTaken(), 0u);
  F.Arbiter.beginQuantum(0);
  fire(F.Units[0], 50);
  EXPECT_EQ(F.Units[0].samplesTaken(), 50u);
}

TEST(PmuArbiter, GrantRotatesRoundRobinPerSlice) {
  Fixture F(3, /*SliceMs=*/0.2);
  Cycles Slice = VirtualClock::fromMillis(0.2);
  EXPECT_EQ(F.Arbiter.current(), 0u);
  F.Arbiter.beginQuantum(0);
  F.Arbiter.endQuantum(0, Slice);
  EXPECT_EQ(F.Arbiter.current(), 1u);
  F.Arbiter.beginQuantum(1);
  F.Arbiter.endQuantum(1, Slice);
  EXPECT_EQ(F.Arbiter.current(), 2u);
  F.Arbiter.beginQuantum(2);
  F.Arbiter.endQuantum(2, Slice);
  EXPECT_EQ(F.Arbiter.current(), 0u);
  EXPECT_EQ(F.Arbiter.rotations(), 3u);
}

TEST(PmuArbiter, OversizedQuantumRotatesMultipleTimes) {
  Fixture F(4, /*SliceMs=*/0.2);
  Cycles Slice = VirtualClock::fromMillis(0.2);
  // One long quantum spanning 2.5 slices advances the grant twice; the
  // half-used slice carries over.
  F.Arbiter.beginQuantum(0);
  F.Arbiter.endQuantum(0, 2 * Slice + Slice / 2);
  EXPECT_EQ(F.Arbiter.current(), 2u);
  EXPECT_EQ(F.Arbiter.rotations(), 2u);
  F.Arbiter.beginQuantum(2);
  F.Arbiter.endQuantum(2, Slice / 2);
  EXPECT_EQ(F.Arbiter.current(), 3u);
}

TEST(PmuArbiter, ShareAccountingSplitsGrantedAndExecuted) {
  Fixture F(2, /*SliceMs=*/0.2);
  Cycles Slice = VirtualClock::fromMillis(0.2);
  // Tenant 0 executes one slice while granted, tenant 1 one slice while
  // not granted, then the grant flips and they swap roles.
  F.Arbiter.beginQuantum(0);
  F.Arbiter.endQuantum(0, Slice); // granted -> rotation to tenant 1
  F.Arbiter.beginQuantum(1);
  F.Arbiter.endQuantum(1, Slice); // granted -> rotation to tenant 0
  F.Arbiter.beginQuantum(1);
  F.Arbiter.endQuantum(1, Slice); // not granted
  PmuShare S0 = F.Arbiter.shareOf(0), S1 = F.Arbiter.shareOf(1);
  EXPECT_EQ(S0.Executed, Slice);
  EXPECT_EQ(S0.Granted, Slice);
  EXPECT_EQ(S1.Executed, 2 * Slice);
  EXPECT_EQ(S1.Granted, Slice);
  EXPECT_DOUBLE_EQ(F.Arbiter.grantedFraction(0), 1.0);
  EXPECT_DOUBLE_EQ(F.Arbiter.grantedFraction(1), 0.5);
}

TEST(PmuArbiter, FairnessOverManyEqualQuanta) {
  // 4 tenants served round-robin with equal quanta converge to a quarter
  // of the PMU each.
  Fixture F(4, /*SliceMs=*/0.2);
  Cycles Q = VirtualClock::fromMillis(0.05); // Quarter slice per request.
  for (int Round = 0; Round != 400; ++Round)
    for (TenantId T = 0; T != 4; ++T) {
      F.Arbiter.beginQuantum(T);
      F.Arbiter.endQuantum(T, Q);
    }
  for (TenantId T = 0; T != 4; ++T)
    EXPECT_NEAR(F.Arbiter.grantedFraction(T), 0.25, 0.02) << "tenant " << T;
}
