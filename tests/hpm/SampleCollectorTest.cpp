//===-- tests/hpm/SampleCollectorTest.cpp ---------------------------------===//

#include "hpm/SampleCollector.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

struct Rig {
  PebsUnit Unit;
  PerfmonModule Module{Unit};
  NativeSampleLibrary Lib{Module};
  VirtualClock Clock;

  Rig() { Module.startSampling(HpmEventKind::L1DMiss, 1, false); }

  void fire(uint64_t N) {
    for (uint64_t I = 0; I != N; ++I)
      Unit.onMemoryEvent(HpmEventKind::L1DMiss, 0x100 + I, 0);
  }
};

} // namespace

TEST(SampleCollector, RespectsPollingDeadline) {
  Rig R;
  SampleCollectorConfig C;
  C.MinPollMs = 10;
  SampleCollector Coll(R.Lib, R.Clock, C);
  R.fire(3);
  EXPECT_EQ(Coll.maybePoll(), 0u); // Deadline not reached.
  R.Clock.advance(VirtualClock::fromMillis(10.5));
  EXPECT_EQ(Coll.maybePoll(), 3u);
  EXPECT_EQ(Coll.polls(), 1u);
}

TEST(SampleCollector, DeliversBatchesToConsumer) {
  Rig R;
  SampleCollector Coll(R.Lib, R.Clock);
  size_t Batches = 0, Total = 0;
  Coll.setConsumer([&](const PebsSample *S, size_t N) {
    ++Batches;
    Total += N;
    EXPECT_EQ(S[0].Eip, 0x100u);
  });
  R.fire(5);
  Coll.pollNow();
  EXPECT_EQ(Batches, 1u);
  EXPECT_EQ(Total, 5u);
}

TEST(SampleCollector, BacksOffWhenIdle) {
  Rig R;
  SampleCollectorConfig C;
  C.MinPollMs = 10;
  C.MaxPollMs = 1000;
  SampleCollector Coll(R.Lib, R.Clock, C);
  double Start = Coll.pollIntervalMs();
  // Several empty polls: the interval doubles up to the cap ("adaptively
  // set between 10ms and 1000ms").
  for (int I = 0; I != 12; ++I)
    Coll.pollNow();
  EXPECT_GT(Coll.pollIntervalMs(), Start);
  EXPECT_LE(Coll.pollIntervalMs(), 1000.0);
}

TEST(SampleCollector, TightensUnderLoad) {
  Rig R;
  SampleCollectorConfig C;
  C.MinPollMs = 10;
  C.MaxPollMs = 1000;
  SampleCollector Coll(R.Lib, R.Clock, C);
  for (int I = 0; I != 4; ++I)
    Coll.pollNow(); // Back off first.
  double Relaxed = Coll.pollIntervalMs();
  // A poll returning >50% of buffer capacity halves the interval.
  R.fire(R.Lib.capacitySamples() * 3 / 4);
  Coll.pollNow();
  EXPECT_LT(Coll.pollIntervalMs(), Relaxed);
}

TEST(SampleCollector, NeverLeavesConfiguredBounds) {
  Rig R;
  SampleCollectorConfig C;
  C.MinPollMs = 10;
  C.MaxPollMs = 80;
  SampleCollector Coll(R.Lib, R.Clock, C);
  for (int I = 0; I != 20; ++I) {
    Coll.pollNow();
    EXPECT_GE(Coll.pollIntervalMs(), 10.0);
    EXPECT_LE(Coll.pollIntervalMs(), 80.0);
  }
  for (int I = 0; I != 20; ++I) {
    R.fire(R.Lib.capacitySamples());
    Coll.pollNow();
    EXPECT_GE(Coll.pollIntervalMs(), 10.0);
  }
}

TEST(SampleCollector, ChargesOverheadCycles) {
  Rig R;
  SampleCollector Coll(R.Lib, R.Clock);
  R.fire(10);
  Cycles Before = R.Clock.now();
  Coll.pollNow();
  EXPECT_GT(R.Clock.now(), Before);
  EXPECT_EQ(Coll.overheadCycles(), R.Clock.now() - Before);
  EXPECT_EQ(Coll.samplesDelivered(), 10u);
}
