//===-- tests/hpm/SamplingIntervalControllerTest.cpp ----------------------===//

#include "hpm/SamplingIntervalController.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

/// Drives the unit with a constant event rate (events per virtual ms) and
/// polls the controller, returning the final interval.
uint64_t simulate(double EventsPerMs, uint64_t StartInterval,
                  double TargetPerSec, int Periods) {
  PebsUnit Unit;
  VirtualClock Clock;
  PebsConfig PC;
  PC.Interval = StartInterval;
  PC.RandomizeLowBits = false;
  PC.BufferCapacity = 1 << 20;
  Unit.configure(PC);
  Unit.start();

  AutoIntervalConfig AC;
  AC.TargetSamplesPerSec = TargetPerSec;
  AC.AdjustPeriodMs = 1.0;
  SamplingIntervalController Ctl(Unit, Clock, AC);

  for (int P = 0; P != Periods; ++P) {
    uint64_t Events = static_cast<uint64_t>(EventsPerMs * 2.0);
    for (uint64_t I = 0; I != Events; ++I)
      Unit.onMemoryEvent(HpmEventKind::L1DMiss, 0x100, 0);
    Clock.advance(VirtualClock::fromMillis(2.0));
    Ctl.onPoll();
  }
  return Unit.interval();
}

} // namespace

TEST(SamplingIntervalController, WidensWhenOversampling) {
  // 1e6 events/s at interval 1000 -> 1000 samples/s against a 100/s
  // target: the interval must grow substantially.
  uint64_t Final = simulate(/*EventsPerMs=*/1000, /*Start=*/1000,
                            /*Target=*/100, /*Periods=*/40);
  EXPECT_GT(Final, 5000u);
}

TEST(SamplingIntervalController, TightensWhenUndersampling) {
  // 1e6 events/s at interval 1e6 -> 1 sample/s against 1000/s: shrink.
  uint64_t Final = simulate(1000, 1000000, 1000, 40);
  EXPECT_LT(Final, 100000u);
}

TEST(SamplingIntervalController, ConvergesNearTheRightInterval) {
  // 2e6 events/s, target 2000/s: the right interval is ~1000.
  uint64_t Final = simulate(2000, 100000, 2000, 120);
  EXPECT_GT(Final, 300u);
  EXPECT_LT(Final, 4000u);
}

TEST(SamplingIntervalController, RespectsClampBounds) {
  AutoIntervalConfig AC;
  EXPECT_GT(AC.MinInterval, 0u);
  // Massive oversampling pushes to MaxInterval and stops there.
  uint64_t Final = simulate(50000, 100, 1, 100);
  EXPECT_LE(Final, AC.MaxInterval);
  // Total starvation (no events) halves down to MinInterval and stops.
  Final = simulate(0, 1000000, 1000, 100);
  EXPECT_GE(Final, AC.MinInterval);
  EXPECT_LE(Final, 2 * AC.MinInterval);
}

TEST(SamplingIntervalController, HonorsAdjustPeriod) {
  PebsUnit Unit;
  VirtualClock Clock;
  PebsConfig PC;
  PC.Interval = 1000;
  Unit.configure(PC);
  Unit.start();
  AutoIntervalConfig AC;
  AC.AdjustPeriodMs = 10.0;
  SamplingIntervalController Ctl(Unit, Clock, AC);
  Clock.advance(VirtualClock::fromMillis(1.0));
  Ctl.onPoll(); // Too soon: no adjustment.
  EXPECT_EQ(Ctl.adjustments(), 0u);
  Clock.advance(VirtualClock::fromMillis(10.0));
  Ctl.onPoll();
  EXPECT_EQ(Ctl.adjustments(), 1u);
}
