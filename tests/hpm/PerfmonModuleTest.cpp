//===-- tests/hpm/PerfmonModuleTest.cpp -----------------------------------===//

#include "hpm/PerfmonModule.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

void fire(PebsUnit &U, uint64_t N, Address PcBase = 0x100) {
  for (uint64_t I = 0; I != N; ++I)
    U.onMemoryEvent(HpmEventKind::L1DMiss, PcBase + static_cast<Address>(I),
                    0);
}

} // namespace

TEST(PerfmonModule, StartStopControlsSampling) {
  PebsUnit U;
  PerfmonModule M(U);
  M.startSampling(HpmEventKind::L1DMiss, 1, /*RandomizeLowBits=*/false);
  EXPECT_TRUE(M.isSampling());
  fire(U, 3);
  M.stopSampling();
  EXPECT_FALSE(M.isSampling());
  fire(U, 3);
  EXPECT_EQ(U.samplesTaken(), 3u);
}

TEST(PerfmonModule, ReadDrainsInOrder) {
  PebsUnit U;
  PerfmonModule M(U);
  M.startSampling(HpmEventKind::L1DMiss, 1, false);
  fire(U, 5, 0x1000);
  PebsSample Buf[8];
  size_t N = M.readSamples(Buf, 8);
  ASSERT_EQ(N, 5u);
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Buf[I].Eip, 0x1000u + I);
  EXPECT_EQ(M.readSamples(Buf, 8), 0u);
}

TEST(PerfmonModule, PartialReadsKeepRemainder) {
  PebsUnit U;
  PerfmonModule M(U);
  M.startSampling(HpmEventKind::L1DMiss, 1, false);
  fire(U, 6, 0x1000);
  PebsSample Buf[4];
  EXPECT_EQ(M.readSamples(Buf, 4), 4u);
  EXPECT_EQ(Buf[0].Eip, 0x1000u);
  EXPECT_EQ(M.samplesAvailable(), 2u);
  EXPECT_EQ(M.readSamples(Buf, 4), 2u);
  EXPECT_EQ(Buf[0].Eip, 0x1004u); // Continues where the last read stopped.
}

TEST(PerfmonModule, SamplesAvailableCountsBothBuffers) {
  PebsUnit U;
  PerfmonModule M(U);
  M.startSampling(HpmEventKind::L1DMiss, 1, false);
  fire(U, 3);
  EXPECT_EQ(M.samplesAvailable(), 3u); // All in the debug store still.
  PebsSample Buf[2];
  M.readSamples(Buf, 2); // Drains debug store, returns 2, 1 kernel-side.
  EXPECT_EQ(M.samplesAvailable(), 1u);
}

TEST(PerfmonModule, TracksDeliveredTotal) {
  PebsUnit U;
  PerfmonModule M(U);
  M.startSampling(HpmEventKind::L1DMiss, 1, false);
  fire(U, 7);
  PebsSample Buf[16];
  M.readSamples(Buf, 16);
  EXPECT_EQ(M.totalDelivered(), 7u);
}
