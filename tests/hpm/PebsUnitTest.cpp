//===-- tests/hpm/PebsUnitTest.cpp ----------------------------------------===//

#include "hpm/PebsUnit.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

PebsConfig fixedConfig(uint64_t Interval, HpmEventKind Kind) {
  PebsConfig C;
  C.SelectedEvent = Kind;
  C.Interval = Interval;
  C.RandomizeLowBits = false;
  return C;
}

void fire(PebsUnit &U, HpmEventKind Kind, uint64_t N, Address PcBase = 0x100) {
  for (uint64_t I = 0; I != N; ++I)
    U.onMemoryEvent(Kind, PcBase + static_cast<Address>(I), 0x40000000 + I);
}

} // namespace

TEST(PebsUnit, CountingModeCountsAllKindsAlways) {
  PebsUnit U;
  // Not started: sampling off, counting on (the event detectors run
  // continuously on the P4).
  fire(U, HpmEventKind::L1DMiss, 5);
  fire(U, HpmEventKind::DtlbMiss, 3);
  EXPECT_EQ(U.eventCount(HpmEventKind::L1DMiss), 5u);
  EXPECT_EQ(U.eventCount(HpmEventKind::DtlbMiss), 3u);
  EXPECT_EQ(U.samplesTaken(), 0u);
}

TEST(PebsUnit, SamplesEveryNthEvent) {
  PebsUnit U;
  U.configure(fixedConfig(10, HpmEventKind::L1DMiss));
  U.start();
  fire(U, HpmEventKind::L1DMiss, 100);
  EXPECT_EQ(U.samplesTaken(), 10u);
}

TEST(PebsUnit, OnlySelectedEventSampled) {
  PebsUnit U;
  U.configure(fixedConfig(1, HpmEventKind::L2Miss));
  U.start();
  fire(U, HpmEventKind::L1DMiss, 50);
  EXPECT_EQ(U.samplesTaken(), 0u);
  fire(U, HpmEventKind::L2Miss, 5);
  EXPECT_EQ(U.samplesTaken(), 5u);
}

TEST(PebsUnit, SampleCarriesExactPcAndDataAddress) {
  PebsUnit U;
  U.configure(fixedConfig(3, HpmEventKind::L1DMiss));
  U.start();
  fire(U, HpmEventKind::L1DMiss, 3, /*PcBase=*/0x2000);
  std::vector<PebsSample> Out;
  U.drainInto(Out);
  ASSERT_EQ(Out.size(), 1u);
  // The 3rd event (index 2) triggered the sample: precise attribution.
  EXPECT_EQ(Out[0].Eip, 0x2002u);
  EXPECT_EQ(Out[0].Regs[0], 0x40000002u);
}

TEST(PebsUnit, RandomizedIntervalStaysNearBase) {
  PebsUnit U(42);
  PebsConfig C = fixedConfig(10000, HpmEventKind::L1DMiss);
  C.RandomizeLowBits = true;
  U.configure(C);
  U.start();
  fire(U, HpmEventKind::L1DMiss, 1000000);
  // Randomizing 8 low bits keeps the mean interval within ~3% of the base.
  EXPECT_GT(U.samplesTaken(), 95u);
  EXPECT_LT(U.samplesTaken(), 105u);
}

TEST(PebsUnit, InterruptAtFillMark) {
  PebsUnit U;
  PebsConfig C = fixedConfig(1, HpmEventKind::L1DMiss);
  C.BufferCapacity = 10;
  C.InterruptFillMark = 0.5;
  U.configure(C);
  U.start();
  fire(U, HpmEventKind::L1DMiss, 4);
  EXPECT_FALSE(U.interruptPending());
  fire(U, HpmEventKind::L1DMiss, 1);
  EXPECT_TRUE(U.interruptPending());
}

TEST(PebsUnit, DropsWhenBufferFull) {
  PebsUnit U;
  PebsConfig C = fixedConfig(1, HpmEventKind::L1DMiss);
  C.BufferCapacity = 8;
  U.configure(C);
  U.start();
  fire(U, HpmEventKind::L1DMiss, 12);
  EXPECT_EQ(U.bufferedSamples(), 8u);
  EXPECT_EQ(U.samplesDropped(), 4u);
}

TEST(PebsUnit, DrainClearsBufferAndInterrupt) {
  PebsUnit U;
  PebsConfig C = fixedConfig(1, HpmEventKind::L1DMiss);
  C.BufferCapacity = 4;
  C.InterruptFillMark = 0.5;
  U.configure(C);
  U.start();
  fire(U, HpmEventKind::L1DMiss, 3);
  EXPECT_TRUE(U.interruptPending());
  std::vector<PebsSample> Out;
  U.drainInto(Out);
  EXPECT_EQ(Out.size(), 3u);
  EXPECT_EQ(U.bufferedSamples(), 0u);
  EXPECT_FALSE(U.interruptPending());
}

TEST(PebsUnit, MicrocodeCyclesChargedPerSample) {
  PebsUnit U;
  VirtualClock Clock;
  U.setClock(&Clock);
  PebsConfig C = fixedConfig(2, HpmEventKind::L1DMiss);
  C.MicrocodeCyclesPerSample = 500;
  U.configure(C);
  U.start();
  fire(U, HpmEventKind::L1DMiss, 10);
  EXPECT_EQ(U.microcodeCycles(), 5u * 500);
  EXPECT_EQ(Clock.now(), 5u * 500);
}

TEST(PebsUnit, SetIntervalTakesEffectOnRearm) {
  PebsUnit U;
  U.configure(fixedConfig(10, HpmEventKind::L1DMiss));
  U.start();
  fire(U, HpmEventKind::L1DMiss, 10); // One sample, counter re-armed at 10.
  U.setInterval(5);
  fire(U, HpmEventKind::L1DMiss, 10); // Old countdown of 10 finishes...
  EXPECT_EQ(U.samplesTaken(), 2u);
  fire(U, HpmEventKind::L1DMiss, 10); // ...then two at the new interval.
  EXPECT_EQ(U.samplesTaken(), 4u);
}

TEST(PebsUnit, ResetZeroesCounters) {
  PebsUnit U;
  U.configure(fixedConfig(1, HpmEventKind::L1DMiss));
  U.start();
  fire(U, HpmEventKind::L1DMiss, 3);
  U.reset();
  EXPECT_EQ(U.samplesTaken(), 0u);
  EXPECT_EQ(U.eventCount(HpmEventKind::L1DMiss), 0u);
  EXPECT_EQ(U.bufferedSamples(), 0u);
}
