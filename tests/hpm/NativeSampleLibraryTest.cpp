//===-- tests/hpm/NativeSampleLibraryTest.cpp -----------------------------===//

#include "hpm/NativeSampleLibrary.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

struct Rig {
  PebsUnit Unit;
  PerfmonModule Module{Unit};

  void fire(uint64_t N, Address PcBase = 0x500) {
    for (uint64_t I = 0; I != N; ++I)
      Unit.onMemoryEvent(HpmEventKind::L1DMiss,
                         PcBase + static_cast<Address>(I), 0x40000000 + I);
  }
};

} // namespace

TEST(NativeSampleLibrary, MarshalsAndDecodesRoundTrip) {
  Rig R;
  R.Module.startSampling(HpmEventKind::L1DMiss, 1, false);
  R.fire(4, 0x7000);
  NativeSampleLibrary Lib(R.Module);
  EXPECT_EQ(Lib.readIntoArray(), 4u);
  for (size_t I = 0; I != 4; ++I) {
    PebsSample S = Lib.decode(I);
    EXPECT_EQ(S.Eip, 0x7000u + I);
    EXPECT_EQ(S.Regs[0], 0x40000000u + I);
  }
}

TEST(NativeSampleLibrary, GcLockHeldExactlyAroundCopy) {
  Rig R;
  R.Module.startSampling(HpmEventKind::L1DMiss, 1, false);
  R.fire(2);
  NativeSampleLibrary Lib(R.Module);
  std::vector<bool> LockTrace;
  Lib.setGcLock([&](bool Locked) { LockTrace.push_back(Locked); });
  Lib.readIntoArray();
  ASSERT_EQ(LockTrace.size(), 2u);
  EXPECT_TRUE(LockTrace[0]);  // Acquired before the copy...
  EXPECT_FALSE(LockTrace[1]); // ...released after.
}

TEST(NativeSampleLibrary, CapacityClampsOneBatch) {
  Rig R;
  R.Module.startSampling(HpmEventKind::L1DMiss, 1, false);
  R.fire(5);
  // Array sized for exactly 3 samples.
  NativeSampleLibrary Lib(R.Module, 3 * kSampleInts);
  EXPECT_EQ(Lib.capacitySamples(), 3u);
  EXPECT_EQ(Lib.readIntoArray(), 3u);
  EXPECT_EQ(Lib.readIntoArray(), 2u); // Remainder on the next call.
}

TEST(NativeSampleLibrary, CostAccounting) {
  Rig R;
  R.Module.startSampling(HpmEventKind::L1DMiss, 1, false);
  R.fire(10);
  NativeSampleLibrary Lib(R.Module);
  VirtualClock Clock;
  Lib.setClock(&Clock);
  NativeLibraryCosts Costs;
  Costs.PerCall = 1000;
  Costs.PerSample = 10;
  Lib.setCosts(Costs);
  Lib.readIntoArray();
  EXPECT_EQ(Clock.now(), 1000u + 10 * 10);
  EXPECT_EQ(Lib.totalCostCycles(), Clock.now());
}

TEST(NativeSampleLibrary, EmptyReadStillCostsTheCall) {
  Rig R;
  NativeSampleLibrary Lib(R.Module);
  VirtualClock Clock;
  Lib.setClock(&Clock);
  EXPECT_EQ(Lib.readIntoArray(), 0u);
  EXPECT_GT(Clock.now(), 0u); // The JNI transition is not free.
}
