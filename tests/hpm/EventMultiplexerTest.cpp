//===-- tests/hpm/EventMultiplexerTest.cpp --------------------------------===//

#include "hpm/EventMultiplexer.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

struct Rig {
  PebsUnit Unit;
  PerfmonModule Module{Unit};
  VirtualClock Clock;
  MultiplexerConfig Config;

  Rig() {
    Config.Rotation = {{HpmEventKind::L1DMiss, 100},
                       {HpmEventKind::DtlbMiss, 10}};
    Config.SliceMs = 1.0;
  }

  /// Simulates \p Ms of execution with fixed event rates (events per
  /// microsecond of virtual time), polling the multiplexer every 0.1 ms.
  void runFor(EventMultiplexer &Mux, double Ms, uint64_t L1PerUs,
              uint64_t TlbPerUs) {
    const int StepsPerMs = 10;
    uint64_t LastTaken = Unit.samplesTaken();
    for (int Step = 0; Step != static_cast<int>(Ms * StepsPerMs); ++Step) {
      uint64_t L1 = L1PerUs * 100, Tlb = TlbPerUs * 100; // Per 0.1 ms.
      for (uint64_t I = 0; I != L1; ++I)
        Unit.onMemoryEvent(HpmEventKind::L1DMiss, 0x100, 0);
      for (uint64_t I = 0; I != Tlb; ++I)
        Unit.onMemoryEvent(HpmEventKind::DtlbMiss, 0x200, 0);
      Clock.advance(VirtualClock::fromMillis(0.1));
      // Drain (the collector would), then let the multiplexer rotate.
      std::vector<PebsSample> Drain;
      Unit.drainInto(Drain);
      uint64_t Taken = Unit.samplesTaken();
      Mux.onPoll(Taken - LastTaken);
      LastTaken = Taken;
    }
  }
};

} // namespace

TEST(EventMultiplexer, RotatesThroughTheConfiguredKinds) {
  Rig R;
  EventMultiplexer Mux(R.Module, R.Clock, R.Config);
  Mux.start();
  EXPECT_EQ(Mux.currentKind(), HpmEventKind::L1DMiss);
  R.runFor(Mux, 1.5, 10, 1);
  EXPECT_EQ(Mux.currentKind(), HpmEventKind::DtlbMiss)
      << "after one 1 ms slice the second kind must be live";
  R.runFor(Mux, 1.0, 10, 1);
  EXPECT_EQ(Mux.currentKind(), HpmEventKind::L1DMiss);
  EXPECT_GE(Mux.rotations(), 2u);
  Mux.stop();
}

TEST(EventMultiplexer, CollectsSamplesForEveryKind) {
  Rig R;
  EventMultiplexer Mux(R.Module, R.Clock, R.Config);
  Mux.start();
  R.runFor(Mux, 8.0, 10, 1);
  Mux.stop();
  EXPECT_GT(Mux.samples(HpmEventKind::L1DMiss), 0u);
  EXPECT_GT(Mux.samples(HpmEventKind::DtlbMiss), 0u);
  EXPECT_EQ(Mux.samples(HpmEventKind::L2Miss), 0u); // Not in the rotation.
}

TEST(EventMultiplexer, DutyCycleCorrectionRecoversTrueRates) {
  Rig R;
  EventMultiplexer Mux(R.Module, R.Clock, R.Config);
  Mux.start();
  // 10 L1 misses/us and 1 TLB miss/us for 20 ms: 200,000 L1 events and
  // 20,000 TLB events in total; each kind is live only ~half the time.
  R.runFor(Mux, 20.0, 10, 1);
  Mux.stop();

  double L1 = Mux.estimatedEvents(HpmEventKind::L1DMiss);
  double Tlb = Mux.estimatedEvents(HpmEventKind::DtlbMiss);
  EXPECT_NEAR(L1, 200000.0, 60000.0)
      << "duty-cycle-scaled estimate must approximate the true count";
  EXPECT_NEAR(Tlb, 20000.0, 6000.0);
  // And crucially, the *ratio* between kinds survives multiplexing.
  EXPECT_NEAR(L1 / Tlb, 10.0, 3.0);
}

TEST(EventMultiplexer, StopAccountsTheOpenSlice) {
  Rig R;
  EventMultiplexer Mux(R.Module, R.Clock, R.Config);
  Mux.start();
  R.runFor(Mux, 0.5, 10, 1); // Less than one slice.
  Mux.stop();
  EXPECT_EQ(Mux.rotations(), 0u);
  EXPECT_GT(Mux.estimatedEvents(HpmEventKind::L1DMiss), 0.0);
}
