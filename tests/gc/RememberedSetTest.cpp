//===-- tests/gc/RememberedSetTest.cpp ------------------------------------===//

#include "gc/RememberedSet.h"

#include <gtest/gtest.h>

using namespace hpmvm;

TEST(RememberedSet, InsertAndIterateInOrder) {
  RememberedSet S;
  S.insert(0x100);
  S.insert(0x300);
  S.insert(0x200);
  std::vector<Address> Seen;
  S.forEach([&](Address A) { Seen.push_back(A); });
  EXPECT_EQ(Seen, (std::vector<Address>{0x100, 0x300, 0x200}));
}

TEST(RememberedSet, Deduplicates) {
  RememberedSet S;
  for (int I = 0; I != 10; ++I)
    S.insert(0x100);
  EXPECT_EQ(S.size(), 1u);
  EXPECT_TRUE(S.contains(0x100));
  EXPECT_FALSE(S.contains(0x104));
}

TEST(RememberedSet, Clear) {
  RememberedSet S;
  S.insert(0x100);
  S.clear();
  EXPECT_EQ(S.size(), 0u);
  EXPECT_FALSE(S.contains(0x100));
  S.insert(0x100); // Re-insert after clear must work.
  EXPECT_EQ(S.size(), 1u);
}
