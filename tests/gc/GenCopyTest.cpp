//===-- tests/gc/GenCopyTest.cpp ------------------------------------------===//

#include "GcTestSupport.h"

#include <gtest/gtest.h>

using namespace hpmvm;

using Rig = GcRig<GenCopyPlan>;

TEST(GenCopy, MinorPromotesIntoMatureSemispace) {
  Rig R;
  Address N = R.newNode(5);
  R.Roots.Slots.push_back(N);
  R.Gc.collectMinor();
  Address P = R.Roots.Slots[0];
  EXPECT_NE(P, N);
  SpaceId S = R.Gc.pool().ownerOf(P);
  EXPECT_TRUE(S == SpaceId::FromSpace || S == SpaceId::ToSpace);
  EXPECT_EQ(R.idOf(P), 5);
}

TEST(GenCopy, FullCollectionFlipsSemispaces) {
  Rig R;
  Address N = R.newNode(5);
  R.Roots.Slots.push_back(N);
  R.Gc.collectMinor();
  Address P1 = R.Roots.Slots[0];
  SpaceId S1 = R.Gc.pool().ownerOf(P1);
  R.Gc.collectFull();
  Address P2 = R.Roots.Slots[0];
  SpaceId S2 = R.Gc.pool().ownerOf(P2);
  EXPECT_NE(P1, P2) << "a full collection copies mature objects";
  EXPECT_NE(S1, S2) << "...into the other semispace";
  EXPECT_EQ(R.idOf(P2), 5);
}

TEST(GenCopy, FullCollectionDropsGarbageByNotCopyingIt) {
  Rig R;
  for (int I = 0; I != 40; ++I)
    R.Roots.Slots.push_back(R.newNode(I));
  R.Gc.collectMinor();
  uint32_t BlocksAll = R.Gc.matureSpace().blocksOwned();
  R.Roots.Slots.resize(4);
  R.Gc.collectFull();
  EXPECT_LE(R.Gc.matureSpace().usedBytes(), 4u * 32);
  EXPECT_LE(R.Gc.matureSpace().blocksOwned(), BlocksAll);
  for (size_t I = 0; I != 4; ++I)
    EXPECT_EQ(R.idOf(R.Roots.Slots[I]), static_cast<int32_t>(I));
}

TEST(GenCopy, CyclesSurviveBothCollections) {
  Rig R;
  Address A = R.newNode(1);
  Address B = R.newNode(2);
  R.setRef(A, Rig::kFieldA, B);
  R.setRef(B, Rig::kFieldA, A);
  R.Roots.Slots.push_back(A);
  R.Gc.collectMinor();
  R.Gc.collectFull();
  Address A2 = R.Roots.Slots[0];
  Address B2 = R.getRef(A2, Rig::kFieldA);
  EXPECT_EQ(R.getRef(B2, Rig::kFieldA), A2);
  EXPECT_EQ(R.idOf(B2), 2);
}

TEST(GenCopy, CheneyOrderPutsSiblingsAdjacent) {
  Rig R;
  Address P = R.newNode(0);
  Address C1 = R.newNode(1);
  Address C2 = R.newNode(2);
  // Allocate a spacer so the children are not adjacent by allocation.
  R.newIntArray(100);
  R.setRef(P, Rig::kFieldA, C1);
  R.setRef(P, Rig::kFieldB, C2);
  R.Roots.Slots.push_back(P);
  R.Gc.collectMinor();
  Address P2 = R.Roots.Slots[0];
  Address N1 = R.getRef(P2, Rig::kFieldA);
  Address N2 = R.getRef(P2, Rig::kFieldB);
  // Breadth-first copying scans the parent and enqueues both children
  // back-to-back: they land adjacently, a generation after the parent.
  EXPECT_EQ(N2, N1 + 32);
}

TEST(GenCopy, RememberedSetWorks) {
  Rig R;
  Address P = R.newNode(1);
  R.Roots.Slots.push_back(P);
  R.Gc.collectMinor();
  Address Child = R.newNode(2);
  R.setRef(R.Roots.Slots[0], Rig::kFieldA, Child);
  R.Gc.collectMinor();
  EXPECT_EQ(R.idOf(R.getRef(R.Roots.Slots[0], Rig::kFieldA)), 2);
}

TEST(GenCopy, LosObjectsSurviveWithoutMoving) {
  Rig R;
  Address Big = R.newIntArray(8192);
  EXPECT_EQ(R.Gc.pool().ownerOf(Big), SpaceId::Los);
  R.Roots.Slots.push_back(Big);
  R.Gc.collectFull();
  EXPECT_EQ(R.Roots.Slots[0], Big);
  R.Roots.Slots.clear();
  R.Gc.collectFull();
  EXPECT_EQ(R.Gc.largeObjectSpace().objectCount(), 0u);
}

TEST(GenCopy, AutomaticCollectionUnderChurn) {
  Rig R;
  Address Keep = R.newNode(99);
  R.Roots.Slots.push_back(Keep);
  for (int I = 0; I != 200000; ++I)
    R.newNode(I);
  EXPECT_GT(R.Gc.stats().MinorCollections, 0u);
  EXPECT_EQ(R.idOf(R.Roots.Slots[0]), 99);
}
