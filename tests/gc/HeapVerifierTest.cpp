//===-- tests/gc/HeapVerifierTest.cpp -------------------------------------===//

#include "GcTestSupport.h"

#include "gc/HeapVerifier.h"

#include <gtest/gtest.h>

using namespace hpmvm;

using Rig = GcRig<GenMSPlan>;

TEST(HeapVerifier, CleanHeapPasses) {
  Rig R;
  Address A = R.newNode(1);
  Address B = R.newNode(2);
  R.setRef(A, Rig::kFieldA, B);
  R.Roots.Slots.push_back(A);
  EXPECT_EQ(HeapVerifier::verify(R.Gc, R.Model), "");
  R.Gc.collectMinor();
  EXPECT_EQ(HeapVerifier::verify(R.Gc, R.Model), "");
  R.Gc.collectFull();
  EXPECT_EQ(HeapVerifier::verify(R.Gc, R.Model), "");
}

TEST(HeapVerifier, DetectsCorruptClassId) {
  Rig R;
  Address A = R.newNode(1);
  R.Roots.Slots.push_back(A);
  R.Mem.writeWord(A + objheader::kClassOffset, 0x7777);
  std::string Diag = HeapVerifier::verify(R.Gc, R.Model);
  EXPECT_NE(Diag.find("unknown class id"), std::string::npos) << Diag;
}

TEST(HeapVerifier, DetectsCorruptSize) {
  Rig R;
  Address A = R.newNode(1);
  R.Roots.Slots.push_back(A);
  R.Mem.writeWord(A + objheader::kSizeOffset, 8);
  std::string Diag = HeapVerifier::verify(R.Gc, R.Model);
  EXPECT_NE(Diag.find("does not match expected"), std::string::npos)
      << Diag;
}

TEST(HeapVerifier, DetectsStrayForwardingBit) {
  Rig R;
  Address A = R.newNode(1);
  R.Roots.Slots.push_back(A);
  R.Model.orFlag(A, objheader::kForwardedBit);
  std::string Diag = HeapVerifier::verify(R.Gc, R.Model);
  EXPECT_NE(Diag.find("forwarding bit"), std::string::npos) << Diag;
}

TEST(HeapVerifier, DetectsWildPointer) {
  Rig R;
  Address A = R.newNode(1);
  R.Roots.Slots.push_back(A);
  // Interior pointer: not an object base.
  R.Mem.writeWord(A + Rig::kFieldA, A + 8);
  std::string Diag = HeapVerifier::verify(R.Gc, R.Model);
  EXPECT_NE(Diag.find("not a live object base"), std::string::npos)
      << Diag;
}

TEST(HeapVerifier, DetectsMissingWriteBarrier) {
  Rig R;
  Address P = R.newNode(1);
  R.Roots.Slots.push_back(P);
  R.Gc.collectMinor(); // P mature.
  Address P2 = R.Roots.Slots[0];
  Address Child = R.newNode(2);
  // Store WITHOUT the barrier -- the bug class this check exists for.
  R.Mem.writeWord(P2 + Rig::kFieldA, Child);
  std::string Diag = HeapVerifier::verify(R.Gc, R.Model);
  EXPECT_NE(Diag.find("missing from the remembered set"),
            std::string::npos)
      << Diag;
}

TEST(HeapVerifier, CoallocatedCellsValidated) {
  StubAdvisor Advisor;
  Rig R;
  Advisor.Target = R.Node;
  Advisor.Hint.SlotOffset = Rig::kFieldA;
  Advisor.Hint.Field = 0;
  R.Gc.setPlacementAdvisor(&Advisor);
  Address P = R.newNode(1);
  Address C = R.newIntArray(4);
  R.setRef(P, Rig::kFieldA, C);
  R.Roots.Slots.push_back(P);
  R.Gc.collectMinor();
  ASSERT_EQ(R.Gc.stats().ObjectsCoallocated, 1u);
  EXPECT_EQ(HeapVerifier::verify(R.Gc, R.Model), "");

  // Corrupt the child offset: the verifier must notice.
  Address Cell = R.Roots.Slots[0];
  R.Mem.writeWord(Cell + objheader::kAuxOffset, 4096);
  std::string Diag = HeapVerifier::verify(R.Gc, R.Model);
  EXPECT_NE(Diag.find("child offset"), std::string::npos) << Diag;
}

TEST(HeapVerifier, CensusCountsPerSpaceAndClass) {
  Rig R;
  for (int I = 0; I != 10; ++I)
    R.Roots.Slots.push_back(R.newNode(I));
  R.Roots.Slots.push_back(R.newIntArray(4096)); // LOS.
  R.Gc.collectMinor(); // Promote the nodes.
  for (int I = 0; I != 3; ++I)
    R.Roots.Slots.push_back(R.newNode(100 + I)); // Fresh nursery nodes.

  HeapCensus C = HeapVerifier::census(R.Gc, R.Model);
  EXPECT_EQ(C.MatureObjects, 10u);
  EXPECT_EQ(C.NurseryObjects, 3u);
  EXPECT_EQ(C.LosObjects, 1u);
  EXPECT_EQ(C.totalObjects(), 14u);
  EXPECT_EQ(C.PerClass.at(R.Node).Count, 13u);
  EXPECT_EQ(C.PerClass.at(R.Node).Bytes, 13u * 32);
  EXPECT_EQ(C.PerClass.at(R.IntArr).Count, 1u);
}

TEST(HeapVerifier, GenCopyHeapsVerifyToo) {
  GcRig<GenCopyPlan> R;
  Address A = R.newNode(1);
  Address B = R.newNode(2);
  R.setRef(A, GcRig<GenCopyPlan>::kFieldA, B);
  R.Roots.Slots.push_back(A);
  R.Gc.collectMinor();
  EXPECT_EQ(HeapVerifier::verify(R.Gc, R.Model), "");
  R.Gc.collectFull();
  EXPECT_EQ(HeapVerifier::verify(R.Gc, R.Model), "");
  HeapCensus C = HeapVerifier::census(R.Gc, R.Model);
  EXPECT_EQ(C.MatureObjects, 2u);
}
