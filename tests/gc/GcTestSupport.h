//===-- tests/gc/GcTestSupport.h - Collector test fixtures -----*- C++ -*-===//

#ifndef HPMVM_TESTS_GC_GCTESTSUPPORT_H
#define HPMVM_TESTS_GC_GCTESTSUPPORT_H

#include "gc/GenCopyPlan.h"
#include "gc/GenMSPlan.h"
#include "heap/ObjectModel.h"
#include "support/VirtualClock.h"

#include <gtest/gtest.h>

#include <vector>

namespace hpmvm {

/// Root provider over a plain vector of slots (null slots skipped).
struct VectorRoots : public RootProvider {
  std::vector<Address> Slots;

  void forEachRoot(const std::function<void(Address &)> &Fn) override {
    for (Address &S : Slots)
      if (S != kNullRef)
        Fn(S);
  }
};

/// Stub advisor with a fixed hint for one class.
struct StubAdvisor : public PlacementAdvisor {
  ClassId Target = kInvalidId;
  CoallocationHint Hint;
  uint32_t Gap = 0;
  int Notes = 0;

  CoallocationHint coallocationHint(ClassId Cls) override {
    return Cls == Target ? Hint : CoallocationHint{};
  }
  uint32_t gapBytes() override { return Gap; }
  void noteCoallocation(ClassId, FieldId) override { ++Notes; }
};

/// Everything a collector test needs, templated on the plan.
template <typename PlanT> struct GcRig {
  static constexpr uint32_t kHeapBytes = 4 * 1024 * 1024;

  HeapMemory Mem{kHeapBase, kHeapBytes};
  HeapClassTable Classes;
  ClassId Node;   ///< { ref a @16; ref b @20; int id @24 } -> 32 bytes.
  ClassId IntArr;
  ClassId RefArr;
  ObjectModel Model{Mem, Classes};
  VirtualClock Clock;
  PlanT Gc;
  VectorRoots Roots;

  GcRig()
      : Node(Classes.addScalarClass("Node", 3, {16, 20})),
        IntArr(Classes.addArrayClass("int[]", ElemKind::I32)),
        RefArr(Classes.addArrayClass("Node[]", ElemKind::Ref)),
        Gc(Model, Clock, CollectorConfig{.HeapBytes = kHeapBytes}) {
    Gc.setRootProvider(&Roots);
  }

  static constexpr uint32_t kFieldA = 16;
  static constexpr uint32_t kFieldB = 20;
  static constexpr uint32_t kFieldId = 24;

  Address newNode(int32_t Id) {
    Address N = Gc.allocate(Node, 32, 0);
    EXPECT_NE(N, kNullRef);
    Mem.writeWord(N + kFieldId, static_cast<uint32_t>(Id));
    return N;
  }

  Address newIntArray(uint32_t Len) {
    uint32_t Bytes = Model.arrayObjectBytes(IntArr, Len);
    Address A = Gc.allocate(IntArr, Bytes, Len);
    EXPECT_NE(A, kNullRef);
    return A;
  }

  /// Reference store with the write barrier (as the VM would do it).
  void setRef(Address Holder, uint32_t Offset, Address Value) {
    Gc.writeBarrier(Holder, Holder + Offset, Value);
    Mem.writeWord(Holder + Offset, Value);
  }

  Address getRef(Address Holder, uint32_t Offset) {
    return Mem.readWord(Holder + Offset);
  }

  int32_t idOf(Address N) {
    return static_cast<int32_t>(Mem.readWord(N + kFieldId));
  }
};

} // namespace hpmvm

#endif // HPMVM_TESTS_GC_GCTESTSUPPORT_H
