//===-- tests/gc/GcPropertyTest.cpp ---------------------------------------===//
//
// Property test: a randomly mutated object graph, interleaved with forced
// minor and full collections, must stay isomorphic to a host-side shadow
// graph. Mutations are expressed as *path walks from roots* so the same
// operation can be applied to the heap graph (whose addresses move) and to
// the shadow graph (indexed by stable ids) without ever holding a raw heap
// address across a collection.
//
//===----------------------------------------------------------------------===//

#include "GcTestSupport.h"

#include "gc/HeapVerifier.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace hpmvm;

namespace {

constexpr int kNumRoots = 6;
constexpr int kSteps = 1500;

struct ShadowNode {
  int32_t A = -1; ///< id of child a, -1 = null.
  int32_t B = -1;
};

template <typename PlanT> struct PropertyRig : GcRig<PlanT> {
  using Base = GcRig<PlanT>;
  std::vector<ShadowNode> Shadow;   ///< Indexed by node id.
  std::vector<int32_t> ShadowRoots; ///< -1 = null root slot.
  SplitMix64 Rng;

  explicit PropertyRig(uint64_t Seed) : Rng(Seed) {
    this->Roots.Slots.assign(kNumRoots, kNullRef);
    ShadowRoots.assign(kNumRoots, -1);
  }

  int32_t makeNode() {
    int32_t Id = static_cast<int32_t>(Shadow.size());
    Shadow.push_back({});
    Address N = this->newNode(Id);
    return (LastAddr = N), Id;
  }
  Address LastAddr = 0;

  /// Walks the same random path through heap and shadow; returns the pair
  /// (heap address, shadow id) of the endpoint, or (0, -1) for null.
  std::pair<Address, int32_t> walk(uint32_t RootIdx,
                                   const std::vector<bool> &Dirs) {
    Address H = this->Roots.Slots[RootIdx];
    int32_t S = ShadowRoots[RootIdx];
    for (bool GoB : Dirs) {
      if (H == kNullRef)
        break;
      EXPECT_NE(S, -1);
      Address HN = this->getRef(H, GoB ? Base::kFieldB : Base::kFieldA);
      int32_t SN = GoB ? Shadow[S].B : Shadow[S].A;
      if (HN == kNullRef) {
        EXPECT_EQ(SN, -1);
        break;
      }
      H = HN;
      S = SN;
    }
    if (H == kNullRef)
      return {kNullRef, -1};
    EXPECT_EQ(this->idOf(H), S) << "heap/shadow diverged mid-walk";
    return {H, S};
  }

  std::vector<bool> randomDirs() {
    std::vector<bool> Dirs(Rng.nextBelow(5));
    for (size_t I = 0; I != Dirs.size(); ++I)
      Dirs[I] = Rng.nextBelow(2);
    return Dirs;
  }

  void step() {
    switch (Rng.nextBelow(5)) {
    case 0: { // New node into a root slot.
      uint32_t R = static_cast<uint32_t>(Rng.nextBelow(kNumRoots));
      int32_t Id = makeNode();
      this->Roots.Slots[R] = LastAddr;
      ShadowRoots[R] = Id;
      return;
    }
    case 1: { // Attach a new node under an existing one.
      uint32_t R = static_cast<uint32_t>(Rng.nextBelow(kNumRoots));
      auto [H, S] = walk(R, randomDirs());
      if (H == kNullRef)
        return;
      bool GoB = Rng.nextBelow(2);
      int32_t Id = makeNode();
      // H may be stale: makeNode can trigger a collection that moves H.
      // Re-walk to find the node again (by construction the path is
      // unchanged: allocation never rewrites edges).
      auto [H2, S2] = walkToId(R, S);
      if (H2 == kNullRef)
        return; // The path got collected? Impossible while rooted.
      this->setRef(H2, GoB ? Base::kFieldB : Base::kFieldA, LastAddr);
      (GoB ? Shadow[S2].B : Shadow[S2].A) = Id;
      return;
    }
    case 2: { // Rewire: node-at-path-1 . field = node-at-path-2.
      uint32_t R1 = static_cast<uint32_t>(Rng.nextBelow(kNumRoots));
      uint32_t R2 = static_cast<uint32_t>(Rng.nextBelow(kNumRoots));
      auto [H1, S1] = walk(R1, randomDirs());
      auto [H2, S2] = walk(R2, randomDirs());
      if (H1 == kNullRef)
        return;
      bool GoB = Rng.nextBelow(2);
      this->setRef(H1, GoB ? Base::kFieldB : Base::kFieldA, H2);
      (GoB ? Shadow[S1].B : Shadow[S1].A) = S2;
      return;
    }
    case 3: { // Clear a root.
      uint32_t R = static_cast<uint32_t>(Rng.nextBelow(kNumRoots));
      this->Roots.Slots[R] = kNullRef;
      ShadowRoots[R] = -1;
      return;
    }
    case 4: { // Copy one root to another.
      uint32_t R1 = static_cast<uint32_t>(Rng.nextBelow(kNumRoots));
      uint32_t R2 = static_cast<uint32_t>(Rng.nextBelow(kNumRoots));
      this->Roots.Slots[R2] = this->Roots.Slots[R1];
      ShadowRoots[R2] = ShadowRoots[R1];
      return;
    }
    }
  }

  /// Finds the (moved) heap address of shadow node \p TargetId by BFS from
  /// root \p R. Used after an allocation may have moved things.
  std::pair<Address, int32_t> walkToId(uint32_t R, int32_t TargetId) {
    Address Root = this->Roots.Slots[R];
    if (Root == kNullRef)
      return {kNullRef, -1};
    std::vector<Address> Queue = {Root};
    std::set<Address> Seen;
    while (!Queue.empty()) {
      Address H = Queue.back();
      Queue.pop_back();
      if (!Seen.insert(H).second)
        continue;
      if (this->idOf(H) == TargetId)
        return {H, TargetId};
      for (uint32_t Off : {Base::kFieldA, Base::kFieldB}) {
        Address C = this->getRef(H, Off);
        if (C != kNullRef)
          Queue.push_back(C);
      }
    }
    return {kNullRef, -1};
  }

  /// Full-graph isomorphism check: the heap graph reachable from the roots
  /// must match the shadow graph node-for-node and edge-for-edge.
  void verifyIsomorphic() {
    std::map<int32_t, Address> ById;
    std::vector<std::pair<Address, int32_t>> Queue;
    for (int R = 0; R != kNumRoots; ++R) {
      if (this->Roots.Slots[R] == kNullRef) {
        ASSERT_EQ(ShadowRoots[R], -1);
        continue;
      }
      ASSERT_NE(ShadowRoots[R], -1);
      Queue.push_back({this->Roots.Slots[R], ShadowRoots[R]});
    }
    while (!Queue.empty()) {
      auto [H, S] = Queue.back();
      Queue.pop_back();
      ASSERT_EQ(this->idOf(H), S);
      auto [It, Inserted] = ById.emplace(S, H);
      if (!Inserted) {
        ASSERT_EQ(It->second, H) << "one shadow node, two heap copies";
        continue;
      }
      for (int Edge = 0; Edge != 2; ++Edge) {
        Address HC = this->getRef(H, Edge ? Base::kFieldB : Base::kFieldA);
        int32_t SC = Edge ? Shadow[S].B : Shadow[S].A;
        if (HC == kNullRef)
          ASSERT_EQ(SC, -1);
        else {
          ASSERT_NE(SC, -1);
          Queue.push_back({HC, SC});
        }
      }
    }
  }
};

template <typename PlanT> void runProperty(uint64_t Seed,
                                            bool Coallocate = false) {
  PropertyRig<PlanT> R(Seed);
  StubAdvisor Advisor;
  if (Coallocate) {
    // Drive co-allocation through the same random graph: every promoted
    // Node tries to share a cell with its field-A child. Shared-cell
    // liveness, forwarding, and reference integrity must all hold.
    Advisor.Target = R.Node;
    Advisor.Hint.SlotOffset = PropertyRig<PlanT>::kFieldA;
    Advisor.Hint.Field = 0;
    R.Gc.setPlacementAdvisor(&Advisor);
  }
  for (int S = 0; S != kSteps; ++S) {
    R.step();
    if (S % 200 == 150)
      R.Gc.collectFull();
    if (S % 97 == 50)
      R.Gc.collectMinor();
    if (S % 300 == 299) {
      R.verifyIsomorphic();
      ASSERT_EQ(HeapVerifier::verify(R.Gc, R.Model), "");
    }
  }
  R.verifyIsomorphic();
  ASSERT_EQ(HeapVerifier::verify(R.Gc, R.Model), "");
}

class GcGraphProperty : public testing::TestWithParam<uint64_t> {};

TEST_P(GcGraphProperty, GenMSPreservesGraph) {
  runProperty<GenMSPlan>(GetParam());
}

TEST_P(GcGraphProperty, GenMSPreservesGraphUnderCoallocation) {
  runProperty<GenMSPlan>(GetParam(), /*Coallocate=*/true);
}

TEST_P(GcGraphProperty, GenCopyPreservesGraph) {
  runProperty<GenCopyPlan>(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcGraphProperty,
                         testing::Range<uint64_t>(1, 13));

} // namespace
