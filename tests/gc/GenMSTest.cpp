//===-- tests/gc/GenMSTest.cpp --------------------------------------------===//

#include "GcTestSupport.h"

#include <gtest/gtest.h>

using namespace hpmvm;

using Rig = GcRig<GenMSPlan>;

TEST(GenMS, RootedObjectSurvivesMinorAndMoves) {
  Rig R;
  Address N = R.newNode(42);
  R.Roots.Slots.push_back(N);
  EXPECT_EQ(R.Gc.pool().ownerOf(N), SpaceId::Nursery);
  R.Gc.collectMinor();
  Address Promoted = R.Roots.Slots[0];
  EXPECT_NE(Promoted, N) << "promotion must copy out of the nursery";
  EXPECT_EQ(R.Gc.pool().ownerOf(Promoted), SpaceId::Mature);
  EXPECT_EQ(R.idOf(Promoted), 42);
  EXPECT_EQ(R.Gc.stats().ObjectsPromoted, 1u);
}

TEST(GenMS, UnreachableNurseryObjectDies) {
  Rig R;
  R.Roots.Slots.push_back(R.newNode(1));
  R.newNode(2); // Garbage.
  R.Gc.collectMinor();
  EXPECT_EQ(R.Gc.matureSpace().stats().CellsInUse, 1u);
}

TEST(GenMS, EdgesAreReroutedOnPromotion) {
  Rig R;
  Address A = R.newNode(1);
  Address B = R.newNode(2);
  R.setRef(A, Rig::kFieldA, B);
  R.setRef(B, Rig::kFieldB, A); // Cycle.
  R.Roots.Slots.push_back(A);
  R.Gc.collectMinor();
  Address A2 = R.Roots.Slots[0];
  Address B2 = R.getRef(A2, Rig::kFieldA);
  EXPECT_EQ(R.idOf(A2), 1);
  EXPECT_EQ(R.idOf(B2), 2);
  EXPECT_EQ(R.getRef(B2, Rig::kFieldB), A2) << "the cycle must close";
}

TEST(GenMS, AllocationTriggersCollectionWhenNurseryFills) {
  Rig R;
  Address Keep = R.newNode(7);
  R.Roots.Slots.push_back(Keep);
  // Allocate far more garbage than the heap: collections must fire.
  for (int I = 0; I != 200000; ++I)
    R.newNode(I);
  EXPECT_GT(R.Gc.stats().MinorCollections, 0u);
  EXPECT_EQ(R.idOf(R.Roots.Slots[0]), 7);
}

TEST(GenMS, RememberedSetKeepsMatureToNurseryEdgeAlive) {
  Rig R;
  Address P = R.newNode(1);
  R.Roots.Slots.push_back(P);
  R.Gc.collectMinor(); // P is mature now.
  Address P2 = R.Roots.Slots[0];
  Address Child = R.newNode(2); // Nursery.
  R.setRef(P2, Rig::kFieldA, Child);
  EXPECT_GT(R.Gc.rememberedSet().size(), 0u);
  R.Gc.collectMinor();
  Address Child2 = R.getRef(R.Roots.Slots[0], Rig::kFieldA);
  EXPECT_EQ(R.Gc.pool().ownerOf(Child2), SpaceId::Mature);
  EXPECT_EQ(R.idOf(Child2), 2);
}

TEST(GenMS, NurseryToNurseryStoresNotRemembered) {
  Rig R;
  Address A = R.newNode(1);
  Address B = R.newNode(2);
  R.setRef(A, Rig::kFieldA, B);
  EXPECT_EQ(R.Gc.rememberedSet().size(), 0u);
}

TEST(GenMS, FullCollectionReclaimsMatureGarbage) {
  Rig R;
  for (int I = 0; I != 50; ++I)
    R.Roots.Slots.push_back(R.newNode(I));
  R.Gc.collectMinor(); // All 50 promoted.
  EXPECT_EQ(R.Gc.matureSpace().stats().CellsInUse, 50u);
  // Drop all but 5 roots.
  R.Roots.Slots.resize(5);
  R.Gc.collectFull();
  EXPECT_EQ(R.Gc.matureSpace().stats().CellsInUse, 5u);
  for (size_t I = 0; I != 5; ++I)
    EXPECT_EQ(R.idOf(R.Roots.Slots[I]), static_cast<int32_t>(I));
}

TEST(GenMS, LargeObjectsBornAndCollectedInLos) {
  Rig R;
  Address Big = R.newIntArray(4096); // 16 KB body > 4 KB ceiling.
  EXPECT_EQ(R.Gc.pool().ownerOf(Big), SpaceId::Los);
  R.Roots.Slots.push_back(Big);
  R.Gc.collectFull();
  EXPECT_EQ(R.Roots.Slots[0], Big) << "LOS objects never move";
  EXPECT_EQ(R.Gc.largeObjectSpace().objectCount(), 1u);
  R.Roots.Slots.clear();
  R.Gc.collectFull();
  EXPECT_EQ(R.Gc.largeObjectSpace().objectCount(), 0u);
}

TEST(GenMS, ArrayContentsPreservedAcrossPromotion) {
  Rig R;
  Address A = R.newIntArray(10);
  for (uint32_t I = 0; I != 10; ++I)
    R.Mem.writeWord(R.Model.elementAddress(A, I), I * 3);
  R.Roots.Slots.push_back(A);
  R.Gc.collectMinor();
  Address A2 = R.Roots.Slots[0];
  EXPECT_EQ(R.Model.arrayLength(A2), 10u);
  for (uint32_t I = 0; I != 10; ++I)
    EXPECT_EQ(R.Mem.readWord(R.Model.elementAddress(A2, I)), I * 3);
}

TEST(GenMS, RefArraySlotsTraced) {
  Rig R;
  uint32_t Bytes = R.Model.arrayObjectBytes(R.RefArr, 3);
  Address Arr = R.Gc.allocate(R.RefArr, Bytes, 3);
  Address N = R.newNode(9);
  R.setRef(Arr, objheader::kHeaderBytes + 4, N); // Arr[1] = N.
  R.Roots.Slots.push_back(Arr);
  R.Gc.collectMinor();
  Address Arr2 = R.Roots.Slots[0];
  Address N2 = R.Mem.readWord(Arr2 + objheader::kHeaderBytes + 4);
  EXPECT_EQ(R.idOf(N2), 9);
}

TEST(GenMS, AppelNurseryShrinksAsMatureGrows) {
  Rig R;
  uint32_t Before = R.Gc.nurseryBlockBudget();
  // Promote ~1.5 MB into the mature space.
  for (int I = 0; I != 50000; ++I)
    R.Roots.Slots.push_back(R.newNode(I));
  R.Gc.collectFull();
  EXPECT_LT(R.Gc.nurseryBlockBudget(), Before);
}

TEST(GenMS, NotifyFiresPerCollection) {
  Rig R;
  int Minor = 0, Major = 0;
  R.Gc.setGcNotify([&](bool Full) { (Full ? Major : Minor)++; });
  R.Gc.collectMinor();
  R.Gc.collectFull();
  EXPECT_EQ(Minor, 1);
  EXPECT_EQ(Major, 1);
}

TEST(GenMS, GcCyclesAccumulateOnClock) {
  Rig R;
  R.Roots.Slots.push_back(R.newNode(1));
  Cycles Before = R.Clock.now();
  R.Gc.collectMinor();
  EXPECT_GT(R.Clock.now(), Before);
  EXPECT_GE(R.Gc.stats().GcCycles, R.Clock.now() - Before);
}
