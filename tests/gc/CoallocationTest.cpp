//===-- tests/gc/CoallocationTest.cpp -------------------------------------===//
//
// The co-allocation mechanics in GenMS, driven by a stub advisor so each
// placement rule is tested in isolation from the sampling machinery.
//
//===----------------------------------------------------------------------===//

#include "GcTestSupport.h"

#include "heap/SizeClasses.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

struct CoallocRig : GcRig<GenMSPlan> {
  StubAdvisor Advisor;

  CoallocRig() {
    Advisor.Target = Node;
    Advisor.Hint.SlotOffset = kFieldA;
    Advisor.Hint.Field = 0; // Any valid-looking field id.
    Gc.setPlacementAdvisor(&Advisor);
  }
};

} // namespace

TEST(Coallocation, ChildPlacedDirectlyAfterParent) {
  CoallocRig R;
  Address P = R.newNode(1);
  Address C = R.newIntArray(4); // 32 bytes.
  R.setRef(P, CoallocRig::kFieldA, C);
  R.Roots.Slots.push_back(P);
  R.Gc.collectMinor();
  Address P2 = R.Roots.Slots[0];
  Address C2 = R.getRef(P2, CoallocRig::kFieldA);
  EXPECT_EQ(C2, P2 + 32) << "pair must share one cell, child after parent";
  EXPECT_TRUE(R.Model.testFlag(P2, objheader::kCoallocBit));
  EXPECT_TRUE(R.Model.testFlag(C2, objheader::kCoallocBit));
  EXPECT_EQ(R.Gc.stats().ObjectsCoallocated, 1u);
  EXPECT_EQ(R.Advisor.Notes, 1);
  EXPECT_EQ(R.Model.arrayLength(C2), 4u);
}

TEST(Coallocation, GapBytesInsertedBetweenPair) {
  CoallocRig R;
  R.Advisor.Gap = 128; // The Figure 8 "bad placement" lever.
  Address P = R.newNode(1);
  Address C = R.newIntArray(4);
  R.setRef(P, CoallocRig::kFieldA, C);
  R.Roots.Slots.push_back(P);
  R.Gc.collectMinor();
  Address P2 = R.Roots.Slots[0];
  Address C2 = R.getRef(P2, CoallocRig::kFieldA);
  EXPECT_EQ(C2, P2 + 32 + 128);
  EXPECT_EQ(R.Gc.stats().CoallocGapBytes, 128u);
}

TEST(Coallocation, OversizedPairFallsBackToPlainPromotion) {
  CoallocRig R;
  Address P = R.newNode(1);
  Address C = R.newIntArray(1020); // 4096 bytes: 32 + 4096 > ceiling.
  R.setRef(P, CoallocRig::kFieldA, C);
  R.Roots.Slots.push_back(P);
  R.Gc.collectMinor();
  Address P2 = R.Roots.Slots[0];
  Address C2 = R.getRef(P2, CoallocRig::kFieldA);
  EXPECT_NE(C2, P2 + 32);
  EXPECT_EQ(R.Gc.stats().ObjectsCoallocated, 0u);
  EXPECT_EQ(R.Model.arrayLength(C2), 1020u);
}

TEST(Coallocation, NullAndSelfChildSkipped) {
  CoallocRig R;
  Address P = R.newNode(1); // Field a stays null.
  R.Roots.Slots.push_back(P);
  Address Q = R.newNode(2);
  R.setRef(Q, CoallocRig::kFieldA, Q); // Self reference.
  R.Roots.Slots.push_back(Q);
  R.Gc.collectMinor();
  EXPECT_EQ(R.Gc.stats().ObjectsCoallocated, 0u);
  Address Q2 = R.Roots.Slots[1];
  EXPECT_EQ(R.getRef(Q2, CoallocRig::kFieldA), Q2);
}

TEST(Coallocation, AlreadyPromotedChildNotCoallocated) {
  CoallocRig R;
  Address C = R.newIntArray(4);
  Address P = R.newNode(1);
  R.setRef(P, CoallocRig::kFieldA, C);
  // The child is also a direct root processed BEFORE the parent.
  R.Roots.Slots.push_back(C);
  R.Roots.Slots.push_back(P);
  R.Gc.collectMinor();
  EXPECT_EQ(R.Gc.stats().ObjectsCoallocated, 0u);
  Address P2 = R.Roots.Slots[1];
  EXPECT_EQ(R.getRef(P2, CoallocRig::kFieldA), R.Roots.Slots[0])
      << "the field must still point at the promoted child";
}

TEST(Coallocation, PairCellSizeUsesCombinedSizeClass) {
  CoallocRig R;
  Address P = R.newNode(1);
  Address C = R.newIntArray(4);
  R.setRef(P, CoallocRig::kFieldA, C);
  R.Roots.Slots.push_back(P);
  R.Gc.collectMinor();
  Address P2 = R.Roots.Slots[0];
  EXPECT_EQ(R.Gc.matureSpace().cellSizeAt(P2),
            SizeClasses::cellBytes(SizeClasses::classFor(64)));
}

TEST(Coallocation, SharedCellStaysWhileChildLives) {
  CoallocRig R;
  Address P = R.newNode(1);
  Address C = R.newIntArray(4);
  R.Mem.writeWord(R.Model.elementAddress(C, 2), 777);
  R.setRef(P, CoallocRig::kFieldA, C);
  R.Roots.Slots.push_back(P);
  R.Roots.Slots.push_back(C); // Direct root to the child as well...
  // ...but ordered after the parent, so the pair co-allocates.
  R.Gc.collectMinor();
  ASSERT_EQ(R.Gc.stats().ObjectsCoallocated, 1u);
  Address C2 = R.Roots.Slots[1];

  // Drop the parent; the child must keep the shared cell alive.
  R.Roots.Slots.erase(R.Roots.Slots.begin());
  R.Gc.collectFull();
  EXPECT_EQ(R.Roots.Slots[0], C2) << "mature mark-sweep does not move";
  EXPECT_EQ(R.Mem.readWord(R.Model.elementAddress(C2, 2)), 777u);
  EXPECT_EQ(R.Gc.matureSpace().stats().CellsInUse, 1u);

  // Drop the child too: the shared cell finally dies.
  R.Roots.Slots.clear();
  R.Gc.collectFull();
  EXPECT_EQ(R.Gc.matureSpace().stats().CellsInUse, 0u);
}

TEST(Coallocation, PairSurvivesSubsequentFullCollections) {
  CoallocRig R;
  Address P = R.newNode(3);
  Address C = R.newIntArray(4);
  R.setRef(P, CoallocRig::kFieldA, C);
  R.Roots.Slots.push_back(P);
  R.Gc.collectMinor();
  R.Gc.collectFull();
  R.Gc.collectFull();
  Address P2 = R.Roots.Slots[0];
  EXPECT_EQ(R.idOf(P2), 3);
  EXPECT_EQ(R.getRef(P2, CoallocRig::kFieldA), P2 + 32);
  EXPECT_EQ(R.Gc.matureSpace().stats().CellsInUse, 1u);
}

TEST(Coallocation, ArrayParentsAreNeverCoallocated) {
  CoallocRig R;
  R.Advisor.Target = R.RefArr; // Try to target an array class.
  uint32_t Bytes = R.Model.arrayObjectBytes(R.RefArr, 2);
  Address Arr = R.Gc.allocate(R.RefArr, Bytes, 2);
  Address N = R.newNode(1);
  R.setRef(Arr, objheader::kHeaderBytes, N);
  R.Roots.Slots.push_back(Arr);
  R.Gc.collectMinor();
  EXPECT_EQ(R.Gc.stats().ObjectsCoallocated, 0u);
}

TEST(Coallocation, DisabledAdvisorMeansPlainPromotion) {
  GcRig<GenMSPlan> R; // No advisor attached at all.
  Address P = R.newNode(1);
  Address C = R.newIntArray(4);
  R.setRef(P, GcRig<GenMSPlan>::kFieldA, C);
  R.Roots.Slots.push_back(P);
  R.Gc.collectMinor();
  EXPECT_EQ(R.Gc.stats().ObjectsCoallocated, 0u);
}
