//===-- tests/support/JsonTest.cpp ----------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

json::ValuePtr parseOk(const std::string &Text) {
  bool Ok = false;
  json::ValuePtr V = json::parse(Text, Ok);
  EXPECT_TRUE(Ok) << Text;
  return V;
}

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(parseOk("null") != nullptr);
  EXPECT_TRUE(parseOk("true")->B);
  EXPECT_FALSE(parseOk("false")->B);
  EXPECT_DOUBLE_EQ(parseOk("42")->Num, 42.0);
  EXPECT_DOUBLE_EQ(parseOk("-1.5e3")->Num, -1500.0);
  EXPECT_EQ(parseOk("\"hi\"")->Str, "hi");
}

TEST(JsonTest, ParsesEscapes) {
  EXPECT_EQ(parseOk("\"a\\\"b\"")->Str, "a\"b");
  EXPECT_EQ(parseOk("\"a\\\\b\"")->Str, "a\\b");
  EXPECT_EQ(parseOk("\"a\\nb\"")->Str, "a\nb");
}

TEST(JsonTest, ParsesContainers) {
  json::ValuePtr V = parseOk("{\"a\": [1, 2, {\"b\": true}], \"c\": null}");
  ASSERT_TRUE(V->isObject());
  json::ValuePtr A = V->get("a");
  ASSERT_TRUE(A && A->isArray());
  ASSERT_EQ(A->Arr.size(), 3u);
  EXPECT_DOUBLE_EQ(A->Arr[1]->Num, 2.0);
  EXPECT_TRUE(A->Arr[2]->get("b")->B);
  EXPECT_TRUE(V->get("c") != nullptr);
  EXPECT_EQ(V->get("missing"), nullptr);
}

TEST(JsonTest, NumAndStrHelpers) {
  json::ValuePtr V = parseOk("{\"n\": 7, \"s\": \"x\"}");
  EXPECT_DOUBLE_EQ(V->num("n"), 7.0);
  EXPECT_DOUBLE_EQ(V->num("missing", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(V->num("s", -1.0), -1.0); // Wrong type -> default.
  EXPECT_EQ(V->str("s"), "x");
  EXPECT_EQ(V->str("missing", "d"), "d");
  EXPECT_EQ(V->str("n", "d"), "d");
}

TEST(JsonTest, RejectsGarbage) {
  bool Ok = true;
  json::parse("{", Ok);
  EXPECT_FALSE(Ok);
  Ok = true;
  json::parse("[1, 2,]", Ok);
  EXPECT_FALSE(Ok);
  Ok = true;
  json::parse("42 garbage", Ok);
  EXPECT_FALSE(Ok);
  Ok = true;
  json::parse("", Ok);
  EXPECT_FALSE(Ok);
}

TEST(JsonTest, WhitespaceTolerant) {
  json::ValuePtr V = parseOk("  {\n  \"k\" :\t1 } \n");
  EXPECT_DOUBLE_EQ(V->num("k"), 1.0);
}

} // namespace
