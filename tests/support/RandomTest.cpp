//===-- tests/support/RandomTest.cpp --------------------------------------===//

#include "support/Random.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using namespace hpmvm;

TEST(Random, Deterministic) {
  SplitMix64 A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Random, DifferentSeedsDiffer) {
  SplitMix64 A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_LT(Same, 2);
}

// Property sweep: nextBelow stays in range for many bounds.
class RandomBoundsTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RandomBoundsTest, NextBelowInRange) {
  SplitMix64 Rng(GetParam());
  for (uint64_t Bound : {1ull, 2ull, 3ull, 7ull, 256ull, 1000000ull}) {
    for (int I = 0; I != 200; ++I)
      EXPECT_LT(Rng.nextBelow(Bound), Bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBoundsTest,
                         testing::Values(1, 42, 0xdeadbeef, 7777777));

TEST(Random, NextInRangeInclusive) {
  SplitMix64 Rng(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    uint64_t V = Rng.nextInRange(10, 13);
    EXPECT_GE(V, 10u);
    EXPECT_LE(V, 13u);
    SawLo |= V == 10;
    SawHi |= V == 13;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Random, RoughlyUniform) {
  SplitMix64 Rng(5);
  int Buckets[8] = {};
  const int N = 80000;
  for (int I = 0; I != N; ++I)
    ++Buckets[Rng.nextBelow(8)];
  for (int B : Buckets) {
    EXPECT_GT(B, N / 8 - N / 40);
    EXPECT_LT(B, N / 8 + N / 40);
  }
}

TEST(Random, NextDoubleUnit) {
  SplitMix64 Rng(77);
  for (int I = 0; I != 1000; ++I) {
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Random, ShuffleIsPermutation) {
  SplitMix64 Rng(11);
  std::vector<int> V(100);
  for (int I = 0; I != 100; ++I)
    V[I] = I;
  shuffle(V.data(), V.size(), Rng);
  std::set<int> S(V.begin(), V.end());
  EXPECT_EQ(S.size(), 100u);
  // Overwhelmingly unlikely to be identity.
  bool Moved = false;
  for (int I = 0; I != 100; ++I)
    Moved |= V[I] != I;
  EXPECT_TRUE(Moved);
}

TEST(Random, ShuffleTrivialSizes) {
  SplitMix64 Rng(3);
  std::vector<int> Empty;
  shuffle(Empty.data(), 0, Rng); // Must not crash.
  std::vector<int> One = {5};
  shuffle(One.data(), 1, Rng);
  EXPECT_EQ(One[0], 5);
}
