//===-- tests/support/TableWriterTest.cpp ---------------------------------===//

#include "support/TableWriter.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

std::string capture(const TableWriter &T, bool Csv) {
  char *Buf = nullptr;
  size_t Len = 0;
  FILE *F = open_memstream(&Buf, &Len);
  if (Csv)
    T.printCsv(F);
  else
    T.print(F);
  fclose(F);
  std::string S(Buf, Len);
  free(Buf);
  return S;
}

} // namespace

TEST(TableWriter, AlignedOutput) {
  TableWriter T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"longer", "12345"});
  std::string Out = capture(T, false);
  // Header, separator, two rows.
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("-----"), std::string::npos);
  EXPECT_NE(Out.find("longer"), std::string::npos);
  // Right-aligned numeric column: "1" is padded to the width of "12345".
  EXPECT_NE(Out.find("    1\n"), std::string::npos);
}

TEST(TableWriter, CsvEscaping) {
  TableWriter T({"k", "v"});
  T.addRow({"plain", "has,comma"});
  T.addRow({"q", "say \"hi\""});
  std::string Out = capture(T, true);
  EXPECT_NE(Out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(Out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableWriter, RowCount) {
  TableWriter T({"a"});
  EXPECT_EQ(T.numRows(), 0u);
  T.addRow({"x"});
  T.addRow({"y"});
  EXPECT_EQ(T.numRows(), 2u);
}
