//===-- tests/support/StatisticsTest.cpp ----------------------------------===//

#include "support/Statistics.h"

#include <gtest/gtest.h>

using namespace hpmvm;

TEST(RunningStat, Empty) {
  RunningStat S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_EQ(S.mean(), 0.0);
  EXPECT_EQ(S.stddev(), 0.0);
}

TEST(RunningStat, KnownValues) {
  RunningStat S;
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(X);
  EXPECT_EQ(S.count(), 8u);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  // Sample stddev of this classic set is sqrt(32/7).
  EXPECT_NEAR(S.stddev(), 2.13809, 1e-4);
  EXPECT_EQ(S.min(), 2.0);
  EXPECT_EQ(S.max(), 9.0);
}

TEST(RunningStat, SinglePoint) {
  RunningStat S;
  S.add(3.5);
  EXPECT_DOUBLE_EQ(S.mean(), 3.5);
  EXPECT_EQ(S.stddev(), 0.0);
  EXPECT_EQ(S.min(), 3.5);
  EXPECT_EQ(S.max(), 3.5);
}

TEST(MovingAverage, WindowSemantics) {
  MovingAverage M(3);
  EXPECT_DOUBLE_EQ(M.add(3.0), 3.0);
  EXPECT_DOUBLE_EQ(M.add(6.0), 4.5);
  EXPECT_DOUBLE_EQ(M.add(9.0), 6.0);
  // Window slides: (6+9+12)/3.
  EXPECT_DOUBLE_EQ(M.add(12.0), 9.0);
  EXPECT_DOUBLE_EQ(M.add(0.0), 7.0);
}

TEST(MovingAverage, WindowOfOne) {
  MovingAverage M(1);
  EXPECT_DOUBLE_EQ(M.add(5.0), 5.0);
  EXPECT_DOUBLE_EQ(M.add(7.0), 7.0);
}

TEST(GeometricMean, Basics) {
  EXPECT_DOUBLE_EQ(geometricMean({}), 1.0);
  EXPECT_DOUBLE_EQ(geometricMean({4.0}), 4.0);
  EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geometricMean({1.0, 1.0, 8.0}), 2.0, 1e-12);
}
