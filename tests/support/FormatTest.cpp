//===-- tests/support/FormatTest.cpp --------------------------------------===//

#include "support/Format.h"

#include <gtest/gtest.h>

using namespace hpmvm;

TEST(Format, Printf) {
  EXPECT_EQ(formatString("x=%d", 42), "x=42");
  EXPECT_EQ(formatString("%s/%s", "a", "b"), "a/b");
  EXPECT_EQ(formatString("%05u", 7u), "00007");
  EXPECT_EQ(formatString("%.2f", 3.14159), "3.14");
}

TEST(Format, EmptyAndLong) {
  EXPECT_EQ(formatString("%s", ""), "");
  std::string Long(5000, 'x');
  EXPECT_EQ(formatString("%s", Long.c_str()).size(), 5000u);
}

TEST(Format, ThousandsSep) {
  EXPECT_EQ(withThousandsSep(0), "0");
  EXPECT_EQ(withThousandsSep(1), "1");
  EXPECT_EQ(withThousandsSep(999), "999");
  EXPECT_EQ(withThousandsSep(1000), "1,000");
  EXPECT_EQ(withThousandsSep(1234567), "1,234,567");
  EXPECT_EQ(withThousandsSep(1000000000ull), "1,000,000,000");
}

TEST(Format, AsPercent) {
  EXPECT_EQ(asPercent(0.139), "+13.9%");
  EXPECT_EQ(asPercent(-0.28), "-28.0%");
  EXPECT_EQ(asPercent(0.0), "+0.0%");
}
