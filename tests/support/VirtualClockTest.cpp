//===-- tests/support/VirtualClockTest.cpp --------------------------------===//

#include "support/VirtualClock.h"

#include <gtest/gtest.h>

using namespace hpmvm;

TEST(VirtualClock, AdvanceAndReset) {
  VirtualClock C;
  EXPECT_EQ(C.now(), 0u);
  C.advance(100);
  C.advance(23);
  EXPECT_EQ(C.now(), 123u);
  C.reset();
  EXPECT_EQ(C.now(), 0u);
}

TEST(VirtualClock, SecondsAtThreeGigahertz) {
  EXPECT_DOUBLE_EQ(VirtualClock::toSeconds(3000000000ull), 1.0);
  EXPECT_DOUBLE_EQ(VirtualClock::toSeconds(1500000000ull), 0.5);
}

TEST(VirtualClock, MillisRoundTrip) {
  Cycles C = VirtualClock::fromMillis(10.0);
  EXPECT_EQ(C, 30000000ull);
  EXPECT_NEAR(VirtualClock::toSeconds(C) * 1000.0, 10.0, 1e-9);
}
