//===-- tests/support/SpscQueueTest.cpp -----------------------------------===//

#include "support/SpscQueue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

using namespace hpmvm;

TEST(SpscQueue, CapacityRoundsUpToPowerOfTwo) {
  SpscQueue<int> Q(5);
  EXPECT_EQ(Q.capacity(), 8u);
  SpscQueue<int> Q2(8);
  EXPECT_EQ(Q2.capacity(), 8u);
  SpscQueue<int> Q3(1);
  EXPECT_EQ(Q3.capacity(), 1u);
}

TEST(SpscQueue, PushPopFifoOrder) {
  SpscQueue<int> Q(4);
  EXPECT_TRUE(Q.empty());
  for (int I = 0; I != 4; ++I)
    EXPECT_TRUE(Q.tryPush(I));
  EXPECT_FALSE(Q.tryPush(99)) << "queue should be full";
  EXPECT_EQ(Q.size(), 4u);
  for (int I = 0; I != 4; ++I) {
    int V = -1;
    EXPECT_TRUE(Q.tryPop(V));
    EXPECT_EQ(V, I);
  }
  int V;
  EXPECT_FALSE(Q.tryPop(V));
  EXPECT_TRUE(Q.empty());
}

TEST(SpscQueue, PeekDoesNotConsume) {
  SpscQueue<int> Q(4);
  EXPECT_EQ(Q.peek(), nullptr);
  Q.tryPush(7);
  Q.tryPush(8);
  const int *Front = Q.peek();
  ASSERT_NE(Front, nullptr);
  EXPECT_EQ(*Front, 7);
  EXPECT_EQ(*Q.peek(), 7) << "peek must not consume";
  Q.pop();
  ASSERT_NE(Q.peek(), nullptr);
  EXPECT_EQ(*Q.peek(), 8);
  Q.pop();
  EXPECT_EQ(Q.peek(), nullptr);
}

TEST(SpscQueue, WrapsAroundManyTimes) {
  SpscQueue<uint64_t> Q(2);
  for (uint64_t I = 0; I != 1000; ++I) {
    EXPECT_TRUE(Q.tryPush(I));
    uint64_t V = 0;
    EXPECT_TRUE(Q.tryPop(V));
    EXPECT_EQ(V, I);
  }
}

// Cross-thread stress: one producer streams a counter, one consumer checks
// order and completeness. Run under TSan in CI to validate the acquire/
// release pairing.
TEST(SpscQueue, TwoThreadStress) {
  constexpr uint64_t kCount = 20000;
  SpscQueue<uint64_t> Q(64);
  std::thread Producer([&] {
    for (uint64_t I = 0; I != kCount;) {
      if (Q.tryPush(I))
        ++I;
      else
        std::this_thread::yield(); // Single-core machines need the handoff.
    }
  });
  uint64_t Expected = 0;
  uint64_t Sum = 0;
  while (Expected != kCount) {
    uint64_t V;
    if (!Q.tryPop(V)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(V, Expected) << "out-of-order delivery";
    Sum += V;
    ++Expected;
  }
  Producer.join();
  EXPECT_EQ(Sum, kCount * (kCount - 1) / 2);
  EXPECT_TRUE(Q.empty());
}

TEST(SpscQueue, TwoThreadPeekPopConsumer) {
  constexpr uint64_t kCount = 10000;
  SpscQueue<uint64_t> Q(16);
  std::thread Producer([&] {
    for (uint64_t I = 0; I != kCount;) {
      if (Q.tryPush(I))
        ++I;
      else
        std::this_thread::yield();
    }
  });
  for (uint64_t Expected = 0; Expected != kCount;) {
    const uint64_t *Front = Q.peek();
    if (!Front) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(*Front, Expected);
    Q.pop();
    ++Expected;
  }
  Producer.join();
}
