//===-- tests/support/StringInternerTest.cpp ------------------------------===//

#include "support/StringInterner.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace hpmvm;

TEST(StringInterner, IdsAreDenseAndInsertionOrdered) {
  StringInterner In;
  EXPECT_EQ(In.intern("alpha"), 0u);
  EXPECT_EQ(In.intern("beta"), 1u);
  EXPECT_EQ(In.intern("gamma"), 2u);
  EXPECT_EQ(In.size(), 3u);
  // Re-interning returns the original id.
  EXPECT_EQ(In.intern("beta"), 1u);
  EXPECT_EQ(In.size(), 3u);
}

TEST(StringInterner, TextRoundTrips) {
  StringInterner In;
  uint32_t A = In.intern("Item::next");
  uint32_t B = In.intern("");
  EXPECT_STREQ(In.text(A), "Item::next");
  EXPECT_STREQ(In.text(B), "");
}

TEST(StringInterner, FindDoesNotIntern) {
  StringInterner In;
  EXPECT_EQ(In.find("missing"), StringInterner::kNoId);
  EXPECT_EQ(In.size(), 0u);
  uint32_t Id = In.intern("present");
  EXPECT_EQ(In.find("present"), Id);
  EXPECT_EQ(In.size(), 1u);
}

TEST(StringInterner, PointersStayStableAcrossGrowth) {
  StringInterner In;
  const char *First = In.text(In.intern("survivor"));
  std::vector<const char *> Ptrs;
  std::vector<std::string> Names;
  // Push far past the initial table and several arena chunks.
  for (int I = 0; I != 5000; ++I) {
    Names.push_back("method_" + std::to_string(I));
    Ptrs.push_back(In.text(In.intern(Names.back())));
  }
  EXPECT_STREQ(First, "survivor");
  for (int I = 0; I != 5000; ++I) {
    EXPECT_STREQ(Ptrs[I], Names[I].c_str());
    EXPECT_EQ(In.intern(Names[I]), static_cast<uint32_t>(I + 1));
  }
  EXPECT_EQ(In.size(), 5001u);
}

TEST(StringInterner, LongStringsGetDedicatedChunks) {
  StringInterner In;
  std::string Long(10000, 'x');
  uint32_t Id = In.intern(Long);
  EXPECT_STREQ(In.text(Id), Long.c_str());
  // Interleaved short strings still work.
  uint32_t Short = In.intern("y");
  EXPECT_STREQ(In.text(Short), "y");
  EXPECT_EQ(In.intern(Long), Id);
}
