//===-- tests/core/BottleneckClassifierTest.cpp ---------------------------===//
//
// The classify half of the policy loop: window accounting, the
// four-label taxonomy over weighted per-kind rates, the hotness floor,
// and hysteresis exactly at window boundaries.
//
//===----------------------------------------------------------------------===//

#include "core/BottleneckClassifier.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

/// No multiplexer: scale() is 1.0, so estimated events == raw counts
/// (KindWeight defaults to 1), and thresholds read in plain sample counts.
ClassifierConfig unitConfig() {
  ClassifierConfig C;
  C.WindowPeriods = 1;
  C.MinWindowSamples = 1.0;
  C.TlbFraction = 0.4;
  C.BandwidthFraction = 0.5;
  C.LatencyRate = 50.0;
  C.Hysteresis = 1;
  return C;
}

void feed(BottleneckClassifier &C, MethodId M, HpmEventKind K, int N) {
  AttributedSample S;
  S.Kind = K;
  S.Method = M;
  for (int I = 0; I != N; ++I)
    C.onSample(S);
}

void closePeriod(BottleneckClassifier &C, Cycles Now = 1000) {
  PeriodContext Ctx;
  Ctx.Now = Now;
  C.onPeriod(Ctx);
}

TEST(BottleneckClassifier, WindowClosesOnlyAtTheConfiguredPeriod) {
  ClassifierConfig Cfg = unitConfig();
  Cfg.WindowPeriods = 3;
  BottleneckClassifier C(Cfg);
  feed(C, 1, HpmEventKind::L1DMiss, 60);
  closePeriod(C);
  EXPECT_FALSE(C.windowClosed());
  EXPECT_EQ(C.windowsCompleted(), 0u);
  closePeriod(C);
  EXPECT_FALSE(C.windowClosed());
  closePeriod(C);
  EXPECT_TRUE(C.windowClosed());
  EXPECT_EQ(C.windowsCompleted(), 1u);
  // The flag is per-pass: the next period resets it.
  closePeriod(C);
  EXPECT_FALSE(C.windowClosed());
}

TEST(BottleneckClassifier, CountsAccumulateAcrossTheWholeWindow) {
  ClassifierConfig Cfg = unitConfig();
  Cfg.WindowPeriods = 2;
  BottleneckClassifier C(Cfg);
  feed(C, 1, HpmEventKind::L1DMiss, 30);
  closePeriod(C);
  feed(C, 1, HpmEventKind::L1DMiss, 30);
  closePeriod(C);
  ASSERT_TRUE(C.windowClosed());
  EXPECT_DOUBLE_EQ(C.windowRate(1), 60.0);
  EXPECT_EQ(C.label(1), BottleneckLabel::LatencyBound) << "60 >= 50";
}

TEST(BottleneckClassifier, TaxonomyLabelsEachRegime) {
  BottleneckClassifier C(unitConfig());
  // m1: DTLB dominates (7 of 17 scaled events = 41% >= 40%).
  feed(C, 1, HpmEventKind::L1DMiss, 10);
  feed(C, 1, HpmEventKind::DtlbMiss, 7);
  // m2: L2/L1 = 0.6 >= 0.5, DTLB share 0.
  feed(C, 2, HpmEventKind::L1DMiss, 10);
  feed(C, 2, HpmEventKind::L2Miss, 6);
  // m3: pure L1 at 60 >= LatencyRate 50.
  feed(C, 3, HpmEventKind::L1DMiss, 60);
  // m4: hot enough to classify, but modest misses on every axis.
  feed(C, 4, HpmEventKind::L1DMiss, 10);
  closePeriod(C);
  EXPECT_EQ(C.label(1), BottleneckLabel::TlbBound);
  EXPECT_EQ(C.label(2), BottleneckLabel::BandwidthBound);
  EXPECT_EQ(C.label(3), BottleneckLabel::LatencyBound);
  EXPECT_EQ(C.label(4), BottleneckLabel::ComputeBound);
  // hotMethods() lists them MethodId-ascending with their window rates.
  ASSERT_EQ(C.hotMethods().size(), 4u);
  EXPECT_EQ(C.hotMethods()[0].Method, 1u);
  EXPECT_EQ(C.hotMethods()[2].Label, BottleneckLabel::LatencyBound);
  EXPECT_DOUBLE_EQ(C.hotMethods()[2].L1Rate, 60.0);
}

TEST(BottleneckClassifier, KindWeightTurnsSampleCountsIntoEvents) {
  // A DTLB slot sampled 10x as densely must not look 10x as important:
  // with weights matching the sampling intervals, 5 DTLB samples at
  // weight 100 (500 events) lose to 10 L1 samples at weight 1000
  // (10000 events) -- share 4.8%, nowhere near TlbFraction.
  ClassifierConfig Cfg = unitConfig();
  Cfg.KindWeight[static_cast<size_t>(HpmEventKind::L1DMiss)] = 1000.0;
  Cfg.KindWeight[static_cast<size_t>(HpmEventKind::DtlbMiss)] = 100.0;
  Cfg.LatencyRate = 5000.0;
  BottleneckClassifier C(Cfg);
  feed(C, 1, HpmEventKind::L1DMiss, 10);
  feed(C, 1, HpmEventKind::DtlbMiss, 5);
  closePeriod(C);
  EXPECT_EQ(C.label(1), BottleneckLabel::LatencyBound);
  EXPECT_DOUBLE_EQ(C.windowRate(1), 10500.0);
}

TEST(BottleneckClassifier, BelowTheFloorKeepsTheLabelButIsNotHot) {
  ClassifierConfig Cfg = unitConfig();
  Cfg.MinWindowSamples = 5.0;
  BottleneckClassifier C(Cfg);
  feed(C, 1, HpmEventKind::L1DMiss, 60);
  closePeriod(C);
  ASSERT_EQ(C.label(1), BottleneckLabel::LatencyBound);
  // Next window: only 2 samples -- under the floor.
  feed(C, 1, HpmEventKind::L1DMiss, 2);
  closePeriod(C);
  EXPECT_TRUE(C.hotMethods().empty());
  EXPECT_EQ(C.label(1), BottleneckLabel::LatencyBound)
      << "a quiet window must not erase an established label";
}

TEST(BottleneckClassifier, HysteresisHoldsTheLabelAtAWindowBoundary) {
  ClassifierConfig Cfg = unitConfig();
  Cfg.Hysteresis = 2;
  BottleneckClassifier C(Cfg);
  // Window 1 establishes latency-bound (first classification is
  // immediate).
  feed(C, 1, HpmEventKind::L1DMiss, 60);
  closePeriod(C);
  ASSERT_EQ(C.label(1), BottleneckLabel::LatencyBound);
  // Window 2 looks bandwidth-bound -- one window is not enough to flip.
  feed(C, 1, HpmEventKind::L1DMiss, 10);
  feed(C, 1, HpmEventKind::L2Miss, 8);
  closePeriod(C);
  EXPECT_EQ(C.label(1), BottleneckLabel::LatencyBound);
  // Window 3 agrees with window 2: the replacement wins its second
  // consecutive window and flips exactly at this boundary.
  feed(C, 1, HpmEventKind::L1DMiss, 10);
  feed(C, 1, HpmEventKind::L2Miss, 8);
  closePeriod(C);
  EXPECT_EQ(C.label(1), BottleneckLabel::BandwidthBound);
}

TEST(BottleneckClassifier, AnInterruptedStreakDoesNotFlip) {
  ClassifierConfig Cfg = unitConfig();
  Cfg.Hysteresis = 2;
  BottleneckClassifier C(Cfg);
  feed(C, 1, HpmEventKind::L1DMiss, 60);
  closePeriod(C);
  ASSERT_EQ(C.label(1), BottleneckLabel::LatencyBound);
  // bandwidth, latency, bandwidth: no two consecutive wins, no flip.
  feed(C, 1, HpmEventKind::L1DMiss, 10);
  feed(C, 1, HpmEventKind::L2Miss, 8);
  closePeriod(C);
  feed(C, 1, HpmEventKind::L1DMiss, 60);
  closePeriod(C);
  feed(C, 1, HpmEventKind::L1DMiss, 10);
  feed(C, 1, HpmEventKind::L2Miss, 8);
  closePeriod(C);
  EXPECT_EQ(C.label(1), BottleneckLabel::LatencyBound);
  // A second consecutive bandwidth window finally flips it.
  feed(C, 1, HpmEventKind::L1DMiss, 10);
  feed(C, 1, HpmEventKind::L2Miss, 8);
  closePeriod(C);
  EXPECT_EQ(C.label(1), BottleneckLabel::BandwidthBound);
}

TEST(BottleneckClassifier, BatchAndScalarDeliveryAgree) {
  BottleneckClassifier A(unitConfig()), B(unitConfig());
  std::vector<AttributedSample> Batch(12);
  for (size_t I = 0; I != Batch.size(); ++I) {
    Batch[I].Kind = HpmEventKind::L2Miss;
    Batch[I].Method = static_cast<MethodId>(1 + I % 2);
  }
  A.consumeBatch(Batch);
  for (const AttributedSample &S : Batch)
    B.onSample(S);
  closePeriod(A);
  closePeriod(B);
  EXPECT_DOUBLE_EQ(A.windowRate(1), B.windowRate(1));
  EXPECT_DOUBLE_EQ(A.windowRate(2), B.windowRate(2));
  EXPECT_EQ(A.label(1), B.label(1));
}

} // namespace
