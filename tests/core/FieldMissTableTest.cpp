//===-- tests/core/FieldMissTableTest.cpp ---------------------------------===//

#include "core/FieldMissTable.h"

#include <gtest/gtest.h>

using namespace hpmvm;

TEST(FieldMissTable, CountsPerField) {
  FieldMissTable T;
  T.addMiss(3);
  T.addMiss(3, 4);
  T.addMiss(7);
  EXPECT_EQ(T.misses(3), 5u);
  EXPECT_EQ(T.misses(7), 1u);
  EXPECT_EQ(T.misses(99), 0u);
  EXPECT_EQ(T.totalMisses(), 6u);
}

TEST(FieldMissTable, VersionBumpsPerPeriodOnly) {
  FieldMissTable T;
  uint64_t V0 = T.version();
  T.addMiss(1);
  EXPECT_EQ(T.version(), V0) << "counter updates must not thrash caches";
  T.endPeriod(1000);
  EXPECT_EQ(T.version(), V0 + 1);
}

TEST(FieldMissTable, TimelineRecordsTrackedFieldsOnly) {
  FieldMissTable T;
  T.trackField(5);
  T.addMiss(5, 2);
  T.addMiss(6, 9); // Untracked.
  T.endPeriod(100);
  T.addMiss(5, 3);
  T.endPeriod(200);
  T.endPeriod(300); // Empty period.

  const auto &Line = T.timeline(5);
  ASSERT_EQ(Line.size(), 3u);
  EXPECT_EQ(Line[0].At, 100u);
  EXPECT_EQ(Line[0].Delta, 2u);
  EXPECT_EQ(Line[0].Cumulative, 2u);
  EXPECT_EQ(Line[1].Delta, 3u);
  EXPECT_EQ(Line[1].Cumulative, 5u);
  EXPECT_EQ(Line[2].Delta, 0u);
  EXPECT_EQ(Line[2].Cumulative, 5u);
  EXPECT_TRUE(T.timeline(6).empty());
}

TEST(FieldMissTable, TrackingStartsMidRun) {
  FieldMissTable T;
  T.addMiss(4, 10); // Before tracking: counted, not in the timeline.
  T.trackField(4);
  T.addMiss(4, 2);
  T.endPeriod(50);
  EXPECT_EQ(T.misses(4), 12u);
  ASSERT_EQ(T.timeline(4).size(), 1u);
  EXPECT_EQ(T.timeline(4)[0].Delta, 2u);
}

TEST(FieldMissTable, ResetKeepsTrackingSet) {
  FieldMissTable T;
  T.trackField(1);
  T.addMiss(1);
  T.endPeriod(10);
  T.reset();
  EXPECT_EQ(T.misses(1), 0u);
  EXPECT_TRUE(T.timeline(1).empty());
  T.addMiss(1);
  T.endPeriod(20);
  EXPECT_EQ(T.timeline(1).size(), 1u) << "still tracked after reset";
}

TEST(FieldMissTable, BoundedModeEvictsColdestField) {
  FieldMissTable T;
  T.setCapacity(2);
  T.addMiss(1, 10);
  T.addMiss(2, 1); // Coldest.
  T.addMiss(3, 5); // Arrives at a full table -> field 2 goes.
  EXPECT_EQ(T.numFields(), 2u);
  EXPECT_EQ(T.evictions(), 1u);
  EXPECT_EQ(T.misses(2), 0u);
  EXPECT_EQ(T.misses(1), 10u);
  EXPECT_EQ(T.misses(3), 5u);
  // An existing field never triggers eviction.
  T.addMiss(1, 1);
  EXPECT_EQ(T.evictions(), 1u);
}

TEST(FieldMissTable, EvictedFieldRestartsFromZero) {
  FieldMissTable T;
  T.setCapacity(1);
  T.addMiss(1, 100);
  T.addMiss(2, 1); // Evicts 1.
  T.addMiss(1, 1); // Evicts 2; field 1 restarts cold.
  EXPECT_EQ(T.misses(1), 1u);
  EXPECT_EQ(T.evictions(), 2u);
  // totalMisses is cumulative across evictions (it feeds rate metrics).
  EXPECT_EQ(T.totalMisses(), 102u);
}

TEST(FieldMissTable, TrackedFieldsArePinned) {
  FieldMissTable T;
  T.setCapacity(2);
  T.trackField(1);
  T.addMiss(1, 1);  // Tracked, coldest -- but pinned.
  T.addMiss(2, 50);
  T.addMiss(3, 5);  // Must evict 2, not the tracked 1.
  EXPECT_EQ(T.misses(1), 1u);
  EXPECT_EQ(T.misses(2), 0u);
  EXPECT_EQ(T.misses(3), 5u);
}

TEST(FieldMissTable, AllTrackedGrowsPastCap) {
  FieldMissTable T;
  T.setCapacity(1);
  T.trackField(1);
  T.trackField(2);
  T.addMiss(1);
  T.addMiss(2); // No untracked victim: table grows instead.
  EXPECT_EQ(T.numFields(), 2u);
  EXPECT_EQ(T.evictions(), 0u);
}
