//===-- tests/core/FieldMissTableTest.cpp ---------------------------------===//

#include "core/FieldMissTable.h"

#include <gtest/gtest.h>

using namespace hpmvm;

TEST(FieldMissTable, CountsPerField) {
  FieldMissTable T;
  T.addMiss(3);
  T.addMiss(3, 4);
  T.addMiss(7);
  EXPECT_EQ(T.misses(3), 5u);
  EXPECT_EQ(T.misses(7), 1u);
  EXPECT_EQ(T.misses(99), 0u);
  EXPECT_EQ(T.totalMisses(), 6u);
}

TEST(FieldMissTable, VersionBumpsPerPeriodOnly) {
  FieldMissTable T;
  uint64_t V0 = T.version();
  T.addMiss(1);
  EXPECT_EQ(T.version(), V0) << "counter updates must not thrash caches";
  T.endPeriod(1000);
  EXPECT_EQ(T.version(), V0 + 1);
}

TEST(FieldMissTable, TimelineRecordsTrackedFieldsOnly) {
  FieldMissTable T;
  T.trackField(5);
  T.addMiss(5, 2);
  T.addMiss(6, 9); // Untracked.
  T.endPeriod(100);
  T.addMiss(5, 3);
  T.endPeriod(200);
  T.endPeriod(300); // Empty period.

  const auto &Line = T.timeline(5);
  ASSERT_EQ(Line.size(), 3u);
  EXPECT_EQ(Line[0].At, 100u);
  EXPECT_EQ(Line[0].Delta, 2u);
  EXPECT_EQ(Line[0].Cumulative, 2u);
  EXPECT_EQ(Line[1].Delta, 3u);
  EXPECT_EQ(Line[1].Cumulative, 5u);
  EXPECT_EQ(Line[2].Delta, 0u);
  EXPECT_EQ(Line[2].Cumulative, 5u);
  EXPECT_TRUE(T.timeline(6).empty());
}

TEST(FieldMissTable, TrackingStartsMidRun) {
  FieldMissTable T;
  T.addMiss(4, 10); // Before tracking: counted, not in the timeline.
  T.trackField(4);
  T.addMiss(4, 2);
  T.endPeriod(50);
  EXPECT_EQ(T.misses(4), 12u);
  ASSERT_EQ(T.timeline(4).size(), 1u);
  EXPECT_EQ(T.timeline(4)[0].Delta, 2u);
}

TEST(FieldMissTable, ResetKeepsTrackingSet) {
  FieldMissTable T;
  T.trackField(1);
  T.addMiss(1);
  T.endPeriod(10);
  T.reset();
  EXPECT_EQ(T.misses(1), 0u);
  EXPECT_TRUE(T.timeline(1).empty());
  T.addMiss(1);
  T.endPeriod(20);
  EXPECT_EQ(T.timeline(1).size(), 1u) << "still tracked after reset";
}
