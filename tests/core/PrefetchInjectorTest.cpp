//===-- tests/core/PrefetchInjectorTest.cpp -------------------------------===//

#include "core/PrefetchInjector.h"

#include "core/OptimizationController.h"
#include "gc/GenMSPlan.h"
#include "vm/AdaptiveOptimizationSystem.h"
#include "vm/BytecodeBuilder.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

/// Fixture: a method whose only reference-field load is `p.next`.
struct SimpleRig {
  VirtualMachine Vm;
  GenMSPlan Gc;
  ClassId Node;
  FieldId FNext, FVal;
  MethodId Id;

  SimpleRig()
      : Vm([] {
          VmConfig C;
          C.HeapBytes = 8 * 1024 * 1024;
          return C;
        }()),
        Gc(Vm.objects(), Vm.clock(),
           CollectorConfig{.HeapBytes = 8 * 1024 * 1024}) {
    Vm.setCollector(&Gc);
    Node = Vm.classes().defineClass("Node", {{"next", true},
                                             {"val", false}});
    FNext = Vm.classes().fieldId(Node, "next");
    FVal = Vm.classes().fieldId(Node, "val");
    // f(p, n) -> int: loop n { p = p.next; acc += p.val; }
    BytecodeBuilder B("f");
    uint32_t P = B.addParam(ValKind::Ref);
    uint32_t N = B.addParam(ValKind::Int);
    uint32_t I = B.newLocal(), Acc = B.newLocal();
    B.returns(RetKind::Int);
    B.iconst(0).istore(I).iconst(0).istore(Acc);
    Label Loop = B.label(), Done = B.label();
    B.bind(Loop).iload(I).iload(N).ifICmp(CondKind::Ge, Done);
    B.aload(P).getfield(FNext).astore(P);
    B.aload(P).getfield(FVal).iload(Acc).iadd().istore(Acc);
    B.iinc(I, 1).jump(Loop);
    B.bind(Done).iload(Acc).iret();
    Id = Vm.addMethod(B.build());
    Vm.aos().compileNow(Vm.method(Id));
  }

  /// Builds a 3-node ring; returns its head.
  Address buildRing() {
    Address A = Gc.allocate(Node, 32, 0);
    Address Bn = Gc.allocate(Node, 32, 0);
    Address C = Gc.allocate(Node, 32, 0);
    HeapMemory &Mem = Vm.heapMemory();
    uint32_t Off = Vm.classes().field(FNext).Offset;
    uint32_t ValOff = Vm.classes().field(FVal).Offset;
    Mem.writeWord(A + Off, Bn);
    Mem.writeWord(Bn + Off, C);
    Mem.writeWord(C + Off, A);
    Mem.writeWord(A + ValOff, 1);
    Mem.writeWord(Bn + ValOff, 2);
    Mem.writeWord(C + ValOff, 3);
    return A;
  }
};

uint32_t countPrefetches(const MachineFunction &F) {
  uint32_t N = 0;
  for (const MachineInst &I : F.Insts)
    N += I.Op == MOp::Prefetch;
  return N;
}

} // namespace

TEST(PrefetchInjector, InsertsAfterHotRefLoadsOnly) {
  SimpleRig R;
  FieldMissTable T;
  T.addMiss(R.FNext, 50);
  T.addMiss(R.FVal, 500); // Int field: must never be prefetched.
  PrefetchInjectionStats S =
      PrefetchInjector::injectHotPrefetches(R.Vm, T, 10);
  EXPECT_EQ(S.MethodsRewritten, 1u);
  EXPECT_EQ(S.PrefetchesInserted, 1u);
  const MachineFunction &F = R.Vm.compiledCode(R.Vm.method(R.Id).OptIndex);
  EXPECT_EQ(countPrefetches(F), 1u);
  // The prefetch directly follows the load of next and uses its Dst.
  for (size_t I = 0; I + 1 < F.Insts.size(); ++I)
    if (F.Insts[I].Op == MOp::LoadField &&
        F.Insts[I].Imm == static_cast<int32_t>(R.FNext)) {
      ASSERT_EQ(F.Insts[I + 1].Op, MOp::Prefetch);
      EXPECT_EQ(F.Insts[I + 1].SrcA, F.Insts[I].Dst);
    }
}

TEST(PrefetchInjector, ColdFieldsUntouched) {
  SimpleRig R;
  FieldMissTable T;
  T.addMiss(R.FNext, 3);
  PrefetchInjectionStats S =
      PrefetchInjector::injectHotPrefetches(R.Vm, T, 10);
  EXPECT_EQ(S.MethodsRewritten, 0u);
}

TEST(PrefetchInjector, RewrittenCodeStillComputesTheSameResult) {
  SimpleRig R;
  Address Ring = R.buildRing();
  // Root the ring so allocation-free invocations can't lose it (no GC
  // runs here, but belt and braces).
  uint32_t G = R.Vm.addGlobal(ValKind::Ref);
  R.Vm.setGlobal(G, Value::makeRef(Ring));

  int32_t Before =
      R.Vm.invoke(R.Id, {Value::makeRef(Ring), Value::makeInt(7)}).asInt();
  FieldMissTable T;
  T.addMiss(R.FNext, 100);
  PrefetchInjector::injectHotPrefetches(R.Vm, T, 10);
  int32_t After =
      R.Vm.invoke(R.Id, {Value::makeRef(Ring), Value::makeInt(7)}).asInt();
  EXPECT_EQ(Before, After);
  EXPECT_GT(R.Vm.memory().stats().SwPrefetches, 0u);
}

TEST(PrefetchInjector, IdempotentAcrossPasses) {
  SimpleRig R;
  FieldMissTable T;
  T.addMiss(R.FNext, 100);
  PrefetchInjector::injectHotPrefetches(R.Vm, T, 10);
  uint32_t OptIdx = R.Vm.method(R.Id).OptIndex;
  PrefetchInjectionStats S2 =
      PrefetchInjector::injectHotPrefetches(R.Vm, T, 10);
  EXPECT_EQ(S2.MethodsRewritten, 0u);
  EXPECT_EQ(R.Vm.method(R.Id).OptIndex, OptIdx);
}

TEST(PrefetchInjector, BranchTargetsRemappedCorrectly) {
  SimpleRig R;
  const MachineFunction &Before =
      R.Vm.compiledCode(R.Vm.method(R.Id).OptIndex);
  size_t SizeBefore = Before.Insts.size();
  FieldMissTable T;
  T.addMiss(R.FNext, 100);
  PrefetchInjector::injectHotPrefetches(R.Vm, T, 10);
  const MachineFunction &F = R.Vm.compiledCode(R.Vm.method(R.Id).OptIndex);
  EXPECT_EQ(F.Insts.size(), SizeBefore + 1);
  for (const MachineInst &I : F.Insts)
    switch (I.Op) {
    case MOp::Br: case MOp::BrCmp: case MOp::BrZero:
    case MOp::BrNull: case MOp::BrNonNull:
      ASSERT_GE(I.Imm, 0);
      ASSERT_LT(static_cast<size_t>(I.Imm), F.Insts.size());
      break;
    default:
      break;
    }
  // And the loop still terminates with the right answer.
  Address Ring = R.buildRing();
  EXPECT_EQ(
      R.Vm.invoke(R.Id, {Value::makeRef(Ring), Value::makeInt(3)}).asInt(),
      2 + 3 + 1);
}

namespace {

/// Drives the consumer interface: N attributed samples of \p F, then a
/// period boundary at \p Now.
void feedPeriod(PrefetchInjector &P, FieldId F, uint64_t N, Cycles Now) {
  AttributedSample S;
  S.Field = F;
  for (uint64_t I = 0; I != N; ++I)
    P.onSample(S);
  PeriodContext Ctx;
  Ctx.Now = Now;
  P.onPeriod(Ctx);
}

} // namespace

TEST(PrefetchInjector, ConsumerAccumulatesProfileAndTriggersOnce) {
  SimpleRig R;
  PrefetchInjectorConfig C;
  C.TriggerSamples = 9;
  C.MinMisses = 4;
  PrefetchInjector P(R.Vm, C);
  EXPECT_STREQ(P.name(), "prefetch");

  feedPeriod(P, R.FNext, 3, 1000);
  feedPeriod(P, R.FNext, 3, 2000);
  EXPECT_FALSE(P.injected()) << "6 < 9 sampled misses: below trigger";
  feedPeriod(P, R.FNext, 3, 3000);
  EXPECT_TRUE(P.injected());
  EXPECT_EQ(P.stats().MethodsRewritten, 1u);
  EXPECT_EQ(P.stats().PrefetchesInserted, 1u);
  EXPECT_EQ(P.missProfile().misses(R.FNext), 9u);
  EXPECT_EQ(
      countPrefetches(R.Vm.compiledCode(R.Vm.method(R.Id).OptIndex)), 1u);

  // The pass is one-shot: further periods must not rewrite again.
  feedPeriod(P, R.FNext, 20, 4000);
  EXPECT_EQ(P.stats().MethodsRewritten, 1u);
}

TEST(PrefetchInjector, ConsumerIgnoresUnattributedSamples) {
  SimpleRig R;
  PrefetchInjectorConfig C;
  C.TriggerSamples = 2;
  PrefetchInjector P(R.Vm, C);
  AttributedSample S; // Field stays kInvalidId (baseline-code sample).
  for (int I = 0; I != 50; ++I)
    P.onSample(S);
  PeriodContext Ctx;
  Ctx.Now = 1000;
  P.onPeriod(Ctx);
  EXPECT_FALSE(P.injected());
  EXPECT_EQ(P.missProfile().totalMisses(), 0u);
}

TEST(PrefetchInjector, ControllerRevertReinstallsOriginalCode) {
  SimpleRig R;
  PrefetchInjectorConfig C;
  C.TriggerSamples = 9;
  C.MinMisses = 4;
  PrefetchInjector P(R.Vm, C);
  ControllerConfig CC;
  CC.BaselineWindow = 2;
  CC.DecisionWindow = 2;
  CC.WarmupPeriods = 0;
  CC.RegressionFactor = 1.3;
  OptimizationController Ctl(CC);
  P.setController(&Ctl);

  // Three quiet periods build the baseline (rate 3) and reach the
  // trigger; the injection pass declares the policy change.
  feedPeriod(P, R.FNext, 3, 1000);
  feedPeriod(P, R.FNext, 3, 2000);
  feedPeriod(P, R.FNext, 3, 3000);
  ASSERT_TRUE(P.injected());
  EXPECT_EQ(Ctl.state(), OptimizationController::State::Warmup);

  // The miss rate regresses after the rewrite (the paper's warning about
  // fetching the wrong data): the controller must fire the revert once
  // the warmup period passes and the decision window fills.
  feedPeriod(P, R.FNext, 8, 4000);
  feedPeriod(P, R.FNext, 8, 5000);
  feedPeriod(P, R.FNext, 8, 6000);
  EXPECT_EQ(Ctl.state(), OptimizationController::State::Reverted);
  EXPECT_TRUE(P.reverted());
  EXPECT_EQ(
      countPrefetches(R.Vm.compiledCode(R.Vm.method(R.Id).OptIndex)), 0u)
      << "revert must reinstall the pre-rewrite body";

  // And the restored code still computes the right answer.
  Address Ring = R.buildRing();
  EXPECT_EQ(
      R.Vm.invoke(R.Id, {Value::makeRef(Ring), Value::makeInt(3)}).asInt(),
      2 + 3 + 1);
}
