//===-- tests/core/RegressionGateTest.cpp ---------------------------------===//
//
// The extracted assess-and-revert state machine on its own: baseline
// maintenance, warm-up skipping, decision windows, and both verdicts.
// OptimizationControllerTest covers the same semantics through the legacy
// wrapper; these tests pin the gate as the PolicyEngine drives it -- one
// observation per classification window, zero-rate windows skipped.
//
//===----------------------------------------------------------------------===//

#include "core/RegressionGate.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

using Verdict = RegressionGate::Verdict;
using State = RegressionGate::State;

GateConfig tight() {
  GateConfig C;
  C.BaselineWindow = 2;
  C.DecisionWindow = 2;
  C.RegressionFactor = 1.05;
  C.WarmupPeriods = 1;
  C.IgnoreZeroRatePeriods = true;
  return C;
}

TEST(RegressionGate, BaselineIsTheSlidingMeanWhileMonitoring) {
  RegressionGate G(tight());
  EXPECT_EQ(G.observe(100.0), Verdict::None);
  EXPECT_DOUBLE_EQ(G.baseline(), 100.0);
  EXPECT_EQ(G.observe(200.0), Verdict::None);
  EXPECT_DOUBLE_EQ(G.baseline(), 150.0);
  // Window is 2: a third observation slides the first out.
  EXPECT_EQ(G.observe(400.0), Verdict::None);
  EXPECT_DOUBLE_EQ(G.baseline(), 300.0);
  EXPECT_EQ(G.state(), State::Monitoring);
  EXPECT_FALSE(G.busy());
}

TEST(RegressionGate, AcceptWhenAssessedStaysWithinFactor) {
  RegressionGate G(tight());
  G.observe(100.0);
  G.observe(100.0);
  G.noteChange();
  EXPECT_TRUE(G.busy());
  EXPECT_EQ(G.observe(500.0), Verdict::None) << "warm-up period skipped";
  EXPECT_EQ(G.observe(101.0), Verdict::None) << "decision window filling";
  EXPECT_EQ(G.observe(103.0), Verdict::Accepted);
  EXPECT_EQ(G.state(), State::Accepted);
  EXPECT_DOUBLE_EQ(G.assessed(), 102.0);
  EXPECT_DOUBLE_EQ(G.decisionBaseline(), 100.0);
  EXPECT_FALSE(G.busy());
}

TEST(RegressionGate, RevertWhenAssessedExceedsFactor) {
  RegressionGate G(tight());
  G.observe(100.0);
  G.observe(100.0);
  G.noteChange();
  G.observe(100.0); // Warm-up.
  G.observe(110.0);
  EXPECT_EQ(G.observe(110.0), Verdict::Reverted) << "110 > 100 * 1.05";
  EXPECT_EQ(G.state(), State::Reverted);
  EXPECT_DOUBLE_EQ(G.assessed(), 110.0);
}

TEST(RegressionGate, ZeroRatePeriodsCarryNoVerdictInformation) {
  RegressionGate G(tight());
  G.observe(100.0);
  G.observe(0.0); // Idle window: skipped, baseline untouched.
  EXPECT_DOUBLE_EQ(G.baseline(), 100.0);
  G.noteChange();
  G.observe(100.0); // Warm-up.
  G.observe(0.0);   // Idle window mid-assessment: also skipped.
  G.observe(101.0);
  EXPECT_EQ(G.observe(101.0), Verdict::Accepted);
}

TEST(RegressionGate, ObservedCountsEveryFedPeriod) {
  RegressionGate G(tight());
  G.observe(1.0);
  G.observe(2.0);
  G.observe(3.0);
  EXPECT_EQ(G.observed(), 3u);
}

TEST(RegressionGate, VerdictIsFinalUntilTheNextChange) {
  RegressionGate G(tight());
  G.observe(100.0);
  G.noteChange();
  G.observe(100.0);
  G.observe(200.0);
  ASSERT_EQ(G.observe(200.0), Verdict::Reverted);
  // Post-verdict observations rebuild the baseline; no spurious verdicts.
  EXPECT_EQ(G.observe(300.0), Verdict::None);
  EXPECT_EQ(G.observe(300.0), Verdict::None);
  // A fresh noteChange starts a new assessment against the new baseline.
  G.noteChange();
  G.observe(300.0); // Warm-up.
  G.observe(301.0);
  EXPECT_EQ(G.observe(301.0), Verdict::Accepted);
}

} // namespace
