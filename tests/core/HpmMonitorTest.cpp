//===-- tests/core/HpmMonitorTest.cpp -------------------------------------===//
//
// The assembled monitoring pipeline against a small hand-built program
// with a known hot field.
//
//===----------------------------------------------------------------------===//

#include "core/HpmMonitor.h"

#include "gc/GenMSPlan.h"
#include "vm/AdaptiveOptimizationSystem.h"
#include "vm/BytecodeBuilder.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

/// A VM running a pointer-chasing loop over a large ring of Node objects
/// whose payload is reached through Node::data -- Node::data must become
/// the hottest field.
struct Rig {
  VirtualMachine Vm;
  GenMSPlan Gc;
  MethodId Main;
  FieldId FData, FNext;

  explicit Rig(bool HotLoopIsVmInternal = false)
      : Vm([] {
          VmConfig C;
          C.HeapBytes = 16 * 1024 * 1024;
          C.Seed = 3;
          return C;
        }()),
        Gc(Vm.objects(), Vm.clock(),
           CollectorConfig{.HeapBytes = 16 * 1024 * 1024}) {
    Vm.setCollector(&Gc);
    ClassRegistry &C = Vm.classes();
    ClassId Node = C.defineClass("Node", {{"next", true}, {"data", true},
                                          {"pad", false}});
    ClassId IntArr = C.defineArrayClass("int[]", ElemKind::I32);
    FNext = C.fieldId(Node, "next");
    FData = C.fieldId(Node, "data");
    uint32_t GHead = Vm.addGlobal(ValKind::Ref);

    // build(n): circular list of n nodes, each with an int[4] payload.
    BytecodeBuilder B("build");
    uint32_t N = B.addParam(ValKind::Int);
    uint32_t Head = B.newLocal(), Cur = B.newLocal(), Nd = B.newLocal(),
             I = B.newLocal();
    B.returns(RetKind::Void);
    B.newObj(Node).astore(Head);
    B.aload(Head).iconst(4).newArray(IntArr).putfield(FData);
    B.aload(Head).astore(Cur);
    Label Loop = B.label(), Done = B.label();
    B.iconst(1).istore(I);
    B.bind(Loop).iload(I).iload(N).ifICmp(CondKind::Ge, Done);
    B.newObj(Node).astore(Nd);
    B.aload(Nd).iconst(4).newArray(IntArr).putfield(FData);
    B.aload(Cur).aload(Nd).putfield(FNext);
    B.aload(Nd).astore(Cur);
    B.iinc(I, 1).jump(Loop);
    B.bind(Done);
    B.aload(Cur).aload(Head).putfield(FNext); // Close the ring.
    B.aload(Head).gput(GHead);
    B.ret();
    MethodId Build = Vm.addMethod(B.build());

    // chase(steps): walk the ring reading payload[0] through data.
    BytecodeBuilder B2("chase");
    uint32_t Steps = B2.addParam(ValKind::Int);
    uint32_t Cur2 = B2.newLocal(), Acc = B2.newLocal(), K = B2.newLocal();
    if (HotLoopIsVmInternal)
      B2.vmInternal();
    B2.returns(RetKind::Int);
    B2.gget(GHead).astore(Cur2);
    B2.iconst(0).istore(Acc);
    Label L2 = B2.label(), D2 = B2.label();
    B2.iconst(0).istore(K);
    B2.bind(L2).iload(K).iload(Steps).ifICmp(CondKind::Ge, D2);
    B2.aload(Cur2).getfield(FData).iconst(0).aloadI().iload(Acc).iadd()
        .istore(Acc);
    B2.aload(Cur2).getfield(FNext).astore(Cur2);
    B2.iinc(K, 1).jump(L2);
    B2.bind(D2).iload(Acc).iret();
    MethodId Chase = Vm.addMethod(B2.build());

    BytecodeBuilder B3("main");
    B3.returns(RetKind::Void);
    B3.iconst(30000).call(Build);
    B3.iconst(300000).call(Chase).popv();
    B3.ret();
    Main = Vm.addMethod(B3.build());

    Vm.aos().applyCompilationPlan({"build", "chase", "main"});
  }
};

} // namespace

TEST(HpmMonitor, EndToEndAttributionFindsTheHotFields) {
  Rig R;
  MonitorConfig MC;
  MC.SamplingInterval = 5000;
  HpmMonitor M(R.Vm, MC);
  M.attach();
  R.Vm.run(R.Main);
  M.finish();

  EXPECT_GT(M.pebs().samplesTaken(), 30u);
  EXPECT_GT(M.stats().SamplesAttributed, 10u);
  // The ring is walked in allocation order, so the first touch of every
  // cache line is the node-header access reached by dereferencing `next`:
  // the paper's attribution charges those misses to Node::next.
  EXPECT_GT(M.missTable().misses(R.FNext), 10u);
  EXPECT_GE(M.missTable().misses(R.FNext),
            M.missTable().misses(R.FData));
}

TEST(HpmMonitor, VmInternalMethodsExcluded) {
  Rig R(/*HotLoopIsVmInternal=*/true);
  MonitorConfig MC;
  MC.SamplingInterval = 5000;
  HpmMonitor M(R.Vm, MC);
  M.attach();
  R.Vm.run(R.Main);
  M.finish();
  EXPECT_GT(M.stats().SamplesVmInternal, 0u);
  EXPECT_EQ(M.missTable().misses(R.FNext), 0u)
      << "VM-internal samples must not drive optimization";
}

TEST(HpmMonitor, OverheadIsChargedAndBounded) {
  // Same program with and without monitoring: the cycle delta must equal
  // a small positive overhead and match overheadCycles().
  Cycles Without = [] {
    Rig R;
    R.Vm.run(R.Main);
    return R.Vm.clock().now();
  }();
  Rig R;
  MonitorConfig MC;
  MC.SamplingInterval = 25000;
  HpmMonitor M(R.Vm, MC);
  M.attach();
  R.Vm.run(R.Main);
  M.finish();
  Cycles With = R.Vm.clock().now();
  ASSERT_GT(With, Without);
  Cycles Delta = With - Without;
  EXPECT_NEAR(static_cast<double>(Delta),
              static_cast<double>(M.overheadCycles()),
              0.1 * static_cast<double>(Delta));
  EXPECT_LT(static_cast<double>(Delta) / static_cast<double>(Without), 0.09)
      << "monitoring overhead out of the expected regime";
}

TEST(HpmMonitor, FinishDrainsTailSamples) {
  Rig R;
  MonitorConfig MC;
  MC.SamplingInterval = 5000;
  HpmMonitor M(R.Vm, MC);
  M.attach();
  R.Vm.run(R.Main);
  uint64_t Taken = M.pebs().samplesTaken();
  M.finish();
  EXPECT_EQ(M.stats().SamplesProcessed, Taken)
      << "every sample taken must be processed by the end";
  M.finish(); // Idempotent.
}

namespace {

/// Counts deliveries per event kind; optionally subscribes to one kind.
struct CountingConsumer : SampleConsumer {
  explicit CountingConsumer(const char *Name,
                            HpmEventKind Only = HpmEventKind::L1DMiss,
                            bool Filtered = false)
      : Name(Name), Only(Only), Filtered(Filtered) {}

  const char *name() const override { return Name; }
  bool wantsKind(HpmEventKind K) const override {
    return !Filtered || K == Only;
  }
  void onSample(const AttributedSample &S) override {
    ++PerKind[static_cast<size_t>(S.Kind)];
  }
  void onPeriod(const PeriodContext &Ctx) override {
    ++Periods;
    LastScale = Ctx.scale(Only);
  }

  const char *Name;
  HpmEventKind Only;
  bool Filtered;
  uint64_t PerKind[kNumHpmEventKinds] = {};
  uint64_t Periods = 0;
  double LastScale = 0.0;
};

} // namespace

TEST(HpmMonitor, PassiveConsumersDoNotPerturbResults) {
  // Adding pipeline consumers that only observe must leave the measured
  // run bit-identical: same virtual end time, same miss table.
  auto RunOnce = [](bool WithExtras, uint64_t &MissesOut) {
    Rig R;
    MonitorConfig MC;
    MC.SamplingInterval = 5000;
    HpmMonitor M(R.Vm, MC);
    CountingConsumer Extra("extra");
    if (WithExtras)
      M.addConsumer(Extra);
    M.attach();
    R.Vm.run(R.Main);
    M.finish();
    MissesOut = M.missTable().totalMisses();
    if (WithExtras) {
      uint64_t Delivered = 0;
      for (uint64_t N : Extra.PerKind)
        Delivered += N;
      EXPECT_GT(Delivered, 0u);
      EXPECT_GT(Extra.Periods, 0u);
      EXPECT_DOUBLE_EQ(Extra.LastScale, 1.0) << "no mux => unit scale";
    }
    return R.Vm.clock().now();
  };
  uint64_t MissesPlain = 0, MissesExtra = 0;
  Cycles Plain = RunOnce(false, MissesPlain);
  Cycles Extra = RunOnce(true, MissesExtra);
  EXPECT_EQ(Plain, Extra);
  EXPECT_EQ(MissesPlain, MissesExtra);
}

TEST(HpmMonitor, MultiplexedKindsReachTheRightConsumers) {
  Rig R;
  MonitorConfig MC;
  MC.Events = {{HpmEventKind::L1DMiss, 5000},
               {HpmEventKind::DtlbMiss, 500}};
  MC.MuxSliceMs = 0.2;
  HpmMonitor M(R.Vm, MC);
  CountingConsumer L1Only("l1", HpmEventKind::L1DMiss, /*Filtered=*/true);
  CountingConsumer TlbOnly("tlb", HpmEventKind::DtlbMiss, /*Filtered=*/true);
  CountingConsumer All("all");
  M.addConsumer(L1Only);
  M.addConsumer(TlbOnly);
  M.addConsumer(All);
  M.attach();
  R.Vm.run(R.Main);
  M.finish();

  ASSERT_NE(M.multiplexer(), nullptr);
  EXPECT_GT(M.multiplexer()->rotations(), 0u);

  // Each filtered consumer saw only its kind; the unfiltered one saw both.
  EXPECT_GT(L1Only.PerKind[size_t(HpmEventKind::L1DMiss)], 0u);
  EXPECT_EQ(L1Only.PerKind[size_t(HpmEventKind::DtlbMiss)], 0u);
  EXPECT_GT(TlbOnly.PerKind[size_t(HpmEventKind::DtlbMiss)], 0u);
  EXPECT_EQ(TlbOnly.PerKind[size_t(HpmEventKind::L1DMiss)], 0u);
  EXPECT_EQ(All.PerKind[size_t(HpmEventKind::L1DMiss)],
            L1Only.PerKind[size_t(HpmEventKind::L1DMiss)]);
  EXPECT_EQ(All.PerKind[size_t(HpmEventKind::DtlbMiss)],
            TlbOnly.PerKind[size_t(HpmEventKind::DtlbMiss)]);

  // Duty-cycle correction: with two rotation slots each kind is active
  // for only part of the run, so the correction factor must exceed 1.
  EXPECT_GT(L1Only.LastScale, 1.0);
  EXPECT_GT(TlbOnly.LastScale, 1.0);

  // The default co-allocation path still works under multiplexing.
  EXPECT_GT(M.missTable().totalMisses(), 0u);
}

TEST(HpmMonitor, SingleSlotEventsConfigEqualsSingleEventMode) {
  // One rotation slot must not engage the multiplexer at all -- it only
  // normalizes Event/SamplingInterval, preserving the paper's setup.
  Rig R;
  MonitorConfig MC;
  MC.Events = {{HpmEventKind::L1DMiss, 5000}};
  HpmMonitor M(R.Vm, MC);
  EXPECT_EQ(M.multiplexer(), nullptr);
  M.attach();
  R.Vm.run(R.Main);
  M.finish();

  Rig R2;
  MonitorConfig MC2;
  MC2.SamplingInterval = 5000;
  HpmMonitor M2(R2.Vm, MC2);
  M2.attach();
  R2.Vm.run(R2.Main);
  M2.finish();

  EXPECT_EQ(R.Vm.clock().now(), R2.Vm.clock().now());
  EXPECT_EQ(M.missTable().totalMisses(), M2.missTable().totalMisses());
}

TEST(HpmMonitor, GcDisabledDuringSampleCopy) {
  // The GC-lock hook must wrap every native copy; we can at least verify
  // the collector is re-enabled afterwards (a stuck lock would abort the
  // next collection).
  Rig R;
  MonitorConfig MC;
  MC.SamplingInterval = 5000;
  HpmMonitor M(R.Vm, MC);
  M.attach();
  R.Vm.run(R.Main);
  M.finish();
  // If GC had been left disabled, this would assert-fail.
  R.Vm.collector().collectFull();
  SUCCEED();
}
