//===-- tests/core/InterestAnalysisTest.cpp -------------------------------===//
//
// The (S, f) instructions-of-interest analysis, including the paper's
// Figure 1 example (p.y.i) and the patterns the workloads rely on.
//
//===----------------------------------------------------------------------===//

#include "core/InterestAnalysis.h"

#include "vm/BytecodeBuilder.h"
#include "vm/ClassRegistry.h"
#include "vm/OptCompiler.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

struct Rig {
  ClassRegistry Classes;
  ClassId A;       ///< class A { A y; int i; }
  FieldId FY, FI;
  ClassId CharArr;
  ClassId Rec;     ///< class Rec { char[] value; int len; }
  FieldId FValue, FLen;
  ClassId RecArr;
  std::vector<Method> Methods;
  std::vector<ValKind> Globals;

  Rig() {
    A = Classes.defineClass("A", {{"y", true}, {"i", false}});
    FY = Classes.fieldId(A, "y");
    FI = Classes.fieldId(A, "i");
    CharArr = Classes.defineArrayClass("char[]", ElemKind::I16);
    Rec = Classes.defineClass("Rec", {{"value", true}, {"len", false}});
    FValue = Classes.fieldId(Rec, "value");
    FLen = Classes.fieldId(Rec, "len");
    RecArr = Classes.defineArrayClass("Rec[]", ElemKind::Ref);
  }

  MachineFunction compile(Method M) {
    std::string Diag = verifyMethod(M, Methods, Classes, Globals);
    EXPECT_EQ(Diag, "");
    return OptCompiler::compile(M, Classes, Methods, Globals);
  }
};

/// \returns interest entries as (mop, field) for non-invalid ones.
std::vector<std::pair<MOp, FieldId>>
interesting(const MachineFunction &F, const std::vector<FieldId> &I) {
  std::vector<std::pair<MOp, FieldId>> R;
  for (size_t K = 0; K != F.Insts.size(); ++K)
    if (I[K] != kInvalidId)
      R.emplace_back(F.Insts[K].Op, I[K]);
  return R;
}

} // namespace

TEST(InterestAnalysis, PaperFigure1PatternPYI) {
  // int f(A p) { return p.y.i; }  -- getfield y; getfield i.
  // The paper: "Our analysis would create a mapping with instruction and
  // field y (I3, A::y)": the load of i is attributed to y.
  Rig R;
  BytecodeBuilder B("f");
  uint32_t P = B.addParam(ValKind::Ref);
  B.returns(RetKind::Int);
  B.aload(P).getfield(R.FY).getfield(R.FI).iret();
  MachineFunction F = R.compile(B.build());
  auto Interest = computeInstructionsOfInterest(F, R.Classes);
  auto Hits = interesting(F, Interest);
  ASSERT_EQ(Hits.size(), 1u);
  EXPECT_EQ(Hits[0].first, MOp::LoadField); // The load of i...
  EXPECT_EQ(Hits[0].second, R.FY);          // ...charged to field y.
}

TEST(InterestAnalysis, ArrayElementThroughRefField) {
  // int f(Rec r) { return r.value[0]; } -- the db pattern.
  Rig R;
  BytecodeBuilder B("f");
  uint32_t P = B.addParam(ValKind::Ref);
  B.returns(RetKind::Int);
  B.aload(P).getfield(R.FValue).iconst(0).aloadI().iret();
  MachineFunction F = R.compile(B.build());
  auto Hits = interesting(F, computeInstructionsOfInterest(F, R.Classes));
  ASSERT_EQ(Hits.size(), 1u);
  EXPECT_EQ(Hits[0].first, MOp::LoadElem);
  EXPECT_EQ(Hits[0].second, R.FValue);
}

TEST(InterestAnalysis, CopiesThroughLocalsAreChased) {
  // char[] v = r.value; ... v[0]: the base reaches the LoadElem through a
  // store/load pair of register copies.
  Rig R;
  BytecodeBuilder B("f");
  uint32_t P = B.addParam(ValKind::Ref);
  uint32_t V = B.newLocal();
  B.returns(RetKind::Int);
  B.aload(P).getfield(R.FValue).astore(V);
  B.aload(V).iconst(0).aloadI().iret();
  MachineFunction F = R.compile(B.build());
  auto Hits = interesting(F, computeInstructionsOfInterest(F, R.Classes));
  ASSERT_EQ(Hits.size(), 1u);
  EXPECT_EQ(Hits[0].second, R.FValue);
}

TEST(InterestAnalysis, InnerLoopUsesFieldLoadedOutside) {
  // The hot workload shape: v = r.value; for (k...) acc += v[k];
  // The dataflow must carry the (v <- value) fact into the loop.
  Rig R;
  BytecodeBuilder B("f");
  uint32_t P = B.addParam(ValKind::Ref);
  uint32_t V = B.newLocal(), K = B.newLocal(), Acc = B.newLocal();
  B.returns(RetKind::Int);
  B.aload(P).getfield(R.FValue).astore(V);
  B.iconst(0).istore(K).iconst(0).istore(Acc);
  Label Loop = B.label(), Done = B.label();
  B.bind(Loop).iload(K).iconst(8).ifICmp(CondKind::Ge, Done);
  B.aload(V).iload(K).aloadI().iload(Acc).iadd().istore(Acc);
  B.iinc(K, 1).jump(Loop);
  B.bind(Done).iload(Acc).iret();
  MachineFunction F = R.compile(B.build());
  auto Hits = interesting(F, computeInstructionsOfInterest(F, R.Classes));
  ASSERT_EQ(Hits.size(), 1u)
      << "the in-loop element load must be attributed";
  EXPECT_EQ(Hits[0].first, MOp::LoadElem);
  EXPECT_EQ(Hits[0].second, R.FValue);
}

TEST(InterestAnalysis, BaseFromArrayElementNotAttributed) {
  // Rec r = table[i]; r.len: the base came from an array element, not a
  // reference *field* -- the paper's analysis records nothing.
  Rig R;
  BytecodeBuilder B("f");
  uint32_t T = B.addParam(ValKind::Ref);
  B.returns(RetKind::Int);
  B.aload(T).iconst(0).aloadR().getfield(R.FLen).iret();
  MachineFunction F = R.compile(B.build());
  auto Hits = interesting(F, computeInstructionsOfInterest(F, R.Classes));
  EXPECT_TRUE(Hits.empty());
}

TEST(InterestAnalysis, BaseFromParameterNotAttributed) {
  Rig R;
  BytecodeBuilder B("f");
  uint32_t P = B.addParam(ValKind::Ref);
  B.returns(RetKind::Int);
  B.aload(P).getfield(R.FLen).iret();
  MachineFunction F = R.compile(B.build());
  auto Hits = interesting(F, computeInstructionsOfInterest(F, R.Classes));
  EXPECT_TRUE(Hits.empty());
}

TEST(InterestAnalysis, StoreThroughRefFieldAttributed) {
  // r.value[0] = 7: the element *store*'s base is also of interest.
  Rig R;
  BytecodeBuilder B("f");
  uint32_t P = B.addParam(ValKind::Ref);
  B.returns(RetKind::Void);
  B.aload(P).getfield(R.FValue).iconst(0).iconst(7).astoreI().ret();
  MachineFunction F = R.compile(B.build());
  auto Hits = interesting(F, computeInstructionsOfInterest(F, R.Classes));
  ASSERT_EQ(Hits.size(), 1u);
  EXPECT_EQ(Hits[0].first, MOp::StoreElem);
}

TEST(InterestAnalysis, FieldWinsOverNonFieldAtMerges) {
  // v = cond ? r.value : q (a parameter): the optimistic use-def walk
  // attributes to the field -- this is what keeps pointer-chase loops
  // (cur = head; cur = cur.next) attributable despite the loop-header
  // merge with the non-field initial value.
  Rig R;
  BytecodeBuilder B("f");
  uint32_t P = B.addParam(ValKind::Ref);
  uint32_t Q = B.addParam(ValKind::Ref);
  uint32_t C = B.addParam(ValKind::Int);
  uint32_t V = B.newLocal();
  B.returns(RetKind::Int);
  Label Other = B.label(), Join = B.label();
  B.iload(C).ifZ(CondKind::Eq, Other);
  B.aload(P).getfield(R.FValue).astore(V).jump(Join);
  B.bind(Other).aload(Q).astore(V);
  B.bind(Join).aload(V).iconst(0).aloadI().iret();
  MachineFunction F = R.compile(B.build());
  auto Hits = interesting(F, computeInstructionsOfInterest(F, R.Classes));
  ASSERT_EQ(Hits.size(), 1u);
  EXPECT_EQ(Hits[0].second, R.FValue);
}

TEST(InterestAnalysis, TwoDifferentFieldsMergeToNothing) {
  // v = cond ? p.y : r.value: ambiguous between two fields -- silent.
  Rig R;
  BytecodeBuilder B("f");
  uint32_t P = B.addParam(ValKind::Ref);
  uint32_t Q = B.addParam(ValKind::Ref);
  uint32_t C = B.addParam(ValKind::Int);
  uint32_t V = B.newLocal();
  B.returns(RetKind::Int);
  Label Other = B.label(), Join = B.label();
  B.iload(C).ifZ(CondKind::Eq, Other);
  B.aload(P).getfield(R.FY).astore(V).jump(Join);
  B.bind(Other).aload(Q).getfield(R.FValue).astore(V);
  B.bind(Join).aload(V).iconst(0).aloadI().iret();
  MachineFunction F = R.compile(B.build());
  auto Hits = interesting(F, computeInstructionsOfInterest(F, R.Classes));
  // Only the two getfields' own bases could be of interest (they are
  // parameters: nothing); the element load's base is ambiguous.
  for (auto &[MOpKind, Field] : Hits)
    EXPECT_NE(MOpKind, MOp::LoadElem);
}

TEST(InterestAnalysis, NullInitializedChaseLoopAttributed) {
  // cur = null; loop { if (cur == null) cur = p.y; acc += cur.i;
  // cur = cur.y; } -- null is the merge identity, so the chase still
  // attributes to y.
  Rig R;
  BytecodeBuilder B("f");
  uint32_t P = B.addParam(ValKind::Ref);
  uint32_t Cur = B.newLocal(), Acc = B.newLocal(), K = B.newLocal();
  B.returns(RetKind::Int);
  B.aconstNull().astore(Cur);
  B.iconst(0).istore(Acc).iconst(0).istore(K);
  Label Loop = B.label(), Done = B.label(), HaveCur = B.label();
  B.bind(Loop).iload(K).iconst(8).ifICmp(CondKind::Ge, Done);
  B.aload(Cur).ifNonNull(HaveCur);
  B.aload(P).getfield(R.FY).astore(Cur);
  B.bind(HaveCur);
  B.aload(Cur).getfield(R.FI).iload(Acc).iadd().istore(Acc);
  B.aload(Cur).getfield(R.FY).astore(Cur);
  B.iinc(K, 1).jump(Loop);
  B.bind(Done).iload(Acc).iret();
  MachineFunction F = R.compile(B.build());
  auto Hits = interesting(F, computeInstructionsOfInterest(F, R.Classes));
  ASSERT_GE(Hits.size(), 2u);
  for (auto &[MOpKind, Field] : Hits)
    EXPECT_EQ(Field, R.FY);
}

TEST(InterestAnalysis, LinkedListChase) {
  // a = a.y repeatedly: each subsequent load's base comes from field y.
  Rig R;
  BytecodeBuilder B("f");
  uint32_t P = B.addParam(ValKind::Ref);
  uint32_t Cur = B.newLocal();
  B.returns(RetKind::Int);
  B.aload(P).getfield(R.FY).astore(Cur);
  B.aload(Cur).getfield(R.FY).astore(Cur);
  B.aload(Cur).getfield(R.FI).iret();
  MachineFunction F = R.compile(B.build());
  auto Hits = interesting(F, computeInstructionsOfInterest(F, R.Classes));
  // Loads 2 and 3 both have bases defined by a LoadField of y.
  ASSERT_EQ(Hits.size(), 2u);
  EXPECT_EQ(Hits[0].second, R.FY);
  EXPECT_EQ(Hits[1].second, R.FY);
}

TEST(InterestAnalysis, EmptyFunction) {
  MachineFunction F;
  ClassRegistry Classes;
  EXPECT_TRUE(computeInstructionsOfInterest(F, Classes).empty());
}
