//===-- tests/core/PhaseDetectorTest.cpp ----------------------------------===//

#include "core/PhaseDetector.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

/// Feeds \p Rates; \returns the final phase count.
size_t runPhases(PhaseDetector &D, std::initializer_list<double> Rates) {
  for (double R : Rates)
    D.observe(R);
  return D.currentPhase();
}

} // namespace

TEST(PhaseDetector, SteadyRateIsOnePhase) {
  PhaseDetector D;
  EXPECT_EQ(runPhases(D, {10, 11, 10, 9, 10, 11, 10, 10, 9, 10}), 1u);
}

TEST(PhaseDetector, StepUpFlagsAChange) {
  PhaseDetector D;
  for (double R : {10.0, 10.0, 10.0, 10.0, 10.0})
    D.observe(R);
  bool Flagged = false;
  for (double R : {100.0, 100.0, 100.0, 100.0})
    Flagged |= D.observe(R);
  EXPECT_TRUE(Flagged);
  EXPECT_GE(D.currentPhase(), 2u);
  // The new level re-anchors at the transition window's average, which
  // still contains old-phase samples; it must at least have left the old
  // regime decisively.
  EXPECT_GT(D.level(), 30.0);
}

TEST(PhaseDetector, StepDownFlagsAChange) {
  PhaseDetector D;
  for (double R : {100.0, 100.0, 100.0, 100.0, 100.0})
    D.observe(R);
  for (double R : {10.0, 10.0, 10.0, 10.0})
    D.observe(R);
  EXPECT_EQ(D.currentPhase(), 2u);
}

TEST(PhaseDetector, LullsAreTheirOwnPhase) {
  PhaseDetector D;
  for (double R : {20.0, 20.0, 20.0, 20.0})
    D.observe(R);
  for (double R : {0.0, 0.0, 0.0, 0.0})
    D.observe(R);
  EXPECT_EQ(D.currentPhase(), 2u) << "entering the lull";
  for (double R : {20.0, 20.0, 20.0, 20.0})
    D.observe(R);
  EXPECT_EQ(D.currentPhase(), 3u) << "leaving the lull";
}

TEST(PhaseDetector, GradualDriftIsNotAPhaseChange) {
  PhaseDetector D;
  double R = 10.0;
  size_t Phases = 1;
  for (int I = 0; I != 40; ++I) {
    D.observe(R);
    R *= 1.03; // +3% per period: the EMA keeps up.
  }
  EXPECT_EQ(D.currentPhase(), Phases);
}

TEST(PhaseDetector, AlternatingBuildScanPattern) {
  // The db shape: bursts of scan activity separated by build lulls (from
  // the tracked field's perspective) must yield ~one phase per regime.
  PhaseDetector D;
  size_t Changes = 0;
  for (int Iter = 0; Iter != 3; ++Iter) {
    for (int I = 0; I != 6; ++I)
      Changes += D.observe(0.0); // Build: no scans of the tracked field.
    for (int I = 0; I != 8; ++I)
      Changes += D.observe(12.0); // Scan burst.
  }
  // Six regime boundaries; transition windows may occasionally double-
  // flag, so allow a band rather than an exact count.
  EXPECT_GE(D.currentPhase(), 5u);
  EXPECT_LE(D.currentPhase(), 12u);
}

TEST(PhaseDetector, NoChangeBeforeMinPeriods) {
  PhaseDetectorConfig C;
  C.MinPeriods = 10;
  PhaseDetector D(C);
  D.observe(1.0);
  for (double R : {100.0, 100.0, 100.0})
    EXPECT_FALSE(D.observe(R));
  EXPECT_EQ(D.currentPhase(), 1u);
}

TEST(PhaseDetector, ConsumerFeedsDutyCycleCorrectedRates) {
  // As a pipeline consumer the detector aggregates per-kind sample counts
  // each period and observes the (scaled) total. Without a multiplexer
  // the scale is 1, so N samples per period equals a rate of N.
  PhaseDetector D;
  EXPECT_STREQ(D.name(), "phase");
  EXPECT_TRUE(D.wantsKind(HpmEventKind::L1DMiss));

  auto Feed = [&D](uint64_t N) {
    AttributedSample S;
    S.Kind = HpmEventKind::L1DMiss;
    for (uint64_t I = 0; I != N; ++I)
      D.onSample(S);
    PeriodContext Ctx;
    D.onPeriod(Ctx);
  };
  for (int I = 0; I != 5; ++I)
    Feed(10);
  EXPECT_EQ(D.currentPhase(), 1u);
  EXPECT_NEAR(D.level(), 10.0, 1.0);
  for (int I = 0; I != 4; ++I)
    Feed(100);
  EXPECT_GE(D.currentPhase(), 2u) << "a 10x step must flag a phase change";
}
