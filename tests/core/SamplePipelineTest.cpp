//===-- tests/core/SamplePipelineTest.cpp ---------------------------------===//
//
// The fan-out stage in isolation: registration order, event-kind
// filtering, per-consumer telemetry, and the MissTableConsumer port of the
// paper's co-allocation path.
//
//===----------------------------------------------------------------------===//

#include "core/SamplePipeline.h"

#include "obs/Obs.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace hpmvm;

namespace {

/// Records every delivery into a shared journal so tests can assert on
/// cross-consumer ordering.
struct JournalConsumer : SampleConsumer {
  JournalConsumer(const char *Name, std::vector<std::string> &Journal)
      : Name(Name), Journal(Journal) {}

  const char *name() const override { return Name; }
  void onSample(const AttributedSample &S) override {
    Journal.push_back(std::string(Name) + ":sample:" +
                      std::to_string(static_cast<int>(S.Kind)));
  }
  void onPeriod(const PeriodContext &) override {
    Journal.push_back(std::string(Name) + ":period");
  }

  const char *Name;
  std::vector<std::string> &Journal;
};

/// Subscribes to exactly one event kind.
struct OneKindConsumer : JournalConsumer {
  OneKindConsumer(const char *Name, HpmEventKind Kind,
                  std::vector<std::string> &Journal)
      : JournalConsumer(Name, Journal), Kind(Kind) {}
  bool wantsKind(HpmEventKind K) const override { return K == Kind; }
  HpmEventKind Kind;
};

AttributedSample sampleOf(HpmEventKind Kind) {
  AttributedSample S;
  S.Kind = Kind;
  return S;
}

} // namespace

TEST(SamplePipeline, DispatchReachesConsumersInRegistrationOrder) {
  std::vector<std::string> J;
  JournalConsumer A("a", J), B("b", J);
  SamplePipeline P;
  P.addConsumer(A);
  P.addConsumer(B);
  ASSERT_EQ(P.numConsumers(), 2u);
  EXPECT_STREQ(P.consumer(0).name(), "a");
  EXPECT_STREQ(P.consumer(1).name(), "b");

  P.dispatch(sampleOf(HpmEventKind::L1DMiss));
  PeriodContext Ctx;
  P.endPeriod(Ctx);
  EXPECT_EQ(J, (std::vector<std::string>{"a:sample:0", "b:sample:0",
                                         "a:period", "b:period"}));
}

TEST(SamplePipeline, KindFilterRoutesSamplesButNotPeriods) {
  std::vector<std::string> J;
  OneKindConsumer L1("l1", HpmEventKind::L1DMiss, J);
  OneKindConsumer Tlb("tlb", HpmEventKind::DtlbMiss, J);
  SamplePipeline P;
  P.addConsumer(L1);
  P.addConsumer(Tlb);

  P.dispatch(sampleOf(HpmEventKind::L1DMiss));
  P.dispatch(sampleOf(HpmEventKind::DtlbMiss));
  P.dispatch(sampleOf(HpmEventKind::L2Miss)); // Nobody subscribes.
  PeriodContext Ctx;
  P.endPeriod(Ctx);

  // Samples are filtered per consumer; the period boundary reaches every
  // consumer even when none of its kinds were sampled.
  EXPECT_EQ(J, (std::vector<std::string>{"l1:sample:0", "tlb:sample:2",
                                         "l1:period", "tlb:period"}));
}

TEST(SamplePipeline, AttachObsWiresPipelineAndPerConsumerCounters) {
  std::vector<std::string> J;
  OneKindConsumer L1("l1", HpmEventKind::L1DMiss, J);
  JournalConsumer All("all", J);
  SamplePipeline P;
  P.addConsumer(L1);
  P.addConsumer(All);

  ObsContext Obs;
  P.attachObs(Obs);
  P.dispatch(sampleOf(HpmEventKind::L1DMiss));
  P.dispatch(sampleOf(HpmEventKind::DtlbMiss));
  PeriodContext Ctx;
  P.endPeriod(Ctx);

  MetricsSnapshot S = Obs.metrics().snapshot();
  EXPECT_EQ(S.counter("pipeline.dispatched"), 2u);
  EXPECT_EQ(S.counter("pipeline.delivered"), 3u); // l1 got 1, all got 2.
  EXPECT_EQ(S.counter("pipeline.l1.samples"), 1u);
  EXPECT_EQ(S.counter("pipeline.all.samples"), 2u);
  EXPECT_EQ(S.counter("pipeline.l1.periods"), 1u);
  EXPECT_EQ(S.counter("pipeline.all.periods"), 1u);
}

TEST(SamplePipeline, ConsumerAddedAfterAttachObsIsWiredImmediately) {
  std::vector<std::string> J;
  SamplePipeline P;
  ObsContext Obs;
  P.attachObs(Obs);

  JournalConsumer Late("late", J);
  P.addConsumer(Late);
  P.dispatch(sampleOf(HpmEventKind::L1DMiss));

  EXPECT_EQ(Obs.metrics().snapshot().counter("pipeline.late.samples"), 1u);
}

TEST(SamplePipeline, PeriodScaleIsUnityWithoutMultiplexer) {
  PeriodContext Ctx;
  EXPECT_DOUBLE_EQ(Ctx.scale(HpmEventKind::L1DMiss), 1.0);
  EXPECT_DOUBLE_EQ(Ctx.scale(HpmEventKind::DtlbMiss), 1.0);
}

TEST(SamplePipeline, MissTableConsumerFiltersUnattributedSamples) {
  FieldMissTable Table;
  MissTableConsumer C(Table);
  EXPECT_STREQ(C.name(), "coalloc");

  AttributedSample Hit = sampleOf(HpmEventKind::L1DMiss);
  Hit.Field = 7;
  C.onSample(Hit);
  C.onSample(Hit);
  // Baseline-code samples arrive with Field == kInvalidId and must not
  // touch the table (the paper's path never saw them).
  C.onSample(sampleOf(HpmEventKind::L1DMiss));

  EXPECT_EQ(Table.misses(7), 2u);
  EXPECT_EQ(Table.totalMisses(), 2u);

  uint64_t V = Table.version();
  PeriodContext Ctx;
  Ctx.Now = 1234;
  C.onPeriod(Ctx);
  EXPECT_EQ(Table.version(), V + 1) << "onPeriod must close a table period";
}

TEST(SamplePipeline, DispatchBatchDefaultsToPerSampleDelivery) {
  // A consumer that does not override consumeBatch must see the batch as
  // individual onSample calls, in order.
  std::vector<std::string> J;
  JournalConsumer A("a", J);
  OneKindConsumer Tlb("tlb", HpmEventKind::DtlbMiss, J);
  SamplePipeline P;
  P.addConsumer(A);
  P.addConsumer(Tlb);

  std::vector<AttributedSample> Batch(3, sampleOf(HpmEventKind::L1DMiss));
  P.dispatchBatch(Batch);
  // Per-consumer-per-batch order: all of a's samples, then (nothing for
  // tlb, which does not subscribe to L1).
  EXPECT_EQ(J, (std::vector<std::string>{"a:sample:0", "a:sample:0",
                                         "a:sample:0"}));

  J.clear();
  P.dispatchBatch(std::vector<AttributedSample>(
      2, sampleOf(HpmEventKind::DtlbMiss)));
  EXPECT_EQ(J, (std::vector<std::string>{"a:sample:2", "a:sample:2",
                                         "tlb:sample:2", "tlb:sample:2"}));
}

TEST(SamplePipeline, DispatchBatchCountsLikeScalarDispatch) {
  std::vector<std::string> J;
  OneKindConsumer L1("l1", HpmEventKind::L1DMiss, J);
  JournalConsumer All("all", J);
  SamplePipeline P;
  P.addConsumer(L1);
  P.addConsumer(All);

  ObsContext Obs;
  P.attachObs(Obs);
  P.dispatchBatch(std::vector<AttributedSample>(
      3, sampleOf(HpmEventKind::L1DMiss)));
  P.dispatchBatch(std::vector<AttributedSample>(
      2, sampleOf(HpmEventKind::DtlbMiss)));
  P.dispatchBatch({}); // Empty batches are a no-op.

  MetricsSnapshot S = Obs.metrics().snapshot();
  EXPECT_EQ(S.counter("pipeline.dispatched"), 5u);
  EXPECT_EQ(S.counter("pipeline.delivered"), 8u); // l1 got 3, all got 5.
  EXPECT_EQ(S.counter("pipeline.l1.samples"), 3u);
  EXPECT_EQ(S.counter("pipeline.all.samples"), 5u);
}

TEST(SamplePipeline, MissTableConsumerBatchMatchesScalar) {
  FieldMissTable TableA, TableB;
  MissTableConsumer A(TableA), B(TableB);
  std::vector<AttributedSample> Batch;
  for (uint32_t I = 0; I != 6; ++I) {
    AttributedSample S = sampleOf(HpmEventKind::L1DMiss);
    S.Field = (I % 2) ? 7 : kInvalidId;
    Batch.push_back(S);
  }
  for (const AttributedSample &S : Batch)
    A.onSample(S);
  B.consumeBatch(Batch);
  EXPECT_EQ(TableA.misses(7), TableB.misses(7));
  EXPECT_EQ(TableA.totalMisses(), TableB.totalMisses());
}
