//===-- tests/core/SampleResolverTest.cpp ---------------------------------===//

#include "core/SampleResolver.h"

#include "gc/GenMSPlan.h"
#include "vm/AdaptiveOptimizationSystem.h"
#include "vm/BytecodeBuilder.h"
#include "vm/OptCompiler.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

struct Rig {
  VirtualMachine Vm;
  GenMSPlan Gc;
  MethodId Id;

  Rig()
      : Vm([] {
          VmConfig C;
          C.HeapBytes = 4 * 1024 * 1024;
          return C;
        }()),
        Gc(Vm.objects(), Vm.clock(),
           CollectorConfig{.HeapBytes = 4 * 1024 * 1024}) {
    Vm.setCollector(&Gc);
    BytecodeBuilder B("m");
    B.returns(RetKind::Int);
    B.iconst(1).iconst(2).iadd().iret(); // 4 bytecodes.
    Id = Vm.addMethod(B.build());
  }
};

} // namespace

TEST(SampleResolver, BaselinePcResolvesToBytecode) {
  Rig R;
  SampleResolver Res(R.Vm);
  const Method &M = R.Vm.method(R.Id);
  Address Pc = VirtualMachine::baselinePc(M, 2);
  ResolvedSample S = Res.resolve(Pc);
  ASSERT_TRUE(S.Valid);
  EXPECT_EQ(S.Method, R.Id);
  EXPECT_EQ(S.Flavor, CodeFlavor::Baseline);
  EXPECT_EQ(S.Bci, 2u);
  EXPECT_EQ(S.InstIdx, kInvalidId);
}

TEST(SampleResolver, PcMidInstructionResolvesToSameBytecode) {
  Rig R;
  SampleResolver Res(R.Vm);
  const Method &M = R.Vm.method(R.Id);
  ResolvedSample S = Res.resolve(VirtualMachine::baselinePc(M, 1) + 5);
  ASSERT_TRUE(S.Valid);
  EXPECT_EQ(S.Bci, 1u);
}

TEST(SampleResolver, OptimizedPcResolvesToInstructionAndBci) {
  Rig R;
  R.Vm.aos().compileNow(R.Vm.method(R.Id));
  const MachineFunction &F =
      R.Vm.compiledCode(R.Vm.method(R.Id).OptIndex);
  SampleResolver Res(R.Vm);
  for (uint32_t I = 0; I != F.Insts.size(); ++I) {
    ResolvedSample S = Res.resolve(F.addressOf(I));
    ASSERT_TRUE(S.Valid);
    EXPECT_EQ(S.Flavor, CodeFlavor::Optimized);
    EXPECT_EQ(S.InstIdx, I);
    EXPECT_EQ(S.Bci, F.Insts[I].Bci);
    EXPECT_EQ(S.OptIndex, R.Vm.method(R.Id).OptIndex);
  }
  EXPECT_EQ(Res.stats().ResolvedOptimized, F.Insts.size());
}

TEST(SampleResolver, KernelAndNativePcsDroppedImmediately) {
  Rig R;
  SampleResolver Res(R.Vm);
  EXPECT_FALSE(Res.resolve(0x1000).Valid);        // "kernel".
  EXPECT_FALSE(Res.resolve(0x40000000).Valid);    // Heap, not code.
  EXPECT_EQ(Res.stats().DroppedOutsideVm, 2u);
}

TEST(SampleResolver, UnknownCodeAddressDropped) {
  Rig R;
  SampleResolver Res(R.Vm);
  // Inside the immortal range but past any allocated code.
  ResolvedSample S = Res.resolve(kImmortalBase + 0x5000000);
  EXPECT_FALSE(S.Valid);
  EXPECT_EQ(Res.stats().DroppedUnknownCode, 1u);
}

TEST(SampleResolver, StaleOptimizedRangeStillResolves) {
  Rig R;
  Method &M = R.Vm.method(R.Id);
  R.Vm.aos().compileNow(M);
  Address OldPc = R.Vm.compiledCode(M.OptIndex).addressOf(0);
  // Recompile: the old range stays resolvable (old frames may still be
  // executing it on a real stack).
  MachineFunction F2 = OptCompiler::compile(M, R.Vm.classes(),
                                            R.Vm.methods(),
                                            R.Vm.globalKinds());
  R.Vm.installCompiledCode(M, std::move(F2));
  SampleResolver Res(R.Vm);
  ResolvedSample S = Res.resolve(OldPc);
  ASSERT_TRUE(S.Valid);
  EXPECT_EQ(S.Method, R.Id);
  Address NewPc = R.Vm.compiledCode(M.OptIndex).addressOf(0);
  EXPECT_TRUE(Res.resolve(NewPc).Valid);
}

TEST(SampleResolver, ResolveBatchMatchesPerSampleResolve) {
  // The same PC stream through resolveBatch and scalar resolve must yield
  // identical samples and identical stats -- including kernel PCs, heap
  // PCs, baseline code, optimized code, and out-of-code immortal PCs.
  Rig R;
  Method &M = R.Vm.method(R.Id);
  R.Vm.aos().compileNow(M);
  const MachineFunction &F = R.Vm.compiledCode(M.OptIndex);
  std::vector<PebsSample> Stream;
  auto Push = [&Stream](Address Pc) {
    PebsSample S;
    S.Eip = Pc;
    Stream.push_back(S);
  };
  Push(0x1000);                                  // "Kernel".
  for (uint32_t I = 0; I != F.Insts.size(); ++I) // Optimized, clustered.
    Push(F.addressOf(I));
  Push(VirtualMachine::baselinePc(M, 2));        // Baseline.
  Push(0x40000000);                              // Heap.
  Push(kImmortalBase + 0x5000000);               // Unknown code.
  Push(F.addressOf(0));                          // Back to optimized.

  SampleResolver Scalar(R.Vm), Batched(R.Vm);
  ResolvedBatch Out;
  Batched.resolveBatch(Stream.data(), Stream.size(), Out);
  ASSERT_EQ(Out.size(), Stream.size());
  for (size_t I = 0; I != Stream.size(); ++I) {
    ResolvedSample S = Scalar.resolve(Stream[I].Eip);
    EXPECT_EQ(Out[I].Valid, S.Valid) << "sample " << I;
    EXPECT_EQ(Out[I].Method, S.Method) << "sample " << I;
    EXPECT_EQ(Out[I].Flavor, S.Flavor) << "sample " << I;
    EXPECT_EQ(Out[I].Bci, S.Bci) << "sample " << I;
    EXPECT_EQ(Out[I].InstIdx, S.InstIdx) << "sample " << I;
    EXPECT_EQ(Out[I].OptIndex, S.OptIndex) << "sample " << I;
  }
  EXPECT_EQ(Batched.stats().Resolved, Scalar.stats().Resolved);
  EXPECT_EQ(Batched.stats().ResolvedOptimized,
            Scalar.stats().ResolvedOptimized);
  EXPECT_EQ(Batched.stats().DroppedOutsideVm,
            Scalar.stats().DroppedOutsideVm);
  EXPECT_EQ(Batched.stats().DroppedUnknownCode,
            Scalar.stats().DroppedUnknownCode);
}

TEST(SampleResolver, ResolveBatchReusesTheOutputBuffer) {
  Rig R;
  SampleResolver Res(R.Vm);
  const Method &M = R.Vm.method(R.Id);
  std::vector<PebsSample> Stream(8);
  for (PebsSample &S : Stream)
    S.Eip = VirtualMachine::baselinePc(M, 1);
  ResolvedBatch Out;
  Res.resolveBatch(Stream.data(), Stream.size(), Out);
  ASSERT_EQ(Out.size(), 8u);
  const ResolvedSample *Buf = Out.Samples.data();
  // A second, smaller batch shrinks the view without reallocating.
  Res.resolveBatch(Stream.data(), 3, Out);
  EXPECT_EQ(Out.size(), 3u);
  EXPECT_EQ(Out.Samples.data(), Buf);
  EXPECT_TRUE(Out[0].Valid);
}
