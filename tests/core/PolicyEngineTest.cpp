//===-- tests/core/PolicyEngineTest.cpp -----------------------------------===//
//
// The optimize half of the policy loop, driven through a fake action
// double: deterministic scoring and tie-breaks, the accept path, the
// revert -> blacklist path (and that a blacklist survives a workload
// shift), noop fall-through, and the concurrent-assessment cap.
//
//===----------------------------------------------------------------------===//

#include "core/PolicyEngine.h"

#include <gtest/gtest.h>

#include <initializer_list>
#include <utility>
#include <vector>

using namespace hpmvm;

namespace {

/// Scriptable action: fixed score, recorded applies/reverts.
struct FakeAction final : OptimizationAction {
  ActionKind K;
  double Score;
  bool ApplyResult = true;
  std::vector<MethodId> Applied;
  std::vector<MethodId> Reverted;

  FakeAction(ActionKind K, double Score) : K(K), Score(Score) {}
  ActionKind kind() const override { return K; }
  double score(const MethodBottleneck &) const override { return Score; }
  bool apply(MethodId M) override {
    Applied.push_back(M);
    return ApplyResult;
  }
  void revert(MethodId M) override { Reverted.push_back(M); }
};

/// One-period windows, one-window gate phases: a verdict resolves four
/// windows after a method is first seen (seed, apply, warm-up, decide).
PolicyEngineConfig testConfig() {
  PolicyEngineConfig C;
  C.Classifier.WindowPeriods = 1;
  C.Classifier.MinWindowSamples = 1.0;
  C.Classifier.LatencyRate = 5.0;
  C.Classifier.Hysteresis = 1;
  C.Gate.BaselineWindow = 1;
  C.Gate.DecisionWindow = 1;
  C.Gate.WarmupPeriods = 1;
  C.Gate.RegressionFactor = 1.05;
  C.Gate.IgnoreZeroRatePeriods = true;
  C.MinBaselineWindows = 1;
  return C;
}

/// Classifier + engine wired the way the pipeline registers them:
/// classifier first, so the engine's onPeriod sees the closed window.
struct Rig {
  explicit Rig(const PolicyEngineConfig &Cfg = testConfig())
      : Classifier(Cfg.Classifier), Engine(Classifier, Cfg) {}

  /// One classification window: N L1D samples per method, then a period.
  void window(std::initializer_list<std::pair<MethodId, int>> Load) {
    AttributedSample S;
    S.Kind = HpmEventKind::L1DMiss;
    for (const auto &[M, N] : Load) {
      S.Method = M;
      for (int I = 0; I != N; ++I)
        Classifier.onSample(S);
    }
    PeriodContext Ctx;
    Ctx.Now = (Now += 100);
    Classifier.onPeriod(Ctx);
    Engine.onPeriod(Ctx);
  }

  BottleneckClassifier Classifier;
  PolicyEngine Engine;
  Cycles Now = 0;
};

TEST(PolicyEngine, TieBreaksToTheEarlierRegisteredAction) {
  FakeAction Coalloc(ActionKind::Coallocate, 10.0);
  FakeAction Prefetch(ActionKind::PrefetchInject, 10.0);
  Rig R;
  R.Engine.addAction(Coalloc);
  R.Engine.addAction(Prefetch);
  R.window({{1, 20}}); // Seed the gate.
  R.window({{1, 20}}); // Baseline ready: score and apply.
  ASSERT_EQ(Coalloc.Applied, std::vector<MethodId>{1});
  EXPECT_TRUE(Prefetch.Applied.empty())
      << "equal scores must resolve by registration order";
  EXPECT_EQ(R.Engine.applies(), 1u);
}

TEST(PolicyEngine, HigherScoreBeatsRegistrationOrder) {
  FakeAction Coalloc(ActionKind::Coallocate, 5.0);
  FakeAction Prefetch(ActionKind::PrefetchInject, 10.0);
  Rig R;
  R.Engine.addAction(Coalloc);
  R.Engine.addAction(Prefetch);
  R.window({{1, 20}});
  R.window({{1, 20}});
  ASSERT_EQ(Prefetch.Applied, std::vector<MethodId>{1});
  EXPECT_TRUE(Coalloc.Applied.empty());
}

TEST(PolicyEngine, AcceptRetiresTheMethod) {
  FakeAction Coalloc(ActionKind::Coallocate, 10.0);
  FakeAction Prefetch(ActionKind::PrefetchInject, 5.0);
  Rig R;
  R.Engine.addAction(Coalloc);
  R.Engine.addAction(Prefetch);
  R.window({{1, 20}}); // Seed.
  R.window({{1, 20}}); // Apply coalloc; baseline 20.
  R.window({{1, 20}}); // Warm-up.
  R.window({{1, 20}}); // Decision: 20 <= 20 * 1.05 -> accept.
  EXPECT_EQ(R.Engine.accepts(), 1u);
  EXPECT_EQ(R.Engine.reverts(), 0u);
  EXPECT_TRUE(R.Engine.accepted(1));
  EXPECT_TRUE(Coalloc.Reverted.empty());
  // Retired: later hot windows trigger nothing further, even with a
  // second untried action registered.
  R.window({{1, 20}});
  R.window({{1, 20}});
  EXPECT_EQ(Coalloc.Applied.size(), 1u);
  EXPECT_TRUE(Prefetch.Applied.empty());
  EXPECT_EQ(R.Engine.applies(), 1u);
}

TEST(PolicyEngine, RevertBlacklistsAcrossAWorkloadShift) {
  FakeAction Coalloc(ActionKind::Coallocate, 10.0);
  FakeAction Prefetch(ActionKind::PrefetchInject, 5.0);
  Rig R;
  R.Engine.addAction(Coalloc);
  R.Engine.addAction(Prefetch);
  R.window({{1, 20}}); // Seed.
  R.window({{1, 20}}); // Apply coalloc; baseline 20.
  R.window({{1, 20}}); // Warm-up.
  R.window({{1, 30}}); // Decision: 30 > 20 * 1.05 -> revert.
  EXPECT_EQ(R.Engine.reverts(), 1u);
  EXPECT_EQ(R.Engine.blacklists(), 1u);
  ASSERT_EQ(Coalloc.Reverted, std::vector<MethodId>{1});
  EXPECT_TRUE(R.Engine.blacklisted(1, ActionKind::Coallocate));
  EXPECT_FALSE(R.Engine.blacklisted(1, ActionKind::PrefetchInject));
  EXPECT_FALSE(R.Engine.accepted(1));
  // The verdict window itself falls through to the runner-up (the
  // ablation's forced-gap run shows exactly this revert -> next-action
  // chain); it inherits the pre-change baseline, so the still-elevated
  // rate reverts it too.
  ASSERT_EQ(Prefetch.Applied, std::vector<MethodId>{1});
  R.window({{1, 30}}); // Warm-up.
  R.window({{1, 30}}); // Decision: 30 > 20 * 1.05 -> revert prefetch.
  EXPECT_EQ(R.Engine.reverts(), 2u);
  EXPECT_TRUE(R.Engine.blacklisted(1, ActionKind::PrefetchInject));

  // The workload shifts to triple the rate. The method stays hot and is
  // reconsidered every window, but every action is blacklisted: nothing
  // is ever retried, no matter how the profile changes.
  R.window({{1, 60}});
  R.window({{1, 60}});
  R.window({{1, 60}});
  EXPECT_EQ(Coalloc.Applied.size(), 1u)
      << "blacklisted action re-applied after the shift";
  EXPECT_EQ(Prefetch.Applied.size(), 1u)
      << "blacklisted action re-applied after the shift";
  EXPECT_EQ(R.Engine.applies(), 2u);
  EXPECT_EQ(R.Engine.accepts(), 0u);
  EXPECT_TRUE(R.Engine.blacklisted(1, ActionKind::Coallocate));
  EXPECT_FALSE(R.Engine.accepted(1));
}

TEST(PolicyEngine, NoopApplyFallsThroughToTheNextBest) {
  FakeAction Coalloc(ActionKind::Coallocate, 10.0);
  Coalloc.ApplyResult = false; // Nothing to rewrite for this method.
  FakeAction Prefetch(ActionKind::PrefetchInject, 5.0);
  Rig R;
  R.Engine.addAction(Coalloc);
  R.Engine.addAction(Prefetch);
  R.window({{1, 20}});
  R.window({{1, 20}});
  // Both ran in the same window: the winner noop'd and the runner-up was
  // applied; only the successful apply counts.
  ASSERT_EQ(Coalloc.Applied, std::vector<MethodId>{1});
  ASSERT_EQ(Prefetch.Applied, std::vector<MethodId>{1});
  EXPECT_EQ(R.Engine.applies(), 1u);
  // The gate is armed for the prefetch: it can still be accepted.
  R.window({{1, 20}});
  R.window({{1, 20}});
  EXPECT_EQ(R.Engine.accepts(), 1u);
  EXPECT_TRUE(R.Engine.accepted(1));
}

TEST(PolicyEngine, MinBaselineWindowsDelaysTheFirstAction) {
  PolicyEngineConfig Cfg = testConfig();
  Cfg.MinBaselineWindows = 3;
  FakeAction Coalloc(ActionKind::Coallocate, 10.0);
  Rig R(Cfg);
  R.Engine.addAction(Coalloc);
  R.window({{1, 20}});
  R.window({{1, 20}});
  EXPECT_TRUE(Coalloc.Applied.empty()) << "2 observed windows < 3 required";
  R.window({{1, 20}});
  EXPECT_EQ(Coalloc.Applied.size(), 1u);
}

TEST(PolicyEngine, ConcurrentAssessmentCapSerializesMethods) {
  PolicyEngineConfig Cfg = testConfig();
  Cfg.MaxConcurrentAssessments = 1;
  FakeAction Coalloc(ActionKind::Coallocate, 10.0);
  Rig R(Cfg);
  R.Engine.addAction(Coalloc);
  R.window({{1, 20}, {2, 20}}); // Both seeded.
  R.window({{1, 20}, {2, 20}}); // Method 1 applies; method 2 must wait.
  ASSERT_EQ(Coalloc.Applied, std::vector<MethodId>{1});
  R.window({{1, 20}, {2, 20}}); // Method 1 warm-up; method 2 still waits.
  EXPECT_EQ(Coalloc.Applied.size(), 1u);
  R.window({{1, 20}, {2, 20}}); // Method 1 accepted; slot frees; method 2
                                // applies in the same window.
  EXPECT_EQ(R.Engine.accepts(), 1u);
  ASSERT_EQ(Coalloc.Applied, (std::vector<MethodId>{1, 2}));
}

} // namespace
