//===-- tests/core/BatchEquivalenceTest.cpp -------------------------------===//
//
// The batched sample path (resolveBatch + dispatchBatch) against the
// scalar reference path (MonitorConfig::ScalarSamplePath): identical PEBS
// streams through both must leave every consumer -- miss table, frequency
// advisor, prefetch injector, phase detector -- in identical state, at the
// identical virtual time. Randomized over seeds and sampling intervals so
// the equivalence is not an artifact of one stream shape.
//
//===----------------------------------------------------------------------===//

#include "core/FrequencyAdvisor.h"
#include "core/HpmMonitor.h"
#include "core/PhaseDetector.h"
#include "core/PrefetchInjector.h"

#include "gc/GenMSPlan.h"
#include "vm/AdaptiveOptimizationSystem.h"
#include "vm/BytecodeBuilder.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

/// The HpmMonitorTest program (ring of Nodes chased through Node::data),
/// with the VM seed as a parameter so each test instance runs a different
/// allocation/sampling interleaving.
struct Rig {
  VirtualMachine Vm;
  GenMSPlan Gc;
  MethodId Build, Chase, Main;
  FieldId FData, FNext;

  explicit Rig(uint64_t Seed)
      : Vm([Seed] {
          VmConfig C;
          C.HeapBytes = 16 * 1024 * 1024;
          C.Seed = Seed;
          return C;
        }()),
        Gc(Vm.objects(), Vm.clock(),
           CollectorConfig{.HeapBytes = 16 * 1024 * 1024}) {
    Vm.setCollector(&Gc);
    ClassRegistry &C = Vm.classes();
    ClassId Node = C.defineClass("Node", {{"next", true}, {"data", true},
                                          {"pad", false}});
    ClassId IntArr = C.defineArrayClass("int[]", ElemKind::I32);
    FNext = C.fieldId(Node, "next");
    FData = C.fieldId(Node, "data");
    uint32_t GHead = Vm.addGlobal(ValKind::Ref);

    BytecodeBuilder B("build");
    uint32_t N = B.addParam(ValKind::Int);
    uint32_t Head = B.newLocal(), Cur = B.newLocal(), Nd = B.newLocal(),
             I = B.newLocal();
    B.returns(RetKind::Void);
    B.newObj(Node).astore(Head);
    B.aload(Head).iconst(4).newArray(IntArr).putfield(FData);
    B.aload(Head).astore(Cur);
    Label Loop = B.label(), Done = B.label();
    B.iconst(1).istore(I);
    B.bind(Loop).iload(I).iload(N).ifICmp(CondKind::Ge, Done);
    B.newObj(Node).astore(Nd);
    B.aload(Nd).iconst(4).newArray(IntArr).putfield(FData);
    B.aload(Cur).aload(Nd).putfield(FNext);
    B.aload(Nd).astore(Cur);
    B.iinc(I, 1).jump(Loop);
    B.bind(Done);
    B.aload(Cur).aload(Head).putfield(FNext);
    B.aload(Head).gput(GHead);
    B.ret();
    Build = Vm.addMethod(B.build());

    BytecodeBuilder B2("chase");
    uint32_t Steps = B2.addParam(ValKind::Int);
    uint32_t Cur2 = B2.newLocal(), Acc = B2.newLocal(), K = B2.newLocal();
    B2.returns(RetKind::Int);
    B2.gget(GHead).astore(Cur2);
    B2.iconst(0).istore(Acc);
    Label L2 = B2.label(), D2 = B2.label();
    B2.iconst(0).istore(K);
    B2.bind(L2).iload(K).iload(Steps).ifICmp(CondKind::Ge, D2);
    B2.aload(Cur2).getfield(FData).iconst(0).aloadI().iload(Acc).iadd()
        .istore(Acc);
    B2.aload(Cur2).getfield(FNext).astore(Cur2);
    B2.iinc(K, 1).jump(L2);
    B2.bind(D2).iload(Acc).iret();
    Chase = Vm.addMethod(B2.build());

    BytecodeBuilder B3("main");
    B3.returns(RetKind::Void);
    B3.iconst(20000).call(Build);
    B3.iconst(200000).call(Chase).popv();
    B3.ret();
    Main = Vm.addMethod(B3.build());

    Vm.aos().applyCompilationPlan({"build", "chase", "main"});
  }
};

/// Everything the two paths must agree on.
struct RunResult {
  Cycles EndTime = 0;
  // Miss table.
  uint64_t TotalMisses = 0, MissesNext = 0, MissesData = 0;
  size_t NumFields = 0;
  uint64_t TableVersion = 0;
  // Monitor stats.
  uint64_t Processed = 0, Attributed = 0, VmInternal = 0, BaselineCode = 0;
  // Resolver stats.
  uint64_t Resolved = 0, ResolvedOpt = 0, DroppedOutside = 0,
           DroppedUnknown = 0;
  // Frequency advisor.
  uint64_t FreqBuild = 0, FreqChase = 0, FreqMain = 0, HotReported = 0;
  // Prefetch injector.
  bool Injected = false;
  uint32_t MethodsRewritten = 0, PrefetchesInserted = 0;
  uint64_t PrefetchProfileMisses = 0;
  // Phase detector.
  size_t Phase = 0, PhasePeriods = 0;
  double PhaseLevel = 0.0;

  bool operator==(const RunResult &) const = default;
};

RunResult runOnce(uint64_t Seed, uint64_t Interval, bool Scalar) {
  Rig R(Seed);
  MonitorConfig MC;
  MC.SamplingInterval = Interval;
  MC.Seed = 0x5eed ^ (Seed * 0x9e3779b97f4a7c15ull);
  MC.ScalarSamplePath = Scalar;
  HpmMonitor M(R.Vm, MC);
  FrequencyAdvisor Freq(R.Vm);
  Freq.setHotMethodSamples(8);
  PrefetchInjector Pre(R.Vm);
  PhaseDetector Phase;
  M.addConsumer(Freq);
  M.addConsumer(Pre);
  M.addConsumer(Phase);
  M.attach();
  R.Vm.run(R.Main);
  M.finish();

  RunResult Out;
  Out.EndTime = R.Vm.clock().now();
  Out.TotalMisses = M.missTable().totalMisses();
  Out.MissesNext = M.missTable().misses(R.FNext);
  Out.MissesData = M.missTable().misses(R.FData);
  Out.NumFields = M.missTable().numFields();
  Out.TableVersion = M.missTable().version();
  Out.Processed = M.stats().SamplesProcessed;
  Out.Attributed = M.stats().SamplesAttributed;
  Out.VmInternal = M.stats().SamplesVmInternal;
  Out.BaselineCode = M.stats().SamplesBaselineCode;
  Out.Resolved = M.resolver().stats().Resolved;
  Out.ResolvedOpt = M.resolver().stats().ResolvedOptimized;
  Out.DroppedOutside = M.resolver().stats().DroppedOutsideVm;
  Out.DroppedUnknown = M.resolver().stats().DroppedUnknownCode;
  Out.FreqBuild = Freq.sampleCount(R.Build);
  Out.FreqChase = Freq.sampleCount(R.Chase);
  Out.FreqMain = Freq.sampleCount(R.Main);
  Out.HotReported = Freq.hotMethodsReported();
  Out.Injected = Pre.injected();
  Out.MethodsRewritten = Pre.stats().MethodsRewritten;
  Out.PrefetchesInserted = Pre.stats().PrefetchesInserted;
  Out.PrefetchProfileMisses = Pre.missProfile().totalMisses();
  Out.Phase = Phase.currentPhase();
  Out.PhasePeriods = Phase.periodsObserved();
  Out.PhaseLevel = Phase.level();
  return Out;
}

class BatchEquivalence : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(BatchEquivalence, ScalarAndBatchPathsAgree) {
  uint64_t Seed = GetParam();
  // Vary the interval with the seed so batches of very different sizes
  // (and empty-poll patterns) are covered.
  uint64_t Interval = 3000 + (Seed % 5) * 1700;
  RunResult Batch = runOnce(Seed, Interval, /*Scalar=*/false);
  RunResult Scalar = runOnce(Seed, Interval, /*Scalar=*/true);

  EXPECT_EQ(Batch.EndTime, Scalar.EndTime);
  EXPECT_EQ(Batch.TotalMisses, Scalar.TotalMisses);
  EXPECT_EQ(Batch.MissesNext, Scalar.MissesNext);
  EXPECT_EQ(Batch.MissesData, Scalar.MissesData);
  EXPECT_EQ(Batch.NumFields, Scalar.NumFields);
  EXPECT_EQ(Batch.TableVersion, Scalar.TableVersion);
  EXPECT_EQ(Batch.Processed, Scalar.Processed);
  EXPECT_EQ(Batch.Attributed, Scalar.Attributed);
  EXPECT_EQ(Batch.VmInternal, Scalar.VmInternal);
  EXPECT_EQ(Batch.BaselineCode, Scalar.BaselineCode);
  EXPECT_EQ(Batch.Resolved, Scalar.Resolved);
  EXPECT_EQ(Batch.ResolvedOpt, Scalar.ResolvedOpt);
  EXPECT_EQ(Batch.DroppedOutside, Scalar.DroppedOutside);
  EXPECT_EQ(Batch.DroppedUnknown, Scalar.DroppedUnknown);
  EXPECT_EQ(Batch.FreqBuild, Scalar.FreqBuild);
  EXPECT_EQ(Batch.FreqChase, Scalar.FreqChase);
  EXPECT_EQ(Batch.FreqMain, Scalar.FreqMain);
  EXPECT_EQ(Batch.HotReported, Scalar.HotReported);
  EXPECT_EQ(Batch.Injected, Scalar.Injected);
  EXPECT_EQ(Batch.MethodsRewritten, Scalar.MethodsRewritten);
  EXPECT_EQ(Batch.PrefetchesInserted, Scalar.PrefetchesInserted);
  EXPECT_EQ(Batch.PrefetchProfileMisses, Scalar.PrefetchProfileMisses);
  EXPECT_EQ(Batch.Phase, Scalar.Phase);
  EXPECT_EQ(Batch.PhasePeriods, Scalar.PhasePeriods);
  EXPECT_DOUBLE_EQ(Batch.PhaseLevel, Scalar.PhaseLevel);
  EXPECT_TRUE(Batch == Scalar);

  // The run must actually have exercised the pipeline for the comparison
  // to mean anything.
  EXPECT_GT(Batch.Processed, 0u);
  EXPECT_GT(Batch.TotalMisses, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchEquivalence,
                         ::testing::Values(1u, 2u, 7u, 17u, 42u));
