//===-- tests/core/CoallocationAdvisorTest.cpp ----------------------------===//

#include "core/CoallocationAdvisor.h"

#include "vm/ClassRegistry.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

struct Rig {
  ClassRegistry Classes;
  ClassId Rec; ///< { ref value; ref other; int len }
  FieldId FValue, FOther, FLen;
  FieldMissTable Table;

  Rig() {
    Rec = Classes.defineClass("Rec", {{"value", true},
                                      {"other", true},
                                      {"len", false}});
    FValue = Classes.fieldId(Rec, "value");
    FOther = Classes.fieldId(Rec, "other");
    FLen = Classes.fieldId(Rec, "len");
  }

  CoallocationAdvisor makeAdvisor(uint64_t Threshold = 2) {
    AdvisorConfig C;
    C.MinMissSamples = Threshold;
    return CoallocationAdvisor(Classes, Table, C);
  }
};

} // namespace

TEST(CoallocationAdvisor, PicksHottestReferenceField) {
  Rig R;
  CoallocationAdvisor A = R.makeAdvisor();
  R.Table.addMiss(R.FValue, 10);
  R.Table.addMiss(R.FOther, 3);
  R.Table.addMiss(R.FLen, 100); // Int field: never a candidate.
  R.Table.endPeriod(1);
  CoallocationHint H = A.coallocationHint(R.Rec);
  ASSERT_TRUE(H.valid());
  EXPECT_EQ(H.Field, R.FValue);
  EXPECT_EQ(H.SlotOffset, R.Classes.field(R.FValue).Offset);
}

TEST(CoallocationAdvisor, ThresholdGates) {
  Rig R;
  CoallocationAdvisor A = R.makeAdvisor(/*Threshold=*/5);
  R.Table.addMiss(R.FValue, 4);
  R.Table.endPeriod(1);
  EXPECT_FALSE(A.coallocationHint(R.Rec).valid());
  R.Table.addMiss(R.FValue, 1);
  R.Table.endPeriod(2);
  EXPECT_TRUE(A.coallocationHint(R.Rec).valid());
}

TEST(CoallocationAdvisor, DisabledReturnsNothing) {
  Rig R;
  CoallocationAdvisor A = R.makeAdvisor();
  R.Table.addMiss(R.FValue, 100);
  R.Table.endPeriod(1);
  A.setEnabled(false);
  EXPECT_FALSE(A.coallocationHint(R.Rec).valid());
  A.setEnabled(true);
  EXPECT_TRUE(A.coallocationHint(R.Rec).valid());
}

TEST(CoallocationAdvisor, CacheInvalidatedAtPeriodBoundary) {
  Rig R;
  CoallocationAdvisor A = R.makeAdvisor();
  R.Table.addMiss(R.FOther, 5);
  R.Table.endPeriod(1);
  EXPECT_EQ(A.coallocationHint(R.Rec).Field, R.FOther);
  // value overtakes other, but within the same period the cached hint
  // stays (the paper's batch-granularity updates)...
  R.Table.addMiss(R.FValue, 50);
  EXPECT_EQ(A.coallocationHint(R.Rec).Field, R.FOther);
  // ...and flips at the next period boundary.
  R.Table.endPeriod(2);
  EXPECT_EQ(A.coallocationHint(R.Rec).Field, R.FValue);
}

TEST(CoallocationAdvisor, SortedFieldsHottestFirst) {
  Rig R;
  CoallocationAdvisor A = R.makeAdvisor();
  R.Table.addMiss(R.FValue, 3);
  R.Table.addMiss(R.FOther, 9);
  auto Sorted = A.sortedFields(R.Rec);
  ASSERT_EQ(Sorted.size(), 2u); // Reference fields only.
  EXPECT_EQ(Sorted[0].first, R.FOther);
  EXPECT_EQ(Sorted[0].second, 9u);
  EXPECT_EQ(Sorted[1].first, R.FValue);
}

TEST(CoallocationAdvisor, GapAndCounters) {
  Rig R;
  CoallocationAdvisor A = R.makeAdvisor();
  EXPECT_EQ(A.gapBytes(), 0u);
  A.setForcedGapBytes(128);
  EXPECT_EQ(A.gapBytes(), 128u);
  A.noteCoallocation(R.Rec, R.FValue);
  A.noteCoallocation(R.Rec, R.FValue);
  A.noteCoallocation(R.Rec, R.FOther);
  EXPECT_EQ(A.coallocationCount(), 3u);
  EXPECT_EQ(A.coallocationCount(R.FValue), 2u);
  EXPECT_EQ(A.coallocationCount(R.FOther), 1u);
}

TEST(CoallocationAdvisor, ClassWithoutRefFieldsNeverHinted) {
  Rig R;
  ClassId Plain = R.Classes.defineClass("Plain", {{"x", false}});
  CoallocationAdvisor A = R.makeAdvisor();
  EXPECT_FALSE(A.coallocationHint(Plain).valid());
}
