//===-- tests/core/OptimizationControllerTest.cpp -------------------------===//
//
// The Figure 8 feedback loop: detect that an applied transformation made
// the miss rate worse and revert it.
//
//===----------------------------------------------------------------------===//

#include "core/OptimizationController.h"

#include "obs/Obs.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

ControllerConfig fastConfig() {
  ControllerConfig C;
  C.BaselineWindow = 3;
  C.DecisionWindow = 3;
  C.WarmupPeriods = 1;
  C.RegressionFactor = 1.3;
  return C;
}

} // namespace

TEST(OptimizationController, BaselineTracksRecentPeriods) {
  OptimizationController C(fastConfig());
  C.observePeriod(10);
  C.observePeriod(20);
  C.observePeriod(30);
  EXPECT_DOUBLE_EQ(C.baselineRate(), 20.0);
  C.observePeriod(40); // Window slides: (20+30+40)/3.
  EXPECT_DOUBLE_EQ(C.baselineRate(), 30.0);
  EXPECT_EQ(C.state(), OptimizationController::State::Monitoring);
}

TEST(OptimizationController, RegressionTriggersRevert) {
  OptimizationController C(fastConfig());
  bool Reverted = false;
  C.setRevertAction([&] { Reverted = true; });
  for (int I = 0; I != 5; ++I)
    C.observePeriod(100); // Stable baseline of 100.
  C.notePolicyChange();   // e.g. the 128-byte gap gets inserted.
  C.observePeriod(160);   // Warm-up period, ignored.
  EXPECT_EQ(C.state(), OptimizationController::State::Assessing);
  C.observePeriod(170);
  C.observePeriod(180);
  EXPECT_FALSE(Reverted);
  C.observePeriod(175); // Decision window complete: mean 175 > 130.
  EXPECT_TRUE(Reverted);
  EXPECT_EQ(C.state(), OptimizationController::State::Reverted);
  EXPECT_NEAR(C.assessedRate(), 175.0, 1e-9);
}

TEST(OptimizationController, ImprovementIsAccepted) {
  OptimizationController C(fastConfig());
  bool Reverted = false;
  C.setRevertAction([&] { Reverted = true; });
  for (int I = 0; I != 4; ++I)
    C.observePeriod(100);
  C.notePolicyChange();
  C.observePeriod(90); // Warm-up.
  for (int I = 0; I != 3; ++I)
    C.observePeriod(60); // Better!
  EXPECT_FALSE(Reverted);
  EXPECT_EQ(C.state(), OptimizationController::State::Accepted);
}

TEST(OptimizationController, SmallNoiseDoesNotRevert) {
  OptimizationController C(fastConfig());
  bool Reverted = false;
  C.setRevertAction([&] { Reverted = true; });
  for (int I = 0; I != 4; ++I)
    C.observePeriod(100);
  C.notePolicyChange();
  C.observePeriod(100);
  for (double Rate : {110.0, 120.0, 115.0}) // +15% < the 30% threshold.
    C.observePeriod(Rate);
  EXPECT_FALSE(Reverted);
  EXPECT_EQ(C.state(), OptimizationController::State::Accepted);
}

TEST(OptimizationController, JournalsAssessRevertAndAccept) {
  ObsContext Obs;
  OptimizationController C(fastConfig());
  C.attachObs(Obs);
  C.setJournalSubject("placement");

  // Round 1: regression -> Assess then Revert.
  for (int I = 0; I != 4; ++I)
    C.observePeriod(100);
  C.notePolicyChange();
  for (int I = 0; I != 4; ++I)
    C.observePeriod(500);
  ASSERT_EQ(C.state(), OptimizationController::State::Reverted);

  // Round 2: improvement -> Assess then Accept.
  for (int I = 0; I != 3; ++I)
    C.observePeriod(100);
  C.notePolicyChange();
  for (int I = 0; I != 4; ++I)
    C.observePeriod(50);
  ASSERT_EQ(C.state(), OptimizationController::State::Accepted);

  std::vector<DecisionRecord> J = Obs.journal().snapshot();
  std::vector<DecisionKind> Kinds;
  for (const DecisionRecord &D : J) {
    EXPECT_STREQ(D.Consumer, "placement");
    Kinds.push_back(D.Kind);
  }
  ASSERT_EQ(Kinds.size(), 4u);
  EXPECT_EQ(Kinds[0], DecisionKind::Assess);
  EXPECT_EQ(Kinds[1], DecisionKind::Revert);
  EXPECT_EQ(Kinds[2], DecisionKind::Assess);
  EXPECT_EQ(Kinds[3], DecisionKind::Accept);

  // The verdict records carry the rates the decision was made from.
  EXPECT_NEAR(J[1].Rate, 500.0, 1e-9);
  EXPECT_NEAR(J[1].Baseline, 100.0, 1e-9);
  EXPECT_NEAR(J[3].Rate, 50.0, 1e-9);
}

TEST(OptimizationController, MonitoringResumesAfterDecision) {
  OptimizationController C(fastConfig());
  for (int I = 0; I != 4; ++I)
    C.observePeriod(100);
  C.notePolicyChange();
  for (int I = 0; I != 4; ++I)
    C.observePeriod(500); // Revert fires.
  EXPECT_EQ(C.state(), OptimizationController::State::Reverted);
  // Rates keep updating the baseline; a second change can be assessed.
  for (int I = 0; I != 3; ++I)
    C.observePeriod(100);
  EXPECT_DOUBLE_EQ(C.baselineRate(), 100.0);
  C.notePolicyChange();
  C.observePeriod(100);
  for (int I = 0; I != 3; ++I)
    C.observePeriod(100);
  EXPECT_EQ(C.state(), OptimizationController::State::Accepted);
}
